// Shared helpers for the benchmark harnesses: environment-variable scaling
// (every bench honours GKGPU_PAIRS / GKGPU_READS / GKGPU_GENOME to trade
// fidelity for runtime), data-set construction, CPU-baseline timing,
// device bookkeeping, and the machine-readable BENCH_<name>.json report
// CI archives so the perf trajectory is recorded per commit instead of
// evaporating into pass/fail exit codes.
#ifndef GKGPU_BENCH_COMMON_HPP
#define GKGPU_BENCH_COMMON_HPP

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "filters/gatekeeper.hpp"
#include "gpusim/device.hpp"
#include "sim/pairgen.hpp"
#include "util/timer.hpp"

namespace gkgpu::bench {

inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

/// A pair data set split into the engine's parallel-array input shape.
struct Dataset {
  std::vector<std::string> reads;
  std::vector<std::string> refs;
  std::size_t size() const { return reads.size(); }
};

inline Dataset MakeDataset(const PairProfile& profile, std::size_t n,
                           std::uint64_t seed) {
  Dataset d;
  d.reads.reserve(n);
  d.refs.reserve(n);
  for (auto& p : GeneratePairs(n, profile, seed)) {
    d.reads.push_back(std::move(p.read));
    d.refs.push_back(std::move(p.ref));
  }
  return d;
}

inline std::vector<gpusim::Device*> Ptrs(
    const std::vector<std::unique_ptr<gpusim::Device>>& devices) {
  std::vector<gpusim::Device*> out;
  out.reserve(devices.size());
  for (const auto& d : devices) out.push_back(d.get());
  return out;
}

/// Times the multicore CPU baseline on a dataset; returns {kernel seconds
/// (the filtration function only), filter seconds (encode + filtration)}.
struct CpuTimes {
  double kernel_seconds = 0.0;
  double filter_seconds = 0.0;
};

inline CpuTimes RunGateKeeperCpu(const Dataset& data, int length, int e,
                                 unsigned threads) {
  GateKeeperCpu cpu({}, threads);
  const std::size_t n = data.size();
  CpuTimes t;
  WallTimer total;
  PairBlockStorage block(length);
  for (std::size_t i = 0; i < n; ++i) {
    block.Add(data.reads[i], data.refs[i]);
  }
  std::vector<PairResult> results(n);
  WallTimer kernel;
  cpu.FilterBlock(block.view(), e, results.data());
  t.kernel_seconds = kernel.Seconds();
  t.filter_seconds = total.Seconds();
  return t;
}

/// Runs the engine over a dataset and returns its stats.
inline FilterRunStats RunEngine(const Dataset& data, int length, int e,
                                EncodingActor actor,
                                std::vector<gpusim::Device*> devices) {
  EngineConfig cfg;
  cfg.read_length = length;
  cfg.error_threshold = e;
  cfg.encoding = actor;
  GateKeeperGpuEngine engine(cfg, std::move(devices));
  std::vector<PairResult> results;
  return engine.FilterPairs(data.reads, data.refs, &results);
}

/// Flat machine-readable bench report, written as BENCH_<name>.json next
/// to the binary (override the path with GKGPU_BENCH_JSON; an empty value
/// suppresses the file).  Keys keep insertion order, values are emitted
/// with enough precision to diff trajectories across commits; CI uploads
/// the files as workflow artifacts.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void Add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void Add(const std::string& key, const char* value) {
    fields_.emplace_back(key, "\"" + std::string(value) + "\"");
  }
  /// Embeds an already-rendered JSON value (object/array) verbatim — the
  /// metrics registry snapshot rides into the trajectory artifact this way.
  void AddRaw(const std::string& key, std::string json) {
    fields_.emplace_back(key, std::move(json));
  }

  /// Writes the report; returns the path written ("" when suppressed or
  /// unwritable).
  std::string Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    if (const char* env = std::getenv("GKGPU_BENCH_JSON")) path = env;
    if (path.empty()) return {};
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench report: cannot write %s\n", path.c_str());
      return {};
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\"", name_.c_str());
    for (const auto& [key, value] : fields_) {
      std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), value.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("bench report written to %s\n", path.c_str());
    return path;
  }

 private:
  std::string name_;
  /// (key, pre-rendered JSON value) in insertion order.
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace gkgpu::bench

#endif  // GKGPU_BENCH_COMMON_HPP
