// Shared helpers for the benchmark harnesses: environment-variable scaling
// (every bench honours GKGPU_PAIRS / GKGPU_READS / GKGPU_GENOME to trade
// fidelity for runtime), data-set construction, CPU-baseline timing, and
// device bookkeeping.
#ifndef GKGPU_BENCH_COMMON_HPP
#define GKGPU_BENCH_COMMON_HPP

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "filters/gatekeeper.hpp"
#include "gpusim/device.hpp"
#include "sim/pairgen.hpp"
#include "util/timer.hpp"

namespace gkgpu::bench {

inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

/// A pair data set split into the engine's parallel-array input shape.
struct Dataset {
  std::vector<std::string> reads;
  std::vector<std::string> refs;
  std::size_t size() const { return reads.size(); }
};

inline Dataset MakeDataset(const PairProfile& profile, std::size_t n,
                           std::uint64_t seed) {
  Dataset d;
  d.reads.reserve(n);
  d.refs.reserve(n);
  for (auto& p : GeneratePairs(n, profile, seed)) {
    d.reads.push_back(std::move(p.read));
    d.refs.push_back(std::move(p.ref));
  }
  return d;
}

inline std::vector<gpusim::Device*> Ptrs(
    const std::vector<std::unique_ptr<gpusim::Device>>& devices) {
  std::vector<gpusim::Device*> out;
  out.reserve(devices.size());
  for (const auto& d : devices) out.push_back(d.get());
  return out;
}

/// Times the multicore CPU baseline on a dataset; returns {kernel seconds
/// (the filtration function only), filter seconds (encode + filtration)}.
struct CpuTimes {
  double kernel_seconds = 0.0;
  double filter_seconds = 0.0;
};

inline CpuTimes RunGateKeeperCpu(const Dataset& data, int length, int e,
                                 unsigned threads) {
  GateKeeperCpu cpu({}, threads);
  const std::size_t n = data.size();
  const std::size_t words = static_cast<std::size_t>(EncodedWords(length));
  CpuTimes t;
  WallTimer total;
  std::vector<Word> reads(n * words);
  std::vector<Word> refs(n * words);
  std::vector<GateKeeperCpu::PairView> views(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool rn = EncodeSequence(data.reads[i], reads.data() + i * words);
    const bool gn = EncodeSequence(data.refs[i], refs.data() + i * words);
    views[i] = {reads.data() + i * words, refs.data() + i * words,
                static_cast<std::uint8_t>((rn || gn) ? 1 : 0)};
  }
  std::vector<FilterResult> results(n);
  WallTimer kernel;
  cpu.FilterBatch(views.data(), n, length, e, results.data());
  t.kernel_seconds = kernel.Seconds();
  t.filter_seconds = total.Seconds();
  return t;
}

/// Runs the engine over a dataset and returns its stats.
inline FilterRunStats RunEngine(const Dataset& data, int length, int e,
                                EncodingActor actor,
                                std::vector<gpusim::Device*> devices) {
  EngineConfig cfg;
  cfg.read_length = length;
  cfg.error_threshold = e;
  cfg.encoding = actor;
  GateKeeperGpuEngine engine(cfg, std::move(devices));
  std::vector<PairResult> results;
  return engine.FilterPairs(data.reads, data.refs, &results);
}

}  // namespace gkgpu::bench

#endif  // GKGPU_BENCH_COMMON_HPP
