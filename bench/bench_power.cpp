// Reproduces Table 6 and Sup. Table S.27: power consumption (min / max /
// average milliwatts) of a single device running GateKeeper-GPU on 100 bp
// (e = 4) and 250 bp (e = 10) sets, for both encoding actors and both
// setups, from the simulator's activity-based power model (standing in for
// nvprof system profiling).
//
// Scale with GKGPU_PAIRS (default 150,000).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

int main() {
  const std::size_t pairs = EnvSize("GKGPU_PAIRS", 150000);
  std::printf("=== Table 6 / S.27: power consumption (mW) ===\n");
  for (const int setup : {1, 2}) {
    std::printf("\n-- Setup %d, single GPU, %zu pairs --\n", setup, pairs);
    TablePrinter table({"power (mW)", "dev-enc 100bp", "dev-enc 250bp",
                        "host-enc 100bp", "host-enc 250bp"});
    gpusim::PowerReport reports[2][2];
    for (int enc = 0; enc < 2; ++enc) {
      for (int li = 0; li < 2; ++li) {
        const int length = li == 0 ? 100 : 250;
        const int e = li == 0 ? 4 : 10;
        const Dataset data = MakeDataset(MrFastCandidateProfile(length),
                                         pairs, 900 + length);
        auto devices =
            setup == 1 ? gpusim::MakeSetup1(1) : gpusim::MakeSetup2(1);
        // Idle gaps between batches bracket the kernels, as nvprof sees.
        devices[0]->AccountIdle(0.05);
        RunEngine(data, length, e,
                  enc == 0 ? EncodingActor::kDevice : EncodingActor::kHost,
                  Ptrs(devices));
        devices[0]->AccountIdle(0.05);
        reports[enc][li] = devices[0]->power().Report();
      }
    }
    auto row = [&](const char* name, auto pick) {
      table.AddRow({name, TablePrinter::Count(static_cast<std::uint64_t>(
                              pick(reports[0][0]))),
                    TablePrinter::Count(static_cast<std::uint64_t>(
                        pick(reports[0][1]))),
                    TablePrinter::Count(static_cast<std::uint64_t>(
                        pick(reports[1][0]))),
                    TablePrinter::Count(static_cast<std::uint64_t>(
                        pick(reports[1][1])))});
    };
    row("min", [](const gpusim::PowerReport& r) { return r.min_mw; });
    row("max", [](const gpusim::PowerReport& r) { return r.max_mw; });
    row("average", [](const gpusim::PowerReport& r) { return r.avg_mw; });
    table.Print(std::cout);
  }
  std::printf(
      "\nExpected shapes (paper Table 6): min ~ idle power (8.9 W Setup 1,\n"
      "30.1 W Setup 2); 250 bp draws more than 100 bp; the encoding actor\n"
      "makes little difference at 100 bp.\n");
  return 0;
}
