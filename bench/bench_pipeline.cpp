// Streaming pipeline vs. the blocking engine path: throughput of
// StreamingPipeline (asynchronous, double-buffered, multi-device) against
// GateKeeperGpuEngine::FilterPairs (lockstep rounds, host preprocessing
// serialized with the device pipeline) on the same pair sets.
//
// The comparable quantity is the filtration makespan: for the blocking
// path FilterRunStats::filter_seconds (measured host work + simulated
// device time, serialized), for the pipeline PipelineStats::filter_seconds
// (the overlapped timeline where encoding streams concurrently with
// kernels and transfers).  Verification is disabled on both sides.
//
// The headline configuration is the paper's "encoding in device" design,
// where host staging and simulated device time are of comparable
// magnitude and the overlap discipline pays: the streaming path must show
// >= 1.3x on the 2-GPU setups.  Host-encoded rows are included for
// completeness; there the (real, single-machine) preprocessing dominates
// the simulated kernels by ~100x, so overlap gains are bounded by the
// device share — on real multicore hardware the encode worker pool closes
// that gap instead.
//
// A second gate covers the host-side batch filtration core: the same
// input pairs run once through the per-pair seed path (virtual
// Filter(string_view, string_view) per candidate — per-pair dispatch,
// per-pair encoding) and once through the batch API (one PairBlock,
// encode once, FilterBatch on uint64_t lanes / AVX2 / AVX-512 behind
// runtime dispatch).  The batched GateKeeper must clear 1.2x and the
// batched SneakySnake — whose decode-free maze build replaces a much
// heavier per-pair walk — 1.5x; throughputs and the dispatched kernel
// tier land in BENCH_pipeline.json next to the streaming numbers.
//
// Two service-mode gates ride along: the persistent index must mmap-load
// >= 10x faster than a cold in-memory rebuild (index + 2-bit encoding) of
// the same reference, and the daemon's served throughput over two
// concurrent Unix-socket clients is recorded as a trajectory point.
//
// The genome scale-out machinery is measured on a forced multi-shard
// layout (8 chromosomes, shard budget a quarter of the genome): per-shard
// CSR builds serial vs concurrent, and dense pigeonhole vs (w,k)
// minimizer seeding mapped filter-free on the same repeat-dense
// reference.  Two gates: winnowing must seed strictly fewer candidate
// pairs than the exhaustive every-read-k-mer scheme it subsamples, and —
// because every candidate is verified with banded DP on this path — must
// lose zero mapped reads against the dense pigeonhole default.
//
// Observability rides the same run: per-filter false-accept rates are
// computed from the metrics registry's funnel counters against banded-DP
// ground truth, a gate proves the always-on instrumentation costs <= 2%
// on the hot FilterBatch path (registry enabled vs disabled,
// interleaved), and the full registry snapshot — funnel plus p99 stage
// latencies — is embedded in BENCH_pipeline.json.
//
// Scale with GKGPU_PAIRS (default 200,000), GKGPU_GENOME, GKGPU_READS.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <thread>

#include "align/banded.hpp"
#include "common.hpp"
#include "encode/dna.hpp"
#include "encode/revcomp.hpp"
#include "filters/gatekeeper.hpp"
#include "filters/sneakysnake.hpp"
#include "io/index_io.hpp"
#include "io/reference.hpp"
#include "mapper/index.hpp"
#include "mapper/mapper.hpp"
#include "obs/metrics.hpp"
#include "pipeline/read_to_sam.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "simd/dispatch.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

namespace {

struct RunResult {
  double sync_ft = 0.0;
  double pipe_ft = 0.0;
  double speedup() const { return pipe_ft > 0.0 ? sync_ft / pipe_ft : 0.0; }
};

RunResult RunOne(const Dataset& data, int length, int e, EncodingActor actor,
                 int setup, int ndev, std::size_t batch, int reps) {
  // Host staging/encoding is measured wall time on ~millisecond scales;
  // min-of-reps suppresses scheduler noise the same way for both paths.
  RunResult r;
  for (int rep = 0; rep < reps; ++rep) {
    auto devices =
        setup == 1 ? gpusim::MakeSetup1(ndev) : gpusim::MakeSetup2(ndev);
    const FilterRunStats s = RunEngine(data, length, e, actor, Ptrs(devices));
    r.sync_ft = rep == 0 ? s.filter_seconds
                         : std::min(r.sync_ft, s.filter_seconds);
  }
  for (int rep = 0; rep < reps; ++rep) {
    auto devices =
        setup == 1 ? gpusim::MakeSetup1(ndev) : gpusim::MakeSetup2(ndev);
    auto ptrs = Ptrs(devices);
    EngineConfig cfg;
    cfg.read_length = length;
    cfg.error_threshold = e;
    cfg.encoding = actor;
    GateKeeperGpuEngine engine(cfg, ptrs);
    pipeline::PipelineConfig pcfg;
    pcfg.batch_size = batch;
    pcfg.encode_workers = 2;
    pcfg.slots_per_device = 2;
    pcfg.verify = false;
    // Occupancy-driven batch sizing with the batcher in the loop.  The
    // tuned size is the ceiling: growing past it would cut the batch
    // count below the >= ~24 the fill/drain amortization needs, so the
    // batcher starts there and only shrinks under sink backpressure.
    pcfg.adaptive = true;
    pcfg.adaptive_config.min_size = std::max<std::size_t>(512, batch / 2);
    pcfg.adaptive_config.max_size = batch;
    std::vector<PairResult> results;
    const pipeline::PipelineStats s = pipeline::FilterPairsStreaming(
        &engine, pcfg, data.reads, data.refs, &results);
    r.pipe_ft = rep == 0 ? s.filter_seconds
                         : std::min(r.pipe_ft, s.filter_seconds);
  }
  return r;
}

struct BatchFilterResult {
  double per_pair_s = 0.0;  // virtual Filter() per candidate
  double batch_s = 0.0;     // PairBlock build + FilterBatch
  std::uint64_t per_pair_accepts = 0;
  std::uint64_t batch_accepts = 0;
  double speedup() const {
    return batch_s > 0.0 ? per_pair_s / batch_s : 0.0;
  }
};

/// Times the filter stage both ways on identical inputs.  Both sides pay
/// their own preprocessing: the seed path encodes inside every Filter()
/// call, the batch path builds the encoded block once and filters it.
/// Undefined ('N') pairs bypass on both sides — the per-pair loop mirrors
/// the seed path's bypass policy, which the block builder encodes as the
/// bypass bit — so the accept counts are comparable for every filter, not
/// just those whose Filter() bypasses internally.
BatchFilterResult RunBatchFilterBench(const PreAlignmentFilter& filter,
                                      const Dataset& data, int length, int e,
                                      int reps) {
  const std::size_t n = data.size();
  BatchFilterResult r;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    std::uint64_t accepts = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (ContainsUnknown(data.reads[i]) || ContainsUnknown(data.refs[i])) {
        ++accepts;
        continue;
      }
      accepts += filter.Filter(data.reads[i], data.refs[i], e).accept ? 1 : 0;
    }
    const double s = t.Seconds();
    r.per_pair_s = rep == 0 ? s : std::min(r.per_pair_s, s);
    r.per_pair_accepts = accepts;
  }
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    PairBlockStorage block(length);
    for (std::size_t i = 0; i < n; ++i) {
      block.Add(data.reads[i], data.refs[i]);
    }
    std::vector<PairResult> results(n);
    filter.FilterBatch(block.view(), e, results.data());
    const double s = t.Seconds();
    r.batch_s = rep == 0 ? s : std::min(r.batch_s, s);
    std::uint64_t accepts = 0;
    for (const PairResult& pr : results) accepts += pr.accept;
    r.batch_accepts = accepts;
  }
  return r;
}

/// Host-tier accepts of one filter, read from the registry's funnel
/// counters (the same series `gkgpu stats` exposes).
std::uint64_t RegistryAccepts(const char* filter) {
  return static_cast<std::uint64_t>(
      obs::Registry::Global().Snapshot().Value(
          "gkgpu_filter_accepts_total",
          {{"filter", filter},
           {"tier", simd::LevelName(simd::ActiveLevel())}}));
}

struct OverheadResult {
  double enabled_s = 0.0;
  double disabled_s = 0.0;
  /// Clamped at zero: with min-of-reps on both legs a negative delta is
  /// pure measurement noise (the enabled leg cannot be faster), and
  /// reporting it as negative overhead only destabilizes trend plots.
  double overhead_pct() const {
    return disabled_s > 0.0
               ? std::max(0.0,
                          (enabled_s - disabled_s) / disabled_s * 100.0)
               : 0.0;
  }
};

/// The always-on-cheap gate: the hot host filtration path timed with the
/// metrics registry enabled vs disabled, interleaved so both sides see
/// the same thermal/scheduler conditions, min-of-reps each after an
/// untimed warmup pass of both legs (cold caches and lazy counter
/// resolution otherwise land on whichever leg runs first).
OverheadResult RunMetricsOverheadBench(const PreAlignmentFilter& filter,
                                       const Dataset& data, int length,
                                       int e, int reps) {
  const std::size_t n = data.size();
  PairBlockStorage block(length);
  for (std::size_t i = 0; i < n; ++i) {
    block.Add(data.reads[i], data.refs[i]);
  }
  std::vector<PairResult> results(n);
  OverheadResult r;
  obs::SetEnabled(true);
  filter.FilterBatch(block.view(), e, results.data());
  obs::SetEnabled(false);
  filter.FilterBatch(block.view(), e, results.data());
  for (int rep = 0; rep < reps; ++rep) {
    obs::SetEnabled(true);
    WallTimer on;
    filter.FilterBatch(block.view(), e, results.data());
    const double on_s = on.Seconds();
    obs::SetEnabled(false);
    WallTimer off;
    filter.FilterBatch(block.view(), e, results.data());
    const double off_s = off.Seconds();
    r.enabled_s = rep == 0 ? on_s : std::min(r.enabled_s, on_s);
    r.disabled_s = rep == 0 ? off_s : std::min(r.disabled_s, off_s);
  }
  obs::SetEnabled(true);
  return r;
}

struct IndexLoadResult {
  double build_s = 0.0;  // cold rebuild: CSR index + 2-bit encoding
  double load_s = 0.0;   // MappedIndexFile::Open
  double speedup() const { return load_s > 0.0 ? build_s / load_s : 0.0; }
};

/// Startup cost both ways on the same reference: rebuilding the mapper's
/// startup artifacts from the text vs mmap-loading the persisted file.
IndexLoadResult RunIndexLoadBench(const ReferenceSet& ref,
                                  const std::string& path, int reps) {
  IndexLoadResult r;
  BuildAndWriteIndexFile(path, ref, 12);
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    const KmerIndex index(ref.text(), 12);
    const ReferenceEncoding enc = EncodeReference(ref.text());
    // Consume both so the builds cannot be elided.
    const double s =
        index.positions().size() + enc.words.size() > 0 ? t.Seconds() : 0.0;
    r.build_s = rep == 0 ? s : std::min(r.build_s, s);
  }
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    const MappedIndexFile mapped = MappedIndexFile::Open(path);
    const double s = mapped.file_bytes() > 0 ? t.Seconds() : 0.0;
    r.load_s = rep == 0 ? s : std::min(r.load_s, s);
  }
  return r;
}

struct ServedResult {
  double wall_s = 0.0;
  std::uint64_t reads = 0;
  std::uint64_t coalesced_batches = 0;
};

/// Daemon throughput: a MapServer resident on the mmap'd index, two
/// concurrent clients each submitting half the reads over the socket.
ServedResult RunServedBench(const MappedIndexFile& mapped,
                            std::size_t read_count) {
  MapperConfig mcfg;
  mcfg.k = mapped.k();
  mcfg.read_length = 100;
  mcfg.error_threshold = 5;
  mcfg.verify_threads = 4;
  const ReadMapper mapper(mapped.reference(), mapped.seed_index().Alias(),
                          mcfg);

  auto devices = gpusim::MakeSetup1(2);
  auto ptrs = Ptrs(devices);
  EngineConfig cfg;
  cfg.read_length = 100;
  cfg.error_threshold = 5;
  GateKeeperGpuEngine engine(cfg, ptrs);
  engine.LoadReference(mapped.encoding(), mapped.reference_fingerprint());

  serve::ServeConfig scfg;
  scfg.socket_path = (std::filesystem::temp_directory_path() /
                      "gkgpu_bench_pipeline.sock")
                         .string();
  scfg.threads = 4;
  serve::MapServer server(mapper, &engine, scfg);
  std::thread run([&] { server.Run(); });
  while (!server.serving()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto seqs = SimulateReadSequences(
      mapped.reference().text(), read_count, 100,
      ReadErrorProfile::Illumina(), 733);
  std::string fastq_a, fastq_b;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    std::string& dst = i % 2 == 0 ? fastq_a : fastq_b;
    dst += "@b" + std::to_string(i) + "\n" + seqs[i] + "\n+\n" +
           std::string(seqs[i].size(), 'I') + "\n";
  }

  ServedResult r;
  WallTimer t;
  const auto client = [&](const std::string& text) {
    std::istringstream fastq(text);
    std::ostringstream sam;
    serve::MapOverSocket(scfg.socket_path, fastq, sam);
  };
  std::thread ca([&] { client(fastq_a); });
  std::thread cb([&] { client(fastq_b); });
  ca.join();
  cb.join();
  r.wall_s = t.Seconds();
  server.Shutdown();
  run.join();
  const serve::ServeStats stats = server.stats();
  r.reads = stats.reads;
  r.coalesced_batches = stats.coalesced_batches;
  return r;
}

struct ShardBuildResult {
  double serial_s = 0.0;
  double parallel_s = 0.0;
  std::size_t shard_count = 0;
  double speedup() const {
    return parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  }
};

/// Per-shard build concurrency on a forced multi-shard layout: the same
/// SeedIndex built with one worker vs one thread per shard.  k = 10 keeps
/// the per-shard offset tables small enough that the bench exercises the
/// scheduling, not the allocator.
ShardBuildResult RunShardBuildBench(const ReferenceSet& ref,
                                    std::int64_t shard_max_bp, int reps) {
  SeedConfig cfg;
  cfg.k = 10;
  cfg.shard_max_bp = shard_max_bp;
  ShardBuildResult r;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    const SeedIndex idx = SeedIndex::Build(ref, cfg, 1);
    const double s = idx.indexed_positions() > 0 ? t.Seconds() : 0.0;
    r.serial_s = rep == 0 ? s : std::min(r.serial_s, s);
    r.shard_count = idx.shard_count();
  }
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    const SeedIndex idx = SeedIndex::Build(ref, cfg, 0);
    const double s = idx.indexed_positions() > 0 ? t.Seconds() : 0.0;
    r.parallel_s = rep == 0 ? s : std::min(r.parallel_s, s);
  }
  return r;
}

struct MinimizerBenchResult {
  std::uint64_t dense_exhaustive_candidates = 0;  // every read k-mer seeded
  std::uint64_t dense_candidates = 0;             // pigeonhole (e+1 seeds)
  std::uint64_t minimizer_candidates = 0;
  std::uint64_t dense_mapped = 0;
  std::uint64_t minimizer_mapped = 0;
  std::uint64_t lost_mappings = 0;  // reads dense maps, minimizer misses
  double dense_seed_s = 0.0;
  double minimizer_seed_s = 0.0;
  int minimizer_w = 0;
  double candidate_ratio() const {
    return dense_exhaustive_candidates > 0
               ? static_cast<double>(minimizer_candidates) /
                     static_cast<double>(dense_exhaustive_candidates)
               : 0.0;
  }
};

/// The unwinnowed counterpart of minimizer seeding: every k-mer of the
/// read (both strands) against the dense index, window-checked and
/// deduplicated per strand exactly like the mapper's seeders.  This — not
/// the e+1-lookup pigeonhole scheme, which belongs to a different
/// sensitivity class and is unavailable on a sparse index — is the
/// baseline winnowing subsamples, and the volume the reduction gate is
/// measured against.
std::uint64_t ExhaustiveDenseCandidates(const ReadMapper& mapper,
                                        const std::vector<std::string>& reads) {
  const SeedIndex& idx = mapper.index();
  const ReferenceSet& ref = mapper.reference();
  const int k = idx.k();
  const std::int64_t genome_len = ref.length();
  std::uint64_t total = 0;
  std::vector<std::int64_t> cands;
  std::string rc;
  for (const std::string& read : reads) {
    const int L = static_cast<int>(read.size());
    ReverseComplementInto(read, &rc);
    for (const std::string_view seq :
         {std::string_view(read), std::string_view(rc)}) {
      cands.clear();
      for (int i = 0; i + k <= L; ++i) {
        const std::int64_t code = idx.shard(0).Encode(
            seq.substr(static_cast<std::size_t>(i),
                       static_cast<std::size_t>(k)));
        if (code < 0) continue;
        for (std::size_t sh = 0; sh < idx.shard_count(); ++sh) {
          const std::int64_t base = idx.plan().shard(sh).text_offset;
          for (const std::uint32_t pos : idx.shard(sh).LookupCode(code)) {
            const std::int64_t start =
                base + static_cast<std::int64_t>(pos) - i;
            if (start < 0 || start + L > genome_len) continue;
            if (ref.chromosome_count() > 1 &&
                !ref.WindowWithinChromosome(start, L)) {
              continue;
            }
            cands.push_back(start);
          }
        }
      }
      std::sort(cands.begin(), cands.end());
      cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
      total += cands.size();
    }
  }
  return total;
}

/// Dense vs (w,k) minimizer seeding on a repeat-dense reference, both
/// mapped filter-free (every candidate verified with banded DP — the
/// lossless path).  The candidate-volume gate demands winnowing seed
/// strictly fewer pairs than the exhaustive dense scheme it subsamples;
/// the lossless gate demands zero reads lost against the product's dense
/// pigeonhole default.  Losslessness is a guarantee, not luck: a read
/// within e = 5 edits of a 100 bp window keeps an error-free stretch of
/// at least ceil((100-5)/6) = 16 bp = w+k-1, so at least one winnowing
/// window lies inside the shared stretch and selects the same k-mer on
/// both sides.
MinimizerBenchResult RunMinimizerBench(const ReferenceSet& ref,
                                       std::size_t read_count, int length,
                                       int e) {
  const auto reads = SimulateReadSequences(
      ref.text(), read_count, length, ReadErrorProfile::Illumina(), 977);
  MinimizerBenchResult r;
  const auto run = [&](SeedMode mode, std::uint64_t* candidates,
                       double* seed_s, bool exhaustive) {
    MapperConfig mcfg;
    mcfg.read_length = length;
    mcfg.error_threshold = e;
    mcfg.seed_mode = mode;
    ReadMapper mapper(ref, mcfg);
    r.minimizer_w = mapper.config().minimizer_w;
    if (exhaustive) {
      r.dense_exhaustive_candidates = ExhaustiveDenseCandidates(mapper, reads);
    }
    std::vector<MappingRecord> records;
    const MappingStats s =
        mapper.MapReads(reads, /*filter=*/nullptr, &records);
    *candidates = s.candidates_total;
    *seed_s = s.seeding_seconds;
    std::vector<char> mapped(reads.size(), 0);
    for (const MappingRecord& m : records) mapped[m.read_index] = 1;
    return mapped;
  };
  const std::vector<char> dense =
      run(SeedMode::kDense, &r.dense_candidates, &r.dense_seed_s, true);
  const std::vector<char> sparse = run(SeedMode::kMinimizer,
                                       &r.minimizer_candidates,
                                       &r.minimizer_seed_s, false);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    r.dense_mapped += dense[i];
    r.minimizer_mapped += sparse[i];
    r.lost_mappings += dense[i] && !sparse[i] ? 1 : 0;
  }
  return r;
}

}  // namespace

int main() {
  const std::size_t pairs = EnvSize("GKGPU_PAIRS", 200000);
  const int length = 100;
  const int e = 5;
  // Keep >= ~24 batches in flight whatever the dataset size, so the
  // pipeline's fill/drain phases stay a small fraction of the run.
  const std::size_t batch = EnvSize(
      "GKGPU_BATCH", std::clamp<std::size_t>(pairs / 24, 1024, 8192));
  const int reps = static_cast<int>(EnvSize("GKGPU_REPS", 3));
  const Dataset data = MakeDataset(MrFastCandidateProfile(length), pairs, 907);

  std::printf("=== streaming pipeline vs blocking FilterPairs ===\n");
  std::printf("%zu pairs, %d bp, e = %d, batch = %zu (adaptive %zu-%zu), "
              "2 encode workers, double-buffered\n\n",
              pairs, length, e, batch, std::max<std::size_t>(512, batch / 2),
              batch);

  TablePrinter table({"actor", "setup", "GPUs", "blocking ft (s)",
                      "streaming ft (s)", "blocking Mp/s", "streaming Mp/s",
                      "speedup"});
  double headline_speedup = 0.0;
  RunResult headline_run;
  for (const EncodingActor actor :
       {EncodingActor::kDevice, EncodingActor::kHost}) {
    for (const int setup : {1, 2}) {
      const int max_dev = setup == 1 ? 8 : 4;
      for (int ndev = 1; ndev <= max_dev; ndev *= 2) {
        const RunResult r =
            RunOne(data, length, e, actor, setup, ndev, batch, reps);
        table.AddRow({EncodingActorName(actor), std::to_string(setup),
                      std::to_string(ndev), TablePrinter::Num(r.sync_ft, 4),
                      TablePrinter::Num(r.pipe_ft, 4),
                      TablePrinter::Num(MillionsPerSecond(pairs, r.sync_ft), 1),
                      TablePrinter::Num(MillionsPerSecond(pairs, r.pipe_ft), 1),
                      TablePrinter::Num(r.speedup(), 2) + "x"});
        // Acceptance gate: the best device-encoded 2-GPU configuration
        // must clear 1.3x.
        if (actor == EncodingActor::kDevice && ndev == 2 &&
            r.speedup() > headline_speedup) {
          headline_speedup = r.speedup();
          headline_run = r;
        }
      }
    }
  }
  table.Print(std::cout);

  const bool headline_ok = headline_speedup >= 1.3;

  // --- Batch filtration core: per-pair seed path vs FilterBatch --------
  const GateKeeperFilter gk_filter;
  const std::uint64_t gk_accepts_before = RegistryAccepts("GateKeeper-GPU");
  const BatchFilterResult batch_run =
      RunBatchFilterBench(gk_filter, data, length, e, reps);
  const std::uint64_t gk_accepts_reg =
      (RegistryAccepts("GateKeeper-GPU") - gk_accepts_before) /
      static_cast<std::uint64_t>(reps);
  const bool batch_ok = batch_run.speedup() >= 1.2;
  const bool batch_consistent =
      batch_run.per_pair_accepts == batch_run.batch_accepts;
  std::printf(
      "\n=== batch filtration core (GateKeeper, %s kernels) ===\n"
      "per-pair Filter(): %.4f s (%.1f Mp/s)   "
      "PairBlock FilterBatch: %.4f s (%.1f Mp/s)   speedup %.2fx %s 1.2x\n",
      simd::LevelName(simd::ActiveLevel()), batch_run.per_pair_s,
      MillionsPerSecond(pairs, batch_run.per_pair_s), batch_run.batch_s,
      MillionsPerSecond(pairs, batch_run.batch_s), batch_run.speedup(),
      batch_ok ? ">=" : "BELOW");
  if (!batch_consistent) {
    std::printf("batch path DISAGREES with the per-pair path: %llu vs %llu "
                "accepts\n",
                static_cast<unsigned long long>(batch_run.batch_accepts),
                static_cast<unsigned long long>(batch_run.per_pair_accepts));
  }

  // --- Batch SneakySnake: decode-free maze build vs per-pair Filter ----
  // The per-pair path re-walks the character-domain maze per candidate;
  // FilterBatch builds every diagonal bit-parallel from the encoded
  // lanes.  The gate is stiffer than GateKeeper's because the snake's
  // per-pair baseline is so much heavier.
  const SneakySnakeFilter snake_filter;
  const std::uint64_t snake_accepts_before = RegistryAccepts("SneakySnake");
  const BatchFilterResult snake_run =
      RunBatchFilterBench(snake_filter, data, length, e, reps);
  const std::uint64_t snake_accepts_reg =
      (RegistryAccepts("SneakySnake") - snake_accepts_before) /
      static_cast<std::uint64_t>(reps);
  const bool snake_ok = snake_run.speedup() >= 1.5;
  const bool snake_consistent =
      snake_run.per_pair_accepts == snake_run.batch_accepts;
  std::printf(
      "\n=== batch SneakySnake (%s kernels) ===\n"
      "per-pair Filter(): %.4f s (%.1f Mp/s)   "
      "PairBlock FilterBatch: %.4f s (%.1f Mp/s)   speedup %.2fx %s 1.5x\n",
      simd::LevelName(simd::ActiveLevel()), snake_run.per_pair_s,
      MillionsPerSecond(pairs, snake_run.per_pair_s), snake_run.batch_s,
      MillionsPerSecond(pairs, snake_run.batch_s), snake_run.speedup(),
      snake_ok ? ">=" : "BELOW");
  if (!snake_consistent) {
    std::printf("snake batch path DISAGREES with the per-pair path: "
                "%llu vs %llu accepts\n",
                static_cast<unsigned long long>(snake_run.batch_accepts),
                static_cast<unsigned long long>(snake_run.per_pair_accepts));
  }

  // --- per-filter false-accept rate from the registry funnel -----------
  // Ground truth is banded DP over the same pairs.  The filters have no
  // false rejects, so every truly-within-e pair is in the accept set and
  // the excess accepts are exactly the false ones.  Accept counts come
  // from the registry's funnel counters — the series `gkgpu stats`
  // exposes — not from the benches' own tallies.
  std::uint64_t true_pairs = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    true_pairs += WithinEditDistance(data.reads[i], data.refs[i], e) ? 1 : 0;
  }
  const auto false_accept_rate = [&](std::uint64_t accepts) {
    const std::uint64_t false_accepts =
        accepts > true_pairs ? accepts - true_pairs : 0;
    return accepts > 0
               ? static_cast<double>(false_accepts) /
                     static_cast<double>(accepts) * 100.0
               : 0.0;
  };
  const double gk_far = false_accept_rate(gk_accepts_reg);
  const double snake_far = false_accept_rate(snake_accepts_reg);
  std::printf(
      "\n=== false-accept rate (registry funnel vs banded-DP truth) ===\n"
      "%zu pairs, %llu truly within e = %d\n"
      "GateKeeper-GPU: %llu accepts -> %.2f%% false   "
      "SneakySnake: %llu accepts -> %.2f%% false\n",
      data.size(), static_cast<unsigned long long>(true_pairs), e,
      static_cast<unsigned long long>(gk_accepts_reg), gk_far,
      static_cast<unsigned long long>(snake_accepts_reg), snake_far);

  // --- metrics overhead: the always-on-cheap gate ----------------------
  const OverheadResult obs_run = RunMetricsOverheadBench(
      gk_filter, data, length, e, std::max(reps, 5));
  const bool obs_ok = obs_run.overhead_pct() <= 2.0;
  std::printf(
      "\n=== metrics overhead (FilterBatch, registry on vs off) ===\n"
      "enabled: %.4f s   disabled: %.4f s   overhead %.2f%% %s 2%%\n",
      obs_run.enabled_s, obs_run.disabled_s, obs_run.overhead_pct(),
      obs_ok ? "<=" : "ABOVE");

  // --- persistent index: mmap load vs cold rebuild ---------------------
  const std::size_t genome_len = EnvSize("GKGPU_GENOME", 1000000);
  const ReferenceSet bench_ref("bench_chr", GenerateGenome(genome_len, 501));
  const std::string index_path =
      (std::filesystem::temp_directory_path() / "gkgpu_bench_pipeline.gki")
          .string();
  const IndexLoadResult index_run =
      RunIndexLoadBench(bench_ref, index_path, reps);
  const bool index_ok = index_run.speedup() >= 10.0;
  std::printf(
      "\n=== persistent index (%zu bp reference, k = 12) ===\n"
      "cold rebuild (CSR + encoding): %.1f ms   mmap load: %.3f ms   "
      "speedup %.0fx %s 10x\n",
      genome_len, index_run.build_s * 1e3, index_run.load_s * 1e3,
      index_run.speedup(), index_ok ? ">=" : "BELOW");

  // --- daemon served throughput (two concurrent clients) ---------------
  const std::size_t served_reads = EnvSize("GKGPU_READS", 20000);
  const MappedIndexFile mapped = MappedIndexFile::Open(index_path);
  const ServedResult served = RunServedBench(mapped, served_reads);
  const double served_mreads =
      served.wall_s > 0.0
          ? static_cast<double>(served.reads) / served.wall_s / 1e6
          : 0.0;
  std::printf(
      "served %llu reads in %.3f s over 2 concurrent clients "
      "(%.2f Mreads/s, %llu coalesced batches)\n",
      static_cast<unsigned long long>(served.reads), served.wall_s,
      served_mreads,
      static_cast<unsigned long long>(served.coalesced_batches));
  std::error_code index_ec;
  std::filesystem::remove(index_path, index_ec);

  // --- sharded index: concurrent vs serial shard builds ----------------
  // An 8-chromosome reference with the shard budget forced down to a
  // quarter of the genome — the small-genome stand-in for a > 4 Gbp
  // layout, where each shard's CSR build is independent work.
  ReferenceSet shard_ref;
  const std::size_t chrom_len = std::max<std::size_t>(genome_len / 8, 2048);
  for (int c = 0; c < 8; ++c) {
    shard_ref.Add("shard_chr" + std::to_string(c + 1),
                  GenerateGenome(chrom_len, 601 + static_cast<unsigned>(c)));
  }
  const std::int64_t shard_budget =
      static_cast<std::int64_t>(shard_ref.text().size() / 4 + 1);
  const ShardBuildResult shard_run =
      RunShardBuildBench(shard_ref, shard_budget, reps);
  std::printf(
      "\n=== sharded index build (%zu bp, 8 chromosomes, %zu shards, "
      "k = 10) ===\n"
      "serial: %.1f ms   concurrent: %.1f ms   speedup %.2fx\n",
      shard_ref.text().size(), shard_run.shard_count,
      shard_run.serial_s * 1e3, shard_run.parallel_s * 1e3,
      shard_run.speedup());

  // --- minimizer vs dense seeding (lossless mapping path) --------------
  const std::size_t map_reads = EnvSize("GKGPU_MAP_READS", 4000);
  const MinimizerBenchResult min_run =
      RunMinimizerBench(shard_ref, map_reads, length, e);
  const bool minimizer_ok =
      min_run.minimizer_candidates < min_run.dense_exhaustive_candidates;
  const bool minimizer_lossless = min_run.lost_mappings == 0;
  std::printf(
      "\n=== minimizer seeding (w = %d, k = 12, %zu reads, no filter) ===\n"
      "dense exhaustive (every read k-mer): %llu candidates   "
      "dense pigeonhole: %llu candidates, %llu reads mapped\n"
      "minimizer: %llu candidates, %llu reads mapped\n"
      "candidate ratio vs exhaustive %.3f %s 1   lost mappings %llu %s 0\n",
      min_run.minimizer_w, map_reads,
      static_cast<unsigned long long>(min_run.dense_exhaustive_candidates),
      static_cast<unsigned long long>(min_run.dense_candidates),
      static_cast<unsigned long long>(min_run.dense_mapped),
      static_cast<unsigned long long>(min_run.minimizer_candidates),
      static_cast<unsigned long long>(min_run.minimizer_mapped),
      min_run.candidate_ratio(), minimizer_ok ? "<" : "NOT BELOW",
      static_cast<unsigned long long>(min_run.lost_mappings),
      minimizer_lossless ? "==" : "ABOVE");

  // Machine-readable trajectory point (uploaded as a CI artifact).
  BenchReport report("pipeline");
  report.Add("pairs", pairs);
  report.Add("reps", reps);
  report.Add("batch", batch);
  report.Add("read_length", length);
  report.Add("error_threshold", e);
  report.Add("blocking_seconds", headline_run.sync_ft);
  report.Add("streaming_seconds", headline_run.pipe_ft);
  report.Add("blocking_mpairs_per_s",
             MillionsPerSecond(pairs, headline_run.sync_ft));
  report.Add("streaming_mpairs_per_s",
             MillionsPerSecond(pairs, headline_run.pipe_ft));
  report.Add("speedup", headline_speedup);
  report.Add("gate_threshold", 1.3);
  report.Add("gate_pass", headline_ok);
  report.Add("batch_simd_level", simd::LevelName(simd::ActiveLevel()));
  report.Add("simd_avx2_compiled", simd::Avx2Compiled());
  report.Add("simd_avx512_compiled", simd::Avx512Compiled());
  report.Add("batch_per_pair_seconds", batch_run.per_pair_s);
  report.Add("batch_seconds", batch_run.batch_s);
  report.Add("batch_per_pair_mpairs_per_s",
             MillionsPerSecond(pairs, batch_run.per_pair_s));
  report.Add("batch_mpairs_per_s",
             MillionsPerSecond(pairs, batch_run.batch_s));
  report.Add("batch_speedup", batch_run.speedup());
  report.Add("batch_gate_threshold", 1.2);
  report.Add("batch_gate_pass", batch_ok);
  report.Add("batch_decisions_consistent", batch_consistent);
  report.Add("snake_batch_per_pair_seconds", snake_run.per_pair_s);
  report.Add("snake_batch_seconds", snake_run.batch_s);
  report.Add("snake_batch_per_pair_mpairs_per_s",
             MillionsPerSecond(pairs, snake_run.per_pair_s));
  report.Add("snake_batch_mpairs_per_s",
             MillionsPerSecond(pairs, snake_run.batch_s));
  report.Add("snake_batch_speedup", snake_run.speedup());
  report.Add("snake_batch_gate_threshold", 1.5);
  report.Add("snake_batch_gate_pass", snake_ok);
  report.Add("snake_batch_decisions_consistent", snake_consistent);
  report.Add("index_genome_bp", genome_len);
  report.Add("index_build_ms", index_run.build_s * 1e3);
  report.Add("index_load_ms", index_run.load_s * 1e3);
  report.Add("index_load_speedup", index_run.speedup());
  report.Add("index_gate_threshold", 10.0);
  report.Add("index_gate_pass", index_ok);
  report.Add("served_reads", served.reads);
  report.Add("served_wall_seconds", served.wall_s);
  report.Add("served_mreads_per_s", served_mreads);
  report.Add("served_coalesced_batches", served.coalesced_batches);
  report.Add("gatekeeper_false_accept_pct", gk_far);
  report.Add("snake_false_accept_pct", snake_far);
  report.Add("metrics_enabled_seconds", obs_run.enabled_s);
  report.Add("metrics_disabled_seconds", obs_run.disabled_s);
  report.Add("metrics_overhead_pct", obs_run.overhead_pct());
  report.Add("metrics_gate_threshold_pct", 2.0);
  report.Add("metrics_gate_pass", obs_ok);
  report.Add("shard_count", shard_run.shard_count);
  report.Add("shard_build_serial_ms", shard_run.serial_s * 1e3);
  report.Add("shard_build_parallel_ms", shard_run.parallel_s * 1e3);
  report.Add("shard_build_speedup", shard_run.speedup());
  report.Add("minimizer_w", min_run.minimizer_w);
  report.Add("minimizer_reads", map_reads);
  report.Add("dense_exhaustive_candidates",
             min_run.dense_exhaustive_candidates);
  report.Add("dense_candidates", min_run.dense_candidates);
  report.Add("minimizer_candidates", min_run.minimizer_candidates);
  report.Add("minimizer_candidate_ratio", min_run.candidate_ratio());
  report.Add("dense_mapped_reads", min_run.dense_mapped);
  report.Add("minimizer_mapped_reads", min_run.minimizer_mapped);
  report.Add("minimizer_lost_mappings", min_run.lost_mappings);
  report.Add("minimizer_gate_pass", minimizer_ok);
  report.Add("minimizer_lossless_gate_pass", minimizer_lossless);

  // The whole-run funnel and stage tail latencies, from the same registry
  // snapshot the daemon's `gkgpu stats` would serve.
  const obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
  report.Add("funnel_filter_input",
             static_cast<std::uint64_t>(
                 snap.Total("gkgpu_filter_input_total")));
  report.Add("funnel_accepts",
             static_cast<std::uint64_t>(
                 snap.Total("gkgpu_filter_accepts_total")));
  report.Add("funnel_rejects",
             static_cast<std::uint64_t>(
                 snap.Total("gkgpu_filter_rejects_total")));
  report.Add("funnel_bypasses",
             static_cast<std::uint64_t>(
                 snap.Total("gkgpu_filter_bypasses_total")));
  if (const obs::FamilySnapshot* service =
          snap.Find("gkgpu_stage_service_seconds")) {
    for (const auto& s : service->samples) {
      if (s.labels.empty() || !s.histogram || s.histogram->count == 0) {
        continue;
      }
      report.Add("stage_" + s.labels[0].second + "_p99_seconds",
                 s.histogram->Quantile(0.99));
    }
  }
  report.AddRaw("metrics", snap.RenderJson());
  report.Write();
  std::printf(
      "\nheadline (best device-encoded 2-GPU config): %.2fx %s threshold "
      "1.3x\n",
      headline_speedup, headline_ok ? ">=" : "BELOW");
  std::printf(
      "\nExpected shape: with device encoding the host staging and the\n"
      "simulated kernel+transfer time are comparable, so the overlapped\n"
      "timeline approaches 2x over the serialized blocking path.  With\n"
      "host encoding the measured preprocessing dominates the simulated\n"
      "device by ~100x, so both paths converge on the encode rate; on\n"
      "few-core hosts the streaming rows can even dip below 1x because\n"
      "the concurrently measured encode workers contend with the\n"
      "functionally simulated kernels for the same cores — contention a\n"
      "real GPU would not cause and a multicore host amortizes.\n");
  return (headline_ok && batch_ok && batch_consistent && snake_ok &&
          snake_consistent && index_ok && obs_ok && minimizer_ok &&
          minimizer_lossless)
             ? 0
             : 1;
}
