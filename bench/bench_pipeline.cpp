// Streaming pipeline vs. the blocking engine path: throughput of
// StreamingPipeline (asynchronous, double-buffered, multi-device) against
// GateKeeperGpuEngine::FilterPairs (lockstep rounds, host preprocessing
// serialized with the device pipeline) on the same pair sets.
//
// The comparable quantity is the filtration makespan: for the blocking
// path FilterRunStats::filter_seconds (measured host work + simulated
// device time, serialized), for the pipeline PipelineStats::filter_seconds
// (the overlapped timeline where encoding streams concurrently with
// kernels and transfers).  Verification is disabled on both sides.
//
// The headline configuration is the paper's "encoding in device" design,
// where host staging and simulated device time are of comparable
// magnitude and the overlap discipline pays: the streaming path must show
// >= 1.3x on the 2-GPU setups.  Host-encoded rows are included for
// completeness; there the (real, single-machine) preprocessing dominates
// the simulated kernels by ~100x, so overlap gains are bounded by the
// device share — on real multicore hardware the encode worker pool closes
// that gap instead.
//
// Scale with GKGPU_PAIRS (default 200,000).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "pipeline/read_to_sam.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

namespace {

struct RunResult {
  double sync_ft = 0.0;
  double pipe_ft = 0.0;
  double speedup() const { return pipe_ft > 0.0 ? sync_ft / pipe_ft : 0.0; }
};

RunResult RunOne(const Dataset& data, int length, int e, EncodingActor actor,
                 int setup, int ndev, std::size_t batch, int reps) {
  // Host staging/encoding is measured wall time on ~millisecond scales;
  // min-of-reps suppresses scheduler noise the same way for both paths.
  RunResult r;
  for (int rep = 0; rep < reps; ++rep) {
    auto devices =
        setup == 1 ? gpusim::MakeSetup1(ndev) : gpusim::MakeSetup2(ndev);
    const FilterRunStats s = RunEngine(data, length, e, actor, Ptrs(devices));
    r.sync_ft = rep == 0 ? s.filter_seconds
                         : std::min(r.sync_ft, s.filter_seconds);
  }
  for (int rep = 0; rep < reps; ++rep) {
    auto devices =
        setup == 1 ? gpusim::MakeSetup1(ndev) : gpusim::MakeSetup2(ndev);
    auto ptrs = Ptrs(devices);
    EngineConfig cfg;
    cfg.read_length = length;
    cfg.error_threshold = e;
    cfg.encoding = actor;
    GateKeeperGpuEngine engine(cfg, ptrs);
    pipeline::PipelineConfig pcfg;
    pcfg.batch_size = batch;
    pcfg.encode_workers = 2;
    pcfg.slots_per_device = 2;
    pcfg.verify = false;
    // Occupancy-driven batch sizing with the batcher in the loop.  The
    // tuned size is the ceiling: growing past it would cut the batch
    // count below the >= ~24 the fill/drain amortization needs, so the
    // batcher starts there and only shrinks under sink backpressure.
    pcfg.adaptive = true;
    pcfg.adaptive_config.min_size = std::max<std::size_t>(512, batch / 2);
    pcfg.adaptive_config.max_size = batch;
    std::vector<PairResult> results;
    const pipeline::PipelineStats s = pipeline::FilterPairsStreaming(
        &engine, pcfg, data.reads, data.refs, &results);
    r.pipe_ft = rep == 0 ? s.filter_seconds
                         : std::min(r.pipe_ft, s.filter_seconds);
  }
  return r;
}

}  // namespace

int main() {
  const std::size_t pairs = EnvSize("GKGPU_PAIRS", 200000);
  const int length = 100;
  const int e = 5;
  // Keep >= ~24 batches in flight whatever the dataset size, so the
  // pipeline's fill/drain phases stay a small fraction of the run.
  const std::size_t batch = EnvSize(
      "GKGPU_BATCH", std::clamp<std::size_t>(pairs / 24, 1024, 8192));
  const int reps = static_cast<int>(EnvSize("GKGPU_REPS", 3));
  const Dataset data = MakeDataset(MrFastCandidateProfile(length), pairs, 907);

  std::printf("=== streaming pipeline vs blocking FilterPairs ===\n");
  std::printf("%zu pairs, %d bp, e = %d, batch = %zu (adaptive %zu-%zu), "
              "2 encode workers, double-buffered\n\n",
              pairs, length, e, batch, std::max<std::size_t>(512, batch / 2),
              batch);

  TablePrinter table({"actor", "setup", "GPUs", "blocking ft (s)",
                      "streaming ft (s)", "blocking Mp/s", "streaming Mp/s",
                      "speedup"});
  double headline_speedup = 0.0;
  RunResult headline_run;
  for (const EncodingActor actor :
       {EncodingActor::kDevice, EncodingActor::kHost}) {
    for (const int setup : {1, 2}) {
      const int max_dev = setup == 1 ? 8 : 4;
      for (int ndev = 1; ndev <= max_dev; ndev *= 2) {
        const RunResult r =
            RunOne(data, length, e, actor, setup, ndev, batch, reps);
        table.AddRow({EncodingActorName(actor), std::to_string(setup),
                      std::to_string(ndev), TablePrinter::Num(r.sync_ft, 4),
                      TablePrinter::Num(r.pipe_ft, 4),
                      TablePrinter::Num(MillionsPerSecond(pairs, r.sync_ft), 1),
                      TablePrinter::Num(MillionsPerSecond(pairs, r.pipe_ft), 1),
                      TablePrinter::Num(r.speedup(), 2) + "x"});
        // Acceptance gate: the best device-encoded 2-GPU configuration
        // must clear 1.3x.
        if (actor == EncodingActor::kDevice && ndev == 2 &&
            r.speedup() > headline_speedup) {
          headline_speedup = r.speedup();
          headline_run = r;
        }
      }
    }
  }
  table.Print(std::cout);

  const bool headline_ok = headline_speedup >= 1.3;

  // Machine-readable trajectory point (uploaded as a CI artifact).
  BenchReport report("pipeline");
  report.Add("pairs", pairs);
  report.Add("reps", reps);
  report.Add("batch", batch);
  report.Add("read_length", length);
  report.Add("error_threshold", e);
  report.Add("blocking_seconds", headline_run.sync_ft);
  report.Add("streaming_seconds", headline_run.pipe_ft);
  report.Add("blocking_mpairs_per_s",
             MillionsPerSecond(pairs, headline_run.sync_ft));
  report.Add("streaming_mpairs_per_s",
             MillionsPerSecond(pairs, headline_run.pipe_ft));
  report.Add("speedup", headline_speedup);
  report.Add("gate_threshold", 1.3);
  report.Add("gate_pass", headline_ok);
  report.Write();
  std::printf(
      "\nheadline (best device-encoded 2-GPU config): %.2fx %s threshold "
      "1.3x\n",
      headline_speedup, headline_ok ? ">=" : "BELOW");
  std::printf(
      "\nExpected shape: with device encoding the host staging and the\n"
      "simulated kernel+transfer time are comparable, so the overlapped\n"
      "timeline approaches 2x over the serialized blocking path.  With\n"
      "host encoding the measured preprocessing dominates the simulated\n"
      "device by ~100x, so both paths converge on the encode rate; on\n"
      "few-core hosts the streaming rows can even dip below 1x because\n"
      "the concurrently measured encode workers contend with the\n"
      "functionally simulated kernels for the same cores — contention a\n"
      "real GPU would not cause and a multicore host amortizes.\n");
  return headline_ok ? 0 : 1;
}
