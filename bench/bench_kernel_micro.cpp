// Google-benchmark microbenchmarks of the filtration core itself: per-pair
// latency of GateKeeperFiltration across read lengths and error thresholds,
// the amendment/count primitives, the baselines, and the exact aligners —
// the numbers behind the throughput tables.
#include <benchmark/benchmark.h>

#include "align/banded.hpp"
#include "align/myers.hpp"
#include "align/needleman_wunsch.hpp"
#include "encode/encoded.hpp"
#include "filters/gatekeeper_core.hpp"
#include "filters/magnet.hpp"
#include "filters/shouji.hpp"
#include "filters/sneakysnake.hpp"
#include "sim/pairgen.hpp"

namespace gkgpu {
namespace {

struct EncodedPair {
  Word read[kMaxEncodedWords];
  Word ref[kMaxEncodedWords];
};

EncodedPair MakeEncoded(int length, int edits, std::uint64_t seed) {
  const SequencePair p = MakePairWithEdits(length, edits, 0.3, seed);
  EncodedPair enc;
  EncodeSequence(p.read, enc.read);
  EncodeSequence(p.ref, enc.ref);
  return enc;
}

void BM_GateKeeperFiltration(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  const int e = static_cast<int>(state.range(1));
  const EncodedPair p = MakeEncoded(length, e + 2, 99);
  GateKeeperParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GateKeeperFiltration(p.read, p.ref, length, e, params));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GateKeeperFiltration)
    ->ArgsProduct({{100, 150, 250}, {0, 2, 5, 10}});

void BM_GateKeeperFiltrationLut(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  const int e = static_cast<int>(state.range(1));
  const EncodedPair p = MakeEncoded(length, e + 2, 99);
  GateKeeperParams params;
  params.use_lut = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GateKeeperFiltration(p.read, p.ref, length, e, params));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GateKeeperFiltrationLut)->Args({100, 5})->Args({250, 10});

void BM_Amendment(benchmark::State& state) {
  Word mask[kMaxMaskWords];
  for (int i = 0; i < kMaxMaskWords; ++i) {
    mask[i] = 0x5A5A5A5Au ^ (0x01010101u * i);
  }
  const int nwords = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Word scratch[kMaxMaskWords];
    std::memcpy(scratch, mask, sizeof(scratch));
    AmendShortZeroRuns(scratch, nwords);
    benchmark::DoNotOptimize(scratch[0]);
  }
}
BENCHMARK(BM_Amendment)->Arg(4)->Arg(8)->Arg(16);

void BM_CountOneRuns(benchmark::State& state) {
  Word mask[kMaxMaskWords];
  for (int i = 0; i < kMaxMaskWords; ++i) {
    mask[i] = 0x93A5C71Eu * (i + 1);
  }
  const int nwords = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountOneRuns(mask, nwords));
  }
}
BENCHMARK(BM_CountOneRuns)->Arg(4)->Arg(16);

void BM_BaselineFilter(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const int e = 5;
  const SequencePair p = MakePairWithEdits(100, 7, 0.3, 7);
  MagnetFilter magnet;
  ShoujiFilter shouji;
  SneakySnakeFilter snake;
  PreAlignmentFilter* filter =
      which == 0 ? static_cast<PreAlignmentFilter*>(&magnet)
                 : which == 1 ? static_cast<PreAlignmentFilter*>(&shouji)
                              : static_cast<PreAlignmentFilter*>(&snake);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->Filter(p.read, p.ref, e));
  }
  state.SetLabel(std::string(filter->name()));
}
BENCHMARK(BM_BaselineFilter)->DenseRange(0, 2);

void BM_ExactAligners(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const SequencePair p = MakePairWithEdits(100, 7, 0.3, 11);
  MyersAligner myers;
  for (auto _ : state) {
    switch (which) {
      case 0:
        benchmark::DoNotOptimize(NwEditDistance(p.read, p.ref));
        break;
      case 1:
        benchmark::DoNotOptimize(myers.Distance(p.read, p.ref));
        break;
      default:
        benchmark::DoNotOptimize(BandedEditDistance(p.read, p.ref, 10));
        break;
    }
  }
  state.SetLabel(which == 0 ? "NW-DP" : which == 1 ? "Myers" : "Banded-k10");
}
BENCHMARK(BM_ExactAligners)->DenseRange(0, 2);

}  // namespace
}  // namespace gkgpu

BENCHMARK_MAIN();
