// Reproduces Fig. 7 and Sup. Table S.20: the effect of read length on
// single-GPU filtering throughput (millions of filtrations per second,
// with respect to filter time) at e = 0 and e = 4, for both setups and
// both encoding actors.
//
// Scale with GKGPU_PAIRS (default 150,000).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

int main() {
  const std::size_t pairs = EnvSize("GKGPU_PAIRS", 150000);
  std::printf("=== Fig. 7 / Table S.20: read length vs throughput ===\n");
  std::printf("(millions of filtrations per second, filter time)\n\n");
  TablePrinter table({"e", "read length", "Setup1 dev-enc", "Setup1 host-enc",
                      "Setup2 dev-enc", "Setup2 host-enc"});
  for (const int e : {0, 4}) {
    for (const int length : {100, 150, 250}) {
      const Dataset data = MakeDataset(MrFastCandidateProfile(length), pairs,
                                       700 + length);
      std::vector<std::string> row{std::to_string(e), std::to_string(length)};
      for (const int setup : {1, 2}) {
        for (const EncodingActor actor :
             {EncodingActor::kDevice, EncodingActor::kHost}) {
          auto devices =
              setup == 1 ? gpusim::MakeSetup1(1) : gpusim::MakeSetup2(1);
          const FilterRunStats s =
              RunEngine(data, length, e, actor, Ptrs(devices));
          row.push_back(TablePrinter::Num(
              MillionsPerSecond(pairs, s.filter_seconds), 2));
        }
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::printf("\nExpected shape (paper Fig. 7): throughput decreases with\n"
              "read length; the error threshold has little effect.\n");
  return 0;
}
