// Paired-end mapping vs two independent single-end passes: how much
// verification work the pairing constraint removes (the candidate-pruning
// ratio) and what it does to throughput.
//
// The single-end baseline maps R1 and the R2 set as two MapReads calls —
// every oriented candidate of every mate enters filtration/verification
// independently.  The paired path prunes each mate's candidates to those
// an opposite-strand partner can complete within the insert window before
// the filter ever sees them, then scores concordant combinations and
// rescues lost mates.
//
// An A/B leg re-runs the blocking driver with joint_filtration off and
// compares: joint filtration must put strictly fewer lanes through the
// filter and no more SW rescues, with byte-identical SAM (the early-out
// contract never changes a verdict).
//
// Gates (exercised by CI):
//   * pruning ratio > 1.0 — pairing must remove candidates on concordant
//     2x100 bp data;
//   * >= 90% of simulated pairs recover as proper pairs;
//   * joint filtration early-outs > 0 lanes and its SAM matches
//     independent filtration byte for byte.
//
// Scale with GKGPU_PAIRS (default 20,000 pairs) and GKGPU_REPS
// (min-of-reps, default 3).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "io/fastq.hpp"
#include "io/paired_fastq.hpp"
#include "mapper/mapper.hpp"
#include "paired/paired.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

namespace {

constexpr int kLength = 100;
constexpr int kThreshold = 5;

struct Workload {
  std::string genome;
  std::vector<FastqRecord> r1, r2;
  std::vector<std::string> r1_seqs, r2_seqs;
};

Workload MakeWorkload(std::size_t n_pairs) {
  Workload w;
  w.genome = GenerateGenome(2000000, 11);
  PairSimConfig cfg;
  cfg.read_length = kLength;
  cfg.insert_mean = 350.0;
  cfg.insert_sd = 30.0;
  const auto pairs = SimulatePairs(w.genome, n_pairs, cfg, 13);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    w.r1.push_back({"p" + std::to_string(i), pairs[i].seq1, ""});
    w.r2.push_back({"p" + std::to_string(i), pairs[i].seq2, ""});
    w.r1_seqs.push_back(pairs[i].seq1);
    w.r2_seqs.push_back(pairs[i].seq2);
  }
  return w;
}

MapperConfig MakeMapperConfig() {
  MapperConfig mcfg;
  mcfg.k = 12;
  mcfg.read_length = kLength;
  mcfg.error_threshold = kThreshold;
  return mcfg;
}

}  // namespace

int main() {
  const std::size_t n_pairs = EnvSize("GKGPU_PAIRS", 20000);
  const int reps = static_cast<int>(EnvSize("GKGPU_REPS", 3));
  const Workload w = MakeWorkload(n_pairs);
  std::printf("paired-end bench: %zu pairs of 2x%d bp, e=%d, %d reps "
              "(min-of-reps)\n\n",
              n_pairs, kLength, kThreshold, reps);

  // --- Baseline: two independent single-end passes. ---
  double se_seconds = 0.0;
  std::uint64_t se_candidates = 0;
  std::uint64_t se_verify = 0;
  std::uint64_t se_mapped = 0;
  for (int rep = 0; rep < reps; ++rep) {
    auto devices = gpusim::MakeSetup1(2);
    auto ptrs = Ptrs(devices);
    EngineConfig ecfg;
    ecfg.read_length = kLength;
    ecfg.error_threshold = kThreshold;
    GateKeeperGpuEngine engine(ecfg, ptrs);
    ReadMapper mapper(w.genome, MakeMapperConfig());
    const MappingStats s1 = mapper.MapReads(w.r1_seqs, &engine, nullptr);
    const MappingStats s2 = mapper.MapReads(w.r2_seqs, &engine, nullptr);
    const double t = s1.total_seconds + s2.total_seconds;
    se_seconds = rep == 0 ? t : std::min(se_seconds, t);
    se_candidates = s1.candidates_total + s2.candidates_total;
    se_verify = s1.verification_pairs + s2.verification_pairs;
    se_mapped = s1.mapped_reads + s2.mapped_reads;
  }

  // --- Paired path (blocking driver; the golden test pins streaming to
  // byte-identical output, so one driver's numbers speak for both). ---
  double pe_seconds = 0.0;
  PairedStats pe;
  for (int rep = 0; rep < reps; ++rep) {
    auto devices = gpusim::MakeSetup1(2);
    auto ptrs = Ptrs(devices);
    EngineConfig ecfg;
    ecfg.read_length = kLength;
    ecfg.error_threshold = kThreshold;
    GateKeeperGpuEngine engine(ecfg, ptrs);
    ReadMapper mapper(w.genome, MakeMapperConfig());
    PairedConfig pconf;
    pconf.max_insert = 800;
    PairedEndMapper paired(mapper, pconf);
    pe = paired.MapPairs(w.r1, w.r2, &engine, nullptr);
    pe_seconds =
        rep == 0 ? pe.total_seconds : std::min(pe_seconds, pe.total_seconds);
  }

  // --- Streaming driver with the paired adaptive preset (bounded
  // memory; MapPairsStreaming swaps in PairedAdaptiveDefaults for knobs
  // left at the generic single-end values). ---
  double st_seconds = 0.0;
  PairedStats st;
  for (int rep = 0; rep < reps; ++rep) {
    auto devices = gpusim::MakeSetup1(2);
    auto ptrs = Ptrs(devices);
    EngineConfig ecfg;
    ecfg.read_length = kLength;
    ecfg.error_threshold = kThreshold;
    GateKeeperGpuEngine engine(ecfg, ptrs);
    ReadMapper mapper(w.genome, MakeMapperConfig());
    PairedConfig pconf;
    pconf.max_insert = 800;
    std::stringstream fq1, fq2;
    WriteFastq(fq1, w.r1);
    WriteFastq(fq2, w.r2);
    PairedFastqReader reader(fq1, fq2);
    pipeline::PipelineConfig pcfg;
    pcfg.adaptive = true;
    st = StreamPairedFastqToSam(reader, mapper, &engine, pconf, pcfg,
                                nullptr);
    st_seconds = rep == 0 ? st.total_seconds
                          : std::min(st_seconds, st.total_seconds);
  }

  // --- Joint-filtration A/B: one untimed blocking run per mode, SAM
  // captured, to measure what the mate-aware early-out saves and prove it
  // changes nothing the caller can see. ---
  PairedStats ab_on, ab_off;
  std::string sam_on, sam_off;
  {
    auto devices = gpusim::MakeSetup1(2);
    auto ptrs = Ptrs(devices);
    EngineConfig ecfg;
    ecfg.read_length = kLength;
    ecfg.error_threshold = kThreshold;
    GateKeeperGpuEngine engine(ecfg, ptrs);
    ReadMapper mapper(w.genome, MakeMapperConfig());
    PairedConfig pconf;
    pconf.max_insert = 800;
    std::stringstream out_on;
    ab_on = PairedEndMapper(mapper, pconf).MapPairs(w.r1, w.r2, &engine,
                                                    &out_on);
    sam_on = out_on.str();
    pconf.joint_filtration = false;
    std::stringstream out_off;
    ab_off = PairedEndMapper(mapper, pconf).MapPairs(w.r1, w.r2, &engine,
                                                     &out_off);
    sam_off = out_off.str();
  }
  const std::uint64_t filtered_on =
      ab_on.verification_pairs + ab_on.rejected_pairs;
  const std::uint64_t filtered_off =
      ab_off.verification_pairs + ab_off.rejected_pairs;
  const double earlyout_ratio =
      ab_on.candidates_paired > 0
          ? static_cast<double>(ab_on.earlyout_lanes) /
                static_cast<double>(ab_on.candidates_paired)
          : 0.0;
  const double filtered_saved_pct =
      filtered_off > 0 ? 100.0 *
                             (static_cast<double>(filtered_off) -
                              static_cast<double>(filtered_on)) /
                             static_cast<double>(filtered_off)
                       : 0.0;

  const double prune = pe.PruningRatio();
  const double verify_ratio =
      pe.verification_pairs > 0
          ? static_cast<double>(se_verify) /
                static_cast<double>(pe.verification_pairs)
          : 0.0;
  const double se_rate = se_seconds > 0.0
                             ? static_cast<double>(n_pairs) / se_seconds
                             : 0.0;
  const double pe_rate = pe_seconds > 0.0
                             ? static_cast<double>(n_pairs) / pe_seconds
                             : 0.0;
  const double st_rate = st_seconds > 0.0
                             ? static_cast<double>(n_pairs) / st_seconds
                             : 0.0;

  TablePrinter t({"metric", "single-end x2", "paired", "paired streaming"});
  t.AddRow({"candidates", TablePrinter::Count(se_candidates),
            TablePrinter::Count(pe.candidates_paired),
            TablePrinter::Count(st.candidates_paired)});
  t.AddRow({"verification pairs", TablePrinter::Count(se_verify),
            TablePrinter::Count(pe.verification_pairs),
            TablePrinter::Count(st.verification_pairs)});
  t.AddRow({"mapped reads / proper pairs", TablePrinter::Count(se_mapped),
            TablePrinter::Count(pe.proper_pairs),
            TablePrinter::Count(st.proper_pairs)});
  t.AddRow({"wall (s)", TablePrinter::Num(se_seconds, 3),
            TablePrinter::Num(pe_seconds, 3),
            TablePrinter::Num(st_seconds, 3)});
  t.AddRow({"pairs/s", TablePrinter::Num(se_rate, 0),
            TablePrinter::Num(pe_rate, 0), TablePrinter::Num(st_rate, 0)});
  t.Print(std::cout);
  std::printf(
      "\npruning ratio (seeded/after-pairing): %.2fx\n"
      "verification reduction vs single-end:  %.2fx\n"
      "proper pairs: %llu/%zu (rescued %llu), insert model %.1f +/- %.1f\n",
      prune, verify_ratio,
      static_cast<unsigned long long>(pe.proper_pairs), n_pairs,
      static_cast<unsigned long long>(pe.rescued_mates), pe.insert_mean,
      pe.insert_sigma);
  std::printf(
      "joint filtration: %llu/%llu lanes early-outed (%.1f%%), filtered "
      "lanes %llu -> %llu (%.1f%% saved), %llu combinations "
      "short-circuited, SW rescues %llu -> %llu (gate skipped %llu)\n",
      static_cast<unsigned long long>(ab_on.earlyout_lanes),
      static_cast<unsigned long long>(ab_on.candidates_paired),
      100.0 * earlyout_ratio, static_cast<unsigned long long>(filtered_off),
      static_cast<unsigned long long>(filtered_on), filtered_saved_pct,
      static_cast<unsigned long long>(ab_on.shortcircuited_combinations),
      static_cast<unsigned long long>(ab_off.rescue_invocations),
      static_cast<unsigned long long>(ab_on.rescue_invocations),
      static_cast<unsigned long long>(ab_on.rescue_gate_skips));

  bool ok = true;
  if (!(prune > 1.0)) {
    std::printf("FAIL: pairing pruned nothing (ratio %.2f <= 1.0)\n", prune);
    ok = false;
  }
  if (pe.proper_pairs * 10 < n_pairs * 9) {
    std::printf("FAIL: only %llu/%zu pairs recovered as proper\n",
                static_cast<unsigned long long>(pe.proper_pairs), n_pairs);
    ok = false;
  }
  if (ab_on.earlyout_lanes == 0 || filtered_on >= filtered_off) {
    std::printf("FAIL: joint filtration saved nothing (%llu early-outs, "
                "filtered %llu vs %llu)\n",
                static_cast<unsigned long long>(ab_on.earlyout_lanes),
                static_cast<unsigned long long>(filtered_on),
                static_cast<unsigned long long>(filtered_off));
    ok = false;
  }
  if (ab_on.rescue_invocations > ab_off.rescue_invocations) {
    std::printf("FAIL: joint filtration ran MORE SW rescues (%llu vs %llu)\n",
                static_cast<unsigned long long>(ab_on.rescue_invocations),
                static_cast<unsigned long long>(ab_off.rescue_invocations));
    ok = false;
  }
  if (sam_on != sam_off) {
    std::printf("FAIL: joint filtration changed the SAM output "
                "(%zu vs %zu bytes)\n", sam_on.size(), sam_off.size());
    ok = false;
  }
  // The drivers are pinned byte-identical by the golden test; the
  // adaptive preset must not perturb what the streaming driver maps.
  if (st.proper_pairs != pe.proper_pairs ||
      st.duplicate_pairs != pe.duplicate_pairs) {
    std::printf("FAIL: streaming (adaptive preset) diverged from blocking "
                "(proper %llu vs %llu)\n",
                static_cast<unsigned long long>(st.proper_pairs),
                static_cast<unsigned long long>(pe.proper_pairs));
    ok = false;
  }
  std::printf("%s\n", ok ? "OK" : "BENCH GATE FAILED");

  // Machine-readable trajectory point (uploaded as a CI artifact).
  BenchReport report("paired");
  report.Add("pairs", n_pairs);
  report.Add("reps", reps);
  report.Add("read_length", kLength);
  report.Add("error_threshold", kThreshold);
  report.Add("pruning_ratio", prune);
  report.Add("verification_reduction", verify_ratio);
  report.Add("proper_pairs", pe.proper_pairs);
  report.Add("rescued_mates", pe.rescued_mates);
  report.Add("joint_earlyout_ratio", earlyout_ratio);
  report.Add("combinations_filtered_saved_pct", filtered_saved_pct);
  report.Add("rescue_invocations", ab_on.rescue_invocations);
  report.Add("rescue_invocations_independent", ab_off.rescue_invocations);
  report.Add("rescue_gate_skips", ab_on.rescue_gate_skips);
  report.Add("shortcircuited_combinations", ab_on.shortcircuited_combinations);
  report.Add("joint_sam_identical", sam_on == sam_off);
  report.Add("insert_mean", pe.insert_mean);
  report.Add("insert_sigma", pe.insert_sigma);
  report.Add("single_end_seconds", se_seconds);
  report.Add("paired_seconds", pe_seconds);
  report.Add("streaming_adaptive_seconds", st_seconds);
  report.Add("single_end_pairs_per_s", se_rate);
  report.Add("paired_pairs_per_s", pe_rate);
  report.Add("streaming_adaptive_pairs_per_s", st_rate);
  report.Add("gate_pass", ok);
  report.Write();
  return ok ? 0 : 1;
}
