// Reproduces Fig. 8 and Sup. Tables S.21-S.23: multi-GPU scaling of
// filtering throughput (millions of filtrations per second, w.r.t. kernel
// time and filter time) for 1..8 devices in Setup 1, at the paper's
// per-length thresholds: 100bp/e=2, 150bp/e=4, 250bp/e=8, for both
// encoding actors.
//
// Scale with GKGPU_PAIRS (default 200,000).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

int main() {
  const std::size_t pairs = EnvSize("GKGPU_PAIRS", 200000);
  std::printf(
      "=== Fig. 8 / Tables S.21-S.23: multi-GPU scaling (Setup 1) ===\n");
  struct Spec {
    int length;
    int e;
  };
  for (const Spec spec : {Spec{100, 2}, Spec{150, 4}, Spec{250, 8}}) {
    const Dataset data = MakeDataset(MrFastCandidateProfile(spec.length),
                                     pairs, 800 + spec.length);
    std::printf("\n-- %d bp, e = %d, %zu pairs "
                "(millions of filtrations / second) --\n",
                spec.length, spec.e, pairs);
    TablePrinter table({"GPUs", "dev-enc kernel", "host-enc kernel",
                        "dev-enc filter", "host-enc filter"});
    for (int ndev = 1; ndev <= 8; ++ndev) {
      double mps[2][2];
      for (int enc = 0; enc < 2; ++enc) {
        auto devices = gpusim::MakeSetup1(ndev);
        const FilterRunStats s = RunEngine(
            data, spec.length, spec.e,
            enc == 0 ? EncodingActor::kDevice : EncodingActor::kHost,
            Ptrs(devices));
        mps[enc][0] = MillionsPerSecond(pairs, s.kernel_seconds);
        mps[enc][1] = MillionsPerSecond(pairs, s.filter_seconds);
      }
      table.AddRow({std::to_string(ndev), TablePrinter::Num(mps[0][0], 0),
                    TablePrinter::Num(mps[1][0], 0),
                    TablePrinter::Num(mps[0][1], 1),
                    TablePrinter::Num(mps[1][1], 1)});
    }
    table.Print(std::cout);
  }
  std::printf(
      "\nExpected shapes (paper): kernel throughput scales near-linearly\n"
      "with device count (host-encoded scales best); filter-time\n"
      "throughput grows sublinearly because host preprocessing\n"
      "serializes.\n");
  return 0;
}
