// Ablation bench for the design choices DESIGN.md calls out:
//   1. the leading/trailing edge fix (the paper's accuracy contribution) —
//      improved vs original false accepts across thresholds;
//   2. error-count semantics — run counting (shipping) vs raw popcount,
//      measuring false accepts AND false rejects (popcount counts the bits
//      amendment inflates, so it trades false accepts for false rejects —
//      the paper's zero-false-reject property only holds for run counting);
//   3. LUT walks vs branch-free bit tricks — identical decisions, differing
//      filtration latency.
//
// Scale with GKGPU_PAIRS (default 30,000).
#include <cstdio>
#include <iostream>

#include "align/banded.hpp"
#include "common.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

namespace {

struct Counts {
  std::size_t fa = 0;
  std::size_t fr = 0;
  double seconds = 0.0;
};

Counts Evaluate(const Dataset& data, int /*length*/, int e,
                const GateKeeperParams& params) {
  GateKeeperFilter filter(params);
  Counts c;
  WallTimer timer;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const bool accept = filter.Filter(data.reads[i], data.refs[i], e).accept;
    const bool truth = WithinEditDistance(data.reads[i], data.refs[i], e);
    if (accept && !truth) ++c.fa;
    if (!accept && truth) ++c.fr;
  }
  c.seconds = timer.Seconds();
  return c;
}

}  // namespace

int main() {
  const std::size_t n = EnvSize("GKGPU_PAIRS", 30000);
  const int length = 100;
  const Dataset data = MakeDataset(LowEditProfile(length), n, 1234);
  std::printf("=== Ablations (low-edit 100bp set, %zu pairs) ===\n", n);

  {
    std::printf("\n-- Ablation 1: leading/trailing edge fix --\n");
    TablePrinter table({"e", "improved FA", "original FA", "ratio",
                        "improved FR", "original FR"});
    for (const int e : {1, 2, 4, 6, 8, 10}) {
      GateKeeperParams improved;
      GateKeeperParams original;
      original.mode = GateKeeperMode::kOriginal;
      const Counts ci = Evaluate(data, length, e, improved);
      const Counts co = Evaluate(data, length, e, original);
      table.AddRow({std::to_string(e), TablePrinter::Count(ci.fa),
                    TablePrinter::Count(co.fa),
                    TablePrinter::Num(ci.fa > 0 ? static_cast<double>(co.fa) /
                                                      static_cast<double>(ci.fa)
                                                : 0.0,
                                      2),
                    TablePrinter::Count(ci.fr), TablePrinter::Count(co.fr)});
    }
    table.Print(std::cout);
  }

  {
    std::printf("\n-- Ablation 2: error-count semantics --\n");
    TablePrinter table(
        {"e", "run-count FA", "run-count FR", "popcount FA", "popcount FR"});
    for (const int e : {2, 5, 8}) {
      GateKeeperParams runs;
      GateKeeperParams pop;
      pop.count = CountMode::kPopcount;
      const Counts cr = Evaluate(data, length, e, runs);
      const Counts cp = Evaluate(data, length, e, pop);
      table.AddRow({std::to_string(e), TablePrinter::Count(cr.fa),
                    TablePrinter::Count(cr.fr), TablePrinter::Count(cp.fa),
                    TablePrinter::Count(cp.fr)});
    }
    table.Print(std::cout);
    std::printf("(run counting must show FR = 0; popcount trades FA for FR)\n");
  }

  {
    std::printf("\n-- Ablation 3: LUT walks vs bit tricks --\n");
    TablePrinter table({"e", "bit-trick time (s)", "LUT time (s)",
                        "decisions differ"});
    for (const int e : {2, 5, 10}) {
      GateKeeperParams tricks;
      GateKeeperParams luts;
      luts.use_lut = true;
      GateKeeperFilter ft(tricks);
      GateKeeperFilter fl(luts);
      std::size_t differ = 0;
      WallTimer t1;
      std::vector<bool> d1(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        d1[i] = ft.Filter(data.reads[i], data.refs[i], e).accept;
      }
      const double s1 = t1.Seconds();
      WallTimer t2;
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (fl.Filter(data.reads[i], data.refs[i], e).accept != d1[i]) {
          ++differ;
        }
      }
      const double s2 = t2.Seconds();
      table.AddRow({std::to_string(e), TablePrinter::Num(s1, 3),
                    TablePrinter::Num(s2, 3), TablePrinter::Count(differ)});
    }
    table.Print(std::cout);
    std::printf("(the two code paths must agree on every pair)\n");
  }
  return 0;
}
