// Reproduces Fig. 6 and Sup. Tables S.17-S.19: the effect of the encoding
// actor (host vs device) on single-GPU filtering throughput (millions of
// filtrations per second) with increasing error threshold, for 100/150/250
// bp reads on both setups.  Throughput is reported against both kernel
// time (bars in the paper's figures) and filter time (lines).
//
// Scale with GKGPU_PAIRS (default 150,000).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

int main() {
  const std::size_t pairs = EnvSize("GKGPU_PAIRS", 150000);
  std::printf(
      "=== Fig. 6 / Tables S.17-S.19: encoding actor vs throughput ===\n");
  struct Sweep {
    int length;
    std::vector<int> thresholds;
  };
  const Sweep sweeps[] = {
      {100, {0, 1, 2, 3, 4, 5, 6}},
      {150, {0, 1, 2, 4, 6, 8, 10}},
      {250, {0, 1, 2, 4, 6, 8, 10}},
  };
  for (const auto& sweep : sweeps) {
    const Dataset data = MakeDataset(MrFastCandidateProfile(sweep.length),
                                     pairs, 600 + sweep.length);
    for (const int setup : {1, 2}) {
      std::printf("\n-- %d bp, Setup %d, single GPU, %zu pairs "
                  "(millions of filtrations / second) --\n",
                  sweep.length, setup, pairs);
      TablePrinter table({"e", "dev-enc kernel", "dev-enc filter",
                          "host-enc kernel", "host-enc filter"});
      for (const int e : sweep.thresholds) {
        double mps[2][2];
        for (int enc = 0; enc < 2; ++enc) {
          auto devices =
              setup == 1 ? gpusim::MakeSetup1(1) : gpusim::MakeSetup2(1);
          const FilterRunStats s = RunEngine(
              data, sweep.length, e,
              enc == 0 ? EncodingActor::kDevice : EncodingActor::kHost,
              Ptrs(devices));
          mps[enc][0] = MillionsPerSecond(pairs, s.kernel_seconds);
          mps[enc][1] = MillionsPerSecond(pairs, s.filter_seconds);
        }
        table.AddRow({std::to_string(e), TablePrinter::Num(mps[0][0], 1),
                      TablePrinter::Num(mps[0][1], 1),
                      TablePrinter::Num(mps[1][0], 1),
                      TablePrinter::Num(mps[1][1], 1)});
      }
      table.Print(std::cout);
    }
  }
  std::printf(
      "\nExpected shapes (paper): host-encoded kernel throughput is highest\n"
      "(especially at low e) but host-encoded *filter* throughput is lowest;\n"
      "error threshold barely moves GPU filter time.\n");
  return 0;
}
