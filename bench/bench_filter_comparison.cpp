// Reproduces Fig. 5 and Sup. Tables S.7-S.12: false-accept counts of the
// six pre-alignment filters (GateKeeper-GPU, GateKeeper-FPGA, SHD, Shouji,
// MAGNET, SneakySnake) on low-edit and high-edit profile sets at
// 100/150/250 bp, sweeping the error threshold from 0 to 10% of the read
// length.  As in the paper, undefined pairs count as false accepts for
// GateKeeper-GPU (it bypasses them) but not for the other tools.
//
// Scale with GKGPU_PAIRS (default 10,000 per set; MAGNET/Shouji dominate
// the runtime at 250 bp).
#include <cstdio>
#include <iostream>
#include <memory>

#include "align/myers.hpp"
#include "common.hpp"
#include "encode/dna.hpp"
#include "filters/genasm.hpp"
#include "filters/magnet.hpp"
#include "filters/shd.hpp"
#include "filters/shouji.hpp"
#include "filters/sneakysnake.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

namespace {

void RunSet(const char* title, const PairProfile& profile, int length,
            std::size_t n, std::uint64_t seed) {
  const auto pairs = GeneratePairs(n, profile, seed);
  // Ground truth once per set: exact edit distance + undefined flags.
  std::vector<int> dist(n);
  std::vector<bool> undefined_pair(n);
  std::size_t undefined = 0;
  {
    MyersAligner aligner;
    for (std::size_t i = 0; i < n; ++i) {
      dist[i] = aligner.Distance(pairs[i].read, pairs[i].ref);
      undefined_pair[i] =
          ContainsUnknown(pairs[i].read) || ContainsUnknown(pairs[i].ref);
      undefined += undefined_pair[i];
    }
  }
  std::printf("\n-- %s: %zu pairs, %zu undefined --\n", title, n, undefined);

  GateKeeperParams original;
  original.mode = GateKeeperMode::kOriginal;
  original.bypass_undefined = false;  // the FPGA has no 'N' mechanism
  GateKeeperFilter gk_gpu;
  GateKeeperFilter gk_fpga(original);
  ShdFilter shd;
  ShoujiFilter shouji;
  MagnetFilter magnet;
  SneakySnakeFilter snake;
  GenAsmFilter genasm;  // extension beyond the paper's six: exact (0 FA)
  struct Entry {
    const char* name;
    PreAlignmentFilter* filter;
    bool undefined_is_fa;  // GateKeeper-GPU bypasses undefined pairs
  };
  const Entry entries[] = {
      {"GateKeeper-GPU", &gk_gpu, true}, {"GateKeeper-FPGA", &gk_fpga, false},
      {"SHD", &shd, false},              {"Shouji", &shouji, false},
      {"MAGNET", &magnet, false},        {"SneakySnake", &snake, false},
      {"GenASM*", &genasm, false},
  };

  TablePrinter table({"e", "GateKeeper-GPU", "GateKeeper-FPGA", "SHD",
                      "Shouji", "MAGNET", "SneakySnake", "GenASM*"});
  const int step = std::max(1, length / 100);
  for (int e = 0; e <= length / 10; e += step) {
    // Oracle: reject iff exact distance > e (undefined handled per filter).
    std::vector<std::string> row{std::to_string(e)};
    for (const Entry& entry : entries) {
      std::size_t fa = 0;
      for (std::size_t i = 0; i < n; ++i) {
        bool truth;
        if (undefined_pair[i] && entry.undefined_is_fa) {
          truth = false;  // counted against GateKeeper-GPU, as in S.7-S.12
        } else {
          truth = dist[i] <= e;
        }
        const bool accept =
            entry.filter->Filter(pairs[i].read, pairs[i].ref, e).accept;
        if (accept && !truth) ++fa;
      }
      row.push_back(TablePrinter::Count(fa));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  const std::size_t n = EnvSize("GKGPU_PAIRS", 10000);
  std::printf(
      "=== Fig. 5 / Tables S.7-S.12: false accepts across filters ===\n");
  RunSet("Set 1-like (low edit, 100bp) [Fig. 5 / Table S.7]",
         LowEditProfile(100), 100, n, 101);
  RunSet("Set 4-like (high edit, 100bp) [Fig. S.7 / Table S.8]",
         HighEditProfile(100), 100, n, 102);
  RunSet("Set 5-like (low edit, 150bp) [Fig. S.8 / Table S.9]",
         LowEditProfile(150), 150, n, 103);
  RunSet("Set 8-like (high edit, 150bp) [Fig. S.9 / Table S.10]",
         HighEditProfile(150), 150, n, 104);
  // 250 bp sets run at half size: MAGNET's extraction is O(e^2 L) per pair
  // and dominates the suite's runtime there; the rates are size-invariant.
  RunSet("Set 9-like (low edit, 250bp) [Fig. S.10 / Table S.11]",
         LowEditProfile(250), 250, n / 2, 105);
  RunSet("Set 12-like (high edit, 250bp) [Fig. S.11 / Table S.12]",
         HighEditProfile(250), 250, n / 2, 106);
  std::printf(
      "\nExpected shapes (paper): GateKeeper-FPGA == SHD column-for-column;\n"
      "GateKeeper-GPU strictly below them (up to 52x on high-edit sets at\n"
      "high e, where FPGA/SHD collapse to accept-all); MAGNET and\n"
      "SneakySnake lowest; Shouji between.  GenASM* is this library's\n"
      "extension (not in the paper's figures): an exact Bitap NFA, so its\n"
      "column must be all zeros.\n");
  return 0;
}
