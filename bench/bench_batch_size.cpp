// Reproduces Table 1: the effect of the maximum number of reads processed
// per batch (100 / 1,000 / 10,000 / 100,000) on the whole-mapping times —
// overall, host encode (or raw copy), kernel, and filter time — for both
// encoding actors, on a chromosome-scale synthetic mapping run.
//
// Scale with GKGPU_GENOME (default 2,000,000 bp) and GKGPU_READS
// (default 30,000).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "mapper/mapper.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

int main() {
  const std::size_t genome_len = EnvSize("GKGPU_GENOME", 2000000);
  const std::size_t n_reads = EnvSize("GKGPU_READS", 30000);
  std::printf("=== Table 1: max reads per batch vs time (seconds) ===\n");
  std::printf("(genome %zu bp, %zu reads of 100 bp, e = 5, single GPU)\n\n",
              genome_len, n_reads);

  const std::string genome = GenerateGenome(genome_len, 21);
  const auto reads = SimulateReadSequences(genome, n_reads, 100,
                                           ReadErrorProfile::Illumina(), 22);
  MapperConfig mcfg;
  mcfg.k = 12;
  mcfg.read_length = 100;
  mcfg.error_threshold = 5;
  ReadMapper mapper(genome, mcfg);

  TablePrinter table({"max reads", "encoding", "overall", "encode/copy",
                      "kernel", "filter"});
  for (const std::size_t batch : {100u, 1000u, 10000u, 100000u}) {
    for (const EncodingActor actor :
         {EncodingActor::kHost, EncodingActor::kDevice}) {
      auto devices = gpusim::MakeSetup1(1);
      EngineConfig ecfg;
      ecfg.read_length = mcfg.read_length;
      ecfg.error_threshold = mcfg.error_threshold;
      ecfg.encoding = actor;
      ecfg.max_reads_per_batch = batch;
      GateKeeperGpuEngine engine(ecfg, Ptrs(devices));
      const MappingStats s = mapper.MapReads(reads, &engine, nullptr);
      table.AddRow({TablePrinter::Count(batch), EncodingActorName(actor),
                    TablePrinter::Num(s.total_seconds, 3),
                    TablePrinter::Num(s.filter_encode_seconds +
                                          s.filter_copy_seconds,
                                      3),
                    TablePrinter::Num(s.filter_kernel_seconds, 3),
                    TablePrinter::Num(s.filter_seconds, 3)});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Table 1): every time column shrinks as the\n"
      "batch grows (fewer kernel rounds and transfers); 100,000 reads per\n"
      "batch is the sweet spot.\n");
  return 0;
}
