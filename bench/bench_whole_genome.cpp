// Reproduces Table 3, Table 4, Table 5 and Sup. Tables S.24-S.26: whole-
// genome read mapping with and without GateKeeper-GPU pre-alignment
// filtering.
//
//   * Table 3 block: mapping information (mappings, mapped reads,
//     verification pairs, rejected pairs / reduction %) on a real-profile
//     100 bp set at e = 0 and e = 5.
//   * Table 4 block: theoretical vs achieved verification (DP) speedup.
//   * Table 5 block: filtering+DP and overall speedups on both setups and
//     both encoding actors.
//   * S.24/S.25 blocks: sim_set_1 (300 bp, rich deletions, e = 15) and
//     sim_set_2 (150 bp, low indel, e = 8).
//   * S.26 block: 50 bp at e = 0/1, plus 150 bp and 250 bp sets at e = 0.
//
// Scale with GKGPU_GENOME (default 4,000,000 bp) and GKGPU_READS
// (default 40,000 for the headline set; smaller sets scale down).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "mapper/mapper.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

namespace {

struct RunOutcome {
  MappingStats plain;
  MappingStats filtered[2];  // [0]=device-encoded, [1]=host-encoded
  int setup = 1;
};

// Heavily repetitive genome: diverged segmental-duplication-like copies
// make seeding produce many above-threshold candidates, the workload the
// paper's 45-billion-candidate runs are made of.
GenomeProfile WholeGenomeProfile() {
  GenomeProfile g;
  g.repeat_families = 48;
  g.repeat_length = 2500;
  g.repeat_copies = 20;
  g.repeat_mutation_rate = 0.12;  // copies diverge well beyond e = 5%
  g.n_runs_per_mb = 2.0;
  return g;
}

// mrFAST verifies single-threaded; keeping verification serial preserves
// the paper's DP-time bottleneck that Tables 4/5 measure.
MapperConfig MakeMapperConfig(int length, int e) {
  MapperConfig m;
  m.k = 12;
  m.read_length = length;
  m.error_threshold = e;
  m.verify_threads = 1;
  return m;
}

MappingStats RunFiltered(ReadMapper& mapper,
                         const std::vector<std::string>& reads, int length,
                         int e, int setup, EncodingActor actor) {
  auto devices = setup == 1 ? gpusim::MakeSetup1(1) : gpusim::MakeSetup2(1);
  EngineConfig ecfg;
  ecfg.read_length = length;
  ecfg.error_threshold = e;
  ecfg.encoding = actor;
  GateKeeperGpuEngine engine(ecfg, Ptrs(devices));
  return mapper.MapReads(reads, &engine, nullptr);
}

void PrintMappingInfo(const char* title, const MappingStats& plain,
                      const MappingStats& filtered) {
  std::printf("\n-- %s --\n", title);
  TablePrinter t({"mrFAST w/", "mappings", "mapped reads",
                  "verification pairs", "rejected pairs", "reduction"});
  t.AddRow({"No Filter", TablePrinter::Count(plain.mappings),
            TablePrinter::Count(plain.mapped_reads),
            TablePrinter::Count(plain.verification_pairs), "NA", "NA"});
  t.AddRow({"GateKeeper-GPU", TablePrinter::Count(filtered.mappings),
            TablePrinter::Count(filtered.mapped_reads),
            TablePrinter::Count(filtered.verification_pairs),
            TablePrinter::Count(filtered.rejected_pairs),
            TablePrinter::Percent(filtered.ReductionPercent(), 0)});
  t.Print(std::cout);
}

void PrintSpeedups(const char* title, const RunOutcome s1,
                   const RunOutcome s2) {
  std::printf("\n-- %s --\n", title);
  // Table 4: theoretical speedup = candidates / surviving pairs; achieved =
  // measured DP time ratio.
  {
    TablePrinter t({"mrFAST w/", "theoretical DP speedup",
                    "achieved DP speedup (S1)", "achieved DP speedup (S2)"});
    const MappingStats& f1 = s1.filtered[0];
    const double theo =
        f1.verification_pairs
            ? static_cast<double>(f1.candidates_total) /
                  static_cast<double>(f1.verification_pairs)
            : 0.0;
    auto achieved = [](const MappingStats& plain, const MappingStats& f) {
      return f.verification_seconds > 0
                 ? plain.verification_seconds / f.verification_seconds
                 : 0.0;
    };
    t.AddRow({"No Filter", "NA", "NA", "NA"});
    t.AddRow({"GateKeeper-GPU",
              TablePrinter::Num(theo, 1) + "x",
              TablePrinter::Num(achieved(s1.plain, s1.filtered[0]), 1) + "x",
              TablePrinter::Num(achieved(s2.plain, s2.filtered[0]), 1) + "x"});
    t.Print(std::cout);
  }
  // Table 5: filtering + DP, and overall.
  {
    TablePrinter t({"mrFAST w/", "filt+DP S1 (s)", "speedup",
                    "filt+DP S2 (s)", "speedup", "overall S1 (s)", "speedup",
                    "overall S2 (s)", "speedup"});
    auto add = [&](const char* name, const RunOutcome& o1,
                   const RunOutcome& o2, int enc) {
      const MappingStats& f1 = o1.filtered[enc];
      const MappingStats& f2 = o2.filtered[enc];
      const double fd1 = f1.filter_kernel_seconds + f1.verification_seconds;
      const double fd2 = f2.filter_kernel_seconds + f2.verification_seconds;
      t.AddRow({name, TablePrinter::Num(fd1, 2),
                TablePrinter::Num(o1.plain.verification_seconds / fd1, 1) + "x",
                TablePrinter::Num(fd2, 2),
                TablePrinter::Num(o2.plain.verification_seconds / fd2, 1) + "x",
                TablePrinter::Num(f1.total_seconds, 2),
                TablePrinter::Num(
                    o1.plain.total_seconds / f1.total_seconds, 1) +
                    "x",
                TablePrinter::Num(f2.total_seconds, 2),
                TablePrinter::Num(
                    o2.plain.total_seconds / f2.total_seconds, 1) +
                    "x"});
    };
    t.AddRow({"No Filter", TablePrinter::Num(s1.plain.verification_seconds, 2),
              "NA", TablePrinter::Num(s2.plain.verification_seconds, 2), "NA",
              TablePrinter::Num(s1.plain.total_seconds, 2), "NA",
              TablePrinter::Num(s2.plain.total_seconds, 2), "NA"});
    add("GateKeeper-GPU (d)", s1, s2, 0);
    add("GateKeeper-GPU (h)", s1, s2, 1);
    t.Print(std::cout);
  }
}

}  // namespace

int main() {
  const std::size_t genome_len = EnvSize("GKGPU_GENOME", 4000000);
  const std::size_t n_reads = EnvSize("GKGPU_READS", 40000);
  std::printf("=== Tables 3/4/5, S.24-S.26: whole-genome mapping ===\n");
  std::printf("(synthetic genome %zu bp with repeat families)\n", genome_len);
  const std::string genome =
      GenerateGenome(genome_len, 33, WholeGenomeProfile());

  // ---- ERR240727_1-like real-profile 100 bp set, e = 0 and e = 5. ----
  {
    const auto reads = SimulateReadSequences(
        genome, n_reads, 100, ReadErrorProfile::Illumina(), 34);
    for (const int e : {0, 5}) {
      MapperConfig mcfg = MakeMapperConfig(100, e);
      ReadMapper mapper(genome, mcfg);
      RunOutcome s1;
      RunOutcome s2;
      s1.plain = mapper.MapReads(reads, nullptr, nullptr);
      s2.plain = s1.plain;
      s1.filtered[0] = RunFiltered(mapper, reads, 100, e, 1,
                                   EncodingActor::kDevice);
      s1.filtered[1] = RunFiltered(mapper, reads, 100, e, 1,
                                   EncodingActor::kHost);
      s2.filtered[0] = RunFiltered(mapper, reads, 100, e, 2,
                                   EncodingActor::kDevice);
      s2.filtered[1] = RunFiltered(mapper, reads, 100, e, 2,
                                   EncodingActor::kHost);
      char title[128];
      std::snprintf(title, sizeof(title),
                    "Table 3: real-profile 100bp set, e = %d", e);
      PrintMappingInfo(title, s1.plain, s1.filtered[0]);
      if (e == 5) {
        PrintSpeedups("Tables 4 & 5: verification and overall speedups "
                      "(100bp, e = 5)",
                      s1, s2);
      }
    }
  }

  // ---- sim_set_1-like: 300 bp rich-deletion profile, e = 15 (S.24). ----
  {
    const auto reads = SimulateReadSequences(
        genome, n_reads / 8, 300, ReadErrorProfile::RichDeletion(), 35);
    MapperConfig mcfg = MakeMapperConfig(300, 15);
    ReadMapper mapper(genome, mcfg);
    const MappingStats plain = mapper.MapReads(reads, nullptr, nullptr);
    const MappingStats filtered =
        RunFiltered(mapper, reads, 300, 15, 1, EncodingActor::kDevice);
    PrintMappingInfo("Table S.24: sim_set_1-like (300bp rich deletions, "
                     "e = 15)",
                     plain, filtered);
  }

  // ---- sim_set_2-like: 150 bp low-indel profile, e = 8 (S.25). ----
  {
    const auto reads = SimulateReadSequences(
        genome, n_reads / 2, 150, ReadErrorProfile::LowIndel(), 36);
    MapperConfig mcfg = MakeMapperConfig(150, 8);
    ReadMapper mapper(genome, mcfg);
    const MappingStats plain = mapper.MapReads(reads, nullptr, nullptr);
    const MappingStats filtered =
        RunFiltered(mapper, reads, 150, 8, 1, EncodingActor::kHost);
    PrintMappingInfo("Table S.25: sim_set_2-like (150bp low indel, e = 8)",
                     plain, filtered);
  }

  // ---- S.26: additional real-like sets at tight thresholds. ----
  {
    struct Extra {
      int length;
      int e;
      const char* label;
    };
    for (const Extra x : {Extra{50, 0, "50bp, e = 0"},
                          Extra{50, 1, "50bp, e = 1"},
                          Extra{150, 0, "150bp, e = 0"},
                          Extra{250, 0, "250bp, e = 0"}}) {
      const auto reads = SimulateReadSequences(
          genome, n_reads / 4, x.length, ReadErrorProfile::Illumina(),
          37 + static_cast<std::uint64_t>(x.length) + x.e);
      MapperConfig mcfg = MakeMapperConfig(x.length, x.e);
      ReadMapper mapper(genome, mcfg);
      const MappingStats plain = mapper.MapReads(reads, nullptr, nullptr);
      const MappingStats filtered = RunFiltered(mapper, reads, x.length, x.e,
                                                1, EncodingActor::kHost);
      char title[96];
      std::snprintf(title, sizeof(title), "Table S.26: real-profile %s",
                    x.label);
      PrintMappingInfo(title, plain, filtered);
      if (plain.mappings != filtered.mappings) {
        std::printf("WARNING: mapping count changed with filtering!\n");
      }
    }
  }

  std::printf(
      "\nExpected shapes (paper): identical mappings/mapped reads with and\n"
      "without the filter; 81-97%% candidate reduction depending on the\n"
      "set; achieved DP speedup below the theoretical ratio; overall\n"
      "speedup smaller still (Amdahl); Setup 2 consistently behind Setup 1.\n");
  return 0;
}
