// Reproduces Table 2 and Sup. Tables S.13-S.15: filtering throughput of
// GateKeeper-CPU (1 core / 12 cores) vs GateKeeper-GPU (1 / 8 devices,
// device- and host-encoded) in billions of filtrations per 40 minutes,
// computed from kernel time (kt) and filter time (ft), for 100/150/250 bp
// with the paper's per-length error thresholds, on both device setups.
//
// Scale with GKGPU_PAIRS (default 200,000; the paper uses 30M — rates are
// size-invariant, absolute times are not comparable anyway because the GPU
// is simulated).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

namespace {

struct LengthSpec {
  int length;
  int e_low;
  int e_high;
};

void RunSetup(int setup, const LengthSpec& spec, std::size_t pairs) {
  const Dataset data = MakeDataset(
      MrFastCandidateProfile(spec.length), pairs, 7000 + spec.length);
  std::printf("\n-- Setup %d, %d bp, %zu pairs "
              "(billions of filtrations in 40 minutes) --\n",
              setup, spec.length, pairs);
  TablePrinter table({"metric", "e", "CPU 1-core", "CPU 12-core",
                      "dev-enc 1-GPU", "dev-enc 8-GPU", "host-enc 1-GPU",
                      "host-enc 8-GPU"});
  const int max_gpus = setup == 1 ? 8 : 4;
  for (const int e : {spec.e_low, spec.e_high}) {
    const CpuTimes cpu1 = RunGateKeeperCpu(data, spec.length, e, 1);
    const CpuTimes cpu12 = RunGateKeeperCpu(data, spec.length, e, 12);
    FilterRunStats g[2][2];  // [encoding][devices index 0:1, 1:max]
    for (int enc = 0; enc < 2; ++enc) {
      for (int di = 0; di < 2; ++di) {
        const int ndev = di == 0 ? 1 : max_gpus;
        auto devices =
            setup == 1 ? gpusim::MakeSetup1(ndev) : gpusim::MakeSetup2(ndev);
        g[enc][di] = RunEngine(
            data, spec.length, e,
            enc == 0 ? EncodingActor::kDevice : EncodingActor::kHost,
            Ptrs(devices));
      }
    }
    auto b40 = [&](double seconds) {
      return TablePrinter::Num(PairsIn40Minutes(pairs, seconds) / 1e9, 1);
    };
    table.AddRow({"kt", std::to_string(e), b40(cpu1.kernel_seconds),
                  b40(cpu12.kernel_seconds), b40(g[0][0].kernel_seconds),
                  b40(g[0][1].kernel_seconds), b40(g[1][0].kernel_seconds),
                  b40(g[1][1].kernel_seconds)});
    table.AddRow({"ft", std::to_string(e), b40(cpu1.filter_seconds),
                  b40(cpu12.filter_seconds), b40(g[0][0].filter_seconds),
                  b40(g[0][1].filter_seconds), b40(g[1][0].filter_seconds),
                  b40(g[1][1].filter_seconds)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  const std::size_t pairs = EnvSize("GKGPU_PAIRS", 200000);
  std::printf("=== Table 2 / S.13-S.15: filtering throughput ===\n");
  std::printf("(8-GPU column uses 4 GPUs for Setup 2, its maximum)\n");
  // Per-length thresholds follow Sec. 5.2: {2,5}, {4,10}, {6,10}.
  const LengthSpec specs[] = {{100, 2, 5}, {150, 4, 10}, {250, 6, 10}};
  for (const auto& spec : specs) {
    for (const int setup : {1, 2}) {
      RunSetup(setup, spec, pairs);
    }
  }
  std::printf(
      "\nExpected shapes (paper): GPU kt orders of magnitude above CPU;\n"
      "host-encoded kt > device-encoded kt in throughput; ft ordering\n"
      "reverses (host encoding pays real host time); Setup 2 below Setup 1;\n"
      "multi-GPU scales kt nearly linearly.\n");
  return 0;
}
