// Reproduces the resource-utilization analysis of Sec. 5.4.1: theoretical
// warp occupancy from the CUDA occupancy-calculator rules (register count
// sweep, block-size trade-off) and the achieved occupancy / warp execution
// efficiency / SM efficiency the simulator records while filtering 100 bp
// and 250 bp sets on both setups.
//
// Scale with GKGPU_PAIRS (default 150,000).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

int main() {
  const std::size_t pairs = EnvSize("GKGPU_PAIRS", 150000);
  std::printf("=== Sec. 5.4.1: occupancy & utilization ===\n");

  std::printf("\n-- Theoretical occupancy (GTX 1080 Ti) --\n");
  {
    TablePrinter table({"regs/thread", "threads/block", "blocks/SM",
                        "active warps", "occupancy", "limited by"});
    const gpusim::DeviceProperties props = gpusim::MakeGtx1080Ti();
    for (const int regs : {32, 40, 48}) {
      for (const int tpb : {256, 512, 1024}) {
        const gpusim::OccupancyResult r =
            gpusim::ComputeOccupancy(props, tpb, regs, 0);
        table.AddRow({std::to_string(regs), std::to_string(tpb),
                      std::to_string(r.blocks_per_sm),
                      std::to_string(r.active_warps_per_sm),
                      TablePrinter::Percent(r.occupancy * 100.0, 0),
                      std::string(gpusim::LimiterName(r.limited_by))});
      }
    }
    table.Print(std::cout);
    std::printf("(paper: 32 regs -> 100%%; 48 regs @ 256 threads -> 63%%; "
                "48 regs @ 1024 threads -> 50%%, the shipping config)\n");
  }

  std::printf("\n-- Achieved utilization while filtering --\n");
  TablePrinter table({"setup", "encoding", "read length", "achieved occ.",
                      "warp exec eff.", "SM efficiency"});
  for (const int setup : {1, 2}) {
    for (const EncodingActor actor :
         {EncodingActor::kDevice, EncodingActor::kHost}) {
      for (const int length : {100, 250}) {
        const int e = length == 100 ? 4 : 10;
        const Dataset data = MakeDataset(MrFastCandidateProfile(length),
                                         pairs, 1100 + length);
        auto devices =
            setup == 1 ? gpusim::MakeSetup1(1) : gpusim::MakeSetup2(1);
        RunEngine(data, length, e, actor, Ptrs(devices));
        const gpusim::DeviceStats& s = devices[0]->stats();
        const double launches =
            s.kernels_launched > 0 ? static_cast<double>(s.kernels_launched)
                                   : 1.0;
        table.AddRow(
            {std::to_string(setup), EncodingActorName(actor),
             std::to_string(length),
             TablePrinter::Percent(100.0 * s.achieved_occupancy_sum / launches,
                                   1),
             TablePrinter::Percent(100.0 * s.warp_efficiency_sum / launches, 1),
             TablePrinter::Percent(100.0 * s.sm_efficiency_sum / launches, 1)});
      }
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shapes (paper): achieved occupancy just below the 50%%\n"
      "theoretical bound (44.6-49.2%%); warp execution efficiency 74-80%%\n"
      "at 100 bp and >98%% at 250 bp; SM efficiency always >95%%.\n");
  return 0;
}
