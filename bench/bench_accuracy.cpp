// Reproduces Fig. 4 and Sup. Tables S.2-S.6: GateKeeper-GPU's accuracy
// against the exact aligner (Edlib-equivalent) on the mrFAST candidate
// profiles at 100/150/250 bp, the Minimap2 chain-stage profile, and the
// BWA-MEM pre-global-alignment profile.  Reports accepted/rejected counts
// for both tools, false-accept count and rate, true-reject rate — and
// asserts the paper's headline: the false-reject count is always 0.
//
// Scale with GKGPU_PAIRS (default 50,000 per set).
#include <cstdio>
#include <iostream>

#include "align/banded.hpp"
#include "common.hpp"
#include "encode/dna.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

namespace {

int TotalFalseRejects = 0;

void RunSet(const char* title, const PairProfile& profile, int max_e,
            int step, std::size_t n, std::uint64_t seed) {
  const auto pairs = GeneratePairs(n, profile, seed);
  std::size_t undefined = 0;
  for (const auto& p : pairs) {
    if (ContainsUnknown(p.read) || ContainsUnknown(p.ref)) ++undefined;
  }
  std::printf("\n-- %s: %zu pairs, %zu undefined --\n", title, n, undefined);
  TablePrinter table({"e", "Edlib accept", "Edlib reject", "GK-GPU accept",
                      "GK-GPU reject", "false accepts", "FA rate", "TR rate",
                      "false rejects"});
  GateKeeperFilter filter;
  for (int e = 0; e <= max_e; e += step) {
    std::size_t oracle_accept = 0;
    std::size_t gk_accept = 0;
    std::size_t fa = 0;
    std::size_t fr = 0;
    std::size_t tr = 0;
    for (const auto& p : pairs) {
      // Undefined pairs are counted as accepted on both sides, exactly as
      // the supplementary tables do.
      const bool und = ContainsUnknown(p.read) || ContainsUnknown(p.ref);
      const bool truth = und || WithinEditDistance(p.read, p.ref, e);
      const bool accept = filter.Filter(p.read, p.ref, e).accept;
      oracle_accept += truth;
      gk_accept += accept;
      if (accept && !truth) ++fa;
      if (!accept && truth) ++fr;
      if (!accept && !truth) ++tr;
    }
    TotalFalseRejects += static_cast<int>(fr);
    const std::size_t oracle_reject = n - oracle_accept;
    const double denom =
        oracle_reject ? static_cast<double>(oracle_reject) : 1.0;
    table.AddRow({std::to_string(e), TablePrinter::Count(oracle_accept),
                  TablePrinter::Count(oracle_reject),
                  TablePrinter::Count(gk_accept),
                  TablePrinter::Count(n - gk_accept), TablePrinter::Count(fa),
                  TablePrinter::Percent(100.0 * static_cast<double>(fa) /
                                        denom),
                  TablePrinter::Percent(100.0 * static_cast<double>(tr) /
                                        denom),
                  TablePrinter::Count(fr)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  const std::size_t n = EnvSize("GKGPU_PAIRS", 50000);
  std::printf("=== Fig. 4 / Tables S.2-S.6: accuracy vs exact alignment ===\n");
  RunSet("Set 3-like (mrFAST candidates, 100bp) [Table S.2 / Fig. 4]",
         MrFastCandidateProfile(100), 10, 1, n, 31);
  RunSet("Set 6-like (mrFAST candidates, 150bp) [Table S.3 / Fig. S.3]",
         MrFastCandidateProfile(150), 15, 1, n, 32);
  RunSet("Set 10-like (mrFAST candidates, 250bp) [Table S.4 / Fig. S.4]",
         MrFastCandidateProfile(250), 25, 2, n, 33);
  RunSet("Minimap2-like candidate sets [Table S.5 / Fig. S.5]",
         Minimap2Profile(100), 10, 1, n, 34);
  RunSet("BWA-MEM-like candidate sets [Table S.6 / Fig. S.6]",
         BwaMemProfile(100), 10, 1, n / 4 + 1, 35);
  std::printf("\nTotal false rejects across every set and threshold: %d "
              "(the paper reports 0)\n",
              TotalFalseRejects);
  return TotalFalseRejects == 0 ? 0 : 1;
}
