// Reproduces Fig. S.12 and Sup. Table S.16: the effect of the error
// threshold on *filter time* for 250 bp pairs — 12-core GateKeeper-CPU
// grows nearly linearly in e while single-GPU GateKeeper-GPU stays almost
// flat, in both setups and both encoding actors.
//
// Scale with GKGPU_PAIRS (default 100,000).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

using namespace gkgpu;
using namespace gkgpu::bench;

int main() {
  const std::size_t pairs = EnvSize("GKGPU_PAIRS", 100000);
  const int length = 250;
  const Dataset data =
      MakeDataset(MrFastCandidateProfile(length), pairs, 9001);
  std::printf(
      "=== Fig. S.12 / Table S.16: error threshold vs filter time ===\n");
  std::printf("(250 bp, %zu pairs, seconds)\n\n", pairs);
  TablePrinter table({"e", "S1 12-core CPU", "S1 dev-enc GPU",
                      "S1 host-enc GPU", "S2 12-core CPU", "S2 dev-enc GPU",
                      "S2 host-enc GPU"});
  for (const int e : {0, 1, 2, 4, 6, 8, 10}) {
    // The CPU baseline is the same physical host for both setups; run it
    // once per setup anyway to mirror the paper's table layout.
    std::vector<std::string> row{std::to_string(e)};
    for (const int setup : {1, 2}) {
      const CpuTimes cpu = RunGateKeeperCpu(data, length, e, 12);
      row.push_back(TablePrinter::Num(cpu.filter_seconds, 3));
      for (const EncodingActor actor :
           {EncodingActor::kDevice, EncodingActor::kHost}) {
        auto devices =
            setup == 1 ? gpusim::MakeSetup1(1) : gpusim::MakeSetup2(1);
        const FilterRunStats s =
            RunEngine(data, length, e, actor, Ptrs(devices));
        row.push_back(TablePrinter::Num(s.filter_seconds, 3));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Fig. S.12): the CPU column grows ~linearly\n"
      "with e; the GPU columns stay nearly constant.\n");
  return 0;
}
