// Synthetic reference genome generation.  Stands in for GRCh37 in the
// whole-genome experiments: random sequence seeded with repeat families
// (segmental-duplication-like copies with light mutation) so that seeding
// produces multiple candidate locations per read — the genomic-repeat
// behaviour that motivates pre-alignment filtering in the first place —
// plus occasional runs of 'N' (assembly gaps).
#ifndef GKGPU_SIM_GENOME_HPP
#define GKGPU_SIM_GENOME_HPP

#include <cstdint>
#include <string>

namespace gkgpu {

struct GenomeProfile {
  /// Number of distinct repeat families planted in the sequence.
  int repeat_families = 24;
  /// Length of each family's template segment.
  int repeat_length = 1500;
  /// Copies of each template pasted at random positions.
  int repeat_copies = 6;
  /// Per-base substitution rate applied to each pasted copy.
  double repeat_mutation_rate = 0.02;
  /// Expected number of 'N' gap runs per megabase.
  double n_runs_per_mb = 2.0;
  int n_run_length = 60;
};

/// Deterministically generates a genome of `length` bases.
std::string GenerateGenome(std::size_t length, std::uint64_t seed,
                           const GenomeProfile& profile = {});

}  // namespace gkgpu

#endif  // GKGPU_SIM_GENOME_HPP
