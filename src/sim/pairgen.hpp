// Candidate-pair generators: read / candidate-reference-segment pairs with
// controlled edit-distance mixtures, standing in for the paper's data sets
// (Sup. Table S.1).  Each named profile mirrors one family of sets:
//
//   MrFastCandidateProfile — Set 3/6/10: candidates seeded by mrFAST at a
//       mid threshold; a thin band of true positives over a heavy tail of
//       dissimilar pairs (at e = 0 only ~0.35% of Set 3 is accepted).
//   LowEditProfile   — Set 1/5/9 ("low edit profile"): mass concentrated at
//       small-to-moderate distances, which maximizes near-threshold pairs
//       and therefore false-accept pressure.
//   HighEditProfile  — Set 4/8/12 ("high edit profile"): almost everything
//       is heavily divergent.
//   Minimap2Profile  — chain-stage candidates: more exact pairs, moderate
//       tail (Sup. Table S.5).
//   BwaMemProfile    — pre-global-alignment candidates: mostly
//       high-identity pairs (Sup. Table S.6).
//
// Rates (false-accept %, reduction %) measured on these sets are
// size-invariant, so the default scaled-down sizes reproduce the paper's
// percentages without 30M-pair runtimes.
#ifndef GKGPU_SIM_PAIRGEN_HPP
#define GKGPU_SIM_PAIRGEN_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace gkgpu {

struct SequencePair {
  std::string read;
  std::string ref;
};

struct PairProfile {
  int length = 100;
  /// Mixture component: `weight` of pairs get a uniform edit count in
  /// [min_edits, max_edits], a fraction `indel_frac` of which are indels.
  struct Band {
    double weight = 1.0;
    int min_edits = 0;
    int max_edits = 0;
    double indel_frac = 0.3;
  };
  std::vector<Band> bands;
  /// Fraction of completely unrelated (independently random) pairs.
  double random_pair_rate = 0.0;
  /// Fraction of pairs carrying at least one 'N' ("undefined pairs").
  double undefined_rate = 0.0;
};

/// Generates one pair with approximately `edits` edits between read and
/// reference segment (the exact distance may be lower; ground truth is
/// always recomputed with the alignment oracle).
SequencePair MakePairWithEdits(int length, int edits, double indel_frac,
                               std::uint64_t seed);

std::vector<SequencePair> GeneratePairs(std::size_t count,
                                        const PairProfile& profile,
                                        std::uint64_t seed);

PairProfile MrFastCandidateProfile(int length);
PairProfile LowEditProfile(int length);
PairProfile HighEditProfile(int length);
PairProfile Minimap2Profile(int length);
PairProfile BwaMemProfile(int length);

}  // namespace gkgpu

#endif  // GKGPU_SIM_PAIRGEN_HPP
