#include "sim/pairgen.hpp"

#include <algorithm>
#include <cassert>

#include "encode/dna.hpp"
#include "util/rng.hpp"

namespace gkgpu {

namespace {

std::string RandomSequence(Rng& rng, std::size_t length) {
  std::string s(length, 'A');
  for (auto& c : s) c = kBases[rng.NextU64() & 0x3u];
  return s;
}

}  // namespace

SequencePair MakePairWithEdits(int length, int edits, double indel_frac,
                               std::uint64_t seed) {
  Rng rng(seed);
  // Build the read by walking a slightly longer reference with `edits`
  // mutation events scattered along the way, then cut the reference
  // segment to the read length (seed extension hands the filter
  // equal-length windows).
  const std::size_t full_len =
      static_cast<std::size_t>(length + edits + 8);
  const std::string full_ref = RandomSequence(rng, full_len);
  std::string read;
  read.reserve(static_cast<std::size_t>(length));
  // Pick distinct edit positions in read coordinates.
  std::vector<bool> edit_here(static_cast<std::size_t>(length), false);
  int placed = 0;
  while (placed < edits && placed < length) {
    const auto p = static_cast<std::size_t>(rng.Uniform(length));
    if (!edit_here[p]) {
      edit_here[p] = true;
      ++placed;
    }
  }
  std::size_t g = 0;
  while (static_cast<int>(read.size()) < length) {
    const std::size_t p = read.size();
    if (p < edit_here.size() && edit_here[p]) {
      if (rng.Bernoulli(indel_frac)) {
        if (rng.Bernoulli(0.5)) {
          ++g;  // deletion in the read
          edit_here[p] = false;  // the position still needs a base
          continue;
        }
        read.push_back(kBases[rng.NextU64() & 0x3u]);  // insertion
        continue;
      }
      const unsigned old_code = BaseToCode(full_ref[g]) & 0x3u;
      read.push_back(kBases[(old_code + 1 + rng.Uniform(3)) & 0x3u]);
      ++g;
      continue;
    }
    read.push_back(full_ref[g]);
    ++g;
  }
  return SequencePair{std::move(read),
                      full_ref.substr(0, static_cast<std::size_t>(length))};
}

std::vector<SequencePair> GeneratePairs(std::size_t count,
                                        const PairProfile& profile,
                                        std::uint64_t seed) {
  assert(!profile.bands.empty() || profile.random_pair_rate > 0.0);
  Rng rng(seed);
  double total_weight = profile.random_pair_rate;
  for (const auto& b : profile.bands) total_weight += b.weight;

  std::vector<SequencePair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    double pick = rng.UniformReal() * total_weight;
    SequencePair pair;
    if (pick < profile.random_pair_rate) {
      pair.read = RandomSequence(rng, static_cast<std::size_t>(profile.length));
      pair.ref = RandomSequence(rng, static_cast<std::size_t>(profile.length));
    } else {
      pick -= profile.random_pair_rate;
      const PairProfile::Band* chosen = &profile.bands.back();
      for (const auto& b : profile.bands) {
        if (pick < b.weight) {
          chosen = &b;
          break;
        }
        pick -= b.weight;
      }
      const int span = chosen->max_edits - chosen->min_edits + 1;
      const int edits =
          chosen->min_edits + static_cast<int>(rng.Uniform(span));
      pair = MakePairWithEdits(profile.length, edits, chosen->indel_frac,
                               rng.NextU64());
    }
    if (profile.undefined_rate > 0.0 && rng.Bernoulli(profile.undefined_rate)) {
      auto& target = rng.Bernoulli(0.5) ? pair.read : pair.ref;
      target[rng.Uniform(target.size())] = 'N';
    }
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

PairProfile MrFastCandidateProfile(int length) {
  PairProfile p;
  p.length = length;
  const auto d = [length](double f) {
    return std::max(1, static_cast<int>(f * length));
  };
  p.bands = {
      {0.004, 0, 0, 0.0},                 // exact candidates
      {0.017, 1, d(0.05), 0.25},          // true positives near threshold
      {0.06, d(0.05) + 1, d(0.12), 0.3},  // just-above-threshold mass
      {0.21, d(0.12) + 1, d(0.25), 0.3},
      {0.28, d(0.25) + 1, d(0.40), 0.3},
  };
  p.random_pair_rate = 0.43;  // repeat-induced junk candidates
  p.undefined_rate = 0.003;
  return p;
}

PairProfile LowEditProfile(int length) {
  PairProfile p;
  p.length = length;
  const auto d = [length](double f) {
    return std::max(1, static_cast<int>(f * length));
  };
  p.bands = {
      {0.02, 0, 0, 0.0},
      {0.16, 1, d(0.04), 0.25},
      {0.30, d(0.04) + 1, d(0.10), 0.3},
      {0.34, d(0.10) + 1, d(0.20), 0.3},
      {0.14, d(0.20) + 1, d(0.30), 0.3},
  };
  p.random_pair_rate = 0.04;
  p.undefined_rate = 0.001;
  return p;
}

PairProfile HighEditProfile(int length) {
  PairProfile p;
  p.length = length;
  const auto d = [length](double f) {
    return std::max(1, static_cast<int>(f * length));
  };
  p.bands = {
      {0.002, 0, 0, 0.0},
      {0.008, 1, d(0.05), 0.25},
      {0.04, d(0.10) + 1, d(0.25), 0.3},
      {0.10, d(0.25) + 1, d(0.40), 0.3},
  };
  p.random_pair_rate = 0.85;
  p.undefined_rate = 0.00001;
  return p;
}

PairProfile Minimap2Profile(int length) {
  PairProfile p;
  p.length = length;
  const auto d = [length](double f) {
    return std::max(1, static_cast<int>(f * length));
  };
  p.bands = {
      {0.027, 0, 0, 0.0},                  // ~2.7% exact (Sup. Table S.5)
      {0.05, 1, d(0.08), 0.3},
      {0.10, d(0.08) + 1, d(0.20), 0.3},
      {0.30, d(0.20) + 1, d(0.40), 0.3},
  };
  p.random_pair_rate = 0.52;
  p.undefined_rate = 0.001;
  return p;
}

PairProfile BwaMemProfile(int length) {
  PairProfile p;
  p.length = length;
  const auto d = [length](double f) {
    return std::max(1, static_cast<int>(f * length));
  };
  p.bands = {
      {0.35, 0, 0, 0.0},  // BWA-MEM hands the aligner high-identity pairs
      {0.30, 1, d(0.06), 0.3},
      {0.15, d(0.06) + 1, d(0.12), 0.3},
      {0.10, d(0.12) + 1, d(0.25), 0.3},
  };
  p.random_pair_rate = 0.10;
  p.undefined_rate = 0.002;
  return p;
}

}  // namespace gkgpu
