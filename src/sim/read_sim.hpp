// Mason-like short-read simulator: samples read origins from a genome and
// applies a configurable error profile (substitutions, indels, unknown base
// calls).  Used to build the whole-genome data sets (sim_set_1's rich
// deletion profile, sim_set_2's low indel profile) and the real-data-like
// Illumina sets.
#ifndef GKGPU_SIM_READ_SIM_HPP
#define GKGPU_SIM_READ_SIM_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gkgpu {

struct ReadErrorProfile {
  double sub_rate = 0.01;
  double ins_rate = 0.0005;
  double del_rate = 0.0005;
  double n_rate = 0.0002;

  /// Illumina-like default (Mason defaults in the same spirit).
  static ReadErrorProfile Illumina() { return {}; }
  /// sim_set_1: "rich deletion profile" (300 bp in the paper).
  static ReadErrorProfile RichDeletion() { return {0.01, 0.001, 0.02, 0.0002}; }
  /// sim_set_2: "low indel profile" (150 bp in the paper).
  static ReadErrorProfile LowIndel() { return {0.015, 0.0001, 0.0001, 0.0002}; }
};

struct SimulatedRead {
  std::string seq;
  std::int64_t origin = 0;  // genome position the read was sampled from
  int edits = 0;            // number of simulated errors
};

/// Samples `count` reads of `length` bases.  Origins avoid running past the
/// genome end.  Deterministic in `seed`.
std::vector<SimulatedRead> SimulateReads(std::string_view genome,
                                         std::size_t count, int length,
                                         const ReadErrorProfile& profile,
                                         std::uint64_t seed);

/// Convenience: just the sequences.
std::vector<std::string> SimulateReadSequences(std::string_view genome,
                                               std::size_t count, int length,
                                               const ReadErrorProfile& profile,
                                               std::uint64_t seed);

// ------------------------------------------------------------ paired-end --

struct PairSimConfig {
  int read_length = 100;
  /// Fragment (insert) length distribution, Illumina-style: Gaussian,
  /// clamped to [read_length, genome length].
  double insert_mean = 350.0;
  double insert_sd = 30.0;
  ReadErrorProfile profile;
};

/// One simulated fragment: R1 reads the fragment's 5' end on the forward
/// strand; R2 reads its 3' end and is reverse-complemented (the FR
/// orientation an Illumina sequencer reports), so a correct mapper places
/// R1 forward at origin1 and R2 reverse at origin2 with
/// TLEN = fragment_length.
struct SimulatedPair {
  std::string seq1;           // forward orientation
  std::string seq2;           // reverse-complemented
  std::int64_t fragment_start = 0;
  int fragment_length = 0;
  std::int64_t origin1 = 0;   // forward-strand window start of R1
  std::int64_t origin2 = 0;   // forward-strand window start of R2
  int edits1 = 0;
  int edits2 = 0;
};

/// Samples `count` fragments and sequences both ends.  Deterministic in
/// `seed`.
std::vector<SimulatedPair> SimulatePairs(std::string_view genome,
                                         std::size_t count,
                                         const PairSimConfig& config,
                                         std::uint64_t seed);

}  // namespace gkgpu

#endif  // GKGPU_SIM_READ_SIM_HPP
