#include "sim/read_sim.hpp"

#include <algorithm>

#include "encode/dna.hpp"
#include "util/rng.hpp"

namespace gkgpu {

std::vector<SimulatedRead> SimulateReads(std::string_view genome,
                                         std::size_t count, int length,
                                         const ReadErrorProfile& profile,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SimulatedRead> reads;
  reads.reserve(count);
  // Keep enough slack after the origin for deletions to draw from.
  const std::size_t slack = static_cast<std::size_t>(length) / 2 + 8;
  const std::size_t max_origin =
      genome.size() > static_cast<std::size_t>(length) + slack
          ? genome.size() - length - slack
          : 0;
  for (std::size_t r = 0; r < count; ++r) {
    SimulatedRead read;
    read.origin = static_cast<std::int64_t>(rng.Uniform(max_origin + 1));
    read.seq.reserve(static_cast<std::size_t>(length));
    std::size_t g = static_cast<std::size_t>(read.origin);
    while (static_cast<int>(read.seq.size()) < length && g < genome.size()) {
      if (rng.Bernoulli(profile.del_rate)) {
        ++g;  // skip a genome base
        ++read.edits;
        continue;
      }
      if (rng.Bernoulli(profile.ins_rate)) {
        read.seq.push_back(kBases[rng.NextU64() & 0x3u]);
        ++read.edits;
        continue;
      }
      char base = genome[g++];
      if (rng.Bernoulli(profile.sub_rate)) {
        const unsigned old_code = BaseToCode(base) & 0x3u;
        base = kBases[(old_code + 1 + rng.Uniform(3)) & 0x3u];
        ++read.edits;
      }
      if (rng.Bernoulli(profile.n_rate)) {
        base = 'N';
        ++read.edits;
      }
      read.seq.push_back(base);
    }
    while (static_cast<int>(read.seq.size()) < length) {
      read.seq.push_back(kBases[rng.NextU64() & 0x3u]);
    }
    reads.push_back(std::move(read));
  }
  return reads;
}

std::vector<std::string> SimulateReadSequences(std::string_view genome,
                                               std::size_t count, int length,
                                               const ReadErrorProfile& profile,
                                               std::uint64_t seed) {
  std::vector<std::string> seqs;
  seqs.reserve(count);
  for (auto& r : SimulateReads(genome, count, length, profile, seed)) {
    seqs.push_back(std::move(r.seq));
  }
  return seqs;
}

}  // namespace gkgpu
