#include "sim/read_sim.hpp"

#include <algorithm>
#include <cmath>

#include "encode/dna.hpp"
#include "encode/revcomp.hpp"
#include "util/rng.hpp"

namespace gkgpu {

namespace {

/// Sequences `length` bases starting at `origin`, applying the error
/// profile (the common machinery of the single-end and paired
/// simulators).  Returns the number of simulated errors.
int ApplyReadErrors(std::string_view genome, std::int64_t origin, int length,
                    const ReadErrorProfile& profile, Rng& rng,
                    std::string* seq) {
  int edits = 0;
  seq->clear();
  seq->reserve(static_cast<std::size_t>(length));
  std::size_t g = static_cast<std::size_t>(origin);
  while (static_cast<int>(seq->size()) < length && g < genome.size()) {
    if (rng.Bernoulli(profile.del_rate)) {
      ++g;  // skip a genome base
      ++edits;
      continue;
    }
    if (rng.Bernoulli(profile.ins_rate)) {
      seq->push_back(kBases[rng.NextU64() & 0x3u]);
      ++edits;
      continue;
    }
    char base = genome[g++];
    if (rng.Bernoulli(profile.sub_rate)) {
      const unsigned old_code = BaseToCode(base) & 0x3u;
      base = kBases[(old_code + 1 + rng.Uniform(3)) & 0x3u];
      ++edits;
    }
    if (rng.Bernoulli(profile.n_rate)) {
      base = 'N';
      ++edits;
    }
    seq->push_back(base);
  }
  while (static_cast<int>(seq->size()) < length) {
    seq->push_back(kBases[rng.NextU64() & 0x3u]);
  }
  return edits;
}

/// Standard normal deviate (Box-Muller on the deterministic generator).
double Gaussian(Rng& rng) {
  const double u1 = std::max(rng.UniformReal(), 1e-12);
  const double u2 = rng.UniformReal();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

std::vector<SimulatedRead> SimulateReads(std::string_view genome,
                                         std::size_t count, int length,
                                         const ReadErrorProfile& profile,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SimulatedRead> reads;
  reads.reserve(count);
  // Keep enough slack after the origin for deletions to draw from.
  const std::size_t slack = static_cast<std::size_t>(length) / 2 + 8;
  const std::size_t max_origin =
      genome.size() > static_cast<std::size_t>(length) + slack
          ? genome.size() - length - slack
          : 0;
  for (std::size_t r = 0; r < count; ++r) {
    SimulatedRead read;
    read.origin = static_cast<std::int64_t>(rng.Uniform(max_origin + 1));
    read.edits =
        ApplyReadErrors(genome, read.origin, length, profile, rng, &read.seq);
    reads.push_back(std::move(read));
  }
  return reads;
}

std::vector<std::string> SimulateReadSequences(std::string_view genome,
                                               std::size_t count, int length,
                                               const ReadErrorProfile& profile,
                                               std::uint64_t seed) {
  std::vector<std::string> seqs;
  seqs.reserve(count);
  for (auto& r : SimulateReads(genome, count, length, profile, seed)) {
    seqs.push_back(std::move(r.seq));
  }
  return seqs;
}

std::vector<SimulatedPair> SimulatePairs(std::string_view genome,
                                         std::size_t count,
                                         const PairSimConfig& config,
                                         std::uint64_t seed) {
  Rng rng(seed);
  const int L = config.read_length;
  std::vector<SimulatedPair> pairs;
  pairs.reserve(count);
  // Slack past the fragment end so R2's deletion draws stay in range.
  const std::int64_t slack = L / 2 + 8;
  std::string fwd2;
  for (std::size_t p = 0; p < count; ++p) {
    SimulatedPair pair;
    const double raw =
        config.insert_mean + config.insert_sd * Gaussian(rng);
    const std::int64_t max_frag =
        std::max<std::int64_t>(L, static_cast<std::int64_t>(genome.size()) -
                                      slack);
    pair.fragment_length = static_cast<int>(std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::llround(raw)), L, max_frag));
    const std::int64_t max_start = std::max<std::int64_t>(
        0, static_cast<std::int64_t>(genome.size()) - pair.fragment_length -
               slack);
    pair.fragment_start =
        static_cast<std::int64_t>(rng.Uniform(
            static_cast<std::uint64_t>(max_start) + 1));
    pair.origin1 = pair.fragment_start;
    pair.origin2 = pair.fragment_start + pair.fragment_length - L;
    pair.edits1 = ApplyReadErrors(genome, pair.origin1, L, config.profile,
                                  rng, &pair.seq1);
    pair.edits2 =
        ApplyReadErrors(genome, pair.origin2, L, config.profile, rng, &fwd2);
    ReverseComplementInto(fwd2, &pair.seq2);
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

}  // namespace gkgpu
