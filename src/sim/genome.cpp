#include "sim/genome.hpp"

#include <algorithm>

#include "encode/dna.hpp"
#include "util/rng.hpp"

namespace gkgpu {

std::string GenerateGenome(std::size_t length, std::uint64_t seed,
                           const GenomeProfile& profile) {
  Rng rng(seed);
  std::string genome(length, 'A');
  for (auto& c : genome) c = kBases[rng.NextU64() & 0x3u];

  // Plant repeat families: copy a template segment to several random
  // destinations with light per-base mutation.
  const std::size_t rep_len =
      std::min<std::size_t>(profile.repeat_length, length / 4 + 1);
  if (rep_len >= 32 && length > 4 * rep_len) {
    for (int f = 0; f < profile.repeat_families; ++f) {
      const std::size_t src = rng.Uniform(length - rep_len);
      for (int c = 0; c < profile.repeat_copies; ++c) {
        const std::size_t dst = rng.Uniform(length - rep_len);
        for (std::size_t i = 0; i < rep_len; ++i) {
          char base = genome[src + i];
          if (rng.Bernoulli(profile.repeat_mutation_rate)) {
            base = kBases[rng.NextU64() & 0x3u];
          }
          genome[dst + i] = base;
        }
      }
    }
  }

  // Assembly-gap runs of 'N'.
  const double expected_runs =
      profile.n_runs_per_mb * static_cast<double>(length) / 1e6;
  const int runs = static_cast<int>(expected_runs);
  for (int r = 0; r < runs; ++r) {
    const std::size_t run_len =
        std::min<std::size_t>(profile.n_run_length, length / 10 + 1);
    if (length <= run_len) break;
    const std::size_t start = rng.Uniform(length - run_len);
    std::fill(genome.begin() + static_cast<std::ptrdiff_t>(start),
              genome.begin() + static_cast<std::ptrdiff_t>(start + run_len),
              'N');
  }
  return genome;
}

}  // namespace gkgpu
