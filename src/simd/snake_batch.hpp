// Batch SneakySnake kernels over PairBlocks.
//
// SneakySnake (Alser et al. 2020) routes a single net through the
// (2e+1) x L neighborhood maze; the expensive half is building the maze.
// The batch kernels build every diagonal's mismatch bitmap directly from
// the 2-bit encoded PairBlock lanes on 64-bit words (shift the encoded
// reference by the diagonal offset, XOR against the read, reduce
// 2-bit -> 1-bit, mark out-of-range columns as obstructions) — no decoded
// strings anywhere — then run the greedy traversal over the uint64 rows
// with leading-zero counts.  The AVX2 variant builds four pairs' mazes
// lane-parallel and stores the rows lane-major; the traversal (inherently
// sequential per pair) walks each lane with a stride.
//
// Bit-identity with the scalar SneakySnakeFilter::Filter is a hard
// contract, asserted by the differential harness's batch sweep and
// tests/test_simd_batch.cpp: the encoded maze matches the character-domain
// maze (same construction as NeighborhoodMap::BuildEncoded), and the
// traversal below is the scalar loop verbatim.
#ifndef GKGPU_SIMD_SNAKE_BATCH_HPP
#define GKGPU_SIMD_SNAKE_BATCH_HPP

#include <algorithm>
#include <cstddef>

#include "filters/pair_block.hpp"
#include "simd/bitops64.hpp"

namespace gkgpu::simd {

/// The greedy snake traversal over prebuilt 64-bit neighborhood rows.
/// `rows` points at the first word of diagonal -e for one pair;
/// consecutive diagonals are mask64 * stride words apart and consecutive
/// words of one row `stride` apart (lane-major buffers pass their lane
/// count, contiguous rows pass 1).  Mirrors SneakySnakeFilter::Filter's
/// loop exactly — including the early diagonal-scan exit, which cannot
/// change the maximum.
inline FilterResult SnakeTraverse64(const U64* rows, int mask64, int length,
                                    int e, int stride = 1) {
  const std::size_t diag_words =
      static_cast<std::size_t>(mask64) * static_cast<std::size_t>(stride);
  int pos = 0;
  int edits = 0;
  while (pos < length) {
    int best = 0;
    for (int d = -e; d <= e; ++d) {
      const U64* row = rows + static_cast<std::size_t>(d + e) * diag_words;
      best = std::max(best, ZeroRunFrom64(row, mask64, pos, length, stride));
      if (pos + best >= length) break;
    }
    pos += best;
    if (pos >= length) break;
    ++edits;  // the snake hits an obstruction: one edit, skip the column
    ++pos;
    if (edits > e) return {false, edits};
  }
  return {edits <= e, edits};
}

/// Filters pairs [begin, end) of `block` into results[begin..end) on the
/// portable uint64_t path.
void SneakySnakeFilterRangeScalar(const PairBlock& block, std::size_t begin,
                                  std::size_t end, int e,
                                  PairResult* results);

/// AVX2 variant: four pairs' neighborhood mazes per instruction stream
/// (falls back to the scalar path in binaries built without AVX2 —
/// guard explicit calls with Avx2Compiled()).
void SneakySnakeFilterRangeAvx2(const PairBlock& block, std::size_t begin,
                                std::size_t end, int e, PairResult* results);

/// Runtime-dispatched entry point (simd::ActiveLevel(); the AVX-512 tier
/// also runs the AVX2 maze build — the traversal is scalar per lane
/// either way, so wider lanes buy nothing here).
void SneakySnakeFilterRange(const PairBlock& block, std::size_t begin,
                            std::size_t end, int e, PairResult* results);

}  // namespace gkgpu::simd

#endif  // GKGPU_SIMD_SNAKE_BATCH_HPP
