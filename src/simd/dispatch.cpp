#include "simd/dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace gkgpu::simd {

bool Avx2Supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Level ActiveLevel() {
  static const Level level = [] {
    const char* no_avx2 = std::getenv("GKGPU_NO_AVX2");
    const bool disabled = no_avx2 != nullptr && *no_avx2 != '\0' &&
                          std::strcmp(no_avx2, "0") != 0;
    return (!disabled && Avx2Compiled() && Avx2Supported()) ? Level::kAvx2
                                                            : Level::kScalar;
  }();
  return level;
}

}  // namespace gkgpu::simd
