#include "simd/dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace gkgpu::simd {

namespace {

/// Escape-hatch semantics shared by both env vars: set and neither empty
/// nor "0" means disabled.
bool EnvDisabled(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

}  // namespace

bool Avx2Supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool Avx512Supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0;
#else
  return false;
#endif
}

Level ActiveLevel() {
  static const Level level = [] {
    // GKGPU_NO_AVX2 forces scalar outright (it predates the AVX-512 tier
    // and CI relies on it meaning "no vector kernels at all");
    // GKGPU_NO_AVX512 caps dispatch at AVX2.
    if (EnvDisabled("GKGPU_NO_AVX2") || !Avx2Compiled() || !Avx2Supported()) {
      return Level::kScalar;
    }
    if (!EnvDisabled("GKGPU_NO_AVX512") && Avx512Compiled() &&
        Avx512Supported()) {
      return Level::kAvx512;
    }
    return Level::kAvx2;
  }();
  return level;
}

}  // namespace gkgpu::simd
