#include "simd/gatekeeper_batch.hpp"

#include "simd/bitops64.hpp"
#include "simd/dispatch.hpp"
#include "simd/window_gather.hpp"

namespace gkgpu::simd {

namespace {

int Count64(const U64* mask, int nwords, const GateKeeperParams& p) {
  if (p.count == CountMode::kPopcount) return PopcountWords64(mask, nwords);
  return CountOneRuns64(mask, nwords);
}

/// Reduced, amended, edge-fixed difference mask for `read` shifted by
/// `shift` bases against `ref` — GateKeeperMask on 64-bit words.  Only
/// called with shift != 0 from the improved pipeline, so the edge fix is
/// unconditional.
void Mask64(const U64* read, const U64* ref, int length, int shift,
            U64* mask) {
  const int enc64 = Words64(EncodedWords(length));
  const int mask64 = Words64(MaskWords(length));
  // Scratch is fully overwritten by the shift/XOR below — zero-initializing
  // it was measurable overhead in the per-pair profile.
  U64 shifted[kMaxWords64];
  U64 diff[kMaxWords64];
  const U64* lhs = read;
  if (shift > 0) {
    ShiftToLater64(read, shifted, enc64, 2 * shift);
    lhs = shifted;
  } else {
    ShiftToEarlier64(read, shifted, enc64, -2 * shift);
    lhs = shifted;
  }
  XorWords64(lhs, ref, diff, enc64);
  ReducePairsOr64(diff, length, mask);
  AmendShortZeroRuns64(mask, mask64);
  if (shift > 0) {
    SetBitRange64(mask, mask64, 0, shift);
  } else {
    SetBitRange64(mask, mask64, length + shift, length);
  }
}

/// 2-bit-domain difference mask (original pipeline), 64-bit words.
void Mask2Bit64(const U64* read, const U64* ref, int length, int shift,
                U64* mask) {
  const int enc64 = Words64(EncodedWords(length));
  U64 shifted[kMaxWords64];
  const U64* lhs = read;
  if (shift > 0) {
    ShiftToLater64(read, shifted, enc64, 2 * shift);
    lhs = shifted;
  } else if (shift < 0) {
    ShiftToEarlier64(read, shifted, enc64, -2 * shift);
    lhs = shifted;
  }
  XorWords64(lhs, ref, mask, enc64);
  ZeroTailBits64(mask, enc64, 2 * length);
  AmendShortZeroRuns64(mask, enc64);
}

FilterResult FiltrationOriginal64(const U64* read, const U64* ref, int length,
                                  int e, const GateKeeperParams& p) {
  const int enc64 = Words64(EncodedWords(length));
  U64 final_mask[kMaxWords64];
  XorWords64(read, ref, final_mask, enc64);
  ZeroTailBits64(final_mask, enc64, 2 * length);
  if (e == 0) {
    const int errors = Count64(final_mask, enc64, p);
    return {errors == 0, errors};
  }
  AmendShortZeroRuns64(final_mask, enc64);
  U64 mask[kMaxWords64];
  for (int k = 1; k <= e; ++k) {
    Mask2Bit64(read, ref, length, k, mask);
    AndWords64(final_mask, mask, enc64);
    Mask2Bit64(read, ref, length, -k, mask);
    AndWords64(final_mask, mask, enc64);
  }
  const int errors = Count64(final_mask, enc64, p);
  return {errors <= e, errors};
}

}  // namespace

FilterResult GateKeeperFiltration64(const Word* read_enc, const Word* ref_enc,
                                    int length, int e,
                                    const GateKeeperParams& params) {
  const int enc32 = EncodedWords(length);
  U64 read[kMaxWords64];
  U64 ref[kMaxWords64];
  PackWords64(read_enc, enc32, read);
  PackWords64(ref_enc, enc32, ref);
  if (params.mode == GateKeeperMode::kOriginal) {
    return FiltrationOriginal64(read, ref, length, e, params);
  }
  const int enc64 = Words64(enc32);
  const int mask64 = Words64(MaskWords(length));
  U64 final_mask[kMaxWords64];
  U64 diff[kMaxWords64];
  XorWords64(read, ref, diff, enc64);
  ReducePairsOr64(diff, length, final_mask);
  if (e == 0) {
    const int errors = Count64(final_mask, mask64, params);
    return {errors == 0, errors};
  }
  AmendShortZeroRuns64(final_mask, mask64);
  U64 mask[kMaxWords64];
  for (int k = 1; k <= e; ++k) {
    Mask64(read, ref, length, k, mask);
    AndWords64(final_mask, mask, mask64);
    Mask64(read, ref, length, -k, mask);
    AndWords64(final_mask, mask, mask64);
  }
  const int errors = Count64(final_mask, mask64, params);
  return {errors <= e, errors};
}

void GateKeeperFilterRangeScalar(const PairBlock& block, std::size_t begin,
                                 std::size_t end, int e,
                                 const GateKeeperParams& params,
                                 PairResult* results) {
  Word read_scratch[kMaxEncodedWords];
  Word ref_scratch[kMaxEncodedWords];
  for (std::size_t i = begin; i < end; ++i) {
    const BlockPairView p = LoadBlockPair(block, i, read_scratch, ref_scratch);
    if (p.killed) {
      results[i] = EarlyOutPairResult();
      continue;
    }
    if (p.bypass) {
      results[i] = BypassedPairResult();
      continue;
    }
    results[i] = MakePairResult(
        GateKeeperFiltration64(p.read, p.ref, block.length, e, params), false);
  }
}

void GateKeeperFilterRange(const PairBlock& block, std::size_t begin,
                           std::size_t end, int e,
                           const GateKeeperParams& params,
                           PairResult* results) {
  switch (ActiveLevel()) {
    case Level::kAvx512:
      GateKeeperFilterRangeAvx512(block, begin, end, e, params, results);
      break;
    case Level::kAvx2:
      GateKeeperFilterRangeAvx2(block, begin, end, e, params, results);
      break;
    default:
      GateKeeperFilterRangeScalar(block, begin, end, e, params, results);
      break;
  }
}

void LoadBlockGroup(const PairBlock& block, std::size_t i0, int lanes,
                    Word (*read_scratch)[kMaxEncodedWords],
                    Word (*ref_scratch)[kMaxEncodedWords],
                    BlockPairView* views) {
  if (!block.candidate_shape()) {
    for (int l = 0; l < lanes; ++l) {
      views[l] = LoadBlockPair(block, i0 + static_cast<std::size_t>(l),
                               read_scratch[l], ref_scratch[l]);
    }
    return;
  }
  // Candidate shape: all lanes' reference windows come out of the encoded
  // genome in one lane-parallel gather; the per-lane remainder is the
  // bypass test and the strand reorientation.
  std::int64_t starts[kMaxGroupLanes];
  for (int l = 0; l < lanes; ++l) {
    starts[l] = block.candidates[i0 + static_cast<std::size_t>(l)].ref_pos;
  }
  ExtractWindowsAvx2(block.ref_words, block.ref_len, starts, lanes,
                     block.length, &ref_scratch[0][0], kMaxEncodedWords);
  for (int l = 0; l < lanes; ++l) {
    const CandidatePair c =
        block.candidates[i0 + static_cast<std::size_t>(l)];
    BlockPairView& v = views[l];
    if ((c.flags & kCandidateLaneKilled) != 0) {
      v = BlockPairView{};
      v.killed = true;
      continue;
    }
    v.killed = false;
    v.bypass = (block.bypass != nullptr && block.bypass[c.read_index] != 0) ||
               RangeHasUnknownRaw(block.ref_n_mask, block.ref_len, c.ref_pos,
                                  block.length);
    v.ref = ref_scratch[l];
    const Word* read = block.reads_enc +
                       static_cast<std::size_t>(c.read_index) *
                           static_cast<std::size_t>(block.words_per_seq);
    if (c.strand != 0) {
      ReverseComplementEncoded(read, block.length, read_scratch[l]);
      read = read_scratch[l];
    }
    v.read = read;
  }
}

}  // namespace gkgpu::simd
