// Multi-word uint64_t ports of the bit-vector primitives in
// util/bitops.hpp.  The bitstring semantics are identical — bit 0 is the
// MSB of word 0, "later" positions sit toward the LSB end — only the word
// width doubles: two consecutive 32-bit words pack into one 64-bit word
// (the earlier word in the high half), so every operation touches half as
// many words and the AVX2 kernels hold one pair per 64-bit lane.
//
// Bit-identity with the 32-bit pipeline is a hard contract (asserted by
// tests/test_simd_batch.cpp): a sequence of `enc_words` 32-bit words maps
// onto Words64(enc_words) 64-bit words whose pad half (odd word counts) is
// zero, and the GateKeeper pipeline neutralizes every pad-visible
// difference — ReducePairsOr64 and ZeroTailBits64 clear all bits past the
// sequence length, exactly as the 32-bit versions do.
#ifndef GKGPU_SIMD_BITOPS64_HPP
#define GKGPU_SIMD_BITOPS64_HPP

#include <bit>
#include <cstdint>
#include <cstring>

#include "util/bitops.hpp"

namespace gkgpu::simd {

using U64 = std::uint64_t;

inline constexpr int kWordBits64 = 64;
inline constexpr int kBasesPerWord64 = 32;  // 2 bits per base
/// 64-bit words covering a kMaxReadLength encoded sequence.
inline constexpr int kMaxWords64 = kMaxEncodedWords / 2;

/// 64-bit words needed to hold `nwords32` 32-bit words.
constexpr int Words64(int nwords32) { return (nwords32 + 1) / 2; }

/// Packs a 32-bit word array into 64-bit words, earlier word in the high
/// half; a trailing odd word leaves the low half zero.
inline void PackWords64(const Word* src, int nwords32, U64* dst) {
  const int n = Words64(nwords32);
  for (int k = 0; k < n; ++k) {
    const U64 hi = U64{src[2 * k]} << 32;
    const U64 lo = 2 * k + 1 < nwords32 ? U64{src[2 * k + 1]} : 0;
    dst[k] = hi | lo;
  }
}

/// dst[p + bits] = src[p]: shift toward later positions with carry-bit
/// transfer across words; vacated leading bits become 0.  src and dst may
/// alias only if identical.
inline void ShiftToLater64(const U64* src, U64* dst, int nwords, int bits) {
  if (bits <= 0) {
    if (dst != src) std::memmove(dst, src, sizeof(U64) * nwords);
    return;
  }
  const int word_off = bits / kWordBits64;
  const int bit_off = bits % kWordBits64;
  for (int i = nwords - 1; i >= 0; --i) {
    const int j = i - word_off;
    U64 v = 0;
    if (bit_off == 0) {
      if (j >= 0) v = src[j];
    } else {
      if (j >= 0) v = src[j] >> bit_off;
      if (j - 1 >= 0) v |= src[j - 1] << (kWordBits64 - bit_off);
    }
    dst[i] = v;
  }
}

/// dst[p - bits] = src[p]: shift toward earlier positions; vacated
/// trailing bits become 0.
inline void ShiftToEarlier64(const U64* src, U64* dst, int nwords, int bits) {
  if (bits <= 0) {
    if (dst != src) std::memmove(dst, src, sizeof(U64) * nwords);
    return;
  }
  const int word_off = bits / kWordBits64;
  const int bit_off = bits % kWordBits64;
  for (int i = 0; i < nwords; ++i) {
    const int j = i + word_off;
    U64 v = 0;
    if (bit_off == 0) {
      if (j < nwords) v = src[j];
    } else {
      if (j < nwords) v = src[j] << bit_off;
      if (j + 1 < nwords) v |= src[j + 1] >> (kWordBits64 - bit_off);
    }
    dst[i] = v;
  }
}

inline void XorWords64(const U64* a, const U64* b, U64* dst, int nwords) {
  for (int i = 0; i < nwords; ++i) dst[i] = a[i] ^ b[i];
}

inline void AndWords64(U64* dst, const U64* src, int nwords) {
  for (int i = 0; i < nwords; ++i) dst[i] &= src[i];
}

/// Collapses a 2-bit-per-base difference word (32 bases, MSB-first) into
/// 32 one-bit-per-base flags in the low half, base j at bit (31 - j) —
/// the 64-bit analogue of CompressPairsOrHalf.
inline U64 CompressPairsOr64(U64 w) {
  U64 t = (w | (w >> 1)) & 0x5555555555555555ULL;
  t = (t | (t >> 1)) & 0x3333333333333333ULL;
  t = (t | (t >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  t = (t | (t >> 4)) & 0x00FF00FF00FF00FFULL;
  t = (t | (t >> 8)) & 0x0000FFFF0000FFFFULL;
  t = (t | (t >> 16)) & 0x00000000FFFFFFFFULL;
  return t;
}

/// Zeroes every bit at position >= length_bits.
inline void ZeroTailBits64(U64* mask, int nwords, int length_bits) {
  const int full = length_bits / kWordBits64;
  const int rem = length_bits % kWordBits64;
  if (full < nwords && rem > 0) {
    mask[full] &= ~U64{0} << (kWordBits64 - rem);
  }
  for (int i = full + (rem > 0 ? 1 : 0); i < nwords; ++i) mask[i] = 0;
}

/// Reduces a 2-bit-domain difference mask covering `length` bases to a
/// 1-bit-per-base mask of Words64(MaskWords(length)) words; bits past
/// `length` are zeroed.
inline void ReducePairsOr64(const U64* diff2, int length, U64* mask) {
  const int enc64 = Words64(EncodedWords(length));
  const int mask64 = Words64(MaskWords(length));
  for (int m = 0; m < mask64; ++m) {
    const int hi = 2 * m;
    const int lo = 2 * m + 1;
    U64 w = CompressPairsOr64(hi < enc64 ? diff2[hi] : 0) << 32;
    w |= CompressPairsOr64(lo < enc64 ? diff2[lo] : 0);
    mask[m] = w;
  }
  ZeroTailBits64(mask, mask64, length);
}

/// The bits of [from, to) that fall inside word `word` (empty ranges and
/// non-overlapping words yield 0) — precomputable per word, so vector
/// lanes can OR/AND one broadcast constant instead of looping bits.
inline U64 RangeMask64(int word, int from, int to) {
  const int base = word * kWordBits64;
  const int lo = from > base ? from - base : 0;
  int hi = to - base;
  if (hi > kWordBits64) hi = kWordBits64;
  if (lo >= hi) return 0;
  const U64 down = ~U64{0} >> lo;  // lo <= 63 here
  const U64 up = ~U64{0} << (kWordBits64 - hi);
  return down & up;
}

/// Sets mask bits in [from, to).
inline void SetBitRange64(U64* mask, int nwords, int from, int to) {
  for (int w = 0; w < nwords; ++w) {
    const U64 m = RangeMask64(w, from, to);
    if (m != 0) mask[w] |= m;
  }
}

/// Number of maximal runs of 1s (0 -> 1 transitions, the position before
/// bit 0 reading as 0).  `stride` lets callers walk one lane of an
/// interleaved lane-major buffer (the AVX2 kernels store 4 lanes side by
/// side); contiguous arrays pass stride 1.
inline int CountOneRuns64(const U64* mask, int nwords, int stride = 1) {
  int runs = 0;
  U64 prev_lsb = 0;
  for (int i = 0; i < nwords; ++i) {
    const U64 w = mask[i * stride];
    const U64 before = (w >> 1) | (prev_lsb << (kWordBits64 - 1));
    runs += std::popcount(w & ~before);
    prev_lsb = w & 1u;
  }
  return runs;
}

/// Length of the run of 0s starting at bit `pos`, clamped so the run
/// never extends past `length_bits` (tail bits beyond the sequence are
/// zero by construction and must not count as matches).  `stride` walks
/// one lane of a lane-major buffer, as in CountOneRuns64.
inline int ZeroRunFrom64(const U64* row, int nwords, int pos, int length_bits,
                         int stride = 1) {
  int p = pos;
  int word = pos / kWordBits64;
  int off = pos % kWordBits64;
  while (word < nwords) {
    const U64 w = row[word * stride] << off;
    if (w != 0) {
      p += std::countl_zero(w);
      break;
    }
    p += kWordBits64 - off;
    off = 0;
    ++word;
  }
  if (p > length_bits) p = length_bits;
  return p - pos;
}

/// Total set bits; `stride` as in CountOneRuns64.
inline int PopcountWords64(const U64* mask, int nwords, int stride = 1) {
  int n = 0;
  for (int i = 0; i < nwords; ++i) n += std::popcount(mask[i * stride]);
  return n;
}

/// Flips every internal run of 0s of length <= 2 bounded by 1s on both
/// sides — the branch-free amendment, one word width up.  Fused single
/// pass: the four shifted neighborhoods are formed per word from the
/// original current/previous/next words (in-place updates must not feed
/// already-amended bits back in, hence `prev` carries the pre-amendment
/// value), so no scratch arrays and no extra passes over the mask.
inline void AmendShortZeroRuns64(U64* mask, int nwords) {
  U64 prev = 0;
  for (int i = 0; i < nwords; ++i) {
    const U64 cur = mask[i];
    const U64 next = i + 1 < nwords ? mask[i + 1] : 0;
    const U64 l1 = (cur >> 1) | (prev << (kWordBits64 - 1));
    const U64 l2 = (cur >> 2) | (prev << (kWordBits64 - 2));
    const U64 r1 = (cur << 1) | (next >> (kWordBits64 - 1));
    const U64 r2 = (cur << 2) | (next >> (kWordBits64 - 2));
    mask[i] = cur | (l1 & (r1 | r2)) | (l2 & r1);
    prev = cur;
  }
}

}  // namespace gkgpu::simd

#endif  // GKGPU_SIMD_BITOPS64_HPP
