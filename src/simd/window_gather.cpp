#include "simd/window_gather.hpp"

#include "simd/dispatch.hpp"

namespace gkgpu::simd {

void ExtractWindowsScalar(const Word* ref_words, std::int64_t ref_len,
                          const std::int64_t* starts, int count, int len,
                          Word* out, std::size_t out_stride) {
  for (int i = 0; i < count; ++i) {
    ExtractSegmentRaw(ref_words, ref_len, starts[i], len,
                      out + static_cast<std::size_t>(i) * out_stride);
  }
}

void ExtractWindows(const Word* ref_words, std::int64_t ref_len,
                    const std::int64_t* starts, int count, int len, Word* out,
                    std::size_t out_stride) {
  if (ActiveLevel() != Level::kScalar) {
    ExtractWindowsAvx2(ref_words, ref_len, starts, count, len, out,
                       out_stride);
  } else {
    ExtractWindowsScalar(ref_words, ref_len, starts, count, len, out,
                         out_stride);
  }
}

}  // namespace gkgpu::simd
