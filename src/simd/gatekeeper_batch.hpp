// Batch GateKeeper filtration kernels over PairBlocks.
//
// Two implementations of one contract, both bit-identical to the 32-bit
// reference core (filters/gatekeeper_core.hpp) in decisions *and*
// estimated edits:
//
//   * scalar — the mask pipeline on multi-word uint64_t lanes
//     (simd/bitops64.hpp): half the word operations of the 32-bit core,
//     portable everywhere;
//   * AVX2   — four pairs per instruction, one uint64_t lane each,
//     compiled only where <immintrin.h> + -mavx2 are available and chosen
//     at runtime by CPUID (simd/dispatch.hpp).
//
// GateKeeperFilterRange() is the dispatching entry point every consumer
// uses (the device kernels' block bodies, GateKeeperFilter::FilterBatch,
// GateKeeperCpu); the Scalar/Avx2 variants stay visible so the
// equivalence fuzz test can drive both paths explicitly on one machine.
//
// Bypass contract (shared with the device kernels): a pair whose block
// bypass bit is set — or whose candidate window overlaps a reference 'N'
// — skips filtration and receives {accept=1, bypassed=1, edits=0}.
// Builders that want the FPGA baseline's no-bypass behaviour simply build
// blocks without bypass bits (PairBlockStorage::Add mark_undefined=false).
//
// GateKeeperParams::use_lut selects an implementation detail of the
// 32-bit core whose results are identical by contract (asserted in
// test_bitops); the batch kernels always run the branch-free pipeline.
#ifndef GKGPU_SIMD_GATEKEEPER_BATCH_HPP
#define GKGPU_SIMD_GATEKEEPER_BATCH_HPP

#include <cstddef>

#include "filters/gatekeeper_core.hpp"
#include "filters/pair_block.hpp"

namespace gkgpu::simd {

/// One complete filtration on 32-bit encoded sequences, run on the 64-bit
/// word pipeline.  Must agree with GateKeeperFiltration bit for bit;
/// exposed for the per-pair consumers and the equivalence tests.
FilterResult GateKeeperFiltration64(const Word* read_enc, const Word* ref_enc,
                                    int length, int e,
                                    const GateKeeperParams& params);

/// Filters pairs [begin, end) of `block` into results[begin..end) on the
/// portable uint64_t-lane path.
void GateKeeperFilterRangeScalar(const PairBlock& block, std::size_t begin,
                                 std::size_t end, int e,
                                 const GateKeeperParams& params,
                                 PairResult* results);

/// AVX2 variant (falls back to the scalar path in binaries built without
/// AVX2 support — guard explicit calls with Avx2Compiled()).
void GateKeeperFilterRangeAvx2(const PairBlock& block, std::size_t begin,
                               std::size_t end, int e,
                               const GateKeeperParams& params,
                               PairResult* results);

/// Runtime-dispatched entry point (simd::ActiveLevel()).
void GateKeeperFilterRange(const PairBlock& block, std::size_t begin,
                           std::size_t end, int e,
                           const GateKeeperParams& params,
                           PairResult* results);

}  // namespace gkgpu::simd

#endif  // GKGPU_SIMD_GATEKEEPER_BATCH_HPP
