// Batch GateKeeper filtration kernels over PairBlocks.
//
// Two implementations of one contract, both bit-identical to the 32-bit
// reference core (filters/gatekeeper_core.hpp) in decisions *and*
// estimated edits:
//
//   * scalar  — the mask pipeline on multi-word uint64_t lanes
//     (simd/bitops64.hpp): half the word operations of the 32-bit core,
//     portable everywhere;
//   * AVX2    — four pairs per instruction, one uint64_t lane each,
//     compiled only where <immintrin.h> + -mavx2 are available and chosen
//     at runtime by CPUID (simd/dispatch.hpp);
//   * AVX-512 — eight pairs per instruction, same lane layout, in a
//     per-file -mavx512bw TU behind the same runtime dispatch
//     (GKGPU_NO_AVX512 caps dispatch at AVX2).
//
// GateKeeperFilterRange() is the dispatching entry point every consumer
// uses (the device kernels' block bodies, GateKeeperFilter::FilterBatch,
// GateKeeperCpu); the Scalar/Avx2 variants stay visible so the
// equivalence fuzz test can drive both paths explicitly on one machine.
//
// Bypass contract (shared with the device kernels): a pair whose block
// bypass bit is set — or whose candidate window overlaps a reference 'N'
// — skips filtration and receives {accept=1, bypassed=1, edits=0}.
// Builders that want the FPGA baseline's no-bypass behaviour simply build
// blocks without bypass bits (PairBlockStorage::Add mark_undefined=false).
//
// GateKeeperParams::use_lut selects an implementation detail of the
// 32-bit core whose results are identical by contract (asserted in
// test_bitops); the batch kernels always run the branch-free pipeline.
#ifndef GKGPU_SIMD_GATEKEEPER_BATCH_HPP
#define GKGPU_SIMD_GATEKEEPER_BATCH_HPP

#include <cstddef>

#include "filters/gatekeeper_core.hpp"
#include "filters/pair_block.hpp"

namespace gkgpu::simd {

/// One complete filtration on 32-bit encoded sequences, run on the 64-bit
/// word pipeline.  Must agree with GateKeeperFiltration bit for bit;
/// exposed for the per-pair consumers and the equivalence tests.
FilterResult GateKeeperFiltration64(const Word* read_enc, const Word* ref_enc,
                                    int length, int e,
                                    const GateKeeperParams& params);

/// Filters pairs [begin, end) of `block` into results[begin..end) on the
/// portable uint64_t-lane path.
void GateKeeperFilterRangeScalar(const PairBlock& block, std::size_t begin,
                                 std::size_t end, int e,
                                 const GateKeeperParams& params,
                                 PairResult* results);

/// AVX2 variant (falls back to the scalar path in binaries built without
/// AVX2 support — guard explicit calls with Avx2Compiled()).
void GateKeeperFilterRangeAvx2(const PairBlock& block, std::size_t begin,
                               std::size_t end, int e,
                               const GateKeeperParams& params,
                               PairResult* results);

/// AVX-512 variant, eight pairs per instruction (falls back to the AVX2
/// variant — and through it to scalar — in binaries built without
/// AVX-512 support; guard explicit calls with Avx512Compiled()).
void GateKeeperFilterRangeAvx512(const PairBlock& block, std::size_t begin,
                                 std::size_t end, int e,
                                 const GateKeeperParams& params,
                                 PairResult* results);

/// Runtime-dispatched entry point (simd::ActiveLevel()).
void GateKeeperFilterRange(const PairBlock& block, std::size_t begin,
                           std::size_t end, int e,
                           const GateKeeperParams& params,
                           PairResult* results);

/// Widest SIMD group any kernel materializes at once (AVX-512 lanes).
inline constexpr int kMaxGroupLanes = 8;

/// Materializes pairs [i0, i0 + lanes) of `block` into per-lane scratch —
/// the group-wide form of LoadBlockPair.  For candidate-shaped blocks the
/// per-lane reference windows are extracted with the lane-parallel gather
/// (simd/window_gather.hpp) instead of one scalar copy per lane; other
/// shapes defer to LoadBlockPair.  Only meaningful from the vector
/// kernels (the gather assumes AVX2 is running).
void LoadBlockGroup(const PairBlock& block, std::size_t i0, int lanes,
                    Word (*read_scratch)[kMaxEncodedWords],
                    Word (*ref_scratch)[kMaxEncodedWords],
                    BlockPairView* views);

}  // namespace gkgpu::simd

#endif  // GKGPU_SIMD_GATEKEEPER_BATCH_HPP
