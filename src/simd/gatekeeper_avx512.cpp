// AVX-512 GateKeeper batch kernel: eight filtrations per instruction
// stream.
//
// Same lane layout as the AVX2 kernel (simd/gatekeeper_avx2.cpp), one
// register width up: lane l of every zmm register holds pair
// (group_base + l)'s 64-bit word w, so the whole mask pipeline — shifts,
// XOR/AND/OR, 2-bit->1-bit reduction, amendment, edge fixes — runs
// lane-parallel with no cross-lane traffic, and only the final error
// count drops to scalar per lane.  The group tail (< 8 pairs) delegates
// to the AVX2 kernel rather than scalar: a host dispatching here always
// has AVX2.
//
// This file is compiled with -mavx512f -mavx512bw when the toolchain
// supports them (GKGPU_SIMD_AVX512); the function is only reached behind
// the runtime CPUID dispatch in simd/dispatch.cpp (avx512f + avx512bw,
// GKGPU_NO_AVX512 unset).  Without support it degrades to the AVX2
// variant so the symbol set stays identical.
#include "simd/gatekeeper_batch.hpp"

#include "simd/bitops64.hpp"
#include "simd/dispatch.hpp"

#if defined(GKGPU_SIMD_AVX512)
#include <immintrin.h>
#endif

namespace gkgpu::simd {

#if defined(GKGPU_SIMD_AVX512)

bool Avx512Compiled() { return true; }

namespace {

constexpr int kLanes = 8;

inline __m512i Srl(__m512i v, int n) {
  return _mm512_srl_epi64(v, _mm_cvtsi32_si128(n));
}
inline __m512i Sll(__m512i v, int n) {
  return _mm512_sll_epi64(v, _mm_cvtsi32_si128(n));
}

void VShiftToLater(const __m512i* src, __m512i* dst, int nwords, int bits) {
  const __m512i zero = _mm512_setzero_si512();
  const int word_off = bits / kWordBits64;
  const int bit_off = bits % kWordBits64;
  for (int i = nwords - 1; i >= 0; --i) {
    const int j = i - word_off;
    __m512i v = zero;
    if (bit_off == 0) {
      if (j >= 0) v = src[j];
    } else {
      if (j >= 0) v = Srl(src[j], bit_off);
      if (j - 1 >= 0) {
        v = _mm512_or_si512(v, Sll(src[j - 1], kWordBits64 - bit_off));
      }
    }
    dst[i] = v;
  }
}

void VShiftToEarlier(const __m512i* src, __m512i* dst, int nwords, int bits) {
  const __m512i zero = _mm512_setzero_si512();
  const int word_off = bits / kWordBits64;
  const int bit_off = bits % kWordBits64;
  for (int i = 0; i < nwords; ++i) {
    const int j = i + word_off;
    __m512i v = zero;
    if (bit_off == 0) {
      if (j < nwords) v = src[j];
    } else {
      if (j < nwords) v = Sll(src[j], bit_off);
      if (j + 1 < nwords) {
        v = _mm512_or_si512(v, Srl(src[j + 1], kWordBits64 - bit_off));
      }
    }
    dst[i] = v;
  }
}

inline void VXor(const __m512i* a, const __m512i* b, __m512i* dst,
                 int nwords) {
  for (int i = 0; i < nwords; ++i) dst[i] = _mm512_xor_si512(a[i], b[i]);
}

inline void VAnd(__m512i* dst, const __m512i* src, int nwords) {
  for (int i = 0; i < nwords; ++i) dst[i] = _mm512_and_si512(dst[i], src[i]);
}

/// CompressPairsOr64, lane-parallel.
inline __m512i VCompress(__m512i w) {
  __m512i t = _mm512_and_si512(_mm512_or_si512(w, _mm512_srli_epi64(w, 1)),
                               _mm512_set1_epi64(0x5555555555555555LL));
  t = _mm512_and_si512(_mm512_or_si512(t, _mm512_srli_epi64(t, 1)),
                       _mm512_set1_epi64(0x3333333333333333LL));
  t = _mm512_and_si512(_mm512_or_si512(t, _mm512_srli_epi64(t, 2)),
                       _mm512_set1_epi64(0x0F0F0F0F0F0F0F0FLL));
  t = _mm512_and_si512(_mm512_or_si512(t, _mm512_srli_epi64(t, 4)),
                       _mm512_set1_epi64(0x00FF00FF00FF00FFLL));
  t = _mm512_and_si512(_mm512_or_si512(t, _mm512_srli_epi64(t, 8)),
                       _mm512_set1_epi64(0x0000FFFF0000FFFFLL));
  t = _mm512_and_si512(_mm512_or_si512(t, _mm512_srli_epi64(t, 16)),
                       _mm512_set1_epi64(0x00000000FFFFFFFFLL));
  return t;
}

/// Zeroes every lane's bits at positions >= length_bits with per-word
/// broadcast constants.
void VZeroTail(__m512i* mask, int nwords, int length_bits) {
  for (int w = 0; w < nwords; ++w) {
    const U64 keep = ~RangeMask64(w, length_bits, nwords * kWordBits64);
    if (keep != ~U64{0}) {
      mask[w] = _mm512_and_si512(
          mask[w], _mm512_set1_epi64(static_cast<long long>(keep)));
    }
  }
}

/// ReducePairsOr64, lane-parallel: 2-bit diff -> 1-bit mask, tail zeroed.
void VReduce(const __m512i* diff, int length, __m512i* mask) {
  const int enc64 = Words64(EncodedWords(length));
  const int mask64 = Words64(MaskWords(length));
  const __m512i zero = _mm512_setzero_si512();
  for (int m = 0; m < mask64; ++m) {
    const int hi = 2 * m;
    const int lo = 2 * m + 1;
    __m512i w = _mm512_slli_epi64(hi < enc64 ? VCompress(diff[hi]) : zero, 32);
    if (lo < enc64) w = _mm512_or_si512(w, VCompress(diff[lo]));
    mask[m] = w;
  }
  VZeroTail(mask, mask64, length);
}

void VSetRange(__m512i* mask, int nwords, int from, int to) {
  for (int w = 0; w < nwords; ++w) {
    const U64 m = RangeMask64(w, from, to);
    if (m != 0) {
      mask[w] = _mm512_or_si512(mask[w],
                                _mm512_set1_epi64(static_cast<long long>(m)));
    }
  }
}

/// Fused single-pass amendment (see AmendShortZeroRuns64): the four
/// shifted neighborhoods come from the original current/previous/next
/// words per iteration — no vector scratch arrays, one pass.
void VAmend(__m512i* mask, int nwords) {
  __m512i prev = _mm512_setzero_si512();
  for (int i = 0; i < nwords; ++i) {
    const __m512i cur = mask[i];
    const __m512i next =
        i + 1 < nwords ? mask[i + 1] : _mm512_setzero_si512();
    const __m512i l1 = _mm512_or_si512(_mm512_srli_epi64(cur, 1),
                                       _mm512_slli_epi64(prev, 63));
    const __m512i l2 = _mm512_or_si512(_mm512_srli_epi64(cur, 2),
                                       _mm512_slli_epi64(prev, 62));
    const __m512i r1 = _mm512_or_si512(_mm512_slli_epi64(cur, 1),
                                       _mm512_srli_epi64(next, 63));
    const __m512i r2 = _mm512_or_si512(_mm512_slli_epi64(cur, 2),
                                       _mm512_srli_epi64(next, 62));
    const __m512i amend = _mm512_or_si512(
        _mm512_and_si512(l1, _mm512_or_si512(r1, r2)),
        _mm512_and_si512(l2, r1));
    mask[i] = _mm512_or_si512(cur, amend);
    prev = cur;
  }
}

/// Word `w` of eight per-pair arrays, transposed into one register (lane
/// l = pair l).
inline __m512i Lanes(const U64 (*rows)[kMaxWords64], int w) {
  return _mm512_set_epi64(static_cast<long long>(rows[7][w]),
                          static_cast<long long>(rows[6][w]),
                          static_cast<long long>(rows[5][w]),
                          static_cast<long long>(rows[4][w]),
                          static_cast<long long>(rows[3][w]),
                          static_cast<long long>(rows[2][w]),
                          static_cast<long long>(rows[1][w]),
                          static_cast<long long>(rows[0][w]));
}

/// Counts each lane of the finished mask with the scalar 64-bit counters.
void CountLanes(const __m512i* mask, int nwords, const GateKeeperParams& p,
                int* errors) {
  alignas(64) U64 out[kMaxWords64 * kLanes];
  for (int w = 0; w < nwords; ++w) {
    _mm512_store_si512(reinterpret_cast<__m512i*>(out + w * kLanes), mask[w]);
  }
  for (int l = 0; l < kLanes; ++l) {
    errors[l] = p.count == CountMode::kPopcount
                    ? PopcountWords64(out + l, nwords, kLanes)
                    : CountOneRuns64(out + l, nwords, kLanes);
  }
}

/// The improved (GateKeeper-GPU) pipeline over one 8-lane group.
void ImprovedGroup(const U64 (*reads)[kMaxWords64],
                   const U64 (*refs)[kMaxWords64], int length, int e,
                   const GateKeeperParams& p, int* errors) {
  const int enc64 = Words64(EncodedWords(length));
  const int mask64 = Words64(MaskWords(length));
  __m512i R[kMaxWords64], G[kMaxWords64];
  for (int w = 0; w < enc64; ++w) {
    R[w] = Lanes(reads, w);
    G[w] = Lanes(refs, w);
  }
  __m512i diff[kMaxWords64], final_mask[kMaxWords64], mask[kMaxWords64],
      shifted[kMaxWords64];
  VXor(R, G, diff, enc64);
  VReduce(diff, length, final_mask);
  if (e > 0) {
    VAmend(final_mask, mask64);
    for (int k = 1; k <= e; ++k) {
      VShiftToLater(R, shifted, enc64, 2 * k);
      VXor(shifted, G, diff, enc64);
      VReduce(diff, length, mask);
      VAmend(mask, mask64);
      VSetRange(mask, mask64, 0, k);  // leading bits vacated by the deletion
      VAnd(final_mask, mask, mask64);
      VShiftToEarlier(R, shifted, enc64, 2 * k);
      VXor(shifted, G, diff, enc64);
      VReduce(diff, length, mask);
      VAmend(mask, mask64);
      VSetRange(mask, mask64, length - k, length);  // trailing (insertion)
      VAnd(final_mask, mask, mask64);
    }
  }
  CountLanes(final_mask, mask64, p, errors);
}

/// The original (FPGA/SHD) pipeline in the 2-bit mask domain.
void OriginalGroup(const U64 (*reads)[kMaxWords64],
                   const U64 (*refs)[kMaxWords64], int length, int e,
                   const GateKeeperParams& p, int* errors) {
  const int enc64 = Words64(EncodedWords(length));
  __m512i R[kMaxWords64], G[kMaxWords64];
  for (int w = 0; w < enc64; ++w) {
    R[w] = Lanes(reads, w);
    G[w] = Lanes(refs, w);
  }
  __m512i final_mask[kMaxWords64], mask[kMaxWords64], shifted[kMaxWords64];
  VXor(R, G, final_mask, enc64);
  VZeroTail(final_mask, enc64, 2 * length);
  if (e > 0) {
    VAmend(final_mask, enc64);
    for (int k = 1; k <= e; ++k) {
      for (const int shift : {k, -k}) {
        if (shift > 0) {
          VShiftToLater(R, shifted, enc64, 2 * shift);
        } else {
          VShiftToEarlier(R, shifted, enc64, -2 * shift);
        }
        VXor(shifted, G, mask, enc64);
        VZeroTail(mask, enc64, 2 * length);
        VAmend(mask, enc64);
        VAnd(final_mask, mask, enc64);
      }
    }
  }
  CountLanes(final_mask, enc64, p, errors);
}

}  // namespace

void GateKeeperFilterRangeAvx512(const PairBlock& block, std::size_t begin,
                                 std::size_t end, int e,
                                 const GateKeeperParams& params,
                                 PairResult* results) {
  Word read_scratch[kLanes][kMaxEncodedWords];
  Word ref_scratch[kLanes][kMaxEncodedWords];
  BlockPairView views[kLanes];
  const int enc32 = EncodedWords(block.length);
  std::size_t i = begin;
  for (; i + kLanes <= end; i += kLanes) {
    U64 reads[kLanes][kMaxWords64];
    U64 refs[kLanes][kMaxWords64];
    bool bypass[kLanes];
    bool killed[kLanes];
    bool all_inactive = true;
    LoadBlockGroup(block, i, kLanes, read_scratch, ref_scratch, views);
    for (int l = 0; l < kLanes; ++l) {
      bypass[l] = views[l].bypass;
      killed[l] = views[l].killed;
      all_inactive = all_inactive && (views[l].bypass || views[l].killed);
      if (killed[l]) {
        // Killed lanes carry no sequences; zero-filled words keep the
        // group kernel's vector math defined, the result is overwritten.
        for (int w = 0; w < kMaxWords64; ++w) reads[l][w] = refs[l][w] = 0;
        continue;
      }
      PackWords64(views[l].read, enc32, reads[l]);
      PackWords64(views[l].ref, enc32, refs[l]);
    }
    if (all_inactive) {
      for (int l = 0; l < kLanes; ++l) {
        results[i + static_cast<std::size_t>(l)] =
            killed[l] ? EarlyOutPairResult() : BypassedPairResult();
      }
      continue;
    }
    int errors[kLanes];
    if (params.mode == GateKeeperMode::kOriginal) {
      OriginalGroup(reads, refs, block.length, e, params, errors);
    } else {
      ImprovedGroup(reads, refs, block.length, e, params, errors);
    }
    for (int l = 0; l < kLanes; ++l) {
      results[i + static_cast<std::size_t>(l)] =
          killed[l] ? EarlyOutPairResult()
          : bypass[l] ? BypassedPairResult()
                      : MakePairResult({errors[l] <= e, errors[l]}, false);
    }
  }
  if (i < end) {
    GateKeeperFilterRangeAvx2(block, i, end, e, params, results);
  }
}

#else  // !GKGPU_SIMD_AVX512

bool Avx512Compiled() { return false; }

void GateKeeperFilterRangeAvx512(const PairBlock& block, std::size_t begin,
                                 std::size_t end, int e,
                                 const GateKeeperParams& params,
                                 PairResult* results) {
  GateKeeperFilterRangeAvx2(block, begin, end, e, params, results);
}

#endif  // GKGPU_SIMD_AVX512

}  // namespace gkgpu::simd
