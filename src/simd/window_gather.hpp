// Lane-parallel candidate window extraction.
//
// Candidate-shaped PairBlocks carry (read_index, strand, ref_pos) rows
// against one encoded genome; every consumer used to slice each lane's
// reference window out of the 2-bit encoding with a scalar per-lane copy
// (ExtractSegmentRaw) before the vector mask pipeline ever started.  The
// gather variant feeds all lanes of a SIMD group at once: per output word
// it gathers the covering raw words of every lane with one vector gather
// and realigns them with per-lane variable shifts, so the vector kernels'
// candidate preamble is itself lane-parallel.
//
// ExtractWindowsAvx2 lives in the -mavx2 TU (simd/gatekeeper_avx2.cpp)
// and degrades to the scalar loop in binaries built without AVX2; callers
// inside the vector kernels may call it directly, everyone else goes
// through ExtractWindows (runtime dispatch).
#ifndef GKGPU_SIMD_WINDOW_GATHER_HPP
#define GKGPU_SIMD_WINDOW_GATHER_HPP

#include <cstddef>
#include <cstdint>

#include "encode/encoded.hpp"

namespace gkgpu::simd {

/// Extracts `count` windows of `len` bases each: window i starts at genome
/// base starts[i] and lands at out + i * out_stride (EncodedWords(len)
/// words written, pad bases zeroed).  Scalar reference implementation.
void ExtractWindowsScalar(const Word* ref_words, std::int64_t ref_len,
                          const std::int64_t* starts, int count, int len,
                          Word* out, std::size_t out_stride);

/// Four windows per gather instruction (falls back to the scalar loop in
/// binaries built without AVX2 support).
void ExtractWindowsAvx2(const Word* ref_words, std::int64_t ref_len,
                        const std::int64_t* starts, int count, int len,
                        Word* out, std::size_t out_stride);

/// Runtime-dispatched entry point (simd::ActiveLevel()).
void ExtractWindows(const Word* ref_words, std::int64_t ref_len,
                    const std::int64_t* starts, int count, int len, Word* out,
                    std::size_t out_stride);

}  // namespace gkgpu::simd

#endif  // GKGPU_SIMD_WINDOW_GATHER_HPP
