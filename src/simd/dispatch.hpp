// Runtime SIMD dispatch for the batch filtration kernels.
//
// The decision is made once per process from three inputs:
//   * whether the AVX2 kernels were compiled at all (non-x86 targets and
//     compilers without -mavx2 build the scalar layer only);
//   * whether the CPU reports AVX2 (CPUID, via __builtin_cpu_supports);
//   * the GKGPU_NO_AVX2 environment escape hatch — set to anything
//     non-empty (other than "0") to force the scalar path, e.g. to
//     reproduce a result on vector-less hardware or to bisect a suspected
//     SIMD divergence.  CI runs the whole suite once in this mode.
//
// Both paths are bit-identical by contract (asserted by
// tests/test_simd_batch.cpp), so dispatch is a pure performance choice.
#ifndef GKGPU_SIMD_DISPATCH_HPP
#define GKGPU_SIMD_DISPATCH_HPP

namespace gkgpu::simd {

enum class Level {
  kScalar,  // portable multi-word uint64_t lanes
  kAvx2,    // 4 pairs per instruction, one uint64_t lane each
};

/// True when the AVX2 kernels are present in this binary (compile-time).
bool Avx2Compiled();

/// True when the running CPU supports AVX2 (runtime CPUID).
bool Avx2Supported();

/// The level the batch kernels actually run at, resolved once per process
/// (compiled && supported && !GKGPU_NO_AVX2).
Level ActiveLevel();

inline const char* LevelName(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

}  // namespace gkgpu::simd

#endif  // GKGPU_SIMD_DISPATCH_HPP
