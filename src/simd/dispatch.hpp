// Runtime SIMD dispatch for the batch filtration kernels.
//
// The decision is made once per process from three inputs per tier:
//   * whether the tier's kernels were compiled at all (non-x86 targets
//     and compilers without -mavx2 / -mavx512bw build the scalar layer
//     only);
//   * whether the CPU reports the ISA (CPUID, via
//     __builtin_cpu_supports);
//   * the environment escape hatches — GKGPU_NO_AVX2 forces the scalar
//     path outright, GKGPU_NO_AVX512 caps dispatch at AVX2; set either
//     to anything non-empty (other than "0"), e.g. to reproduce a result
//     on vector-less hardware or to bisect a suspected SIMD divergence.
//     CI runs the whole suite once in each mode.
//
// All paths are bit-identical by contract (asserted by
// tests/test_simd_batch.cpp), so dispatch is a pure performance choice.
#ifndef GKGPU_SIMD_DISPATCH_HPP
#define GKGPU_SIMD_DISPATCH_HPP

namespace gkgpu::simd {

enum class Level {
  kScalar,  // portable multi-word uint64_t lanes
  kAvx2,    // 4 pairs per instruction, one uint64_t lane each
  kAvx512,  // 8 pairs per instruction, one uint64_t lane each
};

/// True when the AVX2 kernels are present in this binary (compile-time).
bool Avx2Compiled();

/// True when the running CPU supports AVX2 (runtime CPUID).
bool Avx2Supported();

/// True when the AVX-512 kernels are present in this binary.
bool Avx512Compiled();

/// True when the running CPU supports AVX-512F + AVX-512BW (the kernels
/// need byte/word mask ops on 512-bit vectors).
bool Avx512Supported();

/// The level the batch kernels actually run at, resolved once per process
/// (compiled && supported && not disabled by the escape hatches; the
/// highest eligible tier wins).
Level ActiveLevel();

inline const char* LevelName(Level level) {
  switch (level) {
    case Level::kAvx512:
      return "avx512";
    case Level::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

}  // namespace gkgpu::simd

#endif  // GKGPU_SIMD_DISPATCH_HPP
