// AVX2 GateKeeper batch kernel: four filtrations per instruction stream.
//
// Layout: lane l of every ymm register holds pair (group_base + l)'s
// 64-bit word w — the mask pipeline's cross-word carries run along the
// word index inside each lane, so shifts, XOR/AND/OR, the 2-bit->1-bit
// reduction and the amendment all vectorize lane-parallel with no
// cross-lane traffic.  Only the final error count leaves the vector
// domain: the finished mask is stored lane-major and each lane is counted
// with the scalar 64-bit run counter.
//
// Shift counts, edge-fix ranges and tail masks are uniform across lanes
// (one block shares length and threshold), so they broadcast as scalar
// 64-bit constants computed once per word.
//
// This file is compiled with -mavx2 when the toolchain supports it
// (GKGPU_SIMD_AVX2); the functions are only reached behind the runtime
// CPUID dispatch in simd/dispatch.cpp.  Without support it degrades to
// the scalar path so the symbol set stays identical.
#include "simd/gatekeeper_batch.hpp"

#include <vector>

#include "simd/bitops64.hpp"
#include "simd/dispatch.hpp"
#include "simd/snake_batch.hpp"
#include "simd/window_gather.hpp"

#if defined(GKGPU_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace gkgpu::simd {

#if defined(GKGPU_SIMD_AVX2)

bool Avx2Compiled() { return true; }

namespace {

constexpr int kLanes = 4;

inline __m256i Srl(__m256i v, int n) {
  return _mm256_srl_epi64(v, _mm_cvtsi32_si128(n));
}
inline __m256i Sll(__m256i v, int n) {
  return _mm256_sll_epi64(v, _mm_cvtsi32_si128(n));
}

void VShiftToLater(const __m256i* src, __m256i* dst, int nwords, int bits) {
  const __m256i zero = _mm256_setzero_si256();
  const int word_off = bits / kWordBits64;
  const int bit_off = bits % kWordBits64;
  for (int i = nwords - 1; i >= 0; --i) {
    const int j = i - word_off;
    __m256i v = zero;
    if (bit_off == 0) {
      if (j >= 0) v = src[j];
    } else {
      if (j >= 0) v = Srl(src[j], bit_off);
      if (j - 1 >= 0) {
        v = _mm256_or_si256(v, Sll(src[j - 1], kWordBits64 - bit_off));
      }
    }
    dst[i] = v;
  }
}

void VShiftToEarlier(const __m256i* src, __m256i* dst, int nwords, int bits) {
  const __m256i zero = _mm256_setzero_si256();
  const int word_off = bits / kWordBits64;
  const int bit_off = bits % kWordBits64;
  for (int i = 0; i < nwords; ++i) {
    const int j = i + word_off;
    __m256i v = zero;
    if (bit_off == 0) {
      if (j < nwords) v = src[j];
    } else {
      if (j < nwords) v = Sll(src[j], bit_off);
      if (j + 1 < nwords) {
        v = _mm256_or_si256(v, Srl(src[j + 1], kWordBits64 - bit_off));
      }
    }
    dst[i] = v;
  }
}

inline void VXor(const __m256i* a, const __m256i* b, __m256i* dst,
                 int nwords) {
  for (int i = 0; i < nwords; ++i) dst[i] = _mm256_xor_si256(a[i], b[i]);
}

inline void VAnd(__m256i* dst, const __m256i* src, int nwords) {
  for (int i = 0; i < nwords; ++i) dst[i] = _mm256_and_si256(dst[i], src[i]);
}

/// CompressPairsOr64, lane-parallel.
inline __m256i VCompress(__m256i w) {
  __m256i t = _mm256_and_si256(_mm256_or_si256(w, _mm256_srli_epi64(w, 1)),
                               _mm256_set1_epi64x(0x5555555555555555LL));
  t = _mm256_and_si256(_mm256_or_si256(t, _mm256_srli_epi64(t, 1)),
                       _mm256_set1_epi64x(0x3333333333333333LL));
  t = _mm256_and_si256(_mm256_or_si256(t, _mm256_srli_epi64(t, 2)),
                       _mm256_set1_epi64x(0x0F0F0F0F0F0F0F0FLL));
  t = _mm256_and_si256(_mm256_or_si256(t, _mm256_srli_epi64(t, 4)),
                       _mm256_set1_epi64x(0x00FF00FF00FF00FFLL));
  t = _mm256_and_si256(_mm256_or_si256(t, _mm256_srli_epi64(t, 8)),
                       _mm256_set1_epi64x(0x0000FFFF0000FFFFLL));
  t = _mm256_and_si256(_mm256_or_si256(t, _mm256_srli_epi64(t, 16)),
                       _mm256_set1_epi64x(0x00000000FFFFFFFFLL));
  return t;
}

/// Zeroes every lane's bits at positions >= length_bits with per-word
/// broadcast constants.
void VZeroTail(__m256i* mask, int nwords, int length_bits) {
  for (int w = 0; w < nwords; ++w) {
    const U64 keep = ~RangeMask64(w, length_bits, nwords * kWordBits64);
    if (keep != ~U64{0}) {
      mask[w] = _mm256_and_si256(mask[w], _mm256_set1_epi64x(
                                              static_cast<long long>(keep)));
    }
  }
}

/// ReducePairsOr64, lane-parallel: 2-bit diff -> 1-bit mask, tail zeroed.
void VReduce(const __m256i* diff, int length, __m256i* mask) {
  const int enc64 = Words64(EncodedWords(length));
  const int mask64 = Words64(MaskWords(length));
  const __m256i zero = _mm256_setzero_si256();
  for (int m = 0; m < mask64; ++m) {
    const int hi = 2 * m;
    const int lo = 2 * m + 1;
    __m256i w = _mm256_slli_epi64(hi < enc64 ? VCompress(diff[hi]) : zero, 32);
    if (lo < enc64) w = _mm256_or_si256(w, VCompress(diff[lo]));
    mask[m] = w;
  }
  VZeroTail(mask, mask64, length);
}

void VSetRange(__m256i* mask, int nwords, int from, int to) {
  for (int w = 0; w < nwords; ++w) {
    const U64 m = RangeMask64(w, from, to);
    if (m != 0) {
      mask[w] = _mm256_or_si256(mask[w],
                                _mm256_set1_epi64x(static_cast<long long>(m)));
    }
  }
}

/// Fused single-pass amendment (see AmendShortZeroRuns64): the four
/// shifted neighborhoods come from the original current/previous/next
/// words per iteration — no vector scratch arrays, one pass.
void VAmend(__m256i* mask, int nwords) {
  __m256i prev = _mm256_setzero_si256();
  for (int i = 0; i < nwords; ++i) {
    const __m256i cur = mask[i];
    const __m256i next =
        i + 1 < nwords ? mask[i + 1] : _mm256_setzero_si256();
    const __m256i l1 = _mm256_or_si256(_mm256_srli_epi64(cur, 1),
                                       _mm256_slli_epi64(prev, 63));
    const __m256i l2 = _mm256_or_si256(_mm256_srli_epi64(cur, 2),
                                       _mm256_slli_epi64(prev, 62));
    const __m256i r1 = _mm256_or_si256(_mm256_slli_epi64(cur, 1),
                                       _mm256_srli_epi64(next, 63));
    const __m256i r2 = _mm256_or_si256(_mm256_slli_epi64(cur, 2),
                                       _mm256_srli_epi64(next, 62));
    const __m256i amend = _mm256_or_si256(
        _mm256_and_si256(l1, _mm256_or_si256(r1, r2)),
        _mm256_and_si256(l2, r1));
    mask[i] = _mm256_or_si256(cur, amend);
    prev = cur;
  }
}

/// Word `w` of four per-pair arrays, transposed into one register (lane
/// l = pair l).
inline __m256i Lanes(const U64 (*rows)[kMaxWords64], int w) {
  return _mm256_set_epi64x(static_cast<long long>(rows[3][w]),
                           static_cast<long long>(rows[2][w]),
                           static_cast<long long>(rows[1][w]),
                           static_cast<long long>(rows[0][w]));
}

/// Counts each lane of the finished mask with the scalar 64-bit counters.
void CountLanes(const __m256i* mask, int nwords, const GateKeeperParams& p,
                int* errors) {
  alignas(32) U64 out[kMaxWords64 * kLanes];
  for (int w = 0; w < nwords; ++w) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(out + w * kLanes), mask[w]);
  }
  for (int l = 0; l < kLanes; ++l) {
    errors[l] = p.count == CountMode::kPopcount
                    ? PopcountWords64(out + l, nwords, kLanes)
                    : CountOneRuns64(out + l, nwords, kLanes);
  }
}

/// The improved (GateKeeper-GPU) pipeline over one 4-lane group.
void ImprovedGroup(const U64 (*reads)[kMaxWords64],
                   const U64 (*refs)[kMaxWords64], int length, int e,
                   const GateKeeperParams& p, int* errors) {
  const int enc64 = Words64(EncodedWords(length));
  const int mask64 = Words64(MaskWords(length));
  __m256i R[kMaxWords64], G[kMaxWords64];
  for (int w = 0; w < enc64; ++w) {
    R[w] = Lanes(reads, w);
    G[w] = Lanes(refs, w);
  }
  __m256i diff[kMaxWords64], final_mask[kMaxWords64], mask[kMaxWords64],
      shifted[kMaxWords64];
  VXor(R, G, diff, enc64);
  VReduce(diff, length, final_mask);
  if (e > 0) {
    VAmend(final_mask, mask64);
    for (int k = 1; k <= e; ++k) {
      VShiftToLater(R, shifted, enc64, 2 * k);
      VXor(shifted, G, diff, enc64);
      VReduce(diff, length, mask);
      VAmend(mask, mask64);
      VSetRange(mask, mask64, 0, k);  // leading bits vacated by the deletion
      VAnd(final_mask, mask, mask64);
      VShiftToEarlier(R, shifted, enc64, 2 * k);
      VXor(shifted, G, diff, enc64);
      VReduce(diff, length, mask);
      VAmend(mask, mask64);
      VSetRange(mask, mask64, length - k, length);  // trailing (insertion)
      VAnd(final_mask, mask, mask64);
    }
  }
  CountLanes(final_mask, mask64, p, errors);
}

/// The original (FPGA/SHD) pipeline in the 2-bit mask domain.
void OriginalGroup(const U64 (*reads)[kMaxWords64],
                   const U64 (*refs)[kMaxWords64], int length, int e,
                   const GateKeeperParams& p, int* errors) {
  const int enc64 = Words64(EncodedWords(length));
  __m256i R[kMaxWords64], G[kMaxWords64];
  for (int w = 0; w < enc64; ++w) {
    R[w] = Lanes(reads, w);
    G[w] = Lanes(refs, w);
  }
  __m256i final_mask[kMaxWords64], mask[kMaxWords64], shifted[kMaxWords64];
  VXor(R, G, final_mask, enc64);
  VZeroTail(final_mask, enc64, 2 * length);
  if (e > 0) {
    VAmend(final_mask, enc64);
    for (int k = 1; k <= e; ++k) {
      for (const int shift : {k, -k}) {
        if (shift > 0) {
          VShiftToLater(R, shifted, enc64, 2 * shift);
        } else {
          VShiftToEarlier(R, shifted, enc64, -2 * shift);
        }
        VXor(shifted, G, mask, enc64);
        VZeroTail(mask, enc64, 2 * length);
        VAmend(mask, enc64);
        VAnd(final_mask, mask, enc64);
      }
    }
  }
  CountLanes(final_mask, enc64, p, errors);
}

}  // namespace

void GateKeeperFilterRangeAvx2(const PairBlock& block, std::size_t begin,
                               std::size_t end, int e,
                               const GateKeeperParams& params,
                               PairResult* results) {
  Word read_scratch[kLanes][kMaxEncodedWords];
  Word ref_scratch[kLanes][kMaxEncodedWords];
  BlockPairView views[kLanes];
  const int enc32 = EncodedWords(block.length);
  std::size_t i = begin;
  for (; i + kLanes <= end; i += kLanes) {
    U64 reads[kLanes][kMaxWords64];
    U64 refs[kLanes][kMaxWords64];
    bool bypass[kLanes];
    bool killed[kLanes];
    bool all_inactive = true;
    LoadBlockGroup(block, i, kLanes, read_scratch, ref_scratch, views);
    for (int l = 0; l < kLanes; ++l) {
      bypass[l] = views[l].bypass;
      killed[l] = views[l].killed;
      all_inactive = all_inactive && (views[l].bypass || views[l].killed);
      if (killed[l]) {
        // Killed lanes carry no sequences; zero-filled words keep the
        // group kernel's vector math defined, the result is overwritten.
        for (int w = 0; w < kMaxWords64; ++w) reads[l][w] = refs[l][w] = 0;
        continue;
      }
      PackWords64(views[l].read, enc32, reads[l]);
      PackWords64(views[l].ref, enc32, refs[l]);
    }
    if (all_inactive) {
      for (int l = 0; l < kLanes; ++l) {
        results[i + static_cast<std::size_t>(l)] =
            killed[l] ? EarlyOutPairResult() : BypassedPairResult();
      }
      continue;
    }
    int errors[kLanes];
    if (params.mode == GateKeeperMode::kOriginal) {
      OriginalGroup(reads, refs, block.length, e, params, errors);
    } else {
      ImprovedGroup(reads, refs, block.length, e, params, errors);
    }
    for (int l = 0; l < kLanes; ++l) {
      results[i + static_cast<std::size_t>(l)] =
          killed[l] ? EarlyOutPairResult()
          : bypass[l] ? BypassedPairResult()
                      : MakePairResult({errors[l] <= e, errors[l]}, false);
    }
  }
  if (i < end) {
    GateKeeperFilterRangeScalar(block, i, end, e, params, results);
  }
}

void ExtractWindowsAvx2(const Word* ref_words, std::int64_t ref_len,
                        const std::int64_t* starts, int count, int len,
                        Word* out, std::size_t out_stride) {
  const std::int64_t total_words =
      (ref_len + kBasesPerWord - 1) / kBasesPerWord;
  const int out_words = EncodedWords(len);
  // The gather indexes with 32-bit lanes; genomes past 2^31 encoded words
  // (> 34 Gbp) take the scalar path.  KmerIndex refuses them far earlier.
  if (total_words > 0x7FFFFFFF) {
    ExtractWindowsScalar(ref_words, ref_len, starts, count, len, out,
                         out_stride);
    return;
  }
  const int pad_bits = out_words * kWordBits - 2 * len;
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    alignas(16) std::int32_t first[4];
    alignas(16) std::int32_t off[4];
    Word* dst[4];
    for (int l = 0; l < 4; ++l) {
      const std::int64_t start = starts[i + l];
      first[l] = static_cast<std::int32_t>(start / kBasesPerWord);
      off[l] = 2 * static_cast<std::int32_t>(start % kBasesPerWord);
      dst[l] = out + static_cast<std::size_t>(i + l) * out_stride;
    }
    const __m128i vfirst = _mm_load_si128(reinterpret_cast<__m128i*>(first));
    const __m128i voff = _mm_load_si128(reinterpret_cast<__m128i*>(off));
    // srlv by (32 - off) yields 0 when off == 0 (shift counts >= 32 are
    // defined to produce 0 for the vector variable shifts), so no branch.
    const __m128i vshr = _mm_sub_epi32(_mm_set1_epi32(kWordBits), voff);
    const __m128i vlast = _mm_set1_epi32(
        static_cast<std::int32_t>(total_words) - 1);
    const int* base = reinterpret_cast<const int*>(ref_words);
    for (int k = 0; k < out_words; ++k) {
      // start + len <= ref_len keeps first + k in range for every out
      // word; only the k+1 neighbour can run off the end, and its bits
      // land exclusively in the zeroed pad region when it does, so
      // clamping it to the last word is exact.
      const __m128i idx = _mm_add_epi32(vfirst, _mm_set1_epi32(k));
      const __m128i idx1 =
          _mm_min_epi32(_mm_add_epi32(idx, _mm_set1_epi32(1)), vlast);
      const __m128i a = _mm_i32gather_epi32(base, idx, 4);
      const __m128i b = _mm_i32gather_epi32(base, idx1, 4);
      const __m128i w =
          _mm_or_si128(_mm_sllv_epi32(a, voff), _mm_srlv_epi32(b, vshr));
      alignas(16) std::uint32_t lanes[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(lanes), w);
      for (int l = 0; l < 4; ++l) dst[l][k] = lanes[l];
    }
    if (pad_bits > 0) {
      for (int l = 0; l < 4; ++l) {
        dst[l][out_words - 1] &= ~Word{0} << pad_bits;
      }
    }
  }
  if (i < count) {
    ExtractWindowsScalar(ref_words, ref_len, starts + i, count - i, len,
                         out + static_cast<std::size_t>(i) * out_stride,
                         out_stride);
  }
}

void SneakySnakeFilterRangeAvx2(const PairBlock& block, std::size_t begin,
                                std::size_t end, int e, PairResult* results) {
  const int length = block.length;
  const int enc32 = EncodedWords(length);
  const int enc64 = Words64(enc32);
  const int mask64 = Words64(MaskWords(length));
  const int ndiag = 2 * e + 1;
  // Lane-major maze: diagonal d's word w for lane l sits at
  // rows[((d + e) * mask64 + w) * kLanes + l].
  std::vector<U64> rows(static_cast<std::size_t>(ndiag) *
                        static_cast<std::size_t>(mask64) * kLanes);
  Word read_scratch[kLanes][kMaxEncodedWords];
  Word ref_scratch[kLanes][kMaxEncodedWords];
  BlockPairView views[kLanes];
  std::size_t i = begin;
  for (; i + kLanes <= end; i += kLanes) {
    LoadBlockGroup(block, i, kLanes, read_scratch, ref_scratch, views);
    bool all_inactive = true;
    for (int l = 0; l < kLanes; ++l) {
      all_inactive = all_inactive && (views[l].bypass || views[l].killed);
    }
    if (all_inactive) {
      for (int l = 0; l < kLanes; ++l) {
        results[i + static_cast<std::size_t>(l)] =
            views[l].killed ? EarlyOutPairResult() : BypassedPairResult();
      }
      continue;
    }
    U64 reads[kLanes][kMaxWords64];
    U64 refs[kLanes][kMaxWords64];
    for (int l = 0; l < kLanes; ++l) {
      if (views[l].killed) {
        for (int w = 0; w < kMaxWords64; ++w) reads[l][w] = refs[l][w] = 0;
        continue;
      }
      PackWords64(views[l].read, enc32, reads[l]);
      PackWords64(views[l].ref, enc32, refs[l]);
    }
    __m256i R[kMaxWords64], G[kMaxWords64], shifted[kMaxWords64],
        diff[kMaxWords64], row[kMaxWords64];
    for (int w = 0; w < enc64; ++w) {
      R[w] = Lanes(reads, w);
      G[w] = Lanes(refs, w);
    }
    for (int d = -e; d <= e; ++d) {
      // NeighborhoodMap::BuildEncoded lane-parallel: shift the *reference*
      // by the diagonal offset, XOR, reduce, fence out-of-range columns.
      const __m256i* rhs = G;
      if (d > 0) {
        VShiftToEarlier(G, shifted, enc64, 2 * d);
        rhs = shifted;
      } else if (d < 0) {
        VShiftToLater(G, shifted, enc64, -2 * d);
        rhs = shifted;
      }
      VXor(R, rhs, diff, enc64);
      VReduce(diff, length, row);
      if (d > 0) {
        VSetRange(row, mask64, std::max(0, length - d), length);
      } else if (d < 0) {
        VSetRange(row, mask64, 0, std::min(length, -d));
      }
      U64* lane_rows = rows.data() + static_cast<std::size_t>(d + e) *
                                         static_cast<std::size_t>(mask64) *
                                         kLanes;
      for (int w = 0; w < mask64; ++w) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(lane_rows + w * kLanes), row[w]);
      }
    }
    for (int l = 0; l < kLanes; ++l) {
      results[i + static_cast<std::size_t>(l)] =
          views[l].killed ? EarlyOutPairResult()
          : views[l].bypass
              ? BypassedPairResult()
              : MakePairResult(SnakeTraverse64(rows.data() + l, mask64,
                                               length, e, kLanes),
                               false);
    }
  }
  if (i < end) {
    SneakySnakeFilterRangeScalar(block, i, end, e, results);
  }
}

#else  // !GKGPU_SIMD_AVX2

bool Avx2Compiled() { return false; }

void GateKeeperFilterRangeAvx2(const PairBlock& block, std::size_t begin,
                               std::size_t end, int e,
                               const GateKeeperParams& params,
                               PairResult* results) {
  GateKeeperFilterRangeScalar(block, begin, end, e, params, results);
}

void ExtractWindowsAvx2(const Word* ref_words, std::int64_t ref_len,
                        const std::int64_t* starts, int count, int len,
                        Word* out, std::size_t out_stride) {
  ExtractWindowsScalar(ref_words, ref_len, starts, count, len, out,
                       out_stride);
}

void SneakySnakeFilterRangeAvx2(const PairBlock& block, std::size_t begin,
                                std::size_t end, int e, PairResult* results) {
  SneakySnakeFilterRangeScalar(block, begin, end, e, results);
}

#endif  // GKGPU_SIMD_AVX2

}  // namespace gkgpu::simd
