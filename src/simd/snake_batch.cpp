#include "simd/snake_batch.hpp"

#include <vector>

#include "simd/dispatch.hpp"
#include "simd/gatekeeper_batch.hpp"

namespace gkgpu::simd {

namespace {

/// Builds diagonal `d`'s mismatch row from packed 64-bit read/ref lanes —
/// NeighborhoodMap::BuildEncoded, one word width up: shift the *reference*
/// by d bases so column j compares read[j] with ref[j + d], reduce the
/// 2-bit difference to one bit per base, and mark columns whose reference
/// index falls outside [0, length) as mismatches (the shifted-in zero bits
/// would otherwise compare as 'A').
void BuildDiagonal64(const U64* read, const U64* ref, int length, int d,
                     U64* row) {
  const int enc64 = Words64(EncodedWords(length));
  const int mask64 = Words64(MaskWords(length));
  U64 shifted[kMaxWords64];
  U64 diff[kMaxWords64];
  const U64* rhs = ref;
  if (d > 0) {
    ShiftToEarlier64(ref, shifted, enc64, 2 * d);
    rhs = shifted;
  } else if (d < 0) {
    ShiftToLater64(ref, shifted, enc64, -2 * d);
    rhs = shifted;
  }
  XorWords64(read, rhs, diff, enc64);
  ReducePairsOr64(diff, length, row);
  if (d > 0) {
    SetBitRange64(row, mask64, std::max(0, length - d), length);
  } else if (d < 0) {
    SetBitRange64(row, mask64, 0, std::min(length, -d));
  }
}

}  // namespace

void SneakySnakeFilterRangeScalar(const PairBlock& block, std::size_t begin,
                                  std::size_t end, int e,
                                  PairResult* results) {
  const int length = block.length;
  const int enc32 = EncodedWords(length);
  const int mask64 = Words64(MaskWords(length));
  const int ndiag = 2 * e + 1;
  std::vector<U64> rows(static_cast<std::size_t>(ndiag) *
                        static_cast<std::size_t>(mask64));
  Word read_scratch[kMaxEncodedWords];
  Word ref_scratch[kMaxEncodedWords];
  for (std::size_t i = begin; i < end; ++i) {
    const BlockPairView p = LoadBlockPair(block, i, read_scratch, ref_scratch);
    if (p.killed) {
      results[i] = EarlyOutPairResult();
      continue;
    }
    if (p.bypass) {
      results[i] = BypassedPairResult();
      continue;
    }
    U64 read[kMaxWords64];
    U64 ref[kMaxWords64];
    PackWords64(p.read, enc32, read);
    PackWords64(p.ref, enc32, ref);
    for (int d = -e; d <= e; ++d) {
      BuildDiagonal64(read, ref, length, d,
                      rows.data() + static_cast<std::size_t>(d + e) *
                                        static_cast<std::size_t>(mask64));
    }
    results[i] =
        MakePairResult(SnakeTraverse64(rows.data(), mask64, length, e), false);
  }
}

void SneakySnakeFilterRange(const PairBlock& block, std::size_t begin,
                            std::size_t end, int e, PairResult* results) {
  if (ActiveLevel() != Level::kScalar) {
    SneakySnakeFilterRangeAvx2(block, begin, end, e, results);
  } else {
    SneakySnakeFilterRangeScalar(block, begin, end, e, results);
  }
}

}  // namespace gkgpu::simd
