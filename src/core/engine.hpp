// GateKeeperGpuEngine: the top-level GateKeeper-GPU pipeline.
//
// Mirrors the paper's four main steps: (1) system configuration against the
// attached devices, (2) unified-memory resource allocation, (3) read/
// reference preprocessing (2-bit encoding in host or device), (4) batched
// kernel filtration, multi-GPU with equal per-device batches.  Works in two
// input modes:
//   * pair mode       — explicit (read, reference segment) pairs, used by
//                       the accuracy / throughput experiments;
//   * candidate mode  — encoded reference + (read, position) candidates,
//                       the mrFAST integration of Sec. 3.5.
//
// Timing conventions (Sec. 4.3): "kernel time" is simulated device time
// only (max across devices per round, summed over rounds); "filter time"
// adds host-side preprocessing (measured for real) and the simulated PCIe
// transfers, with prefetch-capable devices overlapping transfer and
// compute.
#ifndef GKGPU_CORE_ENGINE_HPP
#define GKGPU_CORE_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/gatekeeper_kernel.hpp"
#include "encode/encoded.hpp"
#include "filters/filter.hpp"
#include "gpusim/device.hpp"

namespace gkgpu {

/// Timings and counters of one streamed batch on one device slot.
struct StreamBatchStats {
  double kernel_seconds = 0.0;    // simulated device time
  double transfer_seconds = 0.0;  // simulated PCIe (prefetch + result fault)
  double readback_seconds = 0.0;  // measured host time copying results out
  std::uint64_t accepted = 0;
  std::uint64_t bypassed = 0;
  std::uint64_t earlyouted = 0;   // joint-filtration early-outs (no verdict)
};

/// Aggregated statistics of one Filter* call.
struct FilterRunStats {
  std::uint64_t pairs = 0;
  std::uint64_t batches = 0;      // kernel rounds
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t bypassed = 0;     // undefined pairs
  std::uint64_t earlyouted = 0;   // joint-filtration early-outs (no verdict)
  double kernel_seconds = 0.0;    // simulated device time ("kt")
  double filter_seconds = 0.0;    // host + device total ("ft")
  double host_encode_seconds = 0.0;
  double host_copy_seconds = 0.0;
  double transfer_seconds = 0.0;  // simulated PCIe time
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t page_faults = 0;
};

class GateKeeperGpuEngine {
 public:
  /// The engine borrows the devices; they must outlive it.  All devices
  /// must share a profile (the paper's setups are homogeneous).
  GateKeeperGpuEngine(EngineConfig config,
                      std::vector<gpusim::Device*> devices);
  ~GateKeeperGpuEngine();

  const EngineConfig& config() const { return config_; }
  const SystemPlan& plan() const { return plan_; }
  int device_count() const { return static_cast<int>(devices_.size()); }
  const gpusim::Device& device(int i) const {
    return *devices_[static_cast<std::size_t>(i)];
  }

  /// Pair mode: filters reads[i] against refs[i] (equal length) and fills
  /// results (accept flag + approximate edit distance per pair).
  FilterRunStats FilterPairs(const std::vector<std::string>& reads,
                             const std::vector<std::string>& refs,
                             std::vector<PairResult>* results);

  /// Candidate mode, step 1: encode the reference into unified memory on
  /// every device (multithreaded host encoding, Sec. 3.5) and prefetch it.
  void LoadReference(std::string_view genome);
  /// Same, from a pre-built encoding (an mmap'd index file) — skips the
  /// host encoding pass entirely.  `fingerprint` must be FingerprintText
  /// of the genome the encoding was built from.
  void LoadReference(const ReferenceEncodingView& enc,
                     std::uint64_t fingerprint);
  bool HasReference() const { return !ref_buffers_.empty(); }
  /// Length of the loaded reference (0 when none).
  std::int64_t reference_length() const { return ref_length_; }
  /// Content fingerprint of the loaded reference (FingerprintText of the
  /// genome given to LoadReference) — lets callers that hold the text
  /// verify the engine really filters against *their* genome, not a
  /// same-length one loaded earlier.
  std::uint64_t reference_fingerprint() const { return ref_fingerprint_; }

  /// Candidate mode, step 2: filter candidate mappings of `reads` (each at
  /// most config().read_length).  Candidates index into `reads`.  The
  /// string_view overload lets callers hand a window into an existing read
  /// set without per-batch string copies (the blocking mapper and the
  /// paired driver build their batch read tables as views).
  FilterRunStats FilterCandidates(const std::vector<std::string>& reads,
                                  const std::vector<CandidatePair>& candidates,
                                  std::vector<PairResult>* results);
  FilterRunStats FilterCandidates(const std::vector<std::string_view>& reads,
                                  const std::vector<CandidatePair>& candidates,
                                  std::vector<PairResult>* results);
  /// Mate-aware joint filtration: candidates are laid out
  /// [phase-A lanes..., phase-B lanes...) per `plan`
  /// (filters/pair_block.hpp).  Phase A filters first; each phase-B lane
  /// whose phase-A partner lanes were all rejected is early-outed
  /// (EarlyOutPairResult, bypassed == 2) without ever being filtered.
  /// Verdicts of lanes that do filter are identical to the independent
  /// path.  An empty plan degrades to plain FilterCandidates.
  FilterRunStats FilterCandidates(const std::vector<std::string_view>& reads,
                                  const std::vector<CandidatePair>& candidates,
                                  const JointFilterPlan& plan,
                                  std::vector<PairResult>* results);

  // --- Streaming path (driven by src/pipeline/) -------------------------
  //
  // Re-entrant per-device batch filtration: every device owns
  // `slots_per_device` independent buffer sets, so the pipeline can host-
  // encode batch N+1 into one slot while batch N's kernel runs from
  // another (double buffering).  Concurrency contract: EncodePairsSlot may
  // run on any thread for any (device, slot) not currently in use, but all
  // FilterPairsSlot calls for one device must come from a single driver
  // thread (device timelines and unified-memory counters are per-device
  // and unsynchronized, exactly like a CUDA stream).

  /// Allocates the slot buffers.  `batch_capacity` is clamped to the
  /// system plan's pairs-per-batch; returns the per-slot capacity.
  std::size_t PrepareStreaming(std::size_t batch_capacity,
                               int slots_per_device);
  int streaming_slots() const { return streaming_slots_; }

  /// Host preprocessing of one batch into (device, slot): 2-bit encoding
  /// under EncodingActor::kHost, raw character staging under kDevice.
  /// Returns measured host seconds.
  double EncodePairsSlot(int device, int slot, const std::string* reads,
                         const std::string* refs, std::size_t count);

  /// Device stage for a previously encoded slot: prefetch (or demand
  /// migration), kernel launch, and result read-back into out[0..count).
  StreamBatchStats FilterPairsSlot(int device, int slot, std::size_t count,
                                   PairResult* out);

  // Candidate-mode streaming: per-(device, slot) buffers carrying a batch's
  // unique reads (2-bit encoded once) plus its (read, reference-offset)
  // candidates; the kernel slices reference windows straight out of the
  // per-device encoded genome loaded by LoadReference — no per-candidate
  // segment extraction or re-encoding on the host.  Same concurrency
  // contract as the pair-mode slots.

  /// Allocates the candidate slot buffers.  `batch_capacity` bounds the
  /// candidates per batch (clamped to the kernel plan), `read_capacity` the
  /// distinct reads per batch; returns the per-slot candidate capacity.
  std::size_t PrepareCandidateStreaming(std::size_t batch_capacity,
                                        std::size_t read_capacity,
                                        int slots_per_device);
  int candidate_streaming_slots() const { return cand_streaming_slots_; }

  /// Host preprocessing of one candidate batch into (device, slot): encodes
  /// the batch's reads and stages the candidate table.  Returns measured
  /// host seconds.
  double EncodeCandidatesSlot(int device, int slot, const std::string* reads,
                              std::size_t read_count,
                              const CandidatePair* candidates,
                              std::size_t count);

  /// Device stage for a previously encoded candidate slot; requires a
  /// loaded reference.
  StreamBatchStats FilterCandidatesSlot(int device, int slot,
                                        std::size_t count, PairResult* out);

  /// Joint-filtration device stage for a previously encoded candidate
  /// slot: two sub-range kernel launches around a host-side kill pass
  /// (see the FilterCandidates plan overload).  `out` must be non-null —
  /// phase A's verdicts drive the kill computation.
  StreamBatchStats FilterCandidatesSlotJoint(int device, int slot,
                                             std::size_t count,
                                             const JointFilterPlan& plan,
                                             PairResult* out);

 private:
  struct DeviceBuffers;

  void EnsurePairBuffers(std::size_t capacity);
  void EnsureCandidateBuffers(std::size_t capacity, std::size_t read_capacity);
  void AllocatePairBuffers(gpusim::Device* dev, DeviceBuffers* b,
                           std::size_t capacity);
  void AllocateCandidateBuffers(gpusim::Device* dev, DeviceBuffers* b,
                                std::size_t capacity,
                                std::size_t read_capacity);
  void EncodeCandidatesInto(DeviceBuffers* b, const std::string* reads,
                            std::size_t read_count,
                            const CandidatePair* candidates,
                            std::size_t count);
  FilterRunStats FilterCandidatesImpl(const std::string_view* reads,
                                      std::size_t read_count,
                                      const std::vector<CandidatePair>&
                                          candidates,
                                      const JointFilterPlan* plan,
                                      std::vector<PairResult>* results);
  /// Runs the candidate kernel over lanes [begin, begin + count) of the
  /// buffer set's staged candidate table, writing out[0..count).
  StreamBatchStats RunCandidatesKernel(std::size_t di, DeviceBuffers* b,
                                       std::size_t begin, std::size_t count,
                                       PairResult* out);
  void EncodePairsInto(DeviceBuffers* b, const std::string* reads,
                       const std::string* refs, std::size_t count);
  StreamBatchStats RunPairsKernel(gpusim::Device* dev, DeviceBuffers* b,
                                  std::size_t count, PairResult* out);

  EngineConfig config_;
  std::vector<gpusim::Device*> devices_;
  SystemPlan plan_;

  std::vector<std::unique_ptr<DeviceBuffers>> buffers_;
  // Streaming slots: stream_buffers_[device * streaming_slots_ + slot].
  std::vector<std::unique_ptr<DeviceBuffers>> stream_buffers_;
  int streaming_slots_ = 0;
  std::size_t streaming_capacity_ = 0;
  // Candidate-mode streaming slots, indexed the same way.
  std::vector<std::unique_ptr<DeviceBuffers>> cand_stream_buffers_;
  int cand_streaming_slots_ = 0;
  std::size_t cand_streaming_capacity_ = 0;
  std::size_t cand_streaming_read_capacity_ = 0;
  // Reference genome, one unified copy per device (as each GPU needs its
  // own resident copy).
  std::vector<std::unique_ptr<gpusim::UnifiedBuffer>> ref_buffers_;
  std::vector<std::unique_ptr<gpusim::UnifiedBuffer>> ref_nmask_buffers_;
  std::int64_t ref_length_ = 0;
  std::uint64_t ref_fingerprint_ = 0;
};

}  // namespace gkgpu

#endif  // GKGPU_CORE_ENGINE_HPP
