// System configuration (GateKeeper-GPU Sec. 3.1): from the device's
// properties and free global memory, derive the per-thread memory load, the
// batch size (filtrations per kernel call), and the launch geometry, "to
// fully utilize GPU for boosting performance ... without the user's
// concern".  In the multi-GPU model every device receives an equal batch.
#ifndef GKGPU_CORE_CONFIG_HPP
#define GKGPU_CORE_CONFIG_HPP

#include <cstddef>

#include "filters/gatekeeper_core.hpp"
#include "gpusim/device.hpp"

namespace gkgpu {

/// Who performs the 2-bit encoding (Sec. 3.3 provides both designs).
enum class EncodingActor { kHost, kDevice };

inline const char* EncodingActorName(EncodingActor a) {
  return a == EncodingActor::kHost ? "host" : "device";
}

struct EngineConfig {
  /// Read length and error threshold are compile-time constants in the
  /// CUDA build (fixed-size kernel arrays); here they are plan-time
  /// constants validated against the library's fixed capacities.
  int read_length = 100;
  int error_threshold = 5;
  EncodingActor encoding = EncodingActor::kHost;
  GateKeeperParams algorithm{};
  /// Maximum reads batched per kernel round in mapper mode (Table 1: the
  /// paper finds 100,000 the sweet spot for mrFAST).
  std::size_t max_reads_per_batch = 100000;
  int threads_per_block = 1024;
  /// Fraction of free global memory the configuration step may claim.
  double mem_safety_factor = 0.85;
  /// Optional cap on filtrations per kernel call (0 = derive from free
  /// device memory).  Lets callers trade batch size for memory, and lets
  /// tests exercise multi-round execution.
  std::size_t max_pairs_per_batch = 0;
};

/// The derived execution plan for one device.
struct SystemPlan {
  std::size_t pairs_per_batch = 0;     // filtrations per kernel call
  int threads_per_block = 0;
  std::size_t thread_load_bytes = 0;   // stack frame per filtration
  std::size_t pair_buffer_bytes = 0;   // unified-memory bytes per pair
  gpusim::KernelCost kernel_cost;
  gpusim::OccupancyResult occupancy;
};

/// Approximate stack frame of one filtration (bitmasks + shift scratch),
/// the "thread load" of Sec. 3.1.
std::size_t EstimateThreadLoad(int length, int e);

/// Operation/byte cost model of one kernel thread, used by the simulated
/// device's timing.  Constants are calibrated so the reproduced tables
/// match the paper's relative shapes (see EXPERIMENTS.md).
gpusim::KernelCost EstimateKernelCost(int length, int e, bool device_encodes);

/// Runs the system-configuration step against a device.
SystemPlan ConfigureSystem(const gpusim::Device& device,
                           const EngineConfig& config);

}  // namespace gkgpu

#endif  // GKGPU_CORE_CONFIG_HPP
