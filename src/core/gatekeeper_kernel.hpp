// The GateKeeper-GPU device kernels, written the way the CUDA __global__
// functions are: each simulated thread performs one complete filtration
// (Sec. 3.2: "each thread runs kernel function for a single filtration with
// the least dependency possible") using only fixed-size stack arrays and
// the unified-memory pointers passed as arguments.
//
// Three variants, matching the paper's configurations:
//   * HostEncodedPairsKernel   — host pre-encoded read/ref pairs,
//   * DeviceEncodedPairsKernel — raw characters, the kernel encodes,
//   * CandidatesKernel         — mrFAST integration: reads + candidate
//     reference indices; the thread extracts the reference segment from the
//     encoded genome in unified memory ("starting with extracting the
//     relevant reference segment based on the index", Sec. 3.5).
#ifndef GKGPU_CORE_GATEKEEPER_KERNEL_HPP
#define GKGPU_CORE_GATEKEEPER_KERNEL_HPP

#include <cstdint>
#include <string_view>

#include "encode/encoded.hpp"
#include "encode/revcomp.hpp"
#include "filters/gatekeeper_core.hpp"
#include "gpusim/device.hpp"

namespace gkgpu {

/// Result slot written back to unified memory: the filtering decision
/// ('1' accept / '0' reject) and the approximated edit distance (Sec. 3.5).
struct PairResult {
  std::uint8_t accept = 0;
  std::uint8_t bypassed = 0;  // undefined ('N') pair skipped filtration
  std::uint16_t edits = 0;
};

inline PairResult MakePairResult(const FilterResult& r, bool bypassed) {
  PairResult out;
  out.accept = r.accept ? 1 : 0;
  out.bypassed = bypassed ? 1 : 0;
  out.edits = static_cast<std::uint16_t>(
      r.estimated_edits < 0
          ? 0
          : (r.estimated_edits > 0xFFFF ? 0xFFFF : r.estimated_edits));
  return out;
}

struct HostEncodedPairsKernel {
  const Word* reads = nullptr;        // n * words_per_seq
  const Word* refs = nullptr;         // n * words_per_seq
  const std::uint8_t* bypass = nullptr;
  PairResult* results = nullptr;
  std::int64_t n = 0;
  int length = 0;
  int words_per_seq = 0;
  int e = 0;
  GateKeeperParams params;

  void operator()(const gpusim::ThreadCtx& ctx) const {
    const std::int64_t i = ctx.GlobalId();
    if (i >= n) return;
    if (bypass[i] != 0) {
      results[i] = MakePairResult({true, 0}, /*bypassed=*/true);
      return;
    }
    const std::size_t off =
        static_cast<std::size_t>(i) * static_cast<std::size_t>(words_per_seq);
    const FilterResult r =
        GateKeeperFiltration(reads + off, refs + off, length, e, params);
    results[i] = MakePairResult(r, /*bypassed=*/false);
  }
};

struct DeviceEncodedPairsKernel {
  const char* reads = nullptr;  // n * length raw characters
  const char* refs = nullptr;
  PairResult* results = nullptr;
  std::int64_t n = 0;
  int length = 0;
  int e = 0;
  GateKeeperParams params;

  void operator()(const gpusim::ThreadCtx& ctx) const {
    const std::int64_t i = ctx.GlobalId();
    if (i >= n) return;
    const std::size_t off =
        static_cast<std::size_t>(i) * static_cast<std::size_t>(length);
    Word read_enc[kMaxEncodedWords];
    Word ref_enc[kMaxEncodedWords];
    const bool read_n = EncodeSequence(
        std::string_view(reads + off, static_cast<std::size_t>(length)),
        read_enc);
    const bool ref_n = EncodeSequence(
        std::string_view(refs + off, static_cast<std::size_t>(length)),
        ref_enc);
    if (read_n || ref_n) {
      results[i] = MakePairResult({true, 0}, /*bypassed=*/true);
      return;
    }
    const FilterResult r =
        GateKeeperFiltration(read_enc, ref_enc, length, e, params);
    results[i] = MakePairResult(r, /*bypassed=*/false);
  }
};

/// One candidate mapping: which read, where its candidate reference
/// segment starts on the genome, and which strand the read matches on.
/// strand 1 means the *reverse complement* of the read is compared against
/// the forward reference window — the strand bit travels through the
/// engine's candidate slots so the kernel can reorient the encoded read in
/// registers and filtration still slices windows from the per-device
/// encoded reference with no per-candidate strings anywhere.
struct CandidatePair {
  std::uint32_t read_index = 0;
  std::uint8_t strand = 0;  // 0 = forward, 1 = reverse complement
  std::int64_t ref_pos = 0;
};

struct CandidatesKernel {
  const Word* reads = nullptr;  // encoded reads, words_per_seq stride
  const std::uint8_t* read_has_n = nullptr;
  const Word* ref_words = nullptr;   // encoded genome
  const Word* ref_n_mask = nullptr;  // genome 'N' positions
  std::int64_t ref_len = 0;
  const CandidatePair* candidates = nullptr;
  PairResult* results = nullptr;
  std::int64_t n = 0;
  int length = 0;
  int words_per_seq = 0;
  int e = 0;
  GateKeeperParams params;

  void operator()(const gpusim::ThreadCtx& ctx) const {
    const std::int64_t i = ctx.GlobalId();
    if (i >= n) return;
    const CandidatePair c = candidates[i];
    if (read_has_n[c.read_index] != 0 ||
        RangeHasUnknownRaw(ref_n_mask, ref_len, c.ref_pos, length)) {
      results[i] = MakePairResult({true, 0}, /*bypassed=*/true);
      return;
    }
    Word ref_enc[kMaxEncodedWords];
    ExtractSegmentRaw(ref_words, ref_len, c.ref_pos, length, ref_enc);
    const std::size_t off = static_cast<std::size_t>(c.read_index) *
                            static_cast<std::size_t>(words_per_seq);
    const Word* read_enc = reads + off;
    Word rc_enc[kMaxEncodedWords];
    if (c.strand != 0) {
      // Reverse-strand candidate: reorient the encoded read in thread-local
      // storage (registers on a real GPU) — the read buffer itself stays
      // forward, so one bus crossing serves both strands.
      ReverseComplementEncoded(read_enc, length, rc_enc);
      read_enc = rc_enc;
    }
    const FilterResult r =
        GateKeeperFiltration(read_enc, ref_enc, length, e, params);
    results[i] = MakePairResult(r, /*bypassed=*/false);
  }
};

}  // namespace gkgpu

#endif  // GKGPU_CORE_GATEKEEPER_KERNEL_HPP
