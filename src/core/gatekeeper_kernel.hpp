// The GateKeeper-GPU device kernel, written the way the CUDA __global__
// function is: a thin view over the PairBlock sitting in unified memory
// (filters/pair_block.hpp is the CPU mirror of that layout).  The block's
// shape selects the paper's three input configurations:
//   * encoded    — host pre-encoded read/ref pairs,
//   * raw        — raw characters, the kernel encodes ("encoding in
//                  device"),
//   * candidates — mrFAST integration: encoded reads + candidate reference
//     indices; the kernel extracts each reference segment from the encoded
//     genome in unified memory ("starting with extracting the relevant
//     reference segment based on the index", Sec. 3.5).
//
// Execution granularity: one simulated *block* runs its pair range through
// the batched filtration kernel (simd/gatekeeper_batch.hpp — uint64_t
// lanes, AVX2 behind runtime dispatch), which the first thread of the
// block drives; per-pair results are bit-identical to the per-thread
// formulation (asserted by the scalar-vs-SIMD equivalence tests), the
// parallel grain (one task per block on the device's worker pool) is
// unchanged, and the timing model still charges per-thread cost.
#ifndef GKGPU_CORE_GATEKEEPER_KERNEL_HPP
#define GKGPU_CORE_GATEKEEPER_KERNEL_HPP

#include <algorithm>
#include <cstdint>

#include "filters/gatekeeper_core.hpp"
#include "filters/pair_block.hpp"
#include "gpusim/device.hpp"
#include "simd/gatekeeper_batch.hpp"

namespace gkgpu {

struct PairBlockKernel {
  PairBlock block;
  PairResult* results = nullptr;
  int e = 0;
  GateKeeperParams params;

  void operator()(const gpusim::ThreadCtx& ctx) const {
    // Thread 0 of each simulated block filters the block's whole pair
    // range as one batch; its sibling threads contribute no separate work
    // (their per-pair cost is still accounted by the timing model).
    if (ctx.thread_idx != 0) return;
    const std::size_t begin = static_cast<std::size_t>(ctx.block_idx) *
                              static_cast<std::size_t>(ctx.block_dim);
    if (begin >= block.size) return;
    const std::size_t end =
        std::min(block.size,
                 begin + static_cast<std::size_t>(ctx.block_dim));
    simd::GateKeeperFilterRange(block, begin, end, e, params, results);
  }
};

}  // namespace gkgpu

#endif  // GKGPU_CORE_GATEKEEPER_KERNEL_HPP
