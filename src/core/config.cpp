#include "core/config.hpp"

#include <algorithm>
#include <cassert>

namespace gkgpu {

namespace {
// Calibration constants for the kernel cost model (simple-ALU ops).  The
// bit-parallel core touches every encoded word a handful of times per mask
// and keeps its masks in thread-local memory, which on real hardware is
// L1/L2-cached local memory traffic — modelled as extra bytes per thread.
constexpr double kOpsBase = 60.0;
constexpr double kOpsPerEncWordPerMask = 14.0;
constexpr double kOpsPerMaskWordPerMask = 18.0;
constexpr double kOpsPerBaseEncode = 6.0;
constexpr double kLocalBytesPerWordPerMask = 12.0;
constexpr double kLocalBytesPerBaseEncode = 8.0;
}  // namespace

std::size_t EstimateThreadLoad(int length, int e) {
  const std::size_t enc = static_cast<std::size_t>(EncodedWords(length));
  const std::size_t msk = static_cast<std::size_t>(MaskWords(length));
  // final mask + working mask + shifted read + diff scratch + locals.
  (void)e;  // masks are AND-accumulated, so the frame is e-independent
  return (2 * msk + 2 * enc) * sizeof(Word) + 64;
}

gpusim::KernelCost EstimateKernelCost(int length, int e,
                                      bool device_encodes) {
  const double enc_words = EncodedWords(length);
  const double mask_words = MaskWords(length);
  const double masks = 2.0 * e + 1.0;
  gpusim::KernelCost cost;
  cost.ops_per_thread =
      kOpsBase + masks * (kOpsPerEncWordPerMask * enc_words +
                          kOpsPerMaskWordPerMask * mask_words);
  // PCIe-visible bytes: encoded read + encoded/extracted ref + result +
  // index; raw characters replace the encoded read when the device encodes.
  double bytes = 2.0 * enc_words * sizeof(Word) + 12.0;
  // Local-memory (stack) traffic served by the cache hierarchy.
  double local_bytes =
      masks * (enc_words + mask_words) * kLocalBytesPerWordPerMask;
  if (device_encodes) {
    cost.ops_per_thread += kOpsPerBaseEncode * 2.0 * length;
    bytes += 2.0 * length;  // the raw pair crosses the bus
    local_bytes += kLocalBytesPerBaseEncode * 2.0 * length;
  }
  cost.bytes_per_thread = bytes + local_bytes;
  cost.regs_per_thread = 48;
  cost.shared_mem_per_block = 0;
  return cost;
}

SystemPlan ConfigureSystem(const gpusim::Device& device,
                           const EngineConfig& config) {
  assert(config.read_length > 0 && config.read_length <= kMaxReadLength);
  assert(config.error_threshold >= 0 &&
         config.error_threshold <= kMaxErrorThreshold);
  assert(config.error_threshold < config.read_length);

  SystemPlan plan;
  plan.threads_per_block = std::min(config.threads_per_block,
                                    device.props().max_threads_per_block);
  plan.thread_load_bytes =
      EstimateThreadLoad(config.read_length, config.error_threshold);
  plan.kernel_cost =
      EstimateKernelCost(config.read_length, config.error_threshold,
                         config.encoding == EncodingActor::kDevice);
  plan.occupancy = device.Occupancy(plan.threads_per_block, plan.kernel_cost);

  // Unified-memory footprint of one pair: encoded read + encoded reference
  // segment (or the raw characters when the device encodes) + result +
  // candidate index.
  const std::size_t enc_bytes =
      static_cast<std::size_t>(EncodedWords(config.read_length)) * sizeof(Word);
  const std::size_t seq_bytes =
      config.encoding == EncodingActor::kDevice
          ? static_cast<std::size_t>(config.read_length)
          : enc_bytes;
  plan.pair_buffer_bytes = 2 * seq_bytes + sizeof(std::uint32_t) +
                           sizeof(std::int64_t) + 4 /* result */;

  const double budget =
      static_cast<double>(device.FreeGlobalMem()) * config.mem_safety_factor;
  std::size_t pairs = static_cast<std::size_t>(
      budget / static_cast<double>(plan.pair_buffer_bytes));
  // Round down to whole blocks and keep the grid within a sane bound.
  const std::size_t per_block =
      static_cast<std::size_t>(plan.threads_per_block);
  pairs = std::max(per_block, pairs - pairs % per_block);
  constexpr std::size_t kMaxPairsPerLaunch = std::size_t{1} << 26;  // 67M
  plan.pairs_per_batch = std::min(pairs, kMaxPairsPerLaunch);
  if (config.max_pairs_per_batch > 0) {
    plan.pairs_per_batch =
        std::min(plan.pairs_per_batch, config.max_pairs_per_batch);
  }
  return plan;
}

}  // namespace gkgpu
