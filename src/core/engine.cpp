#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <thread>

#include "obs/names.hpp"
#include "util/fingerprint.hpp"
#include "util/timer.hpp"

namespace gkgpu {

using gpusim::Device;
using gpusim::LaunchConfig;
using gpusim::UnifiedBuffer;

namespace {

// Folds one device-kernel batch into the filter funnel.  The simulated
// GPU always runs the GateKeeper kernel, so the filter label is fixed
// and the tier distinguishes this path from the host SIMD tiers.
void RecordEngineFunnel(std::uint64_t pairs, std::uint64_t accepted,
                        std::uint64_t bypassed, std::uint64_t earlyouted = 0) {
  if (!obs::Enabled() || pairs == 0) return;
  obs::FilterInput().Inc(pairs);
  obs::FilterAccepts("GateKeeper-GPU", "gpusim").Inc(accepted);
  obs::FilterRejects("GateKeeper-GPU", "gpusim")
      .Inc(pairs - accepted - earlyouted);
  if (bypassed > 0) {
    obs::FilterBypasses("GateKeeper-GPU", "gpusim").Inc(bypassed);
  }
  if (earlyouted > 0) {
    obs::JointEarlyOutLanes("GateKeeper-GPU", "gpusim").Inc(earlyouted);
  }
}

}  // namespace

/// Per-device unified-memory working set (Sec. 3.2 resource allocation).
struct GateKeeperGpuEngine::DeviceBuffers {
  std::size_t pair_capacity = 0;
  std::size_t read_capacity = 0;

  // Pair mode, host-encoded.
  std::unique_ptr<UnifiedBuffer> reads_enc;
  std::unique_ptr<UnifiedBuffer> refs_enc;
  std::unique_ptr<UnifiedBuffer> bypass;
  // Pair mode, device-encoded (raw characters cross the bus instead).
  std::unique_ptr<UnifiedBuffer> raw_reads;
  std::unique_ptr<UnifiedBuffer> raw_refs;
  // Candidate mode.
  std::unique_ptr<UnifiedBuffer> cand;
  // Shared.
  std::unique_ptr<UnifiedBuffer> results;
};

GateKeeperGpuEngine::GateKeeperGpuEngine(EngineConfig config,
                                         std::vector<Device*> devices)
    : config_(config), devices_(std::move(devices)) {
  assert(!devices_.empty());
  plan_ = ConfigureSystem(*devices_.front(), config_);
  buffers_.resize(devices_.size());
  for (auto& b : buffers_) b = std::make_unique<DeviceBuffers>();
}

GateKeeperGpuEngine::~GateKeeperGpuEngine() = default;

namespace {

struct TransferLedger {
  std::uint64_t h2d = 0;
  std::uint64_t d2h = 0;
  std::uint64_t faults = 0;

  static TransferLedger Snapshot(const std::vector<Device*>& devices) {
    TransferLedger t;
    for (const Device* d : devices) {
      t.h2d += d->stats().h2d_bytes;
      t.d2h += d->stats().d2h_bytes;
      t.faults += d->stats().page_faults;
    }
    return t;
  }
};

/// Prefetches the given input buffers ahead of a kernel, one per stream as
/// the paper does, so the link time of a round is the max, not the sum.
double PrefetchAll(std::initializer_list<UnifiedBuffer*> buffers) {
  double max_s = 0.0;
  for (UnifiedBuffer* b : buffers) {
    if (b == nullptr) continue;
    b->Advise(gpusim::MemAdvice::kPreferredLocationDevice);
    max_s = std::max(max_s, b->PrefetchToDevice());
  }
  return max_s;
}

double FaultAll(std::initializer_list<UnifiedBuffer*> buffers) {
  double sum_s = 0.0;
  for (UnifiedBuffer* b : buffers) {
    if (b != nullptr) sum_s += b->FaultToDevice();
  }
  return sum_s;
}

/// Runs fn(di) for every device concurrently — one host thread per device,
/// the way one CPU thread feeds each GPU — and returns the slowest
/// duration (the wall-clock cost of the concurrent phase).
double ConcurrentPerDevice(std::size_t ndev,
                           const std::function<void(std::size_t)>& fn) {
  std::vector<double> seconds(ndev, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(ndev);
  for (std::size_t di = 0; di < ndev; ++di) {
    threads.emplace_back([&, di] {
      WallTimer t;
      fn(di);
      seconds[di] = t.Seconds();
    });
  }
  for (auto& t : threads) t.join();
  double max_s = 0.0;
  for (const double s : seconds) max_s = std::max(max_s, s);
  return max_s;
}

}  // namespace

void GateKeeperGpuEngine::AllocatePairBuffers(Device* dev, DeviceBuffers* b,
                                              std::size_t capacity) {
  const std::size_t words =
      static_cast<std::size_t>(EncodedWords(config_.read_length));
  const std::size_t len = static_cast<std::size_t>(config_.read_length);
  b->pair_capacity = capacity;
  if (config_.encoding == EncodingActor::kHost) {
    b->reads_enc = dev->AllocateUnified(capacity * words * sizeof(Word));
    b->refs_enc = dev->AllocateUnified(capacity * words * sizeof(Word));
    b->bypass = dev->AllocateUnified(capacity);
    b->raw_reads.reset();
    b->raw_refs.reset();
  } else {
    b->raw_reads = dev->AllocateUnified(capacity * len);
    b->raw_refs = dev->AllocateUnified(capacity * len);
    b->reads_enc.reset();
    b->refs_enc.reset();
    b->bypass.reset();
  }
  b->results = dev->AllocateUnified(capacity * sizeof(PairResult));
}

void GateKeeperGpuEngine::EnsurePairBuffers(std::size_t capacity) {
  for (std::size_t di = 0; di < devices_.size(); ++di) {
    DeviceBuffers& b = *buffers_[di];
    if (b.pair_capacity >= capacity && b.results != nullptr) continue;
    AllocatePairBuffers(devices_[di], &b, capacity);
  }
}

/// Host preprocessing of `count` pairs into a buffer set: the encode/copy
/// work one CPU thread performs per device slice, shared by the blocking
/// FilterPairs rounds and the streaming slot path.
void GateKeeperGpuEngine::EncodePairsInto(DeviceBuffers* b,
                                          const std::string* reads,
                                          const std::string* refs,
                                          std::size_t count) {
  const std::size_t words =
      static_cast<std::size_t>(EncodedWords(config_.read_length));
  const std::size_t len = static_cast<std::size_t>(config_.read_length);
  if (config_.encoding == EncodingActor::kHost) {
    Word* renc = b->reads_enc->as<Word>();
    Word* genc = b->refs_enc->as<Word>();
    std::uint8_t* byp = b->bypass->as<std::uint8_t>();
    for (std::size_t i = 0; i < count; ++i) {
      const bool rn = EncodeSequence(reads[i], renc + i * words);
      const bool gn = EncodeSequence(refs[i], genc + i * words);
      byp[i] = (rn || gn) ? 1 : 0;
    }
    b->reads_enc->MarkHostResident();
    b->refs_enc->MarkHostResident();
    b->bypass->MarkHostResident();
  } else {
    char* rr = b->raw_reads->as<char>();
    char* gg = b->raw_refs->as<char>();
    for (std::size_t i = 0; i < count; ++i) {
      std::memcpy(rr + i * len, reads[i].data(), len);
      std::memcpy(gg + i * len, refs[i].data(), len);
    }
    b->raw_reads->MarkHostResident();
    b->raw_refs->MarkHostResident();
  }
  b->results->MarkHostResident();
}

/// Device stage for one encoded buffer set: advice + prefetch (or demand
/// migration), kernel launch, result migration and read-back into `out`.
/// Pass out == nullptr to defer the host-side copy (FilterPairs reads all
/// devices back concurrently afterwards; counts are then 0 here).
StreamBatchStats GateKeeperGpuEngine::RunPairsKernel(Device* dev,
                                                     DeviceBuffers* b,
                                                     std::size_t count,
                                                     PairResult* out) {
  StreamBatchStats st;
  if (count == 0) return st;
  const std::size_t words =
      static_cast<std::size_t>(EncodedWords(config_.read_length));
  double prefetch_s = 0.0;
  double fault_s = 0.0;
  if (dev->props().supports_prefetch()) {
    prefetch_s = config_.encoding == EncodingActor::kHost
                     ? PrefetchAll({b->reads_enc.get(), b->refs_enc.get(),
                                    b->bypass.get(), b->results.get()})
                     : PrefetchAll({b->raw_reads.get(), b->raw_refs.get(),
                                    b->results.get()});
  } else {
    fault_s = config_.encoding == EncodingActor::kHost
                  ? FaultAll({b->reads_enc.get(), b->refs_enc.get(),
                              b->bypass.get(), b->results.get()})
                  : FaultAll({b->raw_reads.get(), b->raw_refs.get(),
                              b->results.get()});
  }

  const LaunchConfig cfg{
      static_cast<std::int64_t>((count + plan_.threads_per_block - 1) /
                                plan_.threads_per_block),
      plan_.threads_per_block};
  // The kernel is a thin view over the slot's unified-memory PairBlock;
  // the block's shape (encoded vs raw) selects the encoding actor.
  PairBlockKernel kernel;
  kernel.block.size = count;
  kernel.block.length = config_.read_length;
  kernel.block.words_per_seq = static_cast<int>(words);
  if (config_.encoding == EncodingActor::kHost) {
    kernel.block.reads_enc = b->reads_enc->as<Word>();
    kernel.block.refs_enc = b->refs_enc->as<Word>();
    kernel.block.bypass = b->bypass->as<std::uint8_t>();
  } else {
    kernel.block.raw_reads = b->raw_reads->as<char>();
    kernel.block.raw_refs = b->raw_refs->as<char>();
  }
  kernel.results = b->results->as<PairResult>();
  kernel.e = config_.error_threshold;
  kernel.params = config_.algorithm;
  st.kernel_seconds = dev->Launch(cfg, plan_.kernel_cost, fault_s, kernel);
  b->results->MarkDeviceResident();
  const double d2h_s = b->results->FaultToHost();
  st.transfer_seconds = prefetch_s + d2h_s;
  if (out != nullptr) {
    WallTimer readback;
    const PairResult* res = b->results->as<PairResult>();
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = res[i];
      st.accepted += res[i].accept;
      st.bypassed += res[i].bypassed;
    }
    st.readback_seconds = readback.Seconds();
    RecordEngineFunnel(count, st.accepted, st.bypassed);
  }
  return st;
}

void GateKeeperGpuEngine::AllocateCandidateBuffers(Device* dev,
                                                   DeviceBuffers* b,
                                                   std::size_t capacity,
                                                   std::size_t read_capacity) {
  const std::size_t words =
      static_cast<std::size_t>(EncodedWords(config_.read_length));
  b->pair_capacity = capacity;
  b->read_capacity = read_capacity;
  b->reads_enc = dev->AllocateUnified(read_capacity * words * sizeof(Word));
  b->bypass = dev->AllocateUnified(read_capacity);
  b->cand = dev->AllocateUnified(capacity * sizeof(CandidatePair));
  b->results = dev->AllocateUnified(capacity * sizeof(PairResult));
}

/// Host preprocessing of one candidate batch into a buffer set: the batch's
/// distinct reads are 2-bit encoded once each (a read crosses the bus once
/// for all of its candidate locations) and the candidate table is staged.
void GateKeeperGpuEngine::EncodeCandidatesInto(DeviceBuffers* b,
                                               const std::string* reads,
                                               std::size_t read_count,
                                               const CandidatePair* candidates,
                                               std::size_t count) {
  const std::size_t words =
      static_cast<std::size_t>(EncodedWords(config_.read_length));
  Word* renc = b->reads_enc->as<Word>();
  std::uint8_t* byp = b->bypass->as<std::uint8_t>();
  for (std::size_t i = 0; i < read_count; ++i) {
    byp[i] = EncodeSequence(reads[i], renc + i * words) ? 1 : 0;
  }
  std::memcpy(b->cand->data(), candidates, count * sizeof(CandidatePair));
  b->reads_enc->MarkHostResident();
  b->bypass->MarkHostResident();
  b->cand->MarkHostResident();
  b->results->MarkHostResident();
}

/// Device stage for one encoded candidate buffer set: the kernel extracts
/// each candidate's reference window from the device-resident encoded
/// genome (ref_buffers_), so only reads, the candidate table and results
/// cross the bus per batch.
StreamBatchStats GateKeeperGpuEngine::RunCandidatesKernel(std::size_t di,
                                                          DeviceBuffers* b,
                                                          std::size_t begin,
                                                          std::size_t count,
                                                          PairResult* out) {
  StreamBatchStats st;
  if (count == 0) return st;
  assert(HasReference());
  Device* dev = devices_[di];
  const std::size_t words =
      static_cast<std::size_t>(EncodedWords(config_.read_length));

  double prefetch_s = 0.0;
  double fault_s = 0.0;
  if (dev->props().supports_prefetch()) {
    prefetch_s = PrefetchAll(
        {b->reads_enc.get(), b->bypass.get(), b->cand.get(), b->results.get()});
  } else {
    fault_s = FaultAll({b->reads_enc.get(), b->bypass.get(), b->cand.get(),
                        b->results.get(), ref_buffers_[di].get(),
                        ref_nmask_buffers_[di].get()});
  }

  const LaunchConfig cfg{
      static_cast<std::int64_t>((count + plan_.threads_per_block - 1) /
                                plan_.threads_per_block),
      plan_.threads_per_block};
  PairBlockKernel kernel;
  kernel.block.size = count;
  kernel.block.length = config_.read_length;
  kernel.block.words_per_seq = static_cast<int>(words);
  kernel.block.reads_enc = b->reads_enc->as<Word>();
  kernel.block.bypass = b->bypass->as<std::uint8_t>();
  kernel.block.candidates = b->cand->as<CandidatePair>() + begin;
  kernel.block.ref_words = ref_buffers_[di]->as<Word>();
  kernel.block.ref_n_mask = ref_nmask_buffers_[di]->as<Word>();
  kernel.block.ref_len = ref_length_;
  kernel.results = b->results->as<PairResult>() + begin;
  kernel.e = config_.error_threshold;
  kernel.params = config_.algorithm;
  st.kernel_seconds = dev->Launch(cfg, plan_.kernel_cost, fault_s, kernel);
  b->results->MarkDeviceResident();
  const double d2h_s = b->results->FaultToHost();
  st.transfer_seconds = prefetch_s + d2h_s;
  if (out != nullptr) {
    WallTimer readback;
    const PairResult* res = b->results->as<PairResult>() + begin;
    for (std::size_t i = 0; i < count; ++i) {
      const PairResult r = res[i];
      out[i] = r;
      st.accepted += r.accept;
      if (r.bypassed == 1) {
        ++st.bypassed;
      } else if (r.bypassed == 2) {
        ++st.earlyouted;
      }
    }
    st.readback_seconds = readback.Seconds();
    RecordEngineFunnel(count, st.accepted, st.bypassed, st.earlyouted);
  }
  return st;
}

std::size_t GateKeeperGpuEngine::PrepareCandidateStreaming(
    std::size_t batch_capacity, std::size_t read_capacity,
    int slots_per_device) {
  assert(slots_per_device >= 1);
  const std::size_t capacity =
      std::min(std::max<std::size_t>(1, batch_capacity),
               plan_.pairs_per_batch);
  const std::size_t rcap =
      std::min(std::max<std::size_t>(1, read_capacity), capacity);
  if (cand_streaming_slots_ >= slots_per_device &&
      cand_streaming_capacity_ >= capacity &&
      cand_streaming_read_capacity_ >= rcap) {
    return cand_streaming_capacity_;
  }
  cand_streaming_slots_ = slots_per_device;
  cand_streaming_capacity_ = capacity;
  cand_streaming_read_capacity_ = rcap;
  cand_stream_buffers_.clear();
  cand_stream_buffers_.resize(devices_.size() *
                              static_cast<std::size_t>(slots_per_device));
  for (std::size_t di = 0; di < devices_.size(); ++di) {
    for (int s = 0; s < slots_per_device; ++s) {
      auto b = std::make_unique<DeviceBuffers>();
      AllocateCandidateBuffers(devices_[di], b.get(), capacity, rcap);
      cand_stream_buffers_[di * slots_per_device + s] = std::move(b);
    }
  }
  return cand_streaming_capacity_;
}

double GateKeeperGpuEngine::EncodeCandidatesSlot(
    int device, int slot, const std::string* reads, std::size_t read_count,
    const CandidatePair* candidates, std::size_t count) {
  assert(device >= 0 && device < device_count());
  assert(slot >= 0 && slot < cand_streaming_slots_);
  assert(count <= cand_streaming_capacity_);
  assert(read_count <= cand_streaming_read_capacity_);
  DeviceBuffers* b =
      cand_stream_buffers_[static_cast<std::size_t>(device) *
                               cand_streaming_slots_ +
                           slot]
          .get();
  WallTimer t;
  EncodeCandidatesInto(b, reads, read_count, candidates, count);
  return t.Seconds();
}

StreamBatchStats GateKeeperGpuEngine::FilterCandidatesSlot(int device,
                                                           int slot,
                                                           std::size_t count,
                                                           PairResult* out) {
  assert(device >= 0 && device < device_count());
  assert(slot >= 0 && slot < cand_streaming_slots_);
  DeviceBuffers* b =
      cand_stream_buffers_[static_cast<std::size_t>(device) *
                               cand_streaming_slots_ +
                           slot]
          .get();
  return RunCandidatesKernel(static_cast<std::size_t>(device), b, 0, count,
                             out);
}

StreamBatchStats GateKeeperGpuEngine::FilterCandidatesSlotJoint(
    int device, int slot, std::size_t count, const JointFilterPlan& plan,
    PairResult* out) {
  assert(device >= 0 && device < device_count());
  assert(slot >= 0 && slot < cand_streaming_slots_);
  assert(out != nullptr);
  DeviceBuffers* b =
      cand_stream_buffers_[static_cast<std::size_t>(device) *
                               cand_streaming_slots_ +
                           slot]
          .get();
  const std::size_t di = static_cast<std::size_t>(device);
  if (plan.empty() || plan.phase_a == 0 || plan.phase_a >= count ||
      plan.phase_a + plan.phase_b() != count) {
    return RunCandidatesKernel(di, b, 0, count, out);
  }
  const std::size_t a = plan.phase_a;
  StreamBatchStats st = RunCandidatesKernel(di, b, 0, a, out);
  // Host-side kill pass between the two deterministic kernel phases: a
  // phase-B lane dies when every partner lane of the other mate rejected —
  // the lossless-filter contract then rules out any concordant combination
  // this lane could still form.
  CandidatePair* cand = b->cand->as<CandidatePair>();
  for (std::size_t j = 0; j < plan.phase_b(); ++j) {
    const std::uint32_t lo = plan.partner_off[j];
    const std::uint32_t hi = plan.partner_off[j + 1];
    if (lo == hi) continue;
    bool all_rejected = true;
    for (std::uint32_t k = lo; k < hi && all_rejected; ++k) {
      const PairResult r = out[plan.partner_idx[k]];
      all_rejected = r.accept == 0 && r.bypassed == 0;
    }
    if (all_rejected) cand[a + j].flags |= kCandidateLaneKilled;
  }
  b->cand->MarkHostResident();
  const StreamBatchStats tail =
      RunCandidatesKernel(di, b, a, count - a, out + a);
  st.kernel_seconds += tail.kernel_seconds;
  st.transfer_seconds += tail.transfer_seconds;
  st.readback_seconds += tail.readback_seconds;
  st.accepted += tail.accepted;
  st.bypassed += tail.bypassed;
  st.earlyouted += tail.earlyouted;
  return st;
}

std::size_t GateKeeperGpuEngine::PrepareStreaming(std::size_t batch_capacity,
                                                  int slots_per_device) {
  assert(slots_per_device >= 1);
  const std::size_t capacity =
      std::min(batch_capacity, plan_.pairs_per_batch);
  if (streaming_slots_ >= slots_per_device &&
      streaming_capacity_ >= capacity) {
    return streaming_capacity_;
  }
  streaming_slots_ = slots_per_device;
  streaming_capacity_ = capacity;
  stream_buffers_.clear();
  stream_buffers_.resize(devices_.size() *
                         static_cast<std::size_t>(slots_per_device));
  for (std::size_t di = 0; di < devices_.size(); ++di) {
    for (int s = 0; s < slots_per_device; ++s) {
      auto b = std::make_unique<DeviceBuffers>();
      AllocatePairBuffers(devices_[di], b.get(), capacity);
      stream_buffers_[di * slots_per_device + s] = std::move(b);
    }
  }
  return streaming_capacity_;
}

double GateKeeperGpuEngine::EncodePairsSlot(int device, int slot,
                                            const std::string* reads,
                                            const std::string* refs,
                                            std::size_t count) {
  assert(device >= 0 && device < device_count());
  assert(slot >= 0 && slot < streaming_slots_);
  assert(count <= streaming_capacity_);
  DeviceBuffers* b =
      stream_buffers_[static_cast<std::size_t>(device) * streaming_slots_ +
                      slot]
          .get();
  WallTimer t;
  EncodePairsInto(b, reads, refs, count);
  return t.Seconds();
}

StreamBatchStats GateKeeperGpuEngine::FilterPairsSlot(int device, int slot,
                                                      std::size_t count,
                                                      PairResult* out) {
  assert(device >= 0 && device < device_count());
  assert(slot >= 0 && slot < streaming_slots_);
  DeviceBuffers* b =
      stream_buffers_[static_cast<std::size_t>(device) * streaming_slots_ +
                      slot]
          .get();
  return RunPairsKernel(devices_[static_cast<std::size_t>(device)], b, count,
                        out);
}

FilterRunStats GateKeeperGpuEngine::FilterPairs(
    const std::vector<std::string>& reads, const std::vector<std::string>& refs,
    std::vector<PairResult>* results) {
  assert(reads.size() == refs.size());
  const std::size_t n = reads.size();
  results->assign(n, PairResult{});
  FilterRunStats stats;
  stats.pairs = n;
  if (n == 0) return stats;

  const std::size_t ndev = devices_.size();
  const std::size_t per_device_cap = plan_.pairs_per_batch;
  const std::size_t even_split = (n + ndev - 1) / ndev;
  const std::size_t slice_cap = std::min(per_device_cap, even_split);
  EnsurePairBuffers(slice_cap);

  const TransferLedger before = TransferLedger::Snapshot(devices_);
  double device_pipeline_seconds = 0.0;

  struct Slice {
    std::size_t begin = 0;
    std::size_t count = 0;
  };
  std::size_t offset = 0;
  while (offset < n) {
    // Equal batches per device (Sec. 3.1): carve this round's slices.
    std::vector<Slice> slices(ndev);
    for (std::size_t di = 0; di < ndev && offset < n; ++di) {
      slices[di] = {offset, std::min(slice_cap, n - offset)};
      offset += slices[di].count;
    }

    // --- Host preprocessing: one CPU thread feeds each device, serial
    // within a slice (the paper's encode/copy cost is host-sequential per
    // device, which is exactly why the encoding actor matters). ---
    const double prep_s = ConcurrentPerDevice(ndev, [&](std::size_t di) {
      const Slice s = slices[di];
      if (s.count == 0) return;
      EncodePairsInto(buffers_[di].get(), reads.data() + s.begin,
                      refs.data() + s.begin, s.count);
    });
    if (config_.encoding == EncodingActor::kHost) {
      stats.host_encode_seconds += prep_s;
    } else {
      stats.host_copy_seconds += prep_s;
    }

    // --- Per device: advice + prefetch (or demand migration), kernel
    // launch, result migration.  Kernels execute sequentially here (they
    // share the physical host), but the simulated timeline treats devices
    // as parallel: the round's kernel time is the per-device maximum. ---
    double round_kt = 0.0;
    double round_transfer = 0.0;
    for (std::size_t di = 0; di < ndev; ++di) {
      const Slice s = slices[di];
      if (s.count == 0) continue;
      const StreamBatchStats st = RunPairsKernel(
          devices_[di], buffers_[di].get(), s.count, /*out=*/nullptr);
      round_kt = std::max(round_kt, st.kernel_seconds);
      round_transfer = std::max(round_transfer, st.transfer_seconds);
    }

    // --- Results read-out: concurrent per device, like the prep. ---
    std::vector<std::uint64_t> acc(ndev, 0);
    std::vector<std::uint64_t> byp_count(ndev, 0);
    const double copy_s = ConcurrentPerDevice(ndev, [&](std::size_t di) {
      const Slice s = slices[di];
      if (s.count == 0) return;
      const PairResult* res = buffers_[di]->results->as<PairResult>();
      for (std::size_t i = 0; i < s.count; ++i) {
        const PairResult r = res[i];
        (*results)[s.begin + i] = r;
        acc[di] += r.accept;
        byp_count[di] += r.bypassed;
      }
    });
    stats.host_copy_seconds += copy_s;
    for (std::size_t di = 0; di < ndev; ++di) {
      stats.accepted += acc[di];
      stats.rejected += slices[di].count - acc[di];
      stats.bypassed += byp_count[di];
      RecordEngineFunnel(slices[di].count, acc[di], byp_count[di]);
    }

    stats.kernel_seconds += round_kt;
    stats.transfer_seconds += round_transfer;
    // Prefetch-capable devices overlap the next round's transfers with the
    // current kernel; without prefetch the migration stalls already sit
    // inside the kernel time.
    device_pipeline_seconds +=
        devices_.front()->props().supports_prefetch()
            ? std::max(round_kt, round_transfer)
            : round_kt + round_transfer;
    ++stats.batches;
  }

  const TransferLedger after = TransferLedger::Snapshot(devices_);
  stats.h2d_bytes = after.h2d - before.h2d;
  stats.d2h_bytes = after.d2h - before.d2h;
  stats.page_faults = after.faults - before.faults;
  stats.filter_seconds = stats.host_encode_seconds + stats.host_copy_seconds +
                         device_pipeline_seconds;
  return stats;
}

void GateKeeperGpuEngine::LoadReference(std::string_view genome) {
  // Multithreaded host encoding of the reference (Sec. 3.5, Box R of the
  // workflow figure), then one resident copy per device.
  const ReferenceEncoding enc =
      EncodeReference(genome, &devices_.front()->pool());
  LoadReference(enc.view(), FingerprintText(genome));
}

void GateKeeperGpuEngine::LoadReference(const ReferenceEncodingView& enc,
                                        std::uint64_t fingerprint) {
  ref_length_ = enc.length;
  ref_fingerprint_ = fingerprint;
  ref_buffers_.clear();
  ref_nmask_buffers_.clear();
  for (Device* dev : devices_) {
    auto words = dev->AllocateUnified(enc.words.size() * sizeof(Word));
    auto nmask = dev->AllocateUnified(enc.n_mask.size() * sizeof(Word));
    std::memcpy(words->data(), enc.words.data(), words->bytes());
    std::memcpy(nmask->data(), enc.n_mask.data(), nmask->bytes());
    words->Advise(gpusim::MemAdvice::kPreferredLocationDevice);
    nmask->Advise(gpusim::MemAdvice::kPreferredLocationDevice);
    if (dev->props().supports_prefetch()) {
      words->PrefetchToDevice();
      nmask->PrefetchToDevice();
    }
    ref_buffers_.push_back(std::move(words));
    ref_nmask_buffers_.push_back(std::move(nmask));
  }
}

void GateKeeperGpuEngine::EnsureCandidateBuffers(std::size_t capacity,
                                                 std::size_t read_capacity) {
  const std::size_t words =
      static_cast<std::size_t>(EncodedWords(config_.read_length));
  for (std::size_t di = 0; di < devices_.size(); ++di) {
    DeviceBuffers& b = *buffers_[di];
    Device* dev = devices_[di];
    if (b.read_capacity < read_capacity || b.reads_enc == nullptr) {
      b.read_capacity = read_capacity;
      b.reads_enc = dev->AllocateUnified(read_capacity * words * sizeof(Word));
      b.bypass = dev->AllocateUnified(read_capacity);
    }
    if (b.pair_capacity < capacity || b.cand == nullptr) {
      b.pair_capacity = capacity;
      b.cand = dev->AllocateUnified(capacity * sizeof(CandidatePair));
      b.results = dev->AllocateUnified(capacity * sizeof(PairResult));
    }
  }
}

FilterRunStats GateKeeperGpuEngine::FilterCandidates(
    const std::vector<std::string>& reads,
    const std::vector<CandidatePair>& candidates,
    std::vector<PairResult>* results) {
  std::vector<std::string_view> views(reads.begin(), reads.end());
  return FilterCandidatesImpl(views.data(), views.size(), candidates, nullptr,
                              results);
}

FilterRunStats GateKeeperGpuEngine::FilterCandidates(
    const std::vector<std::string_view>& reads,
    const std::vector<CandidatePair>& candidates,
    std::vector<PairResult>* results) {
  return FilterCandidatesImpl(reads.data(), reads.size(), candidates, nullptr,
                              results);
}

FilterRunStats GateKeeperGpuEngine::FilterCandidates(
    const std::vector<std::string_view>& reads,
    const std::vector<CandidatePair>& candidates,
    const JointFilterPlan& plan, std::vector<PairResult>* results) {
  return FilterCandidatesImpl(reads.data(), reads.size(), candidates, &plan,
                              results);
}

FilterRunStats GateKeeperGpuEngine::FilterCandidatesImpl(
    const std::string_view* reads, std::size_t read_count,
    const std::vector<CandidatePair>& candidates,
    const JointFilterPlan* plan, std::vector<PairResult>* results) {
  assert(HasReference());
  const std::size_t n = candidates.size();
  results->assign(n, PairResult{});
  FilterRunStats stats;
  stats.pairs = n;
  if (n == 0) return stats;

  const std::size_t ndev = devices_.size();
  const std::size_t even_split = (n + ndev - 1) / ndev;
  const std::size_t slice_cap = std::min(plan_.pairs_per_batch, even_split);
  EnsureCandidateBuffers(slice_cap, read_count);

  const TransferLedger before = TransferLedger::Snapshot(devices_);
  const std::size_t words =
      static_cast<std::size_t>(EncodedWords(config_.read_length));
  double device_pipeline_seconds = 0.0;

  // Encode the read buffer once per device (a read is copied to the GPU
  // once for all of its candidate segments); one host thread per device.
  stats.host_encode_seconds += ConcurrentPerDevice(ndev, [&](std::size_t di) {
    DeviceBuffers& b = *buffers_[di];
    Word* renc = b.reads_enc->as<Word>();
    std::uint8_t* byp = b.bypass->as<std::uint8_t>();
    for (std::size_t i = 0; i < read_count; ++i) {
      byp[i] = EncodeSequence(reads[i], renc + i * words) ? 1 : 0;
    }
    b.reads_enc->MarkHostResident();
    b.bypass->MarkHostResident();
  });

  struct Slice {
    std::size_t begin = 0;
    std::size_t count = 0;
  };
  // Runs the usual equal-slices-per-device kernel rounds over candidate
  // lanes [base, base + range_n) of the (possibly flag-stamped) table
  // `cand`, writing (*results)[base + i] — shared by the independent path
  // (one call over everything) and the joint path's two phases.
  const auto run_range = [&](const CandidatePair* cand, std::size_t base,
                             std::size_t range_n) {
    std::size_t offset = 0;
    while (offset < range_n) {
      std::vector<Slice> slices(ndev);
      for (std::size_t di = 0; di < ndev && offset < range_n; ++di) {
        slices[di] = {offset, std::min(slice_cap, range_n - offset)};
        offset += slices[di].count;
      }

      stats.host_copy_seconds +=
          ConcurrentPerDevice(ndev, [&](std::size_t di) {
            const Slice s = slices[di];
            if (s.count == 0) return;
            DeviceBuffers& b = *buffers_[di];
            std::memcpy(b.cand->data(), cand + s.begin,
                        s.count * sizeof(CandidatePair));
            b.cand->MarkHostResident();
            b.results->MarkHostResident();
          });

      double round_kt = 0.0;
      double round_transfer = 0.0;
      for (std::size_t di = 0; di < ndev; ++di) {
        const Slice s = slices[di];
        if (s.count == 0) continue;
        const StreamBatchStats st = RunCandidatesKernel(
            di, buffers_[di].get(), 0, s.count, /*out=*/nullptr);
        round_kt = std::max(round_kt, st.kernel_seconds);
        round_transfer = std::max(round_transfer, st.transfer_seconds);
      }

      std::vector<std::uint64_t> acc(ndev, 0);
      std::vector<std::uint64_t> byp_count(ndev, 0);
      std::vector<std::uint64_t> eo_count(ndev, 0);
      stats.host_copy_seconds +=
          ConcurrentPerDevice(ndev, [&](std::size_t di) {
            const Slice s = slices[di];
            if (s.count == 0) return;
            const PairResult* res = buffers_[di]->results->as<PairResult>();
            for (std::size_t i = 0; i < s.count; ++i) {
              const PairResult r = res[i];
              (*results)[base + s.begin + i] = r;
              acc[di] += r.accept;
              if (r.bypassed == 1) {
                ++byp_count[di];
              } else if (r.bypassed == 2) {
                ++eo_count[di];
              }
            }
          });
      for (std::size_t di = 0; di < ndev; ++di) {
        stats.accepted += acc[di];
        stats.rejected += slices[di].count - acc[di] - eo_count[di];
        stats.bypassed += byp_count[di];
        stats.earlyouted += eo_count[di];
        RecordEngineFunnel(slices[di].count, acc[di], byp_count[di],
                           eo_count[di]);
      }

      stats.kernel_seconds += round_kt;
      stats.transfer_seconds += round_transfer;
      device_pipeline_seconds +=
          devices_.front()->props().supports_prefetch()
              ? std::max(round_kt, round_transfer)
              : round_kt + round_transfer;
      ++stats.batches;
    }
  };

  const bool joint = plan != nullptr && !plan->empty() && plan->phase_a > 0 &&
                     plan->phase_a < n && plan->phase_a + plan->phase_b() == n;
  if (!joint) {
    run_range(candidates.data(), 0, n);
  } else {
    const std::size_t a = plan->phase_a;
    run_range(candidates.data(), 0, a);
    // Host-side kill pass: a phase-B lane whose phase-A partner lanes all
    // rejected can no longer complete a concordant combination (lossless-
    // filter contract), so it early-outs without ever being filtered.  The
    // flags are stamped into a scratch copy — the caller's table stays
    // untouched.
    std::vector<CandidatePair> tail(candidates.begin() +
                                        static_cast<std::ptrdiff_t>(a),
                                    candidates.end());
    for (std::size_t j = 0; j < tail.size(); ++j) {
      const std::uint32_t lo = plan->partner_off[j];
      const std::uint32_t hi = plan->partner_off[j + 1];
      if (lo == hi) continue;
      bool all_rejected = true;
      for (std::uint32_t k = lo; k < hi && all_rejected; ++k) {
        const PairResult r = (*results)[plan->partner_idx[k]];
        all_rejected = r.accept == 0 && r.bypassed == 0;
      }
      if (all_rejected) tail[j].flags |= kCandidateLaneKilled;
    }
    run_range(tail.data(), a, tail.size());
  }

  const TransferLedger after = TransferLedger::Snapshot(devices_);
  stats.h2d_bytes = after.h2d - before.h2d;
  stats.d2h_bytes = after.d2h - before.d2h;
  stats.page_faults = after.faults - before.faults;
  stats.filter_seconds = stats.host_encode_seconds + stats.host_copy_seconds +
                         device_pipeline_seconds;
  return stats;
}

}  // namespace gkgpu
