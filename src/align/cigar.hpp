// Banded global alignment with traceback: produces the CIGAR string for a
// verified mapping (SAM conventions: M = match/mismatch consuming both
// sequences, I = base present in the read but not the reference, D = base
// present in the reference but not the read).  Used by the SAM writer so
// mapper output carries real alignments instead of a bare match run.
#ifndef GKGPU_ALIGN_CIGAR_HPP
#define GKGPU_ALIGN_CIGAR_HPP

#include <string>
#include <string_view>

namespace gkgpu {

struct Alignment {
  int distance = -1;  // -1 when the distance exceeds the band
  std::string cigar;  // run-length encoded, e.g. "48M1I51M"
};

/// Exact banded global alignment of `read` against `ref` with edit budget
/// k; Alignment.distance == BandedEditDistance(read, ref, k) and the CIGAR
/// describes one optimal alignment (diagonal moves preferred on ties).
Alignment BandedAlign(std::string_view read, std::string_view ref, int k);

/// Applies a CIGAR to `ref` to check consistency with `read`: returns the
/// number of edits implied (M columns that mismatch + I + D runs), or -1
/// if the CIGAR does not span the two sequences.  Test/validation helper.
int CigarEdits(std::string_view read, std::string_view ref,
               const std::string& cigar);

/// Run-length encodes a per-column op string ("MMIDM" -> "2M1I1D1M") —
/// the final step of every traceback that emits a CIGAR (BandedAlign,
/// LocalAligner::BestFit).
std::string CompressCigarOps(const std::string& ops);

}  // namespace gkgpu

#endif  // GKGPU_ALIGN_CIGAR_HPP
