// Smith-Waterman-style local ("fit") alignment of a whole read inside a
// longer reference window: reference gaps before and after the placement
// are free, the read itself aligns globally.  This is the alignment shape
// mate rescue needs — the insert-size model predicts a window, not an
// offset — and, unlike the per-offset banded scans it replaces, it
// recovers placements containing indels: a read with d deleted reference
// bases costs ~2d edits against every fixed length-L window (the shifted
// tail pays again) but only d here, because the placement's reference span
// is free to be L + d.
//
// Scoring is edit-based (unit mismatch/indel cost), so results compose
// directly with the banded verifier's distances and the MAPQ model
// (mapper/mapq.hpp): the fit distance of a placement equals what
// BandedEditDistance would report against that placement's exact span.
#ifndef GKGPU_ALIGN_LOCAL_HPP
#define GKGPU_ALIGN_LOCAL_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gkgpu {

/// One fit placement of a read inside a reference window.
struct LocalAlignment {
  /// Edits of the best placement, or -1 when nothing fits within the
  /// budget.
  int edits = -1;
  /// Window-relative offset of the placement's first reference base.
  std::int64_t ref_begin = 0;
  /// Reference bases the placement consumes (== read length + D - I runs).
  int ref_span = 0;
  /// Distinct minimum-edit placements in the window: end columns tied at
  /// the best edit count, clustered so same-locus alignment variants
  /// (ends within max_edits of each other — an extra end gap costs an
  /// edit) count once.  > 1 means the window is a repeat and the
  /// returned placement is a coin flip; MAPQ must treat it like any
  /// other tie (score 0).
  int placements = 0;
  /// Read-global CIGAR of the placement (M/I/D, SAM conventions).
  std::string cigar;
};

/// Reusable-buffer fit aligner: one instance per thread amortizes the DP
/// matrix (the traceback walks it directly) across a rescue loop.  Not
/// thread-safe.
class LocalAligner {
 public:
  /// Best placement of `read` anywhere inside `ref` with at most
  /// `max_edits` edits; returns edits == -1 when no placement fits the
  /// budget.  `max_begin` (window-relative; < 0 = unrestricted) bounds the
  /// placement's first reference base — rescue windows extend past the
  /// last admissible start so indel placements are not clipped, without
  /// admitting starts beyond it.  Deterministic tie-breaks: among
  /// minimum-edit placements the one ending leftmost in `ref` wins, and
  /// the traceback prefers diagonal (M) moves so runs stay long.
  /// Banded per row by the Ukkonen argument on both sides — columns
  /// [i - max_edits, max_begin + i + max_edits] are the only reachable
  /// cells — so a tight `max_begin` makes each row O(max_begin +
  /// max_edits) instead of O(|ref|), and the matrix is re-sentineled
  /// rather than cleared between calls.
  LocalAlignment BestFit(std::string_view read, std::string_view ref,
                         int max_edits, std::int64_t max_begin = -1);

 private:
  // (m + 1) x (n + 1) edit matrix; only each row's band (plus kInf
  // sentinels) is rewritten per call, so cells outside it hold stale
  // values by design.
  std::vector<int> dp_;
};

/// Match-scaled alignment score shared by the MAPQ model: +2 per aligned
/// base, -5 per edit (one lost match plus a mismatch-sized penalty), the
/// scale on which best/second-best score gaps are measured.
inline int AlignmentScore(int read_length, int edits) {
  return 2 * read_length - 5 * edits;
}

}  // namespace gkgpu

#endif  // GKGPU_ALIGN_LOCAL_HPP
