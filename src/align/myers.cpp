#include "align/myers.hpp"

#include <algorithm>

namespace gkgpu {

namespace {
constexpr int kAlphabet = 256;
constexpr int kW = 64;
}  // namespace

void MyersAligner::BuildPeq(std::string_view pattern, int nblocks) {
  peq_.assign(static_cast<std::size_t>(kAlphabet) * nblocks, 0);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const auto c = static_cast<unsigned char>(pattern[i]);
    peq_[static_cast<std::size_t>(c) * nblocks + i / kW] |=
        std::uint64_t{1} << (i % kW);
  }
}

int MyersAligner::Distance(std::string_view a, std::string_view b) {
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  if (m == 0) return n;
  if (n == 0) return m;
  const int nblocks = (m + kW - 1) / kW;
  BuildPeq(a, nblocks);
  blocks_.assign(static_cast<std::size_t>(nblocks),
                 Block{~std::uint64_t{0}, 0});
  // High bit of the last (possibly partial) block marks pattern row m.
  const std::uint64_t last_high =
      std::uint64_t{1} << ((m - 1) % kW);
  int score = m;
  for (int j = 0; j < n; ++j) {
    const auto c = static_cast<unsigned char>(b[static_cast<std::size_t>(j)]);
    const std::uint64_t* peq_c =
        peq_.data() + static_cast<std::size_t>(c) * nblocks;
    int hin = 1;  // D[0][j] = j boundary: +1 enters the top block each column
    for (int bi = 0; bi < nblocks; ++bi) {
      Block& blk = blocks_[static_cast<std::size_t>(bi)];
      std::uint64_t eq = peq_c[bi];
      const std::uint64_t pv = blk.pv;
      const std::uint64_t mv = blk.mv;
      const std::uint64_t xv = eq | mv;
      if (hin < 0) eq |= 1;
      const std::uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
      std::uint64_t ph = mv | ~(xh | pv);
      std::uint64_t mh = pv & xh;
      const std::uint64_t high =
          bi == nblocks - 1 ? last_high : (std::uint64_t{1} << (kW - 1));
      int hout = 0;
      if (ph & high) hout = 1;
      else if (mh & high) hout = -1;
      ph <<= 1;
      mh <<= 1;
      if (hin < 0) mh |= 1;
      else if (hin > 0) ph |= 1;
      blk.pv = mh | ~(xv | ph);
      blk.mv = ph & xv;
      hin = hout;
    }
    score += hin;  // hout of the last block adjusts D[m][j+1]
  }
  return score;
}

int MyersEditDistance(std::string_view a, std::string_view b) {
  MyersAligner aligner;
  return aligner.Distance(a, b);
}

}  // namespace gkgpu
