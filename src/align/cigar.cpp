#include "align/cigar.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <vector>

namespace gkgpu {

namespace {
constexpr int kInf = 1 << 29;
}  // namespace

std::string CompressCigarOps(const std::string& ops) {
  std::string out;
  std::size_t i = 0;
  while (i < ops.size()) {
    std::size_t j = i;
    while (j < ops.size() && ops[j] == ops[i]) ++j;
    out += std::to_string(j - i);
    out.push_back(ops[i]);
    i = j;
  }
  return out;
}

Alignment BandedAlign(std::string_view read, std::string_view ref, int k) {
  const int m = static_cast<int>(read.size());
  const int n = static_cast<int>(ref.size());
  if (k < 0 || std::abs(m - n) > k) return {};
  const int width = 2 * k + 1;
  // dp[i * width + d] = D[i][i + d - k]; full matrix kept for traceback.
  std::vector<int> dp(static_cast<std::size_t>(m + 1) * width, kInf);
  auto at = [&](int i, int d) -> int& {
    return dp[static_cast<std::size_t>(i) * width + d];
  };
  for (int d = 0; d < width; ++d) {
    const int j = d - k;
    if (j >= 0 && j <= n) at(0, d) = j;
  }
  for (int i = 1; i <= m; ++i) {
    for (int d = 0; d < width; ++d) {
      const int j = i + d - k;
      if (j < 0 || j > n) continue;
      int v = kInf;
      if (j == 0) {
        v = i;
      } else {
        if (d + 1 < width && at(i - 1, d + 1) < kInf) {
          v = std::min(v, at(i - 1, d + 1) + 1);  // I: read base unmatched
        }
        if (d - 1 >= 0 && at(i, d - 1) < kInf) {
          v = std::min(v, at(i, d - 1) + 1);  // D: ref base unmatched
        }
        if (at(i - 1, d) < kInf) {
          const int cost = read[static_cast<std::size_t>(i - 1)] ==
                                   ref[static_cast<std::size_t>(j - 1)]
                               ? 0
                               : 1;
          v = std::min(v, at(i - 1, d) + cost);  // M
        }
      }
      at(i, d) = v;
    }
  }
  const int d_final = n - m + k;
  if (d_final < 0 || d_final >= width || at(m, d_final) > k) return {};

  Alignment result;
  result.distance = at(m, d_final);
  // Traceback from (m, n), preferring M so runs stay long.
  std::string ops;
  int i = m;
  int d = d_final;
  while (i > 0 || i + d - k > 0) {
    const int j = i + d - k;
    const int cur = at(i, d);
    if (i > 0 && j > 0 && at(i - 1, d) < kInf) {
      const int cost = read[static_cast<std::size_t>(i - 1)] ==
                               ref[static_cast<std::size_t>(j - 1)]
                           ? 0
                           : 1;
      if (at(i - 1, d) + cost == cur) {
        ops.push_back('M');
        --i;
        continue;
      }
    }
    if (i > 0 && d + 1 < width && at(i - 1, d + 1) < kInf &&
        at(i - 1, d + 1) + 1 == cur) {
      ops.push_back('I');
      --i;
      ++d;
      continue;
    }
    // Remaining possibility: ref base unmatched.
    ops.push_back('D');
    --d;
  }
  std::reverse(ops.begin(), ops.end());
  result.cigar = CompressCigarOps(ops);
  return result;
}

int CigarEdits(std::string_view read, std::string_view ref,
               const std::string& cigar) {
  std::size_t ri = 0;
  std::size_t gi = 0;
  int edits = 0;
  std::size_t p = 0;
  while (p < cigar.size()) {
    std::size_t q = p;
    while (q < cigar.size() &&
           std::isdigit(static_cast<unsigned char>(cigar[q]))) {
      ++q;
    }
    if (q == p || q >= cigar.size()) return -1;
    const int run = std::atoi(cigar.substr(p, q - p).c_str());
    const char op = cigar[q];
    p = q + 1;
    switch (op) {
      case 'M':
        if (ri + run > read.size() || gi + run > ref.size()) return -1;
        for (int t = 0; t < run; ++t) {
          if (read[ri + t] != ref[gi + t]) ++edits;
        }
        ri += run;
        gi += run;
        break;
      case 'I':
        if (ri + run > read.size()) return -1;
        ri += run;
        edits += run;
        break;
      case 'D':
        if (gi + run > ref.size()) return -1;
        gi += run;
        edits += run;
        break;
      default:
        return -1;
    }
  }
  if (ri != read.size() || gi != ref.size()) return -1;
  return edits;
}

}  // namespace gkgpu
