#include "align/needleman_wunsch.hpp"

#include <algorithm>
#include <vector>

namespace gkgpu {

int NwEditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  std::vector<int> row(static_cast<std::size_t>(m) + 1);
  for (int i = 0; i <= m; ++i) row[static_cast<std::size_t>(i)] = i;
  for (int j = 1; j <= n; ++j) {
    int diag = row[0];
    row[0] = j;
    for (int i = 1; i <= m; ++i) {
      const int sub = diag + (a[static_cast<std::size_t>(i - 1)] ==
                                      b[static_cast<std::size_t>(j - 1)]
                                  ? 0
                                  : 1);
      diag = row[static_cast<std::size_t>(i)];
      row[static_cast<std::size_t>(i)] =
          std::min({sub, diag + 1, row[static_cast<std::size_t>(i - 1)] + 1});
    }
  }
  return row[static_cast<std::size_t>(m)];
}

}  // namespace gkgpu
