#include "align/banded.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace gkgpu {

namespace {
constexpr int kInf = 1 << 29;

/// Core band walk over caller-provided row buffers (resized as needed).
int BandedDistanceImpl(std::string_view a, std::string_view b, int k,
                       std::vector<int>& row, std::vector<int>& prev) {
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  if (k < 0) return -1;
  if (std::abs(m - n) > k) return -1;
  if (m == 0) return n <= k ? n : -1;
  if (n == 0) return m <= k ? m : -1;
  // row[d] holds D[i][i + d - k] for diagonal offset d in [0, 2k].
  const int width = 2 * k + 1;
  row.assign(static_cast<std::size_t>(width), kInf);
  prev.assign(static_cast<std::size_t>(width), kInf);
  // Row 0: D[0][j] = j for j in [0, k].
  for (int d = 0; d < width; ++d) {
    const int j = d - k;
    prev[static_cast<std::size_t>(d)] = (j >= 0 && j <= n) ? j : kInf;
  }
  for (int i = 1; i <= m; ++i) {
    for (int d = 0; d < width; ++d) {
      const int j = i + d - k;
      int v = kInf;
      if (j >= 0 && j <= n) {
        if (j == 0) {
          v = i;
        } else {
          // deletion from a: D[i-1][j] + 1 sits at prev[d + 1]
          if (d + 1 < width && prev[static_cast<std::size_t>(d + 1)] < kInf) {
            v = std::min(v, prev[static_cast<std::size_t>(d + 1)] + 1);
          }
          // insertion into a: D[i][j-1] + 1 sits at row[d - 1]
          if (d - 1 >= 0 && row[static_cast<std::size_t>(d - 1)] < kInf) {
            v = std::min(v, row[static_cast<std::size_t>(d - 1)] + 1);
          }
          // substitution / match: D[i-1][j-1] sits at prev[d]
          if (prev[static_cast<std::size_t>(d)] < kInf) {
            const int cost = a[static_cast<std::size_t>(i - 1)] ==
                                     b[static_cast<std::size_t>(j - 1)]
                                 ? 0
                                 : 1;
            v = std::min(v, prev[static_cast<std::size_t>(d)] + cost);
          }
        }
      }
      row[static_cast<std::size_t>(d)] = v;
    }
    std::swap(row, prev);
    // Early exit: if every cell in the band exceeds k the answer is > k.
    if (*std::min_element(prev.begin(), prev.end()) > k) return -1;
  }
  const int d_final = n - m + k;
  if (d_final < 0 || d_final >= width) return -1;
  const int dist = prev[static_cast<std::size_t>(d_final)];
  return dist <= k ? dist : -1;
}

}  // namespace

int BandedEditDistance(std::string_view a, std::string_view b, int k) {
  std::vector<int> row;
  std::vector<int> prev;
  return BandedDistanceImpl(a, b, k, row, prev);
}

int BandedVerifier::Distance(std::string_view a, std::string_view b, int k) {
  return BandedDistanceImpl(a, b, k, row_, prev_);
}

}  // namespace gkgpu
