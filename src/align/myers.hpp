// Myers' bit-vector algorithm for exact global edit distance (Myers 1999,
// with Hyyrö's block formulation).  This is the functional equivalent of
// Edlib's EDLIB_MODE_NW, which the paper uses as the accuracy ground truth:
// "we hold Edlib's global alignment results as the ground truth".
//
// MyersAligner keeps reusable pattern-preprocessing buffers so the accuracy
// benches can score hundreds of thousands of pairs without reallocation.
#ifndef GKGPU_ALIGN_MYERS_HPP
#define GKGPU_ALIGN_MYERS_HPP

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace gkgpu {

class MyersAligner {
 public:
  /// Exact global (NW) edit distance between pattern a and text b.
  int Distance(std::string_view a, std::string_view b);

  /// Edit distance if <= k, else -1 (same contract as BandedEditDistance).
  int DistanceWithin(std::string_view a, std::string_view b, int k) {
    const int d = Distance(a, b);
    return d <= k ? d : -1;
  }

 private:
  struct Block {
    std::uint64_t pv;  // vertical positive deltas
    std::uint64_t mv;  // vertical negative deltas
  };

  void BuildPeq(std::string_view pattern, int nblocks);

  // peq_[c * nblocks + b]: bit i set when pattern[b*64 + i] == character c.
  std::vector<std::uint64_t> peq_;
  std::vector<Block> blocks_;
};

/// One-shot convenience wrapper.
int MyersEditDistance(std::string_view a, std::string_view b);

}  // namespace gkgpu

#endif  // GKGPU_ALIGN_MYERS_HPP
