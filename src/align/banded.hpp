// Ukkonen banded Levenshtein distance: exact when the distance is within
// the band, and the mapper's verification stage (mrFAST verifies candidate
// mappings against an edit-distance threshold e, so a band of e suffices
// for an exact accept/reject decision).
#ifndef GKGPU_ALIGN_BANDED_HPP
#define GKGPU_ALIGN_BANDED_HPP

#include <string_view>

namespace gkgpu {

/// Exact edit distance if it is <= k, otherwise -1 ("more than k").
/// O((2k+1) * max(m,n)) time.
int BandedEditDistance(std::string_view a, std::string_view b, int k);

/// Convenience accept test used by verification: edit(a, b) <= k.
inline bool WithinEditDistance(std::string_view a, std::string_view b, int k) {
  return BandedEditDistance(a, b, k) >= 0;
}

}  // namespace gkgpu

#endif  // GKGPU_ALIGN_BANDED_HPP
