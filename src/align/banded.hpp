// Ukkonen banded Levenshtein distance: exact when the distance is within
// the band, and the mapper's verification stage (mrFAST verifies candidate
// mappings against an edit-distance threshold e, so a band of e suffices
// for an exact accept/reject decision).
#ifndef GKGPU_ALIGN_BANDED_HPP
#define GKGPU_ALIGN_BANDED_HPP

#include <string_view>
#include <vector>

namespace gkgpu {

/// Exact edit distance if it is <= k, otherwise -1 ("more than k").
/// O((2k+1) * max(m,n)) time.
int BandedEditDistance(std::string_view a, std::string_view b, int k);

/// Reusable-buffer variant for verification hot loops: one instance per
/// worker thread amortizes the band-row allocations over millions of
/// pairs (the streaming pipeline's verify stage churns one call per
/// filter-accepted pair).  Not thread-safe; results identical to
/// BandedEditDistance.
class BandedVerifier {
 public:
  int Distance(std::string_view a, std::string_view b, int k);

 private:
  std::vector<int> row_;
  std::vector<int> prev_;
};

/// Convenience accept test used by verification: edit(a, b) <= k.
inline bool WithinEditDistance(std::string_view a, std::string_view b, int k) {
  return BandedEditDistance(a, b, k) >= 0;
}

}  // namespace gkgpu

#endif  // GKGPU_ALIGN_BANDED_HPP
