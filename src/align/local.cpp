#include "align/local.hpp"

#include <algorithm>

#include "align/cigar.hpp"

namespace gkgpu {

namespace {
constexpr int kInf = 1 << 29;
}  // namespace

LocalAlignment LocalAligner::BestFit(std::string_view read,
                                     std::string_view ref, int max_edits,
                                     std::int64_t max_begin) {
  if (max_edits < 0) return {};
  const int m = static_cast<int>(read.size());
  const int n = static_cast<int>(ref.size());
  const std::size_t stride = static_cast<std::size_t>(n) + 1;
  const std::size_t cells = static_cast<std::size_t>(m + 1) * stride;
  // The matrix is never cleared: every cell the recurrence, the answer
  // scan, or the traceback reads lies inside a row's written band (live
  // cells plus one kInf sentinel on each side), so stale values from a
  // previous call are unreachable.
  if (dp_.size() < cells) dp_.resize(cells);
  auto at = [&](int i, int j) -> int& {
    return dp_[static_cast<std::size_t>(i) * stride +
               static_cast<std::size_t>(j)];
  };

  // Row 0 is free up to max_begin: a placement may start before any
  // admissible reference base, but never past the bound.
  const int begin_limit =
      max_begin < 0
          ? n
          : static_cast<int>(std::min<std::int64_t>(n, max_begin));
  // Adaptive band: a within-budget path into (i, j) starts at a row-0
  // column <= begin_limit, and its column drift obeys
  // |j - start - i| <= edits, so i - max_edits <= j <= begin_limit + i +
  // max_edits.  Cells outside that band cannot hold a value <= max_edits
  // — the budget poisoning below would kInf them anyway — so each row
  // only computes its band and the band widens with the window length
  // instead of every row sweeping all n columns.
  const auto hi_of = [&](int i) {
    return static_cast<int>(std::min<std::int64_t>(
        n, static_cast<std::int64_t>(begin_limit) + i + max_edits));
  };
  for (int j = 0; j <= begin_limit; ++j) at(0, j) = 0;
  for (int j = begin_limit + 1; j <= std::min(n, hi_of(1)); ++j) {
    at(0, j) = kInf;  // row 1 reads this far past the free prefix
  }
  for (int i = 1; i <= m; ++i) {
    // Within the budget, i read bases consume at least i - max_edits
    // reference bases; earlier columns cannot reach the answer row.
    const int j_lo = std::max(0, i - max_edits);
    if (j_lo > n) continue;  // the read no longer fits; rows stay dead
    const int j_hi = hi_of(i);
    if (j_lo == 0) {
      at(i, 0) = i;
    } else {
      at(i, j_lo - 1) = kInf;  // lower sentinel
    }
    for (int j = std::max(1, j_lo); j <= j_hi; ++j) {
      int v = kInf;
      if (at(i - 1, j - 1) < kInf) {
        const int cost = read[static_cast<std::size_t>(i - 1)] ==
                                 ref[static_cast<std::size_t>(j - 1)]
                             ? 0
                             : 1;
        v = std::min(v, at(i - 1, j - 1) + cost);  // M
      }
      if (at(i - 1, j) < kInf) v = std::min(v, at(i - 1, j) + 1);  // I
      if (at(i, j - 1) < kInf) v = std::min(v, at(i, j - 1) + 1);  // D
      // Cells past the budget can never recover (costs are nonnegative);
      // poisoning them keeps each row's live span O(max_edits) wide.
      at(i, j) = v > max_edits ? kInf : v;
    }
    if (j_hi < n) at(i, j_hi + 1) = kInf;  // upper sentinel
  }

  // Free end: the placement may stop before the window does.  Smallest
  // final column on ties -> the leftmost-ending placement, deterministic.
  const int final_lo = std::max(0, m - max_edits);
  const int final_hi = final_lo > n ? -1 : hi_of(m);
  int best_j = -1;
  int best = kInf;
  for (int j = final_lo; j <= final_hi; ++j) {
    if (at(m, j) < best) {
      best = at(m, j);
      best_j = j;
    }
  }
  if (best_j < 0 || best > max_edits) return {};

  LocalAlignment result;
  result.edits = best;
  // Placement multiplicity: cluster tied end columns — ends within
  // max_edits of each other are variants of one placement (shifting an
  // end by one column costs an edit), farther apart they are distinct
  // loci of a repeat.
  int last_tied = -1;
  for (int j = final_lo; j <= final_hi; ++j) {
    if (at(m, j) != best) continue;
    if (last_tied < 0 || j - last_tied > std::max(1, max_edits)) {
      ++result.placements;
    }
    last_tied = j;
  }
  // Traceback to row 0, preferring M so runs stay long; the row-0 column
  // reached is the placement's first reference base.
  std::string ops;
  int i = m;
  int j = best_j;
  while (i > 0) {
    const int cur = at(i, j);
    if (j > 0 && at(i - 1, j - 1) < kInf) {
      const int cost = read[static_cast<std::size_t>(i - 1)] ==
                               ref[static_cast<std::size_t>(j - 1)]
                           ? 0
                           : 1;
      if (at(i - 1, j - 1) + cost == cur) {
        ops.push_back('M');
        --i;
        --j;
        continue;
      }
    }
    if (at(i - 1, j) < kInf && at(i - 1, j) + 1 == cur) {
      ops.push_back('I');
      --i;
      continue;
    }
    // Remaining possibility: a reference base inside the placement is
    // unmatched.
    ops.push_back('D');
    --j;
  }
  std::reverse(ops.begin(), ops.end());
  result.ref_begin = j;
  result.ref_span = best_j - j;
  result.cigar = CompressCigarOps(ops);
  return result;
}

}  // namespace gkgpu
