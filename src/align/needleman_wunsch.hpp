// Full dynamic-programming global alignment (unit-cost Levenshtein /
// Needleman-Wunsch distance).  O(mn) time, O(min(m,n)) space.  This is the
// slow, obviously-correct oracle the bit-vector algorithms are tested
// against, and it doubles as the "expensive verification" whose work the
// pre-alignment filter is meant to reduce.
#ifndef GKGPU_ALIGN_NEEDLEMAN_WUNSCH_HPP
#define GKGPU_ALIGN_NEEDLEMAN_WUNSCH_HPP

#include <string_view>

namespace gkgpu {

/// Exact global (NW) edit distance between a and b with unit costs.
int NwEditDistance(std::string_view a, std::string_view b);

}  // namespace gkgpu

#endif  // GKGPU_ALIGN_NEEDLEMAN_WUNSCH_HPP
