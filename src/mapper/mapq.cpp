#include "mapper/mapq.hpp"

#include <algorithm>
#include <cmath>

namespace gkgpu {

int ComputeMapq(double best, double second, std::size_t best_count, int cap) {
  if (cap <= 0) return 0;
  if (best_count >= 2) return 0;  // tied repeat placements: a coin flip
  const int base =
      cap - kEditDiscount * static_cast<int>(std::llround(best));
  int mapq = base;
  if (second >= 0.0) {
    const int gap =
        static_cast<int>(std::llround(kGapScale * (second - best)));
    mapq = std::min(mapq, gap);
  }
  return std::clamp(mapq, 0, cap);
}

EditSummary SummarizeEdits(const std::vector<int>& edits) {
  EditSummary s;
  for (const int e : edits) {
    if (s.best < 0 || e < s.best) {
      if (s.best >= 0) {
        s.second = s.second < 0 ? s.best : std::min(s.second, s.best);
      }
      s.best = e;
      s.best_count = 1;
    } else if (e == s.best) {
      ++s.best_count;
    } else if (s.second < 0 || e < s.second) {
      s.second = e;
    }
  }
  return s;
}

std::vector<int> AssignMapqs(const std::vector<int>& edits, int cap) {
  std::vector<int> out(edits.size(), 0);
  if (edits.empty()) return out;
  const EditSummary s = SummarizeEdits(edits);
  out[PrimaryIndex(edits, s)] = ComputeMapq(s.best, s.second, s.best_count,
                                            cap);
  return out;
}

std::size_t PrimaryIndex(const std::vector<int>& edits) {
  return PrimaryIndex(edits, SummarizeEdits(edits));
}

std::size_t PrimaryIndex(const std::vector<int>& edits,
                         const EditSummary& summary) {
  for (std::size_t i = 0; i < edits.size(); ++i) {
    if (edits[i] == summary.best) return i;
  }
  return 0;
}

int RescueMapq(int anchor_mapq, int rescued_edits, int cap) {
  const int own = cap - kEditDiscount * rescued_edits;
  return std::clamp(std::min(anchor_mapq, own), 0, cap);
}

}  // namespace gkgpu
