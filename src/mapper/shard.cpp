#include "mapper/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "mapper/index.hpp"

namespace gkgpu {

ShardPlan ShardPlan::Partition(const ReferenceSet& ref, std::int64_t max_bp) {
  if (ref.empty()) {
    throw std::invalid_argument(
        "ShardPlan: cannot partition an empty reference");
  }
  if (max_bp <= 0) {
    max_bp = static_cast<std::int64_t>(KmerIndex::kMaxGenomeLength);
  }
  if (max_bp > static_cast<std::int64_t>(KmerIndex::kMaxGenomeLength)) {
    throw std::invalid_argument(
        "ShardPlan: max_bp " + std::to_string(max_bp) +
        " exceeds the uint32 position ceiling a shard's CSR can address");
  }
  ShardPlan plan;
  ShardInfo cur;
  bool open = false;
  for (std::size_t c = 0; c < ref.chromosome_count(); ++c) {
    const ChromosomeInfo& chrom = ref.chromosome(c);
    if (chrom.length > max_bp) {
      throw std::invalid_argument(
          "ShardPlan: chromosome '" + chrom.name + "' is " +
          std::to_string(chrom.length) +
          " bp, longer than the shard budget of " + std::to_string(max_bp) +
          " bp — a chromosome cannot be split across shards");
    }
    if (open && cur.text_length + chrom.length > max_bp) {
      plan.shards_.push_back(cur);
      open = false;
    }
    if (!open) {
      cur = ShardInfo{c, c + 1, chrom.offset, chrom.length};
      open = true;
    } else {
      cur.chrom_end = c + 1;
      cur.text_length += chrom.length;
    }
  }
  if (open) plan.shards_.push_back(cur);
  return plan;
}

ShardPlan ShardPlan::FromShards(std::vector<ShardInfo> shards,
                                const ReferenceSet& ref) {
  if (shards.empty()) {
    throw std::invalid_argument("ShardPlan: empty shard table");
  }
  std::size_t next_chrom = 0;
  std::int64_t next_offset = 0;
  for (const ShardInfo& s : shards) {
    if (s.chrom_begin != next_chrom || s.chrom_end <= s.chrom_begin ||
        s.chrom_end > ref.chromosome_count()) {
      throw std::invalid_argument(
          "ShardPlan: shard chromosome ranges do not tile the chromosome "
          "table");
    }
    std::int64_t length = 0;
    for (std::size_t c = s.chrom_begin; c < s.chrom_end; ++c) {
      length += ref.chromosome(c).length;
    }
    if (s.text_offset != next_offset ||
        s.text_offset != ref.chromosome(s.chrom_begin).offset ||
        s.text_length != length) {
      throw std::invalid_argument(
          "ShardPlan: shard text slice disagrees with the chromosome table");
    }
    if (s.text_length >
        static_cast<std::int64_t>(KmerIndex::kMaxGenomeLength)) {
      throw std::invalid_argument(
          "ShardPlan: shard longer than the uint32 position ceiling");
    }
    next_chrom = s.chrom_end;
    next_offset = s.text_offset + s.text_length;
  }
  if (next_chrom != ref.chromosome_count() ||
      next_offset != ref.length()) {
    throw std::invalid_argument(
        "ShardPlan: shards do not cover the whole reference");
  }
  ShardPlan plan;
  plan.shards_ = std::move(shards);
  return plan;
}

std::size_t ShardPlan::ShardOf(std::int64_t global_pos) const {
  // First shard starting past the position, minus one.
  const auto it = std::upper_bound(
      shards_.begin(), shards_.end(), global_pos,
      [](std::int64_t pos, const ShardInfo& s) { return pos < s.text_offset; });
  return static_cast<std::size_t>(it - shards_.begin()) - 1;
}

}  // namespace gkgpu
