#include "mapper/sam.hpp"

#include <ostream>

#include "align/cigar.hpp"

namespace gkgpu {

void WriteSamHeader(std::ostream& out, std::string_view ref_name,
                    std::int64_t ref_length) {
  out << "@HD\tVN:1.6\tSO:unknown\n";
  out << "@SQ\tSN:" << ref_name << "\tLN:" << ref_length << '\n';
  out << "@PG\tID:gkgpu\tPN:gatekeeper-gpu-repro\tVN:1.0.0\n";
}

void WriteSamRecord(std::ostream& out, std::string_view read_name,
                    std::string_view seq, std::int64_t pos, int edit_distance,
                    std::string_view ref_name) {
  out << read_name << "\t0\t" << ref_name << '\t' << (pos + 1) << "\t255\t"
      << seq.size() << "M\t*\t0\t0\t" << seq << "\t*\tNM:i:" << edit_distance
      << '\n';
}

void WriteSamRecords(std::ostream& out, const std::vector<std::string>& reads,
                     const std::vector<MappingRecord>& records,
                     std::string_view ref_name) {
  for (const MappingRecord& m : records) {
    WriteSamRecord(out, "read" + std::to_string(m.read_index),
                   reads[m.read_index], m.pos, m.edit_distance, ref_name);
  }
}

void WriteSamRecordsWithCigar(std::ostream& out,
                              const std::vector<std::string>& reads,
                              const std::vector<MappingRecord>& records,
                              std::string_view ref_name,
                              std::string_view genome) {
  for (const MappingRecord& m : records) {
    const std::string& seq = reads[m.read_index];
    const std::string_view segment =
        genome.substr(static_cast<std::size_t>(m.pos), seq.size());
    const Alignment aln = BandedAlign(seq, segment, m.edit_distance);
    const std::string cigar =
        aln.distance >= 0 ? aln.cigar : std::to_string(seq.size()) + "M";
    out << "read" << m.read_index << "\t0\t" << ref_name << '\t'
        << (m.pos + 1) << "\t255\t" << cigar << "\t*\t0\t0\t" << seq
        << "\t*\tNM:i:" << m.edit_distance << '\n';
  }
}

}  // namespace gkgpu
