#include "mapper/sam.hpp"

#include <ostream>
#include <stdexcept>

#include "align/cigar.hpp"

namespace gkgpu {

void WriteSamHeader(std::ostream& out, std::string_view ref_name,
                    std::int64_t ref_length) {
  out << "@HD\tVN:1.6\tSO:unknown\n";
  out << "@SQ\tSN:" << ref_name << "\tLN:" << ref_length << '\n';
  out << "@PG\tID:gkgpu\tPN:gatekeeper-gpu-repro\tVN:1.0.0\n";
}

void WriteSamHeader(std::ostream& out, const ReferenceSet& ref) {
  out << "@HD\tVN:1.6\tSO:unknown\n";
  for (const ChromosomeInfo& c : ref.chromosomes()) {
    out << "@SQ\tSN:" << c.name << "\tLN:" << c.length << '\n';
  }
  out << "@PG\tID:gkgpu\tPN:gatekeeper-gpu-repro\tVN:1.0.0\n";
}

void WriteSamRecord(std::ostream& out, std::string_view read_name,
                    std::string_view seq, std::int64_t pos, int edit_distance,
                    std::string_view ref_name) {
  out << read_name << "\t0\t" << ref_name << '\t' << (pos + 1) << "\t255\t"
      << seq.size() << "M\t*\t0\t0\t" << seq << "\t*\tNM:i:" << edit_distance
      << '\n';
}

void WriteSamLine(std::ostream& out, std::string_view read_name,
                  std::string_view seq, std::string_view chrom_name,
                  std::int64_t local_pos, int edit_distance,
                  std::string_view cigar) {
  out << read_name << "\t0\t" << chrom_name << '\t' << (local_pos + 1)
      << "\t255\t" << cigar << "\t*\t0\t0\t" << seq
      << "\t*\tNM:i:" << edit_distance << '\n';
}

void WriteSamAlignment(std::ostream& out, std::string_view read_name,
                       std::string_view seq, std::string_view chrom_name,
                       std::int64_t local_pos, int edit_distance,
                       std::string_view ref_window) {
  const Alignment aln = BandedAlign(seq, ref_window, edit_distance);
  const std::string cigar =
      aln.distance >= 0 ? aln.cigar : std::to_string(seq.size()) + "M";
  WriteSamLine(out, read_name, seq, chrom_name, local_pos, edit_distance,
               cigar);
}

void WriteSamRecords(std::ostream& out, const std::vector<std::string>& reads,
                     const std::vector<MappingRecord>& records,
                     std::string_view ref_name) {
  for (const MappingRecord& m : records) {
    WriteSamRecord(out, "read" + std::to_string(m.read_index),
                   reads[m.read_index], m.pos, m.edit_distance, ref_name);
  }
}

void WriteSamRecordsWithCigar(std::ostream& out,
                              const std::vector<std::string>& reads,
                              const std::vector<MappingRecord>& records,
                              std::string_view ref_name,
                              std::string_view genome) {
  for (const MappingRecord& m : records) {
    const std::string& seq = reads[m.read_index];
    const std::string_view segment =
        genome.substr(static_cast<std::size_t>(m.pos), seq.size());
    WriteSamAlignment(out, "read" + std::to_string(m.read_index), seq,
                      ref_name, m.pos, m.edit_distance, segment);
  }
}

void WriteSamRecordsMultiChrom(std::ostream& out,
                               const std::vector<std::string>& reads,
                               const std::vector<std::string>& names,
                               const std::vector<MappingRecord>& records,
                               const ReferenceSet& ref) {
  const std::string_view genome = ref.text();
  for (const MappingRecord& m : records) {
    const std::string& seq = reads[m.read_index];
    const int chrom = ref.Locate(m.pos);
    if (chrom < 0) {
      throw std::runtime_error("SAM: mapping position outside the reference");
    }
    const std::string_view segment =
        genome.substr(static_cast<std::size_t>(m.pos), seq.size());
    const std::string fallback = "read" + std::to_string(m.read_index);
    const std::string_view name =
        names.empty() ? std::string_view(fallback) : names[m.read_index];
    WriteSamAlignment(out, name, seq, ref.chromosome(
                          static_cast<std::size_t>(chrom)).name,
                      ref.ToLocal(chrom, m.pos), m.edit_distance, segment);
  }
}

}  // namespace gkgpu
