#include "mapper/sam.hpp"

#include <ostream>
#include <stdexcept>

#include "align/cigar.hpp"
#include "encode/revcomp.hpp"
#include "mapper/mapq.hpp"

namespace gkgpu {

namespace {

/// Iterates `records` as contiguous per-read groups (the order every
/// mapping driver emits) and hands each *emitted* record to `emit`
/// together with its MAPQ (AssignMapqs) and the extra FLAG bits the
/// output policy dictates: under kBestOnly only the group's primary
/// record is seen; under kReportSecondary every record is, non-primary
/// ones carrying 0x100 (their MAPQ is already 0 by AssignMapqs).
template <typename Emit>
void ForEachEmittedRecord(const std::vector<MappingRecord>& records,
                          int mapq_cap, SecondaryPolicy policy, Emit&& emit) {
  std::vector<int> edits;
  std::size_t i = 0;
  while (i < records.size()) {
    std::size_t j = i;
    edits.clear();
    while (j < records.size() &&
           records[j].read_index == records[i].read_index) {
      edits.push_back(records[j].edit_distance);
      ++j;
    }
    // One summary scan yields everything the group needs: the primary
    // record, its MAPQ, and zero for every other placement (AssignMapqs
    // semantics, without rescanning per question).
    const EditSummary s = SummarizeEdits(edits);
    const std::size_t primary = i + PrimaryIndex(edits, s);
    const int primary_mapq =
        ComputeMapq(s.best, s.second, s.best_count, mapq_cap);
    for (std::size_t r = i; r < j; ++r) {
      if (r != primary && policy == SecondaryPolicy::kBestOnly) continue;
      emit(records[r], r == primary ? primary_mapq : 0,
           r == primary ? 0 : kSamSecondary);
    }
    i = j;
  }
}

}  // namespace

void WriteSam(std::ostream& out, const SamRecord& rec) {
  out << rec.qname << '\t' << rec.flags << '\t' << rec.rname << '\t'
      << (rec.pos < 0 ? 0 : rec.pos + 1) << '\t' << rec.mapq << '\t'
      << rec.cigar << '\t' << rec.rnext << '\t'
      << (rec.pnext < 0 ? 0 : rec.pnext + 1) << '\t' << rec.tlen << '\t'
      << rec.seq << '\t' << rec.qual;
  if (rec.nm >= 0) out << "\tNM:i:" << rec.nm;
  if (!rec.read_group.empty()) out << "\tRG:Z:" << rec.read_group;
  out << '\n';
}

void WriteSamHeader(std::ostream& out, std::string_view ref_name,
                    std::int64_t ref_length, std::string_view read_group) {
  out << "@HD\tVN:1.6\tSO:unknown\n";
  out << "@SQ\tSN:" << ref_name << "\tLN:" << ref_length << '\n';
  if (!read_group.empty()) out << "@RG\tID:" << read_group << '\n';
  out << "@PG\tID:gkgpu\tPN:gatekeeper-gpu-repro\tVN:1.0.0\n";
}

void WriteSamHeader(std::ostream& out, const ReferenceSet& ref,
                    std::string_view read_group) {
  out << "@HD\tVN:1.6\tSO:unknown\n";
  for (const ChromosomeInfo& c : ref.chromosomes()) {
    out << "@SQ\tSN:" << c.name << "\tLN:" << c.length << '\n';
  }
  if (!read_group.empty()) out << "@RG\tID:" << read_group << '\n';
  out << "@PG\tID:gkgpu\tPN:gatekeeper-gpu-repro\tVN:1.0.0\n";
}

void WriteSamRecord(std::ostream& out, std::string_view read_name, int flags,
                    std::string_view seq, std::int64_t pos, int edit_distance,
                    int mapq, std::string_view ref_name,
                    std::string_view read_group) {
  const std::string cigar = std::to_string(seq.size()) + "M";
  SamRecord rec;
  rec.qname = read_name;
  rec.flags = flags;
  rec.rname = ref_name;
  rec.pos = pos;
  rec.mapq = mapq;
  rec.cigar = cigar;
  rec.seq = seq;
  rec.nm = edit_distance;
  rec.read_group = read_group;
  WriteSam(out, rec);
}

void WriteSamLine(std::ostream& out, std::string_view read_name, int flags,
                  std::string_view seq, std::string_view chrom_name,
                  std::int64_t local_pos, int edit_distance, int mapq,
                  std::string_view cigar, std::string_view read_group) {
  SamRecord rec;
  rec.qname = read_name;
  rec.flags = flags;
  rec.rname = chrom_name;
  rec.pos = local_pos;
  rec.mapq = mapq;
  rec.cigar = cigar;
  rec.seq = seq;
  rec.nm = edit_distance;
  rec.read_group = read_group;
  WriteSam(out, rec);
}

void WriteSamAlignment(std::ostream& out, std::string_view read_name,
                       int flags, std::string_view seq,
                       std::string_view chrom_name, std::int64_t local_pos,
                       int edit_distance, int mapq,
                       std::string_view ref_window,
                       std::string_view read_group) {
  const Alignment aln = BandedAlign(seq, ref_window, edit_distance);
  const std::string cigar =
      aln.distance >= 0 ? aln.cigar : std::to_string(seq.size()) + "M";
  WriteSamLine(out, read_name, flags, seq, chrom_name, local_pos,
               edit_distance, mapq, cigar, read_group);
}

void WriteSamRecords(std::ostream& out, const std::vector<std::string>& reads,
                     const std::vector<MappingRecord>& records,
                     std::string_view ref_name, int mapq_cap,
                     SecondaryPolicy policy) {
  std::string rc;
  ForEachEmittedRecord(
      records, mapq_cap, policy,
      [&](const MappingRecord& m, int mapq, int extra_flags) {
        const std::string& read = reads[m.read_index];
        const int flags = (m.strand != 0 ? kSamReverse : 0) | extra_flags;
        if (m.strand != 0) ReverseComplementInto(read, &rc);
        WriteSamRecord(out, "read" + std::to_string(m.read_index), flags,
                       m.strand != 0 ? std::string_view(rc)
                                     : std::string_view(read),
                       m.pos, m.edit_distance, mapq, ref_name);
      });
}

void WriteSamRecordsWithCigar(std::ostream& out,
                              const std::vector<std::string>& reads,
                              const std::vector<MappingRecord>& records,
                              std::string_view ref_name,
                              std::string_view genome, int mapq_cap,
                              SecondaryPolicy policy) {
  std::string rc;
  ForEachEmittedRecord(
      records, mapq_cap, policy,
      [&](const MappingRecord& m, int mapq, int extra_flags) {
        const std::string& read = reads[m.read_index];
        const std::string_view segment =
            genome.substr(static_cast<std::size_t>(m.pos), read.size());
        const int flags = (m.strand != 0 ? kSamReverse : 0) | extra_flags;
        if (m.strand != 0) ReverseComplementInto(read, &rc);
        WriteSamAlignment(out, "read" + std::to_string(m.read_index), flags,
                          m.strand != 0 ? std::string_view(rc)
                                        : std::string_view(read),
                          ref_name, m.pos, m.edit_distance, mapq, segment);
      });
}

void WriteSamRecordsMultiChrom(std::ostream& out,
                               const std::vector<std::string>& reads,
                               const std::vector<std::string>& names,
                               const std::vector<MappingRecord>& records,
                               const ReferenceSet& ref,
                               std::string_view read_group, int mapq_cap,
                               SecondaryPolicy policy) {
  const std::string_view genome = ref.text();
  std::string rc;
  ForEachEmittedRecord(
      records, mapq_cap, policy,
      [&](const MappingRecord& m, int mapq, int extra_flags) {
        const std::string& read = reads[m.read_index];
        const int chrom = ref.Locate(m.pos);
        if (chrom < 0) {
          throw std::runtime_error(
              "SAM: mapping position outside the reference");
        }
        const std::string_view segment =
            genome.substr(static_cast<std::size_t>(m.pos), read.size());
        const std::string fallback = "read" + std::to_string(m.read_index);
        const std::string_view name =
            names.empty() ? std::string_view(fallback) : names[m.read_index];
        // The record's SEQ is the strand the mapping verified: the read
        // itself on the forward strand, its reverse complement (FLAG 0x10)
        // otherwise.
        const int flags = (m.strand != 0 ? kSamReverse : 0) | extra_flags;
        if (m.strand != 0) ReverseComplementInto(read, &rc);
        WriteSamAlignment(out, name, flags,
                          m.strand != 0 ? std::string_view(rc)
                                        : std::string_view(read),
                          ref.chromosome(static_cast<std::size_t>(chrom)).name,
                          ref.ToLocal(chrom, m.pos), m.edit_distance, mapq,
                          segment, read_group);
      });
}

}  // namespace gkgpu
