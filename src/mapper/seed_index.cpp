#include "mapper/seed_index.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "mapper/minimizer.hpp"

namespace gkgpu {

const char* SeedModeName(SeedMode mode) {
  return mode == SeedMode::kMinimizer ? "minimizer" : "dense";
}

std::optional<SeedMode> ParseSeedMode(std::string_view name) {
  if (name == "dense") return SeedMode::kDense;
  if (name == "minimizer") return SeedMode::kMinimizer;
  return std::nullopt;
}

namespace {

/// One shard's sparse CSR from per-chromosome winnowing.  Selection never
/// crosses a chromosome boundary (a junction-spanning window is chimeric
/// content no read can match), which also makes the selected set — unlike
/// shard-wide winnowing — independent of the shard layout.
KmerIndex BuildMinimizerShard(const ReferenceSet& ref, const ShardInfo& shard,
                              int k, int w) {
  const std::string_view text = ref.text();
  std::vector<MinimizerHit> hits;
  std::vector<std::uint32_t> shard_pos;  // parallel to hits, shard-local
  for (std::size_t c = shard.chrom_begin; c < shard.chrom_end; ++c) {
    const ChromosomeInfo& chrom = ref.chromosome(c);
    const std::size_t before = hits.size();
    CollectMinimizers(text.substr(static_cast<std::size_t>(chrom.offset),
                                  static_cast<std::size_t>(chrom.length)),
                      k, w, &hits);
    const std::uint32_t shift =
        static_cast<std::uint32_t>(chrom.offset - shard.text_offset);
    for (std::size_t i = before; i < hits.size(); ++i) {
      shard_pos.push_back(hits[i].pos + shift);
    }
  }
  const std::size_t buckets = std::size_t{1} << (2 * k);
  std::vector<std::uint32_t> offsets(buckets + 1, 0);
  for (const MinimizerHit& h : hits) ++offsets[h.code + 1];
  for (std::size_t b = 0; b < buckets; ++b) offsets[b + 1] += offsets[b];
  std::vector<std::uint32_t> positions(hits.size());
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    positions[cursor[hits[i].code]++] = shard_pos[i];
  }
  return KmerIndex::FromCsr(k, static_cast<std::size_t>(shard.text_length),
                            std::move(offsets), std::move(positions));
}

KmerIndex BuildShard(const ReferenceSet& ref, const ShardInfo& shard,
                     const SeedConfig& config) {
  if (config.mode == SeedMode::kMinimizer) {
    return BuildMinimizerShard(ref, shard, config.k, config.minimizer_w);
  }
  return KmerIndex(
      ref.text().substr(static_cast<std::size_t>(shard.text_offset),
                        static_cast<std::size_t>(shard.text_length)),
      config.k);
}

}  // namespace

SeedIndex SeedIndex::Build(const ReferenceSet& ref, const SeedConfig& config,
                           unsigned threads) {
  if (config.k < 4 || config.k > 14) {
    throw std::invalid_argument("SeedIndex: k out of range [4, 14]");
  }
  if (config.mode == SeedMode::kMinimizer &&
      (config.minimizer_w < 1 || config.minimizer_w > 255)) {
    throw std::invalid_argument(
        "SeedIndex: minimizer window out of range [1, 255]");
  }
  SeedIndex idx;
  idx.mode_ = config.mode;
  idx.minimizer_w_ =
      config.mode == SeedMode::kMinimizer ? config.minimizer_w : 0;
  idx.plan_ = ShardPlan::Partition(ref, config.shard_max_bp);
  const std::size_t n = idx.plan_.shard_count();
  idx.shards_.resize(n);

  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  const std::size_t workers = std::min<std::size_t>(threads, n);
  if (workers <= 1) {
    for (std::size_t s = 0; s < n; ++s) {
      idx.shards_[s] = BuildShard(ref, idx.plan_.shard(s), config);
    }
    return idx;
  }

  // Concurrent shard builds: workers claim shards off an atomic cursor;
  // the first exception wins and the rest of the queue drains unbuilt.
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t s = next.fetch_add(1, std::memory_order_relaxed);
        if (s >= n) return;
        try {
          idx.shards_[s] = BuildShard(ref, idx.plan_.shard(s), config);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
          next.store(n, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  if (error) std::rethrow_exception(error);
  return idx;
}

SeedIndex SeedIndex::View(ShardPlan plan, SeedMode mode, int minimizer_w,
                          std::vector<KmerIndex> shards) {
  if (plan.shard_count() != shards.size() || shards.empty()) {
    throw std::invalid_argument(
        "SeedIndex::View: shard count does not match the plan");
  }
  const int k = shards.front().k();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].k() != k ||
        shards[s].genome_length() !=
            static_cast<std::size_t>(plan.shard(s).text_length)) {
      throw std::invalid_argument(
          "SeedIndex::View: shard " + std::to_string(s) +
          " does not match the plan's slice");
    }
  }
  SeedIndex idx;
  idx.mode_ = mode;
  idx.minimizer_w_ = mode == SeedMode::kMinimizer ? minimizer_w : 0;
  idx.plan_ = std::move(plan);
  idx.shards_ = std::move(shards);
  return idx;
}

SeedIndex SeedIndex::Alias() const {
  std::vector<KmerIndex> shards;
  shards.reserve(shards_.size());
  for (const KmerIndex& s : shards_) {
    shards.push_back(
        KmerIndex::View(s.k(), s.genome_length(), s.offsets(), s.positions()));
  }
  return View(plan_, mode_, minimizer_w_, std::move(shards));
}

std::uint64_t SeedIndex::indexed_positions() const {
  std::uint64_t total = 0;
  for (const KmerIndex& s : shards_) total += s.indexed_kmers();
  return total;
}

}  // namespace gkgpu
