// The sharded seeding index: one CSR KmerIndex per chromosome-group shard
// (ShardPlan), built dense (every k-mer position, the mrFAST layout) or
// sparse ((w,k) minimizer selection).  Each shard's positions are local to
// its text slice and stay within the uint32 ceiling, so the concatenated
// genome may exceed 4 Gbp — the scale-out KmerIndex alone refuses.
//
// Shards build concurrently (one thread per shard); lookups run per shard
// and the mapper merges the translated global positions across shards
// before filtration.  Because shard boundaries are chromosome boundaries
// and junction-spanning candidate windows are dropped at seeding time,
// the merged candidate set is byte-for-byte the one a monolithic index
// would seed.
#ifndef GKGPU_MAPPER_SEED_INDEX_HPP
#define GKGPU_MAPPER_SEED_INDEX_HPP

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "io/reference.hpp"
#include "mapper/index.hpp"
#include "mapper/shard.hpp"

namespace gkgpu {

enum class SeedMode : std::uint8_t {
  kDense = 0,      // every k-mer position, pigeonhole seeds at query time
  kMinimizer = 1,  // (w,k) winnowing on both the index and the reads
};

const char* SeedModeName(SeedMode mode);
std::optional<SeedMode> ParseSeedMode(std::string_view name);

struct SeedConfig {
  int k = 12;
  SeedMode mode = SeedMode::kDense;
  /// Winnowing window in k-mers (minimizer mode only).  The seeding
  /// guarantee needs an error-free stretch of w+k-1 read bases; the
  /// default keeps that at 16 bp for k=12, within the worst-case clean
  /// stretch of a 100 bp read at e=5.
  int minimizer_w = 5;
  /// Shard byte budget; 0 means one shard per 4 Gbp (the uint32 position
  /// ceiling).  Small values force multi-shard layouts on small genomes —
  /// how the tests and CI exercise the sharded paths.
  std::int64_t shard_max_bp = 0;
};

class SeedIndex {
 public:
  /// Empty index (shard_count() == 0) — a placeholder to move into.
  SeedIndex() = default;

  /// Builds the per-shard indexes over `ref`, `threads` shards at a time
  /// (0 = hardware concurrency, 1 = serial — the bench measures both).
  /// Minimizer selection runs per chromosome, so the selected positions —
  /// and therefore the candidates — are identical whatever the shard
  /// layout.  Throws std::invalid_argument on a bad config or a
  /// chromosome exceeding the shard budget.
  static SeedIndex Build(const ReferenceSet& ref, const SeedConfig& config,
                         unsigned threads = 0);

  /// Assembles a view-mode index from persisted parts (an mmap'd index
  /// file): the plan plus one view-mode KmerIndex per shard, which must
  /// all share `k` and match the plan's slice lengths.
  static SeedIndex View(ShardPlan plan, SeedMode mode, int minimizer_w,
                        std::vector<KmerIndex> shards);

  /// A non-owning alias of this index: view-mode shards spanning the same
  /// storage, same plan/mode/window.  The aliased index must outlive the
  /// alias — how a MappedIndexFile's index is handed to a ReadMapper
  /// without copying the CSR arrays.
  SeedIndex Alias() const;

  SeedIndex(SeedIndex&&) = default;
  SeedIndex& operator=(SeedIndex&&) = default;
  SeedIndex(const SeedIndex&) = delete;
  SeedIndex& operator=(const SeedIndex&) = delete;

  int k() const { return shards_.empty() ? 0 : shards_.front().k(); }
  SeedMode mode() const { return mode_; }
  int minimizer_w() const { return minimizer_w_; }
  const ShardPlan& plan() const { return plan_; }
  std::size_t shard_count() const { return shards_.size(); }
  const KmerIndex& shard(std::size_t i) const { return shards_[i]; }
  std::size_t genome_length() const {
    return static_cast<std::size_t>(plan_.total_length());
  }
  std::uint64_t indexed_positions() const;

 private:
  SeedMode mode_ = SeedMode::kDense;
  int minimizer_w_ = 0;
  ShardPlan plan_;
  std::vector<KmerIndex> shards_;
};

}  // namespace gkgpu

#endif  // GKGPU_MAPPER_SEED_INDEX_HPP
