#include "mapper/minimizer.hpp"

#include <cassert>

#include "encode/dna.hpp"

namespace gkgpu {

void CollectMinimizers(std::string_view seq, int k, int w,
                       std::vector<MinimizerHit>* out) {
  assert(k >= 4 && k <= 14 && w >= 1);
  if (seq.size() < static_cast<std::size_t>(k + w - 1)) return;

  // Monotone min-deque over the last w k-mer hashes, as a ring buffer.
  // Entries are strictly increasing in hash from front to back; popping
  // ties on push makes the *rightmost* minimal k-mer win, the standard
  // robust-winnowing tie-break (a pure function of window content).
  struct Entry {
    std::uint64_t hash;
    std::uint64_t code;
    std::uint32_t pos;
  };
  std::vector<Entry> ring(static_cast<std::size_t>(w) + 1);
  std::size_t head = 0, tail = 0;  // [head, tail) live entries

  const std::uint64_t mask = (std::uint64_t{1} << (2 * k)) - 1;
  std::uint64_t code = 0;
  std::size_t valid_from = 0;  // first position where the k-mer is clean
  std::uint32_t last_emitted = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const unsigned c = BaseToCode(seq[i]);
    if (c >= 4) {
      valid_from = i + 1;
      code = (code << 2) & mask;
      head = tail = 0;  // windows touching this base select nothing
      continue;
    }
    code = ((code << 2) | c) & mask;
    if (i + 1 < static_cast<std::size_t>(k) ||
        i + 1 - static_cast<std::size_t>(k) < valid_from) {
      continue;
    }
    const std::uint32_t pos =
        static_cast<std::uint32_t>(i + 1 - static_cast<std::size_t>(k));
    const std::uint64_t hash = MinimizerHash(code);
    while (tail != head && ring[(tail - 1) % ring.size()].hash >= hash) --tail;
    ring[tail % ring.size()] = Entry{hash, code, pos};
    ++tail;
    // The window of w k-mers ending at `pos` spans starts
    // [pos - w + 1, pos]; it exists once that many clean k-mers accrued.
    if (pos + 1 < static_cast<std::uint32_t>(w) ||
        static_cast<std::size_t>(pos) - (w - 1) < valid_from) {
      continue;
    }
    while (ring[head % ring.size()].pos + static_cast<std::uint32_t>(w) <=
           pos) {
      ++head;
    }
    const Entry& min = ring[head % ring.size()];
    if (min.pos != last_emitted) {
      out->push_back(MinimizerHit{min.code, min.pos});
      last_emitted = min.pos;
    }
  }
}

}  // namespace gkgpu
