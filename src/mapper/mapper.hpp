// mrFAST-like seed-and-extend read mapper with a pluggable pre-alignment
// filter, reproducing the integration of GateKeeper-GPU Sec. 3.5:
//
//   seed (k-mer index lookups, pigeonhole seeds)
//     -> batch candidate locations for many reads
//     -> [optional] GateKeeper-GPU pre-alignment filtering
//     -> verification (banded edit distance <= e)
//     -> mapping records + the statistics Table 3 reports.
//
// Without a filter every candidate enters verification ("No Filter" rows);
// with a filter only accepted + bypassed pairs do.
#ifndef GKGPU_MAPPER_MAPPER_HPP
#define GKGPU_MAPPER_MAPPER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "io/reference.hpp"
#include "mapper/seed_index.hpp"
#include "pipeline/candidate_packer.hpp"
#include "pipeline/pipeline.hpp"

namespace gkgpu {

struct MapperConfig {
  int k = 12;
  int read_length = 100;
  int error_threshold = 5;
  /// Reads batched per filtering round (Table 1; 100,000 is the paper's
  /// sweet spot).
  std::size_t max_reads_per_batch = 100000;
  unsigned verify_threads = 0;  // 0 = hardware concurrency
  /// Seeding strategy: dense pigeonhole seeds (the mrFAST default) or
  /// (w,k) minimizer sampling (see mapper/minimizer.hpp).
  SeedMode seed_mode = SeedMode::kDense;
  int minimizer_w = 5;  // winnowing window, minimizer mode only
  /// Shard byte budget for the index (see SeedConfig::shard_max_bp);
  /// 0 = one shard per 4 Gbp.
  std::int64_t shard_max_bp = 0;
};

struct MappingRecord {
  std::uint32_t read_index = 0;
  std::int64_t pos = 0;
  int edit_distance = 0;
  /// 0 = the read maps forward; 1 = its reverse complement does (SAM FLAG
  /// 0x10, reverse-complemented SEQ in output).
  std::uint8_t strand = 0;
};

/// The metrics of Table 3 / Sup. Tables S.24-S.26 plus stage timings.
struct MappingStats {
  std::uint64_t reads = 0;
  std::uint64_t mappings = 0;
  std::uint64_t mapped_reads = 0;
  std::uint64_t candidates_total = 0;    // potential mappings found by seeding
  std::uint64_t verification_pairs = 0;  // candidates entering verification
  std::uint64_t rejected_pairs = 0;      // discarded by the filter
  std::uint64_t bypassed_pairs = 0;      // undefined pairs passed through
  /// Candidates attributed to each index shard (empty when the index is a
  /// single shard — the per-shard breakdown only exists on sharded runs).
  std::vector<std::uint64_t> shard_candidates;

  double seeding_seconds = 0.0;
  double preprocess_seconds = 0.0;     // filter-side host preprocessing
  double filter_seconds = 0.0;         // total filtering ("ft")
  double filter_kernel_seconds = 0.0;  // device time only ("kt")
  double filter_encode_seconds = 0.0;  // host-side encoding within filtering
  double filter_copy_seconds = 0.0;    // host-side buffer copies
  double verification_seconds = 0.0;   // the DP stage the filter offloads
  double total_seconds = 0.0;

  double ReductionPercent() const {
    return candidates_total == 0
               ? 0.0
               : 100.0 * static_cast<double>(rejected_pairs) /
                     static_cast<double>(candidates_total);
  }
};

class ReadMapper {
 public:
  /// Multi-chromosome mapper: one k-mer index and one encoded reference
  /// over the concatenated text; mappings carry global positions that the
  /// reference set maps back to (chromosome, local position).
  ReadMapper(ReferenceSet reference, MapperConfig config);
  /// Single-sequence convenience (the chromosome is named
  /// "synthetic_chr1", matching the synthetic-genome tooling).
  ReadMapper(std::string genome, MapperConfig config);
  /// Preloaded-index mapper: adopts an already-built (typically mmap'd,
  /// view-mode) sharded index instead of scanning the genome.  The index's
  /// k must equal `config.k` and its genome_length the reference length;
  /// throws std::invalid_argument otherwise.  The index's seed mode,
  /// winnowing window and shard layout override the config's — they are
  /// baked into the persisted CSR payload.  When either the reference or
  /// the index is a view, the backing storage (the MappedIndexFile) must
  /// outlive the mapper.
  ReadMapper(ReferenceSet reference, SeedIndex index, MapperConfig config);
  ~ReadMapper();

  const ReferenceSet& reference() const { return ref_; }
  std::string_view genome() const { return ref_.text(); }
  const MapperConfig& config() const { return config_; }
  const SeedIndex& index() const { return index_; }

  /// Maps `reads`; when `filter` is non-null it is used as the
  /// pre-alignment stage (the engine's reference is loaded on first use).
  /// `out` (optional) receives every verified mapping.
  MappingStats MapReads(const std::vector<std::string>& reads,
                        GateKeeperGpuEngine* filter,
                        std::vector<MappingRecord>* out = nullptr);

  /// Streaming mode: drives seed lookup -> candidate filtration -> banded
  /// verification through the candidate-mode StreamingPipeline instead of
  /// lockstep batches, producing the same mappings as MapReads in the same
  /// order under bounded memory.  Requires `filter` (the streaming path is
  /// the filter integration); every read must match the engine's
  /// configured read length.  `pcfg.reference_text`, `verify` and
  /// `verify_threshold` are set by the mapper.
  MappingStats MapReadsStreaming(const std::vector<std::string>& reads,
                                 GateKeeperGpuEngine* filter,
                                 pipeline::PipelineConfig pcfg = {},
                                 std::vector<MappingRecord>* out = nullptr);

  /// Seeding only, forward strand: candidate locations for one read
  /// (deduplicated, global coordinates, never spanning a chromosome
  /// junction).
  void CollectCandidates(std::string_view read,
                         std::vector<std::int64_t>* candidates) const;

  /// Strand-aware seeding: both the read and its reverse complement are
  /// seeded against the index; forward candidates come first (sorted,
  /// deduplicated per strand).  `rc` receives the reverse complement (the
  /// caller reuses it for verification and SAM output) and `scratch` is a
  /// per-call position buffer, both amortized across a read loop.
  void CollectCandidatesOriented(std::string_view read, std::string* rc,
                                 std::vector<std::int64_t>* scratch,
                                 std::vector<OrientedCandidate>* candidates)
      const;

 private:
  void CollectDense(std::string_view read,
                    std::vector<std::int64_t>* candidates) const;
  void CollectMinimizerSeeds(std::string_view read,
                             std::vector<std::int64_t>* candidates) const;
  void PublishSeedObservability(const MappingStats& stats) const;

  ReferenceSet ref_;
  MapperConfig config_;
  SeedIndex index_;
  std::unique_ptr<ThreadPool> verify_pool_;
};

}  // namespace gkgpu

#endif  // GKGPU_MAPPER_MAPPER_HPP
