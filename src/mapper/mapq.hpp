// Mapping quality from candidate multiplicity and alignment-score gaps.
//
// The filter's accuracy story only matters relative to which candidate
// ultimately wins: a read whose best placement is unique and far ahead of
// the runner-up is trustworthy, a read torn between equal repeat
// placements is not, whatever the filter's false-accept rate did on the
// way (SOAP3-dp derives per-read quality from exactly this score gap).
// The model here is shared by every driver — blocking MapReads,
// MapReadsStreaming, the FASTQ-to-SAM pipeline and both paired drivers —
// so golden SAM files stay byte-identical across them:
//
//   * penalties are edit-based (see align/local.hpp's AlignmentScore
//     scale): a placement's penalty is its edit count, a pair's the sum
//     of both mates' edits plus the insert-size term;
//   * >= 2 placements tied at the best penalty -> MAPQ 0 (the placement
//     is a coin flip);
//   * a unique best placement starts from `cap` minus a per-edit
//     discount, then is limited by the gap to the second-best placement
//     when one exists: MAPQ = min(base, kGapScale * gap).
//
// MAPQ 255 ("unavailable") is never emitted; unmapped records carry 0.
#ifndef GKGPU_MAPPER_MAPQ_HPP
#define GKGPU_MAPPER_MAPQ_HPP

#include <cstddef>
#include <vector>

namespace gkgpu {

/// Default MAPQ ceiling (the BWA/SOAP3-dp convention); CLI --mapq-cap.
inline constexpr int kDefaultMapqCap = 60;

/// MAPQ discount per edit in the best placement: residual edits mean the
/// read disagrees with its locus, so confidence falls even without a
/// runner-up.
inline constexpr int kEditDiscount = 4;

/// MAPQ per unit of best/second-best penalty gap: one extra edit in the
/// runner-up buys 10 points, saturating at the base confidence.
inline constexpr int kGapScale = 10;

/// MAPQ of a placement with penalty `best` (edits, or edits plus insert
/// term for pairs), runner-up penalty `second` (< 0 = no runner-up), and
/// `best_count` placements tied at the best penalty.
int ComputeMapq(double best, double second, std::size_t best_count, int cap);

/// Best / runner-up summary of one read's verified placements — the
/// inputs ComputeMapq consumes, shared by the per-record writers
/// (AssignMapqs) and the paired finalizer so the tie/second-tracking
/// subtleties live once.
struct EditSummary {
  int best = -1;             // fewest edits; -1 = no placement
  std::size_t best_count = 0;  // placements tied at `best`
  int second = -1;           // next-distinct edit count; -1 = none
};

/// Summarizes nonnegative per-placement edit counts.
EditSummary SummarizeEdits(const std::vector<int>& edits);

/// Per-record MAPQs for one read's emitted mappings (`edits[i]` >= 0, the
/// verified edit distance of record i): the first record achieving the
/// best edit count carries the read-level MAPQ, every other record 0 (a
/// secondary placement is by definition not the one to trust).  Ties at
/// the best edit count zero the whole read.
std::vector<int> AssignMapqs(const std::vector<int>& edits, int cap);

/// Index of the read's primary placement — the record AssignMapqs scores
/// (first to achieve the best edit count).  `edits` must be non-empty.
/// The SAM writers emit exactly this record under the best-only output
/// mode and flag every other one 0x100 under report-secondary, so the
/// two notions can never drift apart.  The two-argument form reuses a
/// summary the caller already computed (the group writers derive
/// primary, MAPQ and flags from one SummarizeEdits scan).
std::size_t PrimaryIndex(const std::vector<int>& edits);
std::size_t PrimaryIndex(const std::vector<int>& edits,
                         const EditSummary& summary);

/// MAPQ of a mate placed by rescue: the placement exists only because of
/// its anchor, so it cannot be more trusted than the anchor is, nor than
/// its own residual edits allow.
int RescueMapq(int anchor_mapq, int rescued_edits, int cap);

}  // namespace gkgpu

#endif  // GKGPU_MAPPER_MAPQ_HPP
