// Shard planning for genome-scale indexing: partitions the reference's
// chromosomes into contiguous groups whose concatenated length stays under
// a byte budget, so each group can carry its own uint32-position CSR index
// (KmerIndex::kMaxGenomeLength is the hard ceiling a single CSR can
// address).  Shard boundaries always coincide with chromosome boundaries —
// a candidate window never spans a junction (ReferenceSet drops those at
// seeding time), so seeding each shard independently and merging the hits
// yields exactly the candidate set a monolithic index would produce.
#ifndef GKGPU_MAPPER_SHARD_HPP
#define GKGPU_MAPPER_SHARD_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "io/reference.hpp"

namespace gkgpu {

/// One chromosome group: a half-open chromosome range and the slice of the
/// concatenated text it covers.  Positions inside a shard's CSR index are
/// relative to `text_offset`.
struct ShardInfo {
  std::size_t chrom_begin = 0;  // first chromosome in the group
  std::size_t chrom_end = 0;    // one past the last
  std::int64_t text_offset = 0;
  std::int64_t text_length = 0;
};

class ShardPlan {
 public:
  /// Empty plan (shard_count() == 0) — a placeholder to assign into.
  ShardPlan() = default;

  /// Greedy first-fit partition of `ref`'s chromosomes into groups of at
  /// most `max_bp` bases (0 means the uint32 position ceiling, i.e. one
  /// shard for any genome a single CSR can address).  Every group holds at
  /// least one chromosome; a single chromosome longer than `max_bp` cannot
  /// be split (positions within it must share one coordinate space) and
  /// throws std::invalid_argument.
  static ShardPlan Partition(const ReferenceSet& ref,
                             std::int64_t max_bp = 0);

  /// Rebuilds a plan from persisted shard entries (an index file's shard
  /// table), validating that the shards tile `ref`'s chromosomes exactly:
  /// contiguous chromosome ranges, text slices matching the chromosome
  /// table, lengths within the uint32 ceiling.  Throws
  /// std::invalid_argument on any mismatch.
  static ShardPlan FromShards(std::vector<ShardInfo> shards,
                              const ReferenceSet& ref);

  std::size_t shard_count() const { return shards_.size(); }
  const ShardInfo& shard(std::size_t i) const { return shards_[i]; }
  const std::vector<ShardInfo>& shards() const { return shards_; }
  std::int64_t total_length() const {
    return shards_.empty()
               ? 0
               : shards_.back().text_offset + shards_.back().text_length;
  }

  /// Index of the shard containing the global text position (the caller
  /// guarantees 0 <= global_pos < total_length()).
  std::size_t ShardOf(std::int64_t global_pos) const;

 private:
  std::vector<ShardInfo> shards_;
};

}  // namespace gkgpu

#endif  // GKGPU_MAPPER_SHARD_HPP
