// k-mer hash index over the reference genome, mrFAST-style: every position
// of every k-mer, stored in a CSR layout (offset table over the 4^k code
// space + a flat position array).  Seeding looks up the non-overlapping
// k-mers of a read and turns hits into candidate mapping locations.
//
// The index exists in two storage modes: built (the constructor scans the
// genome and owns the CSR arrays) or viewed (spans over externally owned
// storage — an mmap'd index file; see io/index_io.hpp).  Lookup always
// goes through the spans, so both modes share one hot path.
#ifndef GKGPU_MAPPER_INDEX_HPP
#define GKGPU_MAPPER_INDEX_HPP

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace gkgpu {

class KmerIndex {
 public:
  /// Largest indexable genome: positions are stored as uint32, so a text
  /// past 2^32 - 1 bases cannot be addressed.  Construction throws
  /// std::invalid_argument beyond this bound rather than silently
  /// truncating positions; larger genomes are the per-chromosome index
  /// sharding follow-up tracked in ROADMAP.md.
  static constexpr std::size_t kMaxGenomeLength = 0xFFFFFFFFull;

  /// Empty index (k() == 0, every lookup misses) — a placeholder to
  /// move-assign a real index into (MappedIndexFile holds one by value).
  KmerIndex() = default;

  /// Builds the index; k <= 14 (the offset table is 4^k + 1 entries;
  /// mrFAST uses 12).  k-mers containing 'N' are not indexed.  Throws
  /// when `genome` exceeds kMaxGenomeLength.
  KmerIndex(std::string_view genome, int k = 12);

  /// Non-owning view over a persisted CSR layout (typically spans into an
  /// mmap'd index file, which must outlive the view).  Validates the
  /// shape: `offsets` must hold exactly 4^k + 1 entries and end at
  /// `positions.size()`; throws std::invalid_argument otherwise.
  static KmerIndex View(int k, std::size_t genome_length,
                        std::span<const std::uint32_t> offsets,
                        std::span<const std::uint32_t> positions);

  /// Owning index adopting an externally built CSR layout (the minimizer
  /// seeder builds its sparse CSR this way).  Same shape validation as
  /// View(); the index takes ownership of the vectors.
  static KmerIndex FromCsr(int k, std::size_t genome_length,
                           std::vector<std::uint32_t> offsets,
                           std::vector<std::uint32_t> positions);

  // Views alias storage they do not own; copying an owning index would
  // silently re-point the copy's spans at the original's buffers.  Moves
  // are safe (vector buffers are address-stable across moves).
  KmerIndex(const KmerIndex&) = delete;
  KmerIndex& operator=(const KmerIndex&) = delete;
  KmerIndex(KmerIndex&&) = default;
  KmerIndex& operator=(KmerIndex&&) = default;

  int k() const { return k_; }
  std::size_t genome_length() const { return genome_length_; }
  std::size_t indexed_kmers() const { return positions_view_.size(); }
  /// True when this index owns its CSR storage (built from a genome);
  /// false for View() instances, whose backing memory the caller keeps
  /// alive.  An owning offset table is never empty (4^k + 1 entries).
  bool owns_storage() const { return !offsets_.empty(); }

  /// The raw CSR layout, for serialization (io/index_io.hpp).
  std::span<const std::uint32_t> offsets() const { return offsets_view_; }
  std::span<const std::uint32_t> positions() const { return positions_view_; }

  /// Encodes a k-mer to its code; returns -1 if it contains unknown bases.
  std::int64_t Encode(std::string_view kmer) const;

  /// All genome positions of the exact k-mer (empty when absent or
  /// malformed).
  std::span<const std::uint32_t> Lookup(std::string_view kmer) const;
  std::span<const std::uint32_t> LookupCode(std::int64_t code) const;

 private:
  int k_ = 0;
  std::size_t genome_length_ = 0;
  std::vector<std::uint32_t> offsets_;    // owned storage (empty in views)
  std::vector<std::uint32_t> positions_;  // owned storage (empty in views)
  std::span<const std::uint32_t> offsets_view_;    // 4^k + 1
  std::span<const std::uint32_t> positions_view_;  // CSR payload
};

}  // namespace gkgpu

#endif  // GKGPU_MAPPER_INDEX_HPP
