// k-mer hash index over the reference genome, mrFAST-style: every position
// of every k-mer, stored in a CSR layout (offset table over the 4^k code
// space + a flat position array).  Seeding looks up the non-overlapping
// k-mers of a read and turns hits into candidate mapping locations.
#ifndef GKGPU_MAPPER_INDEX_HPP
#define GKGPU_MAPPER_INDEX_HPP

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace gkgpu {

class KmerIndex {
 public:
  /// Largest indexable genome: positions are stored as uint32, so a text
  /// past 2^32 - 1 bases cannot be addressed.  Construction throws
  /// std::invalid_argument beyond this bound rather than silently
  /// truncating positions; larger genomes are the per-chromosome index
  /// sharding follow-up tracked in ROADMAP.md.
  static constexpr std::size_t kMaxGenomeLength = 0xFFFFFFFFull;

  /// Builds the index; k <= 14 (the offset table is 4^k + 1 entries;
  /// mrFAST uses 12).  k-mers containing 'N' are not indexed.  Throws
  /// when `genome` exceeds kMaxGenomeLength.
  KmerIndex(std::string_view genome, int k = 12);

  int k() const { return k_; }
  std::size_t genome_length() const { return genome_length_; }
  std::size_t indexed_kmers() const { return positions_.size(); }

  /// Encodes a k-mer to its code; returns -1 if it contains unknown bases.
  std::int64_t Encode(std::string_view kmer) const;

  /// All genome positions of the exact k-mer (empty when absent or
  /// malformed).
  std::span<const std::uint32_t> Lookup(std::string_view kmer) const;
  std::span<const std::uint32_t> LookupCode(std::int64_t code) const;

 private:
  int k_;
  std::size_t genome_length_;
  std::vector<std::uint32_t> offsets_;    // 4^k + 1
  std::vector<std::uint32_t> positions_;  // CSR payload
};

}  // namespace gkgpu

#endif  // GKGPU_MAPPER_INDEX_HPP
