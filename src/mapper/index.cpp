#include "mapper/index.hpp"

#include <cassert>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "encode/dna.hpp"

namespace gkgpu {

KmerIndex::KmerIndex(std::string_view genome, int k)
    : k_(k), genome_length_(genome.size()) {
  assert(k >= 4 && k <= 14);
  // The CSR payload stores genome positions as uint32 (see
  // KmerIndex::kMaxGenomeLength); a longer genome would silently truncate
  // every position past 4 GiB.  Refuse construction instead — genomes past
  // this bound need the per-chromosome index sharding planned in ROADMAP.md
  // (one sub-4-Gbp index per chromosome shard, looked up by shard).
  static_assert(
      std::is_same_v<decltype(positions_)::value_type, std::uint32_t>,
      "positions_ is the uint32 CSR payload kMaxGenomeLength guards; "
      "widening it instead of sharding doubles index memory — see the "
      "per-chromosome sharding plan in ROADMAP.md");
  if (genome.size() > kMaxGenomeLength) {
    throw std::invalid_argument(
        "KmerIndex: genome length " + std::to_string(genome.size()) +
        " exceeds the uint32 position limit (" +
        std::to_string(kMaxGenomeLength) +
        " bases); split the reference into per-chromosome index shards "
        "(ROADMAP.md) instead of indexing the concatenated text");
  }
  const std::size_t buckets = std::size_t{1} << (2 * k);
  offsets_.assign(buckets + 1, 0);
  if (genome.size() < static_cast<std::size_t>(k)) {
    offsets_view_ = offsets_;
    positions_view_ = positions_;
    return;
  }
  const std::size_t n_kmers = genome.size() - static_cast<std::size_t>(k) + 1;

  // Pass 1: counts.  A rolling code with an "invalid until" marker skips
  // windows containing 'N' without rescanning.
  const std::uint64_t mask = (std::uint64_t{1} << (2 * k)) - 1;
  std::uint64_t code = 0;
  std::size_t valid_from = 0;  // first position where the window is clean
  for (std::size_t i = 0; i < genome.size(); ++i) {
    const unsigned c = BaseToCode(genome[i]);
    if (c >= 4) {
      valid_from = i + 1;
      code = (code << 2) & mask;
      continue;
    }
    code = ((code << 2) | c) & mask;
    if (i + 1 >= static_cast<std::size_t>(k) &&
        i + 1 - static_cast<std::size_t>(k) >= valid_from) {
      ++offsets_[code + 1];
    }
  }
  for (std::size_t b = 0; b < buckets; ++b) offsets_[b + 1] += offsets_[b];
  positions_.resize(offsets_[buckets]);

  // Pass 2: fill.
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  code = 0;
  valid_from = 0;
  for (std::size_t i = 0; i < genome.size(); ++i) {
    const unsigned c = BaseToCode(genome[i]);
    if (c >= 4) {
      valid_from = i + 1;
      code = (code << 2) & mask;
      continue;
    }
    code = ((code << 2) | c) & mask;
    if (i + 1 >= static_cast<std::size_t>(k) &&
        i + 1 - static_cast<std::size_t>(k) >= valid_from) {
      const std::size_t start = i + 1 - static_cast<std::size_t>(k);
      positions_[cursor[code]++] = static_cast<std::uint32_t>(start);
    }
  }
  (void)n_kmers;
  offsets_view_ = offsets_;
  positions_view_ = positions_;
}

KmerIndex KmerIndex::View(int k, std::size_t genome_length,
                          std::span<const std::uint32_t> offsets,
                          std::span<const std::uint32_t> positions) {
  if (k < 4 || k > 14) {
    throw std::invalid_argument("KmerIndex::View: k out of range [4, 14]");
  }
  if (genome_length > kMaxGenomeLength) {
    throw std::invalid_argument(
        "KmerIndex::View: genome length exceeds the uint32 position limit");
  }
  const std::size_t buckets = std::size_t{1} << (2 * k);
  if (offsets.size() != buckets + 1) {
    throw std::invalid_argument(
        "KmerIndex::View: offset table holds " +
        std::to_string(offsets.size()) + " entries, expected 4^k + 1 = " +
        std::to_string(buckets + 1));
  }
  if (offsets.front() != 0 || offsets.back() != positions.size()) {
    throw std::invalid_argument(
        "KmerIndex::View: CSR offsets do not span the position array");
  }
  KmerIndex idx;
  idx.k_ = k;
  idx.genome_length_ = genome_length;
  idx.offsets_view_ = offsets;
  idx.positions_view_ = positions;
  return idx;
}

KmerIndex KmerIndex::FromCsr(int k, std::size_t genome_length,
                             std::vector<std::uint32_t> offsets,
                             std::vector<std::uint32_t> positions) {
  // Reuse View's shape validation, then adopt the storage.
  (void)View(k, genome_length, offsets, positions);
  KmerIndex idx;
  idx.k_ = k;
  idx.genome_length_ = genome_length;
  idx.offsets_ = std::move(offsets);
  idx.positions_ = std::move(positions);
  idx.offsets_view_ = idx.offsets_;
  idx.positions_view_ = idx.positions_;
  return idx;
}

std::int64_t KmerIndex::Encode(std::string_view kmer) const {
  if (kmer.size() != static_cast<std::size_t>(k_)) return -1;
  std::uint64_t code = 0;
  for (const char ch : kmer) {
    const unsigned c = BaseToCode(ch);
    if (c >= 4) return -1;
    code = (code << 2) | c;
  }
  return static_cast<std::int64_t>(code);
}

std::span<const std::uint32_t> KmerIndex::Lookup(std::string_view kmer) const {
  return LookupCode(Encode(kmer));
}

std::span<const std::uint32_t> KmerIndex::LookupCode(std::int64_t code) const {
  if (code < 0 ||
      static_cast<std::size_t>(code) + 1 >= offsets_view_.size()) {
    return {};
  }
  const std::uint32_t b = offsets_view_[static_cast<std::size_t>(code)];
  const std::uint32_t e = offsets_view_[static_cast<std::size_t>(code) + 1];
  return positions_view_.subspan(b, e - b);
}

}  // namespace gkgpu
