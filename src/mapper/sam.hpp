// Minimal SAM output for mapping results (header + one alignment line per
// mapping with an NM edit-distance tag), so the examples produce inspectable
// mapper output.
#ifndef GKGPU_MAPPER_SAM_HPP
#define GKGPU_MAPPER_SAM_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "mapper/mapper.hpp"

namespace gkgpu {

void WriteSamHeader(std::ostream& out, std::string_view ref_name,
                    std::int64_t ref_length);

/// One alignment line with an explicit read name — the streaming
/// pipeline's SAM sink emits records incrementally as batches retire.
void WriteSamRecord(std::ostream& out, std::string_view read_name,
                    std::string_view seq, std::int64_t pos, int edit_distance,
                    std::string_view ref_name);

void WriteSamRecords(std::ostream& out, const std::vector<std::string>& reads,
                     const std::vector<MappingRecord>& records,
                     std::string_view ref_name);

/// Full-fidelity variant: recomputes each mapping's banded alignment
/// against `genome` and emits the real CIGAR instead of a bare match run.
void WriteSamRecordsWithCigar(std::ostream& out,
                              const std::vector<std::string>& reads,
                              const std::vector<MappingRecord>& records,
                              std::string_view ref_name,
                              std::string_view genome);

}  // namespace gkgpu

#endif  // GKGPU_MAPPER_SAM_HPP
