// SAM output for mapping results: header (multi-chromosome @SQ lines, an
// optional @RG read group) plus full-fidelity alignment records with FLAG
// semantics — strand bits for reverse-complement mappings, the complete
// paired-end bit set (0x1/0x2/0x4/0x8/0x10/0x20/0x40/0x80) plus the
// duplicate bit (0x400), RNEXT/PNEXT/TLEN, and NM / RG:Z tags.  Records
// carrying FLAG 0x10 emit the reverse-complemented SEQ and reversed QUAL,
// per the spec.  Every record carries a computed MAPQ (mapper/mapq.hpp):
// the record-list writers derive it from each read's candidate
// multiplicity and best/second-best edit gap, and unmapped records carry
// MAPQ 0 — 255 ("unavailable") is never emitted.
#ifndef GKGPU_MAPPER_SAM_HPP
#define GKGPU_MAPPER_SAM_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/reference.hpp"
#include "mapper/mapper.hpp"
#include "mapper/mapq.hpp"

namespace gkgpu {

// FLAG bits (SAM spec 1.4).
inline constexpr int kSamPaired = 0x1;
inline constexpr int kSamProperPair = 0x2;
inline constexpr int kSamUnmapped = 0x4;
inline constexpr int kSamMateUnmapped = 0x8;
inline constexpr int kSamReverse = 0x10;
inline constexpr int kSamMateReverse = 0x20;
inline constexpr int kSamFirstInPair = 0x40;
inline constexpr int kSamSecondInPair = 0x80;
inline constexpr int kSamSecondary = 0x100;
inline constexpr int kSamDuplicate = 0x400;

/// Which records of a multi-mapping read the single-end writers emit.
enum class SecondaryPolicy {
  /// Only the primary placement — the record AssignMapqs scores (first at
  /// the best edit count) — one record per mapped read.  The default.
  kBestOnly,
  /// Every verified placement: the primary as under kBestOnly, every
  /// other placement flagged 0x100 with MAPQ 0 (a secondary placement is
  /// by definition not the one to trust).  CLI --report-secondary.
  kReportSecondary,
};

/// One alignment line, all eleven mandatory fields plus the tags this
/// library emits.  Positions are 0-based (the writer adds the SAM +1);
/// pos/pnext < 0 print as 0 (unplaced).  The caller supplies SEQ/QUAL
/// already oriented to match FLAG 0x10 — the writer performs no
/// reorientation of its own.
struct SamRecord {
  std::string_view qname;
  int flags = 0;
  std::string_view rname = "*";
  std::int64_t pos = -1;
  /// Computed mapping quality; 0 (not 255) for unmapped or unscored
  /// records, so no emitted line ever claims "MAPQ unavailable".
  int mapq = 0;
  std::string_view cigar = "*";
  std::string_view rnext = "*";
  std::int64_t pnext = -1;
  std::int64_t tlen = 0;
  std::string_view seq = "*";
  std::string_view qual = "*";
  int nm = -1;                  // NM:i: edit distance; < 0 omits the tag
  std::string_view read_group;  // RG:Z:; empty omits the tag
};

void WriteSam(std::ostream& out, const SamRecord& rec);

/// Headers; a non-empty `read_group` adds "@RG\tID:<read_group>".
void WriteSamHeader(std::ostream& out, std::string_view ref_name,
                    std::int64_t ref_length, std::string_view read_group = {});

/// Multi-chromosome header: one @SQ line per chromosome, in table order.
void WriteSamHeader(std::ostream& out, const ReferenceSet& ref,
                    std::string_view read_group = {});

/// One single-end alignment line with an explicit read name and a bare
/// <len>M CIGAR — the streaming pipeline's SAM sink emits records
/// incrementally as batches retire.  `seq` must already be oriented
/// (reverse-complemented when flags carry 0x10).
void WriteSamRecord(std::ostream& out, std::string_view read_name, int flags,
                    std::string_view seq, std::int64_t pos, int edit_distance,
                    int mapq, std::string_view ref_name,
                    std::string_view read_group = {});

/// One single-end alignment line with a caller-supplied CIGAR (e.g.
/// produced by the pipeline's verification workers).
void WriteSamLine(std::ostream& out, std::string_view read_name, int flags,
                  std::string_view seq, std::string_view chrom_name,
                  std::int64_t local_pos, int edit_distance, int mapq,
                  std::string_view cigar, std::string_view read_group = {});

/// Full-fidelity single record: recomputes the banded alignment of the
/// oriented `seq` against `ref_window` (the reference bases the mapping
/// covers) and emits the real CIGAR.  Shared by the blocking SAM writers
/// and the streaming sink so both paths produce byte-identical records.
void WriteSamAlignment(std::ostream& out, std::string_view read_name,
                       int flags, std::string_view seq,
                       std::string_view chrom_name, std::int64_t local_pos,
                       int edit_distance, int mapq,
                       std::string_view ref_window,
                       std::string_view read_group = {});

/// The record-list writers below require `records` grouped by read (each
/// read's mappings contiguous) — the order every mapping driver produces —
/// compute per-record MAPQ from the group's multiplicity and edit gap
/// (AssignMapqs), capped at `mapq_cap`, and emit the group under
/// `policy`: the primary record only (kBestOnly, default) or every
/// placement with secondaries flagged 0x100 at MAPQ 0.
void WriteSamRecords(std::ostream& out, const std::vector<std::string>& reads,
                     const std::vector<MappingRecord>& records,
                     std::string_view ref_name,
                     int mapq_cap = kDefaultMapqCap,
                     SecondaryPolicy policy = SecondaryPolicy::kBestOnly);

/// Full-fidelity variant: recomputes each mapping's banded alignment
/// against `genome` and emits the real CIGAR instead of a bare match run.
/// Reverse-strand records (MappingRecord::strand) emit FLAG 0x10 and the
/// reverse-complemented sequence.
void WriteSamRecordsWithCigar(std::ostream& out,
                              const std::vector<std::string>& reads,
                              const std::vector<MappingRecord>& records,
                              std::string_view ref_name,
                              std::string_view genome,
                              int mapq_cap = kDefaultMapqCap,
                              SecondaryPolicy policy =
                                  SecondaryPolicy::kBestOnly);

/// Multi-chromosome variant: records carry global (concatenated) positions;
/// each line is addressed chromosome-locally via `ref`.  `names` supplies
/// the read names ("read<i>" when empty).
void WriteSamRecordsMultiChrom(std::ostream& out,
                               const std::vector<std::string>& reads,
                               const std::vector<std::string>& names,
                               const std::vector<MappingRecord>& records,
                               const ReferenceSet& ref,
                               std::string_view read_group = {},
                               int mapq_cap = kDefaultMapqCap,
                               SecondaryPolicy policy =
                                   SecondaryPolicy::kBestOnly);

}  // namespace gkgpu

#endif  // GKGPU_MAPPER_SAM_HPP
