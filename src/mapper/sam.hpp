// Minimal SAM output for mapping results (header + one alignment line per
// mapping with an NM edit-distance tag), so the examples produce inspectable
// mapper output.  Multi-chromosome aware: headers emit one @SQ line per
// chromosome and records are addressed (chromosome, local position) through
// a ReferenceSet.
#ifndef GKGPU_MAPPER_SAM_HPP
#define GKGPU_MAPPER_SAM_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "io/reference.hpp"
#include "mapper/mapper.hpp"

namespace gkgpu {

void WriteSamHeader(std::ostream& out, std::string_view ref_name,
                    std::int64_t ref_length);

/// Multi-chromosome header: one @SQ line per chromosome, in table order.
void WriteSamHeader(std::ostream& out, const ReferenceSet& ref);

/// One alignment line with an explicit read name — the streaming
/// pipeline's SAM sink emits records incrementally as batches retire.
void WriteSamRecord(std::ostream& out, std::string_view read_name,
                    std::string_view seq, std::int64_t pos, int edit_distance,
                    std::string_view ref_name);

/// One alignment line with a caller-supplied CIGAR (e.g. produced by the
/// pipeline's verification workers).
void WriteSamLine(std::ostream& out, std::string_view read_name,
                  std::string_view seq, std::string_view chrom_name,
                  std::int64_t local_pos, int edit_distance,
                  std::string_view cigar);

/// Full-fidelity single record: recomputes the banded alignment of `seq`
/// against `ref_window` (the reference bases the mapping covers) and emits
/// the real CIGAR.  Shared by the blocking SAM writers and the streaming
/// sink so both paths produce byte-identical records.
void WriteSamAlignment(std::ostream& out, std::string_view read_name,
                       std::string_view seq, std::string_view chrom_name,
                       std::int64_t local_pos, int edit_distance,
                       std::string_view ref_window);

void WriteSamRecords(std::ostream& out, const std::vector<std::string>& reads,
                     const std::vector<MappingRecord>& records,
                     std::string_view ref_name);

/// Full-fidelity variant: recomputes each mapping's banded alignment
/// against `genome` and emits the real CIGAR instead of a bare match run.
void WriteSamRecordsWithCigar(std::ostream& out,
                              const std::vector<std::string>& reads,
                              const std::vector<MappingRecord>& records,
                              std::string_view ref_name,
                              std::string_view genome);

/// Multi-chromosome variant: records carry global (concatenated) positions;
/// each line is addressed chromosome-locally via `ref`.  `names` supplies
/// the read names ("read<i>" when empty).
void WriteSamRecordsMultiChrom(std::ostream& out,
                               const std::vector<std::string>& reads,
                               const std::vector<std::string>& names,
                               const std::vector<MappingRecord>& records,
                               const ReferenceSet& ref);

}  // namespace gkgpu

#endif  // GKGPU_MAPPER_SAM_HPP
