#include "mapper/mapper.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>

#include "align/banded.hpp"
#include "mapper/minimizer.hpp"
#include "obs/names.hpp"
#include "encode/revcomp.hpp"
#include "pipeline/candidate_packer.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace gkgpu {

ReadMapper::ReadMapper(ReferenceSet reference, MapperConfig config)
    : ref_(std::move(reference)),
      config_(config),
      index_(SeedIndex::Build(ref_,
                              SeedConfig{config.k, config.seed_mode,
                                         config.minimizer_w,
                                         config.shard_max_bp})),
      verify_pool_(std::make_unique<ThreadPool>(config.verify_threads,
                                                "gkgpu-verify")) {}

ReadMapper::ReadMapper(std::string genome, MapperConfig config)
    : ReadMapper(ReferenceSet("synthetic_chr1", std::move(genome)), config) {}

ReadMapper::ReadMapper(ReferenceSet reference, SeedIndex index,
                       MapperConfig config)
    : ref_(std::move(reference)),
      config_(config),
      index_(std::move(index)),
      verify_pool_(std::make_unique<ThreadPool>(config.verify_threads,
                                                "gkgpu-verify")) {
  if (index_.k() != config_.k) {
    throw std::invalid_argument(
        "ReadMapper: preloaded index was built with k=" +
        std::to_string(index_.k()) + " but the mapper is configured for k=" +
        std::to_string(config_.k));
  }
  if (index_.genome_length() != static_cast<std::size_t>(ref_.length())) {
    throw std::invalid_argument(
        "ReadMapper: preloaded index covers " +
        std::to_string(index_.genome_length()) +
        " bases but the reference holds " + std::to_string(ref_.length()));
  }
  // Seeding must run the strategy the persisted CSR encodes.
  config_.seed_mode = index_.mode();
  if (index_.mode() == SeedMode::kMinimizer) {
    config_.minimizer_w = index_.minimizer_w();
  }
}

ReadMapper::~ReadMapper() = default;

void ReadMapper::CollectDense(std::string_view read,
                              std::vector<std::int64_t>* candidates) const {
  const int L = static_cast<int>(read.size());
  const int k = config_.k;
  // Pigeonhole seeding: e+1 non-overlapping k-mers guarantee that a read
  // within the threshold shares at least one exact seed with its locus.
  const int max_seeds = L / k;
  const int n_seeds = std::min(config_.error_threshold + 1, max_seeds);
  const std::int64_t genome_len = ref_.length();
  const std::size_t shards = index_.shard_count();
  for (int s = 0; s < n_seeds; ++s) {
    const int offset = s * k;
    const std::int64_t code = index_.shard(0).Encode(
        read.substr(static_cast<std::size_t>(offset),
                    static_cast<std::size_t>(k)));
    if (code < 0) continue;
    for (std::size_t sh = 0; sh < shards; ++sh) {
      const std::int64_t shard_base = index_.plan().shard(sh).text_offset;
      for (const std::uint32_t pos : index_.shard(sh).LookupCode(code)) {
        // Shard-local hit -> global candidate window.  Because shards tile
        // chromosome groups, every window that survives the junction check
        // below lies inside one shard; the merged set across shards is
        // exactly what one monolithic index would seed.
        const std::int64_t start =
            shard_base + static_cast<std::int64_t>(pos) - offset;
        if (start < 0 || start + L > genome_len) continue;
        // A window reaching across a chromosome junction would align the
        // read against a chimeric segment; drop it at seeding time.
        if (ref_.chromosome_count() > 1 &&
            !ref_.WindowWithinChromosome(start, L)) {
          continue;
        }
        candidates->push_back(start);
      }
    }
  }
}

void ReadMapper::CollectMinimizerSeeds(
    std::string_view read, std::vector<std::int64_t>* candidates) const {
  const int L = static_cast<int>(read.size());
  const std::int64_t genome_len = ref_.length();
  const std::size_t shards = index_.shard_count();
  thread_local std::vector<MinimizerHit> hits;
  hits.clear();
  CollectMinimizers(read, index_.k(), index_.minimizer_w(), &hits);
  for (const MinimizerHit& m : hits) {
    for (std::size_t sh = 0; sh < shards; ++sh) {
      const std::int64_t shard_base = index_.plan().shard(sh).text_offset;
      for (const std::uint32_t pos :
           index_.shard(sh).LookupCode(static_cast<std::int64_t>(m.code))) {
        // Anchor the read so its minimizer coincides with the reference's:
        // both sides select the same k-mer of any shared error-free window
        // of w+k-1 bases (selection is a pure function of window content).
        const std::int64_t start = shard_base +
                                   static_cast<std::int64_t>(pos) -
                                   static_cast<std::int64_t>(m.pos);
        if (start < 0 || start + L > genome_len) continue;
        if (ref_.chromosome_count() > 1 &&
            !ref_.WindowWithinChromosome(start, L)) {
          continue;
        }
        candidates->push_back(start);
      }
    }
  }
}

void ReadMapper::CollectCandidates(std::string_view read,
                                   std::vector<std::int64_t>* candidates)
    const {
  candidates->clear();
  if (config_.seed_mode == SeedMode::kMinimizer) {
    CollectMinimizerSeeds(read, candidates);
  } else {
    CollectDense(read, candidates);
  }
  std::sort(candidates->begin(), candidates->end());
  candidates->erase(std::unique(candidates->begin(), candidates->end()),
                    candidates->end());
}

void ReadMapper::CollectCandidatesOriented(
    std::string_view read, std::string* rc,
    std::vector<std::int64_t>* scratch,
    std::vector<OrientedCandidate>* candidates) const {
  candidates->clear();
  CollectCandidates(read, scratch);
  for (const std::int64_t pos : *scratch) candidates->push_back({pos, 0});
  // Reverse strand: a read sampled from the reverse strand equals the
  // reverse complement of a forward window, so seeding rc(read) against
  // the forward index finds exactly those loci.
  ReverseComplementInto(read, rc);
  CollectCandidates(*rc, scratch);
  for (const std::int64_t pos : *scratch) candidates->push_back({pos, 1});
}

void ReadMapper::PublishSeedObservability(const MappingStats& stats) const {
  obs::CandidatesSeeded().Inc(stats.candidates_total);
  obs::SeederCandidates(SeedModeName(config_.seed_mode))
      .Inc(stats.candidates_total);
  for (std::size_t s = 0; s < stats.shard_candidates.size(); ++s) {
    obs::ShardCandidates(std::to_string(s)).Inc(stats.shard_candidates[s]);
  }
  obs::ReadsMapped().Inc(stats.mapped_reads);
  obs::ReadsUnmapped().Inc(stats.reads - stats.mapped_reads);
}

MappingStats ReadMapper::MapReads(const std::vector<std::string>& reads,
                                  GateKeeperGpuEngine* filter,
                                  std::vector<MappingRecord>* out) {
  MappingStats stats;
  stats.reads = reads.size();
  if (index_.shard_count() > 1) {
    stats.shard_candidates.assign(index_.shard_count(), 0);
  }
  WallTimer total;
  if (filter != nullptr && !filter->HasReference()) {
    WallTimer prep;
    filter->LoadReference(ref_.text());
    stats.preprocess_seconds += prep.Seconds();
  }

  std::vector<bool> read_mapped(reads.size(), false);
  const std::size_t batch_reads = std::max<std::size_t>(
      1, filter != nullptr ? filter->config().max_reads_per_batch
                           : config_.max_reads_per_batch);

  // Batch read tables are *views* into the caller's read set — the
  // filtration layer consumes string_views end to end, so no per-batch
  // read strings are materialized (only the reverse complements, which
  // genuinely are new sequences).
  std::vector<std::string_view> batch;
  std::vector<std::string> batch_rc;      // reverse complements
  std::vector<CandidatePair> candidates;  // (read-in-batch, strand, position)
  std::vector<OrientedCandidate> one_read_cands;
  std::vector<std::int64_t> seed_scratch;

  for (std::size_t base = 0; base < reads.size(); base += batch_reads) {
    const std::size_t count = std::min(batch_reads, reads.size() - base);

    // --- Seeding: fill the batch buffers (Sec. 3.5: "we fill the buffers
    // with multiple reads and their candidate location indices"), both
    // orientations per read. ---
    WallTimer seed_timer;
    batch.assign(reads.begin() + static_cast<std::ptrdiff_t>(base),
                 reads.begin() + static_cast<std::ptrdiff_t>(base + count));
    batch_rc.resize(count);
    candidates.clear();
    for (std::size_t i = 0; i < count; ++i) {
      CollectCandidatesOriented(batch[i], &batch_rc[i], &seed_scratch,
                                &one_read_cands);
      for (const OrientedCandidate oc : one_read_cands) {
        candidates.push_back(
            {static_cast<std::uint32_t>(i), oc.strand, 0, oc.pos});
      }
    }
    stats.seeding_seconds += seed_timer.Seconds();
    stats.candidates_total += candidates.size();
    if (!stats.shard_candidates.empty()) {
      for (const CandidatePair& c : candidates) {
        ++stats.shard_candidates[index_.plan().ShardOf(c.ref_pos)];
      }
    }

    // --- Pre-alignment filtering (optional). ---
    std::vector<PairResult> decisions;
    if (filter != nullptr) {
      const FilterRunStats fs =
          filter->FilterCandidates(batch, candidates, &decisions);
      stats.filter_seconds += fs.filter_seconds;
      stats.filter_kernel_seconds += fs.kernel_seconds;
      stats.filter_encode_seconds += fs.host_encode_seconds;
      stats.filter_copy_seconds += fs.host_copy_seconds;
      stats.rejected_pairs += fs.rejected;
      stats.bypassed_pairs += fs.bypassed;
    }

    // --- Verification: banded edit distance on surviving pairs, each on
    // the strand it was seeded on. ---
    WallTimer verify_timer;
    std::vector<MappingRecord> found(candidates.size(),
                                     MappingRecord{0, 0, -1, 0});
    std::atomic<std::uint64_t> verified{0};
    verify_pool_->ParallelFor(0, candidates.size(), 256, [&](std::size_t i0,
                                                             std::size_t i1) {
      std::uint64_t local_verified = 0;
      for (std::size_t i = i0; i < i1; ++i) {
        if (filter != nullptr && decisions[i].accept == 0) continue;
        ++local_verified;
        const CandidatePair c = candidates[i];
        const std::string_view read =
            c.strand != 0 ? std::string_view(batch_rc[c.read_index])
                          : batch[c.read_index];
        const std::string_view segment(
            ref_.text().data() + c.ref_pos, read.size());
        const int dist =
            BandedEditDistance(read, segment, config_.error_threshold);
        if (dist >= 0) {
          found[i] = MappingRecord{
              static_cast<std::uint32_t>(base + c.read_index), c.ref_pos,
              dist, c.strand};
        }
      }
      verified.fetch_add(local_verified, std::memory_order_relaxed);
    });
    stats.verification_seconds += verify_timer.Seconds();
    stats.verification_pairs += verified.load();

    for (const MappingRecord& m : found) {
      if (m.edit_distance < 0) continue;
      ++stats.mappings;
      read_mapped[m.read_index] = true;
      if (out != nullptr) out->push_back(m);
    }
  }

  stats.mapped_reads = static_cast<std::uint64_t>(
      std::count(read_mapped.begin(), read_mapped.end(), true));
  stats.total_seconds = total.Seconds();
  PublishSeedObservability(stats);
  return stats;
}

MappingStats ReadMapper::MapReadsStreaming(
    const std::vector<std::string>& reads, GateKeeperGpuEngine* filter,
    pipeline::PipelineConfig pcfg, std::vector<MappingRecord>* out) {
  if (filter == nullptr) {
    throw std::invalid_argument(
        "MapReadsStreaming: the streaming path is the filter integration "
        "and requires an engine");
  }
  const std::size_t expected =
      static_cast<std::size_t>(filter->config().read_length);
  for (const std::string& r : reads) {
    if (r.size() != expected) {
      throw std::invalid_argument(
          "MapReadsStreaming: every read must match the engine's configured "
          "read length " + std::to_string(expected));
    }
  }

  MappingStats stats;
  stats.reads = reads.size();
  if (index_.shard_count() > 1) {
    stats.shard_candidates.assign(index_.shard_count(), 0);
  }
  WallTimer total;
  if (!filter->HasReference()) {
    WallTimer prep;
    filter->LoadReference(ref_.text());
    stats.preprocess_seconds += prep.Seconds();
  }

  pcfg.reference_text = ref_.text();
  pcfg.reference_fingerprint = ref_.fingerprint();
  pcfg.verify = true;
  pcfg.verify_threshold = config_.error_threshold;
  pipeline::StreamingPipeline pipe(filter, pcfg);

  // Source: seed reads in input order and pack candidate batches (the
  // read-table dedup and mid-read batch-split carry-over live in
  // PackCandidateBatch).
  pipeline::CandidateStream stream;
  std::size_t next_read = 0;
  std::size_t cur_read = 0;
  double seed_seconds = 0.0;
  std::uint64_t candidates_total = 0;
  std::string rc_buf;
  std::vector<std::int64_t> seed_scratch;

  const pipeline::BatchSource source = [&](pipeline::PairBatch* batch) {
    WallTimer seed_timer;
    const std::size_t target =
        std::max<std::size_t>(1, std::min(batch->target_size,
                                          pipe.config().batch_size));
    pipeline::PackCandidateBatch(
        batch, target, &stream,
        [&](std::vector<OrientedCandidate>* positions) -> const std::string* {
          if (next_read >= reads.size()) return nullptr;
          cur_read = next_read++;
          CollectCandidatesOriented(reads[cur_read], &rc_buf, &seed_scratch,
                                    positions);
          candidates_total += positions->size();
          if (!stats.shard_candidates.empty()) {
            for (const OrientedCandidate& oc : *positions) {
              ++stats.shard_candidates[index_.plan().ShardOf(oc.pos)];
            }
          }
          return &reads[cur_read];
        },
        [&](const OrientedCandidate&, bool) {
          batch->read_index.push_back(static_cast<std::uint32_t>(cur_read));
        });
    seed_seconds += seed_timer.Seconds();
    return batch->size() > 0;
  };

  std::vector<bool> read_mapped(reads.size(), false);
  const pipeline::BatchSink sink = [&](pipeline::PairBatch&& batch) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.edits[i] < 0) continue;
      ++stats.mappings;
      read_mapped[batch.read_index[i]] = true;
      if (out != nullptr) {
        out->push_back(MappingRecord{batch.read_index[i],
                                     batch.candidates[i].ref_pos,
                                     batch.edits[i],
                                     batch.candidates[i].strand});
      }
    }
  };

  const pipeline::PipelineStats ps = pipe.Run(source, sink);
  stats.seeding_seconds = seed_seconds;
  stats.candidates_total = candidates_total;
  stats.verification_pairs = ps.verified_pairs;
  stats.rejected_pairs = ps.rejected;
  stats.bypassed_pairs = ps.bypassed;
  stats.filter_seconds = ps.filter_seconds;
  stats.filter_kernel_seconds = ps.kernel_seconds;
  stats.filter_encode_seconds = ps.encode_seconds;
  stats.verification_seconds = ps.verify_seconds;
  stats.mapped_reads = static_cast<std::uint64_t>(
      std::count(read_mapped.begin(), read_mapped.end(), true));
  stats.total_seconds = total.Seconds();
  PublishSeedObservability(stats);
  return stats;
}

}  // namespace gkgpu
