// (w,k) minimizer selection ("winnowing"): of every window of w
// consecutive k-mers, keep the one with the smallest hashed code.  Both
// the reference index and the read-side seeder run the same selection, so
// any window of w+k-1 error-free bases shared between a read and its locus
// selects the same k-mer on both sides — the sampling-based analogue of
// the pigeonhole guarantee, at a fraction of the index density and of the
// candidate volume on repeat-heavy references.
//
// Properties relied on elsewhere:
//   * selection is a pure function of window content (hash ordering with a
//     rightmost-position tie-break), so identical substrings select
//     identical relative positions — the read/reference agreement the
//     seeding guarantee rests on;
//   * k-mers containing 'N' invalidate every window they touch, matching
//     the dense index's refusal to index them;
//   * codes are hashed (splitmix64 finisher) before comparison, so
//     low-complexity poly-A/poly-T tracts do not monopolize selection the
//     way lexicographic minima would.
#ifndef GKGPU_MAPPER_MINIMIZER_HPP
#define GKGPU_MAPPER_MINIMIZER_HPP

#include <cstdint>
#include <string_view>
#include <vector>

namespace gkgpu {

/// One selected minimizer: the k-mer's 2-bit code and its start position
/// relative to the scanned sequence.
struct MinimizerHit {
  std::uint64_t code = 0;
  std::uint32_t pos = 0;
};

/// The window-ordering hash (splitmix64 finisher): invertible mix of the
/// 2-bit k-mer code.  Deterministic across runs and hosts — the selection
/// it induces is part of the on-disk index contract.
inline std::uint64_t MinimizerHash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Appends the (w,k) minimizers of `seq` to `out`, in ascending position
/// order, each selected position reported once.  Windows containing a
/// k-mer with an unknown base select nothing.  `k` in [4, 14], `w` >= 1;
/// sequences shorter than w+k-1 yield no minimizers.
void CollectMinimizers(std::string_view seq, int k, int w,
                       std::vector<MinimizerHit>* out);

}  // namespace gkgpu

#endif  // GKGPU_MAPPER_MINIMIZER_HPP
