// Simulated CUDA unified memory: host-backed allocations visible through a
// single pointer, with page-granular residency tracking, cudaMemAdvise-
// style advice, asynchronous prefetching, and on-demand migration cost
// accounting.  The GateKeeper-GPU engine uses exactly the flow the paper
// describes: set preferred location to the device, prefetch input buffers
// on separate streams ahead of the kernel, and let results migrate back on
// host access.
//
// Real data always lives in host DRAM (there is no physical device); what
// the simulation tracks is *where the pages would be* and what the
// migrations would cost on the configured PCIe link.
#ifndef GKGPU_GPUSIM_UNIFIED_MEMORY_HPP
#define GKGPU_GPUSIM_UNIFIED_MEMORY_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/device_props.hpp"

namespace gkgpu::gpusim {

class Device;

enum class MemLocation { kHost, kDevice };

enum class MemAdvice {
  kNone,
  kPreferredLocationDevice,
  kPreferredLocationHost,
  kReadMostly,
};

/// Migration statistics for one buffer (aggregated by Device).
struct MigrationStats {
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t page_faults = 0;
  std::uint64_t prefetched_pages = 0;
};

class UnifiedBuffer {
 public:
  /// Unified-memory page granularity (64 KiB, Pascal's fault group size).
  static constexpr std::size_t kPageBytes = 64 * 1024;

  UnifiedBuffer(Device* home, std::size_t bytes);
  ~UnifiedBuffer();

  UnifiedBuffer(const UnifiedBuffer&) = delete;
  UnifiedBuffer& operator=(const UnifiedBuffer&) = delete;

  std::size_t bytes() const { return bytes_; }
  void* data() { return storage_.get(); }
  const void* data() const { return storage_.get(); }
  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(storage_.get());
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(storage_.get());
  }

  void Advise(MemAdvice advice) { advice_ = advice; }
  MemAdvice advice() const { return advice_; }

  /// Simulates cudaMemPrefetchAsync to the device: pages move in bulk at
  /// link bandwidth with no fault overhead.  Returns the simulated seconds
  /// the transfer occupies on the link (charged to the issuing stream by
  /// the caller).  No-op (returns 0) when the device lacks prefetch
  /// support, mirroring the engine's capability check.
  double PrefetchToDevice();
  double PrefetchToHost();

  /// Simulates the kernel touching the whole buffer: non-resident pages
  /// fault in one group at a time (bandwidth + per-fault latency) on
  /// demand-paging devices, or the whole allocation migrates on Kepler.
  /// Returns simulated seconds added to the kernel's critical path.
  double FaultToDevice();

  /// Simulates host code touching the buffer after a kernel (results read
  /// back).  Pages resident on the device migrate back.
  double FaultToHost();

  /// Marks every page dirty-on-device without cost (used for buffers the
  /// kernel writes; the cost is paid when the host faults them back).
  void MarkDeviceResident();

  /// Marks every page host-resident without cost.  The engine calls this
  /// after host code rewrites a reused batch buffer; with preferred-
  /// location advice the CPU writes stream over the bus rather than
  /// migrating pages, and the refill cost is charged by the next prefetch.
  void MarkHostResident();

  const MigrationStats& stats() const { return stats_; }
  std::size_t pages() const { return pages_.size(); }
  std::size_t device_resident_pages() const;

 private:
  double MigrateAll(MemLocation target, bool faulting);

  Device* home_;
  std::size_t bytes_;
  std::unique_ptr<std::byte[]> storage_;
  std::vector<bool> pages_;  // true = resident on device
  MemAdvice advice_ = MemAdvice::kNone;
  MigrationStats stats_;
};

}  // namespace gkgpu::gpusim

#endif  // GKGPU_GPUSIM_UNIFIED_MEMORY_HPP
