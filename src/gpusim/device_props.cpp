#include "gpusim/device_props.hpp"

namespace gkgpu::gpusim {

double DeviceProperties::pcie_bytes_per_second() const {
  // Raw per-lane payload rate (GB/s): gen2 = 0.5, gen3 = ~0.985.
  const double per_lane_gb = pcie_gen >= 3 ? 0.985 : 0.5;
  return per_lane_gb * pcie_lanes * 0.75 * 1e9;
}

DeviceProperties MakeGtx1080Ti() {
  DeviceProperties p;
  p.name = "GeForce GTX 1080 Ti";
  p.compute_major = 6;
  p.compute_minor = 1;
  p.sm_count = 28;             // 3584 CUDA cores
  p.cores_per_sm = 128;
  p.max_threads_per_sm = 2048;
  p.max_blocks_per_sm = 32;
  p.regs_per_sm = 64 * 1024;
  p.shared_mem_per_sm = 96 * 1024;
  p.global_mem_bytes = std::size_t{10} * 1024 * 1024 * 1024;  // per paper
  p.core_clock_ghz = 1.58;
  p.mem_bandwidth_gb_s = 484.0;
  p.pcie_gen = 3;
  p.pcie_lanes = 16;
  p.idle_power_mw = 8900.0;    // matches the paper's observed minimum
  p.tdp_mw = 250000.0;
  return p;
}

DeviceProperties MakeTeslaK20X() {
  DeviceProperties p;
  p.name = "Tesla K20X";
  p.compute_major = 3;
  p.compute_minor = 5;
  p.sm_count = 14;             // 2688 CUDA cores
  p.cores_per_sm = 192;
  p.max_threads_per_sm = 2048;
  p.max_blocks_per_sm = 16;
  p.regs_per_sm = 64 * 1024;
  p.shared_mem_per_sm = 48 * 1024;
  p.global_mem_bytes = std::size_t{5} * 1024 * 1024 * 1024;  // per paper
  p.core_clock_ghz = 0.732;
  p.mem_bandwidth_gb_s = 250.0;
  p.pcie_gen = 2;
  p.pcie_lanes = 16;
  p.idle_power_mw = 30100.0;   // matches the paper's observed minimum
  p.tdp_mw = 235000.0;
  return p;
}

}  // namespace gkgpu::gpusim
