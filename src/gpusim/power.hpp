// Activity-based power model.  nvprof-style sampling is emulated by
// recording one sample per simulated time slice: idle power between
// kernels, and idle + (TDP - idle) * activity while a kernel is resident.
// Activity folds in occupancy, warp execution efficiency and the kernel's
// arithmetic intensity, which is how the paper's observed behaviour
// (power grows with read length; encoding actor barely matters at 100 bp)
// emerges from the model.
#ifndef GKGPU_GPUSIM_POWER_HPP
#define GKGPU_GPUSIM_POWER_HPP

#include <cstdint>

#include "util/stats.hpp"

namespace gkgpu::gpusim {

struct PowerReport {
  double min_mw = 0.0;
  double max_mw = 0.0;
  double avg_mw = 0.0;
  std::uint64_t samples = 0;
};

class PowerModel {
 public:
  PowerModel(double idle_mw, double tdp_mw)
      : idle_mw_(idle_mw), tdp_mw_(tdp_mw) {}

  /// Records a kernel interval with `activity` in [0, 1] lasting
  /// `duration_s` simulated seconds; sampled at 10 ms granularity with a
  /// deterministic ramp (power rises as the device clocks up), so min/max
  /// spread resembles nvprof traces.
  void SampleKernel(double activity, double duration_s);

  /// Records an idle gap between kernels.
  void SampleIdle(double duration_s);

  PowerReport Report() const;
  void Reset() { stat_ = {}; }

 private:
  void AddSamples(double mw, double duration_s);

  double idle_mw_;
  double tdp_mw_;
  gkgpu::RunningStat stat_;
};

}  // namespace gkgpu::gpusim

#endif  // GKGPU_GPUSIM_POWER_HPP
