#include "gpusim/power.hpp"

#include <algorithm>
#include <cmath>

namespace gkgpu::gpusim {

namespace {
constexpr double kSampleSeconds = 0.010;  // nvprof-like 10 ms sampling
}  // namespace

void PowerModel::AddSamples(double mw, double duration_s) {
  const int n = std::max(1, static_cast<int>(duration_s / kSampleSeconds));
  for (int i = 0; i < n; ++i) stat_.Add(mw);
}

void PowerModel::SampleKernel(double activity, double duration_s) {
  activity = std::clamp(activity, 0.0, 1.0);
  const double peak = idle_mw_ + (tdp_mw_ - idle_mw_) * activity;
  // Deterministic clock-ramp up to the sustained draw.  The device runs in
  // persistence mode (Sec. 4.2), so every kernel interval ends at the
  // steady-state sample for its activity — short benchmark runs report the
  // same max as the paper's 30M-pair sustained runs — while the leading
  // ramped samples keep the average below the max, as in Table 6.
  const int n = std::max(1, static_cast<int>(duration_s / kSampleSeconds));
  for (int i = 0; i < n; ++i) {
    const double ramp = 1.0 - std::exp(-(i + 1) / 4.0);
    stat_.Add(idle_mw_ + (peak - idle_mw_) * ramp);
  }
  stat_.Add(peak);
}

void PowerModel::SampleIdle(double duration_s) {
  AddSamples(idle_mw_, duration_s);
}

PowerReport PowerModel::Report() const {
  PowerReport r;
  r.min_mw = stat_.min();
  r.max_mw = stat_.max();
  r.avg_mw = stat_.mean();
  r.samples = stat_.count();
  return r;
}

}  // namespace gkgpu::gpusim
