// Static properties of the simulated GPGPU devices.
//
// The paper evaluates on two machines:
//   Setup 1: 8x NVIDIA GeForce GTX 1080 Ti (Pascal, CC 6.1, 10 GB,
//            PCIe gen3 x16) — supports memory advice + async prefetching.
//   Setup 2: 4x NVIDIA Tesla K20X (Kepler, CC 3.5, 5 GB, PCIe gen2 x16) —
//            prefetching unsupported, whole-allocation unified-memory
//            migration semantics.
// We reproduce both profiles; values the paper states (memory sizes, CC,
// PCIe generation) are taken from the paper even where they differ from
// the vendor datasheet, since they parameterize the paper's experiments.
#ifndef GKGPU_GPUSIM_DEVICE_PROPS_HPP
#define GKGPU_GPUSIM_DEVICE_PROPS_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace gkgpu::gpusim {

struct DeviceProperties {
  std::string name;
  int compute_major = 6;
  int compute_minor = 1;
  int sm_count = 28;
  int cores_per_sm = 128;
  int warp_size = 32;
  int max_threads_per_block = 1024;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  std::int64_t regs_per_sm = 64 * 1024;
  int reg_alloc_granularity = 256;
  std::size_t shared_mem_per_sm = 96 * 1024;
  std::size_t global_mem_bytes = 0;
  double core_clock_ghz = 1.0;
  double mem_bandwidth_gb_s = 300.0;
  int pcie_gen = 3;
  int pcie_lanes = 16;
  double idle_power_mw = 9000.0;
  double tdp_mw = 250000.0;

  int max_warps_per_sm() const { return max_threads_per_sm / warp_size; }

  /// Memory advice + asynchronous prefetching need CC >= 6.x (Pascal),
  /// exactly the capability gate GateKeeper-GPU checks at configuration.
  bool supports_prefetch() const { return compute_major >= 6; }

  /// Pascal-class unified memory pages on demand; Kepler migrates whole
  /// allocations at kernel launch.
  bool supports_demand_paging() const { return compute_major >= 6; }

  /// Effective host<->device bandwidth in bytes/second for the PCIe link
  /// (~75% of the raw per-lane rate, the usual achievable fraction).
  double pcie_bytes_per_second() const;

  /// Peak simple-ALU throughput in operations/second (cores x clock).
  double peak_ops_per_second() const {
    return static_cast<double>(sm_count) * cores_per_sm * core_clock_ghz * 1e9;
  }
};

/// GeForce GTX 1080 Ti as configured in the paper's Setup 1.
DeviceProperties MakeGtx1080Ti();

/// Tesla K20X as configured in the paper's Setup 2.
DeviceProperties MakeTeslaK20X();

}  // namespace gkgpu::gpusim

#endif  // GKGPU_GPUSIM_DEVICE_PROPS_HPP
