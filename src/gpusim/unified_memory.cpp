#include "gpusim/unified_memory.hpp"

#include <algorithm>

#include "gpusim/device.hpp"

namespace gkgpu::gpusim {

namespace {
// Latency of servicing one 64 KiB fault group on top of the raw copy
// (driver round-trip + page-table update); Pascal-era measurements put the
// effective overhead in the tens of microseconds per group.
constexpr double kFaultLatencySeconds = 25e-6;
}  // namespace

UnifiedBuffer::UnifiedBuffer(Device* home, std::size_t bytes)
    : home_(home),
      bytes_(bytes),
      storage_(std::make_unique<std::byte[]>(std::max<std::size_t>(bytes, 1))),
      pages_((bytes + kPageBytes - 1) / kPageBytes, false) {}

UnifiedBuffer::~UnifiedBuffer() {
  if (home_ != nullptr) {
    home_->free_mem_ = std::min(home_->props().global_mem_bytes,
                                home_->free_mem_ + bytes_);
  }
}

std::size_t UnifiedBuffer::device_resident_pages() const {
  return static_cast<std::size_t>(
      std::count(pages_.begin(), pages_.end(), true));
}

double UnifiedBuffer::MigrateAll(MemLocation target, bool faulting) {
  const bool to_device = target == MemLocation::kDevice;
  std::uint64_t moved_pages = 0;
  for (std::size_t p = 0; p < pages_.size(); ++p) {
    if (pages_[p] != to_device) {
      pages_[p] = to_device;
      ++moved_pages;
    }
  }
  if (moved_pages == 0) return 0.0;
  const std::uint64_t moved_bytes =
      std::min<std::uint64_t>(moved_pages * kPageBytes, bytes_);
  double seconds = static_cast<double>(moved_bytes) /
                   home_->props().pcie_bytes_per_second();
  if (faulting) {
    // Demand paging services one fault group at a time; without it (bulk
    // prefetch or Kepler whole-allocation migration) only bandwidth counts.
    seconds += static_cast<double>(moved_pages) * kFaultLatencySeconds;
    home_->AccountFault(moved_pages, moved_bytes, to_device);
  } else {
    home_->AccountFault(0, moved_bytes, to_device);
    stats_.prefetched_pages += moved_pages;
  }
  home_->stats().transfer_seconds += seconds;
  if (to_device) {
    stats_.h2d_bytes += moved_bytes;
    if (faulting) stats_.page_faults += moved_pages;
  } else {
    stats_.d2h_bytes += moved_bytes;
    if (faulting) stats_.page_faults += moved_pages;
  }
  return seconds;
}

double UnifiedBuffer::PrefetchToDevice() {
  if (!home_->props().supports_prefetch()) return 0.0;
  return MigrateAll(MemLocation::kDevice, /*faulting=*/false);
}

double UnifiedBuffer::PrefetchToHost() {
  if (!home_->props().supports_prefetch()) return 0.0;
  return MigrateAll(MemLocation::kHost, /*faulting=*/false);
}

double UnifiedBuffer::FaultToDevice() {
  // Kepler-class devices migrate the whole allocation at launch without
  // per-page fault servicing; Pascal pages on demand.
  const bool faulting = home_->props().supports_demand_paging();
  return MigrateAll(MemLocation::kDevice, faulting);
}

double UnifiedBuffer::FaultToHost() {
  const bool faulting = home_->props().supports_demand_paging();
  return MigrateAll(MemLocation::kHost, faulting);
}

void UnifiedBuffer::MarkDeviceResident() {
  std::fill(pages_.begin(), pages_.end(), true);
}

void UnifiedBuffer::MarkHostResident() {
  std::fill(pages_.begin(), pages_.end(), false);
}

}  // namespace gkgpu::gpusim
