#include "gpusim/device.hpp"

#include <algorithm>
#include <cmath>

namespace gkgpu::gpusim {

namespace {
// Fixed kernel launch overhead (driver + scheduling), a few microseconds on
// real hardware.
constexpr double kLaunchOverheadSeconds = 5e-6;
}  // namespace

Device::Device(DeviceProperties props, unsigned host_threads)
    : props_(std::move(props)),
      pool_(host_threads, "gkgpu-dev"),
      power_(props_.idle_power_mw, props_.tdp_mw),
      free_mem_(props_.global_mem_bytes) {}

std::unique_ptr<UnifiedBuffer> Device::AllocateUnified(std::size_t bytes) {
  auto buf = std::make_unique<UnifiedBuffer>(this, bytes);
  free_mem_ -= std::min(free_mem_, bytes);
  return buf;
}

double Device::AccountKernel(const LaunchConfig& cfg, const KernelCost& cost,
                             double fault_seconds) {
  const OccupancyResult occ =
      Occupancy(std::max(1, cfg.block_dim), cost);
  // Warp execution efficiency: the tail wave and intra-warp divergence cost
  // a little; longer-running threads hide more latency (matches the paper's
  // 74-80% at 100 bp vs >98% at 250 bp).
  const double intensity =
      std::min(1.0, cost.ops_per_thread / 12000.0);
  const double warp_eff = 0.72 + 0.27 * intensity;
  const double occupancy_derate = 0.5 + 0.5 * occ.occupancy;
  const double effective_ops =
      props_.peak_ops_per_second() * warp_eff * occupancy_derate;
  const double total_threads = static_cast<double>(cfg.total_threads());
  const double compute_s = total_threads * cost.ops_per_thread / effective_ops;
  const double mem_s = total_threads * cost.bytes_per_thread /
                       (props_.mem_bandwidth_gb_s * 1e9);
  const double busy = std::max(compute_s, mem_s) + kLaunchOverheadSeconds +
                      fault_seconds;

  stats_.kernel_seconds += busy;
  stats_.kernels_launched += 1;
  stats_.achieved_occupancy_sum +=
      occ.occupancy * (0.93 + 0.05 * intensity);  // scheduling losses
  stats_.warp_efficiency_sum += warp_eff;
  // SMs stay busy as long as there are waves in flight.
  const double waves =
      total_threads /
      (static_cast<double>(props_.sm_count) * occ.active_warps_per_sm *
       props_.warp_size);
  stats_.sm_efficiency_sum += std::min(1.0, 0.9 + 0.02 * waves);

  // Electrical activity: arithmetic-heavy kernels (long reads) pull the
  // sustained draw toward TDP, and lower-clocked parts draw a smaller
  // fraction of theirs — reproducing Table 6's 100-vs-250 bp gap and the
  // Setup 1 / Setup 2 split.  Calibrated against the paper's nvprof data.
  const double activity =
      std::min(1.0, (0.3 + cost.ops_per_thread / 11000.0) *
                        (props_.core_clock_ghz / 1.6));
  power_.SampleKernel(activity, busy);
  return busy;
}

double Device::AccountTransfer(std::size_t bytes, bool host_to_device) {
  const double seconds =
      static_cast<double>(bytes) / props_.pcie_bytes_per_second();
  stats_.transfer_seconds += seconds;
  if (host_to_device) {
    stats_.h2d_bytes += bytes;
  } else {
    stats_.d2h_bytes += bytes;
  }
  return seconds;
}

void Device::AccountIdle(double seconds) { power_.SampleIdle(seconds); }

void Device::AccountFault(std::uint64_t pages, std::uint64_t bytes,
                          bool host_to_device) {
  stats_.page_faults += pages;
  if (host_to_device) {
    stats_.h2d_bytes += bytes;
  } else {
    stats_.d2h_bytes += bytes;
  }
}

void Device::ResetStats() {
  stats_ = DeviceStats{};
  power_.Reset();
}

std::vector<std::unique_ptr<Device>> MakeSetup1(int count,
                                                unsigned host_threads) {
  std::vector<std::unique_ptr<Device>> devices;
  for (int i = 0; i < count; ++i) {
    devices.push_back(std::make_unique<Device>(MakeGtx1080Ti(), host_threads));
  }
  return devices;
}

std::vector<std::unique_ptr<Device>> MakeSetup2(int count,
                                                unsigned host_threads) {
  std::vector<std::unique_ptr<Device>> devices;
  for (int i = 0; i < count; ++i) {
    devices.push_back(std::make_unique<Device>(MakeTeslaK20X(), host_threads));
  }
  return devices;
}

}  // namespace gkgpu::gpusim
