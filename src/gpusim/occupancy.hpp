// CUDA occupancy-calculator rules: given a kernel's resource usage, how
// many warps can be resident per SM.  Reproduces the paper's Sec. 5.4.1
// analysis (48 registers/thread at 1024 threads/block -> 50% theoretical
// occupancy on both device generations).
#ifndef GKGPU_GPUSIM_OCCUPANCY_HPP
#define GKGPU_GPUSIM_OCCUPANCY_HPP

#include <cstddef>
#include <string_view>

#include "gpusim/device_props.hpp"

namespace gkgpu::gpusim {

enum class OccupancyLimiter { kWarps, kBlocks, kRegisters, kSharedMemory };

struct OccupancyResult {
  int blocks_per_sm = 0;
  int active_warps_per_sm = 0;
  int max_warps_per_sm = 0;
  double occupancy = 0.0;  // active / max
  OccupancyLimiter limited_by = OccupancyLimiter::kWarps;
};

std::string_view LimiterName(OccupancyLimiter limiter);

/// Theoretical occupancy for a kernel with the given per-thread register
/// count, block size, and per-block shared memory.
OccupancyResult ComputeOccupancy(const DeviceProperties& props,
                                 int threads_per_block, int regs_per_thread,
                                 std::size_t shared_mem_per_block);

}  // namespace gkgpu::gpusim

#endif  // GKGPU_GPUSIM_OCCUPANCY_HPP
