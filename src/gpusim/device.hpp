// The simulated GPGPU device: a CUDA-shaped execution environment backed by
// a host thread pool.
//
// Functional semantics: Launch() really executes the kernel functor for
// every (block, thread) coordinate, in parallel on host worker threads, so
// results are bit-exact with the algorithm under test.
//
// Timing semantics: each launch also advances a simulated device timeline
// using a roofline model — compute time from an operation estimate per
// thread scaled by occupancy-derated core throughput, memory time from
// bytes touched over device bandwidth, plus a fixed launch overhead — and
// page-fault / transfer costs from the unified-memory simulation.  Kernel
// time ("kt" in the paper's tables) is read from this timeline; wall-clock
// host time ("ft") is measured for real around it.
#ifndef GKGPU_GPUSIM_DEVICE_HPP
#define GKGPU_GPUSIM_DEVICE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/device_props.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/power.hpp"
#include "gpusim/unified_memory.hpp"
#include "util/threadpool.hpp"

namespace gkgpu::gpusim {

/// 1-D launch geometry (GateKeeper-GPU launches 1-D grids of 1-D blocks).
struct LaunchConfig {
  std::int64_t grid_dim = 1;
  int block_dim = 1;
  std::int64_t total_threads() const {
    return grid_dim * static_cast<std::int64_t>(block_dim);
  }
};

/// Per-thread coordinates handed to the kernel functor.
struct ThreadCtx {
  std::int64_t block_idx;
  int thread_idx;
  int block_dim;
  std::int64_t grid_dim;
  std::int64_t GlobalId() const {
    return block_idx * static_cast<std::int64_t>(block_dim) + thread_idx;
  }
};

/// Cost declaration for the timing model: how much work one thread does.
struct KernelCost {
  double ops_per_thread = 100.0;    // simple ALU operations
  double bytes_per_thread = 64.0;   // device-memory traffic
  int regs_per_thread = 48;         // GateKeeper-GPU's measured worst case
  std::size_t shared_mem_per_block = 0;  // the kernel uses none
};

/// Accumulated per-device counters, reset per run by the engine.
struct DeviceStats {
  double kernel_seconds = 0.0;     // simulated in-kernel time
  double transfer_seconds = 0.0;   // simulated PCIe time (prefetch + fault)
  std::uint64_t kernels_launched = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t page_faults = 0;
  double achieved_occupancy_sum = 0.0;  // averaged over launches
  double warp_efficiency_sum = 0.0;
  double sm_efficiency_sum = 0.0;
};

class Device {
 public:
  /// `host_threads` sizes the worker pool that stands in for the SMs
  /// (0 = hardware concurrency).
  explicit Device(DeviceProperties props, unsigned host_threads = 0);

  const DeviceProperties& props() const { return props_; }

  /// Free simulated global memory (allocations via AllocateUnified count
  /// against it; the engine's batch sizing queries this, as the paper's
  /// system-configuration step does).
  std::size_t FreeGlobalMem() const { return free_mem_; }

  std::unique_ptr<UnifiedBuffer> AllocateUnified(std::size_t bytes);

  /// Launches the kernel: executes functor(ThreadCtx) for every thread in
  /// the grid (parallelized over blocks) and advances the simulated device
  /// clock.  `fault_seconds` — unified-memory stall time the launch incurs
  /// (from UnifiedBuffer::FaultToDevice on unprefetched inputs) — is added
  /// to the kernel's critical path.  Returns the simulated kernel seconds.
  template <typename Kernel>
  double Launch(const LaunchConfig& cfg, const KernelCost& cost,
                double fault_seconds, Kernel&& kernel) {
    pool_.ParallelFor(
        0, static_cast<std::size_t>(cfg.grid_dim), 1,
        [&](std::size_t b0, std::size_t b1) {
          for (std::size_t b = b0; b < b1; ++b) {
            for (int t = 0; t < cfg.block_dim; ++t) {
              kernel(ThreadCtx{static_cast<std::int64_t>(b), t, cfg.block_dim,
                               cfg.grid_dim});
            }
          }
        });
    return AccountKernel(cfg, cost, fault_seconds);
  }

  /// Timing-model-only variant (used when the caller already executed the
  /// work, e.g. replaying a measured batch).
  double AccountKernel(const LaunchConfig& cfg, const KernelCost& cost,
                       double fault_seconds);

  /// Charges a bulk PCIe transfer (returns simulated seconds).
  double AccountTransfer(std::size_t bytes, bool host_to_device);

  /// Charges idle time between batches (feeds the power model's minimum).
  void AccountIdle(double seconds);

  void AccountFault(std::uint64_t pages, std::uint64_t bytes,
                    bool host_to_device);

  DeviceStats& stats() { return stats_; }
  const DeviceStats& stats() const { return stats_; }
  void ResetStats();

  PowerModel& power() { return power_; }
  const PowerModel& power() const { return power_; }

  ThreadPool& pool() { return pool_; }

  /// Theoretical occupancy of a kernel with the given cost on this device.
  OccupancyResult Occupancy(int threads_per_block,
                            const KernelCost& cost) const {
    return ComputeOccupancy(props_, threads_per_block, cost.regs_per_thread,
                            cost.shared_mem_per_block);
  }

 private:
  friend class UnifiedBuffer;

  DeviceProperties props_;
  ThreadPool pool_;
  PowerModel power_;
  DeviceStats stats_;
  std::size_t free_mem_;
};

/// Builds the paper's Setup 1 (`count` GTX 1080 Ti devices, up to 8) or
/// Setup 2 (`count` Tesla K20X devices, up to 4).
std::vector<std::unique_ptr<Device>> MakeSetup1(int count,
                                                unsigned host_threads = 0);
std::vector<std::unique_ptr<Device>> MakeSetup2(int count,
                                                unsigned host_threads = 0);

}  // namespace gkgpu::gpusim

#endif  // GKGPU_GPUSIM_DEVICE_HPP
