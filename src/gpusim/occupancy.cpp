#include "gpusim/occupancy.hpp"

#include <algorithm>

namespace gkgpu::gpusim {

std::string_view LimiterName(OccupancyLimiter limiter) {
  switch (limiter) {
    case OccupancyLimiter::kWarps: return "warps";
    case OccupancyLimiter::kBlocks: return "blocks";
    case OccupancyLimiter::kRegisters: return "registers";
    case OccupancyLimiter::kSharedMemory: return "shared memory";
  }
  return "?";
}

OccupancyResult ComputeOccupancy(const DeviceProperties& props,
                                 int threads_per_block, int regs_per_thread,
                                 std::size_t shared_mem_per_block) {
  OccupancyResult r;
  r.max_warps_per_sm = props.max_warps_per_sm();
  const int warps_per_block =
      (threads_per_block + props.warp_size - 1) / props.warp_size;

  // Limit 1: resident warps / threads.
  const int by_warps = r.max_warps_per_sm / warps_per_block;
  // Limit 2: resident blocks.
  const int by_blocks = props.max_blocks_per_sm;
  // Limit 3: register file.  Registers are allocated per warp with a
  // granularity of reg_alloc_granularity.
  int by_regs = by_blocks;
  if (regs_per_thread > 0) {
    const std::int64_t regs_per_warp =
        ((static_cast<std::int64_t>(regs_per_thread) * props.warp_size +
          props.reg_alloc_granularity - 1) /
         props.reg_alloc_granularity) *
        props.reg_alloc_granularity;
    const std::int64_t warps_by_regs = props.regs_per_sm / regs_per_warp;
    by_regs = static_cast<int>(warps_by_regs / warps_per_block);
  }
  // Limit 4: shared memory.
  int by_smem = by_blocks;
  if (shared_mem_per_block > 0) {
    by_smem = static_cast<int>(props.shared_mem_per_sm / shared_mem_per_block);
  }

  r.blocks_per_sm =
      std::max(0, std::min({by_warps, by_blocks, by_regs, by_smem}));
  r.active_warps_per_sm = r.blocks_per_sm * warps_per_block;
  r.occupancy = r.max_warps_per_sm > 0
                    ? static_cast<double>(r.active_warps_per_sm) /
                          r.max_warps_per_sm
                    : 0.0;
  if (r.blocks_per_sm == by_regs && by_regs <= by_warps && by_regs <= by_smem) {
    r.limited_by = OccupancyLimiter::kRegisters;
  } else if (r.blocks_per_sm == by_smem && by_smem <= by_warps) {
    r.limited_by = OccupancyLimiter::kSharedMemory;
  } else if (r.blocks_per_sm == by_blocks && by_blocks < by_warps) {
    r.limited_by = OccupancyLimiter::kBlocks;
  } else {
    r.limited_by = OccupancyLimiter::kWarps;
  }
  return r;
}

}  // namespace gkgpu::gpusim
