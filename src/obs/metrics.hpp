// Process-wide metrics registry: the one snapshot API behind `gkgpu
// stats`, `--metrics-json`, the end-of-run tables and the bench funnel /
// tail-latency fields.
//
// Three instrument kinds, all cheap enough to be always-on:
//   * Counter   — monotone u64, relaxed fetch_add;
//   * Gauge     — i64 set/add, relaxed stores;
//   * Histogram — fixed 1-2-5 log buckets (1 µs .. 100 s), sharded by
//                 thread hash so concurrent observers touch distinct
//                 cache lines; shards merge only at snapshot time, where
//                 p50/p95/p99 are interpolated within the landing bucket.
//
// Handles are trivially copyable pointers into registry-owned storage;
// acquiring one (Registry::counter/gauge/histogram) takes a mutex and is
// a cold-path operation — hot loops hold handles, not names.  The same
// (name, labels) pair always resolves to the same cell, so independent
// call sites accumulate into one time series.  Instrumentation can be
// disabled process-wide (GKGPU_NO_METRICS=1 or SetEnabled(false)): the
// hot-path cost collapses to one relaxed flag load, which is what the
// bench overhead gate compares against.
#ifndef GKGPU_OBS_METRICS_HPP
#define GKGPU_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gkgpu::obs {

/// Instrumentation master switch (default on; GKGPU_NO_METRICS=1 in the
/// environment flips the initial state).  Relaxed: a toggle mid-run may
/// lose a handful of events, never corrupt state.
bool Enabled() noexcept;
void SetEnabled(bool enabled) noexcept;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Sorted (key, value) label pairs identifying one series in a family.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/// Histogram bucket upper bounds in seconds: 1-2-5 per decade from 1 µs
/// to 100 s.  The final +Inf bucket is implicit (index kBucketCount).
inline constexpr int kBucketCount = 25;
const double* BucketBounds() noexcept;  // kBucketCount entries
int BucketIndex(double v) noexcept;     // 0..kBucketCount (+Inf)

inline constexpr int kHistogramShards = 8;

struct alignas(64) HistogramShard {
  std::atomic<std::uint64_t> buckets[kBucketCount + 1] = {};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
};

struct HistogramCell {
  HistogramShard shards[kHistogramShards];
};

/// This thread's shard index (hashed thread id, computed once).
int ShardIndex() noexcept;

}  // namespace detail

class Counter {
 public:
  Counter() = default;
  void Inc(std::uint64_t n = 1) const noexcept {
    if (cell_ != nullptr && Enabled()) {
      cell_->fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const noexcept {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class Registry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void Set(std::int64_t v) const noexcept {
    if (cell_ != nullptr && Enabled()) {
      cell_->store(v, std::memory_order_relaxed);
    }
  }
  void Add(std::int64_t d) const noexcept {
    if (cell_ != nullptr && Enabled()) {
      cell_->fetch_add(d, std::memory_order_relaxed);
    }
  }
  std::int64_t value() const noexcept {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  /// Records one observation (seconds for latency series; any unit works
  /// as long as one series sticks to one unit).
  void Observe(double v) const noexcept {
    if (cell_ == nullptr || !Enabled()) return;
    detail::HistogramShard& s = cell_->shards[detail::ShardIndex()];
    s.buckets[detail::BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

/// Merged view of one histogram series at snapshot time.
struct HistogramSnapshot {
  /// Per-bucket (non-cumulative) counts; index kBucketCount is +Inf.
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Quantile estimate (q in [0, 1]), linearly interpolated inside the
  /// landing bucket; observations beyond the last finite bound clamp to
  /// it.  Returns 0 when the series is empty.
  double Quantile(double q) const;
  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

struct SampleSnapshot {
  LabelSet labels;
  double value = 0.0;  // counter / gauge
  std::optional<HistogramSnapshot> histogram;
};

struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<SampleSnapshot> samples;
};

struct MetricsSnapshot {
  std::vector<FamilySnapshot> families;

  /// Prometheus text exposition (version 0.0.4): HELP/TYPE comments,
  /// histogram series expanded into _bucket{le=}/_sum/_count.
  std::string RenderPrometheus() const;
  /// The same snapshot as one JSON object (families keyed by name).
  std::string RenderJson() const;

  const FamilySnapshot* Find(std::string_view name) const;
  /// Scalar value of (name, labels); 0 when absent.  Histogram families
  /// return the observation count.
  double Value(std::string_view name, const LabelSet& labels = {}) const;
  /// Sum over every series of the family; 0 when absent.
  double Total(std::string_view name) const;
};

/// The registry.  One process-wide instance (Global()); tests may build
/// private ones.  Handle acquisition and Snapshot() lock; handle use is
/// lock-free.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  Counter counter(std::string_view name, std::string_view help,
                  LabelSet labels = {});
  Gauge gauge(std::string_view name, std::string_view help,
              LabelSet labels = {});
  Histogram histogram(std::string_view name, std::string_view help,
                      LabelSet labels = {});

  /// Consistent read point: every series' cells are read once, under the
  /// registry lock, into plain values.  Families keep registration
  /// order; series within a family keep first-use order.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every cell (handles stay valid) — bench/test isolation.
  void Reset();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace gkgpu::obs

#endif  // GKGPU_OBS_METRICS_HPP
