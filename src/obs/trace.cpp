#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#ifdef __linux__
#include <unistd.h>
#endif

namespace gkgpu::obs {

namespace {

struct TraceEvent {
  const char* name;
  const char* category;
  std::uint64_t ts_us;   // relative to collector start
  std::uint64_t dur_us;
  std::uint64_t tid;
};

// Cap the event buffer so a pathological run can't eat the heap; the
// JSON notes the drop count when the cap is hit.
constexpr std::size_t kMaxEvents = 1u << 20;

struct Collector {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::unordered_map<std::uint64_t, std::string> thread_names;
  std::uint64_t dropped = 0;
  std::chrono::steady_clock::time_point epoch;
};

// Non-null while tracing is active.  Acquire/release pairs the pointer
// with the collector's initialized contents.
std::atomic<Collector*> g_collector{nullptr};

// Survives Stop/Start cycles so names registered before StartTracing
// (threads usually outlive trace sessions) still label the output.
std::mutex g_names_mu;
std::unordered_map<std::uint64_t, std::string>& PersistentNames() {
  static auto* names = new std::unordered_map<std::uint64_t, std::string>;
  return *names;
}

std::uint64_t CurrentTid() noexcept {
  static thread_local const std::uint64_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffffu;
  return tid;
}

std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

std::uint64_t ProcessId() noexcept {
#ifdef __linux__
  return static_cast<std::uint64_t>(::getpid());
#else
  return 1;
#endif
}

}  // namespace

bool TracingActive() noexcept {
  return g_collector.load(std::memory_order_relaxed) != nullptr;
}

void StartTracing() {
  auto* c = new Collector;
  c->epoch = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(g_names_mu);
    c->thread_names = PersistentNames();
  }
  g_collector.exchange(c, std::memory_order_acq_rel);
  // A previous collector is never deleted: a racing Span may still hold
  // its pointer.  One leaked collector per trace session, which is once
  // per process run in practice.
}

void RegisterTraceThreadName(const std::string& name) {
  const std::uint64_t tid = CurrentTid();
  {
    std::lock_guard<std::mutex> lock(g_names_mu);
    PersistentNames()[tid] = name;
  }
  Collector* c = g_collector.load(std::memory_order_acquire);
  if (c != nullptr) {
    std::lock_guard<std::mutex> lock(c->mu);
    c->thread_names[tid] = name;
  }
}

void Span::Close() noexcept {
  if (name_ == nullptr) return;
  const char* name = name_;
  const char* category = category_;
  name_ = nullptr;
  Collector* c = g_collector.load(std::memory_order_acquire);
  if (c == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.tid = CurrentTid();
  std::lock_guard<std::mutex> lock(c->mu);
  const auto since_epoch = start_ - c->epoch;
  const auto dur = end - start_;
  ev.ts_us = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(since_epoch)
             .count()));
  ev.dur_us = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(dur).count()));
  if (c->events.size() >= kMaxEvents) {
    ++c->dropped;
    return;
  }
  c->events.push_back(ev);
}

std::string StopTracing() {
  Collector* c = g_collector.exchange(nullptr, std::memory_order_acq_rel);
  if (c == nullptr) return "{\"traceEvents\":[]}\n";
  // A racing Span that loaded the pointer before the exchange may still
  // append under c->mu; taking the lock here serializes with it, and the
  // collector is never freed (see StartTracing), so a late append after
  // rendering is merely lost, not a use-after-free.
  std::lock_guard<std::mutex> lock(c->mu);
  const std::uint64_t pid = ProcessId();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : c->thread_names) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
        << EscapeJson(name) << "\"}}";
  }
  for (const auto& ev : c->events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << EscapeJson(ev.name) << "\",\"cat\":\""
        << EscapeJson(ev.category) << "\",\"ph\":\"X\",\"ts\":" << ev.ts_us
        << ",\"dur\":" << ev.dur_us << ",\"pid\":" << pid
        << ",\"tid\":" << ev.tid << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"";
  if (c->dropped > 0) {
    out << ",\"metadata\":{\"dropped_events\":" << c->dropped << "}";
  }
  out << "}\n";
  return out.str();
}

bool StopTracingToFile(const std::string& path) {
  const std::string json = StopTracing();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << json;
  return static_cast<bool>(out);
}

}  // namespace gkgpu::obs
