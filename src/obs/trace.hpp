// Span-based stage tracer emitting Chrome trace_event JSON
// (chrome://tracing, Perfetto).  Disabled by default: the global
// collector pointer is null and a Span construction is one relaxed load.
// `--trace-json <file>` turns it on for the run and writes the file when
// tracing stops.
//
// Usage:
//   obs::StartTracing();
//   { obs::Span span("filter-batch", "pipeline"); ...work...; }
//   obs::StopTracingToFile("trace.json");
//
// Spans become "X" (complete) events with microsecond timestamps; thread
// names registered via obs::SetCurrentThreadName (or util/threadname)
// become "M" thread_name metadata events, so stage threads show up
// labeled in the timeline.
#ifndef GKGPU_OBS_TRACE_HPP
#define GKGPU_OBS_TRACE_HPP

#include <chrono>
#include <cstdint>
#include <string>

namespace gkgpu::obs {

bool TracingActive() noexcept;

/// Starts collecting spans (clears any previously collected events).
void StartTracing();

/// Stops collecting and renders the collected events as Chrome
/// trace_event JSON.  Returns the JSON string (also usable by tests).
std::string StopTracing();

/// StopTracing() + write to `path`.  Returns false on I/O failure.
bool StopTracingToFile(const std::string& path);

/// Records `name` as this thread's label in future trace output.  Cheap
/// no-op while tracing is inactive is NOT guaranteed — callers register
/// once per thread at spawn, not in hot loops.
void RegisterTraceThreadName(const std::string& name);

/// RAII span: records one complete ("X") event from construction to
/// destruction.  `name` and `category` must be string literals or
/// otherwise outlive the span (they are captured by pointer at close).
class Span {
 public:
  Span(const char* name, const char* category) noexcept
      : name_(nullptr), category_(nullptr) {
    if (TracingActive()) {
      name_ = name;
      category_ = category;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~Span() { Close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span early (idempotent).
  void Close() noexcept;

 private:
  const char* name_;
  const char* category_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace gkgpu::obs

#endif  // GKGPU_OBS_TRACE_HPP
