#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

namespace gkgpu::obs {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("GKGPU_NO_METRICS");
  return !(env != nullptr && env[0] != '\0' && env[0] != '0');
}()};

}  // namespace

bool Enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) noexcept {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace detail {

namespace {
// 1-2-5 per decade, 1e-6 .. 1e2 seconds (kBucketCount finite bounds).
constexpr double kBounds[kBucketCount] = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1,
    1e0,  2e0,  5e0,  1e1,  2e1,  5e1,  1e2};
}  // namespace

const double* BucketBounds() noexcept { return kBounds; }

int BucketIndex(double v) noexcept {
  if (!(v <= kBounds[kBucketCount - 1])) return kBucketCount;  // +Inf, NaN
  const double* end = kBounds + kBucketCount;
  return static_cast<int>(std::lower_bound(kBounds, end, v) - kBounds);
}

int ShardIndex() noexcept {
  static thread_local const int idx = static_cast<int>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      static_cast<std::size_t>(kHistogramShards));
  return idx;
}

}  // namespace detail

namespace {

LabelSet SortedLabels(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

struct Series {
  LabelSet labels;
  // Exactly one of these is active, per family type.
  std::atomic<std::uint64_t> counter{0};
  std::atomic<std::int64_t> gauge{0};
  std::unique_ptr<detail::HistogramCell> histogram;
};

struct Family {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  // deque: stable addresses as series are appended.
  std::deque<Series> series;
};

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Labels + one extra pair (for the histogram `le` label).
std::string FormatLabelsWith(const LabelSet& labels, const std::string& key,
                             const std::string& value) {
  LabelSet all = labels;
  all.emplace_back(key, value);
  return FormatLabels(all);
}

std::string FormatValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  const double* bounds = detail::BucketBounds();
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    const std::uint64_t next = cum + in_bucket;
    if (static_cast<double>(next) >= target) {
      // +Inf bucket (or the last finite one): clamp to the last bound.
      if (i >= static_cast<std::size_t>(detail::kBucketCount)) {
        return bounds[detail::kBucketCount - 1];
      }
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum = next;
  }
  return bounds[detail::kBucketCount - 1];
}

const FamilySnapshot* MetricsSnapshot::Find(std::string_view name) const {
  for (const auto& f : families) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

double MetricsSnapshot::Value(std::string_view name,
                              const LabelSet& labels) const {
  const FamilySnapshot* f = Find(name);
  if (f == nullptr) return 0.0;
  const LabelSet want = SortedLabels(labels);
  for (const auto& s : f->samples) {
    if (s.labels == want) {
      return s.histogram ? static_cast<double>(s.histogram->count) : s.value;
    }
  }
  return 0.0;
}

double MetricsSnapshot::Total(std::string_view name) const {
  const FamilySnapshot* f = Find(name);
  if (f == nullptr) return 0.0;
  double total = 0.0;
  for (const auto& s : f->samples) {
    total += s.histogram ? static_cast<double>(s.histogram->count) : s.value;
  }
  return total;
}

std::string MetricsSnapshot::RenderPrometheus() const {
  std::ostringstream out;
  for (const auto& f : families) {
    out << "# HELP " << f.name << " " << f.help << "\n";
    out << "# TYPE " << f.name << " ";
    switch (f.type) {
      case MetricType::kCounter: out << "counter"; break;
      case MetricType::kGauge: out << "gauge"; break;
      case MetricType::kHistogram: out << "histogram"; break;
    }
    out << "\n";
    for (const auto& s : f.samples) {
      if (s.histogram) {
        const double* bounds = detail::BucketBounds();
        std::uint64_t cum = 0;
        for (int i = 0; i < detail::kBucketCount; ++i) {
          cum += s.histogram->buckets[i];
          out << f.name << "_bucket"
              << FormatLabelsWith(s.labels, "le", FormatValue(bounds[i]))
              << " " << cum << "\n";
        }
        cum += s.histogram->buckets[detail::kBucketCount];
        out << f.name << "_bucket" << FormatLabelsWith(s.labels, "le", "+Inf")
            << " " << cum << "\n";
        out << f.name << "_sum" << FormatLabels(s.labels) << " "
            << FormatValue(s.histogram->sum) << "\n";
        out << f.name << "_count" << FormatLabels(s.labels) << " "
            << s.histogram->count << "\n";
      } else {
        out << f.name << FormatLabels(s.labels) << " " << FormatValue(s.value)
            << "\n";
      }
    }
  }
  return out.str();
}

std::string MetricsSnapshot::RenderJson() const {
  std::ostringstream out;
  out << "{";
  bool first_family = true;
  for (const auto& f : families) {
    if (!first_family) out << ",";
    first_family = false;
    out << "\n  \"" << EscapeJson(f.name) << "\": {\"type\": \"";
    switch (f.type) {
      case MetricType::kCounter: out << "counter"; break;
      case MetricType::kGauge: out << "gauge"; break;
      case MetricType::kHistogram: out << "histogram"; break;
    }
    out << "\", \"help\": \"" << EscapeJson(f.help) << "\", \"samples\": [";
    bool first_sample = true;
    for (const auto& s : f.samples) {
      if (!first_sample) out << ",";
      first_sample = false;
      out << "\n    {\"labels\": {";
      bool first_label = true;
      for (const auto& [k, v] : s.labels) {
        if (!first_label) out << ", ";
        first_label = false;
        out << "\"" << EscapeJson(k) << "\": \"" << EscapeJson(v) << "\"";
      }
      out << "}, ";
      if (s.histogram) {
        out << "\"count\": " << s.histogram->count
            << ", \"sum\": " << FormatValue(s.histogram->sum)
            << ", \"mean\": " << FormatValue(s.histogram->mean())
            << ", \"p50\": " << FormatValue(s.histogram->Quantile(0.50))
            << ", \"p95\": " << FormatValue(s.histogram->Quantile(0.95))
            << ", \"p99\": " << FormatValue(s.histogram->Quantile(0.99))
            << ", \"buckets\": [";
        for (std::size_t i = 0; i < s.histogram->buckets.size(); ++i) {
          if (i != 0) out << ", ";
          out << s.histogram->buckets[i];
        }
        out << "]";
      } else {
        out << "\"value\": " << FormatValue(s.value);
      }
      out << "}";
    }
    out << "\n  ]}";
  }
  out << "\n}\n";
  return out.str();
}

struct Registry::Impl {
  mutable std::mutex mu;
  // deque: stable family addresses as families are appended.
  std::deque<Family> families;

  Series* FindOrCreate(std::string_view name, std::string_view help,
                       MetricType type, LabelSet labels) {
    labels = SortedLabels(std::move(labels));
    std::lock_guard<std::mutex> lock(mu);
    Family* family = nullptr;
    for (auto& f : families) {
      if (f.name == name) {
        family = &f;
        break;
      }
    }
    if (family == nullptr) {
      families.emplace_back();
      family = &families.back();
      family->name = std::string(name);
      family->help = std::string(help);
      family->type = type;
    }
    for (auto& s : family->series) {
      if (s.labels == labels) return &s;
    }
    family->series.emplace_back();
    Series* series = &family->series.back();
    series->labels = std::move(labels);
    if (type == MetricType::kHistogram) {
      series->histogram = std::make_unique<detail::HistogramCell>();
    }
    return series;
  }
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::Global() {
  static Registry* instance = new Registry;  // intentionally leaked
  return *instance;
}

Counter Registry::counter(std::string_view name, std::string_view help,
                          LabelSet labels) {
  Series* s = impl_->FindOrCreate(name, help, MetricType::kCounter,
                                  std::move(labels));
  return Counter(&s->counter);
}

Gauge Registry::gauge(std::string_view name, std::string_view help,
                      LabelSet labels) {
  Series* s =
      impl_->FindOrCreate(name, help, MetricType::kGauge, std::move(labels));
  return Gauge(&s->gauge);
}

Histogram Registry::histogram(std::string_view name, std::string_view help,
                              LabelSet labels) {
  Series* s = impl_->FindOrCreate(name, help, MetricType::kHistogram,
                                  std::move(labels));
  return Histogram(s->histogram.get());
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  snap.families.reserve(impl_->families.size());
  for (const auto& f : impl_->families) {
    FamilySnapshot fs;
    fs.name = f.name;
    fs.help = f.help;
    fs.type = f.type;
    fs.samples.reserve(f.series.size());
    for (const auto& s : f.series) {
      SampleSnapshot ss;
      ss.labels = s.labels;
      if (f.type == MetricType::kHistogram) {
        HistogramSnapshot hs;
        hs.buckets.assign(detail::kBucketCount + 1, 0);
        for (const auto& shard : s.histogram->shards) {
          for (int b = 0; b <= detail::kBucketCount; ++b) {
            hs.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
          }
          hs.count += shard.count.load(std::memory_order_relaxed);
          hs.sum += shard.sum.load(std::memory_order_relaxed);
        }
        ss.histogram = std::move(hs);
      } else if (f.type == MetricType::kCounter) {
        ss.value = static_cast<double>(
            s.counter.load(std::memory_order_relaxed));
      } else {
        ss.value =
            static_cast<double>(s.gauge.load(std::memory_order_relaxed));
      }
      fs.samples.push_back(std::move(ss));
    }
    snap.families.push_back(std::move(fs));
  }
  return snap;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& f : impl_->families) {
    for (auto& s : f.series) {
      s.counter.store(0, std::memory_order_relaxed);
      s.gauge.store(0, std::memory_order_relaxed);
      if (s.histogram) {
        for (auto& shard : s.histogram->shards) {
          for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
          shard.count.store(0, std::memory_order_relaxed);
          shard.sum.store(0.0, std::memory_order_relaxed);
        }
      }
    }
  }
}

}  // namespace gkgpu::obs
