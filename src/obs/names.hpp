// Canonical metric names and cached handle accessors.  Every
// instrumentation site goes through these so a family has exactly one
// spelling and one help string, and hot paths pay only the cached-handle
// cost (function-local static) after first use.
//
// Funnel (counters, reads/pairs):
//   gkgpu_candidates_seeded_total      seeding output, pre-pruning
//   gkgpu_seed_candidates_total        {seeder} same volume, split by
//                                      seeding strategy (dense/minimizer)
//   gkgpu_shard_candidates_total       {shard} per index shard; only
//                                      emitted on multi-shard runs
//   gkgpu_candidates_pruned_total      dropped by paired insert-window
//   gkgpu_filter_input_total           pairs presented to a filter
//   gkgpu_filter_accepts_total         {filter,tier} accepted (incl. bypass)
//   gkgpu_filter_rejects_total         {filter,tier} rejected
//   gkgpu_filter_bypasses_total        {filter,tier} bypassed (N bases /
//                                      over-threshold windows): accepted
//                                      without a filter verdict
//   gkgpu_joint_earlyout_lanes_total   {filter,tier} lanes early-outed by
//                                      mate-aware joint filtration (killed
//                                      before filtration, no verdict)
//   gkgpu_combinations_shortcircuited_total
//                                      candidate combinations never
//                                      filtered because a partner-mate
//                                      rejection killed their lane
//   gkgpu_rescued_mates_total          SW mate rescues (paired)
//   gkgpu_reads_mapped_total / gkgpu_reads_unmapped_total
//
// Stage latency (histograms, seconds, labeled {stage}):
//   gkgpu_stage_service_seconds        per-batch stage work time
//   gkgpu_stage_queue_wait_seconds     blocked Pop() time feeding a stage
//
// Daemon:
//   gkgpu_serve_sessions_total {state=accepted|completed|failed}
//   gkgpu_serve_reads_total / _skipped_reads_total / _records_total
//   gkgpu_serve_batches_total / _coalesced_batches_total
//   gkgpu_serve_sessions_active (gauge)
//   gkgpu_serve_session_seconds (histogram)
#ifndef GKGPU_OBS_NAMES_HPP
#define GKGPU_OBS_NAMES_HPP

#include <string>

#include "obs/metrics.hpp"

namespace gkgpu::obs {

// Handles are trivially copyable; unlabeled accessors cache theirs in a
// function-local static, labeled ones resolve per call (registry mutex —
// negligible at batch granularity; truly hot sites keep the returned
// handle in a member).

// --- filter funnel ---------------------------------------------------
Counter CandidatesSeeded();
Counter SeederCandidates(const std::string& seeder);
Counter ShardCandidates(const std::string& shard);
Counter CandidatesPruned();
Counter FilterInput();
Counter FilterAccepts(const std::string& filter, const std::string& tier);
Counter FilterRejects(const std::string& filter, const std::string& tier);
Counter FilterBypasses(const std::string& filter, const std::string& tier);
Counter JointEarlyOutLanes(const std::string& filter, const std::string& tier);
Counter CombinationsShortCircuited();
Counter RescuedMates();
Counter ReadsMapped();
Counter ReadsUnmapped();

// --- pipeline stages -------------------------------------------------
Histogram StageService(const std::string& stage);
Histogram StageQueueWait(const std::string& stage);

// --- daemon ----------------------------------------------------------
Counter ServeSessions(const std::string& state);
Counter ServeReads();
Counter ServeSkippedReads();
Counter ServeRecords();
Counter ServeBatches();
Counter ServeCoalescedBatches();
Gauge ServeSessionsActive();
Histogram ServeSessionSeconds();

}  // namespace gkgpu::obs

#endif  // GKGPU_OBS_NAMES_HPP
