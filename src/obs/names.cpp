#include "obs/names.hpp"

namespace gkgpu::obs {

namespace {
Registry& R() { return Registry::Global(); }
}  // namespace

Counter CandidatesSeeded() {
  static const Counter c = R().counter(
      "gkgpu_candidates_seeded_total",
      "Candidate locations produced by seeding, before any pruning");
  return c;
}

Counter SeederCandidates(const std::string& seeder) {
  return R().counter("gkgpu_seed_candidates_total",
                     "Candidate locations by seeding strategy",
                     {{"seeder", seeder}});
}

Counter ShardCandidates(const std::string& shard) {
  return R().counter("gkgpu_shard_candidates_total",
                     "Candidate locations attributed to each index shard "
                     "(multi-shard runs only)",
                     {{"shard", shard}});
}

Counter CandidatesPruned() {
  static const Counter c = R().counter(
      "gkgpu_candidates_pruned_total",
      "Candidates dropped by the paired-end insert-window pruner");
  return c;
}

Counter FilterInput() {
  static const Counter c =
      R().counter("gkgpu_filter_input_total",
                  "Pairs presented to a pre-alignment filter batch");
  return c;
}

Counter FilterAccepts(const std::string& filter, const std::string& tier) {
  return R().counter("gkgpu_filter_accepts_total",
                     "Pairs accepted per filter and SIMD dispatch tier "
                     "(includes bypasses)",
                     {{"filter", filter}, {"tier", tier}});
}

Counter FilterRejects(const std::string& filter, const std::string& tier) {
  return R().counter("gkgpu_filter_rejects_total",
                     "Pairs rejected per filter and SIMD dispatch tier",
                     {{"filter", filter}, {"tier", tier}});
}

Counter FilterBypasses(const std::string& filter, const std::string& tier) {
  return R().counter("gkgpu_filter_bypasses_total",
                     "Pairs accepted without a filter verdict (N bases or "
                     "over-threshold windows) per filter and tier",
                     {{"filter", filter}, {"tier", tier}});
}

Counter JointEarlyOutLanes(const std::string& filter, const std::string& tier) {
  return R().counter("gkgpu_joint_earlyout_lanes_total",
                     "Lanes early-outed by mate-aware joint filtration "
                     "(killed before filtration, no verdict) per filter and "
                     "tier",
                     {{"filter", filter}, {"tier", tier}});
}

Counter CombinationsShortCircuited() {
  static const Counter c = R().counter(
      "gkgpu_combinations_shortcircuited_total",
      "Candidate combinations never filtered because every partner lane of "
      "the other mate already rejected");
  return c;
}

Counter RescuedMates() {
  static const Counter c = R().counter(
      "gkgpu_rescued_mates_total",
      "Mates recovered by banded Smith-Waterman rescue in paired mode");
  return c;
}

Counter ReadsMapped() {
  static const Counter c =
      R().counter("gkgpu_reads_mapped_total", "Reads emitted as mapped");
  return c;
}

Counter ReadsUnmapped() {
  static const Counter c =
      R().counter("gkgpu_reads_unmapped_total", "Reads emitted as unmapped");
  return c;
}

Histogram StageService(const std::string& stage) {
  return R().histogram("gkgpu_stage_service_seconds",
                       "Per-batch stage service time in seconds",
                       {{"stage", stage}});
}

Histogram StageQueueWait(const std::string& stage) {
  return R().histogram("gkgpu_stage_queue_wait_seconds",
                       "Blocked queue-pop time feeding a stage, in seconds",
                       {{"stage", stage}});
}

Counter ServeSessions(const std::string& state) {
  return R().counter("gkgpu_serve_sessions_total",
                     "Daemon sessions by terminal state",
                     {{"state", state}});
}

Counter ServeReads() {
  static const Counter c = R().counter("gkgpu_serve_reads_total",
                                       "Reads received over serve sessions");
  return c;
}

Counter ServeSkippedReads() {
  static const Counter c = R().counter(
      "gkgpu_serve_skipped_reads_total",
      "Reads skipped by serve sessions (wrong length for the job)");
  return c;
}

Counter ServeRecords() {
  static const Counter c = R().counter(
      "gkgpu_serve_records_total", "SAM records returned to serve clients");
  return c;
}

Counter ServeBatches() {
  static const Counter c = R().counter(
      "gkgpu_serve_batches_total", "Batches packed by the daemon pipeline");
  return c;
}

Counter ServeCoalescedBatches() {
  static const Counter c = R().counter(
      "gkgpu_serve_coalesced_batches_total",
      "Daemon batches containing reads from more than one session");
  return c;
}

Gauge ServeSessionsActive() {
  static const Gauge g = R().gauge("gkgpu_serve_sessions_active",
                                   "Serve sessions currently open");
  return g;
}

Histogram ServeSessionSeconds() {
  static const Histogram h = R().histogram(
      "gkgpu_serve_session_seconds",
      "Serve session wall time from accept to completion, in seconds");
  return h;
}

}  // namespace gkgpu::obs
