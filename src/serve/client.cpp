#include "serve/client.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace gkgpu::serve {

namespace {

constexpr std::size_t kChunkBytes = 256u << 10;

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  const std::uint32_t prelude[2] = {
      static_cast<std::uint32_t>(type),
      static_cast<std::uint32_t>(payload.size()),
  };
  out->append(reinterpret_cast<const char*>(prelude), sizeof(prelude));
  out->append(payload);
}

[[noreturn]] void Fail(const std::string& why) {
  throw std::runtime_error("map-client: " + why);
}

std::uint64_t StatValue(std::string_view payload, std::string_view key) {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t eq = line.find('=');
    if (eq != std::string_view::npos && line.substr(0, eq) == key) {
      return std::stoull(std::string(line.substr(eq + 1)));
    }
  }
  return 0;
}

}  // namespace

ClientStats MapOverSocket(const std::string& socket_path, std::istream& fastq,
                          std::ostream& sam, const JobSpec& job) {
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Fail("invalid socket path");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) Fail("cannot create socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    Fail("cannot connect to " + socket_path + ": " + err);
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  ClientStats stats;
  std::string outbound;
  AppendFrame(&outbound, FrameType::kJob, SerializeJobSpec(job));
  std::string inbound;
  std::string chunk(kChunkBytes, '\0');
  bool input_done = false;
  bool done = false;

  try {
    while (!done) {
      // Refill the outbound buffer from the FASTQ stream; kEnd follows
      // the final chunk.
      if (!input_done && outbound.size() < kChunkBytes) {
        fastq.read(chunk.data(),
                   static_cast<std::streamsize>(chunk.size()));
        const std::streamsize got = fastq.gcount();
        if (got > 0) {
          AppendFrame(&outbound, FrameType::kData,
                      std::string_view(chunk.data(),
                                       static_cast<std::size_t>(got)));
        }
        if (got == 0 || fastq.eof()) {
          AppendFrame(&outbound, FrameType::kEnd, {});
          input_done = true;
        }
      }

      pollfd pfd{fd, POLLIN, 0};
      if (!outbound.empty()) pfd.events |= POLLOUT;
      const int n = ::poll(&pfd, 1, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        Fail(std::string("poll: ") + std::strerror(errno));
      }

      if ((pfd.revents & POLLOUT) != 0 && !outbound.empty()) {
        const ssize_t sent =
            ::send(fd, outbound.data(), outbound.size(), MSG_NOSIGNAL);
        if (sent < 0) {
          if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
            Fail(std::string("send: ") + std::strerror(errno));
          }
        } else {
          outbound.erase(0, static_cast<std::size_t>(sent));
        }
      }

      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char buf[64 << 10];
        const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
        if (got < 0) {
          if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
            Fail(std::string("recv: ") + std::strerror(errno));
          }
        } else if (got == 0) {
          Fail("server closed the connection before kDone");
        } else {
          inbound.append(buf, static_cast<std::size_t>(got));
        }
      }

      // Parse every complete frame in the inbound buffer.
      std::size_t pos = 0;
      while (inbound.size() - pos >= kFramePreludeBytes) {
        std::uint32_t prelude[2];
        std::memcpy(prelude, inbound.data() + pos, sizeof(prelude));
        if (prelude[1] > kMaxFramePayload) {
          Fail("oversized response frame (corrupt stream?)");
        }
        if (inbound.size() - pos - kFramePreludeBytes < prelude[1]) break;
        const std::string_view payload(
            inbound.data() + pos + kFramePreludeBytes, prelude[1]);
        pos += kFramePreludeBytes + prelude[1];
        switch (static_cast<FrameType>(prelude[0])) {
          case FrameType::kSamHeader:
          case FrameType::kSamRecords:
            sam.write(payload.data(),
                      static_cast<std::streamsize>(payload.size()));
            break;
          case FrameType::kStats:
            stats.reads = StatValue(payload, "reads");
            stats.records = StatValue(payload, "records");
            break;
          case FrameType::kError:
            Fail("server error: " + std::string(payload));
          case FrameType::kDone:
            done = true;
            break;
          default:
            Fail("unexpected response frame type");
        }
      }
      inbound.erase(0, pos);
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return stats;
}

std::string QueryStats(const std::string& socket_path) {
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Fail("invalid socket path");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) Fail("cannot create socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    Fail("cannot connect to " + socket_path + ": " + err);
  }

  std::string exposition;
  try {
    WriteFrame(fd, FrameType::kStatsRequest, {});
    Frame frame;
    for (;;) {
      if (!ReadFrame(fd, &frame)) {
        Fail("server closed the connection before kDone");
      }
      switch (frame.type) {
        case FrameType::kStats:
          exposition.append(frame.payload);
          break;
        case FrameType::kError:
          Fail("server error: " + frame.payload);
        case FrameType::kDone:
          ::close(fd);
          return exposition;
        default:
          Fail("unexpected response frame type");
      }
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
}

}  // namespace gkgpu::serve
