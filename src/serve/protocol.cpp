#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace gkgpu::serve {

namespace {

[[noreturn]] void FailErrno(const char* what) {
  const int err = errno;
  if (err == EAGAIN || err == EWOULDBLOCK) {
    throw std::runtime_error(std::string(what) + ": timed out");
  }
  throw std::runtime_error(std::string(what) + ": " + std::strerror(err));
}

void SendAll(int fd, const void* data, std::size_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not process death.
    const ssize_t n = ::send(fd, p, bytes, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      FailErrno("serve: send");
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
}

/// Returns bytes read; 0 only on EOF before the first byte.
std::size_t RecvAll(int fd, void* data, std::size_t bytes) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::recv(fd, p + got, bytes - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      FailErrno("serve: recv");
    }
    if (n == 0) break;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

void WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::runtime_error("serve: frame payload exceeds the 64 MiB cap");
  }
  std::uint32_t prelude[2] = {
      static_cast<std::uint32_t>(type),
      static_cast<std::uint32_t>(payload.size()),
  };
  SendAll(fd, prelude, sizeof(prelude));
  if (!payload.empty()) SendAll(fd, payload.data(), payload.size());
}

bool ReadFrame(int fd, Frame* out) {
  std::uint32_t prelude[2] = {0, 0};
  const std::size_t got = RecvAll(fd, prelude, sizeof(prelude));
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof(prelude)) {
    throw std::runtime_error("serve: connection closed mid-frame");
  }
  if (prelude[1] > kMaxFramePayload) {
    throw std::runtime_error("serve: frame length prefix exceeds the cap "
                             "(corrupt stream?)");
  }
  out->type = static_cast<FrameType>(prelude[0]);
  out->payload.resize(prelude[1]);
  if (prelude[1] > 0 &&
      RecvAll(fd, out->payload.data(), prelude[1]) != prelude[1]) {
    throw std::runtime_error("serve: connection closed mid-frame");
  }
  return true;
}

std::string SerializeJobSpec(const JobSpec& job) {
  std::string out;
  if (!job.read_group.empty()) {
    out += "read_group=" + job.read_group + "\n";
  }
  if (job.mapq_cap >= 0) {
    out += "mapq_cap=" + std::to_string(job.mapq_cap) + "\n";
  }
  if (job.report_secondary) out += "secondary=1\n";
  return out;
}

JobSpec ParseJobSpec(std::string_view payload) {
  JobSpec job;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("serve: malformed job option (want key=value)");
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "read_group") {
      job.read_group = std::string(value);
    } else if (key == "mapq_cap") {
      job.mapq_cap = std::stoi(std::string(value));
    } else if (key == "secondary") {
      job.report_secondary = value == "1";
    }
    // Unknown keys: ignored, so older servers accept newer clients.
  }
  return job;
}

}  // namespace gkgpu::serve
