#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace gkgpu::serve {

namespace {

[[noreturn]] void FailErrno(const char* what) {
  const int err = errno;
  if (err == EAGAIN || err == EWOULDBLOCK) {
    throw std::runtime_error(std::string(what) + ": timed out");
  }
  throw std::runtime_error(std::string(what) + ": " + std::strerror(err));
}

void SendAll(int fd, const void* data, std::size_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not process death.
    const ssize_t n = ::send(fd, p, bytes, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      FailErrno("serve: send");
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
}

enum class RecvStatus { kOk, kEof, kAgain };

/// Receives into data[*got, bytes); advances *got.  kAgain means the
/// socket's SO_RCVTIMEO tick expired with the range still incomplete —
/// the caller decides whether that is a resume or a timeout.  Throws only
/// on genuine I/O failure.
RecvStatus RecvChunk(int fd, void* data, std::size_t bytes,
                     std::size_t* got) {
  char* p = static_cast<char*>(data);
  while (*got < bytes) {
    const ssize_t n = ::recv(fd, p + *got, bytes - *got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::kAgain;
      FailErrno("serve: recv");
    }
    if (n == 0) return RecvStatus::kEof;
    *got += static_cast<std::size_t>(n);
  }
  return RecvStatus::kOk;
}

/// Returns bytes read; 0 only on EOF before the first byte.  The
/// non-resumable legacy path: a receive timeout anywhere throws.
std::size_t RecvAll(int fd, void* data, std::size_t bytes) {
  std::size_t got = 0;
  switch (RecvChunk(fd, data, bytes, &got)) {
    case RecvStatus::kAgain:
      throw std::runtime_error("serve: recv: timed out");
    case RecvStatus::kEof:
    case RecvStatus::kOk:
      break;
  }
  return got;
}

}  // namespace

void WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::runtime_error("serve: frame payload exceeds the 64 MiB cap");
  }
  std::uint32_t prelude[2] = {
      static_cast<std::uint32_t>(type),
      static_cast<std::uint32_t>(payload.size()),
  };
  SendAll(fd, prelude, sizeof(prelude));
  if (!payload.empty()) SendAll(fd, payload.data(), payload.size());
}

bool ReadFrame(int fd, Frame* out) {
  std::uint32_t prelude[2] = {0, 0};
  const std::size_t got = RecvAll(fd, prelude, sizeof(prelude));
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof(prelude)) {
    throw std::runtime_error("serve: connection closed mid-frame");
  }
  if (prelude[1] > kMaxFramePayload) {
    throw std::runtime_error("serve: frame length prefix exceeds the cap "
                             "(corrupt stream?)");
  }
  out->type = static_cast<FrameType>(prelude[0]);
  out->payload.resize(prelude[1]);
  if (prelude[1] > 0 &&
      RecvAll(fd, out->payload.data(), prelude[1]) != prelude[1]) {
    throw std::runtime_error("serve: connection closed mid-frame");
  }
  return true;
}

bool ReadFrame(int fd, Frame* out, const FrameReadLimits& limits) {
  using Clock = std::chrono::steady_clock;
  const auto wait_start = Clock::now();
  Clock::time_point frame_start{};
  bool frame_started = false;
  const auto secs_since = [](Clock::time_point t) {
    return std::chrono::duration<double>(Clock::now() - t).count();
  };
  const auto on_tick = [&] {
    if (!frame_started) {
      if (secs_since(wait_start) >= limits.idle_timeout_sec) {
        throw std::runtime_error("serve: recv: timed out");
      }
    } else if (secs_since(frame_start) >= limits.frame_deadline_sec) {
      throw std::runtime_error(
          "serve: frame stalled mid-transfer: timed out");
    }
  };

  std::uint32_t prelude[2] = {0, 0};
  std::size_t got = 0;
  for (;;) {
    const RecvStatus s = RecvChunk(fd, prelude, sizeof(prelude), &got);
    if (got > 0 && !frame_started) {
      frame_started = true;
      frame_start = Clock::now();
    }
    if (s == RecvStatus::kOk) break;
    if (s == RecvStatus::kEof) {
      if (got == 0) return false;  // clean EOF between frames
      throw std::runtime_error("serve: connection closed mid-frame");
    }
    on_tick();  // kAgain: resume unless a limit is exhausted
  }
  if (prelude[1] > kMaxFramePayload) {
    throw std::runtime_error("serve: frame length prefix exceeds the cap "
                             "(corrupt stream?)");
  }
  out->type = static_cast<FrameType>(prelude[0]);
  out->payload.resize(prelude[1]);
  std::size_t pgot = 0;
  while (pgot < prelude[1]) {
    const RecvStatus s =
        RecvChunk(fd, out->payload.data(), prelude[1], &pgot);
    if (s == RecvStatus::kOk) break;
    if (s == RecvStatus::kEof) {
      throw std::runtime_error("serve: connection closed mid-frame");
    }
    on_tick();
  }
  return true;
}

std::string SerializeJobSpec(const JobSpec& job) {
  std::string out;
  if (!job.read_group.empty()) {
    out += "read_group=" + job.read_group + "\n";
  }
  if (job.mapq_cap >= 0) {
    out += "mapq_cap=" + std::to_string(job.mapq_cap) + "\n";
  }
  if (job.report_secondary) out += "secondary=1\n";
  return out;
}

JobSpec ParseJobSpec(std::string_view payload) {
  JobSpec job;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("serve: malformed job option (want key=value)");
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "read_group") {
      job.read_group = std::string(value);
    } else if (key == "mapq_cap") {
      job.mapq_cap = std::stoi(std::string(value));
    } else if (key == "secondary") {
      job.report_secondary = value == "1";
    }
    // Unknown keys: ignored, so older servers accept newer clients.
  }
  return job;
}

}  // namespace gkgpu::serve
