// The mapping daemon: one resident index + engine serving concurrent
// mapping jobs over a Unix-domain socket (serve/protocol.hpp).
//
// Threading: an accept loop (poll on the listening socket plus a self-pipe
// so Shutdown() — and the SIGTERM handler behind it — can interrupt it)
// spawns one session thread per connection; sessions parse frames,
// reassemble FASTQ records, and push reads into one shared bounded queue.
// A single long-lived candidate-mode StreamingPipeline drains that queue:
// its source seeds reads and packs batches *across sessions* — the
// cross-request coalescer.  The first read of a batch blocks until work
// arrives; subsequent reads wait at most `linger` for stragglers, so a
// lone client's batch departs promptly while concurrent clients share
// batches (counted in ServeStats::coalesced_batches when a batch carries
// reads from 2+ sessions).  The adaptive batcher still shapes batch size
// underneath.  The ordered sink demultiplexes: each read's verified
// mappings flow into its session's SamGroupBuffer (the same scoring +
// formatting path as a standalone run — byte-identical output) and are
// framed back to the owning client, in that client's submission order.
//
// Shutdown drains: no new connections, in-flight sessions run to
// completion (bounded by the per-request timeout), the pipeline retires
// every queued read, then Run() returns.
#ifndef GKGPU_SERVE_SERVER_HPP
#define GKGPU_SERVE_SERVER_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "core/engine.hpp"
#include "mapper/mapper.hpp"
#include "pipeline/pipeline.hpp"

namespace gkgpu::serve {

struct ServeConfig {
  std::string socket_path;
  /// Worker threads for the pipeline stages (encode + verify pools); the
  /// daemon never consults hardware concurrency on its own.
  int threads = 2;
  /// Pipeline batch size (candidates per batch; the adaptive batcher
  /// shapes the effective size underneath).
  std::size_t batch_size = 8192;
  /// How long the batch packer waits for reads from other sessions once a
  /// batch has started filling, in milliseconds.  Larger = more
  /// cross-session coalescing, smaller = lower single-client latency.
  int linger_ms = 2;
  /// Per-request idle timeout in seconds: a client that stays silent this
  /// long *between frames* mid-job is dropped and its session discarded.
  /// <= 0 disables.
  int request_timeout_sec = 30;
  /// Hard deadline in seconds for finishing one frame once its first byte
  /// arrived: a slow-but-active client may pause mid-frame (straddling any
  /// number of receive-timeout ticks) as long as the whole frame lands
  /// inside this budget.  <= 0 derives 4x request_timeout_sec.
  int frame_deadline_sec = 0;
  /// Default MAPQ cap for jobs that do not set one.
  int mapq_cap = 60;
  /// Server-side @RG default ("" = none) when the job sets no read group.
  std::string read_group;
};

struct ServeStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_failed = 0;  // protocol error, timeout, disconnect
  std::uint64_t reads = 0;
  std::uint64_t skipped_reads = 0;  // wrong length for the engine
  std::uint64_t records = 0;        // SAM records sent
  std::uint64_t batches = 0;
  /// Batches carrying reads from 2+ sessions — the cross-request
  /// coalescing the daemon exists to provide.
  std::uint64_t coalesced_batches = 0;
};

class MapServer {
 public:
  /// `mapper` and `engine` must outlive the server; the engine's reference
  /// must already be loaded (Run checks).  `pipeline_config` seeds the
  /// long-lived pipeline (reference_text/fingerprint, verify and CIGAR
  /// settings are overridden by the server).
  MapServer(const ReadMapper& mapper, GateKeeperGpuEngine* engine,
            ServeConfig config,
            pipeline::PipelineConfig pipeline_config = {});
  ~MapServer();

  MapServer(const MapServer&) = delete;
  MapServer& operator=(const MapServer&) = delete;

  /// Binds the socket and serves until Shutdown(); returns after the
  /// drain completes.  Throws std::runtime_error if the socket cannot be
  /// bound or the engine has no reference loaded.
  void Run();

  /// Async-signal-safe shutdown request (a write to the self-pipe);
  /// callable from a SIGTERM handler or any thread.
  void Shutdown() noexcept;

  /// True once Run() has bound the socket and is accepting connections.
  bool serving() const noexcept;

  /// Cumulative statistics (safe to call during and after Run).
  ServeStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gkgpu::serve

#endif  // GKGPU_SERVE_SERVER_HPP
