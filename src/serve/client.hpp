// Client side of the mapping daemon: submits one job over the Unix-domain
// socket and streams the SAM response.  The implementation is a poll()-
// based duplex loop — it keeps reading response frames while the FASTQ
// payload is still being sent, so a server flushing records early can
// never deadlock against a client that is still uploading.
#ifndef GKGPU_SERVE_CLIENT_HPP
#define GKGPU_SERVE_CLIENT_HPP

#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/protocol.hpp"

namespace gkgpu::serve {

struct ClientStats {
  std::uint64_t reads = 0;    // admitted by the server
  std::uint64_t records = 0;  // SAM records received
};

/// Maps `fastq` through the daemon at `socket_path` and writes the full
/// SAM output (header + records) to `sam`.  Returns the job statistics
/// from the server's kStats frame.  Throws std::runtime_error on
/// connection failure, a kError frame, or a protocol violation.
ClientStats MapOverSocket(const std::string& socket_path, std::istream& fastq,
                          std::ostream& sam, const JobSpec& job = {});

/// Scrapes the daemon's metrics registry: sends a kStatsRequest frame and
/// returns the Prometheus text exposition from the kStats reply.  Throws
/// std::runtime_error on connection failure, a kError frame, or a
/// protocol violation.
std::string QueryStats(const std::string& socket_path);

}  // namespace gkgpu::serve

#endif  // GKGPU_SERVE_CLIENT_HPP
