// Wire protocol of the mapping daemon: length-prefixed frames over a
// Unix-domain stream socket.  Every frame is an 8-byte little-endian
// prelude — u32 type, u32 payload length — followed by the payload.
//
//   client -> server   kJob         key=value job options, one per line
//                      kData        a chunk of raw FASTQ bytes
//                      kEnd         no more input for this job
//                      kStatsRequest  instead of kJob: scrape the server's
//                                   metrics registry; the reply is one
//                                   kStats frame of Prometheus text
//                                   exposition followed by kDone
//   server -> client   kSamHeader   the @HD/@SQ/@RG/@PG header bytes
//                      kSamRecords  a chunk of SAM record lines
//                      kStats       key=value job statistics (after a job)
//                                   or Prometheus exposition (after a
//                                   kStatsRequest)
//                      kError       human-readable failure; job is dead
//                      kDone        job complete, no further frames
//
// FASTQ chunks may split records anywhere (the server reassembles);
// SAM chunks always split on line boundaries.  Frames are capped at
// kMaxFramePayload so a corrupt length prefix cannot allocate the moon.
#ifndef GKGPU_SERVE_PROTOCOL_HPP
#define GKGPU_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace gkgpu::serve {

enum class FrameType : std::uint32_t {
  kJob = 1,
  kData = 2,
  kEnd = 3,
  kStatsRequest = 4,
  kSamHeader = 10,
  kSamRecords = 11,
  kStats = 12,
  kError = 13,
  kDone = 14,
};

inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB
inline constexpr std::size_t kFramePreludeBytes = 8;

struct Frame {
  FrameType type = FrameType::kJob;
  std::string payload;
};

/// Blocking frame write (loops over partial writes, EINTR-safe, no
/// SIGPIPE).  Throws std::runtime_error on I/O failure.
void WriteFrame(int fd, FrameType type, std::string_view payload);

/// Blocking frame read.  Returns false on clean EOF at a frame boundary;
/// throws std::runtime_error on mid-frame EOF, I/O failure, a timeout
/// (EAGAIN from SO_RCVTIMEO surfaces as "timed out"), or an oversized
/// length prefix.
bool ReadFrame(int fd, Frame* out);

/// Deadlines for the resumable frame read below.  Both are wall-clock
/// seconds; a value <= 0 means the first receive-timeout tick in that
/// state throws immediately (the non-resumable behaviour above).
struct FrameReadLimits {
  /// Quiet time allowed while waiting for a frame to *start* (no byte of
  /// the prelude received yet) — the per-request idle timeout.
  double idle_timeout_sec = 0;
  /// Total time allowed to finish one frame once its first byte arrived.
  /// A slow-but-active sender may straddle any number of receive-timeout
  /// ticks mid-frame as long as the whole frame lands inside this budget.
  double frame_deadline_sec = 0;
};

/// Resumable frame read for sockets whose SO_RCVTIMEO is set to a short
/// polling tick: an expiry mid-frame is NOT an error — the read resumes
/// and accumulates until `limits` says otherwise, so a client that
/// stalls between the bytes of one frame is distinguished from one that
/// sends a genuinely malformed stream.  Returns false on clean EOF at a
/// frame boundary; throws "timed out" once a limit is exceeded and
/// "connection closed mid-frame" on mid-frame EOF.
bool ReadFrame(int fd, Frame* out, const FrameReadLimits& limits);

/// Per-job options carried in the kJob frame.
struct JobSpec {
  std::string read_group;        // RG:Z tag ("" = none)
  int mapq_cap = -1;             // -1 = server default
  bool report_secondary = false;
};

std::string SerializeJobSpec(const JobSpec& job);
/// Parses a kJob payload; unknown keys are ignored (forward compatible).
/// Throws std::runtime_error on malformed lines.
JobSpec ParseJobSpec(std::string_view payload);

}  // namespace gkgpu::serve

#endif  // GKGPU_SERVE_PROTOCOL_HPP
