// Wire protocol of the mapping daemon: length-prefixed frames over a
// Unix-domain stream socket.  Every frame is an 8-byte little-endian
// prelude — u32 type, u32 payload length — followed by the payload.
//
//   client -> server   kJob         key=value job options, one per line
//                      kData        a chunk of raw FASTQ bytes
//                      kEnd         no more input for this job
//   server -> client   kSamHeader   the @HD/@SQ/@RG/@PG header bytes
//                      kSamRecords  a chunk of SAM record lines
//                      kStats       key=value job statistics
//                      kError       human-readable failure; job is dead
//                      kDone        job complete, no further frames
//
// FASTQ chunks may split records anywhere (the server reassembles);
// SAM chunks always split on line boundaries.  Frames are capped at
// kMaxFramePayload so a corrupt length prefix cannot allocate the moon.
#ifndef GKGPU_SERVE_PROTOCOL_HPP
#define GKGPU_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace gkgpu::serve {

enum class FrameType : std::uint32_t {
  kJob = 1,
  kData = 2,
  kEnd = 3,
  kSamHeader = 10,
  kSamRecords = 11,
  kStats = 12,
  kError = 13,
  kDone = 14,
};

inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB
inline constexpr std::size_t kFramePreludeBytes = 8;

struct Frame {
  FrameType type = FrameType::kJob;
  std::string payload;
};

/// Blocking frame write (loops over partial writes, EINTR-safe, no
/// SIGPIPE).  Throws std::runtime_error on I/O failure.
void WriteFrame(int fd, FrameType type, std::string_view payload);

/// Blocking frame read.  Returns false on clean EOF at a frame boundary;
/// throws std::runtime_error on mid-frame EOF, I/O failure, a timeout
/// (EAGAIN from SO_RCVTIMEO surfaces as "timed out"), or an oversized
/// length prefix.
bool ReadFrame(int fd, Frame* out);

/// Per-job options carried in the kJob frame.
struct JobSpec {
  std::string read_group;        // RG:Z tag ("" = none)
  int mapq_cap = -1;             // -1 = server default
  bool report_secondary = false;
};

std::string SerializeJobSpec(const JobSpec& job);
/// Parses a kJob payload; unknown keys are ignored (forward compatible).
/// Throws std::runtime_error on malformed lines.
JobSpec ParseJobSpec(std::string_view payload);

}  // namespace gkgpu::serve

#endif  // GKGPU_SERVE_PROTOCOL_HPP
