#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/fastq.hpp"
#include "mapper/sam.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "pipeline/candidate_packer.hpp"
#include "pipeline/sam_group.hpp"
#include "serve/protocol.hpp"
#include "util/threadname.hpp"

namespace gkgpu::serve {

namespace {

/// Reads the daemon's counters out of one consistent registry snapshot.
/// MapServer::stats() subtracts the baseline captured at construction, so
/// several servers in one process (the test suite) each report their own
/// deltas even though the registry is process-cumulative.
ServeStats ReadRegistryServeStats() {
  const obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
  const auto sessions = [&](const char* state) {
    return static_cast<std::uint64_t>(
        snap.Value("gkgpu_serve_sessions_total", {{"state", state}}));
  };
  ServeStats s;
  s.sessions_accepted = sessions("accepted");
  s.sessions_completed = sessions("completed");
  s.sessions_failed = sessions("failed");
  s.reads = static_cast<std::uint64_t>(snap.Value("gkgpu_serve_reads_total"));
  s.skipped_reads = static_cast<std::uint64_t>(
      snap.Value("gkgpu_serve_skipped_reads_total"));
  s.records =
      static_cast<std::uint64_t>(snap.Value("gkgpu_serve_records_total"));
  s.batches =
      static_cast<std::uint64_t>(snap.Value("gkgpu_serve_batches_total"));
  s.coalesced_batches = static_cast<std::uint64_t>(
      snap.Value("gkgpu_serve_coalesced_batches_total"));
  return s;
}

/// Reassembles FASTQ records from arbitrarily split kData chunks, with the
/// same validation and name semantics as FastqStreamReader (so a served
/// run parses the identical record set a file-based run would).
class FastqAssembler {
 public:
  void Append(std::string_view chunk) { buf_.append(chunk); }

  /// At end of input a final record may lack its trailing newline, exactly
  /// like a file whose last line has no '\n'.
  void Finish() {
    if (!buf_.empty() && buf_.back() != '\n') buf_.push_back('\n');
    finished_ = true;
  }

  /// Extracts the next complete record; false when more bytes are needed.
  /// Throws std::runtime_error on malformed input.
  bool Next(FastqRecord* rec) {
    for (;;) {
      const std::size_t record_start = pos_;
      std::string header;
      if (!NextLine(&header)) return false;
      if (header.empty()) continue;  // blank lines between records
      if (header[0] != '@') {
        throw std::runtime_error("FASTQ: expected '@' header, got: " + header);
      }
      std::string seq, plus, qual;
      if (!NextLine(&seq) || !NextLine(&plus) || !NextLine(&qual)) {
        if (finished_) {
          throw std::runtime_error("FASTQ: truncated record: " + header);
        }
        // The record's remaining lines are still in flight: rewind to the
        // header and wait for more data.
        pos_ = record_start;
        return false;
      }
      if (plus.empty() || plus[0] != '+') {
        throw std::runtime_error("FASTQ: expected '+' separator: " + header);
      }
      if (seq.empty()) {
        throw std::runtime_error("FASTQ: empty sequence: " + header);
      }
      if (qual.size() != seq.size()) {
        throw std::runtime_error("FASTQ: quality length mismatch: " + header);
      }
      rec->name = header.substr(1);
      rec->seq = std::move(seq);
      rec->qual = std::move(qual);
      Compact();
      return true;
    }
  }

  /// Unparsed bytes left after Finish() + a draining Next() loop mean the
  /// client sent garbage past its last record.
  bool HasLeftover() const { return pos_ < buf_.size(); }

 private:
  bool NextLine(std::string* line) {
    const std::size_t eol = buf_.find('\n', pos_);
    if (eol == std::string::npos) return false;
    line->assign(buf_, pos_, eol - pos_);
    if (!line->empty() && line->back() == '\r') line->pop_back();
    pos_ = eol + 1;
    return true;
  }

  void Compact() {
    if (pos_ > (64u << 10)) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
  }

  std::string buf_;
  std::size_t pos_ = 0;
  bool finished_ = false;
};

/// SAM bytes staged per session before a kSamRecords frame departs.
constexpr std::size_t kSendThreshold = 64u << 10;

struct Session {
  explicit Session(int fd_in, std::uint64_t id_in) : fd(fd_in), id(id_in) {}
  ~Session() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  const std::uint64_t id;
  const std::chrono::steady_clock::time_point accepted_at =
      std::chrono::steady_clock::now();

  std::mutex write_mu;  // serializes frame writes on fd
  std::atomic<bool> dead{false};
  std::atomic<bool> input_done{false};
  std::atomic<bool> done_sent{false};
  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> retired{0};

  // Output side (sink thread + whichever thread completes the session).
  std::mutex out_mu;
  std::optional<pipeline::SamGroupBuffer> groups;
  std::ostringstream staged;
  std::uint64_t reads = 0;    // admitted to the queue (session thread)
  std::uint64_t records = 0;  // SAM records staged (under out_mu)
};

using SessionPtr = std::shared_ptr<Session>;

/// A read admitted to the shared cross-session queue.
struct QueuedRead {
  SessionPtr session;
  std::string name;
  std::string seq;
};

}  // namespace

struct MapServer::Impl {
  Impl(const ReadMapper& mapper, GateKeeperGpuEngine* engine,
       ServeConfig config, pipeline::PipelineConfig pipeline_config)
      : mapper_(mapper),
        engine_(engine),
        config_(std::move(config)),
        pcfg_(std::move(pipeline_config)),
        baseline_(ReadRegistryServeStats()) {}

  // --- configuration ----------------------------------------------------
  const ReadMapper& mapper_;
  GateKeeperGpuEngine* engine_;
  ServeConfig config_;
  pipeline::PipelineConfig pcfg_;

  // --- lifecycle --------------------------------------------------------
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> serving_{false};
  std::mutex threads_mu_;
  std::vector<std::thread> session_threads_;

  // --- the shared read queue (the cross-request coalescer's input) ------
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;        // consumer: work available
  std::condition_variable queue_space_cv_;  // producers: room available
  std::deque<QueuedRead> queue_;
  bool input_closed_ = false;  // no producer will ever push again

  // --- read ownership (source registers, sink retires) ------------------
  std::mutex owners_mu_;
  std::unordered_map<std::uint32_t, SessionPtr> owners_;

  // --- statistics -------------------------------------------------------
  // All counting goes through the metrics registry (obs/names.hpp);
  // stats() reads one consistent snapshot and subtracts this baseline.
  // The session id allocator is the only remaining local counter.
  std::atomic<std::uint64_t> session_seq_{0};
  const ServeStats baseline_;

  std::size_t QueueCapacity() const {
    return std::max<std::size_t>(1024, config_.batch_size * 4);
  }

  // Sends one frame under the session's write lock; a failed send (stalled
  // or vanished client, SO_SNDTIMEO) marks the session dead.
  void TrySend(const SessionPtr& s, FrameType type, std::string_view payload) {
    if (s->dead.load(std::memory_order_acquire)) return;
    try {
      std::lock_guard<std::mutex> lock(s->write_mu);
      WriteFrame(s->fd, type, payload);
    } catch (const std::exception&) {
      s->dead.store(true, std::memory_order_release);
    }
  }

  /// Records the session's terminal state exactly once (whichever of
  /// FailSession / MaybeComplete / the stats fast path wins done_sent).
  void CloseoutSession(const SessionPtr& s, const char* state) {
    obs::ServeSessions(state).Inc();
    obs::ServeSessionsActive().Add(-1);
    obs::ServeSessionSeconds().Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      s->accepted_at)
            .count());
  }

  void FailSession(const SessionPtr& s, const std::string& why) {
    TrySend(s, FrameType::kError, why);
    s->dead.store(true, std::memory_order_release);
    s->input_done.store(true, std::memory_order_release);
    ::shutdown(s->fd, SHUT_RDWR);
    if (!s->done_sent.exchange(true)) CloseoutSession(s, "failed");
  }

  /// Completes the session once every admitted read has retired: flushes
  /// staged SAM bytes, sends kStats + kDone.  Callable from the session,
  /// source, or sink thread — whoever retires the last read wins the
  /// done_sent exchange.
  void MaybeComplete(const SessionPtr& s) {
    if (!s->input_done.load(std::memory_order_acquire)) return;
    if (s->retired.load(std::memory_order_acquire) !=
        s->enqueued.load(std::memory_order_acquire)) {
      return;
    }
    if (s->done_sent.exchange(true)) return;
    if (s->dead.load(std::memory_order_acquire)) {
      // Died on an earlier send (client vanished mid-stream): terminal
      // state is a disconnect, not a completion.
      CloseoutSession(s, "failed");
      return;
    }
    std::string tail;
    std::uint64_t reads = 0, records = 0;
    {
      std::lock_guard<std::mutex> lock(s->out_mu);
      tail = std::move(s->staged).str();
      s->staged.str({});
      reads = s->reads;
      records = s->records;
    }
    if (!tail.empty()) TrySend(s, FrameType::kSamRecords, tail);
    TrySend(s, FrameType::kStats,
            "reads=" + std::to_string(reads) +
                "\nrecords=" + std::to_string(records) + "\n");
    TrySend(s, FrameType::kDone, {});
    CloseoutSession(
        s, s->dead.load(std::memory_order_acquire) ? "failed" : "completed");
  }

  void RetireRead(const SessionPtr& s) {
    s->retired.fetch_add(1, std::memory_order_acq_rel);
    MaybeComplete(s);
  }

  // --- session thread ---------------------------------------------------

  FrameReadLimits SessionReadLimits() const {
    FrameReadLimits limits;
    limits.idle_timeout_sec = config_.request_timeout_sec;
    limits.frame_deadline_sec =
        config_.frame_deadline_sec > 0
            ? config_.frame_deadline_sec
            : 4.0 * config_.request_timeout_sec;
    return limits;
  }

  void SessionMain(SessionPtr s) {
    util::SetCurrentThreadName("gkgpu-sess" + std::to_string(s->id));
    const FrameReadLimits limits = SessionReadLimits();
    try {
      Frame frame;
      if (!ReadFrame(s->fd, &frame, limits)) {
        throw std::runtime_error("expected a kJob frame first");
      }
      if (frame.type == FrameType::kStatsRequest) {
        // Metrics scrape: no job, no pipeline involvement — answer from
        // the registry and finish the session.
        obs::Span span("stats-scrape", "serve");
        TrySend(s, FrameType::kStats,
                obs::Registry::Global().Snapshot().RenderPrometheus());
        TrySend(s, FrameType::kDone, {});
        s->input_done.store(true, std::memory_order_release);
        if (!s->done_sent.exchange(true)) {
          CloseoutSession(s, s->dead.load(std::memory_order_acquire)
                                 ? "failed"
                                 : "completed");
        }
        return;
      }
      if (frame.type != FrameType::kJob) {
        throw std::runtime_error("expected a kJob frame first");
      }
      const JobSpec job = ParseJobSpec(frame.payload);
      const std::string read_group =
          job.read_group.empty() ? config_.read_group : job.read_group;
      const int mapq_cap =
          job.mapq_cap >= 0 ? job.mapq_cap : config_.mapq_cap;
      const SecondaryPolicy policy = job.report_secondary
                                         ? SecondaryPolicy::kReportSecondary
                                         : SecondaryPolicy::kBestOnly;
      {
        std::lock_guard<std::mutex> lock(s->out_mu);
        s->groups.emplace(
            pipeline::SamGroupOptions{read_group, mapq_cap, policy});
      }
      std::ostringstream header;
      WriteSamHeader(header, mapper_.reference(), read_group);
      TrySend(s, FrameType::kSamHeader, std::move(header).str());

      const int read_length = engine_->config().read_length;
      FastqAssembler fastq;
      FastqRecord rec;
      bool ended = false;
      while (!ended) {
        if (!ReadFrame(s->fd, &frame, limits)) {
          throw std::runtime_error("client disconnected before kEnd");
        }
        switch (frame.type) {
          case FrameType::kData:
            fastq.Append(frame.payload);
            break;
          case FrameType::kEnd:
            fastq.Finish();
            ended = true;
            break;
          default:
            throw std::runtime_error("unexpected frame type mid-job");
        }
        while (fastq.Next(&rec)) {
          if (static_cast<int>(rec.seq.size()) != read_length) {
            obs::ServeSkippedReads().Inc();
            continue;
          }
          AdmitRead(s, std::move(rec));
        }
      }
      if (fastq.HasLeftover()) {
        throw std::runtime_error("trailing bytes after the last record");
      }
      s->input_done.store(true, std::memory_order_release);
      MaybeComplete(s);
    } catch (const std::exception& e) {
      FailSession(s, e.what());
    }
  }

  void AdmitRead(const SessionPtr& s, FastqRecord rec) {
    // enqueued counts before the push so retired can never catch an
    // undercounted total.
    s->enqueued.fetch_add(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(s->out_mu);
      ++s->reads;
    }
    obs::ServeReads().Inc();
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_space_cv_.wait(
        lock, [&] { return queue_.size() < QueueCapacity(); });
    queue_.push_back({s, std::move(rec.name), std::move(rec.seq)});
    lock.unlock();
    queue_cv_.notify_one();
  }

  // --- the pipeline thread (coalescing source + demultiplexing sink) ----

  void PipelineLoop() {
    pipeline::PipelineConfig pcfg = pcfg_;
    pcfg.reference_text = mapper_.genome();
    pcfg.reference_fingerprint = mapper_.reference().fingerprint();
    pcfg.verify = true;
    pcfg.verify_threshold = mapper_.config().error_threshold;
    pcfg.emit_cigar = true;
    pcfg.batch_size = config_.batch_size;
    const int threads = std::max(1, config_.threads);
    pcfg.encode_workers = std::max(1, threads / 2);
    pcfg.verify_workers = std::max(1, threads - threads / 2);
    pipeline::StreamingPipeline pipe(engine_, pcfg);

    const ReferenceSet& ref = mapper_.reference();
    pipeline::CandidateStream stream;
    QueuedRead current;
    std::uint32_t read_counter = 0;
    std::string rc_buf;
    std::vector<std::int64_t> seed_scratch;
    std::vector<const Session*> batch_sessions;  // distinct, per batch

    const pipeline::BatchSource source = [&](pipeline::PairBatch* batch) {
      batch_sessions.clear();
      const std::size_t target = std::max<std::size_t>(
          1, std::min(batch->target_size, pipe.config().batch_size));
      PackCandidateBatch(
          batch, target, &stream,
          [&](std::vector<OrientedCandidate>* positions)
              -> const std::string* {
            for (;;) {
              {
                std::unique_lock<std::mutex> lock(queue_mu_);
                const bool first = batch->candidates.empty();
                const auto ready = [&] {
                  return !queue_.empty() || input_closed_;
                };
                if (first) {
                  // An empty batch waits as long as it takes — the daemon
                  // idles here between jobs.
                  queue_cv_.wait(lock, ready);
                } else if (!queue_cv_.wait_for(
                               lock,
                               std::chrono::milliseconds(
                                   std::max(0, config_.linger_ms)),
                               ready)) {
                  // Linger expired: the partial batch departs rather than
                  // holding one client's reads hostage to another's pace.
                  return nullptr;
                }
                if (queue_.empty()) return nullptr;  // input closed
                current = std::move(queue_.front());
                queue_.pop_front();
              }
              queue_space_cv_.notify_one();
              if (current.session->dead.load(std::memory_order_acquire)) {
                RetireRead(current.session);
                continue;
              }
              mapper_.CollectCandidatesOriented(current.seq, &rc_buf,
                                                &seed_scratch, positions);
              if (positions->empty()) {
                // No candidate anywhere in the genome: the read completes
                // right here, with no SAM records.
                RetireRead(current.session);
                continue;
              }
              {
                std::lock_guard<std::mutex> lock(owners_mu_);
                owners_.emplace(read_counter, current.session);
              }
              ++read_counter;
              return &current.seq;
            }
          },
          [&](const OrientedCandidate& oc, bool last) {
            const int chrom = ref.Locate(oc.pos);
            assert(chrom >= 0);
            batch->read_index.push_back(read_counter - 1);
            batch->read_names.push_back(current.name);
            batch->ref_chrom.push_back(chrom);
            batch->ref_pos.push_back(ref.ToLocal(chrom, oc.pos));
            batch->last_of_read.push_back(last ? 1 : 0);
            // Distinct-session tracking lives in emit, not fetch, so a
            // read carried over from the previous batch still counts
            // toward this batch's coalescing.
            const Session* cur = current.session.get();
            if (batch_sessions.empty() || batch_sessions.back() != cur) {
              bool seen = false;
              for (const Session* p : batch_sessions) {
                if (p == cur) {
                  seen = true;
                  break;
                }
              }
              if (!seen) batch_sessions.push_back(cur);
            }
          });
      if (batch->size() == 0) return false;  // input closed and drained
      obs::ServeBatches().Inc();
      if (batch_sessions.size() >= 2) obs::ServeCoalescedBatches().Inc();
      return true;
    };

    // The ordered sink: batches arrive in submission order, each read's
    // pairs contiguous, so per-read groups close exactly as in a
    // standalone run — just routed to the owning session.
    SessionPtr sink_session;
    std::uint32_t sink_read = 0;
    const auto owner_of = [&](std::uint32_t read) -> SessionPtr {
      if (sink_session == nullptr || sink_read != read) {
        std::lock_guard<std::mutex> lock(owners_mu_);
        const auto it = owners_.find(read);
        assert(it != owners_.end());
        sink_session = it->second;
        sink_read = read;
      }
      return sink_session;
    };
    const pipeline::BatchSink sink = [&](pipeline::PairBatch&& batch) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::uint32_t read = batch.read_index[i];
        if (batch.edits[i] >= 0) {
          const SessionPtr s = owner_of(read);
          if (!s->dead.load(std::memory_order_acquire)) {
            std::lock_guard<std::mutex> lock(s->out_mu);
            s->groups->AddMapping(batch, i);
          }
        }
        if (batch.last_of_read[i] != 0) {
          const SessionPtr s = owner_of(read);
          std::string ready;
          {
            std::lock_guard<std::mutex> lock(s->out_mu);
            const std::size_t n = s->groups->FlushGroup(s->staged, ref);
            s->records += n;
            obs::ServeRecords().Inc(n);
            if (static_cast<std::size_t>(s->staged.tellp()) >=
                kSendThreshold) {
              ready = std::move(s->staged).str();
              s->staged.str({});
            }
          }
          if (!ready.empty()) TrySend(s, FrameType::kSamRecords, ready);
          {
            std::lock_guard<std::mutex> lock(owners_mu_);
            owners_.erase(read);
          }
          sink_session.reset();
          RetireRead(s);
        }
      }
    };

    pipe.Run(source, sink);
  }

  // --- accept loop ------------------------------------------------------

  void Run() {
    if (!engine_->HasReference()) {
      throw std::runtime_error(
          "serve: the engine has no reference loaded (load the index "
          "before starting the server)");
    }
    if (config_.socket_path.empty() ||
        config_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::runtime_error("serve: invalid socket path");
    }
    if (::pipe(stop_pipe_) != 0) {
      throw std::runtime_error("serve: cannot create the stop pipe");
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error("serve: cannot create the listening socket");
    }
    ::unlink(config_.socket_path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      const std::string err = std::strerror(errno);
      Cleanup();
      throw std::runtime_error("serve: cannot bind " + config_.socket_path +
                               ": " + err);
    }

    std::thread pipeline_thread([this] {
      util::SetCurrentThreadName("gkgpu-servepipe");
      PipelineLoop();
    });
    util::SetCurrentThreadName("gkgpu-accept");
    serving_.store(true, std::memory_order_release);

    while (!stopping_.load(std::memory_order_acquire)) {
      pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
      const int n = ::poll(fds, 2, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if ((fds[1].revents & POLLIN) != 0) break;  // shutdown requested
      if ((fds[0].revents & POLLIN) == 0) continue;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      if (config_.request_timeout_sec > 0) {
        // The receive timeout is a short polling *tick*, not the deadline:
        // ReadFrame resumes across ticks and enforces the idle/frame
        // deadlines itself, so an expiry mid-frame no longer kills a
        // slow-but-active client.  Sends keep the full timeout as a hard
        // stall cap.
        timeval tick{};
        tick.tv_usec = 500 * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tick, sizeof(tick));
        timeval tv{};
        tv.tv_sec = config_.request_timeout_sec;
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
      }
      auto session = std::make_shared<Session>(fd, ++session_seq_);
      obs::ServeSessions("accepted").Inc();
      obs::ServeSessionsActive().Add(1);
      std::lock_guard<std::mutex> lock(threads_mu_);
      session_threads_.emplace_back(
          [this, session = std::move(session)]() mutable {
            SessionMain(std::move(session));
          });
    }
    serving_.store(false, std::memory_order_release);

    // Drain: stop accepting, let in-flight sessions finish feeding the
    // queue (bounded by the per-request timeout), then close the queue so
    // the pipeline retires what remains and exits.
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
    {
      std::lock_guard<std::mutex> lock(threads_mu_);
      for (std::thread& t : session_threads_) t.join();
      session_threads_.clear();
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      input_closed_ = true;
    }
    queue_cv_.notify_all();
    pipeline_thread.join();
    Cleanup();

    // One structured line on drain so an operator's log shows what the
    // daemon did before it honored SIGTERM.
    const ServeStats now = ReadRegistryServeStats();
    std::fprintf(
        stderr,
        "gkgpu-serve: drained sessions_accepted=%llu sessions_completed=%llu "
        "sessions_failed=%llu reads=%llu skipped_reads=%llu records=%llu "
        "batches=%llu coalesced_batches=%llu\n",
        static_cast<unsigned long long>(now.sessions_accepted -
                                        baseline_.sessions_accepted),
        static_cast<unsigned long long>(now.sessions_completed -
                                        baseline_.sessions_completed),
        static_cast<unsigned long long>(now.sessions_failed -
                                        baseline_.sessions_failed),
        static_cast<unsigned long long>(now.reads - baseline_.reads),
        static_cast<unsigned long long>(now.skipped_reads -
                                        baseline_.skipped_reads),
        static_cast<unsigned long long>(now.records - baseline_.records),
        static_cast<unsigned long long>(now.batches - baseline_.batches),
        static_cast<unsigned long long>(now.coalesced_batches -
                                        baseline_.coalesced_batches));
  }

  void Shutdown() noexcept {
    stopping_.store(true, std::memory_order_release);
    if (stop_pipe_[1] >= 0) {
      const char byte = 1;
      // Async-signal-safe: a single write to the self-pipe.
      [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
    }
  }

  void Cleanup() noexcept {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (int& fd : stop_pipe_) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }
};

MapServer::MapServer(const ReadMapper& mapper, GateKeeperGpuEngine* engine,
                     ServeConfig config,
                     pipeline::PipelineConfig pipeline_config)
    : impl_(std::make_unique<Impl>(mapper, engine, std::move(config),
                                   std::move(pipeline_config))) {}

MapServer::~MapServer() = default;

void MapServer::Run() { impl_->Run(); }

void MapServer::Shutdown() noexcept { impl_->Shutdown(); }

bool MapServer::serving() const noexcept {
  return impl_->serving_.load(std::memory_order_acquire);
}

ServeStats MapServer::stats() const {
  const ServeStats now = ReadRegistryServeStats();
  const ServeStats& base = impl_->baseline_;
  ServeStats s;
  s.sessions_accepted = now.sessions_accepted - base.sessions_accepted;
  s.sessions_completed = now.sessions_completed - base.sessions_completed;
  s.sessions_failed = now.sessions_failed - base.sessions_failed;
  s.reads = now.reads - base.reads;
  s.skipped_reads = now.skipped_reads - base.skipped_reads;
  s.records = now.records - base.records;
  s.batches = now.batches - base.batches;
  s.coalesced_batches = now.coalesced_batches - base.coalesced_batches;
  return s;
}

}  // namespace gkgpu::serve
