#include "paired/paired.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <set>
#include <stdexcept>
#include <string_view>
#include <tuple>

#include "align/banded.hpp"
#include "align/cigar.hpp"
#include "align/local.hpp"
#include "encode/revcomp.hpp"
#include "mapper/mapq.hpp"
#include "mapper/sam.hpp"
#include "obs/names.hpp"
#include "pipeline/candidate_packer.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace gkgpu {

namespace {

/// One pair's state from seeding to finalization, shared by the blocking
/// and streaming drivers.  c1/c2 are the *pruned* oriented candidate
/// lists; e1/e2 the banded edit distance per candidate (-1 = filter
/// rejected or verification refuted), filled by whichever driver ran the
/// filtration.
struct PairTask {
  FastqRecord r1, r2;
  std::string rc1, rc2;  // reverse complements (verification + SAM)
  std::vector<OrientedCandidate> c1, c2;
  std::vector<int> e1, e2;
  /// Pre-prune candidate lists (joint filtration only): the rescue seed
  /// gate must reason about every seeding hit, not just the concordant
  /// survivors — an empty window in the *pruned* list proves nothing.
  std::vector<OrientedCandidate> all1, all2;
  std::uint64_t seeded = 0;  // oriented candidates before pairing
  bool skipped = false;      // mate length != read length
  /// The concordance prune replaced the lists: every surviving candidate
  /// of either mate has at least one concordant partner on the other —
  /// the invariant joint filtration's partner rows are built on.
  bool pruned = false;
};

/// Exactly the concordant-combination admission test of
/// PairFinalizer::Finalize's scoring loop (opposite strands, FR
/// orientation, fragment within [L, max_insert], window junction-free).
/// Joint filtration's partner rows must use the *same* predicate: a
/// phase-B lane may be killed only when every phase-A lane it could ever
/// combine with was rejected.
bool ConcordantFeasible(const ReferenceSet& ref, int L,
                        std::int64_t max_insert, const OrientedCandidate& x,
                        const OrientedCandidate& y) {
  if (x.strand == y.strand) return false;
  const OrientedCandidate& f = x.strand == 0 ? x : y;
  const OrientedCandidate& r = x.strand == 0 ? y : x;
  if (r.pos < f.pos) return false;
  const std::int64_t frag = r.pos + L - f.pos;
  if (frag > max_insert) return false;
  return ref.WindowWithinChromosome(f.pos, static_cast<int>(frag));
}

/// True when `a` has at least one concordant (opposite-strand, FR
/// orientation, fragment <= max_insert, junction-free) partner in
/// `other`.  `other` is laid out as CollectCandidatesOriented emits it:
/// the forward candidates first, then the reverse ones, each sorted by
/// position.
bool HasConcordantPartner(const ReferenceSet& ref, int L,
                          std::int64_t max_insert, const OrientedCandidate& a,
                          const std::vector<OrientedCandidate>& other) {
  const auto by_pos = [](const OrientedCandidate& c, std::int64_t pos) {
    return c.pos < pos;
  };
  const auto split = std::partition_point(
      other.begin(), other.end(),
      [](const OrientedCandidate& c) { return c.strand == 0; });
  if (a.strand == 0) {
    // Forward candidate: a reverse partner downstream, fragment
    // [a.pos, partner.pos + L) no longer than max_insert.
    const std::int64_t hi = a.pos + max_insert - L;
    for (auto it = std::lower_bound(split, other.end(), a.pos, by_pos);
         it != other.end() && it->pos <= hi; ++it) {
      const std::int64_t frag = it->pos + L - a.pos;
      if (ref.WindowWithinChromosome(a.pos, static_cast<int>(frag))) {
        return true;
      }
    }
  } else {
    // Reverse candidate: a forward partner upstream.
    const std::int64_t lo = a.pos + L - max_insert;
    for (auto it = std::lower_bound(other.begin(), split, lo, by_pos);
         it != split && it->pos <= a.pos; ++it) {
      const std::int64_t frag = a.pos + L - it->pos;
      if (ref.WindowWithinChromosome(it->pos, static_cast<int>(frag))) {
        return true;
      }
    }
  }
  return false;
}

/// The pairing prune: keep only candidates that some opposite-strand mate
/// candidate can complete into a concordant pair.  When no concordant
/// combination exists at all (or a mate produced no candidates) the lists
/// are left untouched — discordant and single-end mappings must stay
/// reachable.  Returns true when the lists were replaced (every survivor
/// then has a concordant partner).
bool PruneConcordant(const ReferenceSet& ref, int L, std::int64_t max_insert,
                     std::vector<OrientedCandidate>* c1,
                     std::vector<OrientedCandidate>* c2) {
  if (c1->empty() || c2->empty()) return false;
  std::vector<OrientedCandidate> keep1;
  std::vector<OrientedCandidate> keep2;
  for (const OrientedCandidate& a : *c1) {
    if (HasConcordantPartner(ref, L, max_insert, a, *c2)) keep1.push_back(a);
  }
  if (keep1.empty()) return false;  // no concordance possible: keep all
  for (const OrientedCandidate& a : *c2) {
    if (HasConcordantPartner(ref, L, max_insert, a, *c1)) keep2.push_back(a);
  }
  assert(!keep2.empty());  // concordance is symmetric
  *c1 = std::move(keep1);
  *c2 = std::move(keep2);
  return true;
}

/// Seeds both mates on both strands and applies the pairing prune.
/// `scratch` amortizes the position buffer across a pair loop.
/// `keep_preprune` (joint filtration) snapshots the unpruned lists for
/// the rescue seed gate.
void SeedPairTask(const ReadMapper& mapper, int L, std::int64_t max_insert,
                  bool keep_preprune, std::vector<std::int64_t>* scratch,
                  PairTask* task) {
  if (static_cast<int>(task->r1.seq.size()) != L ||
      static_cast<int>(task->r2.seq.size()) != L) {
    task->skipped = true;
    return;
  }
  mapper.CollectCandidatesOriented(task->r1.seq, &task->rc1, scratch,
                                   &task->c1);
  mapper.CollectCandidatesOriented(task->r2.seq, &task->rc2, scratch,
                                   &task->c2);
  task->seeded = task->c1.size() + task->c2.size();
  if (keep_preprune) {
    task->all1 = task->c1;
    task->all2 = task->c2;
  }
  task->pruned = PruneConcordant(mapper.reference(), L, max_insert,
                                 &task->c1, &task->c2);
  task->e1.assign(task->c1.size(), -1);
  task->e2.assign(task->c2.size(), -1);
}

/// A mate's selected mapping (or lack of one) entering SAM emission.
struct MateBest {
  bool mapped = false;
  std::int64_t pos = 0;  // global
  std::uint8_t strand = 0;
  int edit = -1;
  bool rescued = false;
  /// Computed mapping quality (mapper/mapq.hpp); 0 when unmapped.
  int mapq = 0;
  /// Rescue found >= 2 distinct minimum-edit placements in the window
  /// (a repeat): the chosen one is a coin flip and must score MAPQ 0,
  /// exactly like ties on every other path.
  bool ambiguous = false;
  /// Reference bases the placement consumes: the read length for
  /// verified candidates (banded verification is length-vs-length), the
  /// fit alignment's span for rescued placements — fragment lengths and
  /// duplicate signatures must use this, not the read length, or indel
  /// rescues understate TLEN.
  int ref_span = 0;
  /// Rescue-path CIGAR from the fit aligner's traceback (a rescued
  /// placement may span != read-length reference bases, so the emitter
  /// must not recompute it from a fixed window); empty = recompute.
  std::string cigar;
};

/// Flow-cell coordinates parsed from an Illumina-style read name, for
/// the optical-duplicate pixel distance.
struct TileCoord {
  bool valid = false;
  std::int64_t tile = 0;
  std::int64_t x = 0;
  std::int64_t y = 0;
};

/// Parses the trailing tile:x:y of a colon-delimited read name (both the
/// 5-field "machine:lane:tile:x:y" and 7-field CASAVA 1.8+
/// "machine:run:flowcell:lane:tile:x:y" layouts end the same way).  The
/// name's first whitespace token is used, with any "/1" / "/2" mate
/// suffix stripped.  Anything that doesn't fit returns invalid — such
/// reads simply never classify as optical.
TileCoord ParseTileCoord(std::string_view name) {
  const std::size_t ws = name.find_first_of(" \t");
  if (ws != std::string_view::npos) name = name.substr(0, ws);
  if (name.size() >= 2 && name[name.size() - 2] == '/' &&
      (name.back() == '1' || name.back() == '2')) {
    name = name.substr(0, name.size() - 2);
  }
  std::int64_t fields[3] = {0, 0, 0};  // tile, x, y (last three fields)
  int parsed = 0;
  TileCoord out;
  while (parsed < 3) {
    const std::size_t colon = name.rfind(':');
    const std::string_view field =
        colon == std::string_view::npos ? name : name.substr(colon + 1);
    if (field.empty()) return out;
    std::int64_t value = 0;
    for (const char c : field) {
      if (c < '0' || c > '9') return out;
      value = value * 10 + (c - '0');
    }
    fields[2 - parsed] = value;
    ++parsed;
    if (colon == std::string_view::npos) {
      // Fewer than 5 fields total: tile:x:y alone (a bare "100:8:9") is
      // not an Illumina name, just three numbers.
      return out;
    }
    name = name.substr(0, colon);
  }
  // At least two more fields must precede tile:x:y (machine + lane).
  if (std::count(name.begin(), name.end(), ':') < 1) return out;
  out.valid = true;
  out.tile = fields[0];
  out.x = fields[1];
  out.y = fields[2];
  return out;
}

/// Best / runner-up penalty summary of one mate's verified placements,
/// via the shared scan in mapper/mapq.cpp.
EditSummary Summarize(const std::vector<MateBest>& v) {
  std::vector<int> edits;
  edits.reserve(v.size());
  for (const MateBest& m : v) edits.push_back(m.edit);
  return SummarizeEdits(edits);
}

/// Everything FinalizePair needs besides the pair itself.  One instance
/// per mapping run; finalization happens strictly in pair input order in
/// both drivers, so the model evolves identically and the SAM output is
/// byte-identical.
struct PairFinalizer {
  const ReadMapper* mapper = nullptr;
  const PairedConfig* cfg = nullptr;
  int L = 0;
  int e = 0;
  InsertSizeModel model{};
  PairedStats* stats = nullptr;
  std::ostream* sam = nullptr;
  /// When set, receives the fitted insert mean (0 until fitted) after
  /// every model update — the streaming source reads it from another
  /// thread to order deferred lanes by likelihood, so it must be atomic.
  std::atomic<double>* mean_out = nullptr;

  void Finalize(const PairTask& task);

 private:
  double InsertPenalty(std::int64_t frag) const;
  MateBest Rescue(const MateBest& anchor, const std::string& fwd,
                  const std::string& rc,
                  const std::vector<OrientedCandidate>& preprune);
  /// Pigeonhole seed gate: true when SW rescue over starts [lo, hi] on
  /// `strand` provably cannot place the mate within the error threshold,
  /// because dense e+1-seed lookups of an all-ACGT read left no candidate
  /// anywhere in [lo - e, hi + e].  Requires an interior window — the
  /// seeder drops out-of-bounds and junction-crossing hits, so near the
  /// chromosome edge absence of a candidate proves nothing.
  bool RescueProvablyFutile(std::int64_t lo, std::int64_t hi,
                            std::uint8_t strand, const std::string& fwd,
                            const ChromosomeInfo& info,
                            const std::vector<OrientedCandidate>& preprune)
      const;
  /// True (and remembers the signature) when this proper pair's fragment —
  /// keyed on (chromosome, position, strand, TLEN) — was already seen, so
  /// the later copy is the duplicate.  Finalization runs strictly in pair
  /// input order in both drivers, so marking is deterministic and
  /// identical across them.
  /// When optical_dup_distance > 0 and the later copy's tile:x:y sits
  /// within that many pixels of an earlier copy on the same tile, *optical
  /// is set (the record is still a duplicate either way).
  bool IsDuplicateFragment(const MateBest& fwd, std::uint8_t first_strand,
                           std::int64_t frag, const std::string& r1_name,
                           bool* optical);
  /// Discordant analogue: both ends' (position, strand), normalized
  /// position-major so mate roles don't split a signature.
  bool IsDuplicateDiscordant(const MateBest& a, const MateBest& b);
  /// Single-end analogue: the mapped mate's (position, strand) — there is
  /// no fragment length to key on when the partner is lost.
  bool IsDuplicateSingleEnd(const MateBest& mapped);
  void EmitMate(const FastqRecord& rec, const std::string& rc, bool first,
                const MateBest& me, const MateBest& mate, std::int64_t tlen,
                bool proper, bool duplicate);

  LocalAligner rescue_aligner_;
  /// Resurrects early-outed lanes whose pair came up empty (Finalize runs
  /// on one thread per mapping run, so a member verifier is safe).
  BandedVerifier resurrect_verifier_;
  /// Fragment signatures of emitted proper pairs (mark_duplicates only):
  /// global forward-mate position (chromosome + local position in one),
  /// first-mate strand, fragment length (|TLEN|) — mapped to the flow-cell
  /// coordinates of every copy seen so far (coordinates are only parsed
  /// and stored when optical_dup_distance > 0; the vector stays empty
  /// otherwise, so plain duplicate marking costs what the old set did).
  std::map<std::tuple<std::int64_t, std::uint8_t, std::int64_t>,
           std::vector<TileCoord>>
      seen_fragments_;
  /// Signatures of emitted discordant pairs and single-end records, kept
  /// apart from each other and from the proper-pair set: a record class
  /// says how the fragment was sequenced, and cross-class collisions
  /// would mark records that share one locus by coincidence.
  std::set<std::tuple<std::int64_t, std::uint8_t, std::int64_t, std::uint8_t>>
      seen_discordant_;
  std::set<std::tuple<std::int64_t, std::uint8_t>> seen_single_;
};

/// Insert-size term of the pair score: squared z-distance from the fitted
/// mean, scaled so 4 sigma costs two edits; zero until the model is
/// fitted.  Capped so one outlier insert cannot beat an edit-distance gap
/// of more than ~8.
double PairFinalizer::InsertPenalty(std::int64_t frag) const {
  if (!model.fitted()) return 0.0;
  const double sd = std::max(model.sigma(), 1.0);
  const double z = (static_cast<double>(frag) - model.mean()) / sd;
  return std::min(z * z / 8.0, 8.0);
}

/// Smith-Waterman-style fit alignment over the insert window the model
/// predicts for the lost mate (align/local.hpp): one banded DP over the
/// whole window replaces the per-offset banded scans, recovers placements
/// whose reference span differs from the read length (indels the fixed
/// L-wide windows could never fit), and yields the CIGAR directly from
/// the traceback.  Deterministic, so both drivers rescue identically.
bool PairFinalizer::RescueProvablyFutile(
    std::int64_t lo, std::int64_t hi, std::uint8_t strand,
    const std::string& fwd, const ChromosomeInfo& info,
    const std::vector<OrientedCandidate>& preprune) const {
  const MapperConfig& mc = mapper->config();
  // The pigeonhole argument needs a full e+1 non-overlapping exact-seed
  // set: dense mode only, and the read must be long enough to carry it.
  if (mc.seed_mode != SeedMode::kDense) return false;
  if (mc.k <= 0 || L / mc.k < e + 1) return false;
  // A non-ACGT base voids a seed's exactness (its k-mer never encodes),
  // so a read carrying one gets no guarantee.  The reverse complement of
  // an ACGT read is ACGT, so checking the forward sequence covers both
  // orientations.
  for (const char c : fwd) {
    if (c != 'A' && c != 'C' && c != 'G' && c != 'T') return false;
  }
  // A placement starting at p in [lo, hi] with <= e edits has an exact
  // seed whose derived candidate start lies in [p - e, p + e] (net indel
  // displacement).  That candidate survives the seeder's bounds and
  // junction drops only when the whole displaced window stays inside the
  // chromosome — otherwise the gate must stand down.
  if (lo - e < info.offset || hi + e > info.offset + info.length - L) {
    return false;
  }
  // Pre-prune layout mirrors CollectCandidatesOriented: forward
  // candidates first, then reverse, each sorted by position.
  const auto split = std::partition_point(
      preprune.begin(), preprune.end(),
      [](const OrientedCandidate& c) { return c.strand == 0; });
  const auto first = strand == 0 ? preprune.begin() : split;
  const auto last = strand == 0 ? split : preprune.end();
  const auto it = std::lower_bound(
      first, last, lo - e,
      [](const OrientedCandidate& c, std::int64_t p) { return c.pos < p; });
  return it == last || it->pos > hi + e;
}

MateBest PairFinalizer::Rescue(const MateBest& anchor, const std::string& fwd,
                               const std::string& rc,
                               const std::vector<OrientedCandidate>& preprune) {
  const ReferenceSet& ref = mapper->reference();
  std::int64_t frag_lo = L;
  std::int64_t frag_hi = cfg->max_insert;
  if (model.fitted()) {
    const double mu = model.mean();
    const double sd = model.sigma();
    frag_lo = std::max<std::int64_t>(
        L, static_cast<std::int64_t>(std::llround(mu - 4.0 * sd)));
    frag_hi = std::min<std::int64_t>(
        cfg->max_insert,
        static_cast<std::int64_t>(std::llround(mu + 4.0 * sd)));
    if (frag_hi < frag_lo) {
      frag_lo = L;
      frag_hi = cfg->max_insert;
    }
  }
  MateBest best;
  best.strand = anchor.strand == 0 ? 1 : 0;
  // Bounds on the placement's first reference base, as before; the window
  // handed to the aligner extends e bases past the last admissible start's
  // read span so an indel-bearing placement is not clipped at the edge.
  std::int64_t lo, hi;
  if (anchor.strand == 0) {
    lo = anchor.pos + frag_lo - L;
    hi = anchor.pos + frag_hi - L;
  } else {
    lo = anchor.pos + L - frag_hi;
    hi = anchor.pos + L - frag_lo;
  }
  const int chrom = ref.Locate(anchor.pos);
  assert(chrom >= 0);
  const ChromosomeInfo& info = ref.chromosome(static_cast<std::size_t>(chrom));
  lo = std::max(lo, info.offset);
  hi = std::min(hi, info.offset + info.length - L);
  if (hi < lo) return best;
  if (cfg->joint_filtration &&
      RescueProvablyFutile(lo, hi, best.strand, fwd, info, preprune)) {
    ++stats->rescue_gate_skips;
    return best;
  }
  ++stats->rescue_invocations;
  const std::int64_t window_end =
      std::min(info.offset + info.length, hi + L + e);
  const std::string& oriented = best.strand != 0 ? rc : fwd;
  const std::string_view genome = mapper->genome();

  // The fit DP is O(read x window); a huge --max-insert window (before
  // the insert model fits) would balloon that matrix, so the window is
  // scanned in fixed-width chunks overlapping by L + 2e — wide enough
  // that every placement lies wholly inside some chunk.  Starts are
  // bounded to [lo, hi] inside the DP (max_begin): the e-base window
  // extension only licenses an admissible start to *span* past hi + L,
  // and a better placement beginning beyond hi cannot shadow an
  // in-range one.
  constexpr std::int64_t kFitChunk = 8192;
  const std::int64_t step =
      std::max<std::int64_t>(1, kFitChunk - (L + 2 * e));
  LocalAlignment fit;
  std::int64_t fit_pos = 0;
  bool ambiguous = false;
  for (std::int64_t cs = lo; cs < window_end && cs <= hi; cs += step) {
    const std::int64_t ce = std::min(window_end, cs + kFitChunk);
    const std::string_view chunk(genome.data() + cs,
                                 static_cast<std::size_t>(ce - cs));
    const LocalAlignment cf =
        rescue_aligner_.BestFit(oriented, chunk, e, hi - cs);
    if (cf.edits < 0) continue;
    const std::int64_t pos = cs + cf.ref_begin;
    if (fit.edits < 0 || cf.edits < fit.edits) {
      fit = cf;
      fit_pos = pos;
      ambiguous = cf.placements > 1;
    } else if (cf.edits == fit.edits) {
      // Ambiguity at the tied-best level: a distinct locus in a later
      // chunk, or multiple placements inside this chunk (an overlap
      // re-find of the same placement alone is not ambiguity).
      if (cf.placements > 1 || std::abs(pos - fit_pos) > std::max(1, e)) {
        ambiguous = true;
      }
    }
  }
  if (fit.edits < 0) return best;
  best.mapped = true;
  best.rescued = true;
  best.pos = fit_pos;
  best.edit = fit.edits;
  best.ref_span = fit.ref_span;
  best.ambiguous = ambiguous;
  best.cigar = fit.cigar;
  return best;
}

bool PairFinalizer::IsDuplicateFragment(const MateBest& fwd,
                                        std::uint8_t first_strand,
                                        std::int64_t frag,
                                        const std::string& r1_name,
                                        bool* optical) {
  *optical = false;
  if (!cfg->mark_duplicates) return false;
  const auto [it, inserted] = seen_fragments_.try_emplace(
      std::make_tuple(fwd.pos, first_strand, frag));
  if (cfg->optical_dup_distance <= 0) return !inserted;
  const TileCoord mine = ParseTileCoord(r1_name);
  if (!inserted && mine.valid) {
    const std::int64_t d = cfg->optical_dup_distance;
    for (const TileCoord& prev : it->second) {
      if (prev.valid && prev.tile == mine.tile &&
          std::abs(prev.x - mine.x) <= d && std::abs(prev.y - mine.y) <= d) {
        *optical = true;
        break;
      }
    }
  }
  // Every copy's coordinates join the cluster, so a chain of adjacent
  // well-copies classifies optical even when only neighbours are close.
  it->second.push_back(mine);
  return !inserted;
}

bool PairFinalizer::IsDuplicateDiscordant(const MateBest& a,
                                          const MateBest& b) {
  if (!cfg->mark_duplicates) return false;
  std::int64_t pos1 = a.pos, pos2 = b.pos;
  std::uint8_t s1 = a.strand, s2 = b.strand;
  if (std::tie(pos2, s2) < std::tie(pos1, s1)) {
    std::swap(pos1, pos2);
    std::swap(s1, s2);
  }
  return !seen_discordant_.emplace(pos1, s1, pos2, s2).second;
}

bool PairFinalizer::IsDuplicateSingleEnd(const MateBest& mapped) {
  if (!cfg->mark_duplicates) return false;
  return !seen_single_.emplace(mapped.pos, mapped.strand).second;
}

void PairFinalizer::EmitMate(const FastqRecord& rec, const std::string& rc,
                             bool first, const MateBest& me,
                             const MateBest& mate, std::int64_t tlen,
                             bool proper, bool duplicate) {
  if (sam == nullptr) return;
  const ReferenceSet& ref = mapper->reference();

  int flags = kSamPaired | (first ? kSamFirstInPair : kSamSecondInPair);
  if (proper) flags |= kSamProperPair;
  if (duplicate) flags |= kSamDuplicate;
  if (!me.mapped) flags |= kSamUnmapped;
  if (!mate.mapped) flags |= kSamMateUnmapped;
  if (me.mapped && me.strand != 0) flags |= kSamReverse;
  if (mate.mapped && mate.strand != 0) flags |= kSamMateReverse;

  SamRecord out;
  out.qname = rec.name;
  out.flags = flags;
  out.tlen = tlen;
  out.read_group = cfg->read_group;

  int my_chrom = -1;
  int mate_chrom = -1;
  std::int64_t my_local = -1;
  std::int64_t mate_local = -1;
  if (me.mapped) {
    my_chrom = ref.Locate(me.pos);
    my_local = ref.ToLocal(my_chrom, me.pos);
  }
  if (mate.mapped) {
    mate_chrom = ref.Locate(mate.pos);
    mate_local = ref.ToLocal(mate_chrom, mate.pos);
  }
  // Placement: an unmapped mate is placed at its partner's coordinate
  // (SAM recommended practice), keeping the pair adjacent in sorted
  // output.
  if (!me.mapped && mate.mapped) {
    my_chrom = mate_chrom;
    my_local = mate_local;
  }
  if (me.mapped || mate.mapped) {
    out.rname = ref.chromosome(static_cast<std::size_t>(my_chrom)).name;
    out.pos = my_local;
    out.rnext = (!mate.mapped || !me.mapped || mate_chrom == my_chrom)
                    ? std::string_view("=")
                    : std::string_view(
                          ref.chromosome(static_cast<std::size_t>(
                                             mate.mapped ? mate_chrom
                                                         : my_chrom))
                              .name);
    out.pnext = mate.mapped ? mate_local : my_local;
  }
  // Unmapped records carry MAPQ 0 (no placement to be confident in);
  // mapped ones the computed value — never 255 ("unavailable").
  out.mapq = me.mapped ? me.mapq : 0;

  // SEQ/QUAL follow the record's orientation: FLAG 0x10 emits the
  // reverse-complemented sequence and reversed quality string.
  std::string rqual;
  std::string_view seq = rec.seq;
  std::string_view qual = rec.qual.empty() ? std::string_view("*")
                                           : std::string_view(rec.qual);
  if (me.mapped && me.strand != 0) {
    seq = rc;
    if (!rec.qual.empty()) {
      rqual.assign(rec.qual.rbegin(), rec.qual.rend());
      qual = rqual;
    }
  }
  out.seq = seq;
  out.qual = qual;

  std::string cigar;
  if (me.mapped) {
    if (!me.cigar.empty()) {
      // Rescue placements carry the fit aligner's traceback; their
      // reference span may differ from the read length, so recomputing
      // against a fixed L-wide window would be wrong.
      cigar = me.cigar;
    } else {
      const std::string_view window(mapper->genome().data() + me.pos,
                                    static_cast<std::size_t>(L));
      const Alignment aln = BandedAlign(seq, window, me.edit);
      cigar =
          aln.distance >= 0 ? aln.cigar : std::to_string(seq.size()) + "M";
    }
    out.cigar = cigar;
    out.nm = me.edit;
  }
  WriteSam(*sam, out);
}

void PairFinalizer::Finalize(const PairTask& task) {
  PairedStats& st = *stats;
  if (task.skipped) {
    ++st.skipped_pairs;
    EmitMate(task.r1, task.rc1, true, {}, {}, 0, false, false);
    EmitMate(task.r2, task.rc2, false, {}, {}, 0, false, false);
    return;
  }

  // Verified mappings per mate.
  std::vector<MateBest> v1, v2;
  const auto verified_mate = [this](const OrientedCandidate& c, int edits) {
    MateBest m;
    m.mapped = true;
    m.pos = c.pos;
    m.strand = c.strand;
    m.edit = edits;
    m.ref_span = L;
    return m;
  };
  for (std::size_t i = 0; i < task.c1.size(); ++i) {
    if (task.e1[i] >= 0) v1.push_back(verified_mate(task.c1[i], task.e1[i]));
  }
  for (std::size_t i = 0; i < task.c2.size(); ++i) {
    if (task.e2[i] >= 0) v2.push_back(verified_mate(task.c2[i], task.e2[i]));
  }

  // Best concordant combination under the insert model, tracking the
  // runner-up combination's score — the pair-level MAPQ evidence (both
  // mates' edits plus the insert term enter the gap, so pairing can
  // confidently place a mate whose solo placements are repeat-tied).
  bool have_pair = false;
  double best_score = 0.0;
  double second_score = -1.0;
  MateBest b1, b2;
  std::int64_t best_frag = 0;
  int ties = 0;
  const ReferenceSet& ref = mapper->reference();
  for (const MateBest& m1 : v1) {
    for (const MateBest& m2 : v2) {
      if (m1.strand == m2.strand) continue;
      const MateBest& f = m1.strand == 0 ? m1 : m2;
      const MateBest& r = m1.strand == 0 ? m2 : m1;
      if (r.pos < f.pos) continue;
      const std::int64_t frag = r.pos + L - f.pos;
      if (frag > cfg->max_insert) continue;
      if (!ref.WindowWithinChromosome(f.pos, static_cast<int>(frag))) {
        continue;
      }
      const double score = m1.edit + m2.edit + InsertPenalty(frag);
      if (!have_pair || score < best_score) {
        if (have_pair) {
          second_score =
              second_score < 0.0 ? best_score
                                 : std::min(second_score, best_score);
        }
        have_pair = true;
        best_score = score;
        b1 = m1;
        b2 = m2;
        best_frag = frag;
        ties = 1;
      } else if (score == best_score) {
        ++ties;
        second_score = best_score;
      } else if (second_score < 0.0 || score < second_score) {
        second_score = score;
      }
    }
  }

  if (have_pair) {
    ++st.proper_pairs;
    // Only unambiguous pairs train the model — a repeat-torn tie would
    // feed it arbitrary fragment lengths.
    if (ties == 1) {
      model.Observe(static_cast<double>(best_frag));
      if (mean_out != nullptr) {
        mean_out->store(model.fitted() ? model.mean() : 0.0,
                        std::memory_order_relaxed);
      }
    }
    // Both placements stand or fall with the combination, so both mates
    // carry the pair-level MAPQ.
    const int pair_mapq =
        ComputeMapq(best_score, second_score,
                    static_cast<std::size_t>(ties), cfg->mapq_cap);
    b1.mapq = pair_mapq;
    b2.mapq = pair_mapq;
    const bool first_is_fwd = b1.strand == 0;
    bool optical = false;
    const bool dup = IsDuplicateFragment(first_is_fwd ? b1 : b2, b1.strand,
                                         best_frag, task.r1.name, &optical);
    if (dup) ++st.duplicate_pairs;
    if (optical) ++st.optical_duplicate_pairs;
    EmitMate(task.r1, task.rc1, true, b1, b2,
             first_is_fwd ? best_frag : -best_frag, true, dup);
    EmitMate(task.r2, task.rc2, false, b2, b1,
             first_is_fwd ? -best_frag : best_frag, true, dup);
    return;
  }

  // No concordant combination stands, so the discordant / single-end /
  // rescue paths below need every mate placement — including lanes joint
  // filtration early-outed (e == -2, never verified).  Verifying them
  // directly here reproduces exactly what independent filtration would
  // have fed the lossless filter + verifier, keeping SAM byte-identical.
  // (When a combination exists this is unnecessary: a killed lane's
  // feasible partners all verified-rejected, so it can join no
  // combination and the proper-pair emission never reads it.)
  const std::string_view genome = mapper->genome();
  const auto resurrect = [&](const std::vector<OrientedCandidate>& c,
                             const std::vector<int>& ev,
                             const std::string& fwd, const std::string& rc,
                             std::vector<MateBest>* v) {
    for (std::size_t i = 0; i < ev.size(); ++i) {
      if (ev[i] != -2) continue;
      ++st.resurrected_lanes;
      const std::string& oriented = c[i].strand != 0 ? rc : fwd;
      const std::string_view window(genome.data() + c[i].pos,
                                    static_cast<std::size_t>(L));
      const int d = resurrect_verifier_.Distance(oriented, window, e);
      if (d >= 0) v->push_back(verified_mate(c[i], d));
    }
  };
  resurrect(task.c1, task.e1, task.r1.seq, task.rc1, &v1);
  resurrect(task.c2, task.e2, task.r2.seq, task.rc2, &v2);

  // Per-mate placement summaries: the single-end MAPQ evidence.
  const EditSummary s1 = Summarize(v1);
  const EditSummary s2 = Summarize(v2);

  // Best single-end mapping per mate (fewest edits, leftmost, forward
  // first on ties) — deterministic.
  const auto best_of = [](const std::vector<MateBest>& v) {
    MateBest best;
    for (const MateBest& m : v) {
      if (!best.mapped || m.edit < best.edit ||
          (m.edit == best.edit &&
           (m.pos < best.pos ||
            (m.pos == best.pos && m.strand < best.strand)))) {
        best = m;
      }
    }
    return best;
  };
  MateBest m1 = best_of(v1);
  MateBest m2 = best_of(v2);
  // Solo evidence: each mate scored against its own placement set.
  if (m1.mapped) {
    m1.mapq = ComputeMapq(s1.best, s1.second, s1.best_count, cfg->mapq_cap);
  }
  if (m2.mapped) {
    m2.mapq = ComputeMapq(s2.best, s2.second, s2.best_count, cfg->mapq_cap);
  }

  // Mate rescue: one mapped mate predicts where the other must lie.
  if (cfg->mate_rescue && (m1.mapped != m2.mapped)) {
    const MateBest& anchor = m1.mapped ? m1 : m2;
    MateBest rescued = Rescue(anchor, m1.mapped ? task.r2.seq : task.r1.seq,
                              m1.mapped ? task.rc2 : task.rc1,
                              m1.mapped ? task.all2 : task.all1);
    if (rescued.mapped) {
      ++st.rescued_mates;
      // A rescued placement exists only because of its anchor: its
      // confidence is bounded by the anchor's and its own residue — and
      // a repeat-torn rescue window is a tie like any other, score 0.
      rescued.mapq =
          rescued.ambiguous
              ? 0
              : RescueMapq(anchor.mapq, rescued.edit, cfg->mapq_cap);
      // Outer fragment span: the rightmost mate's placement may consume
      // more or fewer than L reference bases when rescue found an indel
      // — which can push a start-at-the-bound placement past max_insert,
      // or an insertion-rich one below the read length.  The scored
      // concordant path can produce neither geometry (it enforces
      // L <= frag <= max_insert), so such a pair keeps its mapping but
      // is emitted discordant instead of proper.
      const MateBest& f = anchor.strand == 0 ? anchor : rescued;
      const MateBest& r = anchor.strand == 0 ? rescued : anchor;
      const std::int64_t frag = r.pos + r.ref_span - f.pos;
      const bool concordant = frag >= L && frag <= cfg->max_insert;
      (m1.mapped ? m2 : m1) = rescued;
      bool dup = false;
      if (concordant) {
        ++st.proper_pairs;
        bool optical = false;
        dup = IsDuplicateFragment(m1.strand == 0 ? m1 : m2, m1.strand, frag,
                                  task.r1.name, &optical);
        if (dup) ++st.duplicate_pairs;
        if (optical) ++st.optical_duplicate_pairs;
      } else {
        ++st.discordant_pairs;
        dup = IsDuplicateDiscordant(m1, m2);
        if (dup) ++st.duplicate_discordant_pairs;
      }
      EmitMate(task.r1, task.rc1, true, m1, m2,
               m1.strand == 0 ? frag : -frag, concordant, dup);
      EmitMate(task.r2, task.rc2, false, m2, m1,
               m2.strand == 0 ? frag : -frag, concordant, dup);
      return;
    }
  }

  if (m1.mapped && m2.mapped) {
    ++st.discordant_pairs;
    const bool dup = IsDuplicateDiscordant(m1, m2);
    if (dup) ++st.duplicate_discordant_pairs;
    std::int64_t tlen1 = 0;
    const int chrom1 = ref.Locate(m1.pos);
    const int chrom2 = ref.Locate(m2.pos);
    if (chrom1 == chrom2) {
      const std::int64_t outer =
          std::max(m1.pos, m2.pos) + L - std::min(m1.pos, m2.pos);
      tlen1 = m1.pos < m2.pos || (m1.pos == m2.pos) ? outer : -outer;
    }
    EmitMate(task.r1, task.rc1, true, m1, m2, tlen1, false, dup);
    EmitMate(task.r2, task.rc2, false, m2, m1, -tlen1, false, dup);
    return;
  }

  if (m1.mapped || m2.mapped) {
    ++st.single_end_pairs;
    // Only the mapped record carries the duplicate bit: its unmapped
    // partner makes no placement claim to deduplicate.
    const bool dup = IsDuplicateSingleEnd(m1.mapped ? m1 : m2);
    if (dup) ++st.duplicate_singletons;
    EmitMate(task.r1, task.rc1, true, m1, m2, 0, false, m1.mapped && dup);
    EmitMate(task.r2, task.rc2, false, m2, m1, 0, false, m2.mapped && dup);
    return;
  }

  ++st.unmapped_pairs;
  EmitMate(task.r1, task.rc1, true, m1, m2, 0, false, false);
  EmitMate(task.r2, task.rc2, false, m2, m1, 0, false, false);
}

}  // namespace

PairedEndMapper::PairedEndMapper(const ReadMapper& mapper, PairedConfig config)
    : mapper_(mapper),
      config_(std::move(config)),
      verify_pool_(std::make_unique<ThreadPool>(mapper.config().verify_threads,
                                                "gkgpu-pverify")) {
  // A fragment must at least cover one read; a smaller bound would make
  // every pair discordant and silently disable the prune.
  config_.max_insert =
      std::max<std::int64_t>(config_.max_insert, mapper.config().read_length);
}

PairedEndMapper::~PairedEndMapper() = default;

namespace {

// Folds one paired run's totals into the process funnel: seeding,
// insert-window pruning, SW mate rescues, and per-mate mapped/unmapped
// terminals.  Called once per driver, batch-granular by construction.
void RecordPairedFunnel(const PairedStats& stats) {
  if (!obs::Enabled()) return;
  obs::CandidatesSeeded().Inc(stats.candidates_seeded);
  obs::CandidatesPruned().Inc(stats.candidates_seeded -
                              stats.candidates_paired);
  obs::RescuedMates().Inc(stats.rescued_mates);
  const std::uint64_t live_pairs = stats.pairs - stats.skipped_pairs;
  const std::uint64_t unmapped_mates =
      2 * stats.unmapped_pairs + stats.single_end_pairs;
  obs::ReadsMapped().Inc(2 * live_pairs - unmapped_mates);
  obs::ReadsUnmapped().Inc(unmapped_mates);
}

}  // namespace

PairedStats PairedEndMapper::MapPairs(const std::vector<FastqRecord>& r1,
                                      const std::vector<FastqRecord>& r2,
                                      GateKeeperGpuEngine* filter,
                                      std::ostream* sam) {
  if (r1.size() != r2.size()) {
    throw std::invalid_argument(
        "PairedEndMapper: R1 and R2 record counts differ (" +
        std::to_string(r1.size()) + " vs " + std::to_string(r2.size()) + ")");
  }
  const int L = mapper_.config().read_length;
  const int e = mapper_.config().error_threshold;
  if (filter != nullptr && filter->config().read_length != L) {
    throw std::invalid_argument(
        "PairedEndMapper: engine read length != mapper read length");
  }

  PairedStats stats;
  stats.pairs = r1.size();
  WallTimer total;
  if (filter != nullptr && !filter->HasReference()) {
    filter->LoadReference(mapper_.genome());
  }

  PairFinalizer fin;
  fin.mapper = &mapper_;
  fin.cfg = &config_;
  fin.L = L;
  fin.e = e;
  fin.model = InsertSizeModel(config_.min_model_observations);
  fin.stats = &stats;
  fin.sam = sam;

  const std::size_t batch_pairs =
      std::max<std::size_t>(1, config_.max_pairs_per_batch);
  std::vector<PairTask> tasks;
  // Distinct mate sequences of the batch, as views into the (stable)
  // seeded tasks — both mates' pruned candidates flow through one
  // filtration round with no per-mate string materialization.
  std::vector<std::string_view> table;
  std::vector<CandidatePair> candidates;
  struct CandRef {
    std::uint32_t task;
    std::uint8_t mate;
    std::uint32_t slot;  // index into the mate's candidate list
  };
  std::vector<CandRef> provenance;
  std::vector<std::int64_t> seed_scratch;
  const std::string_view genome = mapper_.genome();
  const ReferenceSet& ref = mapper_.reference();

  // Joint-filtration scheduling state (reused per batch).
  const bool joint = config_.joint_filtration && filter != nullptr;
  struct DeferredRun {
    std::uint32_t task;
    std::uint8_t mate;  // the deferred (phase-B) mate
    double key;         // |first feasible fragment - insert mean|
  };
  std::vector<DeferredRun> deferred;
  constexpr std::size_t kNoRun = static_cast<std::size_t>(-1);
  std::vector<std::size_t> a_start;  // phase-A lane of (task, mate) runs

  for (std::size_t base = 0; base < r1.size(); base += batch_pairs) {
    const std::size_t count = std::min(batch_pairs, r1.size() - base);
    tasks.clear();
    table.clear();
    candidates.clear();
    provenance.clear();

    // --- Seeding + pairing prune. ---
    WallTimer seed_timer;
    for (std::size_t i = 0; i < count; ++i) {
      PairTask t;
      t.r1 = r1[base + i];
      t.r2 = r2[base + i];
      if (!PairedFastqReader::NamesMatch(t.r1.name, t.r2.name)) {
        throw std::invalid_argument(
            "PairedEndMapper: mate name mismatch at pair " +
            std::to_string(base + i) + ": '" + t.r1.name + "' vs '" +
            t.r2.name + "'");
      }
      // Pre-prune lists are kept whenever the config enables the rescue
      // seed gate, filter or not — the gate reasons about seeding hits.
      SeedPairTask(mapper_, L, config_.max_insert, config_.joint_filtration,
                   &seed_scratch, &t);
      stats.candidates_seeded += t.seeded;
      stats.candidates_paired += t.c1.size() + t.c2.size();
      tasks.push_back(std::move(t));
    }
    // The table views point into `tasks`, so it is built only after the
    // batch's tasks stopped moving (vector growth relocates elements).
    // Joint filtration lays the batch out in two phases: every pruned
    // pair's larger mate is deferred to phase B, where its lanes can be
    // early-outed the moment phase A rejected all their concordant
    // partners.
    deferred.clear();
    a_start.assign(2 * tasks.size(), kNoRun);
    const bool fitted = joint && fin.model.fitted();
    const double mean = fitted ? fin.model.mean() : 0.0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const PairTask& t = tasks[i];
      // Defer only pruned pairs: the prune guarantees every deferred lane
      // a non-empty partner row, so phase B has kills to gain.
      const int defer_mate =
          joint && t.pruned ? (t.c2.size() >= t.c1.size() ? 1 : 0) : -1;
      for (int mate = 0; mate < 2; ++mate) {
        const std::vector<OrientedCandidate>& c = mate == 0 ? t.c1 : t.c2;
        if (c.empty()) continue;
        if (mate == defer_mate) {
          // Likelihood key: fragment of the lane run's first feasible
          // combination vs the fitted insert mean — most-likely runs
          // filter first, so their partners' verdicts arrive before the
          // unlikely tail is even scheduled.
          double key = 0.0;
          if (fitted) {
            const std::vector<OrientedCandidate>& o =
                mate == 0 ? t.c2 : t.c1;
            for (const OrientedCandidate& p : o) {
              if (ConcordantFeasible(ref, L, config_.max_insert, c[0], p)) {
                const std::int64_t frag = std::max(c[0].pos, p.pos) + L -
                                          std::min(c[0].pos, p.pos);
                key = std::abs(static_cast<double>(frag) - mean);
                break;
              }
            }
          }
          deferred.push_back({static_cast<std::uint32_t>(i),
                              static_cast<std::uint8_t>(mate), key});
          continue;
        }
        a_start[2 * i + static_cast<std::size_t>(mate)] = candidates.size();
        table.push_back(mate == 0 ? std::string_view(t.r1.seq)
                                  : std::string_view(t.r2.seq));
        const std::uint32_t ri = static_cast<std::uint32_t>(table.size() - 1);
        for (std::size_t j = 0; j < c.size(); ++j) {
          candidates.push_back({ri, c[j].strand, 0, c[j].pos});
          provenance.push_back({static_cast<std::uint32_t>(i),
                                static_cast<std::uint8_t>(mate),
                                static_cast<std::uint32_t>(j)});
        }
      }
    }
    JointFilterPlan plan;
    if (!deferred.empty()) {
      plan.phase_a = candidates.size();
      plan.partner_off.push_back(0);
      std::stable_sort(deferred.begin(), deferred.end(),
                       [](const DeferredRun& a, const DeferredRun& b) {
                         return a.key < b.key;
                       });
      for (const DeferredRun& d : deferred) {
        const PairTask& t = tasks[d.task];
        const std::vector<OrientedCandidate>& cd =
            d.mate == 0 ? t.c1 : t.c2;
        const std::vector<OrientedCandidate>& co =
            d.mate == 0 ? t.c2 : t.c1;
        const std::size_t other =
            a_start[2 * d.task + static_cast<std::size_t>(1 - d.mate)];
        table.push_back(d.mate == 0 ? std::string_view(t.r1.seq)
                                    : std::string_view(t.r2.seq));
        const std::uint32_t ri = static_cast<std::uint32_t>(table.size() - 1);
        for (std::size_t j = 0; j < cd.size(); ++j) {
          for (std::size_t s = 0; s < co.size(); ++s) {
            if (ConcordantFeasible(ref, L, config_.max_insert, cd[j],
                                   co[s])) {
              plan.partner_idx.push_back(
                  static_cast<std::uint32_t>(other + s));
            }
          }
          plan.partner_off.push_back(
              static_cast<std::uint32_t>(plan.partner_idx.size()));
          candidates.push_back({ri, cd[j].strand, 0, cd[j].pos});
          provenance.push_back({d.task, d.mate,
                                static_cast<std::uint32_t>(j)});
        }
      }
    }
    stats.seeding_seconds += seed_timer.Seconds();

    // --- Pre-alignment filtering on the surviving candidates. ---
    std::vector<PairResult> decisions;
    if (filter != nullptr) {
      const FilterRunStats fs =
          plan.empty()
              ? filter->FilterCandidates(table, candidates, &decisions)
              : filter->FilterCandidates(table, candidates, plan,
                                         &decisions);
      stats.filter_seconds += fs.filter_seconds;
      stats.kernel_seconds += fs.kernel_seconds;
      stats.rejected_pairs += fs.rejected;
      stats.bypassed_pairs += fs.bypassed;
      stats.earlyout_lanes += fs.earlyouted;
      // Each killed lane short-circuits every combination it could have
      // formed — its whole partner row.
      for (std::size_t j = 0; j < plan.phase_b(); ++j) {
        if (decisions[plan.phase_a + j].bypassed == 2) {
          stats.shortcircuited_combinations +=
              plan.partner_off[j + 1] - plan.partner_off[j];
        }
      }
    }

    // --- Verification, each candidate on its seeded strand. ---
    WallTimer verify_timer;
    std::atomic<std::uint64_t> verified{0};
    verify_pool_->ParallelFor(
        0, candidates.size(), 256, [&](std::size_t i0, std::size_t i1) {
          BandedVerifier verifier;
          std::uint64_t local = 0;
          for (std::size_t i = i0; i < i1; ++i) {
            if (filter != nullptr && decisions[i].accept == 0) {
              if (decisions[i].bypassed == 2) {
                // Early-outed, not rejected: -2 marks the verdict unknown
                // so finalization can resurrect the lane if its pair
                // comes up empty.  Distinct lanes map to distinct
                // (task, mate, slot), so the write is race-free.
                const CandRef pr = provenance[i];
                PairTask& t = tasks[pr.task];
                (pr.mate == 0 ? t.e1 : t.e2)[pr.slot] = -2;
              }
              continue;
            }
            ++local;
            const CandRef pr = provenance[i];
            PairTask& t = tasks[pr.task];
            const OrientedCandidate oc =
                (pr.mate == 0 ? t.c1 : t.c2)[pr.slot];
            const std::string& oriented =
                oc.strand != 0 ? (pr.mate == 0 ? t.rc1 : t.rc2)
                               : (pr.mate == 0 ? t.r1.seq : t.r2.seq);
            const std::string_view window(
                genome.data() + oc.pos, static_cast<std::size_t>(L));
            (pr.mate == 0 ? t.e1 : t.e2)[pr.slot] =
                verifier.Distance(oriented, window, e);
          }
          verified.fetch_add(local, std::memory_order_relaxed);
        });
    stats.verification_pairs += verified.load();
    stats.verify_seconds += verify_timer.Seconds();

    // --- Finalization, strictly in pair input order. ---
    WallTimer fin_timer;
    for (const PairTask& t : tasks) fin.Finalize(t);
    stats.finalize_seconds += fin_timer.Seconds();
  }

  stats.insert_mean = fin.model.mean();
  stats.insert_sigma = fin.model.sigma();
  stats.insert_observations = fin.model.count();
  stats.total_seconds = total.Seconds();
  RecordPairedFunnel(stats);
  return stats;
}

PairedStats PairedEndMapper::MapPairsStreaming(PairedFastqReader& reader,
                                               GateKeeperGpuEngine* engine,
                                               pipeline::PipelineConfig pcfg,
                                               std::ostream* sam) {
  if (engine == nullptr) {
    throw std::invalid_argument(
        "MapPairsStreaming: the streaming path is the filter integration "
        "and requires an engine");
  }
  const int L = mapper_.config().read_length;
  const int e = mapper_.config().error_threshold;
  if (engine->config().read_length != L) {
    throw std::invalid_argument(
        "MapPairsStreaming: engine read length != mapper read length");
  }

  PairedStats stats;
  WallTimer total;
  if (!engine->HasReference()) engine->LoadReference(mapper_.genome());

  pcfg.reference_text = mapper_.genome();
  pcfg.reference_fingerprint = mapper_.reference().fingerprint();
  pcfg.verify = true;
  pcfg.verify_threshold = e;
  pcfg.emit_cigar = false;  // the finalizer recomputes CIGARs per mate
  if (pcfg.adaptive) {
    // Retune adaptive knobs the caller left at the generic single-end
    // defaults to the paired preset; explicitly-set values stand.
    const pipeline::AdaptiveBatcherConfig generic;
    const pipeline::AdaptiveBatcherConfig tuned =
        pipeline::PairedAdaptiveDefaults();
    pipeline::AdaptiveBatcherConfig& a = pcfg.adaptive_config;
    if (a.grow_factor == generic.grow_factor) {
      a.grow_factor = tuned.grow_factor;
    }
    if (a.starve_watermark == generic.starve_watermark) {
      a.starve_watermark = tuned.starve_watermark;
    }
    if (a.backpressure_watermark == generic.backpressure_watermark) {
      a.backpressure_watermark = tuned.backpressure_watermark;
    }
  }
  pipeline::StreamingPipeline pipe(engine, pcfg);

  PairFinalizer fin;
  fin.mapper = &mapper_;
  fin.cfg = &config_;
  fin.L = L;
  fin.e = e;
  fin.model = InsertSizeModel(config_.min_model_observations);
  fin.stats = &stats;
  fin.sam = sam;

  // Pairs in flight: pushed (fully seeded) by the source thread, filled
  // and finalized strictly in input order by the ordered sink.  Entries
  // are stable deque references; the mutex guards only the deque's
  // structure (push/pop/index arithmetic).
  struct Pending : PairTask {
    std::size_t received1 = 0;  // edits delivered into e1
    std::size_t received2 = 0;  // edits delivered into e2
    bool complete() const {
      return received1 == e1.size() && received2 == e2.size();
    }
  };
  std::deque<Pending> pending;
  std::mutex mu;
  std::uint64_t base_index = 0;  // pair index of pending.front()

  // Source-side state (source thread only).
  struct MateFeed {
    std::uint64_t pair;
    std::uint8_t mate;
    std::uint8_t pruned;  // the pair's concordance prune replaced its lists
  };
  std::deque<MateFeed> feed;
  std::uint64_t next_pair = 0;
  std::uint64_t cur_pair = 0;
  std::uint8_t cur_mate = 0;
  std::uint8_t cur_pruned = 0;
  std::uint64_t pairs_local = 0;
  std::uint64_t seeded_local = 0;
  std::uint64_t paired_local = 0;
  double seed_seconds = 0.0;
  std::vector<std::int64_t> seed_scratch;
  pipeline::CandidateStream stream;

  // Joint-filtration state (source thread): per-lane flags of the batch
  // being packed, and the carry-over marker telling whether the previous
  // batch ended mid-run (that run's continuation must not be deferred —
  // its partner lanes are not all in one batch).
  const bool joint = config_.joint_filtration;
  std::vector<std::uint8_t> lane_last;
  std::vector<std::uint8_t> lane_pruned;
  std::uint32_t tail_pair = 0;
  std::uint8_t tail_mate = 0;
  bool tail_open = false;
  std::atomic<double> published_mean{0.0};
  fin.mean_out = &published_mean;
  std::uint64_t shortcircuited_local = 0;
  const ReferenceSet& ref = mapper_.reference();

  // Reorders a packed batch into the [phase-A..., phase-B...) joint
  // layout: each fully-in-batch pruned pair defers its larger mate's
  // lanes to phase B (likelihood-ordered, within-run order preserved —
  // the ordered sink routes edits by per-mate arrival order) and records
  // their concordant phase-A partners in the batch's kill plan.
  const auto build_joint_plan = [&](pipeline::PairBatch* batch) {
    const std::size_t n = batch->candidates.size();
    if (n == 0) return;
    struct Run {
      std::size_t begin, end;
      std::uint32_t pair;
      std::uint8_t mate;
    };
    std::vector<Run> runs;
    for (std::size_t i = 0; i < n;) {
      std::size_t j = i + 1;
      while (j < n && batch->read_index[j] == batch->read_index[i] &&
             batch->mate[j] == batch->mate[i]) {
        ++j;
      }
      runs.push_back({i, j, batch->read_index[i], batch->mate[i]});
      i = j;
    }
    std::vector<char> complete(runs.size());
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const bool continuation = r == 0 && tail_open &&
                                runs[0].pair == tail_pair &&
                                runs[0].mate == tail_mate;
      complete[r] = !continuation && lane_last[runs[r].end - 1] != 0;
    }
    tail_pair = runs.back().pair;
    tail_mate = runs.back().mate;
    tail_open = lane_last[n - 1] == 0;

    const auto oriented = [&](std::size_t lane) {
      const CandidatePair& c = batch->candidates[lane];
      return OrientedCandidate{c.ref_pos, c.strand};
    };
    struct BRun {
      std::size_t run, partner;
      double key;
    };
    std::vector<BRun> bruns;
    std::vector<char> is_b(runs.size(), 0);
    const double mean = published_mean.load(std::memory_order_relaxed);
    for (std::size_t r = 0; r + 1 < runs.size(); ++r) {
      // Feed order puts a pair's mate-0 run immediately before its
      // mate-1 run; both must be whole for the pair to defer.
      if (runs[r].mate != 0 || runs[r + 1].pair != runs[r].pair ||
          runs[r + 1].mate != 1) {
        continue;
      }
      if (!complete[r] || !complete[r + 1]) continue;
      if (lane_pruned[runs[r].begin] == 0) continue;
      const std::size_t len0 = runs[r].end - runs[r].begin;
      const std::size_t len1 = runs[r + 1].end - runs[r + 1].begin;
      const std::size_t d = len1 >= len0 ? r + 1 : r;
      const std::size_t o = len1 >= len0 ? r : r + 1;
      double key = 0.0;
      if (mean > 0.0) {
        const OrientedCandidate x = oriented(runs[d].begin);
        for (std::size_t s = runs[o].begin; s < runs[o].end; ++s) {
          const OrientedCandidate y = oriented(s);
          if (ConcordantFeasible(ref, L, config_.max_insert, x, y)) {
            const std::int64_t frag =
                std::max(x.pos, y.pos) + L - std::min(x.pos, y.pos);
            key = std::abs(static_cast<double>(frag) - mean);
            break;
          }
        }
      }
      is_b[d] = 1;
      bruns.push_back({d, o, key});
    }
    if (bruns.empty()) return;

    std::vector<std::uint32_t> order;
    order.reserve(n);
    std::vector<std::size_t> new_start(runs.size(), 0);
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (is_b[r]) continue;
      new_start[r] = order.size();
      for (std::size_t i = runs[r].begin; i < runs[r].end; ++i) {
        order.push_back(static_cast<std::uint32_t>(i));
      }
    }
    std::stable_sort(bruns.begin(), bruns.end(),
                     [](const BRun& a, const BRun& b) {
                       return a.key < b.key;
                     });
    JointFilterPlan& plan = batch->joint;
    plan.phase_a = order.size();
    plan.partner_off.push_back(0);
    for (const BRun& br : bruns) {
      const Run& rd = runs[br.run];
      const Run& ro = runs[br.partner];
      for (std::size_t i = rd.begin; i < rd.end; ++i) {
        const OrientedCandidate x = oriented(i);
        for (std::size_t s = ro.begin; s < ro.end; ++s) {
          if (ConcordantFeasible(ref, L, config_.max_insert, x,
                                 oriented(s))) {
            plan.partner_idx.push_back(static_cast<std::uint32_t>(
                new_start[br.partner] + (s - ro.begin)));
          }
        }
        plan.partner_off.push_back(
            static_cast<std::uint32_t>(plan.partner_idx.size()));
        order.push_back(static_cast<std::uint32_t>(i));
      }
    }
    const auto permute = [&](auto* vec) {
      auto tmp = *vec;
      for (std::size_t i = 0; i < n; ++i) tmp[i] = (*vec)[order[i]];
      *vec = std::move(tmp);
    };
    permute(&batch->candidates);
    permute(&batch->read_index);
    permute(&batch->mate);
  };

  const pipeline::BatchSource source = [&](pipeline::PairBatch* batch) {
    WallTimer seed_timer;
    const std::size_t target = std::max<std::size_t>(
        1, std::min(batch->target_size, pipe.config().batch_size));
    lane_last.clear();
    lane_pruned.clear();
    pipeline::PackCandidateBatch(
        batch, target, &stream,
        [&](std::vector<OrientedCandidate>* positions) -> const std::string* {
          for (;;) {
            if (!feed.empty()) {
              const MateFeed f = feed.front();
              feed.pop_front();
              Pending* p;
              {
                std::lock_guard<std::mutex> lk(mu);
                p = &pending[static_cast<std::size_t>(f.pair - base_index)];
              }
              *positions = f.mate == 0 ? p->c1 : p->c2;
              cur_pair = f.pair;
              cur_mate = f.mate;
              cur_pruned = f.pruned;
              return f.mate == 0 ? &p->r1.seq : &p->r2.seq;
            }
            Pending p;
            if (!reader.Next(&p.r1, &p.r2)) return nullptr;
            ++pairs_local;
            SeedPairTask(mapper_, L, config_.max_insert, joint,
                         &seed_scratch, &p);
            seeded_local += p.seeded;
            paired_local += p.c1.size() + p.c2.size();
            const bool has1 = !p.c1.empty();
            const bool has2 = !p.c2.empty();
            const std::uint8_t pruned = p.pruned ? 1 : 0;
            {
              std::lock_guard<std::mutex> lk(mu);
              pending.push_back(std::move(p));
            }
            const std::uint64_t idx = next_pair++;
            if (has1) feed.push_back({idx, 0, pruned});
            if (has2) feed.push_back({idx, 1, pruned});
            // Zero-candidate pairs never enter the pipeline; the sink
            // finalizes them in order off the pending deque.
          }
        },
        [&](const OrientedCandidate&, bool last) {
          batch->read_index.push_back(static_cast<std::uint32_t>(cur_pair));
          batch->mate.push_back(cur_mate);
          lane_last.push_back(last ? 1 : 0);
          lane_pruned.push_back(cur_pruned);
        });
    if (joint) build_joint_plan(batch);
    seed_seconds += seed_timer.Seconds();
    return batch->size() > 0;
  };

  const pipeline::BatchSink sink = [&](pipeline::PairBatch&& batch) {
    // Every killed lane (edits == -2) short-circuited its whole partner
    // row's worth of candidate combinations.
    for (std::size_t j = 0; j < batch.joint.phase_b(); ++j) {
      if (batch.edits[batch.joint.phase_a + j] == -2) {
        shortcircuited_local +=
            batch.joint.partner_off[j + 1] - batch.joint.partner_off[j];
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Pending* p;
      {
        std::lock_guard<std::mutex> lk(mu);
        p = &pending[static_cast<std::size_t>(batch.read_index[i] -
                                              base_index)];
      }
      // The mate column routes each edit to its list; within a mate,
      // candidates arrive in packing (= seeding) order.
      if (batch.mate[i] == 0) {
        p->e1[p->received1++] = batch.edits[i];
      } else {
        p->e2[p->received2++] = batch.edits[i];
      }
    }
    // Finalize every leading pair whose candidates all arrived — strict
    // input order, exactly like the blocking driver.
    for (;;) {
      Pending done;
      {
        std::lock_guard<std::mutex> lk(mu);
        if (pending.empty() || !pending.front().complete()) break;
        done = std::move(pending.front());
        pending.pop_front();
        ++base_index;
      }
      fin.Finalize(done);
    }
  };

  const pipeline::PipelineStats ps = pipe.Run(source, sink);

  // Trailing pairs (zero-candidate tails the sink never saw a batch for).
  while (!pending.empty()) {
    assert(pending.front().complete());
    fin.Finalize(pending.front());
    pending.pop_front();
    ++base_index;
  }

  stats.pairs = pairs_local;  // skipped_pairs is counted by the finalizer
  stats.candidates_seeded = seeded_local;
  stats.candidates_paired = paired_local;
  stats.seeding_seconds = seed_seconds;
  stats.verification_pairs = ps.verified_pairs;
  stats.rejected_pairs = ps.rejected;
  stats.bypassed_pairs = ps.bypassed;
  stats.earlyout_lanes = ps.earlyouted;
  stats.shortcircuited_combinations = shortcircuited_local;
  stats.filter_seconds = ps.filter_seconds;
  stats.kernel_seconds = ps.kernel_seconds;
  stats.verify_seconds = ps.verify_seconds;
  stats.insert_mean = fin.model.mean();
  stats.insert_sigma = fin.model.sigma();
  stats.insert_observations = fin.model.count();
  stats.total_seconds = total.Seconds();
  RecordPairedFunnel(stats);
  return stats;
}

PairedStats StreamPairedFastqToSam(PairedFastqReader& reader,
                                   const ReadMapper& mapper,
                                   GateKeeperGpuEngine* engine,
                                   const PairedConfig& config,
                                   pipeline::PipelineConfig pcfg,
                                   std::ostream* sam) {
  PairedEndMapper paired(mapper, config);
  return paired.MapPairsStreaming(reader, engine, std::move(pcfg), sam);
}

}  // namespace gkgpu
