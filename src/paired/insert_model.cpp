#include "paired/insert_model.hpp"

#include <cmath>

namespace gkgpu {

double InsertSizeModel::sigma() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

}  // namespace gkgpu
