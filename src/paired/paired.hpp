// Strand-aware paired-end mapping subsystem.
//
// A read pair constrains itself: Illumina FR pairs map on opposite strands
// of one chromosome with a fragment length drawn from a tight
// distribution, so candidate locations that no opposite-strand mate
// location can complete are pruned *before* pre-alignment filtering and
// verification — pairing is itself a filter stage, composing with
// GateKeeper-GPU (SOAP3-dp and GenPairX apply the same lever).  The
// subsystem:
//
//   * seeds both mates on both strands (reverse-complement seeding against
//     the one forward k-mer index);
//   * prunes each mate's candidates to those with a concordant
//     opposite-strand partner within the insert window;
//   * filters survivors through the engine's candidate slots (the strand
//     bit rides inside CandidatePair) and verifies with banded alignment;
//   * selects the best concordant combination under a fitted insert-size
//     model (mean/sigma learned online from confident pairs);
//   * rescues a lost mate with a Smith-Waterman-style fit alignment
//     (align/local.hpp) over the window the model predicts when only one
//     mate maps — recovering indel-bearing placements the per-offset
//     banded scans it replaced could not see;
//   * scores every record with a computed MAPQ (mapper/mapq.hpp): proper
//     pairs from the best/second-best concordant-combination score gap
//     (both mates' evidence combined), everything else from the mate's
//     own placement multiplicity; tied placements score 0 and unmapped
//     records 0 — never 255;
//   * optionally marks PCR/optical duplicates (FLAG 0x400) across every
//     record class: proper pairs keyed on (chromosome, position, strand,
//     TLEN), discordant pairs on both ends' (position, strand), and
//     single-end records on the mapped mate's (position, strand); the
//     first record seen on a signature keeps its flags, every later copy
//     is marked;
//   * emits full SAM pair semantics: FLAG 0x1/0x2/0x4/0x8/0x10/0x20/
//     0x40/0x80 (+0x400), RNEXT/PNEXT/TLEN, reverse-complemented SEQ and
//     reversed QUAL on strand-flipped records, NM and RG:Z tags.
//
// Two drivers share one finalization path, so their SAM output is
// byte-identical: MapPairs (blocking, batch-at-a-time) and
// MapPairsStreaming (the bounded-memory streaming pipeline with an
// ordered pair sink).
#ifndef GKGPU_PAIRED_PAIRED_HPP
#define GKGPU_PAIRED_PAIRED_HPP

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "io/paired_fastq.hpp"
#include "mapper/mapper.hpp"
#include "mapper/mapq.hpp"
#include "paired/insert_model.hpp"
#include "pipeline/pipeline.hpp"

namespace gkgpu {

struct PairedConfig {
  /// Largest fragment length considered concordant (also the pruning
  /// window and the un-fitted mate-rescue scan bound).
  std::int64_t max_insert = 1000;
  /// Confident pairs required before the fitted insert model replaces the
  /// [read_length, max_insert] fallback window.
  std::uint64_t min_model_observations = 64;
  bool mate_rescue = true;
  /// Mark duplicate pairs (FLAG 0x400) sharing a fragment signature —
  /// (chromosome, position, strand, TLEN); the first occurrence stays
  /// unmarked.  CLI --mark-duplicates.
  bool mark_duplicates = false;
  /// Pixel-distance component of duplicate marking (mark_duplicates
  /// only): a later copy of a proper-pair signature whose read name
  /// carries Illumina tile:x:y coordinates within this many pixels of an
  /// earlier copy on the same tile classifies as an *optical* duplicate
  /// (counted apart from PCR duplicates — both still flag 0x400).
  /// <= 0 disables the classification.  CLI --optical-dup-distance.
  int optical_dup_distance = 0;
  /// MAPQ ceiling (mapper/mapq.hpp).  CLI --mapq-cap.
  int mapq_cap = kDefaultMapqCap;
  /// Read-group ID: adds RG:Z:<id> to every record ("" = none).  The @RG
  /// header line is the caller's (WriteSamHeader's read_group parameter).
  std::string read_group;
  /// Pairs per blocking batch (both mates' candidates share one
  /// filtration round).
  std::size_t max_pairs_per_batch = 50000;
  /// Mate-aware joint filtration: schedule both mates of each candidate
  /// combination into one filtration batch laid out in two phases, order
  /// the deferred mate's lanes by insert-model likelihood, and early-out
  /// lanes whose partner-mate lanes all rejected — plus a pigeonhole seed
  /// gate that skips provably futile SW rescues.  SAM output is
  /// byte-identical either way (the early-out contract never changes a
  /// verdict); false restores fully independent filtration.
  bool joint_filtration = true;
};

struct PairedStats {
  std::uint64_t pairs = 0;
  std::uint64_t skipped_pairs = 0;  // mate length != read length
  std::uint64_t proper_pairs = 0;
  std::uint64_t discordant_pairs = 0;
  std::uint64_t single_end_pairs = 0;  // one mate mapped, rescue failed
  std::uint64_t unmapped_pairs = 0;
  std::uint64_t rescued_mates = 0;
  /// Proper pairs flagged 0x400 (mark_duplicates only; later copies of an
  /// already-seen fragment signature).
  std::uint64_t duplicate_pairs = 0;
  /// Subset of duplicate_pairs whose tile:x:y read-name coordinates sit
  /// within optical_dup_distance pixels of an earlier copy on the same
  /// tile (optical_dup_distance > 0 only).
  std::uint64_t optical_duplicate_pairs = 0;
  /// Discordant pairs flagged 0x400 — both ends' (position, strand)
  /// already seen on an earlier discordant pair.
  std::uint64_t duplicate_discordant_pairs = 0;
  /// Single-end records flagged 0x400 — the mapped mate's
  /// (position, strand) already seen on an earlier single-end record.
  std::uint64_t duplicate_singletons = 0;

  std::uint64_t candidates_seeded = 0;  // oriented candidates before pairing
  std::uint64_t candidates_paired = 0;  // survivors entering filtration
  std::uint64_t verification_pairs = 0;
  std::uint64_t rejected_pairs = 0;
  std::uint64_t bypassed_pairs = 0;

  // Mate-aware joint filtration (joint_filtration only; all zero when
  // disabled).
  /// Lanes early-outed before filtration (partner-mate lanes all rejected).
  std::uint64_t earlyout_lanes = 0;
  /// Candidate combinations never filtered because one side early-outed —
  /// the sum over killed lanes of their concordance-feasible partner count.
  std::uint64_t shortcircuited_combinations = 0;
  /// Early-outed lanes later verified directly because their pair came up
  /// empty (rare; keeps SAM byte-identical to independent filtration).
  std::uint64_t resurrected_lanes = 0;
  /// SW mate-rescue fit alignments actually run.
  std::uint64_t rescue_invocations = 0;
  /// Rescues skipped by the pigeonhole seed gate (no seed hit of the
  /// rescue strand in the predicted window, dense seeding, interior
  /// window — SW provably cannot place the mate within the threshold).
  std::uint64_t rescue_gate_skips = 0;

  double insert_mean = 0.0;
  double insert_sigma = 0.0;
  std::uint64_t insert_observations = 0;

  double seeding_seconds = 0.0;
  double filter_seconds = 0.0;
  double kernel_seconds = 0.0;
  double verify_seconds = 0.0;
  double finalize_seconds = 0.0;
  double total_seconds = 0.0;

  /// How many times fewer (read, reference) pairs the verifier faced than
  /// independent single-end mapping would have produced — pairing's
  /// candidate-pruning leverage (> 1 on concordant data).
  double PruningRatio() const {
    return candidates_paired == 0
               ? 0.0
               : static_cast<double>(candidates_seeded) /
                     static_cast<double>(candidates_paired);
  }
};

class PairedEndMapper {
 public:
  /// Borrows the single-end mapper for its reference, k-mer index and
  /// seeding; both must outlive this object.  The mapper's read_length /
  /// error_threshold govern both mates.
  PairedEndMapper(const ReadMapper& mapper, PairedConfig config);
  ~PairedEndMapper();

  const PairedConfig& config() const { return config_; }

  /// Blocking path: maps r1[i] with r2[i] (equal sizes; mate names must
  /// match), optionally pre-filtering candidates through `filter`, and
  /// writes two SAM records per pair to `sam` (may be null for stats
  /// only; the header is the caller's).  Pairs whose mates are not the
  /// configured read length are emitted unmapped.
  PairedStats MapPairs(const std::vector<FastqRecord>& r1,
                       const std::vector<FastqRecord>& r2,
                       GateKeeperGpuEngine* filter, std::ostream* sam);

  /// Streaming path: consumes `reader` through the candidate-mode
  /// StreamingPipeline (filtration against the per-device encoded
  /// reference, banded verification in the worker pool) with an ordered
  /// pair sink — byte-identical SAM to MapPairs under bounded memory.
  /// `engine` is required; `pcfg.reference_text`, `verify` and
  /// `verify_threshold` are set by the mapper.
  PairedStats MapPairsStreaming(PairedFastqReader& reader,
                                GateKeeperGpuEngine* engine,
                                pipeline::PipelineConfig pcfg,
                                std::ostream* sam);

 private:
  const ReadMapper& mapper_;
  PairedConfig config_;
  std::unique_ptr<ThreadPool> verify_pool_;
};

/// Convenience front end mirroring StreamFastqToSam: paired FASTQ in,
/// ordered paired SAM out, on the streaming pipeline.
PairedStats StreamPairedFastqToSam(PairedFastqReader& reader,
                                   const ReadMapper& mapper,
                                   GateKeeperGpuEngine* engine,
                                   const PairedConfig& config,
                                   pipeline::PipelineConfig pcfg,
                                   std::ostream* sam);

}  // namespace gkgpu

#endif  // GKGPU_PAIRED_PAIRED_HPP
