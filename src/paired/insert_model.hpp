// Online insert-size model: mean and standard deviation of the fragment
// length, learned from confident concordant pairs as mapping progresses
// (Welford's streaming moments — no buffering, deterministic in
// observation order).  Until enough pairs have been observed the mapper
// falls back to its configured [read_length, max_insert] window; once
// fitted, the model tightens pair scoring and the mate-rescue search
// window to mean ± 4 sigma.
#ifndef GKGPU_PAIRED_INSERT_MODEL_HPP
#define GKGPU_PAIRED_INSERT_MODEL_HPP

#include <cstdint>

namespace gkgpu {

class InsertSizeModel {
 public:
  explicit InsertSizeModel(std::uint64_t min_observations = 64)
      : min_observations_(min_observations) {}

  void Observe(double insert) {
    ++count_;
    const double delta = insert - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (insert - mean_);
  }

  /// Enough confident pairs seen to trust mean()/sigma() over the
  /// configured fallback window.
  bool fitted() const { return count_ >= min_observations_ && count_ >= 2; }

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Sample standard deviation; 0 before two observations.
  double sigma() const;

 private:
  std::uint64_t min_observations_;
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace gkgpu

#endif  // GKGPU_PAIRED_INSERT_MODEL_HPP
