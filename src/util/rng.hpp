// Deterministic, fast random number generation (xoshiro256** seeded via
// splitmix64).  Every generator in the library takes an explicit seed so
// that data sets, experiments and tests are reproducible bit-for-bit.
#ifndef GKGPU_UTIL_RNG_HPP
#define GKGPU_UTIL_RNG_HPP

#include <cstdint>

namespace gkgpu {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  std::uint32_t NextU32() {
    return static_cast<std::uint32_t>(NextU64() >> 32);
  }

  /// Uniform integer in [0, n) (n > 0); unbiased enough for simulation use.
  std::uint64_t Uniform(std::uint64_t n) { return NextU64() % n; }

  /// Uniform double in [0, 1).
  double UniformReal() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return UniformReal() < p; }

  /// Geometric-ish count: number of successes before failure with prob p.
  int Geometric(double p) {
    int n = 0;
    while (Bernoulli(p) && n < 1 << 20) ++n;
    return n;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace gkgpu

#endif  // GKGPU_UTIL_RNG_HPP
