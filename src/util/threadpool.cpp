#include "util/threadpool.hpp"

#include <algorithm>

#include "util/threadname.hpp"

namespace gkgpu {

ThreadPool::ThreadPool(unsigned nthreads, std::string name_prefix) {
  if (nthreads == 0) {
    nthreads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(nthreads);
  for (unsigned i = 0; i < nthreads; ++i) {
    workers_.emplace_back([this, name = name_prefix + std::to_string(i)] {
      util::SetCurrentThreadName(name);
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::RunChunks(Job& job) {
  for (;;) {
    const std::size_t b = job.next.fetch_add(job.grain);
    if (b >= job.end) break;
    // Subtraction-based clamp: `b + grain` could wrap for ranges near
    // SIZE_MAX, which would hand fn an inverted chunk and stall the
    // claim counter.
    const std::size_t e = job.end - b > job.grain ? b + job.grain : job.end;
    (*job.fn)(b, e);
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_job_.wait(lk, [&] {
        return shutdown_ || (job_ != nullptr && job_seq_ != seen);
      });
      if (shutdown_) return;
      job = job_;
      seen = job_seq_;
      job->active_workers.fetch_add(1);
    }
    RunChunks(*job);
    if (job->active_workers.fetch_sub(1) == 1) {
      // The notify must be ordered after the caller's waiter registration:
      // without the mutex, the decrement + notify can land between the
      // caller's predicate check (sees active_workers == 1) and its block
      // on cv_done_, and the wakeup is lost — ParallelFor then sleeps
      // forever on a finished job (observed on single-core hosts).
      // Acquiring mu_ forces this notify to happen either before the
      // caller evaluates the predicate (which then sees 0) or after it
      // blocked (and so receives the signal).
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  // Serial execution when there is nothing to share, or when the range sits
  // so close to SIZE_MAX that the atomic claim counter could wrap past
  // `end` and re-issue chunks forever.  The loop advances by subtraction-
  // clamped steps so it cannot overflow either.
  const auto run_serial = [&] {
    for (std::size_t b = begin; b < end;) {
      const std::size_t e = end - b > grain ? b + grain : end;
      fn(b, e);
      b = e;
    }
  };
  // Each participant's final claim overshoots `end` by one grain before it
  // notices, so with W workers plus the caller the claim counter can reach
  // end + (W+1)*grain.  Division keeps the headroom test itself overflow-
  // free.
  const std::size_t participants = workers_.size() + 1;
  const bool claim_could_wrap =
      grain > (static_cast<std::size_t>(-1) - end) / (participants + 1);
  if (workers_.empty() || end - begin <= grain || claim_could_wrap) {
    run_serial();
    return;
  }
  Job job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.fn = &fn;
  job.next.store(begin);
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (job_ != nullptr) {
      // The pool is already mid-job: either fn itself called ParallelFor
      // (nesting) or another thread shares this pool (the streaming
      // pipeline's stage threads may).  Corrupting the published job would
      // deadlock the other caller, so this call degrades to serial.
      lk.unlock();
      run_serial();
      return;
    }
    job_ = &job;
    ++job_seq_;
  }
  cv_job_.notify_all();
  RunChunks(job);  // the caller participates
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return job.active_workers.load() == 0; });
    job_ = nullptr;
  }
}

}  // namespace gkgpu
