#include "util/threadpool.hpp"

#include <algorithm>

namespace gkgpu {

ThreadPool::ThreadPool(unsigned nthreads) {
  if (nthreads == 0) {
    nthreads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(nthreads);
  for (unsigned i = 0; i < nthreads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::RunChunks(Job& job) {
  for (;;) {
    const std::size_t b = job.next.fetch_add(job.grain);
    if (b >= job.end) break;
    const std::size_t e = std::min(b + job.grain, job.end);
    (*job.fn)(b, e);
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_job_.wait(lk, [&] { return shutdown_ || (job_ != nullptr && job_seq_ != seen); });
      if (shutdown_) return;
      job = job_;
      seen = job_seq_;
      job->active_workers.fetch_add(1);
    }
    RunChunks(*job);
    if (job->active_workers.fetch_sub(1) == 1) {
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  if (workers_.empty() || end - begin <= grain) {
    for (std::size_t b = begin; b < end; b += grain) {
      fn(b, std::min(b + grain, end));
    }
    return;
  }
  Job job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.fn = &fn;
  job.next.store(begin);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++job_seq_;
  }
  cv_job_.notify_all();
  RunChunks(job);  // the caller participates
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return job.active_workers.load() == 0; });
    job_ = nullptr;
  }
}

}  // namespace gkgpu
