// Names the calling thread for debuggers, `top -H`, and the stage
// tracer.  pthread_setname_np caps names at 15 characters on Linux; the
// full name is still registered with the tracer.
#ifndef GKGPU_UTIL_THREADNAME_HPP
#define GKGPU_UTIL_THREADNAME_HPP

#include <string>

namespace gkgpu::util {

void SetCurrentThreadName(const std::string& name);

}  // namespace gkgpu::util

#endif  // GKGPU_UTIL_THREADNAME_HPP
