#include "util/bitops.hpp"

#include <algorithm>
#include <array>

namespace gkgpu {

void ShiftToLater(const Word* src, Word* dst, int nwords, int bits) {
  if (bits <= 0) {
    if (dst != src) std::memmove(dst, src, sizeof(Word) * nwords);
    return;
  }
  const int word_off = bits / kWordBits;
  const int bit_off = bits % kWordBits;
  // Walk from the last word backwards so that in-place shifts are safe.
  for (int i = nwords - 1; i >= 0; --i) {
    const int j = i - word_off;
    Word v = 0;
    if (bit_off == 0) {
      if (j >= 0) v = src[j];
    } else {
      if (j >= 0) v = src[j] >> bit_off;
      if (j - 1 >= 0) v |= src[j - 1] << (kWordBits - bit_off);
    }
    dst[i] = v;
  }
}

void ShiftToEarlier(const Word* src, Word* dst, int nwords, int bits) {
  if (bits <= 0) {
    if (dst != src) std::memmove(dst, src, sizeof(Word) * nwords);
    return;
  }
  const int word_off = bits / kWordBits;
  const int bit_off = bits % kWordBits;
  for (int i = 0; i < nwords; ++i) {
    const int j = i + word_off;
    Word v = 0;
    if (bit_off == 0) {
      if (j < nwords) v = src[j];
    } else {
      if (j < nwords) v = src[j] << bit_off;
      if (j + 1 < nwords) v |= src[j + 1] >> (kWordBits - bit_off);
    }
    dst[i] = v;
  }
}

void ReducePairsOr(const Word* diff2, int length, Word* mask) {
  const int enc_words = EncodedWords(length);
  const int mask_words = MaskWords(length);
  for (int m = 0; m < mask_words; ++m) {
    const int hi = 2 * m;
    const int lo = 2 * m + 1;
    Word w = CompressPairsOrHalf(hi < enc_words ? diff2[hi] : 0) << 16;
    w |= CompressPairsOrHalf(lo < enc_words ? diff2[lo] : 0);
    mask[m] = w;
  }
  ZeroTailBits(mask, mask_words, length);
}

void ZeroTailBits(Word* mask, int nwords, int length_bits) {
  const int full = length_bits / kWordBits;
  const int rem = length_bits % kWordBits;
  if (full < nwords && rem > 0) {
    mask[full] &= ~Word{0} << (kWordBits - rem);
  }
  for (int i = full + (rem > 0 ? 1 : 0); i < nwords; ++i) mask[i] = 0;
}

void SetBitRange(Word* mask, int from, int to) {
  for (int p = from; p < to; ++p) SetMaskBit(mask, p);
}

int CountOneRuns(const Word* mask, int nwords) {
  int runs = 0;
  Word prev_lsb = 0;  // bit just before the current word's MSB
  for (int i = 0; i < nwords; ++i) {
    const Word w = mask[i];
    const Word before = (w >> 1) | (prev_lsb << (kWordBits - 1));
    runs += std::popcount(w & ~before);
    prev_lsb = w & 1u;
  }
  return runs;
}

const RunCountLut& RunCountLut::Instance() {
  static const RunCountLut lut = [] {
    RunCountLut t{};
    for (int state = 0; state < 2; ++state) {
      for (unsigned nib = 0; nib < 16; ++nib) {
        int runs = 0;
        int s = state;
        for (int b = 3; b >= 0; --b) {  // MSB-first within the nibble
          const int bit = (nib >> b) & 1;
          if (bit == 1 && s == 0) ++runs;
          s = bit;
        }
        t.table[(state << 4) | nib] =
            static_cast<std::uint8_t>((runs << 1) | s);
      }
    }
    return t;
  }();
  return lut;
}

int CountOneRunsLut(const Word* mask, int nwords) {
  const RunCountLut& lut = RunCountLut::Instance();
  int runs = 0;
  unsigned state = 0;
  for (int i = 0; i < nwords; ++i) {
    const Word w = mask[i];
    for (int shift = kWordBits - 4; shift >= 0; shift -= 4) {
      const unsigned nib = (w >> shift) & 0xFu;
      const unsigned packed = lut.table[(state << 4) | nib];
      runs += packed >> 1;
      state = packed & 1u;
    }
  }
  return runs;
}

void AmendShortZeroRuns(Word* mask, int nwords) {
  // A 0 at position p is flipped when it belongs to a run of <= 2 zeros
  // bounded by 1s:
  //   run of 1:  v[p-1] & v[p+1]
  //   run of 2:  (v[p-1] & v[p+2]) at the first zero,
  //              (v[p-2] & v[p+1]) at the second zero.
  // l<n>[p] = v[p-n], r<n>[p] = v[p+n]; all computed from the original mask.
  // Scratch sized for the larger 2-bit-domain masks (kMaxEncodedWords).
  constexpr int kMax = kMaxEncodedWords;
  Word l1[kMax], l2[kMax], r1[kMax], r2[kMax];
  ShiftToLater(mask, l1, nwords, 1);
  ShiftToLater(mask, l2, nwords, 2);
  ShiftToEarlier(mask, r1, nwords, 1);
  ShiftToEarlier(mask, r2, nwords, 2);
  for (int i = 0; i < nwords; ++i) {
    mask[i] |= (l1[i] & r1[i]) | (l1[i] & r2[i]) | (l2[i] & r1[i]);
  }
}

const AmendLut& AmendLut::Instance() {
  static const AmendLut lut = [] {
    AmendLut t{};
    for (unsigned idx = 0; idx < 4096; ++idx) {
      const unsigned left = (idx >> 10) & 0x3u;   // v[p-2], v[p-1] (MSB-first)
      const unsigned byte = (idx >> 2) & 0xFFu;   // v[p] .. v[p+7]
      const unsigned right = idx & 0x3u;          // v[p+8], v[p+9]
      // Assemble the 12-bit neighbourhood MSB-first and apply the scalar
      // amendment rule inside the 8-bit core.
      int bits[12];
      bits[0] = (left >> 1) & 1;
      bits[1] = left & 1;
      for (int b = 0; b < 8; ++b) bits[2 + b] = (byte >> (7 - b)) & 1;
      bits[10] = (right >> 1) & 1;
      bits[11] = right & 1;
      unsigned out = byte;
      for (int b = 0; b < 8; ++b) {
        const int p = 2 + b;
        if (bits[p] != 0) continue;
        const bool left1 = bits[p - 1] == 1;
        const bool left2 = bits[p - 2] == 1;
        const bool right1 = bits[p + 1] == 1;
        const bool right2 = bits[p + 2] == 1;
        if ((left1 && right1) || (left1 && right2) || (left2 && right1)) {
          out |= 1u << (7 - b);
        }
      }
      t.table[idx] = static_cast<std::uint8_t>(out);
    }
    return t;
  }();
  return lut;
}

void AmendShortZeroRunsLut(Word* mask, int nwords) {
  const AmendLut& lut = AmendLut::Instance();
  // Gather original bytes MSB-first so neighbour bits come from the
  // unamended mask, then rewrite.  Sized for 2-bit-domain masks.
  constexpr int kMaxBytes = kMaxEncodedWords * 4;
  std::uint8_t orig[kMaxBytes];
  const int nbytes = nwords * 4;
  for (int i = 0; i < nwords; ++i) {
    orig[4 * i + 0] = static_cast<std::uint8_t>(mask[i] >> 24);
    orig[4 * i + 1] = static_cast<std::uint8_t>(mask[i] >> 16);
    orig[4 * i + 2] = static_cast<std::uint8_t>(mask[i] >> 8);
    orig[4 * i + 3] = static_cast<std::uint8_t>(mask[i]);
  }
  for (int b = 0; b < nbytes; ++b) {
    const unsigned prev = b > 0 ? orig[b - 1] : 0;
    const unsigned next = b + 1 < nbytes ? orig[b + 1] : 0;
    const unsigned left = prev & 0x3u;          // v[p-2], v[p-1]
    const unsigned right = (next >> 6) & 0x3u;  // v[p+8], v[p+9]
    const unsigned idx = (left << 10) | (unsigned{orig[b]} << 2) | right;
    const std::uint8_t amended = lut.table[idx];
    const int word = b / 4;
    const int sh = 24 - 8 * (b % 4);
    mask[word] = (mask[word] & ~(Word{0xFFu} << sh)) | (Word{amended} << sh);
  }
}

}  // namespace gkgpu
