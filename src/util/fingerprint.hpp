// Streaming FNV-1a content fingerprint, used to verify that two holders of
// a reference genome (the engine's encoded copy, a pipeline's text view)
// are really talking about the same bytes.  The hash is byte-sequential,
// so hashing parts with the previous result as seed equals hashing the
// concatenation — ReferenceSet exploits this to keep its fingerprint
// current across incremental Add() calls.
#ifndef GKGPU_UTIL_FINGERPRINT_HPP
#define GKGPU_UTIL_FINGERPRINT_HPP

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gkgpu {

inline constexpr std::uint64_t kFingerprintSeed = 0xcbf29ce484222325ull;

inline std::uint64_t FingerprintText(std::string_view text,
                                     std::uint64_t seed = kFingerprintSeed) {
  std::uint64_t h = seed;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Raw-byte variant for non-text payloads (index-file sections).
inline std::uint64_t FingerprintBytes(const void* data, std::size_t bytes,
                                      std::uint64_t seed = kFingerprintSeed) {
  return FingerprintText(
      std::string_view(static_cast<const char*>(data), bytes), seed);
}

/// Fingerprint of a persisted k-mer index: reference content, seed length
/// and on-disk format version all feed the hash, so an index built from a
/// different genome, a different k, or an incompatible serializer is
/// rejected at load time instead of producing silently wrong candidates.
inline std::uint64_t IndexFingerprint(std::uint64_t reference_fingerprint,
                                      int k, std::uint32_t format_version) {
  std::uint64_t h = reference_fingerprint;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(static_cast<std::uint64_t>(k));
  mix(static_cast<std::uint64_t>(format_version));
  return h;
}

}  // namespace gkgpu

#endif  // GKGPU_UTIL_FINGERPRINT_HPP
