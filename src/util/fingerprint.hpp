// Streaming FNV-1a content fingerprint, used to verify that two holders of
// a reference genome (the engine's encoded copy, a pipeline's text view)
// are really talking about the same bytes.  The hash is byte-sequential,
// so hashing parts with the previous result as seed equals hashing the
// concatenation — ReferenceSet exploits this to keep its fingerprint
// current across incremental Add() calls.
#ifndef GKGPU_UTIL_FINGERPRINT_HPP
#define GKGPU_UTIL_FINGERPRINT_HPP

#include <cstdint>
#include <string_view>

namespace gkgpu {

inline constexpr std::uint64_t kFingerprintSeed = 0xcbf29ce484222325ull;

inline std::uint64_t FingerprintText(std::string_view text,
                                     std::uint64_t seed = kFingerprintSeed) {
  std::uint64_t h = seed;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace gkgpu

#endif  // GKGPU_UTIL_FINGERPRINT_HPP
