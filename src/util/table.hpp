// Console table printer: the benchmark harnesses print rows shaped like the
// paper's tables, and this keeps the formatting in one place.
#ifndef GKGPU_UTIL_TABLE_HPP
#define GKGPU_UTIL_TABLE_HPP

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace gkgpu {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Renders the table with column-aligned cells and a header rule.
  void Print(std::ostream& os) const;

  /// Formats a double with `digits` decimals (no trailing localization).
  static std::string Num(double v, int digits = 2);
  /// Formats an integer with thousands separators, like the paper's tables.
  static std::string Count(std::uint64_t v);
  static std::string Percent(double v, int digits = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gkgpu

#endif  // GKGPU_UTIL_TABLE_HPP
