// Minimal blocking thread pool with a chunked parallel-for, used by the GPU
// execution simulator (one pool per simulated device) and by the multicore
// CPU filter baselines.
#ifndef GKGPU_UTIL_THREADPOOL_HPP
#define GKGPU_UTIL_THREADPOOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gkgpu {

class ThreadPool {
 public:
  /// Creates `nthreads` persistent workers (0 means hardware concurrency).
  /// Workers are named `<name_prefix><index>` (visible in `top -H`, gdb,
  /// and traces).
  explicit ThreadPool(unsigned nthreads = 0,
                      std::string name_prefix = "gkgpu-pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks of
  /// at most `grain` items, on the pool plus the calling thread.  Blocks
  /// until every chunk finished.  fn must be thread-safe.
  ///
  /// Edge behaviour: empty/inverted ranges are no-ops, `grain == 0` is
  /// treated as 1, and ranges whose chunk arithmetic could wrap SIZE_MAX
  /// run serially.  Re-entrant and concurrent calls are safe: while a job
  /// is in flight, any further ParallelFor (nested from inside fn, or from
  /// another thread sharing the pool) degrades to serial execution on the
  /// calling thread instead of corrupting the active job.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Job {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<int> active_workers{0};
  };

  void WorkerLoop();
  static void RunChunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  Job* job_ = nullptr;          // guarded by mu_
  std::uint64_t job_seq_ = 0;   // guarded by mu_
  bool shutdown_ = false;       // guarded by mu_
};

}  // namespace gkgpu

#endif  // GKGPU_UTIL_THREADPOOL_HPP
