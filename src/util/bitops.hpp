// Bit-vector primitives shared by every pre-alignment filter in the library.
//
// Sequences are 2-bit encoded (A=00, C=01, G=10, T=11) and packed 16 bases
// per 32-bit word with the first base in the most-significant bits, exactly
// as GateKeeper-GPU describes (a 100 bp read occupies 7 words).  Difference
// masks are reduced to 1 bit per base (32 bases per word, first base at the
// MSB).  "Later" positions are toward the LSB end of the array, so shifting
// a read toward later positions models a deletion, toward earlier positions
// an insertion.
#ifndef GKGPU_UTIL_BITOPS_HPP
#define GKGPU_UTIL_BITOPS_HPP

#include <bit>
#include <cstdint>
#include <cstring>

namespace gkgpu {

using Word = std::uint32_t;

inline constexpr int kWordBits = 32;
inline constexpr int kBasesPerWord = 16;  // 2 bits per base
/// Maximum supported sequence length in bases (covers the paper's 50-300 bp).
inline constexpr int kMaxReadLength = 512;
/// Encoded words needed for a kMaxReadLength sequence.
inline constexpr int kMaxEncodedWords = kMaxReadLength / kBasesPerWord;
/// Reduced (1 bit / base) mask words for a kMaxReadLength sequence.
inline constexpr int kMaxMaskWords = kMaxReadLength / kWordBits;
/// Largest error threshold accepted anywhere (10% of the longest read,
/// rounded up generously).
inline constexpr int kMaxErrorThreshold = 52;

/// Number of 32-bit words needed to 2-bit encode `length` bases.
constexpr int EncodedWords(int length) {
  return (length + kBasesPerWord - 1) / kBasesPerWord;
}

/// Number of 32-bit words in a reduced 1-bit-per-base mask of `length` bases.
constexpr int MaskWords(int length) {
  return (length + kWordBits - 1) / kWordBits;
}

/// Reads the 2-bit code of base `i` from an encoded word array.
inline unsigned GetBase2Bit(const Word* enc, int i) {
  const int word = i / kBasesPerWord;
  const int slot = i % kBasesPerWord;
  return (enc[word] >> (kWordBits - 2 - 2 * slot)) & 0x3u;
}

/// Writes the 2-bit code of base `i` into an encoded word array.
inline void SetBase2Bit(Word* enc, int i, unsigned code) {
  const int word = i / kBasesPerWord;
  const int slot = i % kBasesPerWord;
  const int sh = kWordBits - 2 - 2 * slot;
  enc[word] = (enc[word] & ~(Word{0x3u} << sh)) | (Word(code & 0x3u) << sh);
}

/// Reads bit `p` (0 = MSB of word 0) from a mask word array.
inline unsigned GetMaskBit(const Word* mask, int p) {
  return (mask[p / kWordBits] >> (kWordBits - 1 - p % kWordBits)) & 1u;
}

/// Sets bit `p` (0 = MSB of word 0) in a mask word array.
inline void SetMaskBit(Word* mask, int p) {
  mask[p / kWordBits] |= Word{1u} << (kWordBits - 1 - p % kWordBits);
}

/// dst[p + bits] = src[p]: logical shift of the whole bit string toward
/// later positions (array-wide right shift with carry-bit transfer between
/// words; this is the "carry-bit correction" of GateKeeper-GPU Sec. 3.4).
/// Vacated leading bits become 0.  Supports bits >= kWordBits.  src and dst
/// may alias only if identical.
void ShiftToLater(const Word* src, Word* dst, int nwords, int bits);

/// dst[p - bits] = src[p]: shift toward earlier positions (array-wide left
/// shift with carries).  Vacated trailing bits become 0.
void ShiftToEarlier(const Word* src, Word* dst, int nwords, int bits);

/// dst = a ^ b, word-wise.
inline void XorWords(const Word* a, const Word* b, Word* dst, int nwords) {
  for (int i = 0; i < nwords; ++i) dst[i] = a[i] ^ b[i];
}

/// dst &= src, word-wise.
inline void AndWords(Word* dst, const Word* src, int nwords) {
  for (int i = 0; i < nwords; ++i) dst[i] &= src[i];
}

/// dst |= src, word-wise.
inline void OrWords(Word* dst, const Word* src, int nwords) {
  for (int i = 0; i < nwords; ++i) dst[i] |= src[i];
}

/// Collapses a 2-bit-per-base difference word into 16 one-bit-per-base flags
/// ("every two-bit is combined with bitwise OR", GateKeeper-GPU Sec. 2.1).
/// Base j of the input word lands at bit (15 - j) of the result.
inline std::uint32_t CompressPairsOrHalf(Word w) {
  Word t = (w | (w >> 1)) & 0x55555555u;  // per-base flag at even positions
  t = (t | (t >> 1)) & 0x33333333u;
  t = (t | (t >> 2)) & 0x0F0F0F0Fu;
  t = (t | (t >> 4)) & 0x00FF00FFu;
  t = (t | (t >> 8)) & 0x0000FFFFu;
  return t;
}

/// Reduces a 2-bit-domain difference mask (`enc_words` words covering
/// `length` bases) to a 1-bit-per-base mask.  Bits past `length` are zeroed.
void ReducePairsOr(const Word* diff2, int length, Word* mask);

/// Zeroes every bit at position >= length_bits.
void ZeroTailBits(Word* mask, int nwords, int length_bits);

/// Sets mask bits in [from, to).
void SetBitRange(Word* mask, int from, int to);

/// Total number of set bits.
inline int PopcountWords(const Word* mask, int nwords) {
  int n = 0;
  for (int i = 0; i < nwords; ++i) n += std::popcount(mask[i]);
  return n;
}

/// Number of maximal runs of 1s in the bit string (0 -> 1 transitions,
/// treating the position before bit 0 as 0).
int CountOneRuns(const Word* mask, int nwords);

/// Same as CountOneRuns but implemented as the paper's "window approach with
/// a look-up table": a 4-bit window walk with a carry state.  Used by the
/// device-kernel code path; must agree with CountOneRuns exactly.
int CountOneRunsLut(const Word* mask, int nwords);

/// Flips every internal run of 0s of length <= 2 that is bounded by 1s on
/// both sides ("amending" / SHD's speculative removal of short streaks).
/// Branch-free multi-word bit-trick implementation.
void AmendShortZeroRuns(Word* mask, int nwords);

/// LUT flavour of AmendShortZeroRuns: an 8-bit window walk with 2 neighbour
/// bits on each side, matching the constant-memory LUT the kernel uses.
/// Must agree with AmendShortZeroRuns exactly.
void AmendShortZeroRunsLut(Word* mask, int nwords);

/// Lazily built lookup tables used by the LUT code paths (the GPU kernel
/// keeps these in constant memory; here they live in static storage).
struct AmendLut {
  // amended byte for (left 2 bits << 10) | (byte << 2) | (right 2 bits)
  std::uint8_t table[4096];
  static const AmendLut& Instance();
};

struct RunCountLut {
  // packed (runs << 1) | exit_state for (entry_state << 4) | nibble
  std::uint8_t table[32];
  static const RunCountLut& Instance();
};

}  // namespace gkgpu

#endif  // GKGPU_UTIL_BITOPS_HPP
