#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace gkgpu {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::Count(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  int cnt = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (cnt != 0 && cnt % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++cnt;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string TablePrinter::Percent(double v, int digits) {
  return Num(v, digits) + "%";
}

}  // namespace gkgpu
