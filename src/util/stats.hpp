// Small statistics accumulators used by the benchmark harnesses and the
// power model (min / max / mean, throughput conversions).
#ifndef GKGPU_UTIL_STATS_HPP
#define GKGPU_UTIL_STATS_HPP

#include <algorithm>
#include <cstdint>
#include <limits>

namespace gkgpu {

class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Pairs filtered in a fixed 40-minute window given a measured rate, the
/// unit Table 2 reports ("billions of filtrations in 40 minutes").
inline double PairsIn40Minutes(std::uint64_t pairs, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(pairs) / seconds * 40.0 * 60.0;
}

/// Millions of filtrations per second (Figures 6-8 unit).
inline double MillionsPerSecond(std::uint64_t pairs, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(pairs) / seconds / 1e6;
}

}  // namespace gkgpu

#endif  // GKGPU_UTIL_STATS_HPP
