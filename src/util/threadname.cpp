#include "util/threadname.hpp"

#include "obs/trace.hpp"

#ifdef __linux__
#include <pthread.h>
#endif

namespace gkgpu::util {

void SetCurrentThreadName(const std::string& name) {
#ifdef __linux__
  // The kernel limit is 16 bytes including the terminator.
  std::string truncated = name.substr(0, 15);
  pthread_setname_np(pthread_self(), truncated.c_str());
#endif
  obs::RegisterTraceThreadName(name);
}

}  // namespace gkgpu::util
