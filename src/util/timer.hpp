// Wall-clock timing helpers for the "filter time" measurements (host
// perspective) reported by the benchmark harnesses.
#ifndef GKGPU_UTIL_TIMER_HPP
#define GKGPU_UTIL_TIMER_HPP

#include <chrono>

namespace gkgpu {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gkgpu

#endif  // GKGPU_UTIL_TIMER_HPP
