#include "encode/revcomp.hpp"

#include <cstring>

namespace gkgpu {

std::string ReverseComplement(std::string_view seq) {
  std::string out;
  ReverseComplementInto(seq, &out);
  return out;
}

void ReverseComplementInto(std::string_view seq, std::string* out) {
  out->resize(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    (*out)[i] = ComplementBase(seq[seq.size() - 1 - i]);
  }
}

void ReverseComplementEncoded(const Word* in, int length, Word* out) {
  const int nwords = EncodedWords(length);
  std::memset(out, 0, static_cast<std::size_t>(nwords) * sizeof(Word));
  for (int i = 0; i < length; ++i) {
    SetBase2Bit(out, i, ComplementCode(GetBase2Bit(in, length - 1 - i)));
  }
}

}  // namespace gkgpu
