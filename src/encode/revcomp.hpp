// Reverse-complement primitives, the strand-awareness foundation of the
// mapper: a read sampled from the reverse strand matches the forward
// reference only after reverse-complementing, so seeding, filtration and
// verification all need revcomp in both representations — plain character
// strings (host seeding / verification / SAM output) and 2-bit encoded
// word arrays (the device kernels, which never see per-candidate strings).
#ifndef GKGPU_ENCODE_REVCOMP_HPP
#define GKGPU_ENCODE_REVCOMP_HPP

#include <string>
#include <string_view>

#include "util/bitops.hpp"

namespace gkgpu {

/// Complement of a 2-bit base code: A<->T, C<->G is exactly a bit flip
/// under the A=00, C=01, G=10, T=11 encoding.
inline constexpr unsigned ComplementCode(unsigned code) { return code ^ 0x3u; }

/// Complement of a base character; 'N' (and anything malformed) stays 'N',
/// preserving the undefined-pair bypass semantics.
inline char ComplementBase(char c) {
  switch (c) {
    case 'A': case 'a': return 'T';
    case 'C': case 'c': return 'G';
    case 'G': case 'g': return 'C';
    case 'T': case 't': return 'A';
    default: return 'N';
  }
}

/// Reverse complement of a character sequence (uppercased; unknown bases
/// become 'N').
std::string ReverseComplement(std::string_view seq);

/// In-place variant reusing the caller's buffer (verification hot loops
/// revcomp one read per strand-flipped candidate group).
void ReverseComplementInto(std::string_view seq, std::string* out);

/// Reverse complement of a 2-bit encoded sequence of `length` bases into
/// `out` (EncodedWords(length) words, tail bits zeroed).  `out` must not
/// alias `in`.  Matches EncodeSequence(ReverseComplement(...)) bit for bit
/// on N-free input; 'N' has no 2-bit code, so callers track unknown bases
/// through the has-N flags exactly as in the forward direction.
void ReverseComplementEncoded(const Word* in, int length, Word* out);

}  // namespace gkgpu

#endif  // GKGPU_ENCODE_REVCOMP_HPP
