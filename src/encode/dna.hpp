// DNA alphabet helpers: 2-bit codes (A=00, C=01, G=10, T=11) as defined by
// the GateKeeper algorithm.  'N' (unknown base call) has no 2-bit code; the
// filter bypasses pairs containing it (GateKeeper-GPU Sec. 3.3).
#ifndef GKGPU_ENCODE_DNA_HPP
#define GKGPU_ENCODE_DNA_HPP

#include <string_view>

namespace gkgpu {

inline constexpr char kBases[4] = {'A', 'C', 'G', 'T'};

/// 2-bit code for an upper/lower-case base; returns 4 for anything else
/// ('N' and malformed characters).
inline unsigned BaseToCode(char c) {
  switch (c) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return 4;
  }
}

inline char CodeToBase(unsigned code) { return kBases[code & 0x3u]; }

inline bool IsKnownBase(char c) { return BaseToCode(c) < 4; }

inline bool ContainsUnknown(std::string_view seq) {
  for (char c : seq) {
    if (!IsKnownBase(c)) return true;
  }
  return false;
}

}  // namespace gkgpu

#endif  // GKGPU_ENCODE_DNA_HPP
