#include "encode/encoded.hpp"

#include <algorithm>
#include <cassert>

#include "util/threadpool.hpp"

namespace gkgpu {

bool EncodeSequence(std::string_view seq, Word* out) {
  const int length = static_cast<int>(seq.size());
  const int nwords = EncodedWords(length);
  std::fill(out, out + nwords, Word{0});
  bool unknown = false;
  for (int i = 0; i < length; ++i) {
    unsigned code = BaseToCode(seq[static_cast<std::size_t>(i)]);
    if (code >= 4) {
      unknown = true;
      code = 0;
    }
    out[i / kBasesPerWord] |=
        Word(code) << (kWordBits - 2 - 2 * (i % kBasesPerWord));
  }
  return unknown;
}

std::string DecodeSequence(const Word* enc, int length) {
  std::string s(static_cast<std::size_t>(length), 'A');
  for (int i = 0; i < length; ++i) {
    s[static_cast<std::size_t>(i)] = CodeToBase(GetBase2Bit(enc, i));
  }
  return s;
}

EncodedBatch EncodeBatch(const std::vector<std::string>& seqs, int length,
                         ThreadPool* pool) {
  EncodedBatch batch;
  batch.length = length;
  batch.words_per_seq = EncodedWords(length);
  batch.words.assign(
      seqs.size() * static_cast<std::size_t>(batch.words_per_seq), 0);
  batch.has_n.assign(seqs.size(), 0);
  auto encode_range = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      assert(static_cast<int>(seqs[i].size()) == length);
      batch.has_n[i] = EncodeSequence(seqs[i], batch.Sequence(i)) ? 1 : 0;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, seqs.size(), 1024, encode_range);
  } else {
    encode_range(0, seqs.size());
  }
  return batch;
}

bool RangeHasUnknownRaw(const Word* n_mask, std::int64_t ref_len,
                        std::int64_t start, int len) {
  if (start < 0 || start + len > ref_len) return true;
  std::int64_t p = start;
  const std::int64_t end = start + len;
  while (p < end) {
    const std::int64_t word = p / kWordBits;
    const int first_bit = static_cast<int>(p % kWordBits);
    const int bits_here = static_cast<int>(
        std::min<std::int64_t>(kWordBits - first_bit, end - p));
    Word window = n_mask[static_cast<std::size_t>(word)];
    // Keep only bits [first_bit, first_bit + bits_here) (MSB-first).
    window <<= first_bit;
    if (bits_here < kWordBits) window &= ~Word{0} << (kWordBits - bits_here);
    if (window != 0) return true;
    p += bits_here;
  }
  return false;
}

void ExtractSegmentRaw(const Word* ref_words, std::int64_t ref_len,
                       std::int64_t start, int len, Word* out) {
  assert(start >= 0 && start + len <= ref_len);
  const std::int64_t total_words =
      (ref_len + kBasesPerWord - 1) / kBasesPerWord;
  const int out_words = EncodedWords(len);
  const std::int64_t first_word = start / kBasesPerWord;
  const int bit_off = 2 * static_cast<int>(start % kBasesPerWord);
  // Single pass: out word k funnels the tail of raw word (first_word + k)
  // and the head of the next one — no temporary copy, no second shifting
  // pass.  start + len <= ref_len guarantees first_word + k < total_words
  // for every out word; only the k+1 neighbour can run off the end.
  for (int k = 0; k < out_words; ++k) {
    const std::int64_t idx = first_word + k;
    const Word a = ref_words[static_cast<std::size_t>(idx)];
    if (bit_off == 0) {
      out[k] = a;
    } else {
      const Word b = idx + 1 < total_words
                         ? ref_words[static_cast<std::size_t>(idx + 1)]
                         : 0;
      out[k] = (a << bit_off) | (b >> (kWordBits - bit_off));
    }
  }
  // Zero pad bases past the segment so encoded comparisons are exact.
  const int pad_bits = out_words * kWordBits - 2 * len;
  if (pad_bits > 0) {
    out[out_words - 1] &= ~Word{0} << pad_bits;
  }
}

bool ReferenceEncoding::RangeHasUnknown(std::int64_t start, int len) const {
  return RangeHasUnknownRaw(n_mask.data(), length, start, len);
}

void ReferenceEncoding::ExtractSegment(std::int64_t start, int len,
                                       Word* out) const {
  ExtractSegmentRaw(words.data(), length, start, len, out);
}

ReferenceEncoding EncodeReference(std::string_view text, ThreadPool* pool) {
  ReferenceEncoding ref;
  ref.length = static_cast<std::int64_t>(text.size());
  const std::size_t enc_words = static_cast<std::size_t>(
      (ref.length + kBasesPerWord - 1) / kBasesPerWord);
  const std::size_t mask_words =
      static_cast<std::size_t>((ref.length + kWordBits - 1) / kWordBits);
  ref.words.assign(enc_words, 0);
  ref.n_mask.assign(mask_words, 0);
  auto encode_words = [&](std::size_t wb, std::size_t we) {
    for (std::size_t w = wb; w < we; ++w) {
      Word packed = 0;
      const std::int64_t base0 = static_cast<std::int64_t>(w) * kBasesPerWord;
      const int count = static_cast<int>(
          std::min<std::int64_t>(kBasesPerWord, ref.length - base0));
      for (int j = 0; j < count; ++j) {
        const char c = text[static_cast<std::size_t>(base0 + j)];
        unsigned code = BaseToCode(c);
        if (code >= 4) {
          code = 0;
          const std::int64_t p = base0 + j;
          // Each n_mask word covers two encoded words; writers of distinct
          // encoded words may share an n_mask word, so chunk at even word
          // indices (grain below keeps chunks aligned).
          ref.n_mask[static_cast<std::size_t>(p / kWordBits)] |=
              Word{1u} << (kWordBits - 1 - static_cast<int>(p % kWordBits));
        }
        packed |= Word(code) << (kWordBits - 2 - 2 * j);
      }
      ref.words[w] = packed;
    }
  };
  if (pool != nullptr) {
    // Grain of 4096 encoded words = 2048 n_mask words; chunk boundaries are
    // even so no two chunks touch the same n_mask word.
    pool->ParallelFor(0, enc_words, 4096, encode_words);
  } else {
    encode_words(0, enc_words);
  }
  return ref;
}

}  // namespace gkgpu
