// 2-bit sequence encoding: single sequences, batches, and whole references
// with 'N' tracking and arbitrary-offset segment extraction.  This is the
// host-side ("encoding in host") preprocessing stage of GateKeeper-GPU; the
// same routines are reused by the simulated device kernel for the
// "encoding in device" configuration.
#ifndef GKGPU_ENCODE_ENCODED_HPP
#define GKGPU_ENCODE_ENCODED_HPP

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "encode/dna.hpp"
#include "util/bitops.hpp"

namespace gkgpu {

class ThreadPool;

/// Encodes `seq` into `out` (EncodedWords(seq.size()) words, zero-padded).
/// Unknown bases encode as A (callers must consult ContainsUnknown or the
/// n-mask; GateKeeper bypasses such pairs).  Returns true if any unknown
/// base was seen.
bool EncodeSequence(std::string_view seq, Word* out);

/// Inverse of EncodeSequence (for tests and debugging output).
std::string DecodeSequence(const Word* enc, int length);

/// A fixed-stride batch of encoded sequences plus per-sequence 'N' flags —
/// the layout of the read buffer GateKeeper-GPU keeps in unified memory.
struct EncodedBatch {
  int length = 0;          // bases per sequence
  int words_per_seq = 0;   // EncodedWords(length)
  std::vector<Word> words;
  std::vector<std::uint8_t> has_n;

  std::size_t size() const { return has_n.size(); }
  const Word* Sequence(std::size_t i) const {
    return words.data() + i * static_cast<std::size_t>(words_per_seq);
  }
  Word* Sequence(std::size_t i) {
    return words.data() + i * static_cast<std::size_t>(words_per_seq);
  }
};

/// Encodes a batch of equal-length sequences, optionally in parallel on
/// `pool` (mirrors the paper's multithreaded host encoding).
EncodedBatch EncodeBatch(const std::vector<std::string>& seqs, int length,
                         ThreadPool* pool = nullptr);

/// Raw-pointer versions of the reference-segment operations, callable from
/// device-kernel code that only sees unified-memory pointers.
bool RangeHasUnknownRaw(const Word* n_mask, std::int64_t ref_len,
                        std::int64_t start, int len);
void ExtractSegmentRaw(const Word* ref_words, std::int64_t ref_len,
                       std::int64_t start, int len, Word* out);

/// Non-owning view of a reference encoding — spans into externally owned
/// word arrays (an mmap'd index file or a ReferenceEncoding's vectors).
/// Lets the engine upload a persisted encoding without re-encoding the
/// FASTA text.
struct ReferenceEncodingView {
  std::int64_t length = 0;
  std::span<const Word> words;   // 2-bit encoding, 16 bases/word
  std::span<const Word> n_mask;  // 1 bit/base, MSB-first
};

/// A whole reference genome, 2-bit encoded once up front, with a 1-bit-per-
/// base mask of 'N' positions so segments overlapping unknown bases can be
/// given a free pass without re-reading the text.
struct ReferenceEncoding {
  std::int64_t length = 0;
  std::vector<Word> words;   // 2-bit encoding, 16 bases/word
  std::vector<Word> n_mask;  // 1 bit/base, MSB-first

  ReferenceEncodingView view() const { return {length, words, n_mask}; }

  /// True if any base in [start, start+len) is unknown or out of range.
  bool RangeHasUnknown(std::int64_t start, int len) const;

  /// Extracts `length` bases starting at `start` (must be in range) into an
  /// encoded word array, performing the cross-word bit realignment that the
  /// kernel does when pulling a candidate segment out of unified memory.
  void ExtractSegment(std::int64_t start, int length, Word* out) const;
};

/// Encodes a reference text; `pool` parallelizes over 16-base chunks.
ReferenceEncoding EncodeReference(std::string_view text,
                                  ThreadPool* pool = nullptr);

}  // namespace gkgpu

#endif  // GKGPU_ENCODE_ENCODED_HPP
