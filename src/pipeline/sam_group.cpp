#include "pipeline/sam_group.hpp"

#include <ostream>
#include <utility>

#include "encode/revcomp.hpp"

namespace gkgpu::pipeline {

void SamGroupBuffer::AddMapping(PairBatch& batch, std::size_t i) {
  const CandidatePair c = batch.candidates[i];
  std::string_view seq = batch.cand_reads[c.read_index];
  int flags = 0;
  if (c.strand != 0) {
    ReverseComplementInto(seq, &rc_scratch_);
    seq = rc_scratch_;
    flags = kSamReverse;
  }
  group_.push_back({batch.read_names[i], flags, std::string(seq),
                    batch.ref_chrom[i], batch.ref_pos[i], batch.edits[i],
                    std::move(batch.cigars[i])});
}

std::size_t SamGroupBuffer::FlushGroup(std::ostream& out,
                                       const ReferenceSet& ref) {
  if (group_.empty()) return 0;
  // One summary scan gives the primary record and its MAPQ (every other
  // placement scores 0), then primary-only or everything-with-secondaries-
  // flagged, exactly like the blocking record writers.
  group_edits_.clear();
  for (const GroupRecord& g : group_) group_edits_.push_back(g.edits);
  const EditSummary s = SummarizeEdits(group_edits_);
  const std::size_t primary = PrimaryIndex(group_edits_, s);
  const int primary_mapq =
      ComputeMapq(s.best, s.second, s.best_count, options_.mapq_cap);
  std::size_t written = 0;
  for (std::size_t g = 0; g < group_.size(); ++g) {
    if (g != primary && options_.secondary == SecondaryPolicy::kBestOnly) {
      continue;
    }
    const GroupRecord& r = group_[g];
    const int flags = r.flags | (g == primary ? 0 : kSamSecondary);
    WriteSamLine(out, r.name, flags, r.seq,
                 ref.chromosome(static_cast<std::size_t>(r.chrom)).name,
                 r.pos, r.edits, g == primary ? primary_mapq : 0, r.cigar,
                 options_.read_group);
    ++written;
  }
  group_.clear();
  return written;
}

}  // namespace gkgpu::pipeline
