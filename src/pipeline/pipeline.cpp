#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "align/banded.hpp"
#include "util/timer.hpp"

namespace gkgpu::pipeline {

namespace {

/// A batch whose pairs sit encoded in a reserved device slot.
struct EncodedMsg {
  PairBatch batch;
  int slot = 0;
};

}  // namespace

StreamingPipeline::StreamingPipeline(GateKeeperGpuEngine* engine,
                                     PipelineConfig config)
    : engine_(engine), config_(config) {
  config_.batch_size = std::max<std::size_t>(1, config_.batch_size);
  config_.queue_depth = std::max<std::size_t>(1, config_.queue_depth);
  config_.encode_workers = std::max(1, config_.encode_workers);
  config_.verify_workers = std::max(1, config_.verify_workers);
  config_.slots_per_device = std::max(1, config_.slots_per_device);
  // The engine clamps slots to its kernel plan; the effective batch size is
  // published back through config().
  config_.batch_size =
      engine_->PrepareStreaming(config_.batch_size, config_.slots_per_device);
}

PipelineStats StreamingPipeline::Run(const BatchSource& source,
                                     const BatchSink& sink) {
  const int ndev = engine_->device_count();
  const std::size_t capacity = config_.batch_size;
  const int verify_k = config_.verify_threshold >= 0
                           ? config_.verify_threshold
                           : engine_->config().error_threshold;

  PipelineStats stats;
  WallTimer run_timer;

  // --- Queues -----------------------------------------------------------
  BoundedQueue<PairBatch> q_in(config_.queue_depth);
  std::vector<std::unique_ptr<BoundedQueue<int>>> q_free;
  std::vector<std::unique_ptr<BoundedQueue<EncodedMsg>>> q_ready;
  for (int d = 0; d < ndev; ++d) {
    q_free.push_back(std::make_unique<BoundedQueue<int>>(
        static_cast<std::size_t>(config_.slots_per_device)));
    q_ready.push_back(std::make_unique<BoundedQueue<EncodedMsg>>(
        static_cast<std::size_t>(config_.slots_per_device)));
    for (int s = 0; s < config_.slots_per_device; ++s) q_free[d]->Push(s);
  }
  BoundedQueue<PairBatch> q_filtered(config_.queue_depth);
  BoundedQueue<PairBatch> q_done(config_.queue_depth);

  // --- Shutdown / error propagation ------------------------------------
  std::mutex err_mu;
  std::exception_ptr first_error;
  const auto abort_all = [&] {
    q_in.Close();
    for (auto& q : q_free) q->Close();
    for (auto& q : q_ready) q->Close();
    q_filtered.Close();
    q_done.Close();
  };
  const auto record_error = [&](std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lk(err_mu);
      if (!first_error) first_error = e;
    }
    abort_all();
  };

  // --- Stage accounting -------------------------------------------------
  std::mutex stats_mu;
  StageStats source_stage{"source", 1, 0, 0, 0.0};
  StageStats encode_stage{"encode", config_.encode_workers, 0, 0, 0.0};
  StageStats filter_stage{"filter", ndev, 0, 0, 0.0};
  StageStats verify_stage{"verify", config_.verify_workers, 0, 0, 0.0};
  StageStats sink_stage{"sink", 1, 0, 0, 0.0};

  // Modeled overlapped timeline (seconds since pipeline start).  Encode
  // workers and devices advance private clocks by their busy time; a
  // device cannot start a batch before its encode finished, which is how
  // an encode-bound stream shows up in the modeled makespan.
  std::mutex model_mu;
  std::vector<double> device_clock(static_cast<std::size_t>(ndev), 0.0);
  std::vector<double> device_kt(static_cast<std::size_t>(ndev), 0.0);
  std::vector<double> device_tr(static_cast<std::size_t>(ndev), 0.0);

  std::atomic<int> encoders_left{config_.encode_workers};
  std::atomic<int> drivers_left{ndev};
  std::atomic<int> verifiers_left{config_.verify_workers};

  std::vector<std::thread> threads;

  // --- Stage 1: source --------------------------------------------------
  threads.emplace_back([&] {
    try {
      std::uint64_t seq = 0;
      std::size_t first_pair = 0;
      double busy = 0.0;
      std::uint64_t batches = 0;
      std::uint64_t items = 0;
      for (;;) {
        PairBatch batch;
        batch.seq = seq;
        batch.first_pair = first_pair;
        WallTimer t;
        const bool more = source(&batch);
        busy += t.Seconds();
        if (!more) break;
        if (batch.size() == 0) continue;
        if (batch.refs.size() != batch.reads.size()) {
          throw std::runtime_error("pipeline source: reads/refs length skew");
        }
        if (batch.size() > capacity) {
          throw std::runtime_error("pipeline source: batch exceeds capacity");
        }
        // The slot encoders stride buffers by the configured read length;
        // a shorter or longer sequence would over-read or cross into the
        // neighbouring pair's slot.
        const auto expected =
            static_cast<std::size_t>(engine_->config().read_length);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (batch.reads[i].size() != expected ||
              batch.refs[i].size() != expected) {
            throw std::runtime_error(
                "pipeline source: pair " + std::to_string(first_pair + i) +
                " length != configured read length " +
                std::to_string(expected));
          }
        }
        ++seq;
        first_pair += batch.size();
        batches += 1;
        items += batch.size();
        if (!q_in.Push(std::move(batch))) break;  // aborted downstream
      }
      q_in.Close();
      std::lock_guard<std::mutex> lk(stats_mu);
      source_stage.busy_seconds += busy;
      source_stage.batches += batches;
      source_stage.items += items;
    } catch (...) {
      record_error(std::current_exception());
    }
  });

  // --- Stage 2: encode pool --------------------------------------------
  for (int w = 0; w < config_.encode_workers; ++w) {
    threads.emplace_back([&] {
      double busy = 0.0;
      double model_clock = 0.0;
      std::uint64_t batches = 0;
      std::uint64_t items = 0;
      try {
        while (auto batch = q_in.Pop()) {
          const int d = static_cast<int>(
              batch->seq % static_cast<std::uint64_t>(ndev));
          const auto slot = q_free[d]->Pop();
          if (!slot) break;  // aborted
          const double enc_s = engine_->EncodePairsSlot(
              d, *slot, batch->reads.data(), batch->refs.data(),
              batch->size());
          busy += enc_s;
          model_clock += enc_s;
          batch->device = d;
          batch->encode_ready = model_clock;
          batches += 1;
          items += batch->size();
          if (!q_ready[d]->Push({std::move(*batch), *slot})) break;
        }
      } catch (...) {
        record_error(std::current_exception());
      }
      {
        std::lock_guard<std::mutex> lk(stats_mu);
        encode_stage.busy_seconds += busy;
        encode_stage.batches += batches;
        encode_stage.items += items;
      }
      if (encoders_left.fetch_sub(1) == 1) {
        for (auto& q : q_ready) q->Close();
      }
    });
  }

  // --- Stage 3: filtration, one driver per device ----------------------
  const bool double_buffered = config_.slots_per_device > 1;
  for (int d = 0; d < ndev; ++d) {
    threads.emplace_back([&, d] {
      double busy = 0.0;
      double clock = 0.0;
      double kt_sum = 0.0;
      double tr_sum = 0.0;
      std::uint64_t batches = 0;
      std::uint64_t items = 0;
      std::uint64_t accepted = 0;
      std::uint64_t bypassed = 0;
      try {
        while (auto msg = q_ready[d]->Pop()) {
          const std::size_t n = msg->batch.size();
          msg->batch.results.assign(n, PairResult{});
          WallTimer t;
          const StreamBatchStats st = engine_->FilterPairsSlot(
              d, msg->slot, n, msg->batch.results.data());
          busy += t.Seconds();
          q_free[d]->Push(msg->slot);
          // Timeline: a prefetch-capable, double-buffered device overlaps
          // the next batch's transfers with the running kernel; otherwise
          // transfers serialize with compute (same convention as the
          // blocking path's device_pipeline_seconds).
          const bool overlapped =
              double_buffered && engine_->device(d).props().supports_prefetch();
          const double device_busy =
              overlapped ? std::max(st.kernel_seconds, st.transfer_seconds)
                         : st.kernel_seconds + st.transfer_seconds;
          clock = std::max(clock, msg->batch.encode_ready) + device_busy;
          kt_sum += st.kernel_seconds;
          tr_sum += st.transfer_seconds;
          accepted += st.accepted;
          bypassed += st.bypassed;
          batches += 1;
          items += n;
          if (!q_filtered.Push(std::move(msg->batch))) break;
        }
      } catch (...) {
        record_error(std::current_exception());
      }
      {
        std::lock_guard<std::mutex> lk(model_mu);
        device_clock[static_cast<std::size_t>(d)] = clock;
        device_kt[static_cast<std::size_t>(d)] = kt_sum;
        device_tr[static_cast<std::size_t>(d)] = tr_sum;
      }
      {
        std::lock_guard<std::mutex> lk(stats_mu);
        filter_stage.busy_seconds += busy;
        filter_stage.batches += batches;
        filter_stage.items += items;
        stats.accepted += accepted;
        stats.bypassed += bypassed;
        stats.rejected += items - accepted;
      }
      if (drivers_left.fetch_sub(1) == 1) {
        q_filtered.Close();
      }
    });
  }

  // --- Stage 4: verification pool --------------------------------------
  for (int w = 0; w < config_.verify_workers; ++w) {
    threads.emplace_back([&] {
      double busy = 0.0;
      std::uint64_t batches = 0;
      std::uint64_t pairs_in = 0;
      std::uint64_t confirmed = 0;
      BandedVerifier verifier;
      try {
        while (auto batch = q_filtered.Pop()) {
          const std::size_t n = batch->size();
          batch->edits.assign(n, -1);
          if (config_.verify) {
            WallTimer t;
            for (std::size_t i = 0; i < n; ++i) {
              if (!batch->results[i].accept) continue;
              ++pairs_in;
              batch->edits[i] =
                  verifier.Distance(batch->reads[i], batch->refs[i], verify_k);
              if (batch->edits[i] >= 0) ++confirmed;
            }
            busy += t.Seconds();
          }
          batches += 1;
          if (!q_done.Push(std::move(*batch))) break;
        }
      } catch (...) {
        record_error(std::current_exception());
      }
      {
        std::lock_guard<std::mutex> lk(stats_mu);
        verify_stage.busy_seconds += busy;
        verify_stage.batches += batches;
        verify_stage.items += pairs_in;
        stats.verified_pairs += pairs_in;
        stats.true_mappings += confirmed;
      }
      if (verifiers_left.fetch_sub(1) == 1) {
        q_done.Close();
      }
    });
  }

  // --- Stage 5: ordered sink (this thread) ------------------------------
  try {
    std::map<std::uint64_t, PairBatch> pending;
    std::uint64_t next_seq = 0;
    while (auto batch = q_done.Pop()) {
      pending.emplace(batch->seq, std::move(*batch));
      while (!pending.empty() && pending.begin()->first == next_seq) {
        PairBatch out = std::move(pending.begin()->second);
        pending.erase(pending.begin());
        ++next_seq;
        sink_stage.batches += 1;
        sink_stage.items += out.size();
        stats.pairs += out.size();
        stats.batches += 1;
        WallTimer t;
        sink(std::move(out));
        sink_stage.busy_seconds += t.Seconds();
      }
    }
  } catch (...) {
    record_error(std::current_exception());
  }

  for (auto& t : threads) t.join();

  stats.wall_seconds = run_timer.Seconds();
  for (int d = 0; d < ndev; ++d) {
    stats.filter_seconds =
        std::max(stats.filter_seconds, device_clock[static_cast<std::size_t>(d)]);
    stats.kernel_seconds =
        std::max(stats.kernel_seconds, device_kt[static_cast<std::size_t>(d)]);
    stats.kernel_seconds_total += device_kt[static_cast<std::size_t>(d)];
    stats.transfer_seconds =
        std::max(stats.transfer_seconds, device_tr[static_cast<std::size_t>(d)]);
  }
  stats.encode_seconds = encode_stage.busy_seconds;
  stats.verify_seconds = verify_stage.busy_seconds;
  stats.stages = {source_stage, encode_stage, filter_stage, verify_stage,
                  sink_stage};
  stats.queues.push_back({"source->encode", q_in.capacity(), q_in.stats()});
  for (int d = 0; d < ndev; ++d) {
    stats.queues.push_back({"encoded->gpu" + std::to_string(d),
                            q_ready[d]->capacity(), q_ready[d]->stats()});
  }
  stats.queues.push_back(
      {"filter->verify", q_filtered.capacity(), q_filtered.stats()});
  stats.queues.push_back({"verify->sink", q_done.capacity(), q_done.stats()});

  {
    std::lock_guard<std::mutex> lk(err_mu);
    if (first_error) std::rethrow_exception(first_error);
  }
  return stats;
}

}  // namespace gkgpu::pipeline
