#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "align/banded.hpp"
#include "align/cigar.hpp"
#include "encode/revcomp.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "util/fingerprint.hpp"
#include "util/threadname.hpp"
#include "util/timer.hpp"

namespace gkgpu::pipeline {

namespace {

/// A batch whose pairs sit encoded in a reserved device slot.
struct EncodedMsg {
  PairBatch batch;
  int slot = 0;
};

}  // namespace

StreamingPipeline::StreamingPipeline(GateKeeperGpuEngine* engine,
                                     PipelineConfig config)
    : engine_(engine), config_(config) {
  config_.batch_size = std::max<std::size_t>(1, config_.batch_size);
  config_.queue_depth = std::max<std::size_t>(1, config_.queue_depth);
  config_.encode_workers = std::max(1, config_.encode_workers);
  config_.verify_workers = std::max(1, config_.verify_workers);
  config_.slots_per_device = std::max(1, config_.slots_per_device);

  const bool cand_mode = !config_.reference_text.empty();
  if (cand_mode) {
    // Content check, not just length: an engine reused across same-length
    // genomes would otherwise silently filter against the wrong one.
    const std::uint64_t fp = config_.reference_fingerprint != 0
                                 ? config_.reference_fingerprint
                                 : FingerprintText(config_.reference_text);
    if (!engine_->HasReference() ||
        engine_->reference_length() !=
            static_cast<std::int64_t>(config_.reference_text.size()) ||
        engine_->reference_fingerprint() != fp) {
      throw std::invalid_argument(
          "pipeline: candidate mode requires the engine's reference to be "
          "loaded from the configured reference text");
    }
  }

  // Slot buffers are provisioned for the largest batch the run can
  // produce; the engine clamps the request to its kernel plan and the
  // effective capacity is published back through config().batch_size.
  std::size_t capacity_request = config_.batch_size;
  if (config_.adaptive) {
    AdaptiveBatcherConfig& a = config_.adaptive_config;
    a.min_size = std::max<std::size_t>(1, a.min_size);
    a.max_size = std::max(a.min_size, a.max_size);
    a.initial = a.initial == 0 ? config_.batch_size : a.initial;
    a.initial = std::clamp(a.initial, a.min_size, a.max_size);
    capacity_request = a.max_size;
  }
  const std::size_t capacity =
      cand_mode ? engine_->PrepareCandidateStreaming(capacity_request,
                                                     capacity_request,
                                                     config_.slots_per_device)
                : engine_->PrepareStreaming(capacity_request,
                                            config_.slots_per_device);
  config_.batch_size = capacity;
  if (config_.adaptive) {
    AdaptiveBatcherConfig& a = config_.adaptive_config;
    a.max_size = std::min(a.max_size, capacity);
    a.min_size = std::min(a.min_size, a.max_size);
    a.initial = std::clamp(a.initial, a.min_size, a.max_size);
  }
}

PipelineStats StreamingPipeline::Run(const BatchSource& source,
                                     const BatchSink& sink) {
  const int ndev = engine_->device_count();
  const std::size_t capacity = config_.batch_size;
  const bool cand_mode = !config_.reference_text.empty();
  const std::int64_t ref_len =
      cand_mode ? static_cast<std::int64_t>(config_.reference_text.size())
                : 0;
  const int verify_k = config_.verify_threshold >= 0
                           ? config_.verify_threshold
                           : engine_->config().error_threshold;

  PipelineStats stats;
  WallTimer run_timer;

  // --- Queues -----------------------------------------------------------
  BoundedQueue<PairBatch> q_in(config_.queue_depth);
  std::vector<std::unique_ptr<BoundedQueue<int>>> q_free;
  std::vector<std::unique_ptr<BoundedQueue<EncodedMsg>>> q_ready;
  for (int d = 0; d < ndev; ++d) {
    q_free.push_back(std::make_unique<BoundedQueue<int>>(
        static_cast<std::size_t>(config_.slots_per_device)));
    q_ready.push_back(std::make_unique<BoundedQueue<EncodedMsg>>(
        static_cast<std::size_t>(config_.slots_per_device)));
    for (int s = 0; s < config_.slots_per_device; ++s) q_free[d]->Push(s);
  }
  BoundedQueue<PairBatch> q_filtered(config_.queue_depth);
  BoundedQueue<PairBatch> q_done(config_.queue_depth);

  // --- Shutdown / error propagation ------------------------------------
  std::mutex err_mu;
  std::exception_ptr first_error;
  const auto abort_all = [&] {
    q_in.Close();
    for (auto& q : q_free) q->Close();
    for (auto& q : q_ready) q->Close();
    q_filtered.Close();
    q_done.Close();
  };
  const auto record_error = [&](std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lk(err_mu);
      if (!first_error) first_error = e;
    }
    abort_all();
  };

  // --- Stage accounting -------------------------------------------------
  std::mutex stats_mu;
  StageStats source_stage{"source", 1, 0, 0, 0.0};
  StageStats encode_stage{"encode", config_.encode_workers, 0, 0, 0.0};
  StageStats filter_stage{"filter", ndev, 0, 0, 0.0};
  StageStats verify_stage{"verify", config_.verify_workers, 0, 0, 0.0};
  StageStats sink_stage{"sink", 1, 0, 0, 0.0};

  // Modeled overlapped timeline (seconds since pipeline start).  Encode
  // workers and devices advance private clocks by their busy time; a
  // device cannot start a batch before its encode finished, which is how
  // an encode-bound stream shows up in the modeled makespan.
  std::mutex model_mu;
  std::vector<double> device_clock(static_cast<std::size_t>(ndev), 0.0);
  std::vector<double> device_kt(static_cast<std::size_t>(ndev), 0.0);
  std::vector<double> device_tr(static_cast<std::size_t>(ndev), 0.0);

  std::atomic<int> encoders_left{config_.encode_workers};
  std::atomic<int> drivers_left{ndev};
  std::atomic<int> verifiers_left{config_.verify_workers};

  // Latency observables, resolved once (labeled handle lookup locks the
  // registry); the stage loops observe batch-granular durations only.
  const obs::Histogram h_source_service = obs::StageService("source");
  const obs::Histogram h_encode_wait = obs::StageQueueWait("encode");
  const obs::Histogram h_encode_service = obs::StageService("encode");
  const obs::Histogram h_filter_wait = obs::StageQueueWait("filter");
  const obs::Histogram h_filter_service = obs::StageService("filter");
  const obs::Histogram h_verify_wait = obs::StageQueueWait("verify");
  const obs::Histogram h_verify_service = obs::StageService("verify");
  const obs::Histogram h_sink_wait = obs::StageQueueWait("sink");
  const obs::Histogram h_sink_service = obs::StageService("sink");

  std::vector<std::thread> threads;

  // --- Stage 1: source --------------------------------------------------
  AdaptiveBatcher batcher(config_.adaptive_config);
  threads.emplace_back([&] {
    util::SetCurrentThreadName("gkgpu-source");
    try {
      std::uint64_t seq = 0;
      std::size_t first_pair = 0;
      double busy = 0.0;
      std::uint64_t batches = 0;
      std::uint64_t items = 0;
      std::size_t size_min = 0;
      std::size_t size_max = 0;
      const auto expected =
          static_cast<std::size_t>(engine_->config().read_length);
      for (;;) {
        PairBatch batch;
        batch.seq = seq;
        batch.first_pair = first_pair;
        batch.target_size = capacity;
        if (config_.adaptive) {
          // Feed occupancy: batches buffered ahead of the devices (the
          // source queue plus every per-device encoded queue).  Sink
          // occupancy: the verified queue the ordered sink drains.
          std::size_t feed_items = q_in.size();
          std::size_t feed_cap = q_in.capacity();
          for (const auto& q : q_ready) {
            feed_items += q->size();
            feed_cap += q->capacity();
          }
          const double feed_fill = feed_cap == 0
                                       ? 1.0
                                       : static_cast<double>(feed_items) /
                                             static_cast<double>(feed_cap);
          const double sink_fill = static_cast<double>(q_done.size()) /
                                   static_cast<double>(q_done.capacity());
          batch.target_size = batcher.Next(feed_fill, sink_fill);
        }
        WallTimer t;
        obs::Span span("source", "pipeline");
        const bool more = source(&batch);
        span.Close();
        const double service_s = t.Seconds();
        busy += service_s;
        h_source_service.Observe(service_s);
        if (!more) break;
        if (batch.size() == 0) continue;
        if (batch.size() > capacity) {
          throw std::runtime_error("pipeline source: batch exceeds capacity");
        }
        if (cand_mode) {
          if (!batch.reads.empty() || !batch.refs.empty()) {
            throw std::runtime_error(
                "pipeline source: pair batch in a candidate-mode pipeline");
          }
          if (batch.cand_reads.empty() || batch.cand_reads.size() > capacity) {
            throw std::runtime_error(
                "pipeline source: candidate batch read table empty or over "
                "capacity");
          }
          // The slot encoders stride the read buffer by the configured
          // read length, and the kernel slices [ref_pos, ref_pos + L) from
          // the encoded genome; both must be validated before encoding.
          for (const std::string& r : batch.cand_reads) {
            if (r.size() != expected) {
              throw std::runtime_error(
                  "pipeline source: read length != configured read length " +
                  std::to_string(expected));
            }
          }
          const std::int64_t max_pos =
              ref_len - static_cast<std::int64_t>(expected);
          for (const CandidatePair& c : batch.candidates) {
            if (c.read_index >= batch.cand_reads.size()) {
              throw std::runtime_error(
                  "pipeline source: candidate read_index out of range");
            }
            if (c.ref_pos < 0 || c.ref_pos > max_pos) {
              throw std::runtime_error(
                  "pipeline source: candidate reference offset out of range");
            }
            if (c.strand > 1) {
              throw std::runtime_error(
                  "pipeline source: candidate strand must be 0 or 1");
            }
          }
        } else {
          if (!batch.candidates.empty()) {
            throw std::runtime_error(
                "pipeline source: candidate batch in a pair-mode pipeline");
          }
          if (batch.refs.size() != batch.reads.size()) {
            throw std::runtime_error("pipeline source: reads/refs length skew");
          }
          // A shorter or longer sequence would over-read or cross into the
          // neighbouring pair's slot.
          for (std::size_t i = 0; i < batch.size(); ++i) {
            if (batch.reads[i].size() != expected ||
                batch.refs[i].size() != expected) {
              throw std::runtime_error(
                  "pipeline source: pair " + std::to_string(first_pair + i) +
                  " length != configured read length " +
                  std::to_string(expected));
            }
          }
        }
        ++seq;
        first_pair += batch.size();
        batches += 1;
        items += batch.size();
        size_min = size_min == 0 ? batch.size()
                                 : std::min(size_min, batch.size());
        size_max = std::max(size_max, batch.size());
        if (!q_in.Push(std::move(batch))) break;  // aborted downstream
      }
      q_in.Close();
      std::lock_guard<std::mutex> lk(stats_mu);
      source_stage.busy_seconds += busy;
      source_stage.batches += batches;
      source_stage.items += items;
      stats.batch_size_min = size_min;
      stats.batch_size_max = size_max;
    } catch (...) {
      record_error(std::current_exception());
    }
  });

  // --- Stage 2: encode pool --------------------------------------------
  for (int w = 0; w < config_.encode_workers; ++w) {
    threads.emplace_back([&, w] {
      util::SetCurrentThreadName("gkgpu-encode" + std::to_string(w));
      double busy = 0.0;
      double model_clock = 0.0;
      std::uint64_t batches = 0;
      std::uint64_t items = 0;
      try {
        for (;;) {
          WallTimer wait;
          auto batch = q_in.Pop();
          h_encode_wait.Observe(wait.Seconds());
          if (!batch) break;
          const int d = static_cast<int>(
              batch->seq % static_cast<std::uint64_t>(ndev));
          const auto slot = q_free[d]->Pop();
          if (!slot) break;  // aborted
          obs::Span span("encode", "pipeline");
          const double enc_s =
              cand_mode
                  ? engine_->EncodeCandidatesSlot(
                        d, *slot, batch->cand_reads.data(),
                        batch->cand_reads.size(), batch->candidates.data(),
                        batch->size())
                  : engine_->EncodePairsSlot(d, *slot, batch->reads.data(),
                                             batch->refs.data(),
                                             batch->size());
          span.Close();
          busy += enc_s;
          h_encode_service.Observe(enc_s);
          model_clock += enc_s;
          batch->device = d;
          batch->encode_ready = model_clock;
          batches += 1;
          items += batch->size();
          if (!q_ready[d]->Push({std::move(*batch), *slot})) break;
        }
      } catch (...) {
        record_error(std::current_exception());
      }
      {
        std::lock_guard<std::mutex> lk(stats_mu);
        encode_stage.busy_seconds += busy;
        encode_stage.batches += batches;
        encode_stage.items += items;
      }
      if (encoders_left.fetch_sub(1) == 1) {
        for (auto& q : q_ready) q->Close();
      }
    });
  }

  // --- Stage 3: filtration, one driver per device ----------------------
  const bool double_buffered = config_.slots_per_device > 1;
  for (int d = 0; d < ndev; ++d) {
    threads.emplace_back([&, d] {
      util::SetCurrentThreadName("gkgpu-filter" + std::to_string(d));
      double busy = 0.0;
      double clock = 0.0;
      double kt_sum = 0.0;
      double tr_sum = 0.0;
      std::uint64_t batches = 0;
      std::uint64_t items = 0;
      std::uint64_t accepted = 0;
      std::uint64_t bypassed = 0;
      std::uint64_t earlyouted = 0;
      try {
        for (;;) {
          WallTimer wait;
          auto msg = q_ready[d]->Pop();
          h_filter_wait.Observe(wait.Seconds());
          if (!msg) break;
          const std::size_t n = msg->batch.size();
          msg->batch.results.assign(n, PairResult{});
          WallTimer t;
          obs::Span span("filter", "pipeline");
          const StreamBatchStats st =
              cand_mode
                  ? (msg->batch.joint.empty()
                         ? engine_->FilterCandidatesSlot(
                               d, msg->slot, n, msg->batch.results.data())
                         : engine_->FilterCandidatesSlotJoint(
                               d, msg->slot, n, msg->batch.joint,
                               msg->batch.results.data()))
                  : engine_->FilterPairsSlot(d, msg->slot, n,
                                             msg->batch.results.data());
          span.Close();
          const double service_s = t.Seconds();
          busy += service_s;
          h_filter_service.Observe(service_s);
          q_free[d]->Push(msg->slot);
          // Timeline: a prefetch-capable, double-buffered device overlaps
          // the next batch's transfers with the running kernel; otherwise
          // transfers serialize with compute (same convention as the
          // blocking path's device_pipeline_seconds).
          const bool overlapped =
              double_buffered && engine_->device(d).props().supports_prefetch();
          const double device_busy =
              overlapped ? std::max(st.kernel_seconds, st.transfer_seconds)
                         : st.kernel_seconds + st.transfer_seconds;
          clock = std::max(clock, msg->batch.encode_ready) + device_busy;
          kt_sum += st.kernel_seconds;
          tr_sum += st.transfer_seconds;
          accepted += st.accepted;
          bypassed += st.bypassed;
          earlyouted += st.earlyouted;
          batches += 1;
          items += n;
          if (!q_filtered.Push(std::move(msg->batch))) break;
        }
      } catch (...) {
        record_error(std::current_exception());
      }
      {
        std::lock_guard<std::mutex> lk(model_mu);
        device_clock[static_cast<std::size_t>(d)] = clock;
        device_kt[static_cast<std::size_t>(d)] = kt_sum;
        device_tr[static_cast<std::size_t>(d)] = tr_sum;
      }
      {
        std::lock_guard<std::mutex> lk(stats_mu);
        filter_stage.busy_seconds += busy;
        filter_stage.batches += batches;
        filter_stage.items += items;
        stats.accepted += accepted;
        stats.bypassed += bypassed;
        stats.earlyouted += earlyouted;
        stats.rejected += items - accepted - earlyouted;
      }
      if (drivers_left.fetch_sub(1) == 1) {
        q_filtered.Close();
      }
    });
  }

  // --- Stage 4: verification pool --------------------------------------
  for (int w = 0; w < config_.verify_workers; ++w) {
    threads.emplace_back([&, w] {
      util::SetCurrentThreadName("gkgpu-sverify" + std::to_string(w));
      double busy = 0.0;
      std::uint64_t batches = 0;
      std::uint64_t pairs_in = 0;
      std::uint64_t confirmed = 0;
      BandedVerifier verifier;
      // Reverse-strand candidates verify the read's reverse complement
      // against the forward window; one cached buffer per worker amortizes
      // the revcomp over a read's contiguous run of reverse candidates.
      std::string rc_buf;
      std::uint32_t rc_read = 0;
      bool rc_valid = false;
      try {
        for (;;) {
          WallTimer wait;
          auto batch = q_filtered.Pop();
          h_verify_wait.Observe(wait.Seconds());
          if (!batch) break;
          const std::size_t n = batch->size();
          batch->edits.assign(n, -1);
          rc_valid = false;
          if (config_.verify) {
            WallTimer t;
            obs::Span span("verify", "pipeline");
            const std::size_t L =
                static_cast<std::size_t>(engine_->config().read_length);
            if (config_.emit_cigar) batch->cigars.assign(n, {});
            for (std::size_t i = 0; i < n; ++i) {
              if (!batch->results[i].accept) {
                // Early-outed lanes were never filtered: -2 marks the
                // verdict as unknown (vs -1 = rejected/refuted), so paired
                // finalization can resurrect them if a pair comes up empty.
                if (batch->results[i].bypassed == 2) batch->edits[i] = -2;
                continue;
              }
              ++pairs_in;
              std::string_view read;
              std::string_view window;
              if (cand_mode) {
                // Verification windows are views into the reference text —
                // the host never materializes per-candidate segments.
                const CandidatePair c = batch->candidates[i];
                if (c.strand != 0) {
                  if (!rc_valid || rc_read != c.read_index) {
                    ReverseComplementInto(batch->cand_reads[c.read_index],
                                          &rc_buf);
                    rc_read = c.read_index;
                    rc_valid = true;
                  }
                  read = rc_buf;
                } else {
                  read = batch->cand_reads[c.read_index];
                }
                window = config_.reference_text.substr(
                    static_cast<std::size_t>(c.ref_pos), L);
              } else {
                read = batch->reads[i];
                window = batch->refs[i];
              }
              batch->edits[i] = verifier.Distance(read, window, verify_k);
              if (batch->edits[i] >= 0) {
                ++confirmed;
                if (config_.emit_cigar) {
                  // Same computation as WriteSamAlignment (band = the
                  // confirmed distance), so sinks emit identical bytes.
                  const Alignment aln =
                      BandedAlign(read, window, batch->edits[i]);
                  batch->cigars[i] =
                      aln.distance >= 0
                          ? aln.cigar
                          : std::to_string(read.size()) + "M";
                }
              }
            }
            span.Close();
            const double service_s = t.Seconds();
            busy += service_s;
            h_verify_service.Observe(service_s);
          }
          batches += 1;
          if (!q_done.Push(std::move(*batch))) break;
        }
      } catch (...) {
        record_error(std::current_exception());
      }
      {
        std::lock_guard<std::mutex> lk(stats_mu);
        verify_stage.busy_seconds += busy;
        verify_stage.batches += batches;
        verify_stage.items += pairs_in;
        stats.verified_pairs += pairs_in;
        stats.true_mappings += confirmed;
      }
      if (verifiers_left.fetch_sub(1) == 1) {
        q_done.Close();
      }
    });
  }

  // --- Stage 5: ordered sink (this thread) ------------------------------
  try {
    std::map<std::uint64_t, PairBatch> pending;
    std::uint64_t next_seq = 0;
    for (;;) {
      WallTimer wait;
      auto batch = q_done.Pop();
      h_sink_wait.Observe(wait.Seconds());
      if (!batch) break;
      pending.emplace(batch->seq, std::move(*batch));
      while (!pending.empty() && pending.begin()->first == next_seq) {
        PairBatch out = std::move(pending.begin()->second);
        pending.erase(pending.begin());
        ++next_seq;
        sink_stage.batches += 1;
        sink_stage.items += out.size();
        stats.pairs += out.size();
        stats.batches += 1;
        WallTimer t;
        obs::Span span("sink", "pipeline");
        sink(std::move(out));
        span.Close();
        const double service_s = t.Seconds();
        sink_stage.busy_seconds += service_s;
        h_sink_service.Observe(service_s);
      }
    }
  } catch (...) {
    record_error(std::current_exception());
  }

  for (auto& t : threads) t.join();

  stats.wall_seconds = run_timer.Seconds();
  for (int d = 0; d < ndev; ++d) {
    stats.filter_seconds =
        std::max(stats.filter_seconds,
                 device_clock[static_cast<std::size_t>(d)]);
    stats.kernel_seconds =
        std::max(stats.kernel_seconds, device_kt[static_cast<std::size_t>(d)]);
    stats.kernel_seconds_total += device_kt[static_cast<std::size_t>(d)];
    stats.transfer_seconds =
        std::max(stats.transfer_seconds,
                 device_tr[static_cast<std::size_t>(d)]);
  }
  stats.encode_seconds = encode_stage.busy_seconds;
  stats.verify_seconds = verify_stage.busy_seconds;
  stats.grow_decisions = batcher.grows();
  stats.shrink_decisions = batcher.shrinks();
  stats.stages = {source_stage, encode_stage, filter_stage, verify_stage,
                  sink_stage};
  stats.queues.push_back({"source->encode", q_in.capacity(), q_in.stats()});
  for (int d = 0; d < ndev; ++d) {
    stats.queues.push_back({"encoded->gpu" + std::to_string(d),
                            q_ready[d]->capacity(), q_ready[d]->stats()});
  }
  stats.queues.push_back(
      {"filter->verify", q_filtered.capacity(), q_filtered.stats()});
  stats.queues.push_back({"verify->sink", q_done.capacity(), q_done.stats()});

  {
    std::lock_guard<std::mutex> lk(err_mu);
    if (first_error) std::rethrow_exception(first_error);
  }
  return stats;
}

}  // namespace gkgpu::pipeline
