// Shared candidate-batch packing loop for the candidate-mode front ends
// (ReadMapper::MapReadsStreaming, StreamFastqToSam and the paired-end
// streaming path).  All stream reads through seeding and pack the
// resulting oriented (read, strand, reference-offset) candidates into
// PairBatches; the subtle invariants live here once:
//
//   * a *sequence* enters the batch's read table at most once per batch:
//     candidates point into the table through their read index (the
//     PairBlock indirection), so duplicate reads — PCR duplicates, a
//     carried-over read re-entering a batch that already holds its
//     sequence, identical mates — share one table entry and are encoded
//     and shipped across the bus once;
//   * when a batch fills mid-read, the leftover candidates carry over to
//     the next call; the read's sequence reappears in the next batch's
//     table only if no other read already contributed the same bytes —
//     every batch stays self-contained;
//   * reads whose seeding produced no candidates are skipped without
//     touching the batch.
#ifndef GKGPU_PIPELINE_CANDIDATE_PACKER_HPP
#define GKGPU_PIPELINE_CANDIDATE_PACKER_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "pipeline/batch.hpp"
#include "util/fingerprint.hpp"

namespace gkgpu {

/// One seeding hit: a candidate mapping location plus the strand it was
/// seeded on (0 = the read itself matches the forward reference window,
/// 1 = its reverse complement does).  Shared between the mapper's seeding
/// output and the pipeline's batch packing; the strand bit is carried into
/// CandidatePair and travels through the engine's candidate slots.
struct OrientedCandidate {
  std::int64_t pos = 0;
  std::uint8_t strand = 0;
};

}  // namespace gkgpu

namespace gkgpu::pipeline {

/// Carry-over state of a candidate stream between source calls: the
/// current read's remaining oriented candidates and its sequence (owned
/// by the caller; the pointer must stay valid until the next fetch — a
/// reused buffer is fine).
struct CandidateStream {
  std::vector<OrientedCandidate> positions;
  std::size_t offset = 0;
  const std::string* read = nullptr;  // null = fetch the next read
};

/// Packs up to `target` candidates into `batch`.  `fetch` advances the
/// stream: fill `positions` with the next read's oriented candidate
/// locations and return a pointer to its (forward) sequence, or null at
/// end of stream.  `emit(oc, last_of_read)` runs after each candidate is
/// appended, to add per-pair provenance columns; `last_of_read` is true on
/// the read's final candidate (known up front — seeding fills the whole
/// position list before packing), so sinks can close a read's group the
/// moment its multiplicity is complete, even when the read's candidates
/// split across batches.
template <typename Fetch, typename Emit>
void PackCandidateBatch(PairBatch* batch, std::size_t target,
                        CandidateStream* stream, Fetch&& fetch, Emit&& emit) {
  // Content index of this batch's read table: sequence fingerprint ->
  // table indices (collisions verified by comparison).  Built per call —
  // a batch arrives empty — so a sequence the batch already carries is
  // reused instead of repeated, whatever read it came from.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> table_index;
  // The current read's table slot.  Deliberately resolved by content, not
  // pointer identity: fetchers may reuse one sequence buffer for
  // consecutive reads.
  std::uint32_t current_slot = 0;
  bool current_resolved = false;
  while (batch->candidates.size() < target) {
    if (stream->read == nullptr) {
      stream->positions.clear();
      stream->offset = 0;
      stream->read = fetch(&stream->positions);
      current_resolved = false;
      if (stream->read == nullptr) break;
    }
    while (stream->offset < stream->positions.size() &&
           batch->candidates.size() < target) {
      if (!current_resolved) {
        const std::string& seq = *stream->read;
        std::vector<std::uint32_t>& bucket =
            table_index[FingerprintText(seq)];
        bool found = false;
        for (const std::uint32_t idx : bucket) {
          if (batch->cand_reads[idx] == seq) {
            current_slot = idx;
            found = true;
            break;
          }
        }
        if (!found) {
          batch->cand_reads.push_back(seq);
          current_slot =
              static_cast<std::uint32_t>(batch->cand_reads.size() - 1);
          bucket.push_back(current_slot);
        }
        current_resolved = true;
      }
      const OrientedCandidate oc = stream->positions[stream->offset++];
      batch->candidates.push_back({current_slot, oc.strand, 0, oc.pos});
      emit(oc, stream->offset == stream->positions.size());
    }
    if (stream->offset >= stream->positions.size()) stream->read = nullptr;
  }
}

}  // namespace gkgpu::pipeline

#endif  // GKGPU_PIPELINE_CANDIDATE_PACKER_HPP
