// Shared candidate-batch packing loop for the candidate-mode front ends
// (ReadMapper::MapReadsStreaming, StreamFastqToSam and the paired-end
// streaming path).  All stream reads through seeding and pack the
// resulting oriented (read, strand, reference-offset) candidates into
// PairBatches; the subtle invariants live here once:
//
//   * a read's sequence enters the batch's read table at most once per
//     batch, immediately before its first candidate of that batch;
//   * when a batch fills mid-read, the leftover candidates carry over to
//     the next call and the read's sequence is repeated in the next
//     batch's table — every batch stays self-contained;
//   * reads whose seeding produced no candidates are skipped without
//     touching the batch.
#ifndef GKGPU_PIPELINE_CANDIDATE_PACKER_HPP
#define GKGPU_PIPELINE_CANDIDATE_PACKER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/batch.hpp"

namespace gkgpu {

/// One seeding hit: a candidate mapping location plus the strand it was
/// seeded on (0 = the read itself matches the forward reference window,
/// 1 = its reverse complement does).  Shared between the mapper's seeding
/// output and the pipeline's batch packing; the strand bit is carried into
/// CandidatePair and travels through the engine's candidate slots.
struct OrientedCandidate {
  std::int64_t pos = 0;
  std::uint8_t strand = 0;
};

}  // namespace gkgpu

namespace gkgpu::pipeline {

/// Carry-over state of a candidate stream between source calls: the
/// current read's remaining oriented candidates and its sequence (owned
/// by the caller; the pointer must stay valid until the next fetch — a
/// reused buffer is fine).
struct CandidateStream {
  std::vector<OrientedCandidate> positions;
  std::size_t offset = 0;
  const std::string* read = nullptr;  // null = fetch the next read
};

/// Packs up to `target` candidates into `batch`.  `fetch` advances the
/// stream: fill `positions` with the next read's oriented candidate
/// locations and return a pointer to its (forward) sequence, or null at
/// end of stream.  `emit(oc, last_of_read)` runs after each candidate is
/// appended, to add per-pair provenance columns; `last_of_read` is true on
/// the read's final candidate (known up front — seeding fills the whole
/// position list before packing), so sinks can close a read's group the
/// moment its multiplicity is complete, even when the read's candidates
/// split across batches.
template <typename Fetch, typename Emit>
void PackCandidateBatch(PairBatch* batch, std::size_t target,
                        CandidateStream* stream, Fetch&& fetch, Emit&& emit) {
  // Whether the current read's sequence is already in *this* batch's
  // table.  Deliberately not a pointer comparison: fetchers may reuse one
  // sequence buffer for consecutive reads.
  bool current_in_table = false;
  while (batch->candidates.size() < target) {
    if (stream->read == nullptr) {
      stream->positions.clear();
      stream->offset = 0;
      stream->read = fetch(&stream->positions);
      current_in_table = false;
      if (stream->read == nullptr) break;
    }
    while (stream->offset < stream->positions.size() &&
           batch->candidates.size() < target) {
      if (!current_in_table) {
        batch->cand_reads.push_back(*stream->read);
        current_in_table = true;
      }
      const OrientedCandidate oc = stream->positions[stream->offset++];
      batch->candidates.push_back(
          {static_cast<std::uint32_t>(batch->cand_reads.size() - 1), oc.strand,
           oc.pos});
      emit(oc, stream->offset == stream->positions.size());
    }
    if (stream->offset >= stream->positions.size()) stream->read = nullptr;
  }
}

}  // namespace gkgpu::pipeline

#endif  // GKGPU_PIPELINE_CANDIDATE_PACKER_HPP
