// The streaming filtration pipeline: an asynchronous, bounded-queue,
// stage-parallel path from a pair stream to ordered, verified results.
//
//   source ──q_in──▶ encode pool ──slots──▶ device drivers ──q_filt──▶
//        verify pool ──q_done──▶ ordered sink
//
// Stages:
//   1. source      — one thread pulling fixed-size PairBatches from a
//                    caller-supplied generator (FASTQ chunker, pair file,
//                    synthetic stream);
//   2. encode      — a worker pool 2-bit-encoding each batch directly into
//                    a reserved per-device slot of the engine's unified
//                    memory (EncodingActor::kDevice stages raw bytes);
//   3. filtration  — one driver thread per simulated GPU running the
//                    GateKeeper kernel on encoded slots.  Batches shard
//                    round-robin across the device set; slots_per_device
//                    >= 2 double-buffers, so batch N+1 encodes/transfers
//                    while batch N's kernel runs;
//   4. verify      — a worker pool running banded alignment on the pairs
//                    the filter accepted (and the undefined pairs it
//                    bypassed), exactly the work the filter saves;
//   5. sink        — restores input order by batch sequence number and
//                    hands each batch to the caller's consumer.
//
// Every queue is bounded, so a slow stage exerts backpressure instead of
// buffering the input set in memory — the property the blocking
// FilterPairs path lacks.  A stage failure closes every queue, the
// remaining stages drain, and the first exception is rethrown from Run().
//
// Two batch shapes flow through the same stages (PipelineConfig::
// reference_text selects the mode): explicit (read, reference-segment)
// string pairs, or candidate batches — distinct reads plus (read,
// reference-offset) candidates filtered against the per-device encoded
// genome and verified against windows of the host reference text, with no
// per-candidate segment strings anywhere.  PipelineConfig::adaptive lets
// the source resize batches from queue occupancy (see adaptive.hpp).
#ifndef GKGPU_PIPELINE_PIPELINE_HPP
#define GKGPU_PIPELINE_PIPELINE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "pipeline/adaptive.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/queue.hpp"

namespace gkgpu::pipeline {

struct PipelineConfig {
  /// Pairs per batch (clamped to the engine's per-kernel plan).
  std::size_t batch_size = 8192;
  /// Bound of each inter-stage queue, in batches.
  std::size_t queue_depth = 4;
  int encode_workers = 2;
  int verify_workers = 2;
  /// Unified-memory buffer sets per device; 2 = double buffering.
  int slots_per_device = 2;
  /// Run the verification stage (banded alignment on accepts/bypasses).
  bool verify = true;
  /// Banded-alignment threshold; -1 uses the engine's error threshold.
  int verify_threshold = -1;
  /// Have the verification workers also produce each confirmed pair's
  /// CIGAR (PairBatch::cigars), so SAM sinks write lines without redoing
  /// the alignment on the single sink thread.
  bool emit_cigar = false;

  /// Candidate mode: the reference text backing the engine's encoded
  /// reference (LoadReference must have been called with exactly this
  /// text; the storage behind the view must outlive the pipeline).
  /// Batches then carry (read, reference-offset) candidates, the
  /// filtration stage slices windows from the per-device encoded genome,
  /// and verification slices the same windows from this text — no
  /// per-candidate segment strings anywhere.  Empty = pair mode.
  std::string_view reference_text;
  /// Precomputed FingerprintText(reference_text) (e.g. from
  /// ReferenceSet::fingerprint()); 0 = the constructor hashes the text
  /// itself.  Either way the value must match the engine's loaded
  /// reference or construction throws.
  std::uint64_t reference_fingerprint = 0;

  /// Occupancy-driven batch sizing: the source consults an AdaptiveBatcher
  /// (seeded from `adaptive_config`, initial = batch_size) before building
  /// each batch.  Slot buffers are provisioned at adaptive_config.max_size.
  bool adaptive = false;
  AdaptiveBatcherConfig adaptive_config;
};

/// Throughput/occupancy counters of one pipeline stage.
struct StageStats {
  std::string name;
  int workers = 0;
  std::uint64_t batches = 0;
  std::uint64_t items = 0;
  /// Work time summed across the stage's workers (excludes queue waits).
  double busy_seconds = 0.0;
};

/// Occupancy/stall report of one inter-stage queue.
struct QueueReport {
  std::string name;
  std::size_t capacity = 0;
  QueueStats stats;
};

struct PipelineStats {
  std::uint64_t pairs = 0;
  std::uint64_t batches = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t bypassed = 0;
  /// Lanes early-outed by mate-aware joint filtration (never filtered).
  std::uint64_t earlyouted = 0;
  std::uint64_t verified_pairs = 0;  // pairs that entered verification
  std::uint64_t true_mappings = 0;   // verification confirmed <= threshold

  /// Measured wall clock of the whole Run() call.
  double wall_seconds = 0.0;
  /// Modeled filtration makespan on the overlapped timeline: host encoding
  /// runs concurrently with device kernels and transfers, devices run
  /// independently (no lockstep rounds).  Directly comparable with the
  /// blocking path's FilterRunStats::filter_seconds, which serializes
  /// host preprocessing with the device pipeline.
  double filter_seconds = 0.0;
  /// Simulated device time of the busiest device (devices run in
  /// parallel), and summed across devices.
  double kernel_seconds = 0.0;
  double kernel_seconds_total = 0.0;
  double transfer_seconds = 0.0;   // simulated PCIe, busiest device
  double encode_seconds = 0.0;     // host encode busy time, all workers
  double verify_seconds = 0.0;     // verification busy time, all workers

  // Adaptive batch sizing (zeros when disabled).
  std::uint64_t grow_decisions = 0;
  std::uint64_t shrink_decisions = 0;
  std::size_t batch_size_min = 0;  // smallest batch size used
  std::size_t batch_size_max = 0;  // largest batch size used

  std::vector<StageStats> stages;
  std::vector<QueueReport> queues;
};

/// Pulls the next batch from the input stream.  Fill reads/refs (plus
/// provenance if the sink wants it) and return true, or return false
/// (leaving the batch empty) at end of stream.  Called from the source
/// thread only; `batch` arrives empty with `seq`/`first_pair` preset.
using BatchSource = std::function<bool(PairBatch* batch)>;

/// Receives finished batches strictly in input order (ascending seq),
/// from the sink thread only.
using BatchSink = std::function<void(PairBatch&& batch)>;

class StreamingPipeline {
 public:
  /// The engine is borrowed and must outlive the pipeline.  Its devices
  /// define the filtration shard set.
  StreamingPipeline(GateKeeperGpuEngine* engine, PipelineConfig config);

  const PipelineConfig& config() const { return config_; }

  /// Streams the source to the sink; blocks until the stream is exhausted
  /// and every batch was delivered.  Rethrows the first stage exception
  /// after shutting the stages down.  Not re-entrant.
  PipelineStats Run(const BatchSource& source, const BatchSink& sink);

 private:
  GateKeeperGpuEngine* engine_;
  PipelineConfig config_;
};

}  // namespace gkgpu::pipeline

#endif  // GKGPU_PIPELINE_PIPELINE_HPP
