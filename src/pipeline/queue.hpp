// Bounded MPMC queue with blocking backpressure — the coupling between the
// streaming pipeline's stages.  A full queue blocks producers (so a slow
// stage throttles everything upstream instead of ballooning memory), an
// empty queue blocks consumers, and Close() initiates shutdown: pending
// items drain, further pushes fail, and pops return nullopt once empty.
//
// Every queue keeps occupancy and stall statistics so PipelineStats can
// show where a run spent its time waiting.
#ifndef GKGPU_PIPELINE_QUEUE_HPP
#define GKGPU_PIPELINE_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/timer.hpp"

namespace gkgpu::pipeline {

/// Lifetime counters of one queue (snapshot via BoundedQueue::stats()).
struct QueueStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::size_t max_depth = 0;        // high-water occupancy
  double push_wait_seconds = 0.0;   // producers blocked on a full queue
  double pop_wait_seconds = 0.0;    // consumers blocked on an empty queue
};

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` >= 1 items may be queued before producers block.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full.  Returns false (dropping `item`) if
  /// the queue is or becomes closed; items are never enqueued after Close.
  bool Push(T item) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!closed_ && items_.size() >= capacity_) {
      WallTimer t;
      cv_push_.wait(lk, [&] { return closed_ || items_.size() < capacity_; });
      stats_.push_wait_seconds += t.Seconds();
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    ++stats_.pushed;
    stats_.max_depth = std::max(stats_.max_depth, items_.size());
    lk.unlock();
    cv_pop_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open.  Returns nullopt only when
  /// the queue is closed AND fully drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lk(mu_);
    if (items_.empty() && !closed_) {
      WallTimer t;
      cv_pop_.wait(lk, [&] { return closed_ || !items_.empty(); });
      stats_.pop_wait_seconds += t.Seconds();
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    lk.unlock();
    cv_push_.notify_one();
    return item;
  }

  /// Non-blocking pop (drain loops during aborts).
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    lk.unlock();
    cv_push_.notify_one();
    return item;
  }

  /// Ends the stream: wakes every blocked producer (their pushes fail) and
  /// consumer (pops drain what is queued, then return nullopt).
  void Close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_push_.notify_all();
    cv_pop_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  QueueStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_push_;
  std::condition_variable cv_pop_;
  std::deque<T> items_;
  bool closed_ = false;
  QueueStats stats_;
};

}  // namespace gkgpu::pipeline

#endif  // GKGPU_PIPELINE_QUEUE_HPP
