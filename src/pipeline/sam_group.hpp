// Per-read SAM record grouping shared by every ordered candidate-mode
// sink.  Verified mappings buffer until the read's last candidate retires
// (PairBatch::last_of_read) — only then is the read's multiplicity known
// and its records scorable — and the flush runs the exact computation of
// the blocking writers (SummarizeEdits -> PrimaryIndex -> ComputeMapq ->
// WriteSamLine under the secondary policy).  StreamFastqToSam and the
// daemon's per-session demultiplexer both format through this one class,
// which is what keeps served output byte-identical to a standalone run.
#ifndef GKGPU_PIPELINE_SAM_GROUP_HPP
#define GKGPU_PIPELINE_SAM_GROUP_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/reference.hpp"
#include "mapper/mapq.hpp"
#include "mapper/sam.hpp"
#include "pipeline/batch.hpp"

namespace gkgpu::pipeline {

struct SamGroupOptions {
  /// RG:Z:<id> on every record ("" = none).
  std::string read_group;
  /// MAPQ ceiling (mapper/mapq.hpp).
  int mapq_cap = kDefaultMapqCap;
  /// Best-only (default) or report-secondary (FLAG 0x100, MAPQ 0).
  SecondaryPolicy secondary = SecondaryPolicy::kBestOnly;
};

class SamGroupBuffer {
 public:
  explicit SamGroupBuffer(SamGroupOptions options)
      : options_(std::move(options)) {}

  /// Buffers batch entry `i` (must be a verified mapping: edits[i] >= 0).
  /// Reverse-strand mappings store FLAG 0x10 and the reverse-complemented
  /// sequence, the bytes the blocking writers produce.  Consumes
  /// batch.cigars[i].
  void AddMapping(PairBatch& batch, std::size_t i);

  /// Scores and writes the buffered group (call when last_of_read fires);
  /// returns the number of records emitted.  A read whose candidates all
  /// failed verification has an empty group and writes nothing.
  std::size_t FlushGroup(std::ostream& out, const ReferenceSet& ref);

  bool empty() const { return group_.empty(); }

 private:
  struct GroupRecord {
    std::string name;
    int flags = 0;
    std::string seq;  // already oriented to match the flags
    std::int32_t chrom = 0;
    std::int64_t pos = 0;
    int edits = 0;
    std::string cigar;
  };

  SamGroupOptions options_;
  std::vector<GroupRecord> group_;
  std::vector<int> group_edits_;
  std::string rc_scratch_;
};

}  // namespace gkgpu::pipeline

#endif  // GKGPU_PIPELINE_SAM_GROUP_HPP
