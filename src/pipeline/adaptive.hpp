// Occupancy-driven batch sizing for the streaming pipeline's source stage.
//
// The batch size trades per-batch overhead (slot round trips, queue hops,
// kernel launches) against pipeline granularity (fill/drain latency,
// ordered-sink buffering).  Instead of a fixed size, the source consults an
// AdaptiveBatcher before building each batch:
//
//   * when the filtration feed queues run dry the devices are starving —
//     the source/encode side cannot keep up at this granularity, so the
//     batch grows (fewer, larger host->device round trips);
//   * when the verify->sink queue backs up the consumer side is the
//     bottleneck — smaller batches keep the ordered sink's reorder window
//     and memory footprint down and the pipeline responsive.
//
// Decisions are pure functions of the observed occupancies (deterministic
// for a given observation sequence), multiplicative in both directions,
// clamped to [min_size, max_size], and never return zero; shrink takes
// precedence when both signals fire.
#ifndef GKGPU_PIPELINE_ADAPTIVE_HPP
#define GKGPU_PIPELINE_ADAPTIVE_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace gkgpu::pipeline {

struct AdaptiveBatcherConfig {
  std::size_t min_size = 1024;
  std::size_t max_size = 16384;
  /// Starting size; 0 picks max_size (start coarse, shrink on pressure).
  std::size_t initial = 0;
  double grow_factor = 2.0;
  double shrink_factor = 0.5;
  /// Feed occupancy (0..1) below which the filter stage counts as starved.
  double starve_watermark = 0.25;
  /// Sink-side occupancy (0..1) above which the sink counts as backed up.
  double backpressure_watermark = 0.75;
};

/// Tuning preset for the paired streaming driver (MapPairsStreaming).
/// The paired path differs from single-end streaming in two ways that
/// shift the sweet spot:
///
///   * its ordered sink buffers whole *pairs* — both mates' edit vectors
///     stay pending until the later mate's last candidate drains — so a
///     size doubling doubles a much heavier reorder window.  Growth is
///     gentler (1.5x) and backpressure bites earlier (0.6);
///   * its source seeds two mates and concordance-prunes before emitting
///     a single candidate, so a feed queue hovering below ~1/3 already
///     means the devices will starve by the next round trip — the starve
///     watermark sits higher (0.35) to begin coarsening sooner.
///
/// Sizes (min/max/initial) are workload knobs, not path knobs; the preset
/// leaves them at the generic defaults for callers to override.
inline AdaptiveBatcherConfig PairedAdaptiveDefaults() {
  AdaptiveBatcherConfig cfg;
  cfg.grow_factor = 1.5;
  cfg.starve_watermark = 0.35;
  cfg.backpressure_watermark = 0.6;
  return cfg;
}

class AdaptiveBatcher {
 public:
  explicit AdaptiveBatcher(AdaptiveBatcherConfig config) : config_(config) {
    config_.min_size = std::max<std::size_t>(1, config_.min_size);
    config_.max_size = std::max(config_.min_size, config_.max_size);
    config_.grow_factor = std::max(1.0, config_.grow_factor);
    config_.shrink_factor = std::clamp(config_.shrink_factor, 0.0, 1.0);
    size_ = config_.initial == 0 ? config_.max_size
                                 : std::clamp(config_.initial,
                                              config_.min_size,
                                              config_.max_size);
    min_seen_ = max_seen_ = size_;
  }

  const AdaptiveBatcherConfig& config() const { return config_; }
  std::size_t current() const { return size_; }

  /// Decides the size of the next batch.  `feed_fill` is the occupancy of
  /// the queues feeding the filtration stage (0 = devices starving),
  /// `sink_fill` the occupancy of the queue draining into the sink
  /// (1 = sink backed up).
  std::size_t Next(double feed_fill, double sink_fill) {
    if (sink_fill > config_.backpressure_watermark) {
      size_ = std::max(
          config_.min_size,
          static_cast<std::size_t>(static_cast<double>(size_) *
                                   config_.shrink_factor));
      ++shrinks_;
    } else if (feed_fill < config_.starve_watermark) {
      size_ = std::min(
          config_.max_size,
          std::max(size_ + 1,
                   static_cast<std::size_t>(static_cast<double>(size_) *
                                            config_.grow_factor)));
      ++grows_;
    }
    size_ = std::clamp(size_, config_.min_size, config_.max_size);
    min_seen_ = std::min(min_seen_, size_);
    max_seen_ = std::max(max_seen_, size_);
    return size_;
  }

  std::uint64_t grows() const { return grows_; }
  std::uint64_t shrinks() const { return shrinks_; }
  std::size_t min_seen() const { return min_seen_; }
  std::size_t max_seen() const { return max_seen_; }

 private:
  AdaptiveBatcherConfig config_;
  std::size_t size_ = 0;
  std::size_t min_seen_ = 0;
  std::size_t max_seen_ = 0;
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
};

}  // namespace gkgpu::pipeline

#endif  // GKGPU_PIPELINE_ADAPTIVE_HPP
