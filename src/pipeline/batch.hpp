// The unit of work flowing through the streaming pipeline, in one of two
// shapes:
//   * pair mode      — explicit (read, reference-segment) string pairs in
//     `reads`/`refs`;
//   * candidate mode — the batch's distinct reads in `cand_reads` plus a
//     (read_index, reference_offset) candidate table; the filtration stage
//     slices reference windows from the per-device encoded genome, so no
//     per-candidate segment string ever exists on the host.
// Plus provenance and, as the batch moves through the stages, filtration
// results and verification edits.
#ifndef GKGPU_PIPELINE_BATCH_HPP
#define GKGPU_PIPELINE_BATCH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/gatekeeper_kernel.hpp"

namespace gkgpu::pipeline {

struct PairBatch {
  /// Input-order sequence number, assigned by the source stage; the
  /// ordered sink releases batches strictly by this.
  std::uint64_t seq = 0;
  /// Global index of pairs[0] over the whole stream.
  std::size_t first_pair = 0;
  /// Pair budget for this batch, preset by the pipeline before the source
  /// runs (the adaptive batcher moves it between its min and max bounds;
  /// fixed-size pipelines always preset the configured batch size).
  std::size_t target_size = 0;

  // Pair mode.
  std::vector<std::string> reads;
  std::vector<std::string> refs;

  // Candidate mode: distinct read sequences of this batch, and candidates
  // whose read_index points into cand_reads and whose ref_pos is a global
  // offset into the engine's loaded reference.
  std::vector<std::string> cand_reads;
  std::vector<CandidatePair> candidates;
  // Mate-aware joint filtration (paired candidate streams): candidates are
  // laid out [phase-A lanes..., phase-B lanes...) and the filtration stage
  // early-outs phase-B lanes whose phase-A partners all rejected
  // (filters/pair_block.hpp).  Empty plan = independent filtration.
  JointFilterPlan joint;

  // Read-to-SAM provenance (empty in plain pair-stream mode).  One entry
  // per pair: which input read it came from, its name, the chromosome the
  // candidate window lies on, and the chromosome-local position.  The
  // candidate's strand bit lives inside CandidatePair and needs no extra
  // column.
  std::vector<std::uint32_t> read_index;
  std::vector<std::string> read_names;
  std::vector<std::int32_t> ref_chrom;
  std::vector<std::int64_t> ref_pos;
  // Multiplicity plumbing for MAPQ: 1 on a read's final candidate, so the
  // SAM sink knows when a read's verified-placement count is complete and
  // can score its records (mapper/mapq.hpp) without waiting for the next
  // read — a read's candidates may split across batches.
  std::vector<std::uint8_t> last_of_read;
  // Paired-end provenance: which mate of the pair the candidate belongs to
  // (0 = R1, 1 = R2); read_index then carries the *pair* index.  Empty on
  // single-end streams.
  std::vector<std::uint8_t> mate;

  /// Filled by the filtration stage.
  std::vector<PairResult> results;
  /// Filled by the verification stage: exact banded edit distance for
  /// pairs that entered verification and passed (<= threshold), -1 for
  /// pairs the filter rejected or verification refuted.
  std::vector<int> edits;
  /// CIGAR strings of confirmed pairs (empty entries otherwise), filled by
  /// the verification workers when PipelineConfig::emit_cigar is set — the
  /// traceback runs in the parallel stage, not the single-threaded sink.
  std::vector<std::string> cigars;

  /// Which device filtered the batch (round-robin shard).
  int device = -1;
  /// Modeled availability instant on the overlapped timeline (seconds
  /// since pipeline start) at which the batch finished host encoding.
  double encode_ready = 0.0;

  bool candidate_mode() const { return !candidates.empty(); }
  std::size_t size() const {
    return candidates.empty() ? reads.size() : candidates.size();
  }
};

}  // namespace gkgpu::pipeline

#endif  // GKGPU_PIPELINE_BATCH_HPP
