// The unit of work flowing through the streaming pipeline: a fixed-size
// batch of (read, reference-segment) pairs with its provenance and, as it
// moves through the stages, filtration results and verification edits.
#ifndef GKGPU_PIPELINE_BATCH_HPP
#define GKGPU_PIPELINE_BATCH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/gatekeeper_kernel.hpp"

namespace gkgpu::pipeline {

struct PairBatch {
  /// Input-order sequence number, assigned by the source stage; the
  /// ordered sink releases batches strictly by this.
  std::uint64_t seq = 0;
  /// Global index of pairs[0] over the whole stream.
  std::size_t first_pair = 0;

  std::vector<std::string> reads;
  std::vector<std::string> refs;

  // Read-to-SAM provenance (empty in plain pair-stream mode).  One entry
  // per pair: which input read it came from, its name, and the reference
  // position of the candidate segment.
  std::vector<std::uint32_t> read_index;
  std::vector<std::string> read_names;
  std::vector<std::int64_t> ref_pos;

  /// Filled by the filtration stage.
  std::vector<PairResult> results;
  /// Filled by the verification stage: exact banded edit distance for
  /// pairs that entered verification and passed (<= threshold), -1 for
  /// pairs the filter rejected or verification refuted.
  std::vector<int> edits;

  /// Which device filtered the batch (round-robin shard).
  int device = -1;
  /// Modeled availability instant on the overlapped timeline (seconds
  /// since pipeline start) at which the batch finished host encoding.
  double encode_ready = 0.0;

  std::size_t size() const { return reads.size(); }
};

}  // namespace gkgpu::pipeline

#endif  // GKGPU_PIPELINE_BATCH_HPP
