#include "pipeline/read_to_sam.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "io/fastq.hpp"
#include "mapper/sam.hpp"

namespace gkgpu::pipeline {

ReadToSamStats StreamFastqToSam(std::istream& fastq, const ReadMapper& mapper,
                                GateKeeperGpuEngine* engine,
                                const ReadToSamConfig& config,
                                std::ostream* sam) {
  ReadToSamStats out;
  StreamingPipeline pipeline(engine, config.pipeline);
  const std::size_t capacity = pipeline.config().batch_size;
  const int read_length = engine->config().read_length;
  const std::string& genome = mapper.genome();

  FastqStreamReader reader(fastq);
  // Carry-over between source calls: a read whose candidates did not all
  // fit in the previous batch.
  FastqRecord rec;
  std::vector<std::int64_t> cand_positions;
  std::size_t cand_offset = 0;
  bool have_read = false;
  std::uint32_t read_counter = 0;

  const BatchSource source = [&](PairBatch* batch) {
    while (batch->size() < capacity) {
      if (!have_read) {
        if (!reader.Next(&rec)) break;  // FASTQ exhausted
        ++out.reads;
        if (static_cast<int>(rec.seq.size()) != read_length) {
          ++out.skipped_reads;
          continue;
        }
        mapper.CollectCandidates(rec.seq, &cand_positions);
        out.candidates += cand_positions.size();
        cand_offset = 0;
        have_read = true;
        ++read_counter;
      }
      while (cand_offset < cand_positions.size() &&
             batch->size() < capacity) {
        const std::int64_t pos = cand_positions[cand_offset++];
        batch->reads.push_back(rec.seq);
        batch->refs.push_back(
            genome.substr(static_cast<std::size_t>(pos),
                          static_cast<std::size_t>(read_length)));
        batch->read_index.push_back(read_counter - 1);
        batch->read_names.push_back(rec.name);
        batch->ref_pos.push_back(pos);
      }
      if (cand_offset >= cand_positions.size()) have_read = false;
    }
    return batch->size() > 0;
  };

  // The sink sees batches in input order, and within a batch pairs keep
  // the seeding order, so each read's mappings arrive contiguously (even
  // across a batch split).
  std::uint32_t last_mapped = 0;
  bool any_mapped = false;
  const BatchSink sink = [&](PairBatch&& batch) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.edits[i] < 0) continue;
      ++out.mappings;
      if (!any_mapped || batch.read_index[i] != last_mapped) {
        ++out.mapped_reads;
        last_mapped = batch.read_index[i];
        any_mapped = true;
      }
      if (sam != nullptr) {
        WriteSamRecord(*sam, batch.read_names[i], batch.reads[i],
                       batch.ref_pos[i], batch.edits[i], config.ref_name);
      }
    }
  };

  out.pipeline = pipeline.Run(source, sink);
  return out;
}

PipelineStats FilterPairsStreaming(GateKeeperGpuEngine* engine,
                                   const PipelineConfig& config,
                                   const std::vector<std::string>& reads,
                                   const std::vector<std::string>& refs,
                                   std::vector<PairResult>* results,
                                   std::vector<int>* edits) {
  assert(reads.size() == refs.size());
  StreamingPipeline pipeline(engine, config);
  const std::size_t capacity = pipeline.config().batch_size;
  const std::size_t n = reads.size();
  if (results != nullptr) results->assign(n, PairResult{});
  if (edits != nullptr) edits->assign(n, -1);

  std::size_t offset = 0;
  const BatchSource source = [&](PairBatch* batch) {
    if (offset >= n) return false;
    const std::size_t count = std::min(capacity, n - offset);
    batch->reads.assign(reads.begin() + offset,
                        reads.begin() + offset + count);
    batch->refs.assign(refs.begin() + offset, refs.begin() + offset + count);
    offset += count;
    return true;
  };
  const BatchSink sink = [&](PairBatch&& batch) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results != nullptr) (*results)[batch.first_pair + i] = batch.results[i];
      if (edits != nullptr) (*edits)[batch.first_pair + i] = batch.edits[i];
    }
  };
  return pipeline.Run(source, sink);
}

}  // namespace gkgpu::pipeline
