#include "pipeline/read_to_sam.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <ostream>

#include "io/fastq.hpp"
#include "mapper/sam.hpp"
#include "obs/names.hpp"
#include "pipeline/candidate_packer.hpp"
#include "pipeline/sam_group.hpp"

namespace gkgpu::pipeline {

ReadToSamStats StreamFastqToSam(std::istream& fastq, const ReadMapper& mapper,
                                GateKeeperGpuEngine* engine,
                                const ReadToSamConfig& config,
                                std::ostream* sam) {
  ReadToSamStats out;
  if (!engine->HasReference()) engine->LoadReference(mapper.genome());

  PipelineConfig pcfg = config.pipeline;
  pcfg.reference_text = mapper.genome();
  pcfg.reference_fingerprint = mapper.reference().fingerprint();
  // The caller's verify flag is honored: with verification off the run is
  // stats-only and no mapping is confirmed (no SAM lines), by design.
  pcfg.verify_threshold = mapper.config().error_threshold;
  pcfg.emit_cigar = sam != nullptr;
  StreamingPipeline pipeline(engine, pcfg);

  const ReferenceSet& ref = mapper.reference();
  const int read_length = engine->config().read_length;

  FastqStreamReader reader(fastq);
  // `rec` carries the current read between source calls (a read whose
  // candidates split across batches; PackCandidateBatch repeats its
  // sequence in each batch's read table).
  FastqRecord rec;
  CandidateStream stream;
  std::uint32_t read_counter = 0;
  std::string rc_buf;
  std::vector<std::int64_t> seed_scratch;

  const BatchSource source = [&](PairBatch* batch) {
    const std::size_t target = std::max<std::size_t>(
        1, std::min(batch->target_size, pipeline.config().batch_size));
    PackCandidateBatch(
        batch, target, &stream,
        [&](std::vector<OrientedCandidate>* positions) -> const std::string* {
          for (;;) {
            if (!reader.Next(&rec)) return nullptr;  // FASTQ exhausted
            ++out.reads;
            if (static_cast<int>(rec.seq.size()) != read_length) {
              ++out.skipped_reads;
              continue;
            }
            mapper.CollectCandidatesOriented(rec.seq, &rc_buf, &seed_scratch,
                                             positions);
            out.candidates += positions->size();
            ++read_counter;
            return &rec.seq;
          }
        },
        [&](const OrientedCandidate& oc, bool last) {
          const int chrom = ref.Locate(oc.pos);
          assert(chrom >= 0);  // seeding only emits in-chromosome windows
          batch->read_index.push_back(read_counter - 1);
          batch->read_names.push_back(rec.name);
          batch->ref_chrom.push_back(chrom);
          batch->ref_pos.push_back(ref.ToLocal(chrom, oc.pos));
          batch->last_of_read.push_back(last ? 1 : 0);
        });
    return batch->size() > 0;
  };

  // The sink sees batches in input order, and within a batch pairs keep
  // the seeding order, so each read's mappings arrive contiguously (even
  // across a batch split).  The grouping, scoring, and formatting live in
  // SamGroupBuffer, shared with the daemon's per-session demultiplexer.
  SamGroupBuffer groups(
      SamGroupOptions{config.read_group, config.mapq_cap, config.secondary});
  std::uint32_t last_mapped = 0;
  bool any_mapped = false;
  const BatchSink sink = [&](PairBatch&& batch) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.edits[i] >= 0) {
        ++out.mappings;
        if (!any_mapped || batch.read_index[i] != last_mapped) {
          ++out.mapped_reads;
          last_mapped = batch.read_index[i];
          any_mapped = true;
        }
        if (sam != nullptr) groups.AddMapping(batch, i);
      }
      if (sam != nullptr && batch.last_of_read[i] != 0) {
        groups.FlushGroup(*sam, ref);
      }
    }
  };

  out.pipeline = pipeline.Run(source, sink);
  assert(groups.empty());  // every read's last candidate flushes its group
  obs::CandidatesSeeded().Inc(out.candidates);
  obs::ReadsMapped().Inc(out.mapped_reads);
  obs::ReadsUnmapped().Inc(out.reads - out.skipped_reads - out.mapped_reads);
  return out;
}

PipelineStats FilterPairsStreaming(GateKeeperGpuEngine* engine,
                                   const PipelineConfig& config,
                                   const std::vector<std::string>& reads,
                                   const std::vector<std::string>& refs,
                                   std::vector<PairResult>* results,
                                   std::vector<int>* edits) {
  assert(reads.size() == refs.size());
  StreamingPipeline pipeline(engine, config);
  const std::size_t capacity = pipeline.config().batch_size;
  const std::size_t n = reads.size();
  if (results != nullptr) results->assign(n, PairResult{});
  if (edits != nullptr) edits->assign(n, -1);

  std::size_t offset = 0;
  const BatchSource source = [&](PairBatch* batch) {
    if (offset >= n) return false;
    const std::size_t target = std::max<std::size_t>(
        1, std::min(batch->target_size, capacity));
    const std::size_t count = std::min(target, n - offset);
    batch->reads.assign(reads.begin() + offset,
                        reads.begin() + offset + count);
    batch->refs.assign(refs.begin() + offset, refs.begin() + offset + count);
    offset += count;
    return true;
  };
  const BatchSink sink = [&](PairBatch&& batch) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results != nullptr) {
        (*results)[batch.first_pair + i] = batch.results[i];
      }
      if (edits != nullptr) (*edits)[batch.first_pair + i] = batch.edits[i];
    }
  };
  return pipeline.Run(source, sink);
}

}  // namespace gkgpu::pipeline
