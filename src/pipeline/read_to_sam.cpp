#include "pipeline/read_to_sam.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <ostream>

#include "encode/revcomp.hpp"
#include "io/fastq.hpp"
#include "mapper/sam.hpp"
#include "pipeline/candidate_packer.hpp"

namespace gkgpu::pipeline {

ReadToSamStats StreamFastqToSam(std::istream& fastq, const ReadMapper& mapper,
                                GateKeeperGpuEngine* engine,
                                const ReadToSamConfig& config,
                                std::ostream* sam) {
  ReadToSamStats out;
  if (!engine->HasReference()) engine->LoadReference(mapper.genome());

  PipelineConfig pcfg = config.pipeline;
  pcfg.reference_text = &mapper.genome();
  pcfg.reference_fingerprint = mapper.reference().fingerprint();
  // The caller's verify flag is honored: with verification off the run is
  // stats-only and no mapping is confirmed (no SAM lines), by design.
  pcfg.verify_threshold = mapper.config().error_threshold;
  pcfg.emit_cigar = sam != nullptr;
  StreamingPipeline pipeline(engine, pcfg);

  const ReferenceSet& ref = mapper.reference();
  const int read_length = engine->config().read_length;

  FastqStreamReader reader(fastq);
  // `rec` carries the current read between source calls (a read whose
  // candidates split across batches; PackCandidateBatch repeats its
  // sequence in each batch's read table).
  FastqRecord rec;
  CandidateStream stream;
  std::uint32_t read_counter = 0;
  std::string rc_buf;
  std::vector<std::int64_t> seed_scratch;

  const BatchSource source = [&](PairBatch* batch) {
    const std::size_t target = std::max<std::size_t>(
        1, std::min(batch->target_size, pipeline.config().batch_size));
    PackCandidateBatch(
        batch, target, &stream,
        [&](std::vector<OrientedCandidate>* positions) -> const std::string* {
          for (;;) {
            if (!reader.Next(&rec)) return nullptr;  // FASTQ exhausted
            ++out.reads;
            if (static_cast<int>(rec.seq.size()) != read_length) {
              ++out.skipped_reads;
              continue;
            }
            mapper.CollectCandidatesOriented(rec.seq, &rc_buf, &seed_scratch,
                                             positions);
            out.candidates += positions->size();
            ++read_counter;
            return &rec.seq;
          }
        },
        [&](const OrientedCandidate& oc, bool last) {
          const int chrom = ref.Locate(oc.pos);
          assert(chrom >= 0);  // seeding only emits in-chromosome windows
          batch->read_index.push_back(read_counter - 1);
          batch->read_names.push_back(rec.name);
          batch->ref_chrom.push_back(chrom);
          batch->ref_pos.push_back(ref.ToLocal(chrom, oc.pos));
          batch->last_of_read.push_back(last ? 1 : 0);
        });
    return batch->size() > 0;
  };

  // The sink sees batches in input order, and within a batch pairs keep
  // the seeding order, so each read's mappings arrive contiguously (even
  // across a batch split).  Verified mappings buffer in `group` until the
  // read's last candidate retires (last_of_read) — only then is the
  // read's multiplicity known and its records scorable (AssignMapqs),
  // exactly like the blocking writers.
  struct GroupRecord {
    std::string name;
    int flags = 0;
    std::string seq;  // already oriented to match the flags
    std::int32_t chrom = 0;
    std::int64_t pos = 0;
    int edits = 0;
    std::string cigar;
  };
  std::vector<GroupRecord> group;
  std::vector<int> group_edits;
  std::uint32_t last_mapped = 0;
  bool any_mapped = false;
  std::string sink_rc;
  const BatchSink sink = [&](PairBatch&& batch) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.edits[i] >= 0) {
        ++out.mappings;
        if (!any_mapped || batch.read_index[i] != last_mapped) {
          ++out.mapped_reads;
          last_mapped = batch.read_index[i];
          any_mapped = true;
        }
        if (sam != nullptr) {
          // The CIGAR was computed by the (parallel) verification
          // workers; the ordered sink only formats lines.  Reverse-strand
          // mappings emit FLAG 0x10 and the reverse-complemented sequence
          // — the same bytes the blocking writers produce.
          const CandidatePair c = batch.candidates[i];
          std::string_view seq = batch.cand_reads[c.read_index];
          int flags = 0;
          if (c.strand != 0) {
            ReverseComplementInto(seq, &sink_rc);
            seq = sink_rc;
            flags = kSamReverse;
          }
          group.push_back({batch.read_names[i], flags, std::string(seq),
                           batch.ref_chrom[i], batch.ref_pos[i],
                           batch.edits[i], std::move(batch.cigars[i])});
        }
      }
      if (sam != nullptr && batch.last_of_read[i] != 0) {
        // The output policy picks records exactly like the blocking
        // writers: one summary scan gives the primary record and its
        // MAPQ (every other placement scores 0), then primary-only or
        // everything-with-secondaries-flagged.
        if (!group.empty()) {
          group_edits.clear();
          for (const GroupRecord& g : group) group_edits.push_back(g.edits);
          const EditSummary s = SummarizeEdits(group_edits);
          const std::size_t primary = PrimaryIndex(group_edits, s);
          const int primary_mapq =
              ComputeMapq(s.best, s.second, s.best_count, config.mapq_cap);
          for (std::size_t g = 0; g < group.size(); ++g) {
            if (g != primary &&
                config.secondary == SecondaryPolicy::kBestOnly) {
              continue;
            }
            const GroupRecord& r = group[g];
            const int flags = r.flags | (g == primary ? 0 : kSamSecondary);
            WriteSamLine(
                *sam, r.name, flags, r.seq,
                ref.chromosome(static_cast<std::size_t>(r.chrom)).name,
                r.pos, r.edits, g == primary ? primary_mapq : 0, r.cigar,
                config.read_group);
          }
        }
        group.clear();
      }
    }
  };

  out.pipeline = pipeline.Run(source, sink);
  assert(group.empty());  // every read's last candidate flushes its group
  return out;
}

PipelineStats FilterPairsStreaming(GateKeeperGpuEngine* engine,
                                   const PipelineConfig& config,
                                   const std::vector<std::string>& reads,
                                   const std::vector<std::string>& refs,
                                   std::vector<PairResult>* results,
                                   std::vector<int>* edits) {
  assert(reads.size() == refs.size());
  StreamingPipeline pipeline(engine, config);
  const std::size_t capacity = pipeline.config().batch_size;
  const std::size_t n = reads.size();
  if (results != nullptr) results->assign(n, PairResult{});
  if (edits != nullptr) edits->assign(n, -1);

  std::size_t offset = 0;
  const BatchSource source = [&](PairBatch* batch) {
    if (offset >= n) return false;
    const std::size_t target = std::max<std::size_t>(
        1, std::min(batch->target_size, capacity));
    const std::size_t count = std::min(target, n - offset);
    batch->reads.assign(reads.begin() + offset,
                        reads.begin() + offset + count);
    batch->refs.assign(refs.begin() + offset, refs.begin() + offset + count);
    offset += count;
    return true;
  };
  const BatchSink sink = [&](PairBatch&& batch) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results != nullptr) {
        (*results)[batch.first_pair + i] = batch.results[i];
      }
      if (edits != nullptr) (*edits)[batch.first_pair + i] = batch.edits[i];
    }
  };
  return pipeline.Run(source, sink);
}

}  // namespace gkgpu::pipeline
