// End-to-end streaming front ends over StreamingPipeline:
//
//   * StreamFastqToSam — FASTQ in, ordered SAM out, on the candidate-mode
//     streaming path: reads are chunked off the stream, seeded against the
//     mapper's k-mer index, and the (read, reference-offset) candidates
//     flow through filtration (windows sliced from the per-device encoded
//     reference — no per-candidate segment strings) and banded
//     verification; the ordered sink writes one SAM line per verified
//     mapping, addressed (chromosome, local position) through the mapper's
//     ReferenceSet.  Memory stays bounded by the queue depths no matter
//     the input size.
//   * FilterPairsStreaming — the streaming analogue of
//     GateKeeperGpuEngine::FilterPairs over an in-memory pair set, used by
//     the equivalence tests and the pipeline bench.
#ifndef GKGPU_PIPELINE_READ_TO_SAM_HPP
#define GKGPU_PIPELINE_READ_TO_SAM_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mapper/mapper.hpp"
#include "mapper/mapq.hpp"
#include "mapper/sam.hpp"
#include "pipeline/pipeline.hpp"

namespace gkgpu::pipeline {

struct ReadToSamConfig {
  PipelineConfig pipeline;
  /// Read-group ID: RG:Z:<id> on every record ("" = none); the matching
  /// @RG header line is the caller's (WriteSamHeader's read_group).
  std::string read_group;
  /// MAPQ ceiling (mapper/mapq.hpp): the sink buffers each read's
  /// verified mappings until its multiplicity is complete
  /// (PairBatch::last_of_read), scores them with AssignMapqs, and emits —
  /// the same computation the blocking writers run, so golden SAMs stay
  /// byte-identical across drivers.
  int mapq_cap = kDefaultMapqCap;
  /// Multi-mapping output mode (mapper/sam.hpp): best-only (default) or
  /// report-secondary (FLAG 0x100, MAPQ 0) — identical semantics to the
  /// blocking record writers.  CLI --report-secondary.
  SecondaryPolicy secondary = SecondaryPolicy::kBestOnly;
};

struct ReadToSamStats {
  PipelineStats pipeline;
  std::uint64_t reads = 0;
  std::uint64_t skipped_reads = 0;  // length != engine read length
  std::uint64_t candidates = 0;
  std::uint64_t mappings = 0;
  std::uint64_t mapped_reads = 0;
};

/// Streams `fastq` through seed -> candidate filtration -> verify -> SAM.
/// The engine's read length defines which reads are mappable; its
/// reference is loaded from the mapper's genome on first use.  `sam` may
/// be null to run the pipeline for its statistics only (the header is
/// written by the caller so multiple streams can share one file; use
/// WriteSamHeader(out, mapper.reference()) for the matching @SQ lines).
ReadToSamStats StreamFastqToSam(std::istream& fastq, const ReadMapper& mapper,
                                GateKeeperGpuEngine* engine,
                                const ReadToSamConfig& config,
                                std::ostream* sam);

/// Streams an in-memory pair set through the pipeline and collects
/// per-pair results (and, when `edits` is non-null and verification is
/// enabled, exact banded distances) in input order.
PipelineStats FilterPairsStreaming(GateKeeperGpuEngine* engine,
                                   const PipelineConfig& config,
                                   const std::vector<std::string>& reads,
                                   const std::vector<std::string>& refs,
                                   std::vector<PairResult>* results,
                                   std::vector<int>* edits = nullptr);

}  // namespace gkgpu::pipeline

#endif  // GKGPU_PIPELINE_READ_TO_SAM_HPP
