#include "io/index_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/bitops.hpp"
#include "util/fingerprint.hpp"

namespace gkgpu {

namespace {

// Fixed little-endian header.  All fields naturally aligned; the struct is
// written/read by memcpy, so the layout is the format.  Bumping
// kIndexFormatVersion is mandatory for any change here.
struct IndexFileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t k;
  std::uint64_t genome_length;
  std::uint64_t ref_fingerprint;
  std::uint64_t index_fingerprint;  // IndexFingerprint(ref_fp, k, version)
  std::uint64_t chrom_count;
  // Section geometry: byte offset from the start of the file + byte size.
  std::uint64_t chrom_table_offset, chrom_table_bytes;
  std::uint64_t text_offset, text_bytes;
  std::uint64_t offsets_offset, offsets_bytes;
  std::uint64_t positions_offset, positions_bytes;
  std::uint64_t enc_words_offset, enc_words_bytes;
  std::uint64_t n_mask_offset, n_mask_bytes;
  std::uint64_t payload_checksum;  // FNV over every byte after the header
  std::uint64_t header_checksum;   // FNV over the header, this field zeroed
};
static_assert(sizeof(IndexFileHeader) == 160,
              "header layout is the on-disk format; bump "
              "kIndexFormatVersion when it changes");

std::uint64_t HeaderChecksum(IndexFileHeader h) {
  h.header_checksum = 0;
  return FingerprintBytes(&h, sizeof(h));
}

[[noreturn]] void Fail(const std::string& path, const std::string& why) {
  throw std::runtime_error("index file " + path + ": " + why);
}

/// Aligned section sizes so every array starts on an 8-byte boundary.
std::uint64_t AlignUp8(std::uint64_t n) { return (n + 7) & ~std::uint64_t{7}; }

class SectionWriter {
 public:
  explicit SectionWriter(std::ofstream& out) : out_(out) {}

  /// Writes `bytes` of `data` padded to the next 8-byte boundary, folds
  /// them (padding included) into the payload checksum, and returns the
  /// section's file offset.
  std::uint64_t Write(const void* data, std::uint64_t bytes) {
    const std::uint64_t offset = cursor_;
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
    checksum_ = FingerprintBytes(data, bytes, checksum_);
    const std::uint64_t padded = AlignUp8(bytes);
    static constexpr char kZeros[8] = {};
    if (padded != bytes) {
      out_.write(kZeros, static_cast<std::streamsize>(padded - bytes));
      checksum_ = FingerprintBytes(kZeros, padded - bytes, checksum_);
    }
    cursor_ += padded;
    return offset;
  }

  std::uint64_t cursor() const { return cursor_; }
  std::uint64_t checksum() const { return checksum_; }

 private:
  std::ofstream& out_;
  std::uint64_t cursor_ = sizeof(IndexFileHeader);
  std::uint64_t checksum_ = kFingerprintSeed;
};

std::uint64_t ExpectedOffsetsBytes(int k) {
  return ((std::uint64_t{1} << (2 * k)) + 1) * sizeof(std::uint32_t);
}

}  // namespace

std::uint64_t WriteIndexFile(const std::string& path, const ReferenceSet& ref,
                             const KmerIndex& index,
                             const ReferenceEncoding& encoding) {
  if (ref.empty()) Fail(path, "refusing to write an empty reference");
  if (index.genome_length() != static_cast<std::size_t>(ref.length()) ||
      encoding.length != ref.length()) {
    Fail(path, "index/encoding were not built from this reference");
  }

  // Serialize the chromosome table: per chromosome u64 name length, the
  // name bytes, then i64 offset + i64 length.
  std::string chrom_table;
  for (const ChromosomeInfo& c : ref.chromosomes()) {
    const std::uint64_t name_len = c.name.size();
    chrom_table.append(reinterpret_cast<const char*>(&name_len),
                       sizeof(name_len));
    chrom_table.append(c.name);
    chrom_table.append(reinterpret_cast<const char*>(&c.offset),
                       sizeof(c.offset));
    chrom_table.append(reinterpret_cast<const char*>(&c.length),
                       sizeof(c.length));
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) Fail(path, "cannot open for writing");

  IndexFileHeader h{};
  std::memcpy(h.magic, kIndexMagic, sizeof(kIndexMagic));
  h.version = kIndexFormatVersion;
  h.k = static_cast<std::uint32_t>(index.k());
  h.genome_length = static_cast<std::uint64_t>(ref.length());
  h.ref_fingerprint = ref.fingerprint();
  h.index_fingerprint =
      IndexFingerprint(h.ref_fingerprint, index.k(), h.version);
  h.chrom_count = ref.chromosome_count();

  // Header placeholder; rewritten once the section offsets are known.
  out.write(reinterpret_cast<const char*>(&h),
            static_cast<std::streamsize>(sizeof(h)));

  SectionWriter w(out);
  const std::string_view text = ref.text();
  const auto offsets = index.offsets();
  const auto positions = index.positions();
  h.chrom_table_bytes = chrom_table.size();
  h.chrom_table_offset = w.Write(chrom_table.data(), chrom_table.size());
  h.text_bytes = text.size();
  h.text_offset = w.Write(text.data(), text.size());
  h.offsets_bytes = offsets.size_bytes();
  h.offsets_offset = w.Write(offsets.data(), offsets.size_bytes());
  h.positions_bytes = positions.size_bytes();
  h.positions_offset = w.Write(positions.data(), positions.size_bytes());
  h.enc_words_bytes = encoding.words.size() * sizeof(Word);
  h.enc_words_offset = w.Write(encoding.words.data(), h.enc_words_bytes);
  h.n_mask_bytes = encoding.n_mask.size() * sizeof(Word);
  h.n_mask_offset = w.Write(encoding.n_mask.data(), h.n_mask_bytes);
  h.payload_checksum = w.checksum();
  h.header_checksum = HeaderChecksum(h);

  out.seekp(0);
  out.write(reinterpret_cast<const char*>(&h),
            static_cast<std::streamsize>(sizeof(h)));
  out.flush();
  if (!out) Fail(path, "write failed (disk full?)");
  return w.cursor();
}

std::uint64_t BuildAndWriteIndexFile(const std::string& path,
                                     const ReferenceSet& ref, int k) {
  const KmerIndex index(ref.text(), k);
  const ReferenceEncoding encoding = EncodeReference(ref.text());
  return WriteIndexFile(path, ref, index, encoding);
}

MappedIndexFile MappedIndexFile::Open(const std::string& path,
                                      const IndexLoadOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) Fail(path, std::string("cannot open: ") + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    Fail(path, std::string("fstat failed: ") + std::strerror(err));
  }
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < sizeof(IndexFileHeader)) {
    ::close(fd);
    Fail(path, "truncated: smaller than the index header");
  }
  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    Fail(path, std::string("mmap failed: ") + std::strerror(map_err));
  }

  MappedIndexFile f;
  f.map_ = map;
  f.map_bytes_ = file_bytes;
  const char* base = static_cast<const char*>(map);

  IndexFileHeader h{};
  std::memcpy(&h, base, sizeof(h));
  if (std::memcmp(h.magic, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    Fail(path, "bad magic (not a GKGPUIDX index file)");
  }
  if (h.version != kIndexFormatVersion) {
    Fail(path, "format version " + std::to_string(h.version) +
                   " does not match this build's version " +
                   std::to_string(kIndexFormatVersion) +
                   " — rebuild the index with `gkgpu index`");
  }
  if (HeaderChecksum(h) != h.header_checksum) {
    Fail(path, "header checksum mismatch (corrupt header)");
  }
  if (h.k < 4 || h.k > 14) {
    Fail(path, "seed length k=" + std::to_string(h.k) + " out of range");
  }
  if (h.genome_length == 0 || h.genome_length > KmerIndex::kMaxGenomeLength) {
    Fail(path, "genome length out of range");
  }
  if (h.index_fingerprint !=
      IndexFingerprint(h.ref_fingerprint, static_cast<int>(h.k), h.version)) {
    Fail(path, "fingerprint mismatch: the index does not correspond to the "
               "reference it claims to cover");
  }

  const auto section = [&](std::uint64_t offset, std::uint64_t bytes,
                           const char* what) -> const char* {
    if (offset < sizeof(IndexFileHeader) || offset % 8 != 0 ||
        bytes > file_bytes || offset > file_bytes - bytes) {
      Fail(path, std::string("truncated or corrupt: ") + what +
                     " section exceeds the file");
    }
    return base + offset;
  };

  const char* chrom_table =
      section(h.chrom_table_offset, h.chrom_table_bytes, "chromosome-table");
  const char* text = section(h.text_offset, h.text_bytes, "reference-text");
  const char* offsets_raw =
      section(h.offsets_offset, h.offsets_bytes, "kmer-offsets");
  const char* positions_raw =
      section(h.positions_offset, h.positions_bytes, "kmer-positions");
  const char* enc_raw =
      section(h.enc_words_offset, h.enc_words_bytes, "encoded-reference");
  const char* nmask_raw = section(h.n_mask_offset, h.n_mask_bytes, "n-mask");

  if (h.text_bytes != h.genome_length) {
    Fail(path, "reference-text section does not match the genome length");
  }
  if (h.offsets_bytes != ExpectedOffsetsBytes(static_cast<int>(h.k))) {
    Fail(path, "kmer-offset table has the wrong size for k=" +
                   std::to_string(h.k));
  }
  if (h.positions_bytes % sizeof(std::uint32_t) != 0 ||
      h.enc_words_bytes !=
          ((h.genome_length + kBasesPerWord - 1) / kBasesPerWord) *
              sizeof(Word) ||
      h.n_mask_bytes !=
          ((h.genome_length + kWordBits - 1) / kWordBits) * sizeof(Word)) {
    Fail(path, "section sizes are inconsistent with the genome length");
  }

  if (options.verify_checksum) {
    const std::uint64_t payload = FingerprintBytes(
        base + sizeof(IndexFileHeader), file_bytes - sizeof(IndexFileHeader));
    if (payload != h.payload_checksum) {
      Fail(path, "payload checksum mismatch (corrupt index data)");
    }
  }

  // Parse the chromosome table (bounds-checked byte cursor).
  std::vector<ChromosomeInfo> chroms;
  chroms.reserve(h.chrom_count);
  std::uint64_t cur = 0;
  const auto take = [&](void* out, std::uint64_t n) {
    if (cur + n > h.chrom_table_bytes) {
      Fail(path, "truncated or corrupt: chromosome-table entries exceed "
                 "their section");
    }
    std::memcpy(out, chrom_table + cur, n);
    cur += n;
  };
  for (std::uint64_t i = 0; i < h.chrom_count; ++i) {
    std::uint64_t name_len = 0;
    take(&name_len, sizeof(name_len));
    if (name_len == 0 || name_len > h.chrom_table_bytes) {
      Fail(path, "corrupt chromosome name length");
    }
    ChromosomeInfo c;
    c.name.resize(name_len);
    take(c.name.data(), name_len);
    take(&c.offset, sizeof(c.offset));
    take(&c.length, sizeof(c.length));
    chroms.push_back(std::move(c));
  }

  try {
    f.reference_ =
        ReferenceSet::View(std::move(chroms),
                           std::string_view(text, h.text_bytes),
                           h.ref_fingerprint);
    f.index_ = KmerIndex::View(
        static_cast<int>(h.k), h.genome_length,
        std::span<const std::uint32_t>(
            reinterpret_cast<const std::uint32_t*>(offsets_raw),
            h.offsets_bytes / sizeof(std::uint32_t)),
        std::span<const std::uint32_t>(
            reinterpret_cast<const std::uint32_t*>(positions_raw),
            h.positions_bytes / sizeof(std::uint32_t)));
  } catch (const std::invalid_argument& e) {
    Fail(path, std::string("corrupt index structure: ") + e.what());
  }
  f.encoding_ = ReferenceEncodingView{
      static_cast<std::int64_t>(h.genome_length),
      std::span<const Word>(reinterpret_cast<const Word*>(enc_raw),
                            h.enc_words_bytes / sizeof(Word)),
      std::span<const Word>(reinterpret_cast<const Word*>(nmask_raw),
                            h.n_mask_bytes / sizeof(Word))};
  f.k_ = static_cast<int>(h.k);
  f.ref_fingerprint_ = h.ref_fingerprint;
  return f;
}

MappedIndexFile::MappedIndexFile(MappedIndexFile&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      k_(other.k_),
      ref_fingerprint_(other.ref_fingerprint_),
      reference_(std::move(other.reference_)),
      index_(std::move(other.index_)),
      encoding_(other.encoding_) {}

MappedIndexFile& MappedIndexFile::operator=(MappedIndexFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    k_ = other.k_;
    ref_fingerprint_ = other.ref_fingerprint_;
    reference_ = std::move(other.reference_);
    index_ = std::move(other.index_);
    encoding_ = other.encoding_;
  }
  return *this;
}

MappedIndexFile::~MappedIndexFile() { Unmap(); }

void MappedIndexFile::Unmap() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
    map_bytes_ = 0;
  }
}

}  // namespace gkgpu
