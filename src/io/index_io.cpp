#include "io/index_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/bitops.hpp"
#include "util/fingerprint.hpp"

namespace gkgpu {

namespace {

// Fixed little-endian headers.  All fields naturally aligned; the structs
// are written/read by memcpy, so the layout is the format.  Bumping
// kIndexFormatVersion is mandatory for any change here.

// Version 1: single dense CSR, whole-payload checksum only.
struct IndexFileHeaderV1 {
  char magic[8];
  std::uint32_t version;
  std::uint32_t k;
  std::uint64_t genome_length;
  std::uint64_t ref_fingerprint;
  std::uint64_t index_fingerprint;  // IndexFingerprint(ref_fp, k, version)
  std::uint64_t chrom_count;
  // Section geometry: byte offset from the start of the file + byte size.
  std::uint64_t chrom_table_offset, chrom_table_bytes;
  std::uint64_t text_offset, text_bytes;
  std::uint64_t offsets_offset, offsets_bytes;
  std::uint64_t positions_offset, positions_bytes;
  std::uint64_t enc_words_offset, enc_words_bytes;
  std::uint64_t n_mask_offset, n_mask_bytes;
  std::uint64_t payload_checksum;  // FNV over every byte after the header
  std::uint64_t header_checksum;   // FNV over the header, this field zeroed
};
static_assert(sizeof(IndexFileHeaderV1) == 160,
              "header layout is the on-disk format; bump "
              "kIndexFormatVersion when it changes");

// Version 2: per-shard CSR sections described by a shard table, seed-mode
// metadata, and a per-section checksum table so verification can name the
// corrupt section.
struct IndexFileHeaderV2 {
  char magic[8];
  std::uint32_t version;
  std::uint32_t k;
  std::uint64_t genome_length;
  std::uint64_t ref_fingerprint;
  std::uint64_t index_fingerprint;  // IndexFingerprint(ref_fp, k, version)
  std::uint64_t chrom_count;
  std::uint32_t seed_mode;    // SeedMode numeric value (0 dense, 1 minimizer)
  std::uint32_t minimizer_w;  // winnowing window; 0 in dense mode
  std::uint64_t shard_count;
  std::uint64_t chrom_table_offset, chrom_table_bytes;
  std::uint64_t text_offset, text_bytes;
  std::uint64_t enc_words_offset, enc_words_bytes;
  std::uint64_t n_mask_offset, n_mask_bytes;
  std::uint64_t shard_table_offset, shard_table_bytes;
  std::uint64_t section_checksums_offset, section_checksums_bytes;
  std::uint64_t payload_checksum;  // FNV over every byte after the header
  std::uint64_t header_checksum;   // FNV over the header, this field zeroed
};
static_assert(sizeof(IndexFileHeaderV2) == 176,
              "header layout is the on-disk format; bump "
              "kIndexFormatVersion when it changes");

/// One shard's slice of the genome plus the absolute geometry of its CSR
/// sections — everything needed to mmap this shard independently.
struct ShardTableEntry {
  std::uint64_t chrom_begin, chrom_end;  // [begin, end) chromosome indexes
  std::int64_t text_offset, text_length;
  std::uint64_t offsets_offset, offsets_bytes;
  std::uint64_t positions_offset, positions_bytes;
};
static_assert(sizeof(ShardTableEntry) == 64,
              "shard table entries are the on-disk format");

/// Order of the fixed entries in the v2 section-checksum table; per-shard
/// CSR checksums (offsets chained with positions) follow.
constexpr const char* kFixedSectionNames[] = {
    "chromosome-table", "reference-text", "encoded-reference", "n-mask",
    "shard-table"};
constexpr std::uint64_t kFixedSectionCount = 5;

template <typename Header>
std::uint64_t HeaderChecksum(Header h) {
  h.header_checksum = 0;
  return FingerprintBytes(&h, sizeof(h));
}

[[noreturn]] void Fail(const std::string& path, const std::string& why) {
  throw std::runtime_error("index file " + path + ": " + why);
}

/// Aligned section sizes so every array starts on an 8-byte boundary.
std::uint64_t AlignUp8(std::uint64_t n) { return (n + 7) & ~std::uint64_t{7}; }

class SectionWriter {
 public:
  SectionWriter(std::ofstream& out, std::uint64_t header_bytes)
      : out_(out), cursor_(header_bytes) {}

  /// Writes `bytes` of `data` padded to the next 8-byte boundary, folds
  /// them (padding included) into the payload checksum, and returns the
  /// section's file offset.  When `section_sum` is non-null the unpadded
  /// bytes are also chained into it — the per-section checksum the v2
  /// verifier recomputes straight from the mapping.
  std::uint64_t Write(const void* data, std::uint64_t bytes,
                      std::uint64_t* section_sum = nullptr) {
    const std::uint64_t offset = cursor_;
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
    checksum_ = FingerprintBytes(data, bytes, checksum_);
    if (section_sum != nullptr) {
      *section_sum = FingerprintBytes(data, bytes, *section_sum);
    }
    const std::uint64_t padded = AlignUp8(bytes);
    static constexpr char kZeros[8] = {};
    if (padded != bytes) {
      out_.write(kZeros, static_cast<std::streamsize>(padded - bytes));
      checksum_ = FingerprintBytes(kZeros, padded - bytes, checksum_);
    }
    cursor_ += padded;
    return offset;
  }

  std::uint64_t cursor() const { return cursor_; }
  std::uint64_t checksum() const { return checksum_; }

 private:
  std::ofstream& out_;
  std::uint64_t cursor_;
  std::uint64_t checksum_ = kFingerprintSeed;
};

std::uint64_t ExpectedOffsetsBytes(int k) {
  return ((std::uint64_t{1} << (2 * k)) + 1) * sizeof(std::uint32_t);
}

/// Per chromosome: u64 name length, the name bytes, i64 offset + i64
/// length.  Shared by both format versions.
std::string SerializeChromTable(const ReferenceSet& ref) {
  std::string chrom_table;
  for (const ChromosomeInfo& c : ref.chromosomes()) {
    const std::uint64_t name_len = c.name.size();
    chrom_table.append(reinterpret_cast<const char*>(&name_len),
                       sizeof(name_len));
    chrom_table.append(c.name);
    chrom_table.append(reinterpret_cast<const char*>(&c.offset),
                       sizeof(c.offset));
    chrom_table.append(reinterpret_cast<const char*>(&c.length),
                       sizeof(c.length));
  }
  return chrom_table;
}

std::vector<ChromosomeInfo> ParseChromTable(const std::string& path,
                                            const char* data,
                                            std::uint64_t bytes,
                                            std::uint64_t count) {
  std::vector<ChromosomeInfo> chroms;
  chroms.reserve(count);
  std::uint64_t cur = 0;
  const auto take = [&](void* out, std::uint64_t n) {
    if (cur + n > bytes) {
      Fail(path, "truncated or corrupt: chromosome-table entries exceed "
                 "their section");
    }
    std::memcpy(out, data + cur, n);
    cur += n;
  };
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t name_len = 0;
    take(&name_len, sizeof(name_len));
    if (name_len == 0 || name_len > bytes) {
      Fail(path, "corrupt chromosome name length");
    }
    ChromosomeInfo c;
    c.name.resize(name_len);
    take(c.name.data(), name_len);
    take(&c.offset, sizeof(c.offset));
    take(&c.length, sizeof(c.length));
    chroms.push_back(std::move(c));
  }
  return chroms;
}

}  // namespace

std::uint64_t WriteIndexFileV1(const std::string& path,
                               const ReferenceSet& ref,
                               const KmerIndex& index,
                               const ReferenceEncoding& encoding) {
  if (ref.empty()) Fail(path, "refusing to write an empty reference");
  if (index.genome_length() != static_cast<std::size_t>(ref.length()) ||
      encoding.length != ref.length()) {
    Fail(path, "index/encoding were not built from this reference");
  }

  const std::string chrom_table = SerializeChromTable(ref);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) Fail(path, "cannot open for writing");

  IndexFileHeaderV1 h{};
  std::memcpy(h.magic, kIndexMagic, sizeof(kIndexMagic));
  h.version = 1;
  h.k = static_cast<std::uint32_t>(index.k());
  h.genome_length = static_cast<std::uint64_t>(ref.length());
  h.ref_fingerprint = ref.fingerprint();
  h.index_fingerprint =
      IndexFingerprint(h.ref_fingerprint, index.k(), h.version);
  h.chrom_count = ref.chromosome_count();

  // Header placeholder; rewritten once the section offsets are known.
  out.write(reinterpret_cast<const char*>(&h),
            static_cast<std::streamsize>(sizeof(h)));

  SectionWriter w(out, sizeof(h));
  const std::string_view text = ref.text();
  const auto offsets = index.offsets();
  const auto positions = index.positions();
  h.chrom_table_bytes = chrom_table.size();
  h.chrom_table_offset = w.Write(chrom_table.data(), chrom_table.size());
  h.text_bytes = text.size();
  h.text_offset = w.Write(text.data(), text.size());
  h.offsets_bytes = offsets.size_bytes();
  h.offsets_offset = w.Write(offsets.data(), offsets.size_bytes());
  h.positions_bytes = positions.size_bytes();
  h.positions_offset = w.Write(positions.data(), positions.size_bytes());
  h.enc_words_bytes = encoding.words.size() * sizeof(Word);
  h.enc_words_offset = w.Write(encoding.words.data(), h.enc_words_bytes);
  h.n_mask_bytes = encoding.n_mask.size() * sizeof(Word);
  h.n_mask_offset = w.Write(encoding.n_mask.data(), h.n_mask_bytes);
  h.payload_checksum = w.checksum();
  h.header_checksum = HeaderChecksum(h);

  out.seekp(0);
  out.write(reinterpret_cast<const char*>(&h),
            static_cast<std::streamsize>(sizeof(h)));
  out.flush();
  if (!out) Fail(path, "write failed (disk full?)");
  return w.cursor();
}

std::uint64_t WriteIndexFile(const std::string& path, const ReferenceSet& ref,
                             const SeedIndex& index,
                             const ReferenceEncoding& encoding) {
  if (ref.empty()) Fail(path, "refusing to write an empty reference");
  if (index.shard_count() == 0 ||
      index.genome_length() != static_cast<std::size_t>(ref.length()) ||
      encoding.length != ref.length()) {
    Fail(path, "index/encoding were not built from this reference");
  }

  const std::string chrom_table = SerializeChromTable(ref);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) Fail(path, "cannot open for writing");

  IndexFileHeaderV2 h{};
  std::memcpy(h.magic, kIndexMagic, sizeof(kIndexMagic));
  h.version = kIndexFormatVersion;
  h.k = static_cast<std::uint32_t>(index.k());
  h.genome_length = static_cast<std::uint64_t>(ref.length());
  h.ref_fingerprint = ref.fingerprint();
  h.index_fingerprint =
      IndexFingerprint(h.ref_fingerprint, index.k(), h.version);
  h.chrom_count = ref.chromosome_count();
  h.seed_mode = static_cast<std::uint32_t>(index.mode());
  h.minimizer_w = static_cast<std::uint32_t>(index.minimizer_w());
  h.shard_count = index.shard_count();

  out.write(reinterpret_cast<const char*>(&h),
            static_cast<std::streamsize>(sizeof(h)));

  SectionWriter w(out, sizeof(h));
  std::vector<std::uint64_t> sums;  // the section-checksum table
  const auto fixed_section = [&](const void* data, std::uint64_t bytes,
                                 std::uint64_t* offset,
                                 std::uint64_t* size) {
    std::uint64_t sum = kFingerprintSeed;
    *size = bytes;
    *offset = w.Write(data, bytes, &sum);
    sums.push_back(sum);
  };
  const std::string_view text = ref.text();
  fixed_section(chrom_table.data(), chrom_table.size(),
                &h.chrom_table_offset, &h.chrom_table_bytes);
  fixed_section(text.data(), text.size(), &h.text_offset, &h.text_bytes);
  fixed_section(encoding.words.data(), encoding.words.size() * sizeof(Word),
                &h.enc_words_offset, &h.enc_words_bytes);
  fixed_section(encoding.n_mask.data(), encoding.n_mask.size() * sizeof(Word),
                &h.n_mask_offset, &h.n_mask_bytes);

  // Per-shard CSR sections stream first; the shard table describing them
  // follows, then the checksum table (its own integrity rides on the
  // whole-payload checksum).
  const std::size_t n = index.shard_count();
  std::vector<ShardTableEntry> entries(n);
  std::vector<std::uint64_t> shard_sums(n);
  for (std::size_t s = 0; s < n; ++s) {
    const ShardInfo& info = index.plan().shard(s);
    const KmerIndex& shard = index.shard(s);
    ShardTableEntry& e = entries[s];
    e.chrom_begin = info.chrom_begin;
    e.chrom_end = info.chrom_end;
    e.text_offset = info.text_offset;
    e.text_length = info.text_length;
    std::uint64_t sum = kFingerprintSeed;
    const auto offsets = shard.offsets();
    const auto positions = shard.positions();
    e.offsets_bytes = offsets.size_bytes();
    e.offsets_offset = w.Write(offsets.data(), offsets.size_bytes(), &sum);
    e.positions_bytes = positions.size_bytes();
    e.positions_offset =
        w.Write(positions.data(), positions.size_bytes(), &sum);
    shard_sums[s] = sum;
  }
  fixed_section(entries.data(), entries.size() * sizeof(ShardTableEntry),
                &h.shard_table_offset, &h.shard_table_bytes);
  sums.insert(sums.end(), shard_sums.begin(), shard_sums.end());
  h.section_checksums_bytes = sums.size() * sizeof(std::uint64_t);
  h.section_checksums_offset =
      w.Write(sums.data(), h.section_checksums_bytes);
  h.payload_checksum = w.checksum();
  h.header_checksum = HeaderChecksum(h);

  out.seekp(0);
  out.write(reinterpret_cast<const char*>(&h),
            static_cast<std::streamsize>(sizeof(h)));
  out.flush();
  if (!out) Fail(path, "write failed (disk full?)");
  return w.cursor();
}

std::uint64_t BuildAndWriteIndexFile(const std::string& path,
                                     const ReferenceSet& ref,
                                     const SeedConfig& config) {
  if (ref.empty()) Fail(path, "refusing to write an empty reference");
  const SeedIndex index = SeedIndex::Build(ref, config);
  const ReferenceEncoding encoding = EncodeReference(ref.text());
  return WriteIndexFile(path, ref, index, encoding);
}

std::uint64_t BuildAndWriteIndexFile(const std::string& path,
                                     const ReferenceSet& ref, int k) {
  SeedConfig config;
  config.k = k;
  return BuildAndWriteIndexFile(path, ref, config);
}

MappedIndexFile MappedIndexFile::Open(const std::string& path,
                                      const IndexLoadOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) Fail(path, std::string("cannot open: ") + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    Fail(path, std::string("fstat failed: ") + std::strerror(err));
  }
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < sizeof(IndexFileHeaderV1)) {
    ::close(fd);
    Fail(path, "truncated: smaller than the index header");
  }
  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    Fail(path, std::string("mmap failed: ") + std::strerror(map_err));
  }

  MappedIndexFile f;
  f.map_ = map;
  f.map_bytes_ = file_bytes;
  const char* base = static_cast<const char*>(map);

  // Magic and version share an offset across every format version, so
  // they are checked before picking a header layout.
  char magic[8];
  std::uint32_t version = 0;
  std::memcpy(magic, base, sizeof(magic));
  std::memcpy(&version, base + sizeof(magic), sizeof(version));
  if (std::memcmp(magic, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    Fail(path, "bad magic (not a GKGPUIDX index file)");
  }
  if (version < kIndexMinSupportedVersion || version > kIndexFormatVersion) {
    Fail(path, "found format version " + std::to_string(version) +
                   ", but this build supports versions " +
                   std::to_string(kIndexMinSupportedVersion) + " through " +
                   std::to_string(kIndexFormatVersion) +
                   " — rebuild the index with `gkgpu index`");
  }
  f.format_version_ = version;

  const std::uint64_t header_bytes = version == 1
                                         ? sizeof(IndexFileHeaderV1)
                                         : sizeof(IndexFileHeaderV2);
  if (file_bytes < header_bytes) {
    Fail(path, "truncated: smaller than the index header");
  }
  const auto section = [&](std::uint64_t offset, std::uint64_t bytes,
                           const std::string& what) -> const char* {
    if (offset < header_bytes || offset % 8 != 0 || bytes > file_bytes ||
        offset > file_bytes - bytes) {
      Fail(path,
           "truncated or corrupt: " + what + " section exceeds the file");
    }
    return base + offset;
  };

  if (version == 1) {
    IndexFileHeaderV1 h{};
    std::memcpy(&h, base, sizeof(h));
    if (HeaderChecksum(h) != h.header_checksum) {
      Fail(path, "header checksum mismatch (corrupt header)");
    }
    if (h.k < 4 || h.k > 14) {
      Fail(path, "seed length k=" + std::to_string(h.k) + " out of range");
    }
    if (h.genome_length == 0 ||
        h.genome_length > KmerIndex::kMaxGenomeLength) {
      Fail(path, "genome length out of range");
    }
    if (h.index_fingerprint !=
        IndexFingerprint(h.ref_fingerprint, static_cast<int>(h.k),
                         h.version)) {
      Fail(path, "fingerprint mismatch: the index does not correspond to "
                 "the reference it claims to cover");
    }

    const char* chrom_table = section(h.chrom_table_offset,
                                      h.chrom_table_bytes, "chromosome-table");
    const char* text = section(h.text_offset, h.text_bytes, "reference-text");
    const char* offsets_raw =
        section(h.offsets_offset, h.offsets_bytes, "kmer-offsets");
    const char* positions_raw =
        section(h.positions_offset, h.positions_bytes, "kmer-positions");
    const char* enc_raw =
        section(h.enc_words_offset, h.enc_words_bytes, "encoded-reference");
    const char* nmask_raw = section(h.n_mask_offset, h.n_mask_bytes, "n-mask");

    if (h.text_bytes != h.genome_length) {
      Fail(path, "reference-text section does not match the genome length");
    }
    if (h.offsets_bytes != ExpectedOffsetsBytes(static_cast<int>(h.k))) {
      Fail(path, "kmer-offset table has the wrong size for k=" +
                     std::to_string(h.k));
    }
    if (h.positions_bytes % sizeof(std::uint32_t) != 0 ||
        h.enc_words_bytes !=
            ((h.genome_length + kBasesPerWord - 1) / kBasesPerWord) *
                sizeof(Word) ||
        h.n_mask_bytes !=
            ((h.genome_length + kWordBits - 1) / kWordBits) * sizeof(Word)) {
      Fail(path, "section sizes are inconsistent with the genome length");
    }

    if (options.verify_checksum) {
      const std::uint64_t payload =
          FingerprintBytes(base + sizeof(h), file_bytes - sizeof(h));
      if (payload != h.payload_checksum) {
        Fail(path, "payload checksum mismatch (corrupt index data)");
      }
    }

    try {
      f.reference_ = ReferenceSet::View(
          ParseChromTable(path, chrom_table, h.chrom_table_bytes,
                          h.chrom_count),
          std::string_view(text, h.text_bytes), h.ref_fingerprint);
      KmerIndex view = KmerIndex::View(
          static_cast<int>(h.k), h.genome_length,
          std::span<const std::uint32_t>(
              reinterpret_cast<const std::uint32_t*>(offsets_raw),
              h.offsets_bytes / sizeof(std::uint32_t)),
          std::span<const std::uint32_t>(
              reinterpret_cast<const std::uint32_t*>(positions_raw),
              h.positions_bytes / sizeof(std::uint32_t)));
      // A v1 file is by construction one dense shard covering everything.
      std::vector<KmerIndex> shards;
      shards.push_back(std::move(view));
      f.index_ = SeedIndex::View(ShardPlan::Partition(f.reference_, 0),
                                 SeedMode::kDense, 0, std::move(shards));
    } catch (const std::invalid_argument& e) {
      Fail(path, std::string("corrupt index structure: ") + e.what());
    }
    f.encoding_ = ReferenceEncodingView{
        static_cast<std::int64_t>(h.genome_length),
        std::span<const Word>(reinterpret_cast<const Word*>(enc_raw),
                              h.enc_words_bytes / sizeof(Word)),
        std::span<const Word>(reinterpret_cast<const Word*>(nmask_raw),
                              h.n_mask_bytes / sizeof(Word))};
    f.k_ = static_cast<int>(h.k);
    f.ref_fingerprint_ = h.ref_fingerprint;
    return f;
  }

  IndexFileHeaderV2 h{};
  std::memcpy(&h, base, sizeof(h));
  if (HeaderChecksum(h) != h.header_checksum) {
    Fail(path, "header checksum mismatch (corrupt header)");
  }
  if (h.k < 4 || h.k > 14) {
    Fail(path, "seed length k=" + std::to_string(h.k) + " out of range");
  }
  if (h.genome_length == 0) {
    Fail(path, "genome length out of range");
  }
  if (h.seed_mode > static_cast<std::uint32_t>(SeedMode::kMinimizer)) {
    Fail(path, "unknown seed mode " + std::to_string(h.seed_mode));
  }
  const bool minimizer = h.seed_mode ==
                         static_cast<std::uint32_t>(SeedMode::kMinimizer);
  if (minimizer && (h.minimizer_w < 1 || h.minimizer_w > 255)) {
    Fail(path, "minimizer window w=" + std::to_string(h.minimizer_w) +
                   " out of range");
  }
  if (h.index_fingerprint !=
      IndexFingerprint(h.ref_fingerprint, static_cast<int>(h.k), h.version)) {
    Fail(path, "fingerprint mismatch: the index does not correspond to the "
               "reference it claims to cover");
  }
  if (h.shard_count == 0 ||
      h.shard_count > file_bytes / sizeof(ShardTableEntry) ||
      h.shard_table_bytes != h.shard_count * sizeof(ShardTableEntry)) {
    Fail(path, "shard table has the wrong size for its shard count");
  }
  if (h.section_checksums_bytes !=
      (kFixedSectionCount + h.shard_count) * sizeof(std::uint64_t)) {
    Fail(path, "section-checksum table has the wrong size");
  }

  const char* chrom_table = section(h.chrom_table_offset, h.chrom_table_bytes,
                                    "chromosome-table");
  const char* text = section(h.text_offset, h.text_bytes, "reference-text");
  const char* enc_raw =
      section(h.enc_words_offset, h.enc_words_bytes, "encoded-reference");
  const char* nmask_raw = section(h.n_mask_offset, h.n_mask_bytes, "n-mask");
  const char* shard_table_raw =
      section(h.shard_table_offset, h.shard_table_bytes, "shard-table");
  const char* sums_raw = section(h.section_checksums_offset,
                                 h.section_checksums_bytes,
                                 "section-checksum-table");

  if (h.text_bytes != h.genome_length) {
    Fail(path, "reference-text section does not match the genome length");
  }
  if (h.enc_words_bytes !=
          ((h.genome_length + kBasesPerWord - 1) / kBasesPerWord) *
              sizeof(Word) ||
      h.n_mask_bytes !=
          ((h.genome_length + kWordBits - 1) / kWordBits) * sizeof(Word)) {
    Fail(path, "section sizes are inconsistent with the genome length");
  }

  std::vector<ShardTableEntry> entries(h.shard_count);
  std::memcpy(entries.data(), shard_table_raw, h.shard_table_bytes);
  for (std::uint64_t s = 0; s < h.shard_count; ++s) {
    const ShardTableEntry& e = entries[s];
    const std::string name = "shard-" + std::to_string(s);
    if (e.offsets_bytes != ExpectedOffsetsBytes(static_cast<int>(h.k))) {
      Fail(path, name + " kmer-offset table has the wrong size for k=" +
                     std::to_string(h.k));
    }
    if (e.positions_bytes % sizeof(std::uint32_t) != 0) {
      Fail(path, name + " kmer-positions section is misaligned");
    }
    (void)section(e.offsets_offset, e.offsets_bytes, name + " kmer-offsets");
    (void)section(e.positions_offset, e.positions_bytes,
                  name + " kmer-positions");
  }

  if (options.verify_checksum) {
    // Per-section verification: a mismatch names the section instead of
    // the v1 "somewhere in the payload" diagnosis.
    std::vector<std::uint64_t> stored(kFixedSectionCount + h.shard_count);
    std::memcpy(stored.data(), sums_raw, h.section_checksums_bytes);
    const char* fixed_data[kFixedSectionCount] = {chrom_table, text, enc_raw,
                                                  nmask_raw, shard_table_raw};
    const std::uint64_t fixed_bytes[kFixedSectionCount] = {
        h.chrom_table_bytes, h.text_bytes, h.enc_words_bytes, h.n_mask_bytes,
        h.shard_table_bytes};
    for (std::uint64_t i = 0; i < kFixedSectionCount; ++i) {
      if (FingerprintBytes(fixed_data[i], fixed_bytes[i]) != stored[i]) {
        Fail(path, std::string("checksum mismatch in section '") +
                       kFixedSectionNames[i] + "' (corrupt index data)");
      }
    }
    for (std::uint64_t s = 0; s < h.shard_count; ++s) {
      const ShardTableEntry& e = entries[s];
      std::uint64_t sum = FingerprintBytes(base + e.offsets_offset,
                                           e.offsets_bytes);
      sum = FingerprintBytes(base + e.positions_offset, e.positions_bytes,
                             sum);
      if (sum != stored[kFixedSectionCount + s]) {
        Fail(path, "checksum mismatch in section 'shard-" +
                       std::to_string(s) + "-csr' (corrupt index data)");
      }
    }
    const std::uint64_t payload =
        FingerprintBytes(base + sizeof(h), file_bytes - sizeof(h));
    if (payload != h.payload_checksum) {
      Fail(path, "payload checksum mismatch (corrupt index data)");
    }
  }

  try {
    f.reference_ = ReferenceSet::View(
        ParseChromTable(path, chrom_table, h.chrom_table_bytes,
                        h.chrom_count),
        std::string_view(text, h.text_bytes), h.ref_fingerprint);
    std::vector<ShardInfo> infos;
    infos.reserve(entries.size());
    std::vector<KmerIndex> shards;
    shards.reserve(entries.size());
    for (const ShardTableEntry& e : entries) {
      infos.push_back(ShardInfo{static_cast<std::size_t>(e.chrom_begin),
                                static_cast<std::size_t>(e.chrom_end),
                                e.text_offset, e.text_length});
      shards.push_back(KmerIndex::View(
          static_cast<int>(h.k), static_cast<std::size_t>(e.text_length),
          std::span<const std::uint32_t>(
              reinterpret_cast<const std::uint32_t*>(base + e.offsets_offset),
              e.offsets_bytes / sizeof(std::uint32_t)),
          std::span<const std::uint32_t>(
              reinterpret_cast<const std::uint32_t*>(base +
                                                     e.positions_offset),
              e.positions_bytes / sizeof(std::uint32_t))));
    }
    f.index_ = SeedIndex::View(
        ShardPlan::FromShards(std::move(infos), f.reference_),
        static_cast<SeedMode>(h.seed_mode),
        static_cast<int>(h.minimizer_w), std::move(shards));
  } catch (const std::invalid_argument& e) {
    Fail(path, std::string("corrupt index structure: ") + e.what());
  }
  f.encoding_ = ReferenceEncodingView{
      static_cast<std::int64_t>(h.genome_length),
      std::span<const Word>(reinterpret_cast<const Word*>(enc_raw),
                            h.enc_words_bytes / sizeof(Word)),
      std::span<const Word>(reinterpret_cast<const Word*>(nmask_raw),
                            h.n_mask_bytes / sizeof(Word))};
  f.k_ = static_cast<int>(h.k);
  f.ref_fingerprint_ = h.ref_fingerprint;
  return f;
}

MappedIndexFile::MappedIndexFile(MappedIndexFile&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      k_(other.k_),
      format_version_(other.format_version_),
      ref_fingerprint_(other.ref_fingerprint_),
      reference_(std::move(other.reference_)),
      index_(std::move(other.index_)),
      encoding_(other.encoding_) {}

MappedIndexFile& MappedIndexFile::operator=(MappedIndexFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    k_ = other.k_;
    format_version_ = other.format_version_;
    ref_fingerprint_ = other.ref_fingerprint_;
    reference_ = std::move(other.reference_);
    index_ = std::move(other.index_);
    encoding_ = other.encoding_;
  }
  return *this;
}

MappedIndexFile::~MappedIndexFile() { Unmap(); }

void MappedIndexFile::Unmap() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
    map_bytes_ = 0;
  }
}

}  // namespace gkgpu
