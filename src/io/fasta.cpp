#include "io/fasta.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gkgpu {

std::vector<FastaRecord> ReadFasta(std::istream& in) {
  std::vector<FastaRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      records.push_back({line.substr(1), {}});
    } else if (line[0] == ';') {
      continue;  // comment line
    } else {
      if (records.empty()) {
        throw std::runtime_error("FASTA: sequence data before first header");
      }
      records.back().seq += line;
    }
  }
  return records;
}

std::vector<FastaRecord> ReadFastaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("FASTA: cannot open " + path);
  return ReadFasta(in);
}

void WriteFasta(std::ostream& out, const std::vector<FastaRecord>& records,
                int line_width) {
  for (const auto& r : records) {
    out << '>' << r.name << '\n';
    for (std::size_t i = 0; i < r.seq.size();
         i += static_cast<std::size_t>(line_width)) {
      out << r.seq.substr(i, static_cast<std::size_t>(line_width)) << '\n';
    }
  }
}

void WriteFastaFile(const std::string& path,
                    const std::vector<FastaRecord>& records, int line_width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("FASTA: cannot open " + path);
  WriteFasta(out, records, line_width);
}

}  // namespace gkgpu
