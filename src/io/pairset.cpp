#include "io/pairset.hpp"

#include <fstream>
#include <stdexcept>

namespace gkgpu {

void WritePairSet(std::ostream& out, const std::vector<SequencePair>& pairs) {
  out << "# gkgpu-pairset v1 pairs=" << pairs.size()
      << " length=" << (pairs.empty() ? 0 : pairs.front().read.size()) << '\n';
  for (const auto& p : pairs) {
    out << p.read << '\t' << p.ref << '\n';
  }
}

void WritePairSetFile(const std::string& path,
                      const std::vector<SequencePair>& pairs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("pairset: cannot open " + path);
  WritePairSet(out, pairs);
}

std::vector<SequencePair> ReadPairSet(std::istream& in) {
  std::vector<SequencePair> pairs;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      throw std::runtime_error("pairset: malformed line: " + line);
    }
    SequencePair p;
    p.read = line.substr(0, tab);
    p.ref = line.substr(tab + 1);
    if (p.read.size() != p.ref.size()) {
      throw std::runtime_error("pairset: length mismatch on line: " + line);
    }
    pairs.push_back(std::move(p));
  }
  return pairs;
}

std::vector<SequencePair> ReadPairSetFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("pairset: cannot open " + path);
  return ReadPairSet(in);
}

}  // namespace gkgpu
