// Persistence for candidate-pair data sets (the accuracy/throughput inputs)
// as tab-separated text: one "read<TAB>ref" line per pair, with a '#'
// header carrying the pair count and sequence length, so generated sets can
// be inspected, versioned and shared between benches.
#ifndef GKGPU_IO_PAIRSET_HPP
#define GKGPU_IO_PAIRSET_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/pairgen.hpp"

namespace gkgpu {

void WritePairSet(std::ostream& out, const std::vector<SequencePair>& pairs);
void WritePairSetFile(const std::string& path,
                      const std::vector<SequencePair>& pairs);

std::vector<SequencePair> ReadPairSet(std::istream& in);
std::vector<SequencePair> ReadPairSetFile(const std::string& path);

}  // namespace gkgpu

#endif  // GKGPU_IO_PAIRSET_HPP
