#include "io/reference.hpp"

#include <algorithm>
#include <stdexcept>

namespace gkgpu {

namespace {

std::string SequenceName(std::string_view header) {
  const std::size_t ws = header.find_first_of(" \t");
  return std::string(header.substr(0, ws));
}

}  // namespace

ReferenceSet::ReferenceSet(std::string name, std::string sequence) {
  if (name.empty()) name = "chr1";
  chromosomes_.push_back(
      {std::move(name), 0, static_cast<std::int64_t>(sequence.size())});
  text_ = std::move(sequence);
  if (chromosomes_.back().length == 0) {
    throw std::runtime_error("reference: empty sequence for " +
                             chromosomes_.back().name);
  }
  fingerprint_ = FingerprintText(text_);
}

ReferenceSet ReferenceSet::View(std::vector<ChromosomeInfo> chromosomes,
                                std::string_view text,
                                std::uint64_t fingerprint) {
  if (chromosomes.empty()) {
    throw std::invalid_argument("ReferenceSet::View: empty chromosome table");
  }
  std::int64_t cursor = 0;
  for (const ChromosomeInfo& c : chromosomes) {
    if (c.name.empty() || c.length <= 0 || c.offset != cursor) {
      throw std::invalid_argument(
          "ReferenceSet::View: chromosome table does not tile the text");
    }
    cursor += c.length;
  }
  if (cursor != static_cast<std::int64_t>(text.size())) {
    throw std::invalid_argument(
        "ReferenceSet::View: chromosome lengths sum to " +
        std::to_string(cursor) + " but the text holds " +
        std::to_string(text.size()) + " bases");
  }
  ReferenceSet set;
  set.view_ = text;
  set.chromosomes_ = std::move(chromosomes);
  set.fingerprint_ = fingerprint;
  return set;
}

void ReferenceSet::Add(std::string name, std::string_view sequence) {
  if (view_.data() != nullptr) {
    throw std::logic_error(
        "ReferenceSet: cannot Add() to a view over an mmap'd index");
  }
  if (name.empty()) {
    throw std::runtime_error("reference: chromosome with empty name");
  }
  if (sequence.empty()) {
    throw std::runtime_error("reference: empty sequence for " + name);
  }
  for (const ChromosomeInfo& c : chromosomes_) {
    if (c.name == name) {
      throw std::runtime_error("reference: duplicate chromosome name " + name);
    }
  }
  chromosomes_.push_back({std::move(name),
                          static_cast<std::int64_t>(text_.size()),
                          static_cast<std::int64_t>(sequence.size())});
  text_.append(sequence);
  // FNV is byte-sequential: continuing from the previous fingerprint
  // equals hashing the whole concatenation.
  fingerprint_ = FingerprintText(sequence, fingerprint_);
}

ReferenceSet ReferenceSet::FromFasta(const std::vector<FastaRecord>& records) {
  if (records.empty()) {
    throw std::runtime_error("reference: FASTA contains no sequences");
  }
  ReferenceSet set;
  for (const FastaRecord& r : records) {
    set.Add(SequenceName(r.name), r.seq);
  }
  return set;
}

ReferenceSet ReferenceSet::FromFastaFile(const std::string& path) {
  return FromFasta(ReadFastaFile(path));
}

int ReferenceSet::Locate(std::int64_t global_pos) const {
  if (global_pos < 0 || global_pos >= length()) return -1;
  // First chromosome starting after the position, then step back.
  const auto it = std::upper_bound(
      chromosomes_.begin(), chromosomes_.end(), global_pos,
      [](std::int64_t pos, const ChromosomeInfo& c) { return pos < c.offset; });
  return static_cast<int>(it - chromosomes_.begin()) - 1;
}

bool ReferenceSet::WindowWithinChromosome(std::int64_t global_pos,
                                          int len) const {
  if (len <= 0) return false;
  const int chrom = Locate(global_pos);
  if (chrom < 0) return false;
  const ChromosomeInfo& c = chromosomes_[static_cast<std::size_t>(chrom)];
  return global_pos + len <= c.offset + c.length;
}

}  // namespace gkgpu
