// Minimal FASTA reader/writer for reference genomes and read sets.
#ifndef GKGPU_IO_FASTA_HPP
#define GKGPU_IO_FASTA_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace gkgpu {

struct FastaRecord {
  std::string name;
  std::string seq;
};

/// Parses all records from a FASTA stream.  Throws std::runtime_error on a
/// malformed stream (sequence data before the first header).
std::vector<FastaRecord> ReadFasta(std::istream& in);
std::vector<FastaRecord> ReadFastaFile(const std::string& path);

void WriteFasta(std::ostream& out, const std::vector<FastaRecord>& records,
                int line_width = 70);
void WriteFastaFile(const std::string& path,
                    const std::vector<FastaRecord>& records,
                    int line_width = 70);

}  // namespace gkgpu

#endif  // GKGPU_IO_FASTA_HPP
