// Paired-end FASTQ input: R1/R2 mate pairs from two parallel files or one
// interleaved stream, with strict pairing validation — a truncated mate
// file or out-of-sync record names is a data-corruption signal and raises
// a clean error instead of silently mis-pairing reads.
#ifndef GKGPU_IO_PAIRED_FASTQ_HPP
#define GKGPU_IO_PAIRED_FASTQ_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "io/fastq.hpp"

namespace gkgpu {

class PairedFastqReader {
 public:
  /// Dual-file mode: record i of `r1` pairs with record i of `r2`.
  PairedFastqReader(std::istream& r1, std::istream& r2);

  /// Interleaved mode: records 2i and 2i+1 of one stream form pair i.
  explicit PairedFastqReader(std::istream& interleaved);

  /// Parses the next pair; false at a clean end of stream.  Throws
  /// std::runtime_error when one mate stream ends before the other
  /// (truncated mate file), when an interleaved stream holds an odd
  /// record count, or when the mates' names disagree.
  bool Next(FastqRecord* r1, FastqRecord* r2);

  std::uint64_t pairs_read() const { return pairs_; }

  /// The read name with any mate suffix ("/1", "/2", ".1", ".2") and
  /// description (first whitespace onward) removed.
  static std::string_view BaseName(std::string_view name);

  /// True when two mate names refer to the same template.
  static bool NamesMatch(std::string_view r1, std::string_view r2) {
    return BaseName(r1) == BaseName(r2);
  }

 private:
  FastqStreamReader first_;
  FastqStreamReader second_;   // aliases first_ in interleaved mode
  bool interleaved_ = false;
  std::uint64_t pairs_ = 0;
};

}  // namespace gkgpu

#endif  // GKGPU_IO_PAIRED_FASTQ_HPP
