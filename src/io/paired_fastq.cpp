#include "io/paired_fastq.hpp"

#include <stdexcept>

namespace gkgpu {

PairedFastqReader::PairedFastqReader(std::istream& r1, std::istream& r2)
    : first_(r1), second_(r2) {}

PairedFastqReader::PairedFastqReader(std::istream& interleaved)
    : first_(interleaved), second_(interleaved), interleaved_(true) {}

std::string_view PairedFastqReader::BaseName(std::string_view name) {
  const std::size_t ws = name.find_first_of(" \t");
  if (ws != std::string_view::npos) name = name.substr(0, ws);
  if (name.size() >= 2) {
    const char tag = name[name.size() - 1];
    const char sep = name[name.size() - 2];
    if ((tag == '1' || tag == '2') && (sep == '/' || sep == '.')) {
      name = name.substr(0, name.size() - 2);
    }
  }
  return name;
}

bool PairedFastqReader::Next(FastqRecord* r1, FastqRecord* r2) {
  const bool have1 = first_.Next(r1);
  if (!have1 && !interleaved_) {
    // R1 is done; R2 must be too, or the mate files are out of sync.
    FastqRecord extra;
    if (second_.Next(&extra)) {
      throw std::runtime_error(
          "paired FASTQ: R1 ended after " + std::to_string(pairs_) +
          " records but R2 continues with '" + extra.name +
          "' (truncated R1 / mate files out of sync)");
    }
    return false;
  }
  if (!have1) return false;  // interleaved stream cleanly exhausted
  if (!second_.Next(r2)) {
    throw std::runtime_error(
        interleaved_
            ? "paired FASTQ: interleaved stream holds an odd record count — "
              "read '" + r1->name + "' has no mate"
            : "paired FASTQ: R2 ended after " + std::to_string(pairs_) +
              " records but R1 continues with '" + r1->name +
              "' (truncated R2 / mate files out of sync)");
  }
  if (!NamesMatch(r1->name, r2->name)) {
    throw std::runtime_error("paired FASTQ: mate name mismatch at pair " +
                             std::to_string(pairs_) + ": '" + r1->name +
                             "' vs '" + r2->name + "'");
  }
  ++pairs_;
  return true;
}

}  // namespace gkgpu
