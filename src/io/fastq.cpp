#include "io/fastq.hpp"

#include <fstream>
#include <stdexcept>

namespace gkgpu {

bool FastqStreamReader::Next(FastqRecord* rec) {
  std::string header, seq, plus, qual;
  auto chomp = [](std::string& s) {
    if (!s.empty() && s.back() == '\r') s.pop_back();
  };
  while (std::getline(in_, header)) {
    chomp(header);
    if (header.empty()) continue;
    if (header[0] != '@') {
      throw std::runtime_error("FASTQ: expected '@' header, got: " + header);
    }
    if (!std::getline(in_, seq) || !std::getline(in_, plus) ||
        !std::getline(in_, qual)) {
      throw std::runtime_error("FASTQ: truncated record: " + header);
    }
    chomp(seq);
    chomp(plus);
    chomp(qual);
    if (plus.empty() || plus[0] != '+') {
      throw std::runtime_error("FASTQ: expected '+' separator: " + header);
    }
    if (seq.empty()) {
      throw std::runtime_error("FASTQ: empty sequence: " + header);
    }
    if (qual.size() != seq.size()) {
      throw std::runtime_error("FASTQ: quality length mismatch: " + header);
    }
    rec->name = header.substr(1);
    rec->seq = std::move(seq);
    rec->qual = std::move(qual);
    return true;
  }
  return false;
}

std::vector<FastqRecord> ReadFastq(std::istream& in) {
  std::vector<FastqRecord> records;
  FastqStreamReader reader(in);
  FastqRecord rec;
  while (reader.Next(&rec)) records.push_back(std::move(rec));
  return records;
}

std::vector<FastqRecord> ReadFastqFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("FASTQ: cannot open " + path);
  return ReadFastq(in);
}

void WriteFastq(std::ostream& out, const std::vector<FastqRecord>& records) {
  for (const auto& r : records) {
    out << '@' << r.name << '\n'
        << r.seq << '\n'
        << "+\n"
        << (r.qual.empty() ? std::string(r.seq.size(), 'I') : r.qual) << '\n';
  }
}

void WriteFastqFile(const std::string& path,
                    const std::vector<FastqRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("FASTQ: cannot open " + path);
  WriteFastq(out, records);
}

}  // namespace gkgpu
