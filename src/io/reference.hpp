// Multi-chromosome reference: named sequences concatenated into one
// addressable text, the way short-read mappers index a genome.  Seeding and
// filtration work in global (concatenated) coordinates — one k-mer index,
// one 2-bit encoded reference per device — while the chromosome table maps
// any global offset back to (chromosome, local position) for SAM output
// and rejects candidate windows that would span a chromosome junction.
#ifndef GKGPU_IO_REFERENCE_HPP
#define GKGPU_IO_REFERENCE_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "io/fasta.hpp"
#include "util/fingerprint.hpp"

namespace gkgpu {

struct ChromosomeInfo {
  std::string name;
  std::int64_t offset = 0;  // start in the concatenated text
  std::int64_t length = 0;
};

class ReferenceSet {
 public:
  ReferenceSet() = default;

  /// One-chromosome reference (the legacy single-genome workloads).
  ReferenceSet(std::string name, std::string sequence);

  /// Builds the set from FASTA records in file order.  Names are truncated
  /// at the first whitespace (the FASTA description field is not part of
  /// the sequence name).  Throws on an empty record set, an empty or
  /// duplicate name, or an empty sequence.
  static ReferenceSet FromFasta(const std::vector<FastaRecord>& records);
  static ReferenceSet FromFastaFile(const std::string& path);

  /// Non-owning view over externally owned text (an mmap'd index file,
  /// which must outlive the view).  `chromosomes` must tile `text` exactly
  /// in offset order; throws std::invalid_argument otherwise.  `fingerprint`
  /// is trusted (the index loader validates it against the file header).
  static ReferenceSet View(std::vector<ChromosomeInfo> chromosomes,
                           std::string_view text, std::uint64_t fingerprint);

  /// Appends a chromosome; same validation as FromFasta.  Throws
  /// std::logic_error on a View() instance (its text is immutable).
  void Add(std::string name, std::string_view sequence);

  /// The concatenated text (what the k-mer index and the engine's encoded
  /// reference are built over).  For View() instances this aliases the
  /// external storage; otherwise it views the owned string.
  std::string_view text() const {
    return view_.data() != nullptr ? view_ : std::string_view(text_);
  }
  std::int64_t length() const {
    return static_cast<std::int64_t>(text().size());
  }
  /// FingerprintText(text()), maintained incrementally across Add() calls;
  /// lets candidate-mode pipelines check reference identity against
  /// GateKeeperGpuEngine::reference_fingerprint() without rescanning the
  /// genome.
  std::uint64_t fingerprint() const { return fingerprint_; }

  bool empty() const { return chromosomes_.empty(); }
  std::size_t chromosome_count() const { return chromosomes_.size(); }
  const ChromosomeInfo& chromosome(std::size_t i) const {
    return chromosomes_[i];
  }
  const std::vector<ChromosomeInfo>& chromosomes() const {
    return chromosomes_;
  }

  /// Index of the chromosome containing the global position; -1 when out of
  /// range.
  int Locate(std::int64_t global_pos) const;

  /// True when [global_pos, global_pos + len) lies entirely inside one
  /// chromosome — candidate windows crossing a junction are chimeric and
  /// must be dropped at seeding time.
  bool WindowWithinChromosome(std::int64_t global_pos, int len) const;

  /// Global -> chromosome-local position (caller guarantees `chrom` is the
  /// chromosome returned by Locate).
  std::int64_t ToLocal(int chrom, std::int64_t global_pos) const {
    return global_pos - chromosomes_[static_cast<std::size_t>(chrom)].offset;
  }

 private:
  std::string text_;  // owned storage (empty in views)
  // Set only in view mode; never points at text_ (a self-referential view
  // would dangle across moves under SSO).
  std::string_view view_;
  std::vector<ChromosomeInfo> chromosomes_;
  std::uint64_t fingerprint_ = kFingerprintSeed;
};

}  // namespace gkgpu

#endif  // GKGPU_IO_REFERENCE_HPP
