// Minimal FASTQ reader/writer for simulated read sets.
#ifndef GKGPU_IO_FASTQ_HPP
#define GKGPU_IO_FASTQ_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace gkgpu {

struct FastqRecord {
  std::string name;
  std::string seq;
  std::string qual;  // same length as seq
};

std::vector<FastqRecord> ReadFastq(std::istream& in);
std::vector<FastqRecord> ReadFastqFile(const std::string& path);

void WriteFastq(std::ostream& out, const std::vector<FastqRecord>& records);
void WriteFastqFile(const std::string& path,
                    const std::vector<FastqRecord>& records);

}  // namespace gkgpu

#endif  // GKGPU_IO_FASTQ_HPP
