// Minimal FASTQ reader/writer for simulated read sets.
#ifndef GKGPU_IO_FASTQ_HPP
#define GKGPU_IO_FASTQ_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace gkgpu {

struct FastqRecord {
  std::string name;
  std::string seq;
  std::string qual;  // same length as seq
};

/// Incremental FASTQ parser for the streaming pipeline: pulls one record
/// or one bounded chunk at a time, so a read set never has to be resident
/// in memory all at once.  The whole-file readers below are built on it.
class FastqStreamReader {
 public:
  explicit FastqStreamReader(std::istream& in) : in_(in) {}

  /// Parses the next record into *rec; false at end of stream.  Throws on
  /// malformed input (same diagnostics as ReadFastq).
  bool Next(FastqRecord* rec);

 private:
  std::istream& in_;
};

std::vector<FastqRecord> ReadFastq(std::istream& in);
std::vector<FastqRecord> ReadFastqFile(const std::string& path);

void WriteFastq(std::ostream& out, const std::vector<FastqRecord>& records);
void WriteFastqFile(const std::string& path,
                    const std::vector<FastqRecord>& records);

}  // namespace gkgpu

#endif  // GKGPU_IO_FASTQ_HPP
