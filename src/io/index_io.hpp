// Persistent on-disk index ("GKGPUIDX"): one file holding everything a
// mapper needs at startup — the per-shard k-mer CSR indexes, the 2-bit
// encoded reference with its N-mask, the raw reference text, and the
// chromosome table.  `gkgpu index` writes it once; every later `map`/
// `pipeline`/`serve` invocation mmaps it and is ready in microseconds,
// with the page cache sharing the hot arrays across processes.
//
// Format version 2 (current): a fixed little-endian header (magic,
// version, k, seed mode, winnowing window, sizes, fingerprints, section
// geometry, checksums) followed by 8-byte-aligned sections — chromosome
// table, reference text, encoded reference, N-mask, one CSR
// (offsets + positions) per shard, the shard table, and a per-section
// checksum table.  Each shard's CSR is independently mmap-able: its
// geometry lives in its 64-byte shard-table entry, so a future reader
// could fault in only the shards it queries.  Version 1 files (single
// shard, dense seeds, whole-payload checksum only) still load; the
// reader presents them as a one-shard SeedIndex.
//
// Loading never copies the big arrays — the SeedIndex and ReferenceSet
// come back in view mode, spanning straight into the mapping.
// Validation is layered: the header (magic, version range, section
// geometry, header checksum, fingerprint consistency) is always checked;
// the checksums over the payload are opt-in (IndexLoadOptions) because
// hashing gigabytes would forfeit the instant-load property.  On v2
// files the opt-in check verifies each section independently and names
// the corrupt one.
#ifndef GKGPU_IO_INDEX_IO_HPP
#define GKGPU_IO_INDEX_IO_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "encode/encoded.hpp"
#include "io/reference.hpp"
#include "mapper/seed_index.hpp"

namespace gkgpu {

inline constexpr char kIndexMagic[8] = {'G', 'K', 'G', 'P',
                                        'U', 'I', 'D', 'X'};
inline constexpr std::uint32_t kIndexFormatVersion = 2;
/// Oldest format version the reader still accepts (v1: single-shard,
/// dense-only).  Version-skew errors report this range.
inline constexpr std::uint32_t kIndexMinSupportedVersion = 1;

/// Writes a version-2 index file from an already-built sharded index.
/// Returns the number of bytes written; throws std::runtime_error on I/O
/// failure.
std::uint64_t WriteIndexFile(const std::string& path, const ReferenceSet& ref,
                             const SeedIndex& index,
                             const ReferenceEncoding& encoding);

/// Legacy version-1 writer (single-shard, dense seeds).  Kept so the
/// v1 -> v2 back-compat read path stays testable without checked-in
/// binary fixtures.
std::uint64_t WriteIndexFileV1(const std::string& path,
                               const ReferenceSet& ref,
                               const KmerIndex& index,
                               const ReferenceEncoding& encoding);

/// Convenience: build the sharded index + encoding from `ref` and write
/// in one step.
std::uint64_t BuildAndWriteIndexFile(const std::string& path,
                                     const ReferenceSet& ref,
                                     const SeedConfig& config);
/// Dense single-budget shorthand (k only), the pre-sharding signature.
std::uint64_t BuildAndWriteIndexFile(const std::string& path,
                                     const ReferenceSet& ref, int k);

struct IndexLoadOptions {
  /// Hash the payload and compare against the stored checksums.  On v2
  /// files each section is verified independently and a mismatch names
  /// the corrupt section; v1 files only carry a whole-payload checksum.
  /// Costs a full scan of the file, so the default trusts the header
  /// checks.
  bool verify_checksum = false;
};

/// An open, validated, mmap'd index file.  The accessors return views into
/// the mapping — the MappedIndexFile must outlive every ReferenceSet /
/// SeedIndex / encoding view handed out.  Movable, not copyable; the
/// destructor unmaps.
class MappedIndexFile {
 public:
  /// Opens + validates; throws std::runtime_error with a diagnosis of
  /// exactly what is wrong (bad magic, version skew with the supported
  /// range, truncation, checksum or fingerprint mismatch) rather than
  /// producing silent garbage.
  static MappedIndexFile Open(const std::string& path,
                              const IndexLoadOptions& options = {});

  MappedIndexFile(MappedIndexFile&&) noexcept;
  MappedIndexFile& operator=(MappedIndexFile&&) noexcept;
  MappedIndexFile(const MappedIndexFile&) = delete;
  MappedIndexFile& operator=(const MappedIndexFile&) = delete;
  ~MappedIndexFile();

  int k() const { return k_; }
  std::uint32_t format_version() const { return format_version_; }
  std::uint64_t reference_fingerprint() const { return ref_fingerprint_; }
  std::uint64_t file_bytes() const { return map_bytes_; }
  SeedMode seed_mode() const { return index_.mode(); }
  int minimizer_w() const { return index_.minimizer_w(); }
  std::size_t shard_count() const { return index_.shard_count(); }

  /// View-mode reference over the mapped text + parsed chromosome table.
  const ReferenceSet& reference() const { return reference_; }
  /// View-mode sharded index spanning the mapped CSR arrays (one shard
  /// for v1 files).
  const SeedIndex& seed_index() const { return index_; }
  /// Spans over the persisted 2-bit encoding — feed straight to
  /// GateKeeperGpuEngine::LoadReference to skip host re-encoding.
  const ReferenceEncodingView& encoding() const { return encoding_; }

 private:
  MappedIndexFile() = default;
  void Unmap() noexcept;

  void* map_ = nullptr;
  std::uint64_t map_bytes_ = 0;
  int k_ = 0;
  std::uint32_t format_version_ = 0;
  std::uint64_t ref_fingerprint_ = 0;
  ReferenceSet reference_;
  SeedIndex index_;  // view mode, set in Open
  ReferenceEncodingView encoding_;
};

}  // namespace gkgpu

#endif  // GKGPU_IO_INDEX_IO_HPP
