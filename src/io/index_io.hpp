// Persistent on-disk index ("GKGPUIDX"): one file holding everything a
// mapper needs at startup — the k-mer CSR index, the 2-bit encoded
// reference with its N-mask, the raw reference text, and the chromosome
// table.  `gkgpu index` writes it once; every later `map`/`pipeline`/
// `serve` invocation mmaps it and is ready in microseconds, with the page
// cache sharing the hot arrays across processes.
//
// Layout: a fixed little-endian header (magic, format version, k, sizes,
// fingerprints, per-section offset/size table, checksums) followed by
// 8-byte-aligned sections.  Loading never copies the big arrays — the
// KmerIndex and ReferenceSet come back in view mode, spanning straight
// into the mapping.  Validation is layered: the header (magic, version,
// section geometry, header checksum, fingerprint consistency) is always
// checked; the full payload checksum is opt-in (IndexLoadOptions) because
// hashing gigabytes would forfeit the instant-load property.
#ifndef GKGPU_IO_INDEX_IO_HPP
#define GKGPU_IO_INDEX_IO_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "encode/encoded.hpp"
#include "io/reference.hpp"
#include "mapper/index.hpp"

namespace gkgpu {

inline constexpr char kIndexMagic[8] = {'G', 'K', 'G', 'P',
                                        'U', 'I', 'D', 'X'};
inline constexpr std::uint32_t kIndexFormatVersion = 1;

/// Builds the three persisted artifacts from a reference and writes the
/// index file.  `k` is the seed length the CSR index is built with.
/// Returns the number of bytes written; throws std::runtime_error on I/O
/// failure.
std::uint64_t WriteIndexFile(const std::string& path, const ReferenceSet& ref,
                             const KmerIndex& index,
                             const ReferenceEncoding& encoding);

/// Convenience: build index + encoding from `ref` and write in one step.
std::uint64_t BuildAndWriteIndexFile(const std::string& path,
                                     const ReferenceSet& ref, int k);

struct IndexLoadOptions {
  /// Hash the whole payload and compare against the stored checksum.
  /// Catches bit rot and truncation-past-the-header; costs a full scan of
  /// the file, so the default trusts the header checks.
  bool verify_checksum = false;
};

/// An open, validated, mmap'd index file.  The accessors return views into
/// the mapping — the MappedIndexFile must outlive every ReferenceSet /
/// KmerIndex / encoding view handed out.  Movable, not copyable; the
/// destructor unmaps.
class MappedIndexFile {
 public:
  /// Opens + validates; throws std::runtime_error with a diagnosis of
  /// exactly what is wrong (bad magic, version skew, truncation, checksum
  /// or fingerprint mismatch) rather than producing silent garbage.
  static MappedIndexFile Open(const std::string& path,
                              const IndexLoadOptions& options = {});

  MappedIndexFile(MappedIndexFile&&) noexcept;
  MappedIndexFile& operator=(MappedIndexFile&&) noexcept;
  MappedIndexFile(const MappedIndexFile&) = delete;
  MappedIndexFile& operator=(const MappedIndexFile&) = delete;
  ~MappedIndexFile();

  int k() const { return k_; }
  std::uint64_t reference_fingerprint() const { return ref_fingerprint_; }
  std::uint64_t file_bytes() const { return map_bytes_; }

  /// View-mode reference over the mapped text + parsed chromosome table.
  const ReferenceSet& reference() const { return reference_; }
  /// View-mode CSR index spanning the mapped offset/position arrays.
  const KmerIndex& index() const { return index_; }
  /// Spans over the persisted 2-bit encoding — feed straight to
  /// GateKeeperGpuEngine::LoadReference to skip host re-encoding.
  const ReferenceEncodingView& encoding() const { return encoding_; }

 private:
  MappedIndexFile() = default;
  void Unmap() noexcept;

  void* map_ = nullptr;
  std::uint64_t map_bytes_ = 0;
  int k_ = 0;
  std::uint64_t ref_fingerprint_ = 0;
  ReferenceSet reference_;
  KmerIndex index_;  // view mode, set in Open
  ReferenceEncodingView encoding_;
};

}  // namespace gkgpu

#endif  // GKGPU_IO_INDEX_IO_HPP
