// MAGNET (Alser et al. 2017): pre-alignment filtering by divide-and-conquer
// extraction of the e+1 longest non-overlapping zero streaks across the
// neighborhood masks.  Positions not covered by an extracted streak
// (including the single divider column consumed on each side of a streak)
// are counted as edits.  More accurate than GateKeeper/SHD but can produce
// occasional false rejects, which the paper calls out in Sec. 5.1.2.
#ifndef GKGPU_FILTERS_MAGNET_HPP
#define GKGPU_FILTERS_MAGNET_HPP

#include "filters/filter.hpp"

namespace gkgpu {

class MagnetFilter : public PreAlignmentFilter {
 public:
  std::string_view name() const override { return "MAGNET"; }
  bool lossless() const override { return false; }  // Sec. 5.1.2 FRs
  FilterResult Filter(std::string_view read, std::string_view ref,
                      int e) const override;
};

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_MAGNET_HPP
