// GateKeeper as a host-side pre-alignment filter.
//
//  * GateKeeperFilter(kImproved)  — the GateKeeper-GPU algorithm run on the
//    CPU; also the engine's reference semantics (the simulated device kernel
//    must agree bit-for-bit).
//  * GateKeeperFilter(kOriginal)  — the original GateKeeper/FPGA algorithm
//    without the leading/trailing fix, used as the accuracy baseline
//    ("GateKeeper-FPGA" in the paper's comparison figures).
//  * GateKeeperCpu                — the multicore batch runner used by the
//    throughput benches ("GateKeeper-CPU", 1..N cores).
#ifndef GKGPU_FILTERS_GATEKEEPER_HPP
#define GKGPU_FILTERS_GATEKEEPER_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "filters/filter.hpp"
#include "filters/gatekeeper_core.hpp"

namespace gkgpu {

class ThreadPool;
struct EncodedBatch;

class GateKeeperFilter : public PreAlignmentFilter {
 public:
  explicit GateKeeperFilter(GateKeeperParams params = {}) : params_(params) {}

  std::string_view name() const override {
    return params_.mode == GateKeeperMode::kImproved ? "GateKeeper-GPU"
                                                     : "GateKeeper-FPGA";
  }

  /// String-level entry point.  Pairs containing 'N' bypass filtration and
  /// are accepted outright (GateKeeper-GPU Sec. 3.3 design choice).
  FilterResult Filter(std::string_view read, std::string_view ref,
                      int e) const override;

  /// Encoded-domain entry point used by batch runners.
  FilterResult FilterEncoded(const Word* read_enc, const Word* ref_enc,
                             int length, int e) const {
    return GateKeeperFiltration(read_enc, ref_enc, length, e, params_);
  }

  const GateKeeperParams& params() const { return params_; }

 private:
  GateKeeperParams params_;
};

/// Multicore batched GateKeeper: the "GateKeeper-CPU" baseline.  Reads and
/// candidate segments arrive pre-encoded (fixed stride); results land in a
/// caller-provided buffer, one byte accept flag + estimated edits.
class GateKeeperCpu {
 public:
  GateKeeperCpu(GateKeeperParams params, unsigned threads);
  ~GateKeeperCpu();

  struct PairView {
    const Word* read;
    const Word* ref;
    std::uint8_t bypass;  // undefined ('N') pair: auto-accept
  };

  /// Filters pairs[i] for i in [0, n); results[i] = {accept, edits}.
  void FilterBatch(const PairView* pairs, std::size_t n, int length, int e,
                   FilterResult* results) const;

  unsigned threads() const;

 private:
  GateKeeperParams params_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_GATEKEEPER_HPP
