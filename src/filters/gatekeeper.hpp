// GateKeeper as a host-side pre-alignment filter.
//
//  * GateKeeperFilter(kImproved)  — the GateKeeper-GPU algorithm run on the
//    CPU; also the engine's reference semantics (the simulated device kernel
//    must agree bit-for-bit).
//  * GateKeeperFilter(kOriginal)  — the original GateKeeper/FPGA algorithm
//    without the leading/trailing fix, used as the accuracy baseline
//    ("GateKeeper-FPGA" in the paper's comparison figures).
//  * GateKeeperCpu                — the multicore batch runner used by the
//    throughput benches ("GateKeeper-CPU", 1..N cores).
#ifndef GKGPU_FILTERS_GATEKEEPER_HPP
#define GKGPU_FILTERS_GATEKEEPER_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "filters/filter.hpp"
#include "filters/gatekeeper_core.hpp"

namespace gkgpu {

class ThreadPool;
struct EncodedBatch;

class GateKeeperFilter : public PreAlignmentFilter {
 public:
  explicit GateKeeperFilter(GateKeeperParams params = {}) : params_(params) {}

  std::string_view name() const override {
    return params_.mode == GateKeeperMode::kImproved ? "GateKeeper-GPU"
                                                     : "GateKeeper-FPGA";
  }

  /// String-level reference entry point.  Pairs containing 'N' bypass
  /// filtration and are accepted outright (GateKeeper-GPU Sec. 3.3 design
  /// choice).
  FilterResult Filter(std::string_view read, std::string_view ref,
                      int e) const override;

  /// Batch entry point: the vectorized encoded-domain pipeline
  /// (simd/gatekeeper_batch.hpp — uint64_t lanes, AVX2 behind runtime
  /// dispatch), bit-identical to Filter() per pair.
  void FilterBatchImpl(const PairBlock& block, int e,
                   PairResult* results) const override;

  /// Encoded-domain entry point used by batch runners.
  FilterResult FilterEncoded(const Word* read_enc, const Word* ref_enc,
                             int length, int e) const {
    return GateKeeperFiltration(read_enc, ref_enc, length, e, params_);
  }

  const GateKeeperParams& params() const { return params_; }

 private:
  GateKeeperParams params_;
};

/// Multicore batched GateKeeper: the "GateKeeper-CPU" baseline.  Work
/// arrives as a PairBlock and is sharded across the pool, each shard
/// running the runtime-dispatched batch kernel; results land in a
/// caller-provided PairResult buffer, exactly like a device kernel's.
class GateKeeperCpu {
 public:
  GateKeeperCpu(GateKeeperParams params, unsigned threads);
  ~GateKeeperCpu();

  /// Filters every pair of `block` with threshold `e` into
  /// results[0..block.size).
  void FilterBlock(const PairBlock& block, int e, PairResult* results) const;

  unsigned threads() const;

 private:
  GateKeeperParams params_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_GATEKEEPER_HPP
