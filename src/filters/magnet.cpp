#include "filters/magnet.hpp"

#include <cassert>
#include <queue>

#include "filters/neighborhood.hpp"

namespace gkgpu {

namespace {

struct Candidate {
  int run_len;
  int run_start;
  int lo;  // interval the run was found in
  int hi;
  bool operator<(const Candidate& o) const { return run_len < o.run_len; }
};

// Longest zero run across every diagonal within [lo, hi].
Candidate FindLongest(const NeighborhoodMap& map, int lo, int hi) {
  Candidate best{0, lo, lo, hi};
  for (int d = -map.e(); d <= map.e(); ++d) {
    int start = lo;
    const int len = map.LongestZeroRun(d, lo, hi, &start);
    if (len > best.run_len) {
      best.run_len = len;
      best.run_start = start;
    }
  }
  return best;
}

}  // namespace

FilterResult MagnetFilter::Filter(std::string_view read, std::string_view ref,
                                  int e) const {
  assert(read.size() == ref.size());
  const int length = static_cast<int>(read.size());
  NeighborhoodMap map;
  map.Build(read, ref, e);

  // Greedy global extraction: repeatedly take the longest remaining zero
  // streak (max-heap over live intervals), burn one divider column on each
  // side, and recurse into the leftover sub-intervals.  At most e+1
  // extractions, as in the MAGNET paper.
  std::priority_queue<Candidate> heap;
  {
    const Candidate c = FindLongest(map, 0, length - 1);
    if (c.run_len > 0) heap.push(c);
  }
  int covered = 0;
  int extractions = 0;
  while (!heap.empty() && extractions < e + 1) {
    const Candidate c = heap.top();
    heap.pop();
    covered += c.run_len;
    ++extractions;
    const int left_hi = c.run_start - 2;   // -1 is the divider column
    const int right_lo = c.run_start + c.run_len + 1;
    if (left_hi >= c.lo) {
      const Candidate l = FindLongest(map, c.lo, left_hi);
      if (l.run_len > 0) heap.push(l);
    }
    if (right_lo <= c.hi) {
      const Candidate r = FindLongest(map, right_lo, c.hi);
      if (r.run_len > 0) heap.push(r);
    }
  }
  const int edits = length - covered;
  return {edits <= e, edits};
}

}  // namespace gkgpu
