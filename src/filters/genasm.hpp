// GenASM-style pre-alignment filter (Senol Cali et al., MICRO 2020): an
// approximate string matching engine built on the Bitap / Wu-Manber
// shift-and algorithm modified for edit distance.  The paper's related-work
// section positions GenASM as the accuracy ceiling among hardware filters
// ("provides a 3.7x speedup over Shouji while improving the accuracy");
// algorithmically the bit-parallel NFA computes the threshold decision
// exactly, so this filter has zero false accepts and zero false rejects —
// the property the extended comparison bench demonstrates.
//
// Implemented as a multi-word global-alignment Bitap: e+1 state vectors
// R[0..e], R[d] bit i set iff edit(pattern[0..i], text[0..j]) <= d, with
// substitution / insertion / deletion transitions and empty-prefix carry
// bits for global (NW) semantics.
#ifndef GKGPU_FILTERS_GENASM_HPP
#define GKGPU_FILTERS_GENASM_HPP

#include "filters/filter.hpp"

namespace gkgpu {

class GenAsmFilter : public PreAlignmentFilter {
 public:
  std::string_view name() const override { return "GenASM"; }
  FilterResult Filter(std::string_view read, std::string_view ref,
                      int e) const override;
};

/// The underlying exact threshold test: edit(pattern, text) <= e, computed
/// with the bit-parallel Bitap NFA.  Exposed for tests and reuse.
bool BitapWithinEditDistance(std::string_view pattern, std::string_view text,
                             int e);

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_GENASM_HPP
