#include "filters/shouji.hpp"

#include <bit>
#include <cassert>

#include "filters/neighborhood.hpp"

namespace gkgpu {

namespace {

constexpr int kWindow = 4;

/// The sliding-window common-subsequence assembly over a built
/// neighborhood map — shared by the per-pair reference path (character
/// map) and the batch path (bit-parallel encoded map), so the two differ
/// only in how the diagonals were produced.
FilterResult ShoujiWalk(const NeighborhoodMap& map, int length, int e) {
  // Shouji bit-vector: starts all-mismatch; each sliding window stores the
  // best (fewest mismatches) diagonal segment it found, but only if doing
  // so strictly reduces the number of mismatches in that span of the
  // vector (the Shouji paper's Algorithm 1 update rule).
  const int mask_words = MaskWords(length);
  Word common[kMaxMaskWords];
  for (int i = 0; i < mask_words; ++i) common[i] = ~Word{0};
  ZeroTailBits(common, mask_words, length);
  SetBitRange(common, 0, length);

  auto window_bits = [&](const Word* row, int j, int w) {
    unsigned bits = 0;
    for (int t = 0; t < w; ++t) {
      bits = (bits << 1) | GetMaskBit(row, j + t);
    }
    return bits;
  };

  for (int j = 0; j < length; ++j) {
    const int w = j + kWindow <= length ? kWindow : length - j;
    unsigned best = (1u << w) - 1u;
    int best_ones = w + 1;
    for (int d = -e; d <= e; ++d) {
      const unsigned bits = window_bits(map.Diagonal(d), j, w);
      const int ones = std::popcount(bits);
      if (ones < best_ones) {
        best_ones = ones;
        best = bits;
      }
    }
    const unsigned cur = window_bits(common, j, w);
    if (best_ones < std::popcount(cur)) {
      for (int t = 0; t < w; ++t) {
        const int p = j + t;
        const Word bit = Word{1u} << (kWordBits - 1 - p % kWordBits);
        if ((best & (1u << (w - 1 - t))) == 0) {
          common[p / kWordBits] &= ~bit;
        } else {
          common[p / kWordBits] |= bit;
        }
      }
    }
  }

  const int edits = PopcountWords(common, mask_words);
  return {edits <= e, edits};
}

}  // namespace

FilterResult ShoujiFilter::Filter(std::string_view read, std::string_view ref,
                                  int e) const {
  assert(read.size() == ref.size());
  const int length = static_cast<int>(read.size());
  NeighborhoodMap map;
  map.Build(read, ref, e);
  return ShoujiWalk(map, length, e);
}

void ShoujiFilter::FilterBatchImpl(const PairBlock& block, int e,
                               PairResult* results) const {
  // Batch path: the neighborhood map builds bit-parallel from the encoded
  // pair (one shifted XOR + reduction per diagonal, multi-word lanes)
  // instead of per character — the map construction is where the scalar
  // path burns its time; the window walk is shared above.
  Word read_scratch[kMaxEncodedWords];
  Word ref_scratch[kMaxEncodedWords];
  NeighborhoodMap map;
  for (std::size_t i = 0; i < block.size; ++i) {
    const BlockPairView p = LoadBlockPair(block, i, read_scratch, ref_scratch);
    if (p.bypass) {
      results[i] = BypassedPairResult();
      continue;
    }
    map.BuildEncoded(p.read, p.ref, block.length, e);
    results[i] = MakePairResult(ShoujiWalk(map, block.length, e), false);
  }
}

}  // namespace gkgpu
