#include "filters/pair_block.hpp"

#include <cassert>

namespace gkgpu {

void PairBlockStorage::Reset(int length) {
  assert(length > 0 && length <= kMaxReadLength);
  length_ = length;
  words_per_seq_ = EncodedWords(length);
  reads_.clear();
  refs_.clear();
  bypass_.clear();
  kill_.clear();
}

void PairBlockStorage::Add(std::string_view read, std::string_view ref,
                           bool mark_undefined) {
  assert(length_ > 0);
  assert(static_cast<int>(read.size()) == length_);
  assert(static_cast<int>(ref.size()) == length_);
  const std::size_t off = reads_.size();
  reads_.resize(off + static_cast<std::size_t>(words_per_seq_));
  refs_.resize(off + static_cast<std::size_t>(words_per_seq_));
  const bool read_n = EncodeSequence(read, reads_.data() + off);
  const bool ref_n = EncodeSequence(ref, refs_.data() + off);
  bypass_.push_back(mark_undefined && (read_n || ref_n) ? 1 : 0);
  if (!kill_.empty()) kill_.push_back(0);
}

void PairBlockStorage::MarkKilled(std::size_t i) {
  assert(i < bypass_.size());
  if (kill_.empty()) kill_.assign(bypass_.size(), 0);
  kill_[i] = 1;
}

PairBlock PairBlockStorage::view() const {
  PairBlock b;
  b.size = bypass_.size();
  b.length = length_;
  b.words_per_seq = words_per_seq_;
  b.reads_enc = reads_.data();
  b.refs_enc = refs_.data();
  b.bypass = bypass_.data();
  if (!kill_.empty()) b.kill = kill_.data();
  return b;
}

}  // namespace gkgpu
