#include "filters/sneakysnake.hpp"

#include <algorithm>
#include <cassert>

#include "filters/neighborhood.hpp"
#include "simd/snake_batch.hpp"

namespace gkgpu {

FilterResult SneakySnakeFilter::Filter(std::string_view read,
                                       std::string_view ref, int e) const {
  assert(read.size() == ref.size());
  const int length = static_cast<int>(read.size());
  NeighborhoodMap map;
  map.Build(read, ref, e);

  int pos = 0;
  int edits = 0;
  while (pos < length) {
    int best = 0;
    for (int d = -e; d <= e; ++d) {
      best = std::max(best, map.ZeroRunFrom(d, pos));
      if (pos + best >= length) break;
    }
    pos += best;
    if (pos >= length) break;
    ++edits;  // the snake hits an obstruction: one edit, skip the column
    ++pos;
    if (edits > e) return {false, edits};
  }
  return {edits <= e, edits};
}

void SneakySnakeFilter::FilterBatchImpl(const PairBlock& block, int e,
                                    PairResult* results) const {
  simd::SneakySnakeFilterRange(block, 0, block.size, e, results);
}

}  // namespace gkgpu
