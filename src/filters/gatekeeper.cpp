#include "filters/gatekeeper.hpp"

#include <cassert>
#include <memory>

#include "encode/encoded.hpp"
#include "simd/gatekeeper_batch.hpp"
#include "util/threadpool.hpp"

namespace gkgpu {

FilterResult GateKeeperFilter::Filter(std::string_view read,
                                      std::string_view ref, int e) const {
  assert(read.size() == ref.size());
  assert(static_cast<int>(read.size()) <= kMaxReadLength);
  Word read_enc[kMaxEncodedWords];
  Word ref_enc[kMaxEncodedWords];
  const bool read_n = EncodeSequence(read, read_enc);
  const bool ref_n = EncodeSequence(ref, ref_enc);
  if (params_.bypass_undefined && (read_n || ref_n)) {
    // Undefined pair: pass it straight to verification.
    return {true, 0};
  }
  return FilterEncoded(read_enc, ref_enc, static_cast<int>(read.size()), e);
}

void GateKeeperFilter::FilterBatchImpl(const PairBlock& block, int e,
                                   PairResult* results) const {
  simd::GateKeeperFilterRange(block, 0, block.size, e, params_, results);
}

GateKeeperCpu::GateKeeperCpu(GateKeeperParams params, unsigned threads)
    : params_(params),
      pool_(threads > 1 ? std::make_unique<ThreadPool>(threads, "gkgpu-gkcpu")
                        : nullptr) {}

GateKeeperCpu::~GateKeeperCpu() = default;

unsigned GateKeeperCpu::threads() const {
  return pool_ != nullptr ? pool_->size() : 1;
}

void GateKeeperCpu::FilterBlock(const PairBlock& block, int e,
                                PairResult* results) const {
  auto run = [&](std::size_t b, std::size_t end) {
    simd::GateKeeperFilterRange(block, b, end, e, params_, results);
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(0, block.size, 4096, run);
  } else {
    run(0, block.size);
  }
}

}  // namespace gkgpu
