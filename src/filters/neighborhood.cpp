#include "filters/neighborhood.hpp"

#include <bit>
#include <cassert>

namespace gkgpu {

void NeighborhoodMap::Build(std::string_view read, std::string_view ref,
                            int e) {
  assert(read.size() == ref.size());
  length_ = static_cast<int>(read.size());
  e_ = e;
  mask_words_ = MaskWords(length_);
  words_.assign(static_cast<std::size_t>(2 * e + 1) *
                    static_cast<std::size_t>(mask_words_),
                0);
  for (int d = -e; d <= e; ++d) {
    Word* row = words_.data() + static_cast<std::size_t>(d + e_) *
                                    static_cast<std::size_t>(mask_words_);
    for (int j = 0; j < length_; ++j) {
      const int rj = j + d;
      const bool mismatch =
          rj < 0 || rj >= length_ || read[static_cast<std::size_t>(j)] !=
                                         ref[static_cast<std::size_t>(rj)];
      if (mismatch) SetMaskBit(row, j);
    }
  }
}

int NeighborhoodMap::ZeroRunFrom(int d, int j) const {
  if (j >= length_) return 0;
  const Word* row = Diagonal(d);
  int pos = j;
  while (pos < length_) {
    const int word = pos / kWordBits;
    const int off = pos % kWordBits;
    const Word w = row[word] << off;  // first considered bit at the MSB
    if (w != 0) {
      const int lead = std::countl_zero(w);
      pos += lead;
      break;
    }
    pos += kWordBits - off;
  }
  if (pos > length_) pos = length_;
  return pos - j;
}

int NeighborhoodMap::LongestZeroRun(int d, int lo, int hi, int* start) const {
  if (lo < 0) lo = 0;
  if (hi >= length_) hi = length_ - 1;
  int best = 0;
  int best_start = lo;
  int j = lo;
  while (j <= hi) {
    int run = ZeroRunFrom(d, j);
    if (run == 0) {
      ++j;
      continue;
    }
    if (j + run - 1 > hi) run = hi - j + 1;
    if (run > best) {
      best = run;
      best_start = j;
    }
    j += run + 1;
  }
  if (start != nullptr) *start = best_start;
  return best;
}

}  // namespace gkgpu
