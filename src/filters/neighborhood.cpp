#include "filters/neighborhood.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace gkgpu {

void NeighborhoodMap::Build(std::string_view read, std::string_view ref,
                            int e) {
  assert(read.size() == ref.size());
  length_ = static_cast<int>(read.size());
  e_ = e;
  mask_words_ = MaskWords(length_);
  words_.assign(static_cast<std::size_t>(2 * e + 1) *
                    static_cast<std::size_t>(mask_words_),
                0);
  for (int d = -e; d <= e; ++d) {
    Word* row = words_.data() + static_cast<std::size_t>(d + e_) *
                                    static_cast<std::size_t>(mask_words_);
    for (int j = 0; j < length_; ++j) {
      const int rj = j + d;
      const bool mismatch =
          rj < 0 || rj >= length_ || read[static_cast<std::size_t>(j)] !=
                                         ref[static_cast<std::size_t>(rj)];
      if (mismatch) SetMaskBit(row, j);
    }
  }
}

void NeighborhoodMap::BuildEncoded(const Word* read_enc, const Word* ref_enc,
                                   int length, int e) {
  length_ = length;
  e_ = e;
  mask_words_ = MaskWords(length);
  words_.assign(static_cast<std::size_t>(2 * e + 1) *
                    static_cast<std::size_t>(mask_words_),
                0);
  const int enc_words = EncodedWords(length);
  Word shifted[kMaxEncodedWords];
  Word diff[kMaxEncodedWords];
  for (int d = -e; d <= e; ++d) {
    Word* row = words_.data() + static_cast<std::size_t>(d + e_) *
                                    static_cast<std::size_t>(mask_words_);
    // Column j of diagonal d compares read[j] with ref[j + d]: shift the
    // *reference* by d bases so the comparison lands on column j.
    const Word* rhs = ref_enc;
    if (d > 0) {
      ShiftToEarlier(ref_enc, shifted, enc_words, 2 * d);
      rhs = shifted;
    } else if (d < 0) {
      ShiftToLater(ref_enc, shifted, enc_words, -2 * d);
      rhs = shifted;
    }
    XorWords(read_enc, rhs, diff, enc_words);
    ReducePairsOr(diff, length, row);
    // Columns whose reference index falls outside [0, length) count as
    // mismatches — the shifted-in zero bits would otherwise compare as 'A'.
    if (d > 0) {
      SetBitRange(row, std::max(0, length - d), length);
    } else if (d < 0) {
      SetBitRange(row, 0, std::min(length, -d));
    }
  }
}

int NeighborhoodMap::ZeroRunFrom(int d, int j) const {
  if (j >= length_) return 0;
  const Word* row = Diagonal(d);
  int pos = j;
  while (pos < length_) {
    const int word = pos / kWordBits;
    const int off = pos % kWordBits;
    const Word w = row[word] << off;  // first considered bit at the MSB
    if (w != 0) {
      const int lead = std::countl_zero(w);
      pos += lead;
      break;
    }
    pos += kWordBits - off;
  }
  if (pos > length_) pos = length_;
  return pos - j;
}

int NeighborhoodMap::LongestZeroRun(int d, int lo, int hi, int* start) const {
  if (lo < 0) lo = 0;
  if (hi >= length_) hi = length_ - 1;
  int best = 0;
  int best_start = lo;
  int j = lo;
  while (j <= hi) {
    int run = ZeroRunFrom(d, j);
    if (run == 0) {
      ++j;
      continue;
    }
    if (j + run - 1 > hi) run = hi - j + 1;
    if (run > best) {
      best = run;
      best_start = j;
    }
    j += run + 1;
  }
  if (start != nullptr) *start = best_start;
  return best;
}

}  // namespace gkgpu
