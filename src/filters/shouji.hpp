// Shouji (Alser et al. 2019): builds a banded neighborhood map and slides a
// 4-column search window across it, keeping for every window the diagonal
// segment with the most matches; the surviving unmatched columns of the
// assembled common-subsequence vector estimate the edit count.
#ifndef GKGPU_FILTERS_SHOUJI_HPP
#define GKGPU_FILTERS_SHOUJI_HPP

#include "filters/filter.hpp"

namespace gkgpu {

class ShoujiFilter : public PreAlignmentFilter {
 public:
  std::string_view name() const override { return "Shouji"; }
  bool lossless() const override { return false; }  // window replacement FRs
  FilterResult Filter(std::string_view read, std::string_view ref,
                      int e) const override;
  /// Batch path: bit-parallel encoded neighborhood-map construction
  /// (NeighborhoodMap::BuildEncoded) + the same window walk as Filter().
  void FilterBatchImpl(const PairBlock& block, int e,
                   PairResult* results) const override;
};

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_SHOUJI_HPP
