// Scalar (obviously correct, slow) reference implementation of the
// GateKeeper filtration, used exclusively by the property tests to validate
// the bit-parallel core: masks built with per-character comparisons,
// amendment by explicit run scanning, counting by explicit transitions.
#ifndef GKGPU_FILTERS_SCALAR_REF_HPP
#define GKGPU_FILTERS_SCALAR_REF_HPP

#include <string_view>
#include <vector>

#include "filters/gatekeeper_core.hpp"

namespace gkgpu {

/// Per-base difference mask of `read` shifted by `shift` bases against
/// `ref`.  shift > 0 models a deletion (read moves toward later positions:
/// position p compares read[p - shift] vs ref[p]); shift < 0 an insertion.
/// Positions whose read index falls outside [0, L) compare the shifted-in
/// zero bits (base 'A' code) against the reference, exactly as the logical
/// shifts in the bit-parallel version do.
std::vector<int> ScalarMask(std::string_view read, std::string_view ref,
                            int shift);

/// 2-bit-domain difference mask (the original FPGA pipeline): 2L entries,
/// the actual XOR bits of the encoded base codes.
std::vector<int> ScalarMask2Bit(std::string_view read, std::string_view ref,
                                int shift);

/// Flips internal 0-runs of length <= 2 bounded by 1s on both sides.
void ScalarAmend(std::vector<int>& mask);

/// Number of maximal runs of 1s.
int ScalarCountRuns(const std::vector<int>& mask);

/// Full scalar GateKeeper filtration; must agree with GateKeeperFiltration
/// bit-for-bit in decisions and estimated edits.
FilterResult GateKeeperScalar(std::string_view read, std::string_view ref,
                              int e, const GateKeeperParams& params);

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_SCALAR_REF_HPP
