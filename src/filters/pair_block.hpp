// PairBlock: the batch-first, allocation-free unit of filtration work — a
// structure-of-arrays view of many (read, candidate-reference) pairs, the
// CPU mirror of the unified-memory layout the simulated device kernels
// consume (src/core/gatekeeper_kernel.hpp).  One block describes a whole
// kernel launch worth of pairs; per-pair virtual dispatch, per-pair
// string_view slicing and per-pair heap traffic all disappear behind it.
//
// A block comes in one of three shapes, matching the paper's input
// configurations:
//   * encoded    — host pre-encoded reads and refs, fixed stride, plus a
//                  per-pair bypass byte for undefined ('N') pairs;
//   * raw        — raw characters (the "encoding in device" design); the
//                  consumer encodes per pair in registers/scratch;
//   * candidates — a deduplicated encoded read table plus a
//                  (read_index, strand, ref_pos) candidate column against
//                  an encoded reference genome (the mrFAST integration of
//                  Sec. 3.5); consumers slice reference windows out of the
//                  genome and reorient reverse-strand reads in scratch.
//
// PairBlock is a non-owning view: the engine points it at unified-memory
// buffers, PairBlockStorage (below) owns host-side blocks for the batch
// filter API, tests and benches.
#ifndef GKGPU_FILTERS_PAIR_BLOCK_HPP
#define GKGPU_FILTERS_PAIR_BLOCK_HPP

#include <cstdint>
#include <string_view>
#include <vector>

#include "encode/encoded.hpp"
#include "encode/revcomp.hpp"
#include "util/bitops.hpp"

namespace gkgpu {

/// Result slot written back per pair: the filtering decision ('1' accept /
/// '0' reject) and the approximated edit distance (Sec. 3.5).  Undefined
/// ('N') pairs skip filtration and are accepted with the bypassed flag.
struct PairResult {
  std::uint8_t accept = 0;
  std::uint8_t bypassed = 0;  // undefined ('N') pair skipped filtration
  std::uint16_t edits = 0;
};

/// The per-pair decision of one filtration (decoupled from PairResult so
/// scalar reference code can stay result-buffer-agnostic).
struct FilterResult {
  bool accept = true;
  /// The filter's cheap approximation of the edit distance (GateKeeper-GPU
  /// writes this next to the accept bit in the result buffer).
  int estimated_edits = 0;
};

inline PairResult MakePairResult(const FilterResult& r, bool bypassed) {
  PairResult out;
  out.accept = r.accept ? 1 : 0;
  out.bypassed = bypassed ? 1 : 0;
  out.edits = static_cast<std::uint16_t>(
      r.estimated_edits < 0
          ? 0
          : (r.estimated_edits > 0xFFFF ? 0xFFFF : r.estimated_edits));
  return out;
}

/// The bypass-accept slot an undefined pair receives on every path.
inline PairResult BypassedPairResult() { return PairResult{1, 1, 0}; }

/// The slot an early-outed lane receives: not accepted, never filtered.
/// bypassed == 2 distinguishes "killed before filtration" (mate-aware
/// joint filtration: the partner mate's lanes all rejected, so this lane
/// can no longer complete a concordant combination) from the bypass-accept
/// of an undefined pair — downstream must treat the verdict as *unknown*,
/// not as a rejection.
inline PairResult EarlyOutPairResult() { return PairResult{0, 2, 0}; }

/// CandidatePair::flags bit: the lane is killed — consumers must write
/// EarlyOutPairResult() without touching the read or the reference.
inline constexpr std::uint8_t kCandidateLaneKilled = 1;

/// One candidate mapping: which read, where its candidate reference
/// segment starts on the genome, and which strand the read matches on.
/// strand 1 means the *reverse complement* of the read is compared against
/// the forward reference window — the strand bit travels through the
/// engine's candidate slots so consumers can reorient the encoded read in
/// scratch and filtration still slices windows from the encoded reference
/// with no per-candidate strings anywhere.  `flags` rides in what used to
/// be padding (sizeof stays 16), so kill bits flow through the unified
/// candidate buffers with zero layout change.
struct CandidatePair {
  std::uint32_t read_index = 0;
  std::uint8_t strand = 0;  // 0 = forward, 1 = reverse complement
  std::uint8_t flags = 0;   // kCandidateLaneKilled
  std::int64_t ref_pos = 0;
};

struct PairBlock {
  /// Pairs in the block.
  std::size_t size = 0;
  /// Bases per sequence (uniform across the block) and its encoded stride.
  int length = 0;
  int words_per_seq = 0;

  // --- Shape: encoded ----------------------------------------------------
  /// Encoded reads at stride words_per_seq: one row per pair (encoded /
  /// raw shapes) or one row per table entry (candidates shape).
  const Word* reads_enc = nullptr;
  /// Encoded reference segments, one row per pair (encoded shape only).
  const Word* refs_enc = nullptr;
  /// Undefined-pair flags: per pair (encoded shape) or per read-table
  /// entry (candidates shape).  Null = no undefined sequences.
  const std::uint8_t* bypass = nullptr;
  /// Per-pair kill flags (encoded / raw shapes; candidates carry theirs in
  /// CandidatePair::flags).  Non-zero = the lane is early-outed: consumers
  /// write EarlyOutPairResult() and never look at the sequences.  Null =
  /// no killed lanes.
  const std::uint8_t* kill = nullptr;

  // --- Shape: raw --------------------------------------------------------
  const char* raw_reads = nullptr;  // size * length characters
  const char* raw_refs = nullptr;

  // --- Shape: candidates -------------------------------------------------
  const CandidatePair* candidates = nullptr;
  const Word* ref_words = nullptr;   // encoded genome
  const Word* ref_n_mask = nullptr;  // genome 'N' positions, 1 bit/base
  std::int64_t ref_len = 0;

  bool candidate_shape() const { return candidates != nullptr; }
  bool raw_shape() const { return raw_reads != nullptr; }
};

/// One pair materialized out of a block: encoded read/ref pointers (into
/// the block or into caller scratch) plus the undefined-pair flag.
struct BlockPairView {
  const Word* read = nullptr;
  const Word* ref = nullptr;
  bool bypass = false;
  /// Early-outed lane: read/ref are unspecified (possibly null); the only
  /// valid consumption is writing EarlyOutPairResult().
  bool killed = false;
};

/// Materializes pair `i` of `block` in the encoded domain, using
/// `read_scratch` / `ref_scratch` (kMaxEncodedWords each) only when the
/// shape requires it: raw pairs are encoded, candidate windows are sliced
/// from the encoded genome, reverse-strand reads are reoriented.  This is
/// exactly the per-thread preamble of the device kernels; batch consumers
/// call it per pair and run whatever mask pipeline they implement.
inline BlockPairView LoadBlockPair(const PairBlock& block, std::size_t i,
                                   Word* read_scratch, Word* ref_scratch) {
  BlockPairView v;
  if (block.candidate_shape()) {
    const CandidatePair c = block.candidates[i];
    if ((c.flags & kCandidateLaneKilled) != 0) {
      v.killed = true;
      return v;
    }
    v.bypass = (block.bypass != nullptr && block.bypass[c.read_index] != 0) ||
               RangeHasUnknownRaw(block.ref_n_mask, block.ref_len, c.ref_pos,
                                  block.length);
    ExtractSegmentRaw(block.ref_words, block.ref_len, c.ref_pos, block.length,
                      ref_scratch);
    v.ref = ref_scratch;
    const Word* read = block.reads_enc +
                       static_cast<std::size_t>(c.read_index) *
                           static_cast<std::size_t>(block.words_per_seq);
    if (c.strand != 0) {
      // Reverse-strand candidate: reorient the encoded read in scratch
      // (registers on a real GPU) — the read buffer itself stays forward,
      // so one bus crossing serves both strands.
      ReverseComplementEncoded(read, block.length, read_scratch);
      read = read_scratch;
    }
    v.read = read;
    return v;
  }
  if (block.kill != nullptr && block.kill[i] != 0) {
    v.killed = true;
    return v;
  }
  if (block.raw_shape()) {
    const std::size_t off = i * static_cast<std::size_t>(block.length);
    const bool read_n = EncodeSequence(
        std::string_view(block.raw_reads + off,
                         static_cast<std::size_t>(block.length)),
        read_scratch);
    const bool ref_n = EncodeSequence(
        std::string_view(block.raw_refs + off,
                         static_cast<std::size_t>(block.length)),
        ref_scratch);
    v.read = read_scratch;
    v.ref = ref_scratch;
    v.bypass = read_n || ref_n;
    return v;
  }
  const std::size_t off =
      i * static_cast<std::size_t>(block.words_per_seq);
  v.read = block.reads_enc + off;
  v.ref = block.refs_enc + off;
  v.bypass = block.bypass != nullptr && block.bypass[i] != 0;
  return v;
}

/// Owning host-side block builder: contiguous encoded reads/refs plus the
/// per-pair bypass column, appended pair by pair.  Used by the batch
/// filter API's callers (benches, tests, CPU baselines); the engine views
/// its unified-memory buffers directly instead.
class PairBlockStorage {
 public:
  PairBlockStorage() = default;
  explicit PairBlockStorage(int length) { Reset(length); }

  /// Clears the block and fixes the per-pair length.
  void Reset(int length);

  /// Appends one (read, ref) pair (both exactly `length` bases).  When
  /// `mark_undefined` is set, a pair containing any non-ACGT base gets its
  /// bypass bit — the GateKeeper-GPU Sec. 3.3 design choice; builders for
  /// the FPGA-style accuracy baselines pass false and such pairs filter on
  /// their 'A'-substituted encoding instead.
  void Add(std::string_view read, std::string_view ref,
           bool mark_undefined = true);

  /// Marks pair `i` as killed (early-outed): every filter writes
  /// EarlyOutPairResult() for it without reading the sequences.
  void MarkKilled(std::size_t i);

  std::size_t size() const { return bypass_.size(); }
  int length() const { return length_; }

  /// A view of the current contents; invalidated by Add/Reset/MarkKilled.
  PairBlock view() const;

 private:
  int length_ = 0;
  int words_per_seq_ = 0;
  std::vector<Word> reads_;
  std::vector<Word> refs_;
  std::vector<std::uint8_t> bypass_;
  std::vector<std::uint8_t> kill_;
};

/// Joint-filtration schedule over one candidate range laid out
/// [phase-A lanes..., phase-B lanes...): phase A (lanes [0, phase_a))
/// filters first; a phase-B lane is killed before its round when *all* of
/// its phase-A partner lanes came back rejected (accept == 0 &&
/// bypassed == 0) — by the lossless-filter contract the partner mate then
/// has no surviving placement that could complete a concordant
/// combination with this lane.  partner_off/partner_idx form a CSR over
/// the phase-B lanes: partners of B lane j (a *global* lane index,
/// phase_a <= j < lanes) are partner_idx[partner_off[j - phase_a] ..
/// partner_off[j - phase_a + 1]), each a phase-A lane index < phase_a.
struct JointFilterPlan {
  std::size_t phase_a = 0;
  std::vector<std::uint32_t> partner_off;
  std::vector<std::uint32_t> partner_idx;

  bool empty() const { return partner_off.empty(); }
  std::size_t phase_b() const {
    return partner_off.empty() ? 0 : partner_off.size() - 1;
  }
};

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_PAIR_BLOCK_HPP
