// SneakySnake (Alser et al. 2020): approximate string matching as a single
// net routing problem.  The snake greedily crosses the (2e+1) x L chip maze
// taking the longest available horizontal run of matches over all
// diagonals, consuming one column (an obstruction = one edit) whenever it
// must stop.  Accepts when the maze is crossed with at most e obstructions.
#ifndef GKGPU_FILTERS_SNEAKYSNAKE_HPP
#define GKGPU_FILTERS_SNEAKYSNAKE_HPP

#include "filters/filter.hpp"

namespace gkgpu {

class SneakySnakeFilter : public PreAlignmentFilter {
 public:
  std::string_view name() const override { return "SneakySnake"; }
  FilterResult Filter(std::string_view read, std::string_view ref,
                      int e) const override;
  /// Batch path: neighborhood mazes built bit-parallel from the encoded
  /// pairs on 64-bit words (AVX2 lane-parallel where dispatched), greedy
  /// traversal over the bitmap rows.  Bit-identical to Filter().
  void FilterBatchImpl(const PairBlock& block, int e,
                   PairResult* results) const override;
};

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_SNEAKYSNAKE_HPP
