// Shifted Hamming Distance (Xin et al. 2015): the bit-parallel,
// SIMD-friendly ancestor of GateKeeper.  Builds the same 2e+1 Hamming
// masks, speculatively removes short 0-streaks, ANDs, and counts — without
// the leading/trailing fix, so its accuracy matches the original
// GateKeeper, as the paper's comparison tables show (identical false-accept
// columns for GateKeeper-FPGA and SHD).
#ifndef GKGPU_FILTERS_SHD_HPP
#define GKGPU_FILTERS_SHD_HPP

#include "filters/filter.hpp"

namespace gkgpu {

class ShdFilter : public PreAlignmentFilter {
 public:
  std::string_view name() const override { return "SHD"; }
  FilterResult Filter(std::string_view read, std::string_view ref,
                      int e) const override;
  /// SHD is the SIMD formulation of this mask pipeline in the first
  /// place; the batch path runs the shared vectorized kOriginal kernel.
  void FilterBatchImpl(const PairBlock& block, int e,
                   PairResult* results) const override;
};

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_SHD_HPP
