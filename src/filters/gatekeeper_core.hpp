// The GateKeeper filtration core, shared verbatim by:
//   * GateKeeperFilter (the multicore CPU baseline, "GateKeeper-CPU"),
//   * the simulated device kernel in src/core/ ("GateKeeper-GPU"), and
//   * the original-algorithm mode ("GateKeeper-FPGA" accuracy baseline).
//
// Everything here is inline and allocation-free: a single filtration uses
// only fixed-size stack arrays, mirroring the CUDA kernel's reserved
// per-thread stack frame (GateKeeper-GPU Sec. 3.2).
//
// Algorithm (Sec. 2.1 + 3.4):
//   1. Hamming mask  H = read XOR ref, OR-reduced to 1 bit per base.
//   2. For k = 1..e: deletion mask  D_k = (read >> 2k) XOR ref and
//      insertion mask I_k = (read << 2k) XOR ref, with carry-bit transfer
//      across the word array.
//   3. Every mask is amended (internal 0-runs of length <= 2 flipped to 1).
//   4. Improved mode only: the k boundary positions vacated by each shift
//      are ORed to 1 after amendment — the leading/trailing fix that
//      distinguishes GateKeeper-GPU from the original GateKeeper.
//   5. Final mask = AND of all 2e+1 masks; errors counted by the windowed
//      LUT walk; accept iff errors <= e.
#ifndef GKGPU_FILTERS_GATEKEEPER_CORE_HPP
#define GKGPU_FILTERS_GATEKEEPER_CORE_HPP

#include "filters/filter.hpp"
#include "util/bitops.hpp"

namespace gkgpu {

/// Which variant of the algorithm to run.
///
/// kImproved is GateKeeper-GPU: difference masks are OR-reduced to one bit
/// per base and the bits vacated by each shift are forced to 1 after
/// amendment (the leading/trailing fix).
///
/// kOriginal is the GateKeeper-FPGA / SHD pipeline: masks stay in the
/// 2-bit-per-base domain end to end and vacated bits are left as shifted
/// in.  The lower per-bit mask density (0.5 vs 0.75 on dissimilar pairs)
/// makes the AND of many masks collapse toward all-zero at high error
/// thresholds — reproducing the paper's observation that GateKeeper-FPGA
/// and SHD "completely stop filtering in high error thresholds of
/// high-edit profile datasets and accept all pairs" while GateKeeper-GPU
/// keeps rejecting (Sec. 5.1.2).
enum class GateKeeperMode {
  kImproved,  // GateKeeper-GPU
  kOriginal,  // GateKeeper-FPGA / SHD behaviour
};

/// How errors are counted in the final mask.  kOneRuns (each maximal streak
/// of 1s counts once) is the shipping behaviour; kPopcount is kept for the
/// ablation bench and is deliberately stricter.
enum class CountMode { kOneRuns, kPopcount };

struct GateKeeperParams {
  GateKeeperMode mode = GateKeeperMode::kImproved;
  CountMode count = CountMode::kOneRuns;
  /// Use the constant-memory-style LUT walks (the kernel configuration)
  /// instead of the branch-free bit tricks; results are identical.
  bool use_lut = false;
  /// Pass pairs containing 'N' straight to verification (GateKeeper-GPU's
  /// Sec. 3.3 design choice).  The FPGA original has no such mechanism —
  /// it simply encodes unknown bases as 'A' — so the accuracy baselines
  /// disable this.
  bool bypass_undefined = true;
};

/// Builds the reduced difference mask for `read` shifted by `shift` bases
/// (positive = toward later positions / deletion, negative = insertion,
/// zero = plain Hamming) against `ref`, amended, with the improved-mode
/// edge fix applied.  Exposed for the baseline filters and tests.
inline void GateKeeperMask(const Word* read_enc, const Word* ref_enc,
                           int length, int shift, const GateKeeperParams& p,
                           Word* mask) {
  const int enc_words = EncodedWords(length);
  const int mask_words = MaskWords(length);
  Word shifted[kMaxEncodedWords];
  Word diff[kMaxEncodedWords];
  const Word* lhs = read_enc;
  if (shift > 0) {
    ShiftToLater(read_enc, shifted, enc_words, 2 * shift);
    lhs = shifted;
  } else if (shift < 0) {
    ShiftToEarlier(read_enc, shifted, enc_words, -2 * shift);
    lhs = shifted;
  }
  XorWords(lhs, ref_enc, diff, enc_words);
  ReducePairsOr(diff, length, mask);
  if (p.use_lut) {
    AmendShortZeroRunsLut(mask, mask_words);
  } else {
    AmendShortZeroRuns(mask, mask_words);
  }
  if (p.mode == GateKeeperMode::kImproved && shift != 0) {
    if (shift > 0) {
      // Leading bits vacated by the deletion shift.
      SetBitRange(mask, 0, shift);
    } else {
      SetBitRange(mask, length + shift, length);  // trailing bits (insertion)
    }
  }
}

/// Counts errors in the final mask according to the configured mode.
inline int GateKeeperCount(const Word* mask, int mask_words,
                           const GateKeeperParams& p) {
  if (p.count == CountMode::kPopcount) return PopcountWords(mask, mask_words);
  return p.use_lut ? CountOneRunsLut(mask, mask_words)
                   : CountOneRuns(mask, mask_words);
}

/// Builds a 2-bit-domain difference mask (original pipeline): XOR of the
/// shifted read against the reference, amended in place.  `mask` spans
/// EncodedWords(length) words covering 2 * length bits.
inline void GateKeeperMask2Bit(const Word* read_enc, const Word* ref_enc,
                               int length, int shift,
                               const GateKeeperParams& p, Word* mask) {
  const int enc_words = EncodedWords(length);
  Word shifted[kMaxEncodedWords];
  const Word* lhs = read_enc;
  if (shift > 0) {
    ShiftToLater(read_enc, shifted, enc_words, 2 * shift);
    lhs = shifted;
  } else if (shift < 0) {
    ShiftToEarlier(read_enc, shifted, enc_words, -2 * shift);
    lhs = shifted;
  }
  XorWords(lhs, ref_enc, mask, enc_words);
  ZeroTailBits(mask, enc_words, 2 * length);
  if (p.use_lut) {
    AmendShortZeroRunsLut(mask, enc_words);
  } else {
    AmendShortZeroRuns(mask, enc_words);
  }
}

/// The original (FPGA/SHD) filtration in the 2-bit mask domain.
inline FilterResult GateKeeperFiltrationOriginal(const Word* read_enc,
                                                 const Word* ref_enc,
                                                 int length, int e,
                                                 const GateKeeperParams& p) {
  const int enc_words = EncodedWords(length);
  Word final_mask[kMaxEncodedWords];
  XorWords(read_enc, ref_enc, final_mask, enc_words);
  ZeroTailBits(final_mask, enc_words, 2 * length);
  if (e == 0) {
    const int errors = GateKeeperCount(final_mask, enc_words, p);
    return {errors == 0, errors};
  }
  if (p.use_lut) {
    AmendShortZeroRunsLut(final_mask, enc_words);
  } else {
    AmendShortZeroRuns(final_mask, enc_words);
  }
  Word mask[kMaxEncodedWords];
  for (int k = 1; k <= e; ++k) {
    GateKeeperMask2Bit(read_enc, ref_enc, length, k, p, mask);
    AndWords(final_mask, mask, enc_words);
    GateKeeperMask2Bit(read_enc, ref_enc, length, -k, p, mask);
    AndWords(final_mask, mask, enc_words);
  }
  const int errors = GateKeeperCount(final_mask, enc_words, p);
  return {errors <= e, errors};
}

/// One complete filtration on encoded sequences.  `length` in bases,
/// `e` = error threshold (0 <= e <= kMaxErrorThreshold, e < length).
inline FilterResult GateKeeperFiltration(const Word* read_enc,
                                         const Word* ref_enc, int length,
                                         int e, const GateKeeperParams& p) {
  if (p.mode == GateKeeperMode::kOriginal) {
    return GateKeeperFiltrationOriginal(read_enc, ref_enc, length, e, p);
  }
  const int enc_words = EncodedWords(length);
  const int mask_words = MaskWords(length);
  Word final_mask[kMaxMaskWords];
  // Exact-match (Hamming) mask.  With e == 0 it is used unamended: the
  // approximate-matching phase only begins when the threshold is non-zero.
  Word diff[kMaxEncodedWords];
  XorWords(read_enc, ref_enc, diff, enc_words);
  ReducePairsOr(diff, length, final_mask);
  if (e == 0) {
    const int errors = GateKeeperCount(final_mask, mask_words, p);
    return {errors == 0, errors};
  }
  if (p.use_lut) {
    AmendShortZeroRunsLut(final_mask, mask_words);
  } else {
    AmendShortZeroRuns(final_mask, mask_words);
  }
  Word mask[kMaxMaskWords];
  for (int k = 1; k <= e; ++k) {
    GateKeeperMask(read_enc, ref_enc, length, k, p, mask);
    AndWords(final_mask, mask, mask_words);
    GateKeeperMask(read_enc, ref_enc, length, -k, p, mask);
    AndWords(final_mask, mask, mask_words);
  }
  const int errors = GateKeeperCount(final_mask, mask_words, p);
  return {errors <= e, errors};
}

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_GATEKEEPER_CORE_HPP
