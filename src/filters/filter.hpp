// Common interface for pre-alignment filters.  A filter inspects a read and
// its candidate reference segment (equal length, as produced by seed
// extension) and decides quickly whether the pair could be within the edit
// threshold: accept (needs real verification) or reject (skip alignment).
// Filters may over-accept (false accepts cost verification time) but should
// never over-reject (false rejects lose mappings).
#ifndef GKGPU_FILTERS_FILTER_HPP
#define GKGPU_FILTERS_FILTER_HPP

#include <string_view>

namespace gkgpu {

struct FilterResult {
  bool accept = true;
  /// The filter's cheap approximation of the edit distance (GateKeeper-GPU
  /// writes this next to the accept bit in the result buffer).
  int estimated_edits = 0;
};

class PreAlignmentFilter {
 public:
  virtual ~PreAlignmentFilter() = default;

  virtual std::string_view name() const = 0;

  /// Whether the algorithm contracts zero false rejects — it never rejects
  /// a pair whose true edit distance is within the threshold.  The
  /// differential test harness (tests/test_filter_differential.cpp) holds
  /// lossless filters to exactly that; filters returning false (MAGNET and
  /// Shouji, whose window extraction/replacement is known to shed a small
  /// fraction of true positives) are held to a bounded budget instead.
  virtual bool lossless() const { return true; }

  /// Filters one read / candidate-reference-segment pair with error
  /// threshold `e`.  Both sequences must have the same length.
  virtual FilterResult Filter(std::string_view read, std::string_view ref,
                              int e) const = 0;
};

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_FILTER_HPP
