// Common interface for pre-alignment filters.  A filter inspects a read and
// its candidate reference segment (equal length, as produced by seed
// extension) and decides quickly whether the pair could be within the edit
// threshold: accept (needs real verification) or reject (skip alignment).
// Filters may over-accept (false accepts cost verification time) but should
// never over-reject (false rejects lose mappings).
//
// The batch-first entry point is FilterBatch: one call filters a whole
// PairBlock (structure-of-arrays, see filters/pair_block.hpp) with no
// per-pair virtual dispatch on the hot path.  FilterBatch itself is a
// non-virtual wrapper — it delegates to the virtual FilterBatchImpl and
// then folds the results into the process-wide filter funnel
// (obs/names.hpp: accepts/rejects/bypasses labeled by filter name and
// SIMD dispatch tier), making every batch call site observable through
// one choke point.  The per-pair Filter() remains as the reference
// implementation and the default FilterBatchImpl fallback; GateKeeper,
// SHD, Shouji and SneakySnake override FilterBatchImpl with vectorized
// encoded-domain implementations (src/simd/).
#ifndef GKGPU_FILTERS_FILTER_HPP
#define GKGPU_FILTERS_FILTER_HPP

#include <string_view>

#include "filters/pair_block.hpp"

namespace gkgpu {

class PreAlignmentFilter {
 public:
  virtual ~PreAlignmentFilter() = default;

  virtual std::string_view name() const = 0;

  /// Whether the algorithm contracts zero false rejects — it never rejects
  /// a pair whose true edit distance is within the threshold.  The
  /// differential test harness (tests/test_filter_differential.cpp) holds
  /// lossless filters to exactly that; filters returning false (MAGNET and
  /// Shouji, whose window extraction/replacement is known to shed a small
  /// fraction of true positives) are held to a bounded budget instead.
  virtual bool lossless() const { return true; }

  /// Filters one read / candidate-reference-segment pair with error
  /// threshold `e`.  Both sequences must have the same length.  This is
  /// the reference implementation: batch paths must match it bit for bit
  /// on pairs whose block bypass bit is clear.
  virtual FilterResult Filter(std::string_view read, std::string_view ref,
                              int e) const = 0;

  /// Filters every pair of `block` with error threshold `e` into
  /// `results[0..block.size)`.  Contract (shared with the device kernels):
  /// pairs whose block bypass bit is set skip filtration and receive
  /// {accept=1, bypassed=1, edits=0}; every other pair's result equals
  /// Filter() on the pair's decoded sequences.  Non-virtual: records the
  /// batch in the filter funnel (one result scan) and delegates to
  /// FilterBatchImpl.
  void FilterBatch(const PairBlock& block, int e, PairResult* results) const;

 protected:
  /// The actual batch kernel.  The default implementation is a per-pair
  /// loop over Filter(); overriding filters provide real batch kernels
  /// and must preserve the equivalence (asserted by the differential
  /// harness and the scalar-vs-SIMD fuzz test).
  virtual void FilterBatchImpl(const PairBlock& block, int e,
                               PairResult* results) const;
};

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_FILTER_HPP
