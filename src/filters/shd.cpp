#include "filters/shd.hpp"

#include <cassert>

#include "encode/encoded.hpp"
#include "filters/gatekeeper_core.hpp"
#include "simd/gatekeeper_batch.hpp"

namespace gkgpu {

namespace {

GateKeeperParams ShdParams() {
  // SHD materializes every mask before the AND (it is SIMD-parallel across
  // masks); functionally this is the original GateKeeper data flow, which
  // the shared core reproduces with kOriginal mode.
  GateKeeperParams params;
  params.mode = GateKeeperMode::kOriginal;
  params.count = CountMode::kOneRuns;
  return params;
}

}  // namespace

FilterResult ShdFilter::Filter(std::string_view read, std::string_view ref,
                               int e) const {
  assert(read.size() == ref.size());
  Word read_enc[kMaxEncodedWords];
  Word ref_enc[kMaxEncodedWords];
  EncodeSequence(read, read_enc);
  EncodeSequence(ref, ref_enc);
  return GateKeeperFiltration(read_enc, ref_enc,
                              static_cast<int>(read.size()), e, ShdParams());
}

void ShdFilter::FilterBatchImpl(const PairBlock& block, int e,
                            PairResult* results) const {
  simd::GateKeeperFilterRange(block, 0, block.size, e, ShdParams(), results);
}

}  // namespace gkgpu
