#include "filters/shd.hpp"

#include <cassert>

#include "encode/encoded.hpp"
#include "filters/gatekeeper_core.hpp"

namespace gkgpu {

FilterResult ShdFilter::Filter(std::string_view read, std::string_view ref,
                               int e) const {
  assert(read.size() == ref.size());
  Word read_enc[kMaxEncodedWords];
  Word ref_enc[kMaxEncodedWords];
  EncodeSequence(read, read_enc);
  EncodeSequence(ref, ref_enc);
  // SHD materializes every mask before the AND (it is SIMD-parallel across
  // masks); functionally this is the original GateKeeper data flow, which
  // the shared core reproduces with kOriginal mode.
  GateKeeperParams params;
  params.mode = GateKeeperMode::kOriginal;
  params.count = CountMode::kOneRuns;
  return GateKeeperFiltration(read_enc, ref_enc,
                              static_cast<int>(read.size()), e, params);
}

}  // namespace gkgpu
