#include "filters/filter.hpp"

#include <cstring>
#include <string>

#include "obs/names.hpp"
#include "simd/dispatch.hpp"

namespace gkgpu {

void PreAlignmentFilter::FilterBatch(const PairBlock& block, int e,
                                     PairResult* results) const {
  FilterBatchImpl(block, e, results);
  if (!obs::Enabled() || block.size == 0) return;
  // One pass over the verdicts, then four batch-granular counter bumps.
  // The tally is the only per-pair cost of the funnel, so it reads each
  // 4-byte PairResult as one word and lane-extracts the two flag bytes —
  // a form the compiler vectorizes, keeping the bench's <= 2% overhead
  // gate honest on the fastest kernels.  Little-endian lane order, like
  // the encoded-word layout the SIMD kernels already assume.
  static_assert(sizeof(PairResult) == 4 &&
                    offsetof(PairResult, accept) == 0 &&
                    offsetof(PairResult, bypassed) == 1,
                "the funnel tally assumes the PairResult flag layout");
  std::uint64_t accepts = 0;
  std::uint64_t bypasses = 0;
  std::uint64_t earlyouts = 0;
  for (std::size_t i = 0; i < block.size; ++i) {
    std::uint32_t w;
    std::memcpy(&w, &results[i], sizeof(w));
    accepts += w & 0xFFu;
    const std::uint32_t b = (w >> 8) & 0xFFu;
    bypasses += b & 1u;        // undefined-pair bypass-accept
    earlyouts += (b >> 1) & 1u;  // joint-filtration early-out (no verdict)
  }
  const std::string filter(name());
  const std::string tier = simd::LevelName(simd::ActiveLevel());
  obs::FilterInput().Inc(block.size);
  obs::FilterAccepts(filter, tier).Inc(accepts);
  obs::FilterRejects(filter, tier).Inc(block.size - accepts - earlyouts);
  if (bypasses > 0) obs::FilterBypasses(filter, tier).Inc(bypasses);
  if (earlyouts > 0) obs::JointEarlyOutLanes(filter, tier).Inc(earlyouts);
}

void PreAlignmentFilter::FilterBatchImpl(const PairBlock& block, int e,
                                         PairResult* results) const {
  // Reference fallback: materialize each pair back into character space and
  // run the per-pair scalar filtration.  Overriding filters keep the same
  // observable behaviour while staying in the encoded domain.
  Word read_scratch[kMaxEncodedWords];
  Word ref_scratch[kMaxEncodedWords];
  std::string read_str(static_cast<std::size_t>(block.length), 'A');
  std::string ref_str(static_cast<std::size_t>(block.length), 'A');
  for (std::size_t i = 0; i < block.size; ++i) {
    const BlockPairView p = LoadBlockPair(block, i, read_scratch, ref_scratch);
    if (p.killed) {
      results[i] = EarlyOutPairResult();
      continue;
    }
    if (p.bypass) {
      results[i] = BypassedPairResult();
      continue;
    }
    for (int j = 0; j < block.length; ++j) {
      read_str[static_cast<std::size_t>(j)] =
          CodeToBase(GetBase2Bit(p.read, j));
      ref_str[static_cast<std::size_t>(j)] = CodeToBase(GetBase2Bit(p.ref, j));
    }
    results[i] = MakePairResult(Filter(read_str, ref_str, e), false);
  }
}

}  // namespace gkgpu
