#include "filters/filter.hpp"

#include <string>

namespace gkgpu {

void PreAlignmentFilter::FilterBatch(const PairBlock& block, int e,
                                     PairResult* results) const {
  // Reference fallback: materialize each pair back into character space and
  // run the per-pair scalar filtration.  Overriding filters keep the same
  // observable behaviour while staying in the encoded domain.
  Word read_scratch[kMaxEncodedWords];
  Word ref_scratch[kMaxEncodedWords];
  std::string read_str(static_cast<std::size_t>(block.length), 'A');
  std::string ref_str(static_cast<std::size_t>(block.length), 'A');
  for (std::size_t i = 0; i < block.size; ++i) {
    const BlockPairView p = LoadBlockPair(block, i, read_scratch, ref_scratch);
    if (p.bypass) {
      results[i] = BypassedPairResult();
      continue;
    }
    for (int j = 0; j < block.length; ++j) {
      read_str[static_cast<std::size_t>(j)] =
          CodeToBase(GetBase2Bit(p.read, j));
      ref_str[static_cast<std::size_t>(j)] = CodeToBase(GetBase2Bit(p.ref, j));
    }
    results[i] = MakePairResult(Filter(read_str, ref_str, e), false);
  }
}

}  // namespace gkgpu
