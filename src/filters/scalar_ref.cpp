#include "filters/scalar_ref.hpp"

#include <cassert>

#include "encode/dna.hpp"

namespace gkgpu {

std::vector<int> ScalarMask(std::string_view read, std::string_view ref,
                            int shift) {
  const int length = static_cast<int>(read.size());
  std::vector<int> mask(static_cast<std::size_t>(length), 0);
  for (int p = 0; p < length; ++p) {
    const int ri = p - shift;
    // The bit-parallel shift fills vacated slots with 0 bits == code of 'A'.
    const unsigned read_code =
        (ri >= 0 && ri < length)
            ? BaseToCode(read[static_cast<std::size_t>(ri)]) & 0x3u
            : 0u;
    const unsigned ref_code =
        BaseToCode(ref[static_cast<std::size_t>(p)]) & 0x3u;
    mask[static_cast<std::size_t>(p)] = read_code == ref_code ? 0 : 1;
  }
  return mask;
}

std::vector<int> ScalarMask2Bit(std::string_view read, std::string_view ref,
                                int shift) {
  const int length = static_cast<int>(read.size());
  std::vector<int> mask(2 * static_cast<std::size_t>(length), 0);
  for (int p = 0; p < length; ++p) {
    const int ri = p - shift;
    const unsigned read_code =
        (ri >= 0 && ri < length)
            ? BaseToCode(read[static_cast<std::size_t>(ri)]) & 0x3u
            : 0u;
    const unsigned ref_code =
        BaseToCode(ref[static_cast<std::size_t>(p)]) & 0x3u;
    const unsigned x = read_code ^ ref_code;
    mask[2 * static_cast<std::size_t>(p)] = (x >> 1) & 1u;
    mask[2 * static_cast<std::size_t>(p) + 1] = x & 1u;
  }
  return mask;
}

void ScalarAmend(std::vector<int>& mask) {
  const int n = static_cast<int>(mask.size());
  std::vector<int> out = mask;
  int i = 0;
  while (i < n) {
    if (mask[static_cast<std::size_t>(i)] == 1) {
      ++i;
      continue;
    }
    int j = i;
    while (j < n && mask[static_cast<std::size_t>(j)] == 0) ++j;
    const int run = j - i;
    const bool left_one = i > 0;
    const bool right_one = j < n;
    if (run <= 2 && left_one && right_one) {
      for (int p = i; p < j; ++p) out[static_cast<std::size_t>(p)] = 1;
    }
    i = j;
  }
  mask = std::move(out);
}

int ScalarCountRuns(const std::vector<int>& mask) {
  int runs = 0;
  int prev = 0;
  for (const int b : mask) {
    if (b == 1 && prev == 0) ++runs;
    prev = b;
  }
  return runs;
}

FilterResult GateKeeperScalar(std::string_view read, std::string_view ref,
                              int e, const GateKeeperParams& params) {
  assert(read.size() == ref.size());
  const int length = static_cast<int>(read.size());
  if (params.bypass_undefined &&
      (ContainsUnknown(read) || ContainsUnknown(ref))) {
    return {true, 0};
  }

  auto count = [&](const std::vector<int>& m) {
    if (params.count == CountMode::kPopcount) {
      int ones = 0;
      for (const int b : m) ones += b;
      return ones;
    }
    return ScalarCountRuns(m);
  };

  const bool original = params.mode == GateKeeperMode::kOriginal;
  auto make_mask = [&](int shift) {
    return original ? ScalarMask2Bit(read, ref, shift)
                    : ScalarMask(read, ref, shift);
  };

  std::vector<int> final_mask = make_mask(0);
  if (e == 0) {
    const int errors = count(final_mask);
    return {errors == 0, errors};
  }
  ScalarAmend(final_mask);
  for (int k = 1; k <= e; ++k) {
    for (const int shift : {k, -k}) {
      std::vector<int> mask = make_mask(shift);
      ScalarAmend(mask);
      if (params.mode == GateKeeperMode::kImproved) {
        if (shift > 0) {
          for (int p = 0; p < shift; ++p) mask[static_cast<std::size_t>(p)] = 1;
        } else {
          for (int p = length + shift; p < length; ++p) {
            mask[static_cast<std::size_t>(p)] = 1;
          }
        }
      }
      for (std::size_t p = 0; p < final_mask.size(); ++p) {
        final_mask[p] &= mask[p];
      }
    }
  }
  const int errors = count(final_mask);
  return {errors <= e, errors};
}

}  // namespace gkgpu
