// The banded neighborhood map shared by the MAGNET, Shouji and SneakySnake
// baselines: one mismatch bit-vector per diagonal d in [-e, +e], where bit j
// of diagonal d says whether read[j] differs from ref[j + d].  Out-of-range
// comparisons count as mismatches, which also encodes the leading/trailing
// edge information these filters (unlike the original GateKeeper) honour.
#ifndef GKGPU_FILTERS_NEIGHBORHOOD_HPP
#define GKGPU_FILTERS_NEIGHBORHOOD_HPP

#include <string_view>
#include <vector>

#include "util/bitops.hpp"

namespace gkgpu {

class NeighborhoodMap {
 public:
  /// Builds the map for the given pair and threshold.  The object is
  /// reusable: Build() resizes internal storage as needed.
  void Build(std::string_view read, std::string_view ref, int e);

  /// Bit-parallel build from 2-bit encoded sequences: each diagonal is one
  /// shifted XOR + 2-bit->1-bit reduction instead of a per-character loop,
  /// with out-of-range columns forced to mismatch.  Identical to Build()
  /// on 'N'-free pairs (an encoded 'N' has no code of its own); the batch
  /// filters bypass undefined pairs before reaching this.
  void BuildEncoded(const Word* read_enc, const Word* ref_enc, int length,
                    int e);

  int length() const { return length_; }
  int e() const { return e_; }
  int mask_words() const { return mask_words_; }

  /// Bit-vector for diagonal d (-e <= d <= +e), MSB-first packed.
  const Word* Diagonal(int d) const {
    return words_.data() + static_cast<std::size_t>(d + e_) *
                               static_cast<std::size_t>(mask_words_);
  }

  /// Length of the run of 0s (matches) on diagonal d starting at column j.
  int ZeroRunFrom(int d, int j) const;

  /// Longest run of 0s on diagonal d within columns [lo, hi]; returns its
  /// length and writes the start column (undefined when the result is 0).
  int LongestZeroRun(int d, int lo, int hi, int* start) const;

 private:
  int length_ = 0;
  int e_ = 0;
  int mask_words_ = 0;
  std::vector<Word> words_;
};

}  // namespace gkgpu

#endif  // GKGPU_FILTERS_NEIGHBORHOOD_HPP
