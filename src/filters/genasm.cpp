#include "filters/genasm.hpp"

#include <cassert>
#include <cstdint>
#include <cstring>

namespace gkgpu {

namespace {

constexpr int kW = 64;
// Pattern capacity: kMaxReadLength bits.
constexpr int kMaxBlocks = 512 / kW;
// Threshold capacity (kMaxErrorThreshold + 1 state vectors).
constexpr int kMaxStates = 53;

struct StateRow {
  std::uint64_t bits[kMaxBlocks];
};

// dst = (src << 1) | carry_in, across blocks (bit 0 of block 0 is the LSB).
void ShiftLeftInto(const std::uint64_t* src, std::uint64_t* dst, int nblocks,
                   std::uint64_t carry_in) {
  std::uint64_t carry = carry_in;
  for (int b = 0; b < nblocks; ++b) {
    const std::uint64_t next_carry = src[b] >> (kW - 1);
    dst[b] = (src[b] << 1) | carry;
    carry = next_carry;
  }
}

}  // namespace

bool BitapWithinEditDistance(std::string_view pattern, std::string_view text,
                             int e) {
  const int m = static_cast<int>(pattern.size());
  const int n = static_cast<int>(text.size());
  if (m == 0) return n <= e;
  if (n == 0) return m <= e;
  assert(m <= kMaxBlocks * kW);
  assert(e + 1 <= kMaxStates);
  const int nblocks = (m + kW - 1) / kW;
  const std::uint64_t match_bit = std::uint64_t{1} << ((m - 1) % kW);
  const int match_block = (m - 1) / kW;

  // Peq[c] bit i: pattern[i] == c.
  std::uint64_t peq[256][kMaxBlocks] = {};
  for (int i = 0; i < m; ++i) {
    const auto c =
        static_cast<unsigned char>(pattern[static_cast<std::size_t>(i)]);
    peq[c][i / kW] |= std::uint64_t{1} << (i % kW);
  }

  // R[d] bit i: edit(pattern[0..i], text-prefix-so-far) <= d.
  // Before any text: edit(pattern[0..i], "") = i + 1 -> bits 0..d-1.
  StateRow r[kMaxStates];
  StateRow r_new[kMaxStates];
  for (int d = 0; d <= e; ++d) {
    std::memset(r[d].bits, 0, sizeof(r[d].bits));
    for (int i = 0; i < d && i < m; ++i) {
      r[d].bits[i / kW] |= std::uint64_t{1} << (i % kW);
    }
  }

  for (int j = 0; j < n; ++j) {
    const auto c =
        static_cast<unsigned char>(text[static_cast<std::size_t>(j)]);
    // Empty-prefix ("bit -1") states: edit("", text[0..j']) = j' + 1.
    // Carried into shifts as the incoming LSB.
    // Before this character, j characters were consumed: dist = j.
    // After it: dist = j + 1.
    for (int d = 0; d <= e; ++d) {
      const std::uint64_t prev_empty_d = (j <= d) ? 1u : 0u;
      std::uint64_t shifted[kMaxBlocks];
      ShiftLeftInto(r[d].bits, shifted, nblocks, prev_empty_d);
      // Match / substitution-free extension.
      for (int b = 0; b < nblocks; ++b) {
        r_new[d].bits[b] = shifted[b] & peq[c][b];
      }
      if (d > 0) {
        const std::uint64_t prev_empty_d1 = (j <= d - 1) ? 1u : 0u;
        std::uint64_t sub[kMaxBlocks];
        ShiftLeftInto(r[d - 1].bits, sub, nblocks, prev_empty_d1);
        std::uint64_t del[kMaxBlocks];
        const std::uint64_t new_empty_d1 = (j + 1 <= d - 1) ? 1u : 0u;
        ShiftLeftInto(r_new[d - 1].bits, del, nblocks, new_empty_d1);
        for (int b = 0; b < nblocks; ++b) {
          r_new[d].bits[b] |= sub[b]              // substitution
                              | r[d - 1].bits[b]  // insertion into text
                              | del[b];           // deletion from text
        }
      }
    }
    for (int d = 0; d <= e; ++d) r[d] = r_new[d];
  }
  return (r[e].bits[match_block] & match_bit) != 0;
}

FilterResult GenAsmFilter::Filter(std::string_view read, std::string_view ref,
                                  int e) const {
  assert(read.size() == ref.size());
  const bool accept = BitapWithinEditDistance(read, ref, e);
  // The NFA answers the threshold question, not the distance itself; report
  // e+1 on rejection so callers see "beyond threshold".
  return {accept, accept ? e : e + 1};
}

}  // namespace gkgpu
