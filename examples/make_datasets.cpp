// Data-set factory: generates the paper-profile candidate-pair sets and a
// whole-genome read set, writes them to disk (pair-set TSV, FASTA, FASTQ),
// reads them back, and verifies the round trip — the offline workflow for
// sharing reproducible inputs between experiments.
//
//   $ ./make_datasets [output_dir] [pairs]
//
// Defaults: ./gkgpu_datasets, 10,000 pairs per set.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "io/pairset.hpp"
#include "sim/genome.hpp"
#include "sim/pairgen.hpp"
#include "sim/read_sim.hpp"

int main(int argc, char** argv) {
  using namespace gkgpu;
  const std::string out_dir = argc > 1 ? argv[1] : "gkgpu_datasets";
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000;
  std::filesystem::create_directories(out_dir);

  struct SetSpec {
    const char* name;
    PairProfile profile;
  };
  const SetSpec sets[] = {
      {"set1_lowedit_100bp", LowEditProfile(100)},
      {"set4_highedit_100bp", HighEditProfile(100)},
      {"set3_mrfast_100bp", MrFastCandidateProfile(100)},
      {"set6_mrfast_150bp", MrFastCandidateProfile(150)},
      {"set10_mrfast_250bp", MrFastCandidateProfile(250)},
      {"minimap2_100bp", Minimap2Profile(100)},
      {"bwamem_100bp", BwaMemProfile(100)},
  };
  std::uint64_t seed = 8800;
  for (const auto& spec : sets) {
    const std::string path = out_dir + "/" + spec.name + ".pairs.tsv";
    const auto pairs = GeneratePairs(n, spec.profile, seed++);
    WritePairSetFile(path, pairs);
    const auto back = ReadPairSetFile(path);
    if (back.size() != pairs.size() || back[0].read != pairs[0].read) {
      std::fprintf(stderr, "round trip FAILED for %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %-28s %zu pairs (round trip OK)\n", spec.name,
                pairs.size());
  }

  // Whole-genome inputs: reference FASTA + simulated reads FASTQ.
  const std::string genome = GenerateGenome(1000000, 99);
  WriteFastaFile(out_dir + "/reference.fa",
                 {{"synthetic_chr1 length=1000000", genome}});
  const auto reads =
      SimulateReads(genome, n / 10 + 1, 100, ReadErrorProfile::Illumina(), 77);
  std::vector<FastqRecord> records;
  records.reserve(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    records.push_back({"sim_read_" + std::to_string(i) + "_origin_" +
                           std::to_string(reads[i].origin),
                       reads[i].seq, ""});
  }
  WriteFastqFile(out_dir + "/reads.fq", records);
  const auto fa = ReadFastaFile(out_dir + "/reference.fa");
  const auto fq = ReadFastqFile(out_dir + "/reads.fq");
  if (fa.size() != 1 || fa[0].seq != genome || fq.size() != records.size()) {
    std::fprintf(stderr, "FASTA/FASTQ round trip FAILED\n");
    return 1;
  }
  std::printf("wrote reference.fa (1 Mbp) and reads.fq (%zu reads); "
              "round trips OK\n",
              records.size());
  std::printf("\nAll data sets in %s/\n", out_dir.c_str());
  return 0;
}
