// End-to-end short read mapping with GateKeeper-GPU as the pre-alignment
// stage (the paper's Sec. 3.5 integration), on a synthetic genome with
// planted repeats: maps one read set twice — without and with the filter —
// and shows that the mappings are identical while the filter removes most
// of the verification work.  Writes the first mappings as SAM.
//
//   $ ./read_mapping [genome_bases] [reads]
//
// Defaults: 2,000,000 bp genome, 20,000 reads of 100 bp.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "mapper/mapper.hpp"
#include "mapper/sam.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gkgpu;
  const std::size_t genome_len =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000000;
  const std::size_t n_reads =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;

  std::printf("Generating a %zu bp genome with repeat families...\n",
              genome_len);
  const std::string genome = GenerateGenome(genome_len, 7);
  std::printf("Simulating %zu Illumina-like 100 bp reads...\n", n_reads);
  const auto reads = SimulateReadSequences(genome, n_reads, 100,
                                           ReadErrorProfile::Illumina(), 11);

  MapperConfig mcfg;
  mcfg.k = 12;
  mcfg.read_length = 100;
  mcfg.error_threshold = 5;
  ReadMapper mapper(genome, mcfg);

  std::printf("Mapping without a pre-alignment filter...\n");
  std::vector<MappingRecord> plain_records;
  const MappingStats plain = mapper.MapReads(reads, nullptr, &plain_records);

  std::printf("Mapping with GateKeeper-GPU...\n\n");
  auto devices = gpusim::MakeSetup1(1);
  std::vector<gpusim::Device*> ptrs{devices[0].get()};
  EngineConfig ecfg;
  ecfg.read_length = mcfg.read_length;
  ecfg.error_threshold = mcfg.error_threshold;
  GateKeeperGpuEngine engine(ecfg, ptrs);
  std::vector<MappingRecord> filtered_records;
  const MappingStats filtered = mapper.MapReads(reads, &engine,
                                                &filtered_records);

  TablePrinter table({"mrFAST w/", "mappings", "mapped reads",
                      "verification pairs", "rejected pairs", "reduction",
                      "DP time (s)"});
  table.AddRow({"No Filter", TablePrinter::Count(plain.mappings),
                TablePrinter::Count(plain.mapped_reads),
                TablePrinter::Count(plain.verification_pairs), "NA", "NA",
                TablePrinter::Num(plain.verification_seconds, 2)});
  table.AddRow({"GateKeeper-GPU", TablePrinter::Count(filtered.mappings),
                TablePrinter::Count(filtered.mapped_reads),
                TablePrinter::Count(filtered.verification_pairs),
                TablePrinter::Count(filtered.rejected_pairs),
                TablePrinter::Percent(filtered.ReductionPercent(), 0),
                TablePrinter::Num(filtered.verification_seconds, 2)});
  table.Print(std::cout);

  const bool identical = plain.mappings == filtered.mappings &&
                         plain.mapped_reads == filtered.mapped_reads;
  std::printf("\nmappings identical with and without filter: %s\n",
              identical ? "YES (no mappings lost)" : "NO (!)");
  const double speedup =
      filtered.verification_seconds > 0
          ? plain.verification_seconds / filtered.verification_seconds
          : 0.0;
  std::printf("verification speedup from filtering: %.1fx\n", speedup);

  std::printf("\nFirst mappings as SAM (real CIGARs via banded traceback):\n");
  std::ostringstream sam;
  WriteSamHeader(sam, "synthetic_chr1", static_cast<std::int64_t>(genome_len));
  WriteSamRecordsWithCigar(
      sam, reads,
      std::vector<MappingRecord>(
          filtered_records.begin(),
          filtered_records.begin() +
              std::min<std::size_t>(5, filtered_records.size())),
      "synthetic_chr1", genome);
  std::fputs(sam.str().c_str(), stdout);
  return identical ? 0 : 1;
}
