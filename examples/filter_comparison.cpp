// Compares all six pre-alignment filters of the paper's Sec. 5.1.2 on one
// generated candidate set: false accepts, false rejects, true rejects and
// wall time per filter, against the exact-alignment ground truth.
//
//   $ ./filter_comparison [pairs] [length] [e]
//
// Defaults: 20,000 pairs, 100 bp, e = 5.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "align/banded.hpp"
#include "filters/gatekeeper.hpp"
#include "filters/genasm.hpp"
#include "filters/magnet.hpp"
#include "filters/shd.hpp"
#include "filters/shouji.hpp"
#include "filters/sneakysnake.hpp"
#include "sim/pairgen.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gkgpu;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const int length = argc > 2 ? std::atoi(argv[2]) : 100;
  const int e = argc > 3 ? std::atoi(argv[3]) : 5;

  std::printf("Generating %zu mrFAST-profile pairs (%d bp, e = %d)...\n", n,
              length, e);
  const auto pairs = GeneratePairs(n, MrFastCandidateProfile(length), 42);

  // Ground truth, as the paper does: exact edit distance, accept iff <= e.
  std::vector<bool> truth(n);
  std::size_t true_accepts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = WithinEditDistance(pairs[i].read, pairs[i].ref, e);
    true_accepts += truth[i];
  }
  std::printf("ground truth: %zu accepts, %zu rejects\n\n", true_accepts,
              n - true_accepts);

  std::vector<std::unique_ptr<PreAlignmentFilter>> filters;
  filters.push_back(std::make_unique<GateKeeperFilter>());
  GateKeeperParams original;
  original.mode = GateKeeperMode::kOriginal;
  original.bypass_undefined = false;
  filters.push_back(std::make_unique<GateKeeperFilter>(original));
  filters.push_back(std::make_unique<ShdFilter>());
  filters.push_back(std::make_unique<MagnetFilter>());
  filters.push_back(std::make_unique<ShoujiFilter>());
  filters.push_back(std::make_unique<SneakySnakeFilter>());
  filters.push_back(std::make_unique<GenAsmFilter>());  // library extension

  TablePrinter table({"filter", "false accepts", "false rejects",
                      "true rejects", "FA rate", "time (s)"});
  for (const auto& filter : filters) {
    std::size_t fa = 0;
    std::size_t fr = 0;
    std::size_t tr = 0;
    WallTimer timer;
    for (std::size_t i = 0; i < n; ++i) {
      const bool accept = filter->Filter(pairs[i].read, pairs[i].ref, e).accept;
      if (accept && !truth[i]) ++fa;
      if (!accept && truth[i]) ++fr;
      if (!accept && !truth[i]) ++tr;
    }
    const double secs = timer.Seconds();
    const std::size_t rejects = n - true_accepts;
    table.AddRow({std::string(filter->name()), TablePrinter::Count(fa),
                  TablePrinter::Count(fr), TablePrinter::Count(tr),
                  TablePrinter::Percent(
                      rejects ? 100.0 * static_cast<double>(fa) /
                                    static_cast<double>(rejects)
                              : 0.0),
                  TablePrinter::Num(secs, 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected ordering (paper Fig. 5): SneakySnake & MAGNET lowest FA,\n"
      "then Shouji, then GateKeeper-GPU, then GateKeeper-FPGA = SHD.\n"
      "MAGNET (and rarely Shouji) may show false rejects.  GenASM is this\n"
      "library's extension: a bit-parallel Bitap NFA that is exact (0 FA,\n"
      "0 FR), the accuracy ceiling of the related work.\n");
  return 0;
}
