// Interactive-ish accuracy explorer: sweeps the filtering error threshold
// on a chosen data-set profile and prints the Fig. 4-style table (accepted/
// rejected by the exact aligner vs GateKeeper-GPU, false-accept count and
// rate, true-reject rate), for either algorithm mode.
//
//   $ ./accuracy_explorer [profile] [length] [pairs] [mode]
//
//   profile: mrfast | lowedit | highedit | minimap2 | bwamem  (default mrfast)
//   length:  read length in bp                                (default 100)
//   pairs:   data set size                                    (default 30000)
//   mode:    improved | original                              (default improved)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "align/banded.hpp"
#include "encode/dna.hpp"
#include "filters/gatekeeper.hpp"
#include "sim/pairgen.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gkgpu;
  const std::string profile_name = argc > 1 ? argv[1] : "mrfast";
  const int length = argc > 2 ? std::atoi(argv[2]) : 100;
  const std::size_t n = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 30000;
  const std::string mode_name = argc > 4 ? argv[4] : "improved";

  PairProfile profile;
  if (profile_name == "mrfast") {
    profile = MrFastCandidateProfile(length);
  } else if (profile_name == "lowedit") {
    profile = LowEditProfile(length);
  } else if (profile_name == "highedit") {
    profile = HighEditProfile(length);
  } else if (profile_name == "minimap2") {
    profile = Minimap2Profile(length);
  } else if (profile_name == "bwamem") {
    profile = BwaMemProfile(length);
  } else {
    std::fprintf(stderr, "unknown profile '%s'\n", profile_name.c_str());
    return 2;
  }

  GateKeeperParams params;
  params.mode = mode_name == "original" ? GateKeeperMode::kOriginal
                                        : GateKeeperMode::kImproved;
  GateKeeperFilter filter(params);

  std::printf("profile=%s length=%d pairs=%zu algorithm=%s\n", profile_name.c_str(),
              length, n, std::string(filter.name()).c_str());
  const auto pairs = GeneratePairs(n, profile, 4242);

  TablePrinter table({"e", "Edlib accept", "Edlib reject", "GK accept",
                      "GK reject", "false accepts", "FA rate", "TR rate",
                      "false rejects"});
  for (int e = 0; e <= length / 10; e += std::max(1, length / 100)) {
    std::size_t oracle_accept = 0;
    std::size_t filter_accept = 0;
    std::size_t fa = 0;
    std::size_t fr = 0;
    std::size_t tr = 0;
    for (const auto& p : pairs) {
      // Undefined pairs count as accepted on both sides (Sup. note, S.2).
      const bool undefined = ContainsUnknown(p.read) || ContainsUnknown(p.ref);
      const bool truth =
          undefined || WithinEditDistance(p.read, p.ref, e);
      const bool accept = filter.Filter(p.read, p.ref, e).accept;
      oracle_accept += truth;
      filter_accept += accept;
      if (accept && !truth) ++fa;
      if (!accept && truth) ++fr;
      if (!accept && !truth) ++tr;
    }
    const std::size_t oracle_reject = n - oracle_accept;
    table.AddRow(
        {std::to_string(e), TablePrinter::Count(oracle_accept),
         TablePrinter::Count(oracle_reject),
         TablePrinter::Count(filter_accept),
         TablePrinter::Count(n - filter_accept), TablePrinter::Count(fa),
         TablePrinter::Percent(oracle_reject ? 100.0 * static_cast<double>(fa) /
                                                   static_cast<double>(oracle_reject)
                                             : 0.0),
         TablePrinter::Percent(oracle_reject ? 100.0 * static_cast<double>(tr) /
                                                   static_cast<double>(oracle_reject)
                                             : 0.0),
         TablePrinter::Count(fr)});
  }
  table.Print(std::cout);
  std::printf("\nfalse rejects must be 0 in every row for %s.\n",
              std::string(filter.name()).c_str());
  return 0;
}
