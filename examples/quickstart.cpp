// Quickstart: filter a handful of read / reference-segment pairs with
// GateKeeper-GPU and print the decisions next to the exact edit distance.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~60 lines: build a device,
// configure the engine, filter pairs, inspect results and run statistics.
#include <cstdio>

#include "align/myers.hpp"
#include "core/engine.hpp"
#include "sim/pairgen.hpp"

int main() {
  using namespace gkgpu;

  // 1. Attach a simulated GPU (the paper's Setup 1 uses GTX 1080 Ti).
  auto devices = gpusim::MakeSetup1(/*count=*/1);
  std::vector<gpusim::Device*> ptrs{devices[0].get()};

  // 2. Configure: 100 bp reads, error threshold 5 (5% of the length),
  //    host-side encoding.  These mirror the paper's defaults.
  EngineConfig config;
  config.read_length = 100;
  config.error_threshold = 5;
  config.encoding = EncodingActor::kHost;
  GateKeeperGpuEngine engine(config, ptrs);

  std::printf("GateKeeper-GPU quickstart\n");
  std::printf("device: %s, batch capacity: %zu pairs, occupancy: %.0f%%\n\n",
              devices[0]->props().name.c_str(), engine.plan().pairs_per_batch,
              engine.plan().occupancy.occupancy * 100.0);

  // 3. Make a small workload: pairs at 0..12 edits plus one undefined pair.
  std::vector<std::string> reads;
  std::vector<std::string> refs;
  for (int edits = 0; edits <= 12; ++edits) {
    SequencePair p = MakePairWithEdits(100, edits, 0.3, 1000 + edits);
    reads.push_back(std::move(p.read));
    refs.push_back(std::move(p.ref));
  }
  reads.push_back(std::string(100, 'N'));  // undefined pair: bypasses
  refs.push_back(refs.front());

  // 4. Filter.
  std::vector<PairResult> results;
  const FilterRunStats stats = engine.FilterPairs(reads, refs, &results);

  // 5. Inspect: the filter's decision vs the exact edit distance.
  MyersAligner oracle;
  std::printf("%-6s %-12s %-10s %-10s %s\n", "pair", "edlib-dist",
              "decision", "est-edits", "note");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const int exact = oracle.Distance(reads[i], refs[i]);
    std::printf("%-6zu %-12d %-10s %-10d %s\n", i, exact,
                results[i].accept ? "accept" : "reject", results[i].edits,
                results[i].bypassed ? "undefined pair (contains N)" : "");
  }
  std::printf(
      "\n%llu pairs in %llu kernel round(s): accepted %llu, rejected %llu, "
      "bypassed %llu\n",
      static_cast<unsigned long long>(stats.pairs),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.bypassed));
  std::printf("kernel time %.3f ms (simulated), filter time %.3f ms\n",
              stats.kernel_seconds * 1e3, stats.filter_seconds * 1e3);
  std::printf("\nPairs rejected here skip the expensive alignment stage -- "
              "that is the entire point of pre-alignment filtering.\n");
  return 0;
}
