// Differential filter test harness: every pre-alignment filter in the
// library — the GateKeeper-GPU bit-parallel core, its scalar reference
// implementation, the original FPGA-style GateKeeper, SHD, MAGNET, Shouji,
// SneakySnake and GenASM — runs against the exact Myers edit-distance
// oracle over a randomized grid of read lengths and error thresholds, on
// substitution-only and indel-rich pair populations.
//
// Contract checked per filter (PreAlignmentFilter::lossless()):
//   * lossless filters must never reject a pair whose oracle distance is
//     within the threshold — zero false rejects, the paper's headline
//     accuracy claim, asserted per pair;
//   * MAGNET and Shouji, whose window extraction/replacement is known to
//     shed a small fraction of true positives, are held to a bounded
//     aggregate false-reject budget instead;
//   * every filter's false-accept rate against the oracle is recorded and
//     reported per threshold (false accepts cost verification time, not
//     correctness — the rate is the filter's quality metric).
//
// Every PreAlignmentFilter case additionally runs through the batch API
// (FilterBatch over a PairBlock — the scalar-or-AVX2 vectorized path for
// GateKeeper/SHD/Shouji, the decode fallback for the rest): the batch
// decisions must match the per-pair scalar path bit for bit, so the
// false-reject contracts transfer to the batch path by construction.
//
// Extending for a new filter: register it in MakeCases() (for a
// PreAlignmentFilter subclass one AddFilter line suffices; free-function
// implementations wrap in a lambda) and the grid, the zero-false-reject
// assertion, the batch-equivalence sweep and the false-accept report
// apply unchanged.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "align/myers.hpp"
#include "filters/filter.hpp"
#include "filters/gatekeeper.hpp"
#include "filters/genasm.hpp"
#include "filters/magnet.hpp"
#include "filters/scalar_ref.hpp"
#include "filters/shd.hpp"
#include "filters/shouji.hpp"
#include "filters/sneakysnake.hpp"
#include "sim/pairgen.hpp"
#include "util/rng.hpp"

namespace gkgpu {
namespace {

constexpr int kLengths[] = {64, 100, 128};
constexpr int kThresholds[] = {0, 2, 5, 8};
constexpr double kIndelFracs[] = {0.0, 0.35};
constexpr int kPairsPerCell = 250;
/// Aggregate false-reject budget for filters without a lossless contract,
/// in false rejects per 1000 true positives across the whole grid (the
/// observed rates sit well under 1%).
constexpr int kBoundedBudgetPerMille = 30;

struct FilterCase {
  std::string name;
  bool lossless = true;
  std::function<FilterResult(std::string_view, std::string_view, int)> run;
  /// Set for PreAlignmentFilter cases: the batch sweep drives FilterBatch
  /// through it (null for free-function reference implementations).
  std::shared_ptr<PreAlignmentFilter> filter;
};

std::vector<FilterCase> MakeCases() {
  std::vector<FilterCase> cases;
  const auto add_filter = [&](std::shared_ptr<PreAlignmentFilter> f) {
    cases.push_back({std::string(f->name()), f->lossless(),
                     [f](std::string_view r, std::string_view g, int e) {
                       return f->Filter(r, g, e);
                     },
                     f});
  };
  add_filter(std::make_shared<GateKeeperFilter>());
  // The scalar reference implementation of the GateKeeper filtration —
  // differential against both the oracle and (by transitivity with
  // test_gatekeeper) the bit-parallel core.
  cases.push_back({"GateKeeperScalar", true,
                   [](std::string_view r, std::string_view g, int e) {
                     return GateKeeperScalar(r, g, e, GateKeeperParams{});
                   },
                   nullptr});
  {
    GateKeeperParams fpga;
    fpga.mode = GateKeeperMode::kOriginal;
    add_filter(std::make_shared<GateKeeperFilter>(fpga));
    cases.back().name = "GateKeeperFpga";
  }
  add_filter(std::make_shared<ShdFilter>());
  add_filter(std::make_shared<ShoujiFilter>());
  add_filter(std::make_shared<MagnetFilter>());
  add_filter(std::make_shared<SneakySnakeFilter>());
  add_filter(std::make_shared<GenAsmFilter>());
  return cases;
}

/// One grid cell: pairs with their oracle distances, generated once and
/// shared by every filter's sweep.
struct Cell {
  int length = 0;
  int e = 0;
  double indel_frac = 0.0;
  std::vector<SequencePair> pairs;
  std::vector<int> distance;  // Myers oracle
};

const std::vector<Cell>& Grid() {
  static const std::vector<Cell> grid = [] {
    std::vector<Cell> cells;
    MyersAligner oracle;
    for (const int length : kLengths) {
      for (const int e : kThresholds) {
        for (const double indel : kIndelFracs) {
          Cell cell;
          cell.length = length;
          cell.e = e;
          cell.indel_frac = indel;
          Rng rng(40000 + static_cast<std::uint64_t>(length) * 131 +
                  static_cast<std::uint64_t>(e) * 17 +
                  (indel > 0.0 ? 7 : 0));
          for (int t = 0; t < kPairsPerCell; ++t) {
            // Edits straddle the threshold so every cell carries both true
            // positives and true negatives.
            const int edits = static_cast<int>(
                rng.Uniform(static_cast<std::uint64_t>(e) + 4));
            cell.pairs.push_back(
                MakePairWithEdits(length, edits, indel, rng.NextU64()));
            cell.distance.push_back(
                oracle.Distance(cell.pairs.back().read,
                                cell.pairs.back().ref));
          }
          cells.push_back(std::move(cell));
        }
      }
    }
    return cells;
  }();
  return grid;
}

struct SweepCounts {
  std::uint64_t true_positives = 0;
  std::uint64_t false_rejects = 0;
  std::uint64_t true_negatives = 0;
  std::uint64_t false_accepts = 0;
};

const std::vector<FilterCase>& Cases() {
  static const std::vector<FilterCase> cases = MakeCases();
  return cases;
}

class DifferentialSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const FilterCase& Case() { return Cases()[GetParam()]; }
};

TEST_P(DifferentialSweep, FalseRejectContractHolds) {
  const FilterCase& fc = Case();
  SweepCounts total;
  for (const Cell& cell : Grid()) {
    for (std::size_t i = 0; i < cell.pairs.size(); ++i) {
      const SequencePair& p = cell.pairs[i];
      const bool within = cell.distance[i] <= cell.e;
      const bool accepted = fc.run(p.read, p.ref, cell.e).accept;
      if (within) {
        ++total.true_positives;
        if (!accepted) {
          ++total.false_rejects;
          // The paper's lossless contract is per pair — name the witness.
          EXPECT_FALSE(fc.lossless)
              << fc.name << " falsely rejected a pair with oracle distance "
              << cell.distance[i] << " <= e=" << cell.e << " (length "
              << cell.length << ", indel_frac " << cell.indel_frac
              << ", pair " << i << ")";
        }
      } else {
        ++total.true_negatives;
        if (accepted) ++total.false_accepts;
      }
    }
  }
  ASSERT_GT(total.true_positives, 1000u) << "grid lost its true positives";
  ASSERT_GT(total.true_negatives, 1000u) << "grid lost its true negatives";
  if (fc.lossless) {
    EXPECT_EQ(total.false_rejects, 0u) << fc.name;
  } else {
    EXPECT_LE(total.false_rejects * 1000,
              static_cast<std::uint64_t>(kBoundedBudgetPerMille) *
                  total.true_positives)
        << fc.name << ": " << total.false_rejects << " FR / "
        << total.true_positives << " TP";
    EXPECT_GT(total.false_rejects, 0u)
        << fc.name << " declared non-lossless but produced no false "
        << "rejects on the grid — revisit its lossless() contract";
  }
  RecordProperty("false_rejects", static_cast<int>(total.false_rejects));
  RecordProperty(
      "false_accept_per_mille",
      static_cast<int>(total.false_accepts * 1000 /
                       std::max<std::uint64_t>(1, total.true_negatives)));
}

// The batch path of every PreAlignmentFilter case must reproduce the
// scalar path's decisions and edit estimates pair for pair across the
// whole grid — so the FR/FA contracts asserted above transfer verbatim to
// FilterBatch, whichever kernel (scalar uint64 lanes, AVX2, or the decode
// fallback) dispatch selected.
TEST_P(DifferentialSweep, BatchPathMatchesScalarPath) {
  const FilterCase& fc = Case();
  if (fc.filter == nullptr) {
    GTEST_SKIP() << fc.name << " is a free-function reference (no batch API)";
  }
  std::uint64_t compared = 0;
  for (const Cell& cell : Grid()) {
    PairBlockStorage block(cell.length);
    for (const SequencePair& p : cell.pairs) block.Add(p.read, p.ref);
    std::vector<PairResult> results(block.size());
    fc.filter->FilterBatch(block.view(), cell.e, results.data());
    for (std::size_t i = 0; i < cell.pairs.size(); ++i) {
      const SequencePair& p = cell.pairs[i];
      const FilterResult scalar = fc.run(p.read, p.ref, cell.e);
      ASSERT_EQ(results[i].accept, scalar.accept ? 1 : 0)
          << fc.name << " length " << cell.length << " e " << cell.e
          << " pair " << i;
      ASSERT_EQ(results[i].bypassed, 0)
          << fc.name << " pair " << i << " (grid pairs are N-free)";
      ASSERT_EQ(results[i].edits, scalar.estimated_edits)
          << fc.name << " length " << cell.length << " e " << cell.e
          << " pair " << i;
      ++compared;
    }
  }
  ASSERT_GT(compared, 5000u);  // the whole grid really ran
}

// Not an assertion sweep: renders the per-threshold false-accept rates of
// every filter against the oracle, the accuracy table the benches report
// at paper scale.
TEST(DifferentialReport, FalseAcceptRatesByThreshold) {
  std::map<std::string, std::map<int, SweepCounts>> by_filter;
  for (const FilterCase& fc : Cases()) {
    for (const Cell& cell : Grid()) {
      SweepCounts& c = by_filter[fc.name][cell.e];
      for (std::size_t i = 0; i < cell.pairs.size(); ++i) {
        const bool within = cell.distance[i] <= cell.e;
        const bool accepted =
            fc.run(cell.pairs[i].read, cell.pairs[i].ref, cell.e).accept;
        if (within) {
          ++c.true_positives;
          c.false_rejects += accepted ? 0 : 1;
        } else {
          ++c.true_negatives;
          c.false_accepts += accepted ? 1 : 0;
        }
      }
    }
  }
  std::printf("%-18s", "filter");
  for (const int e : kThresholds) std::printf("  FA%%(e=%d)", e);
  std::printf("  FR(total)\n");
  for (const auto& [name, per_e] : by_filter) {
    std::printf("%-18s", name.c_str());
    std::uint64_t fr = 0;
    for (const int e : kThresholds) {
      const SweepCounts& c = per_e.at(e);
      fr += c.false_rejects;
      std::printf("  %8.2f",
                  100.0 * static_cast<double>(c.false_accepts) /
                      static_cast<double>(
                          std::max<std::uint64_t>(1, c.true_negatives)));
    }
    std::printf("  %9llu\n", static_cast<unsigned long long>(fr));
    // Every filter must separate: a perfect accept-everything "filter"
    // would show 100% false accepts at every threshold.
    const SweepCounts& strict = per_e.at(0);
    EXPECT_LT(strict.false_accepts, strict.true_negatives)
        << name << " never rejects anything at e=0";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, DifferentialSweep,
    ::testing::Range<std::size_t>(0, Cases().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name = Cases()[info.param].name;
      std::erase_if(name, [](char c) { return !std::isalnum(
                        static_cast<unsigned char>(c)); });
      return name;
    });

}  // namespace
}  // namespace gkgpu
