// Tests for the GPU execution simulator: device profiles, occupancy rules,
// kernel launch coverage, unified-memory migration accounting, and the
// power model.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "gpusim/device.hpp"

namespace gkgpu::gpusim {
namespace {

TEST(DevicePropsTest, PaperSetupsMatchStatedParameters) {
  const DeviceProperties p1 = MakeGtx1080Ti();
  EXPECT_EQ(p1.sm_count * p1.cores_per_sm, 3584);  // "3584 CUDA cores"
  EXPECT_EQ(p1.compute_major, 6);
  EXPECT_EQ(p1.compute_minor, 1);  // "CUDA compute capability ... 6.1"
  EXPECT_TRUE(p1.supports_prefetch());
  EXPECT_EQ(p1.global_mem_bytes, std::size_t{10} * 1024 * 1024 * 1024);
  EXPECT_EQ(p1.pcie_gen, 3);

  const DeviceProperties p2 = MakeTeslaK20X();
  EXPECT_EQ(p2.sm_count * p2.cores_per_sm, 2688);
  EXPECT_EQ(p2.compute_major, 3);
  EXPECT_EQ(p2.compute_minor, 5);  // "CUDA compute capability ... 3.5"
  EXPECT_FALSE(p2.supports_prefetch());  // "data prefetching is not supported"
  EXPECT_EQ(p2.global_mem_bytes, std::size_t{5} * 1024 * 1024 * 1024);
  EXPECT_EQ(p2.pcie_gen, 2);
  EXPECT_LT(p2.pcie_bytes_per_second(), p1.pcie_bytes_per_second());
}

TEST(OccupancyTest, PaperScenarioFortyEightRegs1024Threads) {
  // Sec. 5.4.1: 48 regs/thread at 1024 threads/block -> 50% theoretical
  // occupancy, register-limited.
  const OccupancyResult r =
      ComputeOccupancy(MakeGtx1080Ti(), 1024, 48, 0);
  EXPECT_EQ(r.active_warps_per_sm, 32);
  EXPECT_EQ(r.max_warps_per_sm, 64);
  EXPECT_DOUBLE_EQ(r.occupancy, 0.5);
  EXPECT_EQ(r.limited_by, OccupancyLimiter::kRegisters);
}

TEST(OccupancyTest, PaperScenario256ThreadsReachesSixtyThreePercent) {
  // Sec. 5.4.1: "maximum theoretical occupancy with 48 registers ... is
  // 63%, but threads per block should be at most 256".
  const OccupancyResult r = ComputeOccupancy(MakeGtx1080Ti(), 256, 48, 0);
  EXPECT_NEAR(r.occupancy, 0.63, 0.02);
}

TEST(OccupancyTest, FullOccupancyAtThirtyTwoRegs) {
  // "the maximum number of registers per thread is 32 for 100% occupancy".
  const OccupancyResult r = ComputeOccupancy(MakeGtx1080Ti(), 1024, 32, 0);
  EXPECT_DOUBLE_EQ(r.occupancy, 1.0);
}

TEST(DeviceTest, LaunchExecutesEveryThreadExactlyOnce) {
  Device dev(MakeGtx1080Ti(), 4);
  const LaunchConfig cfg{37, 256};
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(37 * 256));
  dev.Launch(cfg, KernelCost{}, 0.0, [&](const ThreadCtx& ctx) {
    hits[static_cast<std::size_t>(ctx.GlobalId())].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(DeviceTest, KernelTimeScalesWithWork) {
  Device dev(MakeGtx1080Ti(), 2);
  KernelCost small{100.0, 64.0, 48, 0};
  KernelCost big{10000.0, 64.0, 48, 0};
  const LaunchConfig cfg{1024, 1024};
  const double t_small =
      dev.Launch(cfg, small, 0.0, [](const ThreadCtx&) {});
  const double t_big = dev.Launch(cfg, big, 0.0, [](const ThreadCtx&) {});
  EXPECT_GT(t_big, t_small * 5);
}

TEST(DeviceTest, FaultSecondsExtendKernelTime) {
  Device dev(MakeGtx1080Ti(), 2);
  const LaunchConfig cfg{16, 256};
  const double clean =
      dev.Launch(cfg, KernelCost{}, 0.0, [](const ThreadCtx&) {});
  const double stalled =
      dev.Launch(cfg, KernelCost{}, 0.5, [](const ThreadCtx&) {});
  EXPECT_NEAR(stalled - clean, 0.5, 1e-6);
}

TEST(DeviceTest, AllocationTracksFreeMemory) {
  Device dev(MakeTeslaK20X(), 1);
  const std::size_t before = dev.FreeGlobalMem();
  {
    auto buf = dev.AllocateUnified(1 << 20);
    EXPECT_EQ(dev.FreeGlobalMem(), before - (1 << 20));
  }
  EXPECT_EQ(dev.FreeGlobalMem(), before);  // RAII releases
}

TEST(UnifiedMemoryTest, PrefetchThenFaultIsFree) {
  Device dev(MakeGtx1080Ti(), 1);
  auto buf = dev.AllocateUnified(UnifiedBuffer::kPageBytes * 8);
  const double prefetch_s = buf->PrefetchToDevice();
  EXPECT_GT(prefetch_s, 0.0);
  EXPECT_EQ(buf->device_resident_pages(), buf->pages());
  EXPECT_DOUBLE_EQ(buf->FaultToDevice(), 0.0);  // already resident
  EXPECT_EQ(buf->stats().page_faults, 0u);
}

TEST(UnifiedMemoryTest, DemandFaultingCostsMoreThanPrefetch) {
  Device dev(MakeGtx1080Ti(), 1);
  auto a = dev.AllocateUnified(UnifiedBuffer::kPageBytes * 64);
  auto b = dev.AllocateUnified(UnifiedBuffer::kPageBytes * 64);
  const double prefetch_s = a->PrefetchToDevice();
  const double fault_s = b->FaultToDevice();
  EXPECT_GT(fault_s, prefetch_s);  // per-fault latency on top of bandwidth
  EXPECT_EQ(b->stats().page_faults, 64u);
}

TEST(UnifiedMemoryTest, KeplerHasNoPrefetchAndBulkMigration) {
  Device dev(MakeTeslaK20X(), 1);
  auto buf = dev.AllocateUnified(UnifiedBuffer::kPageBytes * 16);
  EXPECT_DOUBLE_EQ(buf->PrefetchToDevice(), 0.0);  // unsupported: no-op
  EXPECT_EQ(buf->device_resident_pages(), 0u);
  const double fault_s = buf->FaultToDevice();  // whole-allocation migration
  EXPECT_GT(fault_s, 0.0);
  EXPECT_EQ(buf->device_resident_pages(), buf->pages());
  EXPECT_EQ(buf->stats().page_faults, 0u);  // no per-page fault servicing
}

TEST(UnifiedMemoryTest, RoundTripAccountsBothDirections) {
  Device dev(MakeGtx1080Ti(), 1);
  auto buf = dev.AllocateUnified(UnifiedBuffer::kPageBytes * 4);
  buf->PrefetchToDevice();
  const double back_s = buf->FaultToHost();
  EXPECT_GT(back_s, 0.0);
  EXPECT_GT(buf->stats().d2h_bytes, 0u);
  EXPECT_EQ(buf->device_resident_pages(), 0u);
}

TEST(PowerModelTest, IdleSetsMinActiveSetsMax) {
  PowerModel power(9000.0, 250000.0);
  power.SampleIdle(0.1);
  power.SampleKernel(0.6, 0.5);
  const PowerReport r = power.Report();
  EXPECT_NEAR(r.min_mw, 9000.0, 1.0);
  EXPECT_GT(r.max_mw, 100000.0);
  EXPECT_LT(r.max_mw, 250000.0);
  EXPECT_GT(r.avg_mw, r.min_mw);
  EXPECT_LT(r.avg_mw, r.max_mw);
}

TEST(PowerModelTest, HigherActivityDrawsMorePower) {
  PowerModel low(9000.0, 250000.0);
  PowerModel high(9000.0, 250000.0);
  low.SampleKernel(0.3, 0.5);
  high.SampleKernel(0.9, 0.5);
  EXPECT_GT(high.Report().max_mw, low.Report().max_mw);
}

TEST(SetupFactoriesTest, BuildRequestedCounts) {
  const auto s1 = MakeSetup1(3, 1);
  EXPECT_EQ(s1.size(), 3u);
  for (const auto& d : s1) EXPECT_EQ(d->props().name, "GeForce GTX 1080 Ti");
  const auto s2 = MakeSetup2(2, 1);
  EXPECT_EQ(s2.size(), 2u);
  for (const auto& d : s2) EXPECT_EQ(d->props().name, "Tesla K20X");
}

}  // namespace
}  // namespace gkgpu::gpusim
