// Tests for the GateKeeper filtration core: bit-parallel vs scalar
// reference equivalence, LUT vs bit-trick equivalence, the paper's Fig. 2/3
// leading/trailing improvement, 'N' bypass, and basic decision sanity.
#include "filters/gatekeeper.hpp"

#include <gtest/gtest.h>

#include <string>

#include "encode/encoded.hpp"
#include "filters/scalar_ref.hpp"
#include "sim/pairgen.hpp"
#include "util/rng.hpp"

namespace gkgpu {
namespace {

std::string RandomSeq(Rng& rng, std::size_t n) {
  std::string s(n, 'A');
  for (auto& c : s) c = kBases[rng.NextU64() & 0x3u];
  return s;
}

FilterResult RunBitParallel(const std::string& read, const std::string& ref,
                            int e, GateKeeperParams params) {
  GateKeeperFilter filter(params);
  return filter.Filter(read, ref, e);
}

TEST(GateKeeperTest, ExactMatchAcceptedAtEveryThreshold) {
  Rng rng(3);
  for (const int length : {16, 100, 150, 250}) {
    const std::string seq = RandomSeq(rng, static_cast<std::size_t>(length));
    for (const int e : {0, 1, 2, 5, 10}) {
      const FilterResult r = RunBitParallel(seq, seq, e, {});
      EXPECT_TRUE(r.accept) << "length " << length << " e " << e;
      EXPECT_EQ(r.estimated_edits, 0);
    }
  }
}

TEST(GateKeeperTest, ZeroThresholdIsExactMatch) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const std::string a = RandomSeq(rng, 100);
    std::string b = a;
    if (trial % 2 == 1) {
      const std::size_t p = rng.Uniform(100);
      b[p] = b[p] == 'A' ? 'T' : 'A';
    }
    const FilterResult r = RunBitParallel(a, b, 0, {});
    EXPECT_EQ(r.accept, a == b) << "trial " << trial;
  }
}

TEST(GateKeeperTest, SingleSubstitutionAcceptedAtE1) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::string a = RandomSeq(rng, 100);
    std::string b = a;
    const std::size_t p = rng.Uniform(100);
    b[p] = b[p] == 'C' ? 'G' : 'C';
    EXPECT_TRUE(RunBitParallel(a, b, 1, {}).accept) << "trial " << trial;
  }
}

TEST(GateKeeperTest, SingleIndelAcceptedAtE1) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const SequencePair p = MakePairWithEdits(100, 1, 1.0, rng.NextU64());
    EXPECT_TRUE(RunBitParallel(p.read, p.ref, 1, {}).accept)
        << "trial " << trial;
  }
}

TEST(GateKeeperTest, RandomPairsMostlyRejectedAtLowThresholds) {
  // Unrelated sequences differ in ~75% of positions.  GateKeeper is a
  // heuristic filter: the paper measures a ~7.7% false-accept rate on its
  // low-edit set at e = 2 (Sup. Table S.7), so we require >= 90% rejection
  // here, not perfection.
  Rng rng(11);
  int rejected = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const std::string a = RandomSeq(rng, 100);
    const std::string b = RandomSeq(rng, 100);
    rejected += RunBitParallel(a, b, 2, {}).accept ? 0 : 1;
  }
  EXPECT_GE(rejected, trials * 9 / 10);
}

TEST(GateKeeperTest, UndefinedPairsBypassFiltration) {
  // Find a pair the filter definitely rejects, then poison it with 'N':
  // the decision must flip to accept (bypass) regardless of content.
  Rng rng(13);
  std::string a;
  std::string b;
  do {
    a = RandomSeq(rng, 100);
    b = RandomSeq(rng, 100);
  } while (RunBitParallel(a, b, 2, {}).accept);
  a[50] = 'N';
  EXPECT_TRUE(RunBitParallel(a, b, 2, {}).accept);
  a[50] = 'A';
  ASSERT_FALSE(RunBitParallel(a, b, 2, {}).accept);
  b[10] = 'N';
  EXPECT_TRUE(RunBitParallel(a, b, 2, {}).accept);
}

// The paper's Fig. 2/3 scenario: an error at the trailing edge that the
// original GateKeeper hides (the insertion shift vacates trailing bits to
// 0) but the improved algorithm exposes.
TEST(GateKeeperTest, ImprovedModeCatchesBoundaryErrorsOriginalMisses) {
  Rng rng(17);
  int improved_rejects_more = 0;
  int original_rejects_not_improved = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const SequencePair p = MakePairWithEdits(
        100, 4 + static_cast<int>(rng.Uniform(8)), 0.5, rng.NextU64());
    GateKeeperParams improved;
    improved.mode = GateKeeperMode::kImproved;
    GateKeeperParams original;
    original.mode = GateKeeperMode::kOriginal;
    const bool acc_improved = RunBitParallel(p.read, p.ref, 2, improved).accept;
    const bool acc_original = RunBitParallel(p.read, p.ref, 2, original).accept;
    if (!acc_improved && acc_original) ++improved_rejects_more;
    if (acc_improved && !acc_original) ++original_rejects_not_improved;
  }
  // The improvement must reject pairs the original falsely accepts...
  EXPECT_GT(improved_rejects_more, 0);
  // ...and essentially never the other way around.
  EXPECT_LE(original_rejects_not_improved, improved_rejects_more / 10);
}

TEST(GateKeeperTest, BitParallelMatchesScalarReference) {
  Rng rng(19);
  for (int trial = 0; trial < 400; ++trial) {
    const int length = 20 + static_cast<int>(rng.Uniform(230));
    const int e = static_cast<int>(rng.Uniform(
        static_cast<std::uint64_t>(std::min(length / 2, 25)) + 1));
    const int edits = static_cast<int>(rng.Uniform(
        static_cast<std::uint64_t>(length) / 3 + 1));
    const SequencePair p =
        MakePairWithEdits(length, edits, 0.3, rng.NextU64());
    for (const GateKeeperMode mode :
         {GateKeeperMode::kImproved, GateKeeperMode::kOriginal}) {
      for (const CountMode count :
           {CountMode::kOneRuns, CountMode::kPopcount}) {
        GateKeeperParams params;
        params.mode = mode;
        params.count = count;
        const FilterResult bit = RunBitParallel(p.read, p.ref, e, params);
        const FilterResult scalar = GateKeeperScalar(p.read, p.ref, e, params);
        ASSERT_EQ(bit.accept, scalar.accept)
            << "trial " << trial << " length " << length << " e " << e;
        ASSERT_EQ(bit.estimated_edits, scalar.estimated_edits)
            << "trial " << trial << " length " << length << " e " << e;
      }
    }
  }
}

TEST(GateKeeperTest, LutPathMatchesBitTrickPath) {
  Rng rng(23);
  for (int trial = 0; trial < 300; ++trial) {
    const int length = 20 + static_cast<int>(rng.Uniform(400));
    const int e = static_cast<int>(rng.Uniform(13));
    const SequencePair p = MakePairWithEdits(
        length, static_cast<int>(rng.Uniform(30)), 0.3, rng.NextU64());
    GateKeeperParams tricks;
    GateKeeperParams luts;
    luts.use_lut = true;
    const FilterResult a = RunBitParallel(p.read, p.ref, e, tricks);
    const FilterResult b = RunBitParallel(p.read, p.ref, e, luts);
    ASSERT_EQ(a.accept, b.accept) << "trial " << trial;
    ASSERT_EQ(a.estimated_edits, b.estimated_edits) << "trial " << trial;
  }
}

TEST(GateKeeperTest, EncodedEntryPointMatchesStringEntryPoint) {
  Rng rng(29);
  GateKeeperFilter filter;
  for (int trial = 0; trial < 100; ++trial) {
    const SequencePair p = MakePairWithEdits(
        150, static_cast<int>(rng.Uniform(20)), 0.3, rng.NextU64());
    Word read_enc[kMaxEncodedWords];
    Word ref_enc[kMaxEncodedWords];
    EncodeSequence(p.read, read_enc);
    EncodeSequence(p.ref, ref_enc);
    const FilterResult via_string = filter.Filter(p.read, p.ref, 8);
    const FilterResult via_encoded =
        filter.FilterEncoded(read_enc, ref_enc, 150, 8);
    EXPECT_EQ(via_string.accept, via_encoded.accept);
    EXPECT_EQ(via_string.estimated_edits, via_encoded.estimated_edits);
  }
}

TEST(GateKeeperTest, EstimatedEditsTrackTrueEditsLoosely) {
  // The approximation is not exact but must be <= the planted edit count
  // for accepted pairs (it never over-counts a true alignment's errors).
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const int edits = static_cast<int>(rng.Uniform(6));
    const SequencePair p = MakePairWithEdits(100, edits, 0.3, rng.NextU64());
    const FilterResult r = RunBitParallel(p.read, p.ref, 10, {});
    ASSERT_TRUE(r.accept);
    EXPECT_LE(r.estimated_edits, edits) << "trial " << trial;
  }
}

TEST(GateKeeperCpuTest, BlockMatchesSingleFiltrations) {
  Rng rng(37);
  const int length = 100;
  const int e = 5;
  const std::size_t n = 2000;
  std::vector<SequencePair> pairs;
  PairBlockStorage block(length);
  for (std::size_t i = 0; i < n; ++i) {
    pairs.push_back(MakePairWithEdits(
        length, static_cast<int>(rng.Uniform(20)), 0.3, rng.NextU64()));
    block.Add(pairs[i].read, pairs[i].ref);
  }
  for (const unsigned threads : {1u, 4u, 12u}) {
    GateKeeperCpu cpu({}, threads);
    std::vector<PairResult> results(n);
    cpu.FilterBlock(block.view(), e, results.data());
    GateKeeperFilter single;
    for (std::size_t i = 0; i < n; ++i) {
      const FilterResult expected =
          single.Filter(pairs[i].read, pairs[i].ref, e);
      ASSERT_EQ(results[i].accept, expected.accept ? 1 : 0) << "i " << i;
      ASSERT_EQ(results[i].edits, expected.estimated_edits) << "i " << i;
      ASSERT_EQ(results[i].bypassed, 0) << "i " << i;
    }
  }
}

}  // namespace
}  // namespace gkgpu
