// Scalar-vs-SIMD equivalence for the batch filtration core.
//
// The contracts asserted here are the refactor's safety net:
//   * the uint64_t-lane pipeline (simd::GateKeeperFiltration64) is
//     bit-identical — decisions *and* estimated edits — to the 32-bit
//     reference core over random lengths (including every tail-word
//     shape), thresholds, and both algorithm modes;
//   * the scalar, AVX2 (4-lane + scalar tail) and AVX-512 (8-lane +
//     AVX2 tail) range kernels produce identical PairResult arrays on
//     every block shape, including 'N'-bypass pairs and odd group
//     remainders;
//   * the batch SneakySnake kernels — encoded-lane maze build plus the
//     u64 traversal, scalar and AVX2 — are bit-identical to the
//     character-domain SneakySnakeFilter::Filter on every length and
//     candidate-shape block;
//   * FilterBatch on every overriding filter equals its per-pair
//     Filter() on non-bypassed pairs and the bypass slot otherwise;
//   * candidate-shape blocks (encoded genome, strand bits, reference 'N'
//     windows) reproduce the per-candidate kernel semantics exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "encode/encoded.hpp"
#include "encode/revcomp.hpp"
#include "filters/gatekeeper.hpp"
#include "filters/pair_block.hpp"
#include "filters/shd.hpp"
#include "filters/shouji.hpp"
#include "filters/sneakysnake.hpp"
#include "simd/bitops64.hpp"
#include "simd/dispatch.hpp"
#include "simd/gatekeeper_batch.hpp"
#include "simd/snake_batch.hpp"
#include "util/rng.hpp"

namespace gkgpu {
namespace {

// Lengths chosen to hit every tail-word geometry: 16-base encoded-word
// boundaries, 32-base mask-word boundaries, 64-bit lane boundaries, the
// singleton, the paper's 100 bp, and the library maximum.
constexpr int kLengths[] = {1,  5,   15,  16,  17,  31,  32,  33,
                            47, 63,  64,  65,  99,  100, 127, 128,
                            200, 256, 300, 511, 512};

std::string RandomSeq(Rng& rng, int length) {
  std::string s(static_cast<std::size_t>(length), 'A');
  for (char& c : s) c = kBases[rng.Uniform(4)];
  return s;
}

/// A reference-like partner: mostly the read with a few substitutions, so
/// accept and reject paths both occur; occasionally fully random.
std::string MutatePartner(Rng& rng, const std::string& read, int edits) {
  if (rng.Uniform(4) == 0) return RandomSeq(rng, static_cast<int>(read.size()));
  std::string ref = read;
  for (int k = 0; k < edits; ++k) {
    const std::size_t p = rng.Uniform(ref.size());
    ref[p] = kBases[rng.Uniform(4)];
  }
  return ref;
}

void InjectN(Rng& rng, std::string* s) {
  (*s)[rng.Uniform(s->size())] = 'N';
}

int RandomThreshold(Rng& rng, int length) {
  const int bound = std::min(kMaxErrorThreshold, length - 1);
  return bound <= 0 ? 0 : static_cast<int>(rng.Uniform(
                              static_cast<std::uint64_t>(bound) + 1));
}

void ExpectSameResult(const PairResult& a, const PairResult& b,
                      const char* what, std::size_t i) {
  ASSERT_EQ(a.accept, b.accept) << what << " pair " << i;
  ASSERT_EQ(a.bypassed, b.bypassed) << what << " pair " << i;
  ASSERT_EQ(a.edits, b.edits) << what << " pair " << i;
}

TEST(Simd64Test, Filtration64MatchesReferenceCoreOverTheGrid) {
  Rng rng(90001);
  for (const int length : kLengths) {
    for (int trial = 0; trial < 24; ++trial) {
      const int e = RandomThreshold(rng, length);
      const std::string read = RandomSeq(rng, length);
      const std::string ref =
          MutatePartner(rng, read, static_cast<int>(rng.Uniform(
                                       static_cast<std::uint64_t>(e) + 4)));
      Word read_enc[kMaxEncodedWords];
      Word ref_enc[kMaxEncodedWords];
      EncodeSequence(read, read_enc);
      EncodeSequence(ref, ref_enc);
      GateKeeperParams params;
      for (const GateKeeperMode mode :
           {GateKeeperMode::kImproved, GateKeeperMode::kOriginal}) {
        for (const CountMode count :
             {CountMode::kOneRuns, CountMode::kPopcount}) {
          params.mode = mode;
          params.count = count;
          const FilterResult expected =
              GateKeeperFiltration(read_enc, ref_enc, length, e, params);
          const FilterResult got =
              simd::GateKeeperFiltration64(read_enc, ref_enc, length, e,
                                           params);
          ASSERT_EQ(got.accept, expected.accept)
              << "length " << length << " e " << e << " mode "
              << static_cast<int>(mode);
          ASSERT_EQ(got.estimated_edits, expected.estimated_edits)
              << "length " << length << " e " << e << " mode "
              << static_cast<int>(mode);
        }
      }
    }
  }
}

TEST(SimdBatchTest, ScalarAndAvx2RangesBitIdentical) {
  // When dispatch resolves to scalar — kernels not compiled (non-x86
  // build), CPU without AVX2, or the GKGPU_NO_AVX2 escape hatch (the CI
  // forced-scalar job) — the AVX2 leg must not run at all: the point of
  // that job is proving the portable path alone, and on a vector-less
  // machine the call would be illegal anyway.  The real comparison runs
  // on every AVX2-dispatching CI machine.
  if (simd::ActiveLevel() != simd::Level::kAvx2) {
    GTEST_SKIP() << "AVX2 kernels not dispatched on this build/machine";
  }
  Rng rng(90002);
  for (const int length : kLengths) {
    const int e = RandomThreshold(rng, length);
    PairBlockStorage block(length);
    // 23 pairs: five AVX2 groups plus a 3-pair scalar tail; sprinkle 'N'
    // pairs so bypassed lanes mix with live lanes inside one group.
    std::vector<std::string> reads, refs;
    for (int i = 0; i < 23; ++i) {
      std::string read = RandomSeq(rng, length);
      std::string ref = MutatePartner(rng, read, static_cast<int>(
                                                     rng.Uniform(6)));
      if (rng.Uniform(5) == 0) InjectN(rng, rng.Uniform(2) == 0 ? &read : &ref);
      block.Add(read, ref);
      reads.push_back(std::move(read));
      refs.push_back(std::move(ref));
    }
    for (const GateKeeperMode mode :
         {GateKeeperMode::kImproved, GateKeeperMode::kOriginal}) {
      GateKeeperParams params;
      params.mode = mode;
      std::vector<PairResult> scalar(block.size());
      std::vector<PairResult> avx2(block.size());
      simd::GateKeeperFilterRangeScalar(block.view(), 0, block.size(), e,
                                        params, scalar.data());
      simd::GateKeeperFilterRangeAvx2(block.view(), 0, block.size(), e,
                                      params, avx2.data());
      for (std::size_t i = 0; i < block.size(); ++i) {
        ExpectSameResult(avx2[i], scalar[i], "scalar-vs-avx2", i);
      }
    }
  }
}

TEST(SimdBatchTest, ScalarAndAvx512RangesBitIdentical) {
  // Same contract one tier up: the 8-lane kernel (plus its AVX2 tail for
  // the odd remainder) against the portable path.  Only runs where
  // dispatch actually resolves to AVX-512 — the GKGPU_NO_AVX512 CI leg
  // proves the AVX2 story on the same machine.
  if (simd::ActiveLevel() != simd::Level::kAvx512) {
    GTEST_SKIP() << "AVX-512 kernels not dispatched on this build/machine";
  }
  Rng rng(90006);
  for (const int length : kLengths) {
    const int e = RandomThreshold(rng, length);
    PairBlockStorage block(length);
    // 27 pairs: three 8-lane groups plus a 3-pair tail that exercises the
    // AVX2-then-scalar fallback chain; 'N' pairs mix bypassed lanes into
    // live groups.
    for (int i = 0; i < 27; ++i) {
      std::string read = RandomSeq(rng, length);
      std::string ref = MutatePartner(rng, read, static_cast<int>(
                                                     rng.Uniform(6)));
      if (rng.Uniform(5) == 0) InjectN(rng, rng.Uniform(2) == 0 ? &read : &ref);
      block.Add(read, ref);
    }
    for (const GateKeeperMode mode :
         {GateKeeperMode::kImproved, GateKeeperMode::kOriginal}) {
      GateKeeperParams params;
      params.mode = mode;
      std::vector<PairResult> scalar(block.size());
      std::vector<PairResult> avx512(block.size());
      simd::GateKeeperFilterRangeScalar(block.view(), 0, block.size(), e,
                                        params, scalar.data());
      simd::GateKeeperFilterRangeAvx512(block.view(), 0, block.size(), e,
                                        params, avx512.data());
      for (std::size_t i = 0; i < block.size(); ++i) {
        ExpectSameResult(avx512[i], scalar[i], "scalar-vs-avx512", i);
      }
    }
  }
}

TEST(SnakeBatchTest, FilterBatchMatchesPerPairFilterOverTheGrid) {
  // The dispatched batch SneakySnake (encoded maze build + u64 traversal,
  // AVX2 lane-parallel where active) against the character-domain
  // per-pair Filter() — decisions and edit estimates both.
  Rng rng(90007);
  const SneakySnakeFilter snake;
  for (const int length : kLengths) {
    for (int trial = 0; trial < 4; ++trial) {
      const int e = RandomThreshold(rng, length);
      PairBlockStorage block(length);
      std::vector<std::string> reads, refs;
      for (int i = 0; i < 23; ++i) {
        std::string read = RandomSeq(rng, length);
        std::string ref = MutatePartner(
            rng, read, static_cast<int>(rng.Uniform(
                           static_cast<std::uint64_t>(e) + 3)));
        if (rng.Uniform(6) == 0) {
          InjectN(rng, rng.Uniform(2) == 0 ? &read : &ref);
        }
        block.Add(read, ref);
        reads.push_back(std::move(read));
        refs.push_back(std::move(ref));
      }
      std::vector<PairResult> results(block.size());
      snake.FilterBatch(block.view(), e, results.data());
      for (std::size_t i = 0; i < block.size(); ++i) {
        if (ContainsUnknown(reads[i]) || ContainsUnknown(refs[i])) {
          EXPECT_EQ(results[i].accept, 1) << "length " << length << " " << i;
          EXPECT_EQ(results[i].bypassed, 1)
              << "length " << length << " " << i;
          continue;
        }
        const FilterResult expected = snake.Filter(reads[i], refs[i], e);
        EXPECT_EQ(results[i].accept, expected.accept ? 1 : 0)
            << "length " << length << " e " << e << " pair " << i;
        EXPECT_EQ(results[i].edits, expected.estimated_edits)
            << "length " << length << " e " << e << " pair " << i;
        EXPECT_EQ(results[i].bypassed, 0) << "length " << length << " " << i;
      }
    }
  }
}

TEST(SnakeBatchTest, ScalarAndAvx2SnakeRangesBitIdentical) {
  // Explicit scalar-vs-AVX2 comparison of the snake range kernels (the
  // grid test above exercises whichever tier dispatch picked).  Any
  // vector tier implies the CPU runs AVX2, so only the forced-scalar /
  // non-x86 configurations skip.
  if (simd::ActiveLevel() == simd::Level::kScalar) {
    GTEST_SKIP() << "AVX2 kernels not dispatched on this build/machine";
  }
  Rng rng(90008);
  for (const int length : kLengths) {
    const int e = RandomThreshold(rng, length);
    PairBlockStorage block(length);
    for (int i = 0; i < 23; ++i) {
      std::string read = RandomSeq(rng, length);
      std::string ref = MutatePartner(rng, read, static_cast<int>(
                                                     rng.Uniform(6)));
      if (rng.Uniform(5) == 0) InjectN(rng, rng.Uniform(2) == 0 ? &read : &ref);
      block.Add(read, ref);
    }
    std::vector<PairResult> scalar(block.size());
    std::vector<PairResult> avx2(block.size());
    simd::SneakySnakeFilterRangeScalar(block.view(), 0, block.size(), e,
                                       scalar.data());
    simd::SneakySnakeFilterRangeAvx2(block.view(), 0, block.size(), e,
                                     avx2.data());
    for (std::size_t i = 0; i < block.size(); ++i) {
      ExpectSameResult(avx2[i], scalar[i], "snake-scalar-vs-avx2", i);
    }
  }
}

TEST(SnakeBatchTest, CandidateBlocksMatchTheScalarRange) {
  // Candidate-shaped blocks (encoded genome windows, strand bits,
  // reference 'N' masks) through the dispatched snake kernel against the
  // portable range — covering the lane-parallel window gather feeding the
  // maze build.
  Rng rng(90009);
  const int length = 100;
  const int e = 5;
  std::string genome = RandomSeq(rng, 4000);
  for (int i = 1500; i < 1530; ++i) genome[static_cast<std::size_t>(i)] = 'N';
  const ReferenceEncoding ref = EncodeReference(genome);

  const int n_reads = 12;
  std::vector<Word> read_table(static_cast<std::size_t>(n_reads) *
                               static_cast<std::size_t>(EncodedWords(length)));
  std::vector<std::uint8_t> read_has_n(n_reads, 0);
  for (int r = 0; r < n_reads; ++r) {
    std::string s = RandomSeq(rng, length);
    if (r == 5) InjectN(rng, &s);
    read_has_n[static_cast<std::size_t>(r)] =
        EncodeSequence(s, read_table.data() +
                              static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(
                                      EncodedWords(length)))
            ? 1
            : 0;
  }
  std::vector<CandidatePair> candidates;
  for (int i = 0; i < 200; ++i) {
    CandidatePair c;
    c.read_index = static_cast<std::uint32_t>(rng.Uniform(n_reads));
    c.strand = static_cast<std::uint8_t>(rng.Uniform(2));
    c.ref_pos = static_cast<std::int64_t>(
        rng.Uniform(static_cast<std::uint64_t>(genome.size()) - length));
    candidates.push_back(c);
  }
  PairBlock block;
  block.size = candidates.size();
  block.length = length;
  block.words_per_seq = EncodedWords(length);
  block.reads_enc = read_table.data();
  block.bypass = read_has_n.data();
  block.candidates = candidates.data();
  block.ref_words = ref.words.data();
  block.ref_n_mask = ref.n_mask.data();
  block.ref_len = ref.length;

  std::vector<PairResult> dispatched(block.size);
  std::vector<PairResult> scalar(block.size);
  simd::SneakySnakeFilterRange(block, 0, block.size, e, dispatched.data());
  simd::SneakySnakeFilterRangeScalar(block, 0, block.size, e, scalar.data());
  for (std::size_t i = 0; i < block.size; ++i) {
    ExpectSameResult(dispatched[i], scalar[i], "snake-candidate", i);
    if (read_has_n[candidates[i].read_index] != 0 ||
        ref.RangeHasUnknown(candidates[i].ref_pos, length)) {
      EXPECT_EQ(dispatched[i].bypassed, 1) << i;
    } else {
      EXPECT_EQ(dispatched[i].bypassed, 0) << i;
    }
  }
}

TEST(FilterBatchTest, OverridingFiltersMatchTheirScalarReference) {
  Rng rng(90003);
  const GateKeeperFilter gk;
  GateKeeperParams fpga;
  fpga.mode = GateKeeperMode::kOriginal;
  fpga.bypass_undefined = false;
  const GateKeeperFilter gk_fpga(fpga);
  const ShdFilter shd;
  const ShoujiFilter shouji;
  const SneakySnakeFilter snake;
  struct Case {
    const PreAlignmentFilter* filter;
    bool mark_undefined;  // block builder's bypass policy
  };
  const Case cases[] = {
      {&gk, true},
      // The FPGA baseline has no bypass mechanism: blocks built without
      // bypass bits, 'N' filters as its 'A' substitution — exactly what
      // the scalar Filter() does with bypass_undefined=false.
      {&gk_fpga, false},
      {&shd, true},
      {&shouji, true},
      {&snake, true},
  };
  for (const int length : {17, 64, 100, 150}) {
    for (const Case& c : cases) {
      const int e = std::min(8, std::max(0, length / 12));
      PairBlockStorage block(length);
      std::vector<std::string> reads, refs;
      for (int i = 0; i < 40; ++i) {
        std::string read = RandomSeq(rng, length);
        std::string ref = MutatePartner(
            rng, read, static_cast<int>(rng.Uniform(
                           static_cast<std::uint64_t>(e) + 3)));
        if (i % 7 == 0) InjectN(rng, i % 14 == 0 ? &read : &ref);
        block.Add(read, ref, c.mark_undefined);
        reads.push_back(std::move(read));
        refs.push_back(std::move(ref));
      }
      std::vector<PairResult> results(block.size());
      c.filter->FilterBatch(block.view(), e, results.data());
      for (std::size_t i = 0; i < block.size(); ++i) {
        const bool undefined =
            ContainsUnknown(reads[i]) || ContainsUnknown(refs[i]);
        if (c.mark_undefined && undefined) {
          EXPECT_EQ(results[i].accept, 1) << c.filter->name() << " " << i;
          EXPECT_EQ(results[i].bypassed, 1) << c.filter->name() << " " << i;
          continue;
        }
        // Non-bypassed pairs must equal the scalar reference.  Under a
        // no-bypass builder an undefined pair filters on its encoded
        // ('N' -> 'A') form, which is what the FPGA-mode scalar Filter()
        // computes too.
        const FilterResult expected =
            c.filter->Filter(reads[i], refs[i], e);
        EXPECT_EQ(results[i].accept, expected.accept ? 1 : 0)
            << c.filter->name() << " " << i;
        EXPECT_EQ(results[i].bypassed, 0) << c.filter->name() << " " << i;
        EXPECT_EQ(results[i].edits, expected.estimated_edits)
            << c.filter->name() << " " << i;
      }
    }
  }
}

TEST(CandidateBlockTest, WindowsStrandsAndGenomeNMatchPerPairSemantics) {
  Rng rng(90004);
  const int length = 100;
  const int e = 5;
  // A genome with an 'N' patch in the middle: windows overlapping it must
  // bypass, windows elsewhere must filter.
  std::string genome = RandomSeq(rng, 4000);
  for (int i = 1500; i < 1530; ++i) genome[static_cast<std::size_t>(i)] = 'N';
  const ReferenceEncoding ref = EncodeReference(genome);

  const int n_reads = 12;
  std::vector<std::string> reads;
  std::vector<Word> read_table(static_cast<std::size_t>(n_reads) *
                               static_cast<std::size_t>(EncodedWords(length)));
  std::vector<std::uint8_t> read_has_n(n_reads, 0);
  for (int r = 0; r < n_reads; ++r) {
    std::string s = RandomSeq(rng, length);
    if (r == 5) InjectN(rng, &s);
    read_has_n[static_cast<std::size_t>(r)] =
        EncodeSequence(s, read_table.data() +
                              static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(
                                      EncodedWords(length)))
            ? 1
            : 0;
    reads.push_back(std::move(s));
  }

  std::vector<CandidatePair> candidates;
  for (int i = 0; i < 200; ++i) {
    CandidatePair c;
    c.read_index = static_cast<std::uint32_t>(rng.Uniform(n_reads));
    c.strand = static_cast<std::uint8_t>(rng.Uniform(2));
    c.ref_pos = static_cast<std::int64_t>(
        rng.Uniform(static_cast<std::uint64_t>(genome.size()) - length));
    candidates.push_back(c);
  }

  PairBlock block;
  block.size = candidates.size();
  block.length = length;
  block.words_per_seq = EncodedWords(length);
  block.reads_enc = read_table.data();
  block.bypass = read_has_n.data();
  block.candidates = candidates.data();
  block.ref_words = ref.words.data();
  block.ref_n_mask = ref.n_mask.data();
  block.ref_len = ref.length;

  GateKeeperParams params;
  std::vector<PairResult> results(block.size);
  simd::GateKeeperFilterRange(block, 0, block.size, e, params,
                              results.data());

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const CandidatePair c = candidates[i];
    if (read_has_n[c.read_index] != 0 ||
        ref.RangeHasUnknown(c.ref_pos, length)) {
      EXPECT_EQ(results[i].bypassed, 1) << i;
      EXPECT_EQ(results[i].accept, 1) << i;
      continue;
    }
    Word window[kMaxEncodedWords];
    ref.ExtractSegment(c.ref_pos, length, window);
    const Word* read_enc =
        read_table.data() + static_cast<std::size_t>(c.read_index) *
                                static_cast<std::size_t>(EncodedWords(length));
    Word rc_enc[kMaxEncodedWords];
    if (c.strand != 0) {
      ReverseComplementEncoded(read_enc, length, rc_enc);
      read_enc = rc_enc;
    }
    const FilterResult expected =
        GateKeeperFiltration(read_enc, window, length, e, params);
    EXPECT_EQ(results[i].accept, expected.accept ? 1 : 0) << i;
    EXPECT_EQ(results[i].edits, expected.estimated_edits) << i;
    EXPECT_EQ(results[i].bypassed, 0) << i;
  }
}

TEST(RawBlockTest, DeviceSideEncodingMatchesHostEncodedBlocks) {
  Rng rng(90005);
  const int length = 100;
  const int e = 4;
  const int n = 30;
  std::string raw_reads, raw_refs;
  PairBlockStorage encoded(length);
  for (int i = 0; i < n; ++i) {
    std::string read = RandomSeq(rng, length);
    std::string ref = MutatePartner(rng, read,
                                    static_cast<int>(rng.Uniform(7)));
    if (i % 9 == 0) InjectN(rng, &read);
    encoded.Add(read, ref);
    raw_reads += read;
    raw_refs += ref;
  }
  PairBlock raw;
  raw.size = n;
  raw.length = length;
  raw.words_per_seq = EncodedWords(length);
  raw.raw_reads = raw_reads.data();
  raw.raw_refs = raw_refs.data();

  GateKeeperParams params;
  std::vector<PairResult> from_raw(n);
  std::vector<PairResult> from_encoded(n);
  simd::GateKeeperFilterRange(raw, 0, raw.size, e, params, from_raw.data());
  simd::GateKeeperFilterRange(encoded.view(), 0, encoded.size(), e, params,
                              from_encoded.data());
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    ExpectSameResult(from_raw[i], from_encoded[i], "raw-vs-encoded", i);
  }
}

}  // namespace
}  // namespace gkgpu
