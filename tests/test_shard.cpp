// Tests for shard planning (mapper/shard.hpp) and the sharded seeding
// path: chromosome-group partitioning under a byte budget, the persisted
// plan validator, shard lookup, and the property the whole design rests
// on — a forced multi-shard mapper produces the exact candidate set and
// the exact SAM of a monolithic one, including reads at chromosome and
// shard edges.
#include "mapper/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "mapper/mapper.hpp"
#include "mapper/sam.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"

namespace gkgpu {
namespace {

ReferenceSet MakeReference(const std::vector<std::int64_t>& lengths) {
  ReferenceSet ref;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    ref.Add("chr" + std::to_string(i + 1),
            GenerateGenome(static_cast<std::size_t>(lengths[i]), 40 + i));
  }
  return ref;
}

TEST(ShardPlanTest, DefaultBudgetIsOneShard) {
  const ReferenceSet ref = MakeReference({1000, 2000, 1500});
  const ShardPlan plan = ShardPlan::Partition(ref);
  ASSERT_EQ(plan.shard_count(), 1u);
  EXPECT_EQ(plan.shard(0).chrom_begin, 0u);
  EXPECT_EQ(plan.shard(0).chrom_end, 3u);
  EXPECT_EQ(plan.shard(0).text_offset, 0);
  EXPECT_EQ(plan.shard(0).text_length, 4500);
  EXPECT_EQ(plan.total_length(), 4500);
}

TEST(ShardPlanTest, GreedyFirstFitRespectsTheBudget) {
  const ReferenceSet ref = MakeReference({1000, 2000, 1500, 900});
  const ShardPlan plan = ShardPlan::Partition(ref, 3000);
  ASSERT_EQ(plan.shard_count(), 2u);
  EXPECT_EQ(plan.shard(0).chrom_begin, 0u);
  EXPECT_EQ(plan.shard(0).chrom_end, 2u);
  EXPECT_EQ(plan.shard(0).text_length, 3000);
  EXPECT_EQ(plan.shard(1).chrom_begin, 2u);
  EXPECT_EQ(plan.shard(1).chrom_end, 4u);
  EXPECT_EQ(plan.shard(1).text_offset, 3000);
  EXPECT_EQ(plan.shard(1).text_length, 2400);
  // Shards tile the concatenated text with no gaps.
  EXPECT_EQ(plan.total_length(), ref.length());
}

TEST(ShardPlanTest, EveryChromosomeItsOwnShardUnderATightBudget) {
  const ReferenceSet ref = MakeReference({800, 600, 700});
  const ShardPlan plan = ShardPlan::Partition(ref, 800);
  ASSERT_EQ(plan.shard_count(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(plan.shard(s).chrom_begin, s);
    EXPECT_EQ(plan.shard(s).chrom_end, s + 1);
    EXPECT_EQ(plan.shard(s).text_offset, ref.chromosome(s).offset);
    EXPECT_EQ(plan.shard(s).text_length, ref.chromosome(s).length);
  }
}

TEST(ShardPlanTest, OversizedChromosomeIsNamedInTheError) {
  const ReferenceSet ref = MakeReference({500, 1200, 400});
  EXPECT_THROW(
      {
        try {
          ShardPlan::Partition(ref, 1000);
        } catch (const std::invalid_argument& e) {
          EXPECT_NE(std::string(e.what()).find("chr2"), std::string::npos)
              << e.what();
          throw;
        }
      },
      std::invalid_argument);
}

TEST(ShardPlanTest, RejectsEmptyReferenceAndOversizedBudget) {
  EXPECT_THROW(ShardPlan::Partition(ReferenceSet()), std::invalid_argument);
  const ReferenceSet ref = MakeReference({100});
  EXPECT_THROW(ShardPlan::Partition(ref, std::int64_t{1} << 40),
               std::invalid_argument);
}

TEST(ShardPlanTest, ShardOfResolvesBoundaries) {
  const ReferenceSet ref = MakeReference({1000, 1000, 1000});
  const ShardPlan plan = ShardPlan::Partition(ref, 1000);
  ASSERT_EQ(plan.shard_count(), 3u);
  EXPECT_EQ(plan.ShardOf(0), 0u);
  EXPECT_EQ(plan.ShardOf(999), 0u);
  EXPECT_EQ(plan.ShardOf(1000), 1u);
  EXPECT_EQ(plan.ShardOf(1999), 1u);
  EXPECT_EQ(plan.ShardOf(2000), 2u);
  EXPECT_EQ(plan.ShardOf(2999), 2u);
}

TEST(ShardPlanTest, FromShardsAcceptsItsOwnPartitionAndRejectsDamage) {
  const ReferenceSet ref = MakeReference({1000, 2000, 1500});
  const ShardPlan plan = ShardPlan::Partition(ref, 3000);
  const ShardPlan rebuilt = ShardPlan::FromShards(plan.shards(), ref);
  ASSERT_EQ(rebuilt.shard_count(), plan.shard_count());
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    EXPECT_EQ(rebuilt.shard(s).text_offset, plan.shard(s).text_offset);
    EXPECT_EQ(rebuilt.shard(s).text_length, plan.shard(s).text_length);
  }

  // A gap in the chromosome coverage.
  std::vector<ShardInfo> gap = plan.shards();
  gap.front().chrom_end -= 1;
  EXPECT_THROW(ShardPlan::FromShards(gap, ref), std::invalid_argument);
  // A slice that disagrees with the chromosome table.
  std::vector<ShardInfo> skew = plan.shards();
  skew.back().text_length += 8;
  EXPECT_THROW(ShardPlan::FromShards(skew, ref), std::invalid_argument);
  // Dropping the tail shard leaves chromosomes uncovered.
  std::vector<ShardInfo> short_plan(plan.shards().begin(),
                                    plan.shards().end() - 1);
  EXPECT_THROW(ShardPlan::FromShards(short_plan, ref),
               std::invalid_argument);
}

// The byte-identity property.  Shard boundaries are chromosome
// boundaries and junction-spanning windows are dropped at seeding time,
// so the merged per-shard candidates must equal the monolithic ones —
// candidate for candidate, and therefore SAM byte for SAM byte.
class ShardedMappingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ref_ = MakeReference({6000, 5000, 4000, 5000});
    config_.k = 8;
    config_.read_length = 64;
    config_.error_threshold = 3;
  }

  std::vector<std::string> EdgeAndBodyReads() const {
    const std::string_view text = ref_.text();
    std::vector<std::string> reads;
    for (const ChromosomeInfo& c : ref_.chromosomes()) {
      const auto at = [&](std::int64_t pos) {
        reads.emplace_back(text.substr(static_cast<std::size_t>(pos), 64));
      };
      at(c.offset);                    // first window of the chromosome
      at(c.offset + c.length - 64);    // last window
      at(c.offset + c.length / 2);     // interior
      if (c.offset + c.length < ref_.length()) {
        at(c.offset + c.length - 32);  // spans the junction: maps nowhere
      }
    }
    const auto sim = SimulateReadSequences(text, 200, 64,
                                           ReadErrorProfile::Illumina(), 71);
    reads.insert(reads.end(), sim.begin(), sim.end());
    return reads;
  }

  ReferenceSet ref_;
  MapperConfig config_;
};

TEST_F(ShardedMappingTest, CandidatesMatchMonolithicExactly) {
  ReadMapper mono(ref_, config_);
  MapperConfig sharded_cfg = config_;
  sharded_cfg.shard_max_bp = 6000;  // every chromosome its own shard
  ReadMapper sharded(ref_, sharded_cfg);
  ASSERT_EQ(mono.index().shard_count(), 1u);
  ASSERT_EQ(sharded.index().shard_count(), 4u);

  std::vector<std::int64_t> a, b;
  for (const std::string& read : EdgeAndBodyReads()) {
    a.clear();
    b.clear();
    mono.CollectCandidates(read, &a);
    sharded.CollectCandidates(read, &b);
    EXPECT_EQ(a, b) << "candidate sets diverge for read " << read;
  }
}

TEST_F(ShardedMappingTest, SamOutputIsByteIdentical) {
  const std::vector<std::string> reads = EdgeAndBodyReads();
  std::vector<std::string> names;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    names.push_back("r" + std::to_string(i));
  }
  const auto render = [&](const MapperConfig& cfg) {
    ReadMapper mapper(ref_, cfg);
    std::vector<MappingRecord> records;
    mapper.MapReads(reads, nullptr, &records);
    std::ostringstream sam;
    WriteSamHeader(sam, mapper.reference(), "");
    WriteSamRecordsMultiChrom(sam, reads, names, records,
                              mapper.reference());
    return sam.str();
  };
  const std::string mono = render(config_);
  MapperConfig sharded_cfg = config_;
  sharded_cfg.shard_max_bp = 11000;  // two chromosomes per shard
  EXPECT_EQ(render(sharded_cfg), mono);
  sharded_cfg.shard_max_bp = 6000;  // four shards
  EXPECT_EQ(render(sharded_cfg), mono);
  EXPECT_FALSE(mono.empty());
}

TEST_F(ShardedMappingTest, ShardCandidateTallySumsToTotal) {
  MapperConfig sharded_cfg = config_;
  sharded_cfg.shard_max_bp = 6000;
  ReadMapper mapper(ref_, sharded_cfg);
  const MappingStats stats = mapper.MapReads(EdgeAndBodyReads(), nullptr);
  ASSERT_EQ(stats.shard_candidates.size(), 4u);
  std::uint64_t sum = 0;
  for (const std::uint64_t c : stats.shard_candidates) sum += c;
  EXPECT_EQ(sum, stats.candidates_total);
  EXPECT_GT(stats.candidates_total, 0u);

  // Single-shard runs carry no per-shard breakdown.
  ReadMapper mono(ref_, config_);
  const MappingStats mono_stats = mono.MapReads(EdgeAndBodyReads(), nullptr);
  EXPECT_TRUE(mono_stats.shard_candidates.empty());
}

TEST_F(ShardedMappingTest, ConcurrentBuildMatchesSerial) {
  SeedConfig scfg;
  scfg.k = 8;
  scfg.shard_max_bp = 6000;
  const SeedIndex serial = SeedIndex::Build(ref_, scfg, 1);
  const SeedIndex parallel = SeedIndex::Build(ref_, scfg, 4);
  ASSERT_EQ(serial.shard_count(), parallel.shard_count());
  EXPECT_EQ(serial.indexed_positions(), parallel.indexed_positions());
  for (std::size_t s = 0; s < serial.shard_count(); ++s) {
    const KmerIndex& a = serial.shard(s);
    const KmerIndex& b = parallel.shard(s);
    ASSERT_EQ(a.positions().size(), b.positions().size());
    EXPECT_TRUE(std::equal(a.positions().begin(), a.positions().end(),
                           b.positions().begin()));
  }
}

}  // namespace
}  // namespace gkgpu
