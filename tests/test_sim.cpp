// Tests for the data-set substrate: genome generation, read simulation,
// and candidate-pair generation with controlled edit profiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "align/myers.hpp"
#include "encode/dna.hpp"
#include "sim/genome.hpp"
#include "sim/pairgen.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace gkgpu {
namespace {

TEST(GenomeTest, DeterministicAndWellFormed) {
  const std::string g1 = GenerateGenome(100000, 42);
  const std::string g2 = GenerateGenome(100000, 42);
  EXPECT_EQ(g1, g2);
  const std::string g3 = GenerateGenome(100000, 43);
  EXPECT_NE(g1, g3);
  EXPECT_EQ(g1.size(), 100000u);
  for (const char c : g1) {
    EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T' || c == 'N');
  }
}

TEST(GenomeTest, ContainsPlantedRepeats) {
  GenomeProfile profile;
  profile.repeat_families = 8;
  profile.repeat_length = 500;
  profile.repeat_copies = 6;
  profile.repeat_mutation_rate = 0.0;  // exact copies for this test
  profile.n_runs_per_mb = 0.0;
  const std::string g = GenerateGenome(500000, 7, profile);
  // Some 32-mer must appear several times (the repeat bodies).
  std::set<std::string> seen;
  int duplicates = 0;
  for (std::size_t i = 0; i + 32 <= g.size(); i += 16) {
    const std::string kmer = g.substr(i, 32);
    if (!seen.insert(kmer).second) ++duplicates;
  }
  EXPECT_GT(duplicates, 10);
}

TEST(GenomeTest, NRunsAppearAtRequestedRate) {
  GenomeProfile profile;
  profile.n_runs_per_mb = 10.0;
  profile.n_run_length = 50;
  const std::string g = GenerateGenome(1000000, 11, profile);
  const std::size_t n_count = static_cast<std::size_t>(
      std::count(g.begin(), g.end(), 'N'));
  EXPECT_GT(n_count, 200u);     // ~10 runs x 50 bases, allow overlap losses
  EXPECT_LT(n_count, 2000u);
}

TEST(ReadSimTest, ReadsHaveRequestedLengthAndTraceableOrigin) {
  const std::string genome = GenerateGenome(200000, 5);
  const auto reads =
      SimulateReads(genome, 200, 100, ReadErrorProfile::Illumina(), 9);
  ASSERT_EQ(reads.size(), 200u);
  MyersAligner oracle;
  for (const auto& r : reads) {
    ASSERT_EQ(r.seq.size(), 100u);
    ASSERT_GE(r.origin, 0);
    ASSERT_LE(r.origin + 100, static_cast<std::int64_t>(genome.size()));
    // The read must still resemble its origin locus: edit distance to the
    // origin segment is bounded by the simulated edits plus indel drift.
    const std::string_view locus(genome.data() + r.origin, 100);
    EXPECT_LE(oracle.Distance(r.seq, locus), 2 * r.edits + 1)
        << "origin " << r.origin;
  }
}

TEST(ReadSimTest, ErrorFreeProfileCopiesGenome) {
  const std::string genome = GenerateGenome(50000, 15);
  ReadErrorProfile clean{0.0, 0.0, 0.0, 0.0};
  const auto reads = SimulateReads(genome, 50, 150, clean, 21);
  for (const auto& r : reads) {
    EXPECT_EQ(r.edits, 0);
    EXPECT_EQ(r.seq, genome.substr(static_cast<std::size_t>(r.origin), 150));
  }
}

TEST(ReadSimTest, RichDeletionProfileProducesMoreEdits) {
  const std::string genome = GenerateGenome(200000, 25);
  const auto low =
      SimulateReads(genome, 300, 150, ReadErrorProfile::LowIndel(), 31);
  const auto rich =
      SimulateReads(genome, 300, 150, ReadErrorProfile::RichDeletion(), 31);
  auto total_edits = [](const std::vector<SimulatedRead>& rs) {
    std::int64_t sum = 0;
    for (const auto& r : rs) sum += r.edits;
    return sum;
  };
  EXPECT_GT(total_edits(rich), total_edits(low));
}

TEST(PairGenTest, SubstitutionEditBudgetIsExact) {
  MyersAligner oracle;
  Rng rng(77);
  for (int t = 0; t < 300; ++t) {
    const int edits = static_cast<int>(rng.Uniform(26));
    const SequencePair p = MakePairWithEdits(100, edits, 0.0, rng.NextU64());
    ASSERT_EQ(p.read.size(), 100u);
    ASSERT_EQ(p.ref.size(), 100u);
    EXPECT_LE(oracle.Distance(p.read, p.ref), edits) << "trial " << t;
  }
}

TEST(PairGenTest, IndelEditBudgetBoundedByDouble) {
  // Equal-length windows add up to one trailing edit per net indel.
  MyersAligner oracle;
  Rng rng(78);
  for (int t = 0; t < 300; ++t) {
    const int edits = static_cast<int>(rng.Uniform(26));
    const SequencePair p = MakePairWithEdits(100, edits, 0.5, rng.NextU64());
    EXPECT_LE(oracle.Distance(p.read, p.ref), 2 * edits) << "trial " << t;
  }
}

TEST(PairGenTest, ZeroEditsMeansExactMatch) {
  for (int t = 0; t < 50; ++t) {
    const SequencePair p =
        MakePairWithEdits(150, 0, 0.3, static_cast<std::uint64_t>(t));
    EXPECT_EQ(p.read, p.ref);
  }
}

TEST(PairGenTest, GeneratePairsIsDeterministic) {
  const PairProfile profile = LowEditProfile(100);
  const auto a = GeneratePairs(500, profile, 123);
  const auto b = GeneratePairs(500, profile, 123);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].read, b[i].read);
    EXPECT_EQ(a[i].ref, b[i].ref);
  }
}

TEST(PairGenTest, UndefinedRateInjectsNs) {
  PairProfile profile = LowEditProfile(100);
  profile.undefined_rate = 0.2;
  const auto pairs = GeneratePairs(1000, profile, 5);
  int undefined = 0;
  for (const auto& p : pairs) {
    if (ContainsUnknown(p.read) || ContainsUnknown(p.ref)) ++undefined;
  }
  EXPECT_GT(undefined, 120);
  EXPECT_LT(undefined, 290);
}

TEST(PairGenTest, ProfilesDifferInEditMass) {
  // High-edit sets must have far fewer within-threshold pairs than low-edit
  // sets at the same threshold (this is what drives Fig. 5 vs S.7).
  MyersAligner oracle;
  auto within = [&](const PairProfile& profile, int e) {
    const auto pairs = GeneratePairs(600, profile, 9);
    int n = 0;
    for (const auto& p : pairs) {
      if (oracle.Distance(p.read, p.ref) <= e) ++n;
    }
    return n;
  };
  const int low = within(LowEditProfile(100), 5);
  const int high = within(HighEditProfile(100), 5);
  const int mrfast = within(MrFastCandidateProfile(100), 5);
  EXPECT_GT(low, 5 * std::max(high, 1));
  EXPECT_GT(low, mrfast);
}

TEST(PairGenTest, BwaMemProfileIsHighIdentity) {
  MyersAligner oracle;
  const auto pairs = GeneratePairs(400, BwaMemProfile(100), 13);
  int within10 = 0;
  for (const auto& p : pairs) {
    if (oracle.Distance(p.read, p.ref) <= 10) ++within10;
  }
  EXPECT_GT(within10, 200);  // most BWA-MEM candidates are near-identical
}

}  // namespace
}  // namespace gkgpu
