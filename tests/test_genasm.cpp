// Tests for the GenASM-style Bitap filter: the bit-parallel NFA must give
// the exact threshold decision (edit distance <= e), verified against the
// DP oracles across parameterized sweeps — zero false accepts AND zero
// false rejects, the property that distinguishes it from the heuristic
// filters.
#include "filters/genasm.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "align/needleman_wunsch.hpp"
#include "encode/dna.hpp"
#include "sim/pairgen.hpp"
#include "util/rng.hpp"

namespace gkgpu {
namespace {

std::string RandomSeq(Rng& rng, std::size_t n) {
  std::string s(n, 'A');
  for (auto& c : s) c = kBases[rng.NextU64() & 0x3u];
  return s;
}

TEST(BitapTest, KnownCases) {
  EXPECT_TRUE(BitapWithinEditDistance("ACGT", "ACGT", 0));
  EXPECT_FALSE(BitapWithinEditDistance("ACGT", "ACGA", 0));
  EXPECT_TRUE(BitapWithinEditDistance("ACGT", "ACGA", 1));
  EXPECT_TRUE(BitapWithinEditDistance("ACGT", "AGT", 1));   // deletion
  EXPECT_TRUE(BitapWithinEditDistance("ACGT", "ACCGT", 1)); // insertion
  EXPECT_FALSE(BitapWithinEditDistance("ACGT", "TGCA", 2));
  EXPECT_TRUE(BitapWithinEditDistance("", "", 0));
  EXPECT_TRUE(BitapWithinEditDistance("AC", "", 2));
  EXPECT_FALSE(BitapWithinEditDistance("AC", "", 1));
  EXPECT_TRUE(BitapWithinEditDistance("", "AC", 2));
}

struct BitapSweep {
  int length;
  int e;
};

class BitapGrid : public ::testing::TestWithParam<BitapSweep> {};

TEST_P(BitapGrid, MatchesDpOracleExactly) {
  const auto [length, e] = GetParam();
  Rng rng(500 + static_cast<std::uint64_t>(length) * 13 + e);
  for (int t = 0; t < 150; ++t) {
    const int edits = static_cast<int>(
        rng.Uniform(static_cast<std::uint64_t>(2 * e) + 3));
    const SequencePair p =
        MakePairWithEdits(length, edits, 0.35, rng.NextU64());
    const bool expected = NwEditDistance(p.read, p.ref) <= e;
    ASSERT_EQ(BitapWithinEditDistance(p.read, p.ref, e), expected)
        << "length " << length << " e " << e << " trial " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LengthThresholdGrid, BitapGrid,
    ::testing::Values(BitapSweep{10, 2}, BitapSweep{50, 5},
                      BitapSweep{64, 6}, BitapSweep{65, 6},
                      BitapSweep{100, 0}, BitapSweep{100, 5},
                      BitapSweep{100, 10}, BitapSweep{128, 12},
                      BitapSweep{150, 15}, BitapSweep{250, 25},
                      BitapSweep{300, 30}, BitapSweep{512, 50}),
    [](const ::testing::TestParamInfo<BitapSweep>& info) {
      return "L" + std::to_string(info.param.length) + "_e" +
             std::to_string(info.param.e);
    });

TEST(BitapTest, UnequalLengthTexts) {
  Rng rng(77);
  for (int t = 0; t < 100; ++t) {
    const std::size_t lp = 5 + rng.Uniform(100);
    const std::size_t lt = 5 + rng.Uniform(100);
    const std::string p = RandomSeq(rng, lp);
    const std::string txt = RandomSeq(rng, lt);
    const int d = NwEditDistance(p, txt);
    for (const int e : {d - 1, d, d + 1}) {
      if (e < 0 || e > 52) continue;
      ASSERT_EQ(BitapWithinEditDistance(p, txt, e), d <= e)
          << "trial " << t << " e " << e << " true " << d;
    }
  }
}

TEST(GenAsmFilterTest, ZeroFalseAcceptsAndZeroFalseRejects) {
  Rng rng(91);
  GenAsmFilter filter;
  int within = 0;
  int beyond = 0;
  for (int t = 0; t < 500; ++t) {
    const int e = 1 + static_cast<int>(rng.Uniform(10));
    const SequencePair p = MakePairWithEdits(
        100, static_cast<int>(rng.Uniform(20)), 0.3, rng.NextU64());
    const bool truth = NwEditDistance(p.read, p.ref) <= e;
    (truth ? within : beyond) += 1;
    ASSERT_EQ(filter.Filter(p.read, p.ref, e).accept, truth)
        << "trial " << t;
  }
  EXPECT_GT(within, 50);
  EXPECT_GT(beyond, 50);
}

}  // namespace
}  // namespace gkgpu
