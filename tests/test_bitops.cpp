// Unit + property tests for the multi-word bit-vector primitives: shifts
// with carry transfer, pair reduction, amendment (bit trick vs LUT vs
// scalar), and run counting (popcount-transition vs LUT walk vs scalar).
#include "util/bitops.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace gkgpu {
namespace {

std::vector<int> ToBits(const Word* mask, int nbits) {
  std::vector<int> bits(static_cast<std::size_t>(nbits));
  for (int p = 0; p < nbits; ++p) {
    bits[static_cast<std::size_t>(p)] = static_cast<int>(GetMaskBit(mask, p));
  }
  return bits;
}

void FromBits(const std::vector<int>& bits, Word* mask, int nwords) {
  std::fill(mask, mask + nwords, 0);
  for (std::size_t p = 0; p < bits.size(); ++p) {
    if (bits[p]) SetMaskBit(mask, static_cast<int>(p));
  }
}

TEST(BitopsTest, WordCounts) {
  EXPECT_EQ(EncodedWords(100), 7);   // the paper's "7 words per 100bp read"
  EXPECT_EQ(EncodedWords(16), 1);
  EXPECT_EQ(EncodedWords(17), 2);
  EXPECT_EQ(MaskWords(100), 4);
  EXPECT_EQ(MaskWords(32), 1);
  EXPECT_EQ(MaskWords(33), 2);
}

TEST(BitopsTest, BaseAccessRoundTrip) {
  Word enc[kMaxEncodedWords] = {};
  for (int i = 0; i < 100; ++i) SetBase2Bit(enc, i, (i * 7 + 3) & 0x3u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(GetBase2Bit(enc, i), static_cast<unsigned>((i * 7 + 3) & 0x3))
        << "base " << i;
  }
}

TEST(BitopsTest, ShiftToLaterMovesBitsTowardLsbEnd) {
  Word v[2] = {};
  SetMaskBit(v, 0);
  SetMaskBit(v, 31);
  Word out[2];
  ShiftToLater(v, out, 2, 1);
  EXPECT_EQ(GetMaskBit(out, 1), 1u);
  EXPECT_EQ(GetMaskBit(out, 32), 1u);  // carried across the word boundary
  EXPECT_EQ(GetMaskBit(out, 0), 0u);
}

TEST(BitopsTest, ShiftToEarlierMovesBitsTowardMsbEnd) {
  Word v[2] = {};
  SetMaskBit(v, 32);
  Word out[2];
  ShiftToEarlier(v, out, 2, 1);
  EXPECT_EQ(GetMaskBit(out, 31), 1u);
  EXPECT_EQ(GetMaskBit(out, 32), 0u);
}

TEST(BitopsTest, ShiftRoundTripPreservesInteriorBits) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int nwords = 1 + static_cast<int>(rng.Uniform(8));
    const int bits = static_cast<int>(rng.Uniform(
        static_cast<std::uint64_t>(nwords) * kWordBits));
    std::vector<Word> v(static_cast<std::size_t>(nwords));
    for (auto& w : v) w = rng.NextU32();
    std::vector<Word> later(v.size());
    std::vector<Word> back(v.size());
    ShiftToLater(v.data(), later.data(), nwords, bits);
    ShiftToEarlier(later.data(), back.data(), nwords, bits);
    // Bits that survived both shifts (positions [0, N - bits)) must match.
    const int total = nwords * kWordBits;
    for (int p = 0; p + bits < total; ++p) {
      EXPECT_EQ(GetMaskBit(back.data(), p), GetMaskBit(v.data(), p))
          << "trial " << trial << " bit " << p << " shift " << bits;
    }
  }
}

TEST(BitopsTest, ShiftsAgreeWithScalarModel) {
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const int nwords = 1 + static_cast<int>(rng.Uniform(6));
    const int total = nwords * kWordBits;
    const int shift = static_cast<int>(rng.Uniform(
        static_cast<std::uint64_t>(total + 8)));
    std::vector<Word> v(static_cast<std::size_t>(nwords));
    for (auto& w : v) w = rng.NextU32();
    const std::vector<int> bits = ToBits(v.data(), total);

    std::vector<Word> later(v.size());
    ShiftToLater(v.data(), later.data(), nwords, shift);
    for (int p = 0; p < total; ++p) {
      const int src = p - shift;
      const int expected =
          src >= 0 ? bits[static_cast<std::size_t>(src)] : 0;
      ASSERT_EQ(static_cast<int>(GetMaskBit(later.data(), p)), expected)
          << "later: trial " << trial << " p " << p << " shift " << shift;
    }

    std::vector<Word> earlier(v.size());
    ShiftToEarlier(v.data(), earlier.data(), nwords, shift);
    for (int p = 0; p < total; ++p) {
      const int src = p + shift;
      const int expected =
          src < total ? bits[static_cast<std::size_t>(src)] : 0;
      ASSERT_EQ(static_cast<int>(GetMaskBit(earlier.data(), p)), expected)
          << "earlier: trial " << trial << " p " << p << " shift " << shift;
    }
  }
}

TEST(BitopsTest, InPlaceShiftsMatchOutOfPlace) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int nwords = 1 + static_cast<int>(rng.Uniform(6));
    const int shift = static_cast<int>(rng.Uniform(70));
    std::vector<Word> v(static_cast<std::size_t>(nwords));
    for (auto& w : v) w = rng.NextU32();
    std::vector<Word> expected(v.size());
    ShiftToLater(v.data(), expected.data(), nwords, shift);
    std::vector<Word> inplace = v;
    ShiftToLater(inplace.data(), inplace.data(), nwords, shift);
    EXPECT_EQ(inplace, expected);

    ShiftToEarlier(v.data(), expected.data(), nwords, shift);
    inplace = v;
    ShiftToEarlier(inplace.data(), inplace.data(), nwords, shift);
    EXPECT_EQ(inplace, expected);
  }
}

TEST(BitopsTest, CompressPairsOrHalfReducesBasePairs) {
  // Base 0 = bits 31,30; base 15 = bits 1,0.
  EXPECT_EQ(CompressPairsOrHalf(0), 0u);
  EXPECT_EQ(CompressPairsOrHalf(0xC0000000u), 0x8000u);  // base 0 differs
  EXPECT_EQ(CompressPairsOrHalf(0x40000000u), 0x8000u);  // one bit is enough
  EXPECT_EQ(CompressPairsOrHalf(0x00000003u), 0x0001u);  // base 15
  EXPECT_EQ(CompressPairsOrHalf(0xFFFFFFFFu), 0xFFFFu);
}

TEST(BitopsTest, ReducePairsOrMatchesPerBaseScan) {
  Rng rng(21);
  for (const int length : {5, 16, 31, 32, 33, 100, 150, 250, 512}) {
    std::vector<Word> diff(static_cast<std::size_t>(EncodedWords(length)));
    for (auto& w : diff) w = rng.NextU32();
    std::vector<Word> mask(static_cast<std::size_t>(MaskWords(length)));
    ReducePairsOr(diff.data(), length, mask.data());
    for (int i = 0; i < length; ++i) {
      const unsigned pair = GetBase2Bit(diff.data(), i);
      EXPECT_EQ(GetMaskBit(mask.data(), i), pair != 0 ? 1u : 0u)
          << "length " << length << " base " << i;
    }
    // Tail bits must be zero.
    for (int p = length; p < MaskWords(length) * kWordBits; ++p) {
      EXPECT_EQ(GetMaskBit(mask.data(), p), 0u);
    }
  }
}

TEST(BitopsTest, CountOneRunsBasics) {
  Word m[2] = {};
  EXPECT_EQ(CountOneRuns(m, 2), 0);
  FromBits({1, 1, 0, 1, 0, 0, 1, 1, 1}, m, 2);
  EXPECT_EQ(CountOneRuns(m, 2), 3);
  // A run crossing the word boundary counts once.
  std::vector<int> bits(64, 0);
  for (int p = 30; p < 35; ++p) bits[static_cast<std::size_t>(p)] = 1;
  FromBits(bits, m, 2);
  EXPECT_EQ(CountOneRuns(m, 2), 1);
}

TEST(BitopsTest, RunCountImplementationsAgree) {
  Rng rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    const int nwords = 1 + static_cast<int>(rng.Uniform(16));
    std::vector<Word> v(static_cast<std::size_t>(nwords));
    for (auto& w : v) {
      // Mix densities so runs of many shapes appear.
      w = rng.NextU32() & rng.NextU32();
      if (trial % 3 == 0) w |= rng.NextU32();
    }
    const int expected = [&] {
      int runs = 0;
      int prev = 0;
      for (int p = 0; p < nwords * kWordBits; ++p) {
        const int b = static_cast<int>(GetMaskBit(v.data(), p));
        if (b == 1 && prev == 0) ++runs;
        prev = b;
      }
      return runs;
    }();
    EXPECT_EQ(CountOneRuns(v.data(), nwords), expected);
    EXPECT_EQ(CountOneRunsLut(v.data(), nwords), expected);
  }
}

std::vector<int> ScalarAmendBits(std::vector<int> bits) {
  const int n = static_cast<int>(bits.size());
  std::vector<int> out = bits;
  int i = 0;
  while (i < n) {
    if (bits[static_cast<std::size_t>(i)] == 1) {
      ++i;
      continue;
    }
    int j = i;
    while (j < n && bits[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i <= 2 && i > 0 && j < n) {
      for (int p = i; p < j; ++p) out[static_cast<std::size_t>(p)] = 1;
    }
    i = j;
  }
  return out;
}

TEST(BitopsTest, AmendFlipsOnlyShortInternalZeroRuns) {
  Word m[1];
  FromBits({1, 0, 1, 0, 0, 1, 0, 0, 0, 1}, m, 1);
  AmendShortZeroRuns(m, 1);
  const auto bits = ToBits(m, 10);
  EXPECT_EQ(bits, (std::vector<int>{1, 1, 1, 1, 1, 1, 0, 0, 0, 1}));
}

TEST(BitopsTest, AmendLeavesBoundaryRunsAlone) {
  Word m[1];
  FromBits({0, 0, 1, 1, 0, 0}, m, 1);
  AmendShortZeroRuns(m, 1);
  const auto bits = ToBits(m, 6);
  EXPECT_EQ(bits, (std::vector<int>{0, 0, 1, 1, 0, 0}));
}

TEST(BitopsTest, AmendImplementationsAgreeWithScalar) {
  Rng rng(41);
  for (int trial = 0; trial < 500; ++trial) {
    const int nwords = 1 + static_cast<int>(rng.Uniform(16));
    std::vector<Word> v(static_cast<std::size_t>(nwords));
    for (auto& w : v) {
      w = rng.NextU32() & rng.NextU32();  // sparse-ish: many zero runs
      if (trial % 4 == 0) w |= rng.NextU32() & rng.NextU32();
    }
    const int total = nwords * kWordBits;
    const std::vector<int> expected = ScalarAmendBits(ToBits(v.data(), total));

    std::vector<Word> trick = v;
    AmendShortZeroRuns(trick.data(), nwords);
    EXPECT_EQ(ToBits(trick.data(), total), expected) << "bit trick, trial "
                                                     << trial;

    std::vector<Word> lut = v;
    AmendShortZeroRunsLut(lut.data(), nwords);
    EXPECT_EQ(ToBits(lut.data(), total), expected) << "LUT, trial " << trial;
  }
}

TEST(BitopsTest, ZeroTailBitsClearsBeyondLength) {
  Word m[2] = {~Word{0}, ~Word{0}};
  ZeroTailBits(m, 2, 40);
  for (int p = 0; p < 40; ++p) EXPECT_EQ(GetMaskBit(m, p), 1u);
  for (int p = 40; p < 64; ++p) EXPECT_EQ(GetMaskBit(m, p), 0u);
}

TEST(BitopsTest, SetBitRangeSetsExactRange) {
  Word m[2] = {};
  SetBitRange(m, 30, 35);
  for (int p = 0; p < 64; ++p) {
    EXPECT_EQ(GetMaskBit(m, p), (p >= 30 && p < 35) ? 1u : 0u) << p;
  }
}

TEST(BitopsTest, PopcountWords) {
  Word m[2] = {0xF0F0F0F0u, 0x1u};
  EXPECT_EQ(PopcountWords(m, 2), 17);
}

}  // namespace
}  // namespace gkgpu
