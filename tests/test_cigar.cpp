// Tests for banded alignment with traceback: CIGAR strings must span both
// sequences exactly, imply the reported edit count, and the distance must
// agree with the traceback-free verifier on randomized sweeps.
#include "align/cigar.hpp"

#include <gtest/gtest.h>

#include "align/banded.hpp"
#include "align/needleman_wunsch.hpp"
#include "encode/dna.hpp"
#include "sim/pairgen.hpp"
#include "util/rng.hpp"

namespace gkgpu {
namespace {

TEST(CigarTest, ExactMatchIsAllM) {
  const Alignment a = BandedAlign("ACGTACGT", "ACGTACGT", 2);
  EXPECT_EQ(a.distance, 0);
  EXPECT_EQ(a.cigar, "8M");
}

TEST(CigarTest, SubstitutionStaysM) {
  const Alignment a = BandedAlign("ACGTACGT", "ACGAACGT", 2);
  EXPECT_EQ(a.distance, 1);
  EXPECT_EQ(a.cigar, "8M");  // M covers mismatches in SAM
}

TEST(CigarTest, InsertionAndDeletion) {
  // read has an extra base relative to ref -> one I.
  const Alignment ins = BandedAlign("ACGGT", "ACGT", 2);
  EXPECT_EQ(ins.distance, 1);
  EXPECT_EQ(CigarEdits("ACGGT", "ACGT", ins.cigar), 1);
  EXPECT_NE(ins.cigar.find('I'), std::string::npos);
  // ref has an extra base -> one D.
  const Alignment del = BandedAlign("ACGT", "ACGGT", 2);
  EXPECT_EQ(del.distance, 1);
  EXPECT_EQ(CigarEdits("ACGT", "ACGGT", del.cigar), 1);
  EXPECT_NE(del.cigar.find('D'), std::string::npos);
}

TEST(CigarTest, BeyondBandReturnsEmpty) {
  const Alignment a = BandedAlign("AAAA", "TTTT", 2);
  EXPECT_EQ(a.distance, -1);
  EXPECT_TRUE(a.cigar.empty());
}

TEST(CigarTest, DistanceMatchesBandedVerifierOnSweep) {
  Rng rng(7);
  for (int t = 0; t < 400; ++t) {
    const int length = 20 + static_cast<int>(rng.Uniform(200));
    const int edits = static_cast<int>(rng.Uniform(12));
    const SequencePair p =
        MakePairWithEdits(length, edits, 0.4, rng.NextU64());
    const int k = 2 * edits + 2;
    const int expected = BandedEditDistance(p.read, p.ref, k);
    const Alignment a = BandedAlign(p.read, p.ref, k);
    ASSERT_EQ(a.distance, expected) << "trial " << t;
    if (expected >= 0) {
      // The CIGAR must span both sequences and imply exactly the distance
      // (unit costs: an optimal alignment has edits == distance).
      ASSERT_EQ(CigarEdits(p.read, p.ref, a.cigar), expected)
          << "trial " << t << " cigar " << a.cigar;
    }
  }
}

TEST(CigarTest, UnequalLengths) {
  Rng rng(11);
  for (int t = 0; t < 100; ++t) {
    const std::string a = [&] {
      std::string s(40 + rng.Uniform(40), 'A');
      for (auto& c : s) c = kBases[rng.NextU64() & 0x3u];
      return s;
    }();
    std::string b = a;
    b.erase(rng.Uniform(b.size()), 1 + rng.Uniform(3));
    const int d = NwEditDistance(a, b);
    const Alignment aln = BandedAlign(a, b, d);
    ASSERT_EQ(aln.distance, d) << t;
    ASSERT_EQ(CigarEdits(a, b, aln.cigar), d) << t;
  }
}

TEST(CigarTest, CigarEditsRejectsMalformed) {
  EXPECT_EQ(CigarEdits("ACGT", "ACGT", "3M"), -1);    // doesn't span
  EXPECT_EQ(CigarEdits("ACGT", "ACGT", "5M"), -1);    // overruns
  EXPECT_EQ(CigarEdits("ACGT", "ACGT", "4X"), -1);    // unknown op
  EXPECT_EQ(CigarEdits("ACGT", "ACGT", "M"), -1);     // missing count
  EXPECT_EQ(CigarEdits("ACGT", "ACGT", "4M"), 0);
}

}  // namespace
}  // namespace gkgpu
