// Tests for the worker pool that backs both the simulated devices and the
// multicore CPU filter baseline.
#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gkgpu {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, NonZeroBeginIsRespected) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(40, 60, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 40 && i < 60) ? 1 : 0) << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SequentialJobsDoNotInterfere) {
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.ParallelFor(0, 1000, 13, [&](std::size_t b, std::size_t e) {
      std::uint64_t local = 0;
      for (std::size_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 999ull * 1000 / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::uint64_t sum = 0;  // no synchronization: must still be correct
  pool.ParallelFor(0, 100, 1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 99ull * 100 / 2);
}

}  // namespace
}  // namespace gkgpu
