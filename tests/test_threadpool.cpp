// Tests for the worker pool that backs both the simulated devices and the
// multicore CPU filter baseline.
#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gkgpu {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, NonZeroBeginIsRespected) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(40, 60, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 40 && i < 60) ? 1 : 0) << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SequentialJobsDoNotInterfere) {
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.ParallelFor(0, 1000, 13, [&](std::size_t b, std::size_t e) {
      std::uint64_t local = 0;
      for (std::size_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 999ull * 1000 / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, ZeroGrainIsTreatedAsOne) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(0, hits.size(), 0, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ZeroGrainEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, InvertedRangeIsNoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(10, 3, 4, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, RangeNearSizeMaxDoesNotWrap) {
  ThreadPool pool(2);
  const std::size_t max = static_cast<std::size_t>(-1);
  // Both an end == SIZE_MAX range and one with a small gap below it: the
  // second would wrap through the cumulative one-grain-per-participant
  // claim overshoot if only a single grain of headroom were reserved.
  for (const std::size_t end : {max, max - 4}) {
    std::atomic<std::uint64_t> items{0};
    std::atomic<int> bad{0};
    pool.ParallelFor(end - 10, end, 4, [&](std::size_t b, std::size_t e) {
      if (e <= b || e > end || b < end - 10) ++bad;
      items.fetch_add(e - b);
    });
    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(items.load(), 10u);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyAndCompletes) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> inner_items{0};
  pool.ParallelFor(0, 64, 4, [&](std::size_t b, std::size_t e) {
    pool.ParallelFor(b * 10, e * 10, 3, [&](std::size_t ib, std::size_t ie) {
      inner_items.fetch_add(ie - ib);
    });
  });
  EXPECT_EQ(inner_items.load(), 640u);
}

TEST(ThreadPoolTest, ConcurrentCallersShareOnePoolSafely) {
  ThreadPool pool(4);
  constexpr int kCallers = 3;
  constexpr std::size_t kItems = 5000;
  std::vector<std::atomic<std::uint64_t>> sums(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.ParallelFor(0, kItems, 17, [&](std::size_t b, std::size_t e) {
          std::uint64_t local = 0;
          for (std::size_t i = b; i < e; ++i) local += i;
          sum.fetch_add(local);
        });
        ASSERT_EQ(sum.load(), (kItems - 1) * kItems / 2)
            << "caller " << c << " round " << round;
      }
      sums[c].store(1);
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) EXPECT_EQ(sums[c].load(), 1u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::uint64_t sum = 0;  // no synchronization: must still be correct
  pool.ParallelFor(0, 100, 1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 99ull * 100 / 2);
}

}  // namespace
}  // namespace gkgpu
