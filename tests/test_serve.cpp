// In-process tests for the mapping daemon (serve/server.hpp +
// serve/client.hpp): byte parity with the standalone streaming pipeline,
// concurrent clients demultiplexed onto their own byte-identical SAM
// streams (with cross-request batch coalescing observed in the stats),
// wrong-length and malformed inputs, and shutdown drain.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "io/reference.hpp"
#include "mapper/mapper.hpp"
#include "mapper/sam.hpp"
#include "pipeline/read_to_sam.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"

namespace gkgpu {
namespace {

constexpr int kReadLength = 64;
constexpr int kErrors = 3;

std::string MakeFastq(const std::string& prefix,
                      const std::vector<std::string>& seqs) {
  std::string out;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    out += "@" + prefix + std::to_string(i) + "\n" + seqs[i] + "\n+\n" +
           std::string(seqs[i].size(), 'I') + "\n";
  }
  return out;
}

// --- raw-socket helpers for the frame-timing tests: the client library
// always sends whole frames, so pauses *inside* a frame need hand-rolled
// byte-level writes. ---------------------------------------------------

int ConnectRaw(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

void SendRaw(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

std::string FrameBytes(serve::FrameType type, std::string_view payload) {
  const std::uint32_t prelude[2] = {
      static_cast<std::uint32_t>(type),
      static_cast<std::uint32_t>(payload.size()),
  };
  std::string out(reinterpret_cast<const char*>(prelude), sizeof(prelude));
  out.append(payload);
  return out;
}

/// Reads server frames until kDone, kError, or EOF; returns the final
/// frame (kJob type doubles as the "EOF before a terminal frame" marker).
serve::Frame DrainToTerminal(int fd) {
  serve::Frame frame;
  serve::Frame last;
  last.type = serve::FrameType::kJob;
  while (serve::ReadFrame(fd, &frame)) {
    last = frame;
    if (frame.type == serve::FrameType::kDone ||
        frame.type == serve::FrameType::kError) {
      break;
    }
  }
  return last;
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest()
      : ref_("chr_serve", GenerateGenome(20000, 31)),
        mapper_(MakeMapper()),
        devices_(gpusim::MakeSetup1(1)) {
    for (auto& d : devices_) device_ptrs_.push_back(d.get());
    EngineConfig cfg;
    cfg.read_length = kReadLength;
    cfg.error_threshold = kErrors;
    engine_ = std::make_unique<GateKeeperGpuEngine>(cfg, device_ptrs_);
    engine_->LoadReference(ref_.text());
  }

  ReadMapper MakeMapper() {
    MapperConfig mcfg;
    mcfg.k = 8;
    mcfg.read_length = kReadLength;
    mcfg.error_threshold = kErrors;
    mcfg.verify_threads = 2;
    return ReadMapper(ReferenceSet(ref_), mcfg);
  }

  /// The standalone answer for one FASTQ payload: header + streamed
  /// records, exactly what the daemon must reproduce byte for byte.
  std::string Golden(const std::string& fastq_text,
                     const std::string& read_group = "") {
    ReadMapper mapper = MakeMapper();
    std::unique_ptr<GateKeeperGpuEngine> engine;
    {
      EngineConfig cfg;
      cfg.read_length = kReadLength;
      cfg.error_threshold = kErrors;
      engine = std::make_unique<GateKeeperGpuEngine>(cfg, device_ptrs_);
      engine->LoadReference(ref_.text());
    }
    pipeline::ReadToSamConfig scfg;
    scfg.read_group = read_group;
    std::ostringstream sam;
    WriteSamHeader(sam, mapper.reference(), read_group);
    std::istringstream fastq(fastq_text);
    pipeline::StreamFastqToSam(fastq, mapper, engine.get(), scfg, &sam);
    return sam.str();
  }

  serve::ServeConfig BaseConfig() {
    serve::ServeConfig scfg;
    scfg.socket_path =
        (std::filesystem::temp_directory_path() /
         ("gkgpu_serve_test_" + std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name() +
          ".sock"))
            .string();
    scfg.threads = 2;
    scfg.request_timeout_sec = 20;
    return scfg;
  }

  /// Runs `body(socket_path)` against a live server, then drains it.
  template <typename Body>
  serve::ServeStats WithServer(const serve::ServeConfig& scfg, Body body) {
    serve::MapServer server(mapper_, engine_.get(), scfg);
    std::thread run([&] { server.Run(); });
    for (int i = 0; i < 2000 && !server.serving(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(server.serving());
    body(scfg.socket_path);
    server.Shutdown();
    run.join();
    return server.stats();
  }

  ReferenceSet ref_;
  ReadMapper mapper_;
  std::vector<std::unique_ptr<gpusim::Device>> devices_;
  std::vector<gpusim::Device*> device_ptrs_;
  std::unique_ptr<GateKeeperGpuEngine> engine_;
};

TEST_F(ServeTest, SingleClientMatchesStandalonePipeline) {
  const auto seqs = SimulateReadSequences(
      ref_.text(), 200, kReadLength, ReadErrorProfile::Illumina(), 7);
  const std::string fastq_text = MakeFastq("a", seqs);
  const std::string golden = Golden(fastq_text);

  std::string served;
  serve::ClientStats cstats;
  const serve::ServeStats stats =
      WithServer(BaseConfig(), [&](const std::string& socket) {
        std::istringstream fastq(fastq_text);
        std::ostringstream sam;
        cstats = serve::MapOverSocket(socket, fastq, sam);
        served = sam.str();
      });
  EXPECT_EQ(served, golden);
  EXPECT_EQ(cstats.reads, 200u);
  EXPECT_EQ(stats.sessions_completed, 1u);
  EXPECT_EQ(stats.sessions_failed, 0u);
  EXPECT_EQ(stats.reads, 200u);
  EXPECT_EQ(stats.records, cstats.records);
}

TEST_F(ServeTest, JobOptionsReachTheSamStream) {
  const auto seqs = SimulateReadSequences(
      ref_.text(), 50, kReadLength, ReadErrorProfile::Illumina(), 8);
  const std::string fastq_text = MakeFastq("rg", seqs);
  const std::string golden = Golden(fastq_text, "lane1");

  std::string served;
  WithServer(BaseConfig(), [&](const std::string& socket) {
    serve::JobSpec job;
    job.read_group = "lane1";
    std::istringstream fastq(fastq_text);
    std::ostringstream sam;
    serve::MapOverSocket(socket, fastq, sam, job);
    served = sam.str();
  });
  EXPECT_EQ(served, golden);
  EXPECT_NE(served.find("@RG\tID:lane1"), std::string::npos);
}

TEST_F(ServeTest, ConcurrentClientsAreDemuxedAndCoalesced) {
  const auto seqs_a = SimulateReadSequences(
      ref_.text(), 150, kReadLength, ReadErrorProfile::Illumina(), 9);
  const auto seqs_b = SimulateReadSequences(
      ref_.text(), 150, kReadLength, ReadErrorProfile::Illumina(), 10);
  const std::string fastq_a = MakeFastq("alpha", seqs_a);
  const std::string fastq_b = MakeFastq("beta", seqs_b);
  const std::string golden_a = Golden(fastq_a);
  const std::string golden_b = Golden(fastq_b);

  serve::ServeConfig scfg = BaseConfig();
  // A long linger makes the shared batch wait for both sessions, so the
  // coalesced-batch counter must observe cross-request batching.
  scfg.linger_ms = 200;
  scfg.batch_size = 4096;

  std::string served_a, served_b;
  const serve::ServeStats stats =
      WithServer(scfg, [&](const std::string& socket) {
        std::thread ta([&] {
          std::istringstream fastq(fastq_a);
          std::ostringstream sam;
          serve::MapOverSocket(socket, fastq, sam);
          served_a = sam.str();
        });
        std::thread tb([&] {
          std::istringstream fastq(fastq_b);
          std::ostringstream sam;
          serve::MapOverSocket(socket, fastq, sam);
          served_b = sam.str();
        });
        ta.join();
        tb.join();
      });
  // Each client gets exactly its own records, in its own order.
  EXPECT_EQ(served_a, golden_a);
  EXPECT_EQ(served_b, golden_b);
  EXPECT_EQ(stats.sessions_completed, 2u);
  EXPECT_EQ(stats.reads, 300u);
  EXPECT_GE(stats.coalesced_batches, 1u);
}

TEST_F(ServeTest, WrongLengthReadsAreSkippedNotFatal) {
  auto seqs = SimulateReadSequences(ref_.text(), 20, kReadLength,
                                    ReadErrorProfile::Illumina(), 11);
  std::string fastq_text = MakeFastq("ok", seqs);
  fastq_text += "@short0\nACGTACGT\n+\nIIIIIIII\n";  // wrong length
  const std::string golden = Golden(MakeFastq("ok", seqs));

  std::string served;
  serve::ClientStats cstats;
  const serve::ServeStats stats =
      WithServer(BaseConfig(), [&](const std::string& socket) {
        std::istringstream fastq(fastq_text);
        std::ostringstream sam;
        cstats = serve::MapOverSocket(socket, fastq, sam);
        served = sam.str();
      });
  EXPECT_EQ(served, golden);
  EXPECT_EQ(cstats.reads, 20u);
  EXPECT_EQ(stats.skipped_reads, 1u);
  EXPECT_EQ(stats.sessions_completed, 1u);
}

TEST_F(ServeTest, MalformedFastqFailsOnlyThatSession) {
  const auto seqs = SimulateReadSequences(ref_.text(), 20, kReadLength,
                                          ReadErrorProfile::Illumina(), 12);
  const std::string good_text = MakeFastq("g", seqs);
  const std::string golden = Golden(good_text);

  std::string served;
  const serve::ServeStats stats =
      WithServer(BaseConfig(), [&](const std::string& socket) {
        {
          std::istringstream fastq("this is not FASTQ\n");
          std::ostringstream sam;
          EXPECT_THROW(serve::MapOverSocket(socket, fastq, sam),
                       std::runtime_error);
        }
        // The daemon keeps serving after a failed session.
        std::istringstream fastq(good_text);
        std::ostringstream sam;
        serve::MapOverSocket(socket, fastq, sam);
        served = sam.str();
      });
  EXPECT_EQ(served, golden);
  EXPECT_EQ(stats.sessions_failed, 1u);
  EXPECT_EQ(stats.sessions_completed, 1u);
}

TEST_F(ServeTest, SlowMidFramePauseOutlivesTheReceiveTick) {
  // A client that pauses *inside* a kData frame for longer than the idle
  // timeout is still making progress on that frame — the receive-timeout
  // expiry mid-frame must resume the read (up to the frame deadline), not
  // surface as a malformed-frame/timeout error.
  const auto seqs = SimulateReadSequences(ref_.text(), 8, kReadLength,
                                          ReadErrorProfile::Illumina(), 13);
  const std::string fastq_text = MakeFastq("slow", seqs);
  const std::string data = FrameBytes(serve::FrameType::kData, fastq_text);
  const std::size_t split = data.size() / 2;

  serve::ServeConfig scfg = BaseConfig();
  scfg.request_timeout_sec = 1;  // several receive ticks inside the pause

  const serve::ServeStats stats =
      WithServer(scfg, [&](const std::string& socket) {
        const int fd = ConnectRaw(socket);
        SendRaw(fd, FrameBytes(serve::FrameType::kJob, ""));
        SendRaw(fd, data.substr(0, split));
        std::this_thread::sleep_for(std::chrono::milliseconds(1400));
        SendRaw(fd, data.substr(split));
        SendRaw(fd, FrameBytes(serve::FrameType::kEnd, ""));
        const serve::Frame last = DrainToTerminal(fd);
        EXPECT_EQ(last.type, serve::FrameType::kDone) << last.payload;
        ::close(fd);
      });
  EXPECT_EQ(stats.sessions_completed, 1u);
  EXPECT_EQ(stats.sessions_failed, 0u);
  EXPECT_EQ(stats.reads, 8u);
}

TEST_F(ServeTest, SilentMidFrameStallHitsTheFrameDeadline) {
  // A frame that *starts* but never finishes must still die — on the
  // frame deadline, with a timeout error, not a malformed-frame one.
  serve::ServeConfig scfg = BaseConfig();
  scfg.request_timeout_sec = 1;
  scfg.frame_deadline_sec = 2;

  const serve::ServeStats stats =
      WithServer(scfg, [&](const std::string& socket) {
        const int fd = ConnectRaw(socket);
        SendRaw(fd, FrameBytes(serve::FrameType::kJob, ""));
        // A kData frame claiming 64 payload bytes, of which 4 ever arrive.
        const std::string partial =
            FrameBytes(serve::FrameType::kData, std::string(64, 'A'))
                .substr(0, serve::kFramePreludeBytes + 4);
        SendRaw(fd, partial);
        const serve::Frame last = DrainToTerminal(fd);
        EXPECT_EQ(last.type, serve::FrameType::kError);
        EXPECT_NE(last.payload.find("timed out"), std::string::npos)
            << last.payload;
        ::close(fd);
      });
  EXPECT_EQ(stats.sessions_failed, 1u);
  EXPECT_EQ(stats.sessions_completed, 0u);
}

TEST_F(ServeTest, AbruptCloseMidFrameIsMalformedNotTimeout) {
  serve::ServeConfig scfg = BaseConfig();
  scfg.request_timeout_sec = 1;

  const serve::ServeStats stats =
      WithServer(scfg, [&](const std::string& socket) {
        const int fd = ConnectRaw(socket);
        SendRaw(fd, FrameBytes(serve::FrameType::kJob, ""));
        // Half a prelude, then EOF: genuinely malformed input.
        const std::string half =
            FrameBytes(serve::FrameType::kData, "xyz").substr(0, 4);
        SendRaw(fd, half);
        ::shutdown(fd, SHUT_WR);
        const serve::Frame last = DrainToTerminal(fd);
        EXPECT_EQ(last.type, serve::FrameType::kError);
        EXPECT_NE(last.payload.find("closed mid-frame"), std::string::npos)
            << last.payload;
        ::close(fd);
      });
  EXPECT_EQ(stats.sessions_failed, 1u);
}

TEST_F(ServeTest, ShutdownWithoutClientsDrainsCleanly) {
  const serve::ServeStats stats =
      WithServer(BaseConfig(), [](const std::string&) {});
  EXPECT_EQ(stats.sessions_accepted, 0u);
}

TEST(ServeProtocolTest, JobSpecRoundTripIgnoresUnknownKeys) {
  serve::JobSpec job;
  job.read_group = "rg7";
  job.mapq_cap = 42;
  job.report_secondary = true;
  const serve::JobSpec back =
      serve::ParseJobSpec(serve::SerializeJobSpec(job) + "future_key=1\n");
  EXPECT_EQ(back.read_group, "rg7");
  EXPECT_EQ(back.mapq_cap, 42);
  EXPECT_TRUE(back.report_secondary);
}

}  // namespace
}  // namespace gkgpu
